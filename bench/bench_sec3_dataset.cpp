// T1 (§3 ¶1): dataset statistics.
// Paper (Aug 2010): 346,649 IPv6 AS paths; 10,535 IPv6 AS links; 7,618 of
// them also visible in IPv4.  The synthetic Internet is ~13x smaller, so the
// comparison is about shape: a large path set, and roughly 70-75% of IPv6
// links also present in IPv4.
#include <iostream>

#include "harness.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace htor;
  bench::print_header("T1 / bench_sec3_dataset",
                      "346,649 IPv6 paths; 10,535 IPv6 links; 7,618 dual-stack links");

  const auto ds = bench::make_dataset();
  const auto census = core::run_census(ds.rib, ds.dict);

  Table t({"metric", "paper (Aug 2010)", "measured (synthetic)"});
  t.row({"IPv6 AS paths (distinct)", "346649", std::to_string(census.v6_paths)});
  t.row({"IPv6 AS links", "10535", std::to_string(census.v6_links)});
  t.row({"IPv4/IPv6 (dual-stack) links", "7618", std::to_string(census.dual_links)});
  t.row({"dual-stack share of IPv6 links", "72.3%",
         fmt_pct(census.dual_links, census.v6_links)});
  t.row({"IPv4 AS paths (distinct)", "-", std::to_string(census.v4_paths)});
  t.row({"IPv4 AS links", "-", std::to_string(census.v4_links)});
  t.row({"MRT dump size (bytes)", "-", std::to_string(ds.mrt_bytes)});
  t.row({"MRT records parsed", "-", std::to_string(ds.mrt_records)});
  t.print(std::cout);
  return 0;
}
