#include "topology/reachability.hpp"

#include <deque>

#include "util/error.hpp"

namespace htor {

EdgeKind edge_kind(Relationship rel_a_to_b) {
  switch (rel_a_to_b) {
    case Relationship::C2P: return EdgeKind::Up;    // b is a's provider: climbing
    case Relationship::P2C: return EdgeKind::Down;  // b is a's customer: descending
    case Relationship::P2P: return EdgeKind::Peer;
    case Relationship::S2S: return EdgeKind::Sib;
    case Relationship::Unknown: break;
  }
  throw InvalidArgument("edge_kind: Unknown relationship");
}

std::vector<std::int32_t> valley_free_distances(const AdjacencyList& adj, std::uint32_t src) {
  const std::size_t n = adj.size();
  if (src >= n) throw InvalidArgument("valley_free_distances: src out of range");

  // dist[2*node + phase]
  std::vector<std::int32_t> dist(2 * n, kUnreachable);
  std::deque<std::uint32_t> queue;
  dist[2 * src + 0] = 0;
  queue.push_back(2 * src + 0);

  while (!queue.empty()) {
    const std::uint32_t state = queue.front();
    queue.pop_front();
    const std::uint32_t node = state / 2;
    const std::uint32_t phase = state % 2;
    const std::int32_t d = dist[state];

    for (const DirectedEdge& e : adj[node]) {
      std::uint32_t next_phase;
      switch (e.kind) {
        case EdgeKind::Up:
          if (phase != 0) continue;  // cannot climb after the summit
          next_phase = 0;
          break;
        case EdgeKind::Peer:
          if (phase != 0) continue;  // at most one peering link
          next_phase = 1;
          break;
        case EdgeKind::Down:
          next_phase = 1;
          break;
        case EdgeKind::Sib:
          next_phase = phase;
          break;
        default:
          continue;
      }
      const std::uint32_t next = 2 * e.to + next_phase;
      if (dist[next] != kUnreachable) continue;
      dist[next] = d + 1;
      queue.push_back(next);
    }
  }

  std::vector<std::int32_t> out(n, kUnreachable);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t d0 = dist[2 * i + 0];
    const std::int32_t d1 = dist[2 * i + 1];
    if (d0 == kUnreachable) {
      out[i] = d1;
    } else if (d1 == kUnreachable) {
      out[i] = d0;
    } else {
      out[i] = d0 < d1 ? d0 : d1;
    }
  }
  return out;
}

ValleyFreeRouting::ValleyFreeRouting(const AsGraph& graph, const RelationshipMap& rels,
                                     IpVersion af) {
  asns_ = graph.ases();
  index_of_.reserve(asns_.size());
  for (std::size_t i = 0; i < asns_.size(); ++i) {
    index_of_.emplace(asns_[i], static_cast<std::uint32_t>(i));
  }
  adj_.resize(asns_.size());
  graph.for_each_link(af, [&](const LinkKey& key) {
    const Relationship rel = rels.get(key.first, key.second);
    if (rel == Relationship::Unknown) return;
    const std::uint32_t a = index_of_.at(key.first);
    const std::uint32_t b = index_of_.at(key.second);
    adj_[a].push_back({b, edge_kind(rel)});
    adj_[b].push_back({a, edge_kind(reverse(rel))});
  });
}

std::uint32_t ValleyFreeRouting::index_of(Asn asn) const {
  auto it = index_of_.find(asn);
  if (it == index_of_.end()) {
    throw InvalidArgument("ValleyFreeRouting: unknown AS" + std::to_string(asn));
  }
  return it->second;
}

std::int32_t ValleyFreeRouting::distance(Asn src, Asn dst) const {
  auto s = index_of_.find(src);
  auto d = index_of_.find(dst);
  if (s == index_of_.end() || d == index_of_.end()) return kUnreachable;
  const auto dist = valley_free_distances(adj_, s->second);
  return dist[d->second];
}

std::vector<std::int32_t> ValleyFreeRouting::distances_from(Asn src) const {
  auto s = index_of_.find(src);
  if (s == index_of_.end()) return {};
  return valley_free_distances(adj_, s->second);
}

}  // namespace htor
