#include "snapshot/diff.hpp"

#include <algorithm>

namespace htor::snapshot {

namespace {

std::vector<LinkKey> sorted_hybrid_links(const Snapshot& snap) {
  std::vector<LinkKey> links;
  links.reserve(snap.hybrids.size());
  for (const auto& h : snap.hybrids) links.push_back(h.link);
  std::sort(links.begin(), links.end());
  return links;
}

}  // namespace

FamilyDiff diff_relationships(const RelationshipMap& a, const RelationshipMap& b) {
  const auto ea = sorted_entries(a);
  const auto eb = sorted_entries(b);
  FamilyDiff out;
  std::size_t i = 0;
  std::size_t j = 0;
  // Merge-walk the two canonical orderings; each link lands in exactly one
  // bucket.
  while (i < ea.size() || j < eb.size()) {
    if (j == eb.size() || (i < ea.size() && ea[i].first < eb[j].first)) {
      out.vanished.push_back(ea[i].first);
      ++i;
    } else if (i == ea.size() || eb[j].first < ea[i].first) {
      out.appeared.push_back(eb[j].first);
      ++j;
    } else {
      if (ea[i].second != eb[j].second) {
        out.flips.push_back({ea[i].first, ea[i].second, eb[j].second});
      } else {
        ++out.unchanged;
      }
      ++i;
      ++j;
    }
  }
  return out;
}

Diff diff_snapshots(const Snapshot& a, const Snapshot& b) {
  Diff out;
  out.v4 = diff_relationships(a.rels_v4, b.rels_v4);
  out.v6 = diff_relationships(a.rels_v6, b.rels_v6);

  const auto ha = sorted_hybrid_links(a);
  const auto hb = sorted_hybrid_links(b);
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < ha.size() || j < hb.size()) {
    if (j == hb.size() || (i < ha.size() && ha[i] < hb[j])) {
      out.hybrids_resolved.push_back(ha[i]);
      ++i;
    } else if (i == ha.size() || hb[j] < ha[i]) {
      out.hybrids_formed.push_back(hb[j]);
      ++j;
    } else {
      ++out.hybrids_stable;
      ++i;
      ++j;
    }
  }
  return out;
}

}  // namespace htor::snapshot
