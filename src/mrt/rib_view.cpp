#include "mrt/rib_view.hpp"

#include <algorithm>
#include <map>

#include "core/parallel.hpp"
#include "obs/sketch/telemetry.hpp"
#include "util/error.hpp"

namespace htor::mrt {

namespace {

/// Feed a route's links through the global Bloom seen-set, in path order.
/// Runs on the sequential apply leg only, so the feed order is the record
/// order — identical for every --jobs value and for both ingest paths.
void note_route_links(obs::sketch::Telemetry& telemetry, const ObservedRoute& route) {
  std::uint32_t prev = 0;
  bool have_prev = false;
  for (const std::uint32_t asn : route.as_path) {
    if (have_prev && asn == prev) continue;
    if (have_prev) telemetry.note_link_seen(obs::sketch::link_item(prev, asn));
    prev = asn;
    have_prev = true;
  }
}

}  // namespace

void join_rib_record(const RibPrefixRecord& rib_rec, const PeerIndexTable& peers,
                     std::vector<ObservedRoute>& out) {
  for (const auto& entry : rib_rec.entries) {
    if (entry.peer_index >= peers.peers.size()) {
      throw DecodeError("RIB entry peer index " + std::to_string(entry.peer_index) +
                        " out of range");
    }
    ObservedRoute route;
    route.af = rib_rec.prefix.version();
    route.prefix = rib_rec.prefix;
    route.peer_asn = peers.peers[entry.peer_index].asn;
    route.as_path = entry.attrs.as_path.flatten();
    route.local_pref = entry.attrs.local_pref;
    route.communities = entry.attrs.communities;
    out.push_back(std::move(route));
  }
}

void ObservedRib::add(ObservedRoute route) {
  if (route.af == IpVersion::V4) {
    ++v4_count_;
  } else {
    ++v6_count_;
  }
  routes_.push_back(std::move(route));
}

std::vector<const ObservedRoute*> ObservedRib::routes_of(IpVersion af) const {
  std::vector<const ObservedRoute*> out;
  out.reserve(size_of(af));
  for (const auto& r : routes_) {
    if (r.af == af) out.push_back(&r);
  }
  return out;
}

std::size_t ObservedRib::size_of(IpVersion af) const {
  return af == IpVersion::V4 ? v4_count_ : v6_count_;
}

ObservedRib rib_from_records(const std::vector<Record>& records) {
  ObservedRib rib;
  auto& telemetry = obs::sketch::Telemetry::global();
  obs::sketch::IngestBundle sketches;
  const PeerIndexTable* peers = nullptr;
  for (const auto& record : records) {
    if (const auto* pit = std::get_if<PeerIndexTable>(&record.body)) {
      peers = pit;
      continue;
    }
    const auto* rib_rec = std::get_if<RibPrefixRecord>(&record.body);
    if (rib_rec == nullptr) continue;  // BGP4MP / raw records are not RIB state
    if (peers == nullptr) {
      throw DecodeError("RIB record before any PEER_INDEX_TABLE");
    }
    std::vector<ObservedRoute> joined;
    join_rib_record(*rib_rec, *peers, joined);
    for (auto& route : joined) {
      sketches.add_route(route.prefix, route.as_path);
      note_route_links(telemetry, route);
      rib.add(std::move(route));
    }
  }
  telemetry.absorb(sketches);
  return rib;
}

ObservedRib rib_from_records(const std::vector<Record>& records, ThreadPool& pool) {
  // Sequential pre-scan: pair every RIB record with its governing peer
  // table, preserving record order (and the fail-fast on orphan records).
  std::vector<std::pair<const RibPrefixRecord*, const PeerIndexTable*>> joins;
  joins.reserve(records.size());
  const PeerIndexTable* peers = nullptr;
  for (const auto& record : records) {
    if (const auto* pit = std::get_if<PeerIndexTable>(&record.body)) {
      peers = pit;
      continue;
    }
    const auto* rib_rec = std::get_if<RibPrefixRecord>(&record.body);
    if (rib_rec == nullptr) continue;  // BGP4MP / raw records are not RIB state
    if (peers == nullptr) {
      throw DecodeError("RIB record before any PEER_INDEX_TABLE");
    }
    joins.emplace_back(rib_rec, peers);
  }

  // The per-record attribute joins (AS_SET flattening, community copies)
  // shard on the pool; shards merge in record order.
  struct DecodedShard {
    std::vector<ObservedRoute> routes;
    obs::sketch::IngestBundle sketches;
  };
  auto shards = core::shard_map(pool, joins.size(), [&joins](const core::ShardRange& range) {
    DecodedShard out;
    for (std::size_t i = range.begin; i < range.end; ++i) {
      const std::size_t first = out.routes.size();
      join_rib_record(*joins[i].first, *joins[i].second, out.routes);
      for (std::size_t r = first; r < out.routes.size(); ++r) {
        out.sketches.add_route(out.routes[r].prefix, out.routes[r].as_path);
      }
    }
    return out;
  });

  ObservedRib rib;
  auto& telemetry = obs::sketch::Telemetry::global();
  for (auto& shard : shards) {
    telemetry.absorb(shard.sketches);
    for (auto& route : shard.routes) {
      note_route_links(telemetry, route);
      rib.add(std::move(route));
    }
  }
  return rib;
}

std::vector<Record> records_from_rib(const ObservedRib& rib, std::uint32_t collector_bgp_id,
                                     const std::string& view_name, std::uint32_t timestamp) {
  // Stable peer table: peers sorted by ASN.
  std::vector<Asn> peer_asns;
  for (const auto& route : rib.routes()) peer_asns.push_back(route.peer_asn);
  std::sort(peer_asns.begin(), peer_asns.end());
  peer_asns.erase(std::unique(peer_asns.begin(), peer_asns.end()), peer_asns.end());

  // The PEER_INDEX_TABLE peer count and the per-entry peer index are both
  // 16-bit fields (RFC 6396 §4.3): a RIB with more vantage peers than that
  // is unrepresentable in TABLE_DUMP_V2, not truncatable.
  constexpr std::size_t kMaxPeers = 65535;
  if (peer_asns.size() > kMaxPeers) {
    throw InvalidArgument("RIB has " + std::to_string(peer_asns.size()) +
                          " distinct peers; TABLE_DUMP_V2 peer indexes are 16-bit (max " +
                          std::to_string(kMaxPeers) + ")");
  }

  PeerIndexTable pit;
  pit.collector_bgp_id = collector_bgp_id;
  pit.view_name = view_name;
  std::unordered_map<Asn, std::uint16_t> peer_index;
  for (Asn asn : peer_asns) {
    PeerEntry entry;
    entry.asn = asn;
    entry.bgp_id = 0xc0000000u | asn;  // synthetic router id
    entry.address = IpAddress::v4(0x0a000000u | (asn & 0x00ffffffu));
    peer_index.emplace(asn, static_cast<std::uint16_t>(pit.peers.size()));
    pit.peers.push_back(std::move(entry));
  }

  // Group routes by prefix, deterministically ordered.
  std::map<Prefix, std::vector<const ObservedRoute*>> by_prefix;
  for (const auto& route : rib.routes()) by_prefix[route.prefix].push_back(&route);

  std::vector<Record> records;
  records.reserve(by_prefix.size() + 1);
  records.push_back(Record{timestamp, pit});

  std::uint32_t sequence = 0;
  for (const auto& [prefix, routes] : by_prefix) {
    RibPrefixRecord rec;
    rec.sequence = sequence++;
    rec.prefix = prefix;
    for (const ObservedRoute* route : routes) {
      RibEntry entry;
      entry.peer_index = peer_index.at(route->peer_asn);
      entry.originated_time = timestamp;
      entry.attrs.origin = bgp::Origin::Igp;
      entry.attrs.as_path = bgp::AsPath::sequence(route->as_path);
      entry.attrs.local_pref = route->local_pref;
      entry.attrs.communities = route->communities;
      if (prefix.version() == IpVersion::V4) {
        entry.attrs.next_hop = IpAddress::v4(0x0a000000u | (route->peer_asn & 0x00ffffffu));
      } else {
        bgp::MpReachNlri mp;
        mp.afi = bgp::Afi::Ipv6;
        mp.safi = bgp::Safi::Unicast;
        std::array<std::uint8_t, 16> nh{};
        nh[0] = 0x20;
        nh[1] = 0x01;
        nh[2] = 0x0d;
        nh[3] = 0xb8;
        nh[12] = static_cast<std::uint8_t>(route->peer_asn >> 24);
        nh[13] = static_cast<std::uint8_t>(route->peer_asn >> 16);
        nh[14] = static_cast<std::uint8_t>(route->peer_asn >> 8);
        nh[15] = static_cast<std::uint8_t>(route->peer_asn);
        mp.next_hops = {IpAddress::v6(nh)};
        // NLRI lives in the RIB record header (abbreviated MRT form).
        entry.attrs.mp_reach = std::move(mp);
      }
      rec.entries.push_back(std::move(entry));
    }
    records.push_back(Record{timestamp, std::move(rec)});
  }
  return records;
}

}  // namespace htor::mrt
