// Autonomous System Numbers.
//
// ASNs are 32-bit (RFC 6793); AS_TRANS (23456) is the 16-bit placeholder used
// by old speakers.  We keep Asn a plain integer type for cheap use as a graph
// node id, and provide the textual conventions (asplain / asdot) here.
#pragma once

#include <cstdint>
#include <string>

namespace htor {

using Asn = std::uint32_t;

/// RFC 6793 placeholder for 4-byte ASNs on 2-byte sessions.
inline constexpr Asn kAsTrans = 23456;

/// Largest value of a 2-byte ASN.
inline constexpr Asn kMax16BitAsn = 65535;

inline bool is_4byte(Asn asn) { return asn > kMax16BitAsn; }

/// "asplain" form: plain decimal (RFC 5396 canonical form).
inline std::string to_asplain(Asn asn) { return std::to_string(asn); }

/// "asdot" form: high.low for 4-byte ASNs, decimal otherwise.
inline std::string to_asdot(Asn asn) {
  if (!is_4byte(asn)) return std::to_string(asn);
  return std::to_string(asn >> 16) + "." + std::to_string(asn & 0xffff);
}

}  // namespace htor
