#include "core/rosetta.hpp"

#include <array>
#include <unordered_map>

namespace htor::core {

namespace {

std::size_t rel_index(Relationship rel) {
  switch (rel) {
    case Relationship::P2C: return 0;
    case Relationship::C2P: return 1;
    case Relationship::P2P: return 2;
    case Relationship::S2S: return 3;
    default: return 4;
  }
}

Relationship rel_from_index(std::size_t i) {
  constexpr std::array<Relationship, 4> kRels{Relationship::P2C, Relationship::C2P,
                                              Relationship::P2P, Relationship::S2S};
  return i < 4 ? kRels[i] : Relationship::Unknown;
}

/// First link of the route after collapsing prepends; false when the path is
/// too short.
bool first_hop(const mrt::ObservedRoute& route, Asn& vantage, Asn& next) {
  const auto& p = route.as_path;
  if (p.empty()) return false;
  vantage = p.front();
  for (Asn a : p) {
    if (a != vantage) {
      next = a;
      return true;
    }
  }
  return false;
}

/// Does the route carry a LocPrf-overriding TE community issued by `asn`?
bool has_te_override(const mrt::ObservedRoute& route, Asn asn,
                     const rpsl::CommunityDictionary& dict) {
  for (bgp::Community c : route.communities) {
    if (c.asn() != asn) continue;
    const rpsl::CommunityMeaning* meaning = dict.lookup(c);
    if (meaning != nullptr && meaning->kind == rpsl::CommunityTagKind::SetLocPref) return true;
  }
  // Well-known scoping communities also disqualify a route from calibration.
  for (bgp::Community c : route.communities) {
    if (c == bgp::kNoExport || c == bgp::kNoAdvertise) return true;
  }
  return false;
}

}  // namespace

RosettaResult run_rosetta(const std::vector<const mrt::ObservedRoute*>& routes,
                          const rpsl::CommunityDictionary& dict, const RelationshipMap& known,
                          const RosettaParams& params) {
  RosettaResult result;

  // Learning pass: (vantage, locpref) -> per-relationship sample counts.
  struct Key {
    Asn vantage;
    std::uint32_t locpref;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::uint64_t>()(static_cast<std::uint64_t>(k.vantage) << 32 | k.locpref);
    }
  };
  std::unordered_map<Key, std::array<std::uint32_t, 4>, KeyHash> samples;

  for (const mrt::ObservedRoute* route : routes) {
    if (!route->local_pref) continue;
    Asn vantage = 0;
    Asn next = 0;
    if (!first_hop(*route, vantage, next)) continue;
    if (params.filter_te && has_te_override(*route, vantage, dict)) {
      ++result.routes_te_filtered;
      continue;
    }
    const Relationship rel = known.get(vantage, next);
    if (rel == Relationship::Unknown) continue;
    const std::size_t idx = rel_index(rel);
    if (idx >= 4) continue;
    ++samples[Key{vantage, *route->local_pref}][idx];
  }

  // Consolidate: a value is usable when exactly one relationship explains
  // all its samples and the sample count clears the threshold.
  std::unordered_map<Key, Relationship, KeyHash> translation;
  for (const auto& [key, counts] : samples) {
    std::size_t nonzero = 0;
    std::size_t winner = 0;
    std::uint32_t total = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      total += counts[i];
      if (counts[i] > 0) {
        ++nonzero;
        winner = i;
      }
    }
    if (nonzero != 1) {
      ++result.values_ambiguous;
      continue;
    }
    if (total < params.min_samples) continue;
    translation.emplace(key, rel_from_index(winner));
    ++result.values_learned;
  }

  // Application pass: type uncovered first-hop links by translated LocPrf.
  for (const mrt::ObservedRoute* route : routes) {
    if (!route->local_pref) continue;
    Asn vantage = 0;
    Asn next = 0;
    if (!first_hop(*route, vantage, next)) continue;
    if (known.get(vantage, next) != Relationship::Unknown) continue;
    if (params.filter_te && has_te_override(*route, vantage, dict)) continue;
    auto it = translation.find(Key{vantage, *route->local_pref});
    if (it == translation.end()) continue;
    if (result.first_hop_rels.get(vantage, next) == Relationship::Unknown) {
      result.first_hop_rels.set(vantage, next, it->second);
    }
    ++result.routes_resolved;
  }
  return result;
}

}  // namespace htor::core
