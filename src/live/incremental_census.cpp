#include "live/incremental_census.hpp"

#include <algorithm>
#include <utility>

#include "core/community_inference.hpp"
#include "core/snapshot_bridge.hpp"
#include "obs/sketch/telemetry.hpp"
#include "topology/valley.hpp"

namespace htor::live {

namespace {

// Mirrors the P2C/C2P/P2P/S2S vote-slot order of core/community_inference.cpp
// — the live tally must agree with tally_community_votes bit for bit.
Relationship rel_from_index(std::size_t i) {
  switch (i) {
    case 0: return Relationship::P2C;
    case 1: return Relationship::C2P;
    case 2: return Relationship::P2P;
    case 3: return Relationship::S2S;
    default: return Relationship::Unknown;
  }
}

/// Distinct canonical links of one path, adjacent prepends skipped —
/// the same link set PathStore::links() derives from the path.
std::vector<LinkKey> path_links(const std::vector<Asn>& path) {
  std::vector<LinkKey> out;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (path[i] == path[i + 1]) continue;
    LinkKey key(path[i], path[i + 1]);
    if (std::find(out.begin(), out.end(), key) == out.end()) out.push_back(key);
  }
  return out;
}

/// The batch tally rule for one vote histogram: majority winner, with ties
/// and sub-threshold counts landing in "conflicted".  Must match
/// core::tally_community_votes exactly.
struct TallyOutcome {
  Relationship rel = Relationship::Unknown;
  bool conflicted = false;
  bool any_votes = false;
};

TallyOutcome tally(const std::array<std::uint32_t, 4>& vote,
                   const core::CommunityInferenceParams& params) {
  TallyOutcome out;
  std::uint64_t total = 0;
  std::size_t best = 0;
  std::size_t with_max = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    total += vote[i];
    if (vote[i] > vote[best]) best = i;
  }
  if (total == 0) return out;
  out.any_votes = true;
  for (std::size_t i = 0; i < 4; ++i) {
    if (vote[i] == vote[best]) ++with_max;
  }
  if (with_max > 1 || vote[best] < params.min_votes ||
      static_cast<double>(vote[best]) < params.majority * static_cast<double>(total)) {
    out.conflicted = true;
    return out;
  }
  out.rel = rel_from_index(best);
  return out;
}

}  // namespace

bool IncrementalCensus::LinkState::has_votes() const {
  for (std::uint32_t v : votes_v4) {
    if (v != 0) return true;
  }
  for (std::uint32_t v : votes_v6) {
    if (v != 0) return true;
  }
  return false;
}

bool IncrementalCensus::LinkState::dead() const {
  return paths_v4 == 0 && paths_v6 == 0 && !has_votes();
}

IncrementalCensus::IncrementalCensus(const mrt::ObservedRib& rib,
                                     rpsl::CommunityDictionary dict,
                                     core::InferenceConfig config, std::string source,
                                     std::uint32_t seed_timestamp)
    : dict_(std::move(dict)),
      config_(std::move(config)),
      source_(std::move(source)),
      seed_timestamp_(seed_timestamp) {
  rib_.seed(rib);
  // Fold the *table* (post last-wins dedup), not the input vector: the live
  // tier must describe what the RIB holds, and seed() may have collapsed
  // duplicate (family, prefix, peer) rows.
  rib_.for_each([this](const mrt::ObservedRoute& route) { add_route(route); });
  stats_.routes = rib_.size();
}

void IncrementalCensus::apply(std::uint32_t timestamp, const mrt::Bgp4mpMessage& msg) {
  ApplyDelta delta = rib_.apply(msg);  // throws before any mutation
  for (const auto& route : delta.removed) remove_route(route);
  for (const auto& route : delta.added) add_route(route);
  // Epoch churn: every entity a removed OR added route touches counts as
  // churned.  HLL adds are idempotent, so a route that flaps repeatedly
  // within one epoch still counts each entity once.
  for (const auto* routes : {&delta.removed, &delta.added}) {
    for (const auto& route : *routes) {
      churn_prefixes_.add(obs::sketch::prefix_item(route.prefix));
      std::uint32_t prev = 0;
      bool have_prev = false;
      for (const std::uint32_t asn : route.as_path) {
        if (have_prev && asn == prev) continue;
        churn_ases_.add(obs::sketch::as_item(asn));
        if (have_prev) churn_links_.add(obs::sketch::link_item(prev, asn));
        prev = asn;
        have_prev = true;
      }
    }
  }
  ++applied_;
  last_timestamp_ = timestamp;
  stats_.routes = rib_.size();
}

void IncrementalCensus::add_route(const mrt::ObservedRoute& route) {
  const bool v4 = route.af == IpVersion::V4;
  if (route.as_path.size() >= 2) {  // PathStore ignores shorter paths
    auto& paths = v4 ? paths_v4_ : paths_v6_;
    if (++paths[route.as_path] == 1) {
      (v4 ? stats_.v4_paths : stats_.v6_paths)++;
      for (const LinkKey& key : path_links(route.as_path)) {
        LinkState& state = links_[key];
        std::uint64_t& refs = v4 ? state.paths_v4 : state.paths_v6;
        if (++refs == 1) {
          (v4 ? stats_.v4_links : stats_.v6_links)++;
          if ((v4 ? state.paths_v6 : state.paths_v4) > 0) stats_.dual_links++;
        }
        update_derived(key, state);
      }
    }
    classify_route(route);
  }
  apply_votes(route, +1);
}

void IncrementalCensus::remove_route(const mrt::ObservedRoute& route) {
  const bool v4 = route.af == IpVersion::V4;
  if (route.as_path.size() >= 2) {
    auto& paths = v4 ? paths_v4_ : paths_v6_;
    auto it = paths.find(route.as_path);
    if (it != paths.end() && --it->second == 0) {
      paths.erase(it);
      (v4 ? stats_.v4_paths : stats_.v6_paths)--;
      for (const LinkKey& key : path_links(route.as_path)) {
        auto link_it = links_.find(key);
        if (link_it == links_.end()) continue;
        LinkState& state = link_it->second;
        std::uint64_t& refs = v4 ? state.paths_v4 : state.paths_v6;
        if (refs > 0 && --refs == 0) {
          (v4 ? stats_.v4_links : stats_.v6_links)--;
          if ((v4 ? state.paths_v6 : state.paths_v4) > 0) stats_.dual_links--;
        }
        update_derived(key, state);
        if (state.dead()) links_.erase(link_it);
      }
    }
  }
  apply_votes(route, -1);
}

void IncrementalCensus::apply_votes(const mrt::ObservedRoute& route, int sign) {
  const std::vector<const mrt::ObservedRoute*> one{&route};
  const core::CommunityVotes votes = core::scan_community_votes(one, 0, 1, dict_);
  if (votes.votes.empty()) return;
  // The scan is a pure function of the route, so the histogram subtracted at
  // withdraw time is exactly the one added at announce time — retraction is
  // exact, never approximate.
  const bool v4 = route.af == IpVersion::V4;
  if (sign > 0) {
    stats_.total_votes += votes.total_votes;
  } else {
    stats_.total_votes -= votes.total_votes;
  }
  for (const auto& [key, vote] : votes.votes) {
    LinkState& state = links_[key];
    auto& slots = v4 ? state.votes_v4 : state.votes_v6;
    for (std::size_t i = 0; i < 4; ++i) {
      if (sign > 0) {
        slots[i] += vote[i];
      } else {
        slots[i] -= vote[i];
      }
    }
    retally(key, state);
    auto it = links_.find(key);
    if (it != links_.end() && it->second.dead()) links_.erase(it);
  }
}

void IncrementalCensus::retally(const LinkKey& key, LinkState& state) {
  const auto& params = config_.community;
  const TallyOutcome v4 = tally(state.votes_v4, params);
  const TallyOutcome v6 = tally(state.votes_v6, params);

  // Diff old state -> new outcome, keeping every aggregate exact.
  const bool had_votes_v4 = state.rel_v4 != Relationship::Unknown || state.conflicted_v4;
  const bool had_votes_v6 = state.rel_v6 != Relationship::Unknown || state.conflicted_v6;
  if (v4.any_votes != had_votes_v4) stats_.links_with_votes_v4 += v4.any_votes ? 1 : -1;
  if (v6.any_votes != had_votes_v6) stats_.links_with_votes_v6 += v6.any_votes ? 1 : -1;

  if ((v4.rel != Relationship::Unknown) != (state.rel_v4 != Relationship::Unknown)) {
    stats_.typed_links_v4 += v4.rel != Relationship::Unknown ? 1 : -1;
  }
  if ((v6.rel != Relationship::Unknown) != (state.rel_v6 != Relationship::Unknown)) {
    stats_.typed_links_v6 += v6.rel != Relationship::Unknown ? 1 : -1;
  }
  if (v4.conflicted != state.conflicted_v4) stats_.conflicted_links_v4 += v4.conflicted ? 1 : -1;
  if (v6.conflicted != state.conflicted_v6) stats_.conflicted_links_v6 += v6.conflicted ? 1 : -1;

  if (v4.rel != state.rel_v4) {
    if (v4.rel == Relationship::Unknown) {
      rels_v4_.erase(key.first, key.second);
    } else {
      rels_v4_.set(key.first, key.second, v4.rel);
    }
    state.rel_v4 = v4.rel;
  }
  if (v6.rel != state.rel_v6) {
    if (v6.rel == Relationship::Unknown) {
      rels_v6_.erase(key.first, key.second);
    } else {
      rels_v6_.set(key.first, key.second, v6.rel);
    }
    state.rel_v6 = v6.rel;
  }
  state.conflicted_v4 = v4.conflicted;
  state.conflicted_v6 = v6.conflicted;

  update_derived(key, state);
}

void IncrementalCensus::update_derived(const LinkKey& key, LinkState& state) {
  (void)key;
  const bool hybrid = state.paths_v4 > 0 && state.paths_v6 > 0 &&
                      state.rel_v4 != Relationship::Unknown &&
                      state.rel_v6 != Relationship::Unknown && state.rel_v4 != state.rel_v6;
  if (hybrid != state.hybrid) {
    stats_.hybrid_links += hybrid ? 1 : -1;
    state.hybrid = hybrid;
  }
}

void IncrementalCensus::classify_route(const mrt::ObservedRoute& route) {
  const RelationshipMap& rels = route.af == IpVersion::V4 ? rels_v4_ : rels_v6_;
  switch (check_valley_free(route.as_path, rels).cls) {
    case PathPolicyClass::ValleyFree: stats_.valley_free_seen++; break;
    case PathPolicyClass::Valley: stats_.valleys_seen++; break;
    case PathPolicyClass::Incomplete: stats_.incomplete_seen++; break;
  }
}

EpochReport IncrementalCensus::recompute(ThreadPool& pool) const {
  EpochReport epoch;
  epoch.report = core::run_census(rib_.materialize(), dict_, config_, pool);
  epoch.applied = applied_;
  epoch.last_timestamp = applied_ == 0 ? seed_timestamp_ : last_timestamp_;
  epoch.snap = core::to_snapshot(epoch.report, source_, epoch.last_timestamp);
  const ChurnEstimates churn = epoch_churn();
  epoch.churn_ases = churn.ases;
  epoch.churn_prefixes = churn.prefixes;
  epoch.churn_links = churn.links;
  return epoch;
}

IncrementalCensus::ChurnEstimates IncrementalCensus::epoch_churn() const {
  ChurnEstimates out;
  out.ases = churn_ases_.estimate_count();
  out.prefixes = churn_prefixes_.estimate_count();
  out.links = churn_links_.estimate_count();
  return out;
}

void IncrementalCensus::reset_epoch_churn() {
  churn_ases_.reset();
  churn_prefixes_.reset();
  churn_links_.reset();
}

}  // namespace htor::live
