#include "core/community_inference.hpp"

#include <unordered_map>

namespace htor::core {

namespace {

std::vector<Asn> collapse(const std::vector<Asn>& path) {
  std::vector<Asn> out;
  out.reserve(path.size());
  for (Asn a : path) {
    if (out.empty() || out.back() != a) out.push_back(a);
  }
  return out;
}

/// Votes per canonical link, indexed by the canonical relationship
/// (rel(key.first -> key.second)) as P2C/C2P/P2P/S2S.
using VoteArray = std::array<std::uint32_t, 4>;

std::size_t rel_index(Relationship rel) {
  switch (rel) {
    case Relationship::P2C: return 0;
    case Relationship::C2P: return 1;
    case Relationship::P2P: return 2;
    case Relationship::S2S: return 3;
    case Relationship::Unknown: break;
  }
  return 4;
}

Relationship rel_from_index(std::size_t i) {
  switch (i) {
    case 0: return Relationship::P2C;
    case 1: return Relationship::C2P;
    case 2: return Relationship::P2P;
    case 3: return Relationship::S2S;
    default: return Relationship::Unknown;
  }
}

}  // namespace

CommunityInferenceResult infer_from_communities(
    const std::vector<const mrt::ObservedRoute*>& routes,
    const rpsl::CommunityDictionary& dict, const CommunityInferenceParams& params) {
  CommunityInferenceResult result;
  std::unordered_map<LinkKey, VoteArray, LinkKeyHash> votes;

  std::unordered_map<Asn, std::size_t> position;  // reused per route
  for (const mrt::ObservedRoute* route : routes) {
    const std::vector<Asn> chain = collapse(route->as_path);
    if (chain.size() < 2) continue;

    position.clear();
    for (std::size_t i = 0; i < chain.size(); ++i) position.emplace(chain[i], i);

    bool contributed = false;
    for (bgp::Community community : route->communities) {
      const rpsl::CommunityMeaning* meaning = dict.lookup(community);
      if (meaning == nullptr || !rpsl::is_relationship_tag(meaning->kind)) continue;

      // Localize: the tagging AS must sit on this path with a next hop
      // toward the origin.
      auto it = position.find(community.asn());
      if (it == position.end() || it->second + 1 >= chain.size()) continue;
      const Asn tagger = chain[it->second];
      const Asn from = chain[it->second + 1];

      const Relationship rel = rpsl::relationship_of(meaning->kind);  // rel(tagger, from)
      const LinkKey key(tagger, from);
      const Relationship canonical = key.first == tagger ? rel : reverse(rel);
      const std::size_t idx = rel_index(canonical);
      if (idx >= 4) continue;
      ++votes[key][idx];
      ++result.total_votes;
      contributed = true;
    }
    if (contributed) ++result.tagged_routes;
  }

  result.links_with_votes = votes.size();
  for (const auto& [key, vote] : votes) {
    std::uint64_t total = 0;
    std::size_t best = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      total += vote[i];
      if (vote[i] > vote[best]) best = i;
    }
    if (vote[best] < params.min_votes ||
        static_cast<double>(vote[best]) < params.majority * static_cast<double>(total)) {
      ++result.conflicted_links;
      continue;
    }
    result.rels.set(key.first, key.second, rel_from_index(best));
  }
  return result;
}

}  // namespace htor::core
