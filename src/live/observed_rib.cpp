#include "live/observed_rib.hpp"

#include <utility>

#include "bgp/as_path.hpp"
#include "util/error.hpp"

namespace htor::live {

namespace {

/// The announced-route template shared by every prefix an UPDATE carries:
/// path, LocPrf, and communities come from the attribute block once.
struct RouteTemplate {
  std::vector<Asn> as_path;
  std::optional<std::uint32_t> local_pref;
  std::vector<bgp::Community> communities;
};

void require_family(const Prefix& prefix, IpVersion af, const char* field) {
  if (prefix.version() != af) {
    throw DecodeError(std::string("BGP4MP update: ") + field + " carries a " +
                      to_string(prefix.version()) + " prefix");
  }
}

}  // namespace

void ObservedRib::seed(const mrt::ObservedRib& rib) {
  for (const auto& route : rib.routes()) {
    RouteKey key{route.af, route.prefix, route.peer_asn};
    auto [it, inserted] = routes_.insert_or_assign(key, route);
    if (inserted) (route.af == IpVersion::V4 ? v4_count_ : v6_count_)++;
  }
}

ApplyDelta ObservedRib::apply(const mrt::Bgp4mpMessage& msg) {
  ApplyDelta delta;
  const auto* update = std::get_if<bgp::UpdateMessage>(&msg.message);
  if (update == nullptr) {
    stats_.non_updates++;
    return delta;
  }

  // ---- validate everything before the first mutation -------------------
  // (strong exception safety: a DecodeError below must leave the table
  // untouched, so all structural checks run up front).
  const auto& attrs = update->attrs;
  for (const auto& p : update->withdrawn) require_family(p, IpVersion::V4, "withdrawn");
  for (const auto& p : update->nlri) require_family(p, IpVersion::V4, "nlri");
  if (attrs.mp_unreach) {
    for (const auto& p : attrs.mp_unreach->withdrawn) {
      require_family(p, IpVersion::V6, "MP_UNREACH_NLRI");
    }
  }
  if (attrs.mp_reach) {
    for (const auto& p : attrs.mp_reach->nlri) require_family(p, IpVersion::V6, "MP_REACH_NLRI");
  }

  const bool announces = !update->nlri.empty() ||
                         (attrs.mp_reach && !attrs.mp_reach->nlri.empty());
  RouteTemplate tmpl;
  if (announces) {
    tmpl.as_path = attrs.as_path.flatten();
    if (tmpl.as_path.empty()) {
      throw DecodeError("BGP4MP update announces prefixes without an AS_PATH");
    }
    tmpl.local_pref = attrs.local_pref;
    tmpl.communities = attrs.communities;
  }

  // ---- mutate ----------------------------------------------------------
  // Withdraw-then-announce, matching RFC 4271's reading of an UPDATE that
  // lists a prefix in both: the announcement wins.
  for (const auto& p : update->withdrawn) erase(RouteKey{IpVersion::V4, p, msg.peer_as}, delta);
  if (attrs.mp_unreach) {
    for (const auto& p : attrs.mp_unreach->withdrawn) {
      erase(RouteKey{IpVersion::V6, p, msg.peer_as}, delta);
    }
  }

  auto announce = [&](IpVersion af, const Prefix& p) {
    mrt::ObservedRoute route;
    route.af = af;
    route.prefix = p;
    route.peer_asn = msg.peer_as;
    route.as_path = tmpl.as_path;
    route.local_pref = tmpl.local_pref;
    route.communities = tmpl.communities;
    insert(std::move(route), delta);
  };
  for (const auto& p : update->nlri) announce(IpVersion::V4, p);
  if (attrs.mp_reach) {
    for (const auto& p : attrs.mp_reach->nlri) announce(IpVersion::V6, p);
  }

  stats_.messages++;
  return delta;
}

void ObservedRib::insert(mrt::ObservedRoute route, ApplyDelta& delta) {
  const IpVersion af = route.af;
  RouteKey key{route.af, route.prefix, route.peer_asn};
  auto it = routes_.find(key);
  if (it == routes_.end()) {
    delta.added.push_back(route);
    routes_.emplace(std::move(key), std::move(route));
    (af == IpVersion::V4 ? v4_count_ : v6_count_)++;
    stats_.announced++;
    return;
  }
  if (it->second == route) {
    stats_.duplicates++;
    return;
  }
  delta.removed.push_back(std::move(it->second));
  delta.added.push_back(route);
  it->second = std::move(route);
  stats_.replaced++;
}

void ObservedRib::erase(const RouteKey& key, ApplyDelta& delta) {
  auto it = routes_.find(key);
  if (it == routes_.end()) {
    stats_.withdrawn_missing++;
    return;
  }
  delta.removed.push_back(std::move(it->second));
  routes_.erase(it);
  (key.af == IpVersion::V4 ? v4_count_ : v6_count_)--;
  stats_.withdrawn++;
}

mrt::ObservedRib ObservedRib::materialize() const {
  mrt::ObservedRib out;
  for (const auto& [key, route] : routes_) out.add(route);
  return out;
}

}  // namespace htor::live
