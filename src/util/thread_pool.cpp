#include "util/thread_pool.hpp"

namespace htor {

ThreadPool::ThreadPool(std::size_t jobs) {
  if (jobs == 0) jobs = hardware_threads();
  if (jobs <= 1) return;  // inline mode
  workers_.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::size_t ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

std::size_t ThreadPool::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Count before running: the increment is sequenced before the
    // packaged_task fulfils its future, so a caller that has waited on a
    // future is guaranteed to observe its task in executed().
    executed_.fetch_add(1, std::memory_order_relaxed);
    task();  // packaged_task captures exceptions into the future
  }
}

}  // namespace htor
