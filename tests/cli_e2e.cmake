# End-to-end exercise of the hybridtor CLI, run as a CTest:
#   1. `generate` into a fresh (nested, not pre-created) temp dir — exit 0,
#      all three artifacts present.
#   2. `census` on the artifacts — exit 0, key report lines present.
#   3. `census --jobs 4` — byte-identical output to --jobs 1.
#   3b. `census --no-stream` (load-all ingest) at --jobs 1 and 4 —
#       byte-identical to the default streaming ingest.
#   4. `census` on a missing rib.mrt — non-zero exit, diagnostic names the file.
#   5. `census` on a truncated rib.mrt — non-zero exit, no partial report
#      (skipped on hosts without /bin/sh, which is what clips the file).
#   6. Snapshot store loop: generate a second synthetic Internet with a
#      different seed, census both with `--snapshot-out`; snapshot files are
#      byte-identical across --jobs values; `diff` of the two seeds reports
#      nonzero churn; `diff` of a snapshot against itself reports zero churn;
#      `query` resolves a known link (from truth.csv) in pair and
#      neighbor-list mode; `diff`/`query` on a truncated snapshot fail
#      without partial output.
#   7. `generate` argument validation: a garbage seed ("12x") and a trailing
#      positional argument are both rejected.
#   8. Unknown options ("--frobnicate", "-x") are rejected with a reasoned
#      usage error instead of being swallowed as positional file arguments.
#   9. `query --json` emits the machine-readable shape (the same bytes the
#      query daemon serves; byte-level identity is proven by
#      test_server_e2e), in pair, neighbor, and not-found modes; --json on
#      another subcommand is rejected.
#
# Invoked as:
#   cmake -DHYBRIDTOR=<path> -DWORK_DIR=<dir> -P cli_e2e.cmake
cmake_minimum_required(VERSION 3.20)

if(NOT DEFINED HYBRIDTOR OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DHYBRIDTOR=<cli> -DWORK_DIR=<dir> -P cli_e2e.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
# Deliberately do NOT create the nested data dir: generate must create it.
set(DATA_DIR "${WORK_DIR}/data/nested")

# -------------------------------------------------------------- 1. generate
execute_process(COMMAND "${HYBRIDTOR}" generate "${DATA_DIR}" 7
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed (rc=${rc}): ${out}${err}")
endif()
foreach(artifact rib.mrt irr.txt truth.csv)
  if(NOT EXISTS "${DATA_DIR}/${artifact}")
    message(FATAL_ERROR "generate did not write ${artifact}")
  endif()
endforeach()

# -------------------------------------------------------------- 2. census
execute_process(COMMAND "${HYBRIDTOR}" census "${DATA_DIR}/rib.mrt" "${DATA_DIR}/irr.txt"
                RESULT_VARIABLE rc OUTPUT_VARIABLE census_j1 ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "census failed (rc=${rc}): ${err}")
endif()
foreach(needle
        "IPv6 AS paths"
        "IPv6 links with relationship"
        "dual-stack links"
        "hybrid links"
        "IPv6 valley paths"
        "sketch telemetry"
        "unique ASes (HLL)")
  string(FIND "${census_j1}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "census report is missing line '${needle}':\n${census_j1}")
  endif()
endforeach()

# -------------------------------------------------- 3. --jobs determinism
execute_process(COMMAND "${HYBRIDTOR}" census --jobs 4
                        "${DATA_DIR}/rib.mrt" "${DATA_DIR}/irr.txt"
                RESULT_VARIABLE rc OUTPUT_VARIABLE census_j4 ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "census --jobs 4 failed (rc=${rc}): ${err}")
endif()
if(NOT census_j1 STREQUAL census_j4)
  message(FATAL_ERROR "census --jobs 4 output differs from --jobs 1")
endif()

# ------------------------------------- 3b. streaming / load-all equivalence
# The default census path streams the MRT file; --no-stream selects the
# legacy load-all path.  Both must be byte-identical at --jobs 1 and 4.
foreach(njobs 1 4)
  execute_process(COMMAND "${HYBRIDTOR}" census --no-stream --jobs ${njobs}
                          "${DATA_DIR}/rib.mrt" "${DATA_DIR}/irr.txt"
                  RESULT_VARIABLE rc OUTPUT_VARIABLE census_nostream ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "census --no-stream --jobs ${njobs} failed (rc=${rc}): ${err}")
  endif()
  if(NOT census_nostream STREQUAL census_j1)
    message(FATAL_ERROR "census --no-stream --jobs ${njobs} output differs from streaming")
  endif()
endforeach()

# ----------------------------------------------------- 4. missing rib.mrt
execute_process(COMMAND "${HYBRIDTOR}" census "${DATA_DIR}/no_such.mrt" "${DATA_DIR}/irr.txt"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "census on a missing rib.mrt must fail")
endif()
string(FIND "${err}" "no_such.mrt" at)
if(at EQUAL -1)
  message(FATAL_ERROR "missing-file diagnostic does not name the file: ${err}")
endif()

# --------------------------------------------------- 5. truncated rib.mrt
# CMake script mode has no binary truncation primitive, so a shell clips the
# file; the check is skipped where /bin/sh does not exist.
find_program(SH_PROGRAM sh)
if(SH_PROGRAM)
  set(TRUNC "${DATA_DIR}/rib_truncated.mrt")
  file(SIZE "${DATA_DIR}/rib.mrt" rib_size)
  math(EXPR cut "${rib_size} - 7")
  execute_process(COMMAND "${SH_PROGRAM}" -c
                          "head -c ${cut} '${DATA_DIR}/rib.mrt' > '${TRUNC}'"
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "could not produce truncated rib.mrt")
  endif()
  execute_process(COMMAND "${HYBRIDTOR}" census "${TRUNC}" "${DATA_DIR}/irr.txt"
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "census on a truncated rib.mrt must fail")
  endif()
  if(NOT out STREQUAL "")
    message(FATAL_ERROR "census on a truncated rib.mrt printed a partial report:\n${out}")
  endif()
  string(FIND "${err}" "rib_truncated.mrt" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "truncation diagnostic does not name the file: ${err}")
  endif()
else()
  message(STATUS "cli_e2e: no sh found, skipping truncated-file check")
endif()

# ------------------------------------------------------- 6. snapshot store
set(DATA_DIR2 "${WORK_DIR}/data2")
execute_process(COMMAND "${HYBRIDTOR}" generate "${DATA_DIR2}" 8
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate (seed 8) failed (rc=${rc}): ${out}${err}")
endif()

set(SNAP_A "${WORK_DIR}/a.snap")
set(SNAP_A_J4 "${WORK_DIR}/a_j4.snap")
set(SNAP_B "${WORK_DIR}/b.snap")
execute_process(COMMAND "${HYBRIDTOR}" census --snapshot-out "${SNAP_A}"
                        "${DATA_DIR}/rib.mrt" "${DATA_DIR}/irr.txt"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT EXISTS "${SNAP_A}")
  message(FATAL_ERROR "census --snapshot-out failed (rc=${rc}): ${err}")
endif()
string(FIND "${out}" "wrote snapshot" at)
if(at EQUAL -1)
  message(FATAL_ERROR "census --snapshot-out did not report the snapshot:\n${out}")
endif()

# Snapshot files are part of the --jobs determinism contract: the bytes on
# disk must be identical at any pool size.
execute_process(COMMAND "${HYBRIDTOR}" census --jobs 4 --snapshot-out "${SNAP_A_J4}"
                        "${DATA_DIR}/rib.mrt" "${DATA_DIR}/irr.txt"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "census --jobs 4 --snapshot-out failed (rc=${rc}): ${err}")
endif()
file(SHA256 "${SNAP_A}" snap_a_hash)
file(SHA256 "${SNAP_A_J4}" snap_a_j4_hash)
if(NOT snap_a_hash STREQUAL snap_a_j4_hash)
  message(FATAL_ERROR "snapshot file differs between --jobs 1 and --jobs 4")
endif()

execute_process(COMMAND "${HYBRIDTOR}" census --snapshot-out "${SNAP_B}"
                        "${DATA_DIR2}/rib.mrt" "${DATA_DIR2}/irr.txt"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT EXISTS "${SNAP_B}")
  message(FATAL_ERROR "census --snapshot-out (seed 8) failed (rc=${rc}): ${err}")
endif()

# Two different seeds must show relationship churn.
execute_process(COMMAND "${HYBRIDTOR}" diff "${SNAP_A}" "${SNAP_B}"
                RESULT_VARIABLE rc OUTPUT_VARIABLE diff_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "diff a.snap b.snap failed (rc=${rc}): ${err}")
endif()
string(REGEX MATCH "total churn: ([0-9]+)" churn_match "${diff_out}")
if(churn_match STREQUAL "")
  message(FATAL_ERROR "diff output missing the total-churn line:\n${diff_out}")
endif()
if(CMAKE_MATCH_1 EQUAL 0)
  message(FATAL_ERROR "diff of two different seeds reported zero churn:\n${diff_out}")
endif()

# A snapshot against itself must be churn-free.
execute_process(COMMAND "${HYBRIDTOR}" diff "${SNAP_A}" "${SNAP_A}"
                RESULT_VARIABLE rc OUTPUT_VARIABLE diff_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "diff a.snap a.snap failed (rc=${rc}): ${err}")
endif()
string(REGEX MATCH "total churn: ([0-9]+)" churn_match "${diff_out}")
if(churn_match STREQUAL "" OR NOT CMAKE_MATCH_1 EQUAL 0)
  message(FATAL_ERROR "self-diff must report zero churn:\n${diff_out}")
endif()

# Query a known link: walk the planted ground truth until a link the census
# actually typed resolves (coverage is high but not 100%, so probe a few).
file(STRINGS "${DATA_DIR}/truth.csv" truth_lines)
list(LENGTH truth_lines truth_count)
set(query_as "")
foreach(idx RANGE 1 40)
  if(idx LESS truth_count AND query_as STREQUAL "")
    list(GET truth_lines ${idx} line)
    string(REPLACE "," ";" fields "${line}")
    list(GET fields 0 as_a)
    list(GET fields 1 as_b)
    execute_process(COMMAND "${HYBRIDTOR}" query "${SNAP_A}" "${as_a}" "${as_b}"
                    RESULT_VARIABLE rc OUTPUT_VARIABLE query_out ERROR_VARIABLE err)
    if(rc EQUAL 0)
      string(FIND "${query_out}" "AS${as_a} -> AS${as_b}" at)
      if(at EQUAL -1)
        message(FATAL_ERROR "query output does not name the link:\n${query_out}")
      endif()
      set(query_as "${as_a}")
      set(query_bs "${as_b}")
    endif()
  endif()
endforeach()
if(query_as STREQUAL "")
  message(FATAL_ERROR "no truth.csv link resolved against the snapshot")
endif()

# Neighbor-list mode on the AS that just resolved.
execute_process(COMMAND "${HYBRIDTOR}" query "${SNAP_A}" "${query_as}"
                RESULT_VARIABLE rc OUTPUT_VARIABLE query_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "query neighbor mode failed (rc=${rc}): ${err}")
endif()
string(FIND "${query_out}" "neighbors" at)
if(at EQUAL -1)
  message(FATAL_ERROR "neighbor query output missing the summary line:\n${query_out}")
endif()

# snapshot-upgrade re-encodes in the current format; on an already-v2 input
# it is the identity (the encoding is canonical), and the upgraded file
# answers queries byte-identically.
set(SNAP_UP "${WORK_DIR}/a_upgraded.snap")
execute_process(COMMAND "${HYBRIDTOR}" snapshot-upgrade "${SNAP_A}" "${SNAP_UP}"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "snapshot-upgrade failed (rc=${rc}): ${err}")
endif()
string(FIND "${out}" "format v2" at)
if(at EQUAL -1)
  message(FATAL_ERROR "snapshot-upgrade did not report the v2 format:\n${out}")
endif()
execute_process(COMMAND "${CMAKE_COMMAND}" -E compare_files "${SNAP_A}" "${SNAP_UP}"
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "upgrading a v2 snapshot changed its bytes")
endif()
execute_process(COMMAND "${HYBRIDTOR}" query --json "${SNAP_UP}" "${query_as}" "${query_bs}"
                RESULT_VARIABLE rc OUTPUT_VARIABLE up_out ERROR_VARIABLE err)
execute_process(COMMAND "${HYBRIDTOR}" query --json "${SNAP_A}" "${query_as}" "${query_bs}"
                RESULT_VARIABLE rc2 OUTPUT_VARIABLE a_out ERROR_VARIABLE err2)
if(NOT rc EQUAL 0 OR NOT rc2 EQUAL 0 OR NOT up_out STREQUAL a_out)
  message(FATAL_ERROR "query --json differs between original and upgraded snapshot")
endif()

# Truncated snapshots must fail cleanly, with no partial diff/query output.
if(SH_PROGRAM)
  set(SNAP_TRUNC "${WORK_DIR}/a_truncated.snap")
  file(SIZE "${SNAP_A}" snap_size)
  math(EXPR snap_cut "${snap_size} - 5")
  execute_process(COMMAND "${SH_PROGRAM}" -c
                          "head -c ${snap_cut} '${SNAP_A}' > '${SNAP_TRUNC}'"
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "could not produce truncated snapshot")
  endif()
  foreach(snap_cmd "diff" "query")
    if(snap_cmd STREQUAL "diff")
      execute_process(COMMAND "${HYBRIDTOR}" diff "${SNAP_TRUNC}" "${SNAP_A}"
                      RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
    else()
      execute_process(COMMAND "${HYBRIDTOR}" query "${SNAP_TRUNC}" "${query_as}"
                      RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
    endif()
    if(rc EQUAL 0)
      message(FATAL_ERROR "${snap_cmd} on a truncated snapshot must fail")
    endif()
    if(NOT out STREQUAL "")
      message(FATAL_ERROR "${snap_cmd} on a truncated snapshot printed partial output:\n${out}")
    endif()
  endforeach()
else()
  message(STATUS "cli_e2e: no sh found, skipping truncated-snapshot check")
endif()

# --------------------------------------- 7. generate argument validation
execute_process(COMMAND "${HYBRIDTOR}" generate "${WORK_DIR}/badseed" 12x
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "generate must reject the garbage seed '12x'")
endif()
string(FIND "${err}" "12x" at)
if(at EQUAL -1)
  message(FATAL_ERROR "garbage-seed diagnostic does not name the value: ${err}")
endif()
execute_process(COMMAND "${HYBRIDTOR}" generate "${WORK_DIR}/extra" 5 surplus
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "generate must reject trailing positional arguments")
endif()

# --------------------------------------------- 8. unknown option rejection
# A typo'd flag must be a reasoned error, not a silent positional that
# later fails as "cannot open '--frobnicate'".
foreach(bad_flag "--frobnicate" "-x")
  execute_process(COMMAND "${HYBRIDTOR}" census "${bad_flag}"
                          "${DATA_DIR}/rib.mrt" "${DATA_DIR}/irr.txt"
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "census must reject the unknown option '${bad_flag}'")
  endif()
  string(FIND "${err}" "unknown option '${bad_flag}'" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "unknown-option diagnostic does not name '${bad_flag}': ${err}")
  endif()
  string(FIND "${err}" "usage:" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "unknown-option error must print usage: ${err}")
  endif()
endforeach()

# --------------------------------------------------------- 9. query --json
execute_process(COMMAND "${HYBRIDTOR}" query --json "${SNAP_A}" "${query_as}" "${query_bs}"
                RESULT_VARIABLE rc OUTPUT_VARIABLE json_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "query --json failed (rc=${rc}): ${err}")
endif()
if(NOT json_out MATCHES "^\\{\"a\":${query_as},\"b\":${query_bs},\"rel_v4\":")
  message(FATAL_ERROR "query --json pair output has the wrong shape:\n${json_out}")
endif()
execute_process(COMMAND "${HYBRIDTOR}" query --json "${SNAP_A}" "${query_as}"
                RESULT_VARIABLE rc OUTPUT_VARIABLE json_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT json_out MATCHES "\"neighbor_count\":")
  message(FATAL_ERROR "query --json neighbor output has the wrong shape:\n${json_out}")
endif()
# Not-found still emits the machine-readable error object (on stdout, since
# --json callers parse stdout) and exits nonzero.
execute_process(COMMAND "${HYBRIDTOR}" query --json "${SNAP_A}" 4294967295
                RESULT_VARIABLE rc OUTPUT_VARIABLE json_out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "query --json for an absent AS must exit nonzero")
endif()
if(NOT json_out MATCHES "^\\{\"error\":")
  message(FATAL_ERROR "query --json not-found output must be the error object:\n${json_out}")
endif()
# --json belongs to query alone.
execute_process(COMMAND "${HYBRIDTOR}" diff --json "${SNAP_A}" "${SNAP_A}"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "diff --json must be rejected")
endif()
string(FIND "${err}" "--json is only valid with the query subcommand" at)
if(at EQUAL -1)
  message(FATAL_ERROR "diff --json diagnostic is wrong: ${err}")
endif()

message(STATUS "cli_e2e: all checks passed")
file(REMOVE_RECURSE "${WORK_DIR}")
