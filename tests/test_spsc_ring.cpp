// Unit tests for the SPSC ring: capacity rounding, FIFO order through many
// wraparounds, the full/empty edge conditions, the close()/done()
// end-of-stream protocol, and a two-thread hammer (the TSan-instrumented
// stress lives in test_concurrency_stress.cpp; this one asserts values).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/spsc_ring.hpp"

namespace htor {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(SpscRing<int>(65).capacity(), 128u);
  EXPECT_THROW(SpscRing<int>(0), InvalidArgument);
}

TEST(SpscRing, PushPopIsFifo) {
  SpscRing<int> ring(4);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      int value = round * 10 + i;
      EXPECT_TRUE(ring.try_push(value));
    }
    int full = 99;
    EXPECT_FALSE(ring.try_push(full));
    EXPECT_EQ(full, 99);  // a failed push leaves the value untouched
    for (int i = 0; i < 4; ++i) {
      int out = -1;
      EXPECT_TRUE(ring.try_pop(out));
      EXPECT_EQ(out, round * 10 + i);
    }
    int empty = -1;
    EXPECT_FALSE(ring.try_pop(empty));
  }
}

TEST(SpscRing, OccupancyTracksPushesAndPops) {
  SpscRing<int> ring(8);
  EXPECT_EQ(ring.occupancy(), 0u);
  int v = 1;
  ring.try_push(v);
  v = 2;
  ring.try_push(v);
  EXPECT_EQ(ring.occupancy(), 2u);
  int out = 0;
  ring.try_pop(out);
  EXPECT_EQ(ring.occupancy(), 1u);
}

TEST(SpscRing, MoveOnlyPayloadsMoveThrough) {
  SpscRing<std::unique_ptr<std::string>> ring(2);
  auto in = std::make_unique<std::string>("payload");
  EXPECT_TRUE(ring.try_push(in));
  EXPECT_EQ(in, nullptr);  // moved from
  std::unique_ptr<std::string> out;
  EXPECT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, "payload");
}

TEST(SpscRing, CloseThenDrainTurnsDone) {
  SpscRing<int> ring(4);
  int v = 7;
  ring.try_push(v);
  EXPECT_FALSE(ring.closed());
  ring.close();
  ring.close();  // idempotent
  EXPECT_TRUE(ring.closed());
  EXPECT_FALSE(ring.done()) << "an element is still queued";
  int out = 0;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_TRUE(ring.done());
  // A closed ring still accepts pushes (close is a stream marker, not a
  // gate); done() flips back until the element is drained.
  v = 8;
  EXPECT_TRUE(ring.try_push(v));
  EXPECT_FALSE(ring.done());
}

// FIFO order and value integrity across threads, through ~1000 wraparounds
// of a deliberately tiny ring.  Runs under the default build for value
// checks; the TSan CI job compiles this same test with instrumentation.
TEST(SpscRing, TwoThreadFifoThroughWraparound) {
  constexpr std::uint64_t kCount = 4000;
  SpscRing<std::uint64_t> ring(4);
  // lint: allow(naked-thread) two-thread SPSC contract needs a raw second
  // thread; joined before the assertions below
  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kCount;) {
      std::uint64_t value = i;
      if (ring.try_push(value)) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
    ring.close();
  });
  std::vector<std::uint64_t> seen;
  seen.reserve(kCount);
  while (!ring.done()) {
    std::uint64_t out = 0;
    if (ring.try_pop(out)) {
      seen.push_back(out);
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  ASSERT_EQ(seen.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(seen[i], i) << "FIFO order broken at element " << i;
  }
}

}  // namespace
}  // namespace htor
