#include "mrt/reader.hpp"

#include "bgp/nlri.hpp"

namespace htor::mrt {

namespace {

PeerIndexTable decode_peer_index_table(ByteReader& r) {
  PeerIndexTable pit;
  pit.collector_bgp_id = r.u32();
  const std::uint16_t name_len = r.u16();
  pit.view_name = r.text(name_len);
  const std::uint16_t count = r.u16();
  pit.peers.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    PeerEntry peer;
    const std::uint8_t type = r.u8();
    peer.bgp_id = r.u32();
    const IpVersion ver = (type & 0x01) ? IpVersion::V6 : IpVersion::V4;
    peer.address = IpAddress(ver, r.bytes(address_bytes(ver)));
    peer.asn = (type & 0x02) ? r.u32() : r.u16();
    pit.peers.push_back(std::move(peer));
  }
  return pit;
}

RibPrefixRecord decode_rib(ByteReader& r, IpVersion version) {
  RibPrefixRecord rib;
  rib.sequence = r.u32();
  rib.prefix = bgp::decode_nlri_prefix(r, version);
  const std::uint16_t count = r.u16();
  rib.entries.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    RibEntry entry;
    entry.peer_index = r.u16();
    entry.originated_time = r.u32();
    const std::uint16_t attr_len = r.u16();
    ByteReader attrs = r.sub(attr_len);
    entry.attrs = bgp::decode_path_attributes(attrs, bgp::MpReachForm::MrtRib);
    rib.entries.push_back(std::move(entry));
  }
  return rib;
}

Bgp4mpMessage decode_bgp4mp(ByteReader& r, bool as4) {
  Bgp4mpMessage msg;
  msg.as4 = as4;
  msg.peer_as = as4 ? r.u32() : r.u16();
  msg.local_as = as4 ? r.u32() : r.u16();
  msg.interface_index = r.u16();
  const std::uint16_t afi = r.u16();
  if (afi != 1 && afi != 2) throw DecodeError("BGP4MP AFI " + std::to_string(afi));
  const IpVersion ver = afi == 1 ? IpVersion::V4 : IpVersion::V6;
  msg.peer_ip = IpAddress(ver, r.bytes(address_bytes(ver)));
  msg.local_ip = IpAddress(ver, r.bytes(address_bytes(ver)));
  msg.message = bgp::decode_message(r);
  if (!r.exhausted()) throw DecodeError("trailing bytes after BGP4MP message");
  return msg;
}

}  // namespace

std::optional<Record> MrtReader::next() {
  if (reader_.exhausted()) return std::nullopt;
  const std::uint32_t timestamp = reader_.u32();
  const std::uint16_t type = reader_.u16();
  const std::uint16_t subtype = reader_.u16();
  const std::uint32_t length = reader_.u32();
  return decode_record_body(timestamp, type, subtype, reader_.bytes(length));
}

Record decode_record_body(std::uint32_t timestamp, std::uint16_t type, std::uint16_t subtype,
                          std::span<const std::uint8_t> body_bytes) {
  Record record;
  record.timestamp = timestamp;
  ByteReader body(body_bytes);

  if (type == static_cast<std::uint16_t>(MrtType::TableDumpV2)) {
    switch (static_cast<TableDumpV2Subtype>(subtype)) {
      case TableDumpV2Subtype::PeerIndexTable:
        record.body = decode_peer_index_table(body);
        return record;
      case TableDumpV2Subtype::RibIpv4Unicast:
        record.body = decode_rib(body, IpVersion::V4);
        return record;
      case TableDumpV2Subtype::RibIpv6Unicast:
        record.body = decode_rib(body, IpVersion::V6);
        return record;
      default:
        break;  // fall through to raw
    }
  } else if (type == static_cast<std::uint16_t>(MrtType::Bgp4mp)) {
    switch (static_cast<Bgp4mpSubtype>(subtype)) {
      case Bgp4mpSubtype::Message:
        record.body = decode_bgp4mp(body, false);
        return record;
      case Bgp4mpSubtype::MessageAs4:
        record.body = decode_bgp4mp(body, true);
        return record;
      default:
        break;
    }
  }
  RawRecord raw;
  raw.type = type;
  raw.subtype = subtype;
  raw.payload = body.bytes_copy(body.remaining());
  record.body = std::move(raw);
  return record;
}

std::vector<std::uint8_t> load_file(const std::string& path) { return load_bytes(path); }

std::vector<Record> read_all(std::span<const std::uint8_t> data) {
  MrtReader reader(data);
  std::vector<Record> out;
  while (auto rec = reader.next()) out.push_back(std::move(*rec));
  return out;
}

}  // namespace htor::mrt
