// Tests for the Figure-2 correction experiment.
#include <gtest/gtest.h>

#include "core/correction.hpp"

namespace htor::core {
namespace {

// Baseline: hub 1 misinferred p2p toward 2 and 3 (truth: provider of both).
RelationshipMap misinferred() {
  RelationshipMap rels;
  rels.set(1, 2, Relationship::P2P);
  rels.set(1, 3, Relationship::P2P);
  rels.set(2, 4, Relationship::P2C);
  rels.set(3, 5, Relationship::P2C);
  return rels;
}

std::vector<HybridFinding> corrections() {
  HybridFinding a;
  a.link = LinkKey(1, 2);
  a.rel_v4 = Relationship::P2P;
  a.rel_v6 = Relationship::P2C;  // correct IPv6 relationship
  a.v6_path_visibility = 10;
  HybridFinding b;
  b.link = LinkKey(1, 3);
  b.rel_v4 = Relationship::P2P;
  b.rel_v6 = Relationship::P2C;
  b.v6_path_visibility = 5;
  return {a, b};
}

TEST(Correction, StepZeroIsBaseline) {
  const auto steps = correction_experiment(misinferred(), corrections(), 2);
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[0].corrected, 0u);
  EXPECT_EQ(steps[0].metrics.edges, 2u);  // only the two true p2c edges
}

TEST(Correction, EachStepAppliesOneFix) {
  const auto steps = correction_experiment(misinferred(), corrections(), 2);
  EXPECT_EQ(steps[1].metrics.edges, 3u);
  EXPECT_EQ(steps[2].metrics.edges, 4u);
  // Connecting the hub grows the reachable-pair set monotonically here.
  EXPECT_GT(steps[1].metrics.reachable_pairs, steps[0].metrics.reachable_pairs);
  EXPECT_GT(steps[2].metrics.reachable_pairs, steps[1].metrics.reachable_pairs);
}

TEST(Correction, MaxCorrectionsCapsSteps) {
  const auto steps = correction_experiment(misinferred(), corrections(), 1);
  EXPECT_EQ(steps.size(), 2u);
  const auto all = correction_experiment(misinferred(), corrections(), 100);
  EXPECT_EQ(all.size(), 3u);  // capped by the number of findings
}

TEST(Correction, BaselineMapIsNotMutated) {
  const auto baseline = misinferred();
  (void)correction_experiment(baseline, corrections(), 2);
  EXPECT_EQ(baseline.get(1, 2), Relationship::P2P);
}

TEST(Correction, ReverseCorrectionRemovesEdges) {
  // A hybrid whose correct IPv6 relationship is p2p removes a false transit
  // edge from the union.
  RelationshipMap rels;
  rels.set(1, 2, Relationship::P2C);
  rels.set(2, 3, Relationship::P2C);
  HybridFinding f;
  f.link = LinkKey(1, 2);
  f.rel_v4 = Relationship::P2C;
  f.rel_v6 = Relationship::P2P;
  const auto steps = correction_experiment(rels, {f}, 1);
  EXPECT_EQ(steps[0].metrics.edges, 2u);
  EXPECT_EQ(steps[1].metrics.edges, 1u);
}

TEST(Correction, EmptyInputs) {
  const auto steps = correction_experiment(RelationshipMap{}, {}, 20);
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_EQ(steps[0].metrics.edges, 0u);
}

}  // namespace
}  // namespace htor::core
