// In-memory query index over one loaded snapshot: AS-pair lookups
// (rel_v4, rel_v6, hybrid?) and AS neighbor lists, built once per snapshot
// so repeated queries are O(1) / O(degree).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "snapshot/snapshot.hpp"

namespace htor::snapshot {

class QueryIndex {
 public:
  /// Build the index over the union of both families' links plus the hybrid
  /// list.  The snapshot itself is not retained.
  explicit QueryIndex(const Snapshot& snap);

  /// One link as seen from `a` toward `b`: relationships are oriented a -> b.
  struct LinkInfo {
    Relationship rel_v4 = Relationship::Unknown;
    Relationship rel_v6 = Relationship::Unknown;
    bool hybrid = false;

    friend bool operator==(const LinkInfo&, const LinkInfo&) = default;
  };

  /// The a->b view of the link, or nullopt when neither family recorded it.
  std::optional<LinkInfo> lookup(Asn a, Asn b) const;

  struct Neighbor {
    Asn asn = 0;
    LinkInfo info;  ///< oriented from the queried AS toward `asn`
  };

  /// All recorded neighbors of `asn`, ascending by neighbor ASN; empty when
  /// the AS appears in neither family's map.
  std::vector<Neighbor> neighbors(Asn asn) const;

  bool contains(Asn asn) const { return adjacency_.count(asn) != 0; }

  std::size_t link_count() const { return links_.size(); }
  std::size_t as_count() const { return adjacency_.size(); }
  std::size_t hybrid_count() const { return hybrid_count_; }

 private:
  // Canonical orientation: key.first -> key.second.
  std::unordered_map<LinkKey, LinkInfo, LinkKeyHash> links_;
  std::unordered_map<Asn, std::vector<Asn>> adjacency_;
  std::size_t hybrid_count_ = 0;
};

}  // namespace htor::snapshot
