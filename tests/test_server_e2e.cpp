// End-to-end tests for the query daemon over real loopback sockets:
//
//   - responses are byte-identical to `hybridtor query --json` for the same
//     snapshot (checked against the shared render functions always, and
//     against the actual CLI binary when CTest exports HYBRIDTOR_CLI);
//   - concurrent clients all get identical, correct answers;
//   - malformed, oversized, and truncated requests get a reasoned 4xx (or
//     no reply, for a peer that hangs up mid-request) and never crash the
//     daemon or yield partial JSON;
//   - hot reload swaps the snapshot epoch without dropping an in-flight
//     keep-alive connection, and a corrupt snapshot file leaves the old
//     index serving.
//
// Labeled `e2e` in CTest so the slow suites can be filtered with -LE e2e.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/hybrid.hpp"
#include "gen/internet.hpp"
#include "mrt/rib_view.hpp"
#include "obs/metrics.hpp"
#include "obs/sketch/telemetry.hpp"
#include "server/daemon.hpp"
#include "server/render.hpp"
#include "snapshot/query.hpp"
#include "snapshot/reader.hpp"
#include "snapshot/writer.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace htor::server {
namespace {

// ------------------------------------------------------------ tiny client

/// Blocking loopback HTTP client with a poll() safety timeout so a daemon
/// bug can never hang the test binary.
class Client {
 public:
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return fd_ >= 0; }

  bool send_raw(std::string_view data) {
    while (!data.empty()) {
      const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
      if (n <= 0) return false;
      data.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
  }

  /// Half-close the write side: "that's all the bytes you get".
  void finish_writing() { ::shutdown(fd_, SHUT_WR); }

  struct Response {
    bool ok = false;       ///< a complete response arrived
    bool eof_clean = true; ///< the stream ended without stray bytes
    int status = 0;
    std::string head;      ///< status line + headers
    std::string body;
  };

  /// Read one full response (headers + exact Content-Length body).  With
  /// `expect_body` false (HEAD), stops after the header block.
  Response read_response(bool expect_body = true) {
    Response resp;
    // Headers.
    while (buffer_.find("\r\n\r\n") == std::string::npos) {
      if (!fill()) {
        resp.eof_clean = buffer_.empty();
        return resp;  // EOF/timeout before a full header block: not ok
      }
    }
    const auto header_end = buffer_.find("\r\n\r\n") + 4;
    resp.head = buffer_.substr(0, header_end);
    buffer_.erase(0, header_end);
    if (resp.head.rfind("HTTP/1.1 ", 0) == 0 && resp.head.size() > 12) {
      resp.status = std::atoi(resp.head.c_str() + 9);
    }
    // Body, sized by Content-Length (the daemon always sends one).
    std::size_t content_length = 0;
    const auto cl = resp.head.find("Content-Length: ");
    if (cl != std::string::npos) {
      content_length = static_cast<std::size_t>(std::atol(resp.head.c_str() + cl + 16));
    }
    if (expect_body) {
      while (buffer_.size() < content_length) {
        if (!fill()) return resp;
      }
      resp.body = buffer_.substr(0, content_length);
      buffer_.erase(0, content_length);
    }
    resp.ok = true;
    return resp;
  }

 private:
  bool fill() {
    pollfd pfd{fd_, POLLIN, 0};
    if (::poll(&pfd, 1, 5000) <= 0) return false;
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    buffer_.append(buf, static_cast<std::size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string buffer_;
};

/// One-shot GET/POST: own connection, Connection: close.
Client::Response fetch(std::uint16_t port, const std::string& method, const std::string& target) {
  Client client(port);
  EXPECT_TRUE(client.connected());
  EXPECT_TRUE(client.send_raw(method + " " + target + " HTTP/1.1\r\nConnection: close\r\n\r\n"));
  return client.read_response();
}

// ------------------------------------------------------------- snapshots

/// The served dataset.  `v6_flavor` flips link 1-2's IPv6 relationship so
/// reloads are observable: flavor A (P2P) makes the link hybrid, flavor B
/// (P2C) resolves it.
snapshot::Snapshot make_snapshot(bool flavor_a) {
  snapshot::Snapshot snap;
  snap.header.timestamp = flavor_a ? 1700000000u : 1700086400u;
  snap.header.source = flavor_a ? "e2e-a.mrt" : "e2e-b.mrt";
  snap.dataset = {10, 8, 5, 4, 3};
  snap.rels_v4.set(1, 2, Relationship::P2C);
  snap.rels_v4.set(2, 3, Relationship::P2P);
  snap.rels_v6.set(1, 2, flavor_a ? Relationship::P2P : Relationship::P2C);
  snap.rels_v6.set(3, 4, Relationship::C2P);
  if (flavor_a) {
    snap.hybrids.push_back({LinkKey(1, 2), Relationship::P2C, Relationship::P2P,
                            static_cast<std::uint8_t>(core::HybridClass::TransitV4PeerV6), 5});
  }
  return snap;
}

class ServerE2E : public ::testing::Test {
 protected:
  void SetUp() override {
    // Daemon telemetry lives in the process-global registry; zero it so each
    // test's count assertions see only its own daemon's requests.
    obs::MetricsRegistry::global().reset_values();
    snap_path_ = (std::filesystem::temp_directory_path() /
                  ("htor_server_e2e_" + std::to_string(::getpid()) + ".snap"))
                     .string();
    snapshot::Writer::write_file(make_snapshot(true), snap_path_);
    DaemonConfig config;
    config.port = 0;  // ephemeral
    config.jobs = 4;
    daemon_ = std::make_unique<QueryDaemon>(snap_path_, config);
    daemon_->start();
    port_ = daemon_->port();
    ASSERT_NE(port_, 0);
  }

  void TearDown() override {
    daemon_.reset();  // stops and quiesces
    std::filesystem::remove(snap_path_);
  }

  /// What the CLI's `query --json` prints for the same snapshot, computed
  /// through the very same render functions the daemon uses.
  std::string expected_link_body(Asn a, Asn b) const {
    const snapshot::QueryIndex index(snapshot::Reader::read_file(snap_path_));
    const auto info = index.lookup(a, b);
    if (!info) {
      return error_json("AS" + std::to_string(a) + "-AS" + std::to_string(b) +
                        ": no relationship recorded in " + snap_path_);
    }
    return link_json(a, b, *info);
  }

  std::string snap_path_;
  std::unique_ptr<QueryDaemon> daemon_;
  std::uint16_t port_ = 0;
};

/// Run the real CLI if CTest exported its path; empty optional otherwise.
std::optional<std::string> run_cli_stdout(const std::string& args) {
  const char* cli = std::getenv("HYBRIDTOR_CLI");
  if (cli == nullptr || *cli == '\0') return std::nullopt;
  const std::string cmd = std::string("\"") + cli + "\" " + args + " 2>/dev/null";
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return std::nullopt;
  std::string out;
  char buf[1024];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) out.append(buf, n);
  const int status = ::pclose(pipe);
  // Exit 0 (found) and 1 (valid not-found answer) are real CLI output; 2 is
  // a usage error and 126/127 mean the shell could not run the binary — in
  // those cases fall back to the render-function check rather than
  // comparing against garbage.
  if (!WIFEXITED(status) || WEXITSTATUS(status) > 1) return std::nullopt;
  return out;
}

// ------------------------------------------------------------------ tests

TEST_F(ServerE2E, LinkResponseIsByteIdenticalToCliJson) {
  const auto resp = fetch(port_, "GET", "/v1/link/1/2");
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, expected_link_body(1, 2));
  EXPECT_EQ(resp.body, "{\"a\":1,\"b\":2,\"rel_v4\":\"p2c\",\"rel_v6\":\"p2p\",\"hybrid\":true}\n");

  // Orientation flips with the query direction, exactly as in the CLI.
  const auto reversed = fetch(port_, "GET", "/v1/link/2/1");
  ASSERT_TRUE(reversed.ok);
  EXPECT_EQ(reversed.body, expected_link_body(2, 1));
  EXPECT_NE(reversed.body, resp.body);

  // And against the real CLI binary, when CTest told us where it lives.
  if (const auto cli = run_cli_stdout("query --json \"" + snap_path_ + "\" 1 2")) {
    EXPECT_EQ(resp.body, *cli) << "daemon body and CLI --json stdout must be byte-identical";
  } else {
    GTEST_LOG_(INFO) << "HYBRIDTOR_CLI not set; CLI byte-identity checked via render only";
  }
}

TEST_F(ServerE2E, NotFoundBodyMatchesCliJsonErrorShape) {
  const auto resp = fetch(port_, "GET", "/v1/link/1/99");
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.status, 404);
  EXPECT_EQ(resp.body, expected_link_body(1, 99));
  if (const auto cli = run_cli_stdout("query --json \"" + snap_path_ + "\" 1 99")) {
    EXPECT_EQ(resp.body, *cli);
  }
}

TEST_F(ServerE2E, NeighborsMatchCliJson) {
  const auto resp = fetch(port_, "GET", "/v1/neighbors/2");
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.status, 200);
  const snapshot::QueryIndex index(snapshot::Reader::read_file(snap_path_));
  EXPECT_EQ(resp.body, neighbors_json(2, index.neighbors(2)));
  if (const auto cli = run_cli_stdout("query --json \"" + snap_path_ + "\" 2")) {
    EXPECT_EQ(resp.body, *cli);
  }

  const auto absent = fetch(port_, "GET", "/v1/neighbors/99");
  EXPECT_EQ(absent.status, 404);
  if (const auto cli = run_cli_stdout("query --json \"" + snap_path_ + "\" 99")) {
    EXPECT_EQ(absent.body, *cli);
  }
}

TEST_F(ServerE2E, SummaryHealthzAndMetricsServe) {
  const auto summary = fetch(port_, "GET", "/v1/summary");
  ASSERT_TRUE(summary.ok);
  EXPECT_EQ(summary.status, 200);
  EXPECT_EQ(summary.body, summary_json(snapshot::QueryIndex::open(snap_path_)));

  const auto health = fetch(port_, "GET", "/v1/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "{\"status\":\"ok\",\"epoch\":1}\n");

  const auto metrics = fetch(port_, "GET", "/v1/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("\"requests_total\":"), std::string::npos);
  EXPECT_NE(metrics.body.find("\"latency_us\":"), std::string::npos);
  EXPECT_NE(metrics.body.find("\"epoch\":1"), std::string::npos);
}

TEST_F(ServerE2E, ConcurrentClientsGetIdenticalCorrectAnswers) {
  const std::string want_link = expected_link_body(1, 2);
  const snapshot::QueryIndex index(snapshot::Reader::read_file(snap_path_));
  const std::string want_neighbors = neighbors_json(2, index.neighbors(2));

  constexpr int kThreads = 8;
  constexpr int kRequests = 25;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      // Each client holds one keep-alive connection for its whole run.
      Client client(port_);
      if (!client.connected()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kRequests; ++i) {
        const bool link = (t + i) % 2 == 0;
        const std::string target = link ? "/v1/link/1/2" : "/v1/neighbors/2";
        if (!client.send_raw("GET " + target + " HTTP/1.1\r\n\r\n")) {
          ++failures;
          return;
        }
        const auto resp = client.read_response();
        if (!resp.ok || resp.status != 200 || resp.body != (link ? want_link : want_neighbors)) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ServerE2E, MalformedRequestsGet4xxNeverACrash) {
  const std::string long_line = "GET /" + std::string(4096, 'a') + " HTTP/1.1\r\n\r\n";
  std::string many_headers = "GET /v1/healthz HTTP/1.1\r\n";
  for (int i = 0; i < 100; ++i) many_headers += "X-H" + std::to_string(i) + ": v\r\n";
  many_headers += "\r\n";
  const std::string malformed[] = {
      "GARBAGE\r\n\r\n",
      "GET\r\n\r\n",
      "GET /v1/healthz HTTP/2.0\r\n\r\n",
      "GET /v1/healthz NONSENSE\r\n\r\n",
      "GET /v1/healthz HTTP/1.1\r\nbroken header\r\n\r\n",
      "POST /v1/reload HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
      "POST /v1/reload HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n",
      "POST /v1/reload HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
      long_line,
      many_headers,
  };
  for (const auto& wire : malformed) {
    Client client(port_);
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.send_raw(wire));
    const auto resp = client.read_response();
    ASSERT_TRUE(resp.ok) << "daemon must answer, not drop: " << wire.substr(0, 40);
    EXPECT_GE(resp.status, 400) << wire.substr(0, 40);
    EXPECT_LT(resp.status, 500) << wire.substr(0, 40);
    // Never partial JSON: the error body is a complete object with newline.
    EXPECT_EQ(resp.body.rfind("{\"error\":", 0), 0u) << resp.body;
    EXPECT_EQ(resp.body.back(), '\n');
    EXPECT_NE(resp.head.find("Connection: close"), std::string::npos);
  }
  // The daemon took all of that without dying.
  EXPECT_EQ(fetch(port_, "GET", "/v1/healthz").status, 200);
}

TEST_F(ServerE2E, SemanticErrorsAre4xxJson) {
  EXPECT_EQ(fetch(port_, "GET", "/v1/link/abc/2").status, 400);
  EXPECT_EQ(fetch(port_, "GET", "/v1/link/1/2/3").status, 400);
  EXPECT_EQ(fetch(port_, "GET", "/v1/link/1").status, 400);
  EXPECT_EQ(fetch(port_, "GET", "/v1/neighbors/4294967296").status, 400);  // > max ASN
  EXPECT_EQ(fetch(port_, "GET", "/v1/nope").status, 404);
  EXPECT_EQ(fetch(port_, "GET", "/").status, 404);
  EXPECT_EQ(fetch(port_, "POST", "/v1/link/1/2").status, 405);
  EXPECT_EQ(fetch(port_, "GET", "/v1/reload").status, 405);
  EXPECT_EQ(fetch(port_, "DELETE", "/v1/healthz").status, 405);
}

TEST_F(ServerE2E, TruncatedRequestGetsNoReplyAndServerSurvives) {
  {
    Client client(port_);
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.send_raw("GET /v1/heal"));  // hang up mid-request-line
    client.finish_writing();
    const auto resp = client.read_response();
    EXPECT_FALSE(resp.ok);        // no response at all...
    EXPECT_TRUE(resp.eof_clean);  // ...and no stray partial bytes either
  }
  {
    Client client(port_);
    ASSERT_TRUE(client.connected());
    // Headers promise a body that never comes.
    ASSERT_TRUE(client.send_raw("POST /v1/reload HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"));
    client.finish_writing();
    const auto resp = client.read_response();
    EXPECT_FALSE(resp.ok);
    EXPECT_TRUE(resp.eof_clean);
  }
  EXPECT_EQ(fetch(port_, "GET", "/v1/healthz").status, 200);
}

TEST_F(ServerE2E, HeadReturnsHeadersOnly) {
  Client client(port_);
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_raw("HEAD /v1/healthz HTTP/1.1\r\n\r\n"));
  const auto head = client.read_response(/*expect_body=*/false);
  ASSERT_TRUE(head.ok);
  EXPECT_EQ(head.status, 200);
  EXPECT_NE(head.head.find("Content-Length: "), std::string::npos);
  // The stream position is right where the next response must begin: a GET
  // on the same connection parses cleanly, so HEAD really sent no body.
  ASSERT_TRUE(client.send_raw("GET /v1/healthz HTTP/1.1\r\n\r\n"));
  const auto get = client.read_response();
  ASSERT_TRUE(get.ok);
  EXPECT_EQ(get.status, 200);
  EXPECT_EQ(get.body, "{\"status\":\"ok\",\"epoch\":1}\n");
}

TEST_F(ServerE2E, HotReloadSwapsEpochWithoutDroppingConnections) {
  // A keep-alive connection opened before the reload...
  Client persistent(port_);
  ASSERT_TRUE(persistent.connected());
  ASSERT_TRUE(persistent.send_raw("GET /v1/link/1/2 HTTP/1.1\r\n\r\n"));
  auto before = persistent.read_response();
  ASSERT_TRUE(before.ok);
  EXPECT_NE(before.body.find("\"hybrid\":true"), std::string::npos);

  // ...survives the swap to flavor B...
  snapshot::Writer::write_file(make_snapshot(false), snap_path_);
  const auto reload = fetch(port_, "POST", "/v1/reload");
  ASSERT_TRUE(reload.ok);
  EXPECT_EQ(reload.status, 200);
  EXPECT_EQ(reload.body, "{\"status\":\"reloaded\",\"epoch\":2}\n");

  // ...and now answers from the new index, still on the same socket.
  ASSERT_TRUE(persistent.send_raw("GET /v1/link/1/2 HTTP/1.1\r\n\r\n"));
  auto after = persistent.read_response();
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(after.status, 200);
  EXPECT_NE(after.body.find("\"rel_v6\":\"p2c\""), std::string::npos);
  EXPECT_NE(after.body.find("\"hybrid\":false"), std::string::npos);
  EXPECT_EQ(after.body, expected_link_body(1, 2));  // still CLI-identical

  EXPECT_EQ(fetch(port_, "GET", "/v1/healthz").body, "{\"status\":\"ok\",\"epoch\":2}\n");
}

TEST_F(ServerE2E, CorruptSnapshotReloadKeepsOldIndexServing) {
  const std::string want = expected_link_body(1, 2);

  // Clobber the snapshot file with garbage...
  {
    std::ofstream out(snap_path_, std::ios::binary | std::ios::trunc);
    out << "this is not a snapshot";
  }
  const auto reload = fetch(port_, "POST", "/v1/reload");
  ASSERT_TRUE(reload.ok);
  EXPECT_EQ(reload.status, 503);
  EXPECT_NE(reload.body.find("old snapshot still serving"), std::string::npos);

  // ...and the daemon keeps answering from the index it already had.
  const auto resp = fetch(port_, "GET", "/v1/link/1/2");
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, want);
  EXPECT_EQ(fetch(port_, "GET", "/v1/healthz").body, "{\"status\":\"ok\",\"epoch\":1}\n");

  const auto metrics = fetch(port_, "GET", "/v1/metrics");
  EXPECT_NE(metrics.body.find("\"reloads\":{\"ok\":0,\"failed\":1,"), std::string::npos);

  // A SIGHUP-style request_reload() with the file still corrupt is equally
  // harmless (the acceptor performs it on its next tick).
  daemon_->request_reload();
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  EXPECT_EQ(fetch(port_, "GET", "/v1/link/1/2").body, want);

  // Repairing the file makes the next reload succeed.
  snapshot::Writer::write_file(make_snapshot(false), snap_path_);
  EXPECT_EQ(fetch(port_, "POST", "/v1/reload").status, 200);
  EXPECT_EQ(fetch(port_, "GET", "/v1/healthz").body, "{\"status\":\"ok\",\"epoch\":2}\n");
}

// Idle keep-alive connections must not pin pool workers: the daemon floors
// its pool at 2 real workers (so --jobs 1 never runs connections inline on
// the acceptor) and an idle connection yields its worker after one poll
// tick — so even MORE held-open clients than workers cannot starve a new
// client, a reload, or shutdown.
TEST(ServerJobsFloor, IdleKeepAliveClientsCannotStarveOthers) {
  const std::string path = (std::filesystem::temp_directory_path() /
                            ("htor_jobsfloor_" + std::to_string(::getpid()) + ".snap"))
                               .string();
  snapshot::Writer::write_file(make_snapshot(true), path);
  DaemonConfig config;
  config.port = 0;
  config.jobs = 1;  // floored to 2 actual workers
  {
    QueryDaemon daemon(path, config);
    daemon.start();

    // Hold more live keep-alive connections open than the pool has workers.
    std::vector<std::unique_ptr<Client>> holders;
    for (int i = 0; i < 3; ++i) {
      holders.push_back(std::make_unique<Client>(daemon.port()));
      ASSERT_TRUE(holders.back()->connected());
      ASSERT_TRUE(holders.back()->send_raw("GET /v1/healthz HTTP/1.1\r\n\r\n"));
      ASSERT_TRUE(holders.back()->read_response().ok);  // now idling, held open
    }

    // A fresh client must still be served while all three idle open.
    const auto other = fetch(daemon.port(), "GET", "/v1/healthz");
    ASSERT_TRUE(other.ok);
    EXPECT_EQ(other.status, 200);

    // And the held connections are still alive afterwards, not dropped.
    ASSERT_TRUE(holders[0]->send_raw("GET /v1/healthz HTTP/1.1\r\n\r\n"));
    EXPECT_TRUE(holders[0]->read_response().ok);
  }  // ~QueryDaemon stops cleanly even with connections at rest
  std::filesystem::remove(path);
}

TEST_F(ServerE2E, MetricsCountRequests) {
  for (int i = 0; i < 5; ++i) fetch(port_, "GET", "/v1/link/1/2");
  fetch(port_, "GET", "/v1/nope");
  const auto metrics = fetch(port_, "GET", "/v1/metrics");
  ASSERT_TRUE(metrics.ok);
  EXPECT_NE(metrics.body.find("\"link\":5"), std::string::npos);
  EXPECT_NE(metrics.body.find("\"other\":1"), std::string::npos);
}

/// The value of one sample line ("name{labels} 42") in a Prometheus text
/// exposition, or nullopt when the sample is absent.
std::optional<std::uint64_t> prom_value(const std::string& text, const std::string& sample) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(sample + " ", 0) == 0) {
      return std::stoull(line.substr(sample.size() + 1));
    }
  }
  return std::nullopt;
}

// GET /metrics (Prometheus) and GET /v1/metrics (JSON) render the same
// registry, so every counter must agree.  The only wrinkle is
// self-observation: each metrics body is rendered inside route(), before its
// own request is counted, so the later scrape sees exactly one more
// metrics-endpoint request (the earlier scrape) than the earlier body does.
TEST_F(ServerE2E, PrometheusAndJsonMetricsAgree) {
  for (int i = 0; i < 5; ++i) fetch(port_, "GET", "/v1/link/1/2");
  fetch(port_, "GET", "/v1/nope");
  fetch(port_, "POST", "/v1/reload");

  const auto json_resp = fetch(port_, "GET", "/v1/metrics");
  ASSERT_TRUE(json_resp.ok);
  const auto prom_resp = fetch(port_, "GET", "/metrics");
  ASSERT_TRUE(prom_resp.ok);
  EXPECT_EQ(prom_resp.status, 200);
  EXPECT_NE(prom_resp.head.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_NE(prom_resp.body.find("# TYPE htor_http_requests_total counter"), std::string::npos);

  const auto json = JsonValue::parse(json_resp.body);
  const auto& by_endpoint = json.at("by_endpoint");
  const std::string req = "htor_http_requests_total";

  // Counters the two metrics fetches themselves never touch: identical.
  EXPECT_EQ(prom_value(prom_resp.body, req + "{endpoint=\"link\"}"),
            by_endpoint.at("link").as_uint());
  EXPECT_EQ(by_endpoint.at("link").as_uint(), 5u);
  EXPECT_EQ(prom_value(prom_resp.body, req + "{endpoint=\"other\"}"),
            by_endpoint.at("other").as_uint());
  EXPECT_EQ(prom_value(prom_resp.body, req + "{endpoint=\"reload\"}"),
            by_endpoint.at("reload").as_uint());
  EXPECT_EQ(prom_value(prom_resp.body, "htor_reloads_total{result=\"ok\"}"),
            json.at("reloads").at("ok").as_uint());
  EXPECT_EQ(prom_value(prom_resp.body, "htor_reloads_total{result=\"failed\"}"),
            json.at("reloads").at("failed").as_uint());
  EXPECT_EQ(prom_value(prom_resp.body, "htor_http_parse_failures_total"),
            json.at("parse_failures").as_uint());

  // Self-observation offset: the Prometheus scrape ran after the JSON
  // request was fully recorded, so it sees it — and nothing else happened in
  // between.
  EXPECT_EQ(prom_value(prom_resp.body, req + "{endpoint=\"metrics\"}"),
            by_endpoint.at("metrics").as_uint() + 1);

  // Latency histograms: the JSON body excludes its own (not-yet-recorded)
  // request; the scrape includes it.
  std::uint64_t json_latency_total = json.at("latency_us").at("overflow").as_uint();
  for (const auto& count : json.at("latency_us").at("counts").as_array()) {
    json_latency_total += count.as_uint();
  }
  EXPECT_EQ(prom_value(prom_resp.body, "htor_http_request_duration_us_count"),
            json_latency_total + 1);

  // The process-wide registry reaches the exposition too: thread-pool and
  // snapshot metrics are present alongside the daemon's.
  EXPECT_NE(prom_resp.body.find("htor_threadpool_queue_depth{pool=\"serve\"}"),
            std::string::npos);
  EXPECT_NE(prom_resp.body.find("htor_threadpool_tasks_executed_total{pool=\"serve\"}"),
            std::string::npos);
  EXPECT_NE(prom_resp.body.find("htor_snapshot_opens_total"), std::string::npos);
  EXPECT_NE(prom_resp.body.find("htor_daemon_epoch"), std::string::npos);

  // ------------------------------------------------ sketches at scale
  // Census ingest over a ≥100k-AS synthetic internet, run at --jobs 1 and
  // --jobs 4: the sketch snapshots must be identical (fixed shard
  // boundaries), the HLL estimates within 2% of exact, and every
  // htor_sketch_* gauge must render the same value on GET /metrics and
  // /v1/metrics — the daemon knows nothing about sketches, so agreement
  // proves the callback-gauge plumbing end to end.
  const auto net = gen::SyntheticInternet::generate(gen::scale_params(100'100, 42));
  const auto rib = net.collect_scaled(1);
  const auto records = mrt::records_from_rib(rib, 1, "sketch-e2e", 1281052800u);

  std::unordered_set<std::uint64_t> exact_ases;
  std::unordered_set<std::uint64_t> exact_links;
  for (const auto& route : rib.routes()) {
    std::uint32_t prev = 0;
    bool have_prev = false;
    for (const std::uint32_t asn : route.as_path) {
      if (have_prev && asn == prev) continue;
      exact_ases.insert(obs::sketch::as_item(asn));
      if (have_prev) exact_links.insert(obs::sketch::link_item(prev, asn));
      prev = asn;
      have_prev = true;
    }
  }
  ASSERT_GE(exact_ases.size(), 100'000u);

  auto& telemetry = obs::sketch::Telemetry::global();
  std::vector<obs::sketch::Telemetry::Snapshot> snaps;
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    telemetry.reset();
    ThreadPool ingest_pool(jobs);
    const auto loaded = mrt::rib_from_records(records, ingest_pool);
    ASSERT_EQ(loaded.routes().size(), rib.routes().size());
    snaps.push_back(telemetry.snapshot());
  }
  EXPECT_EQ(snaps[0].unique_ases, snaps[1].unique_ases);
  EXPECT_EQ(snaps[0].unique_prefixes, snaps[1].unique_prefixes);
  EXPECT_EQ(snaps[0].unique_links, snaps[1].unique_links);
  EXPECT_EQ(snaps[0].bloom_hits, snaps[1].bloom_hits);
  EXPECT_EQ(snaps[0].bloom_misses, snaps[1].bloom_misses);
  const double as_error =
      std::abs(static_cast<double>(snaps[1].unique_ases) -
               static_cast<double>(exact_ases.size())) /
      static_cast<double>(exact_ases.size());
  EXPECT_LE(as_error, 0.02);
  const double link_error =
      std::abs(static_cast<double>(snaps[1].unique_links) -
               static_cast<double>(exact_links.size())) /
      static_cast<double>(exact_links.size());
  EXPECT_LE(link_error, 0.02);

  // Scrape both endpoints with the --jobs 4 state live.  Sketch gauges do
  // not self-observe, so the two bodies must agree exactly, sample for
  // sample.
  const auto sketch_json = fetch(port_, "GET", "/v1/metrics");
  ASSERT_TRUE(sketch_json.ok);
  const auto sketch_prom = fetch(port_, "GET", "/metrics");
  ASSERT_TRUE(sketch_prom.ok);
  const auto sketch_doc = JsonValue::parse(sketch_json.body);
  const auto& sketches = sketch_doc.at("sketches").as_object();
  EXPECT_GE(sketches.size(), 10u);
  EXPECT_TRUE(sketches.count("htor_sketch_unique_as_estimate"));
  EXPECT_TRUE(sketches.count("htor_sketch_unique_prefixes_estimate"));
  EXPECT_TRUE(sketches.count("htor_sketch_unique_links_estimate"));
  EXPECT_TRUE(sketches.count("htor_sketch_bloom_link_misses_total"));
  EXPECT_TRUE(sketches.count("htor_sketch_epoch_churn_estimate{kind=\"as\"}"));
  for (const auto& [identity, value] : sketches) {
    const auto prom = prom_value(sketch_prom.body, identity);
    ASSERT_TRUE(prom.has_value()) << identity << " missing from Prometheus text";
    EXPECT_EQ(*prom, value.as_uint()) << identity;
  }
  EXPECT_EQ(sketches.at("htor_sketch_unique_as_estimate").as_uint(),
            static_cast<std::uint64_t>(snaps[1].unique_ases));
  telemetry.reset();
}

}  // namespace
}  // namespace htor::server
