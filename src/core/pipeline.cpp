#include "core/pipeline.hpp"

#include <algorithm>
#include <unordered_set>

#include "core/parallel.hpp"
#include "mrt/reader.hpp"
#include "mrt/stream_reader.hpp"
#include "obs/sketch/telemetry.hpp"
#include "obs/trace.hpp"

namespace htor::core {

mrt::ObservedRib load_rib(const std::string& path, ThreadPool& pool,
                          const IngestOptions& options) {
  if (options.streaming) {
    return mrt::rib_from_stream(path, pool, options.batch_records);
  }
  const auto data = mrt::load_file(path);
  return mrt::rib_from_records(mrt::read_all(data), pool);
}

namespace {

/// Merge every shard future in order; on failure keep draining (the tasks
/// reference caller-owned route lists) and rethrow the first error.
CommunityVotes collect_votes(std::vector<std::future<CommunityVotes>>& futures,
                             std::exception_ptr& first_error) {
  CommunityVotes merged;
  for (auto& future : futures) {
    try {
      merged.merge(future.get());
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  return merged;
}

}  // namespace

InferredRelationships infer_relationships(const mrt::ObservedRib& rib,
                                          const rpsl::CommunityDictionary& dict,
                                          const InferenceConfig& config) {
  ThreadPool pool(config.threads);
  return infer_relationships(rib, dict, config, pool);
}

InferredRelationships infer_relationships(const mrt::ObservedRib& rib,
                                          const rpsl::CommunityDictionary& dict,
                                          const InferenceConfig& config, ThreadPool& pool) {
  InferredRelationships out;
  const auto v4_routes = rib.routes_of(IpVersion::V4);
  const auto v6_routes = rib.routes_of(IpVersion::V6);

  // Phase 1: the per-route community scans of BOTH families are submitted
  // before either is collected, so their shards interleave on the pool.
  // Shard count is fixed (kCensusShards) and merges run in shard order, so
  // any --jobs value reproduces the same vote state bit for bit.
  auto submit_scans = [&pool, &dict](const std::vector<const mrt::ObservedRoute*>& routes) {
    std::vector<std::future<CommunityVotes>> futures;
    for (const ShardRange& range : shard_ranges(routes.size())) {
      futures.push_back(pool.submit([&routes, &dict, range] {
        return scan_community_votes(routes, range.begin, range.end, dict);
      }));
    }
    return futures;
  };
  std::exception_ptr first_error;
  {
    OBS_SPAN("census.infer.community");
    auto v4_futures = submit_scans(v4_routes);
    auto v6_futures = submit_scans(v6_routes);

    const CommunityVotes v4_votes = collect_votes(v4_futures, first_error);
    const CommunityVotes v6_votes = collect_votes(v6_futures, first_error);
    if (first_error) std::rethrow_exception(first_error);

    // Most-voted-links telemetry: one CMS feed from the POST-merge tallies,
    // sorted by packed link so the heavy-hitter candidate set never depends
    // on unordered_map iteration order (or on the ingest path taken).
    {
      std::vector<std::pair<std::uint64_t, std::uint64_t>> link_votes;
      link_votes.reserve(v4_votes.votes.size() + v6_votes.votes.size());
      for (const CommunityVotes* family : {&v4_votes, &v6_votes}) {
        for (const auto& [key, tallies] : family->votes) {
          std::uint64_t total = 0;
          for (const std::uint32_t n : tallies) total += n;
          if (total > 0) {
            link_votes.emplace_back(obs::sketch::link_item(key.first, key.second), total);
          }
        }
      }
      std::sort(link_votes.begin(), link_votes.end());
      obs::sketch::Telemetry::global().feed_link_votes(link_votes);
    }

    out.community_v4 = tally_community_votes(v4_votes, config.community);
    out.community_v6 = tally_community_votes(v6_votes, config.community);
    out.v4 = out.community_v4.rels;
    out.v6 = out.community_v6.rels;
  }

  // Phase 2: one Rosetta pass per family, two independent pool tasks (each
  // reads only its own family's routes and community map).
  if (config.use_rosetta) {
    OBS_SPAN("census.infer.rosetta");
    auto v4_rosetta = pool.submit(
        [&] { return run_rosetta(v4_routes, dict, out.v4, config.rosetta); });
    auto v6_rosetta = pool.submit(
        [&] { return run_rosetta(v6_routes, dict, out.v6, config.rosetta); });
    try {
      out.rosetta_v4 = v4_rosetta.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
    try {
      out.rosetta_v6 = v6_rosetta.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
    if (first_error) std::rethrow_exception(first_error);

    // Deterministic merge: Rosetta fills only links communities left
    // Unknown, applied v4 first, then v6.
    for (IpVersion af : {IpVersion::V4, IpVersion::V6}) {
      auto& rels = af == IpVersion::V4 ? out.v4 : out.v6;
      const auto& rosetta = af == IpVersion::V4 ? out.rosetta_v4 : out.rosetta_v6;
      rosetta.first_hop_rels.for_each([&rels](const LinkKey& key, Relationship rel) {
        if (rels.get(key.first, key.second) == Relationship::Unknown) {
          rels.set(key.first, key.second, rel);
        }
      });
    }
  }
  return out;
}

PathStore paths_of(const mrt::ObservedRib& rib, IpVersion af) {
  PathStore store;
  for (const auto& route : rib.routes()) {
    if (route.af == af) store.add(route.as_path);
  }
  return store;
}

PathStore paths_of(const mrt::ObservedRib& rib, IpVersion af, ThreadPool& pool) {
  const auto& routes = rib.routes();
  return shard_map_reduce(
      pool, routes.size(),
      [&routes, af](const ShardRange& range) {
        PathStore shard;
        for (std::size_t i = range.begin; i < range.end; ++i) {
          if (routes[i].af == af) shard.add(routes[i].as_path);
        }
        return shard;
      },
      PathStore{}, [](PathStore& acc, PathStore&& shard) { acc.merge(shard); });
}

CoverageStats coverage(const std::vector<LinkKey>& links, const RelationshipMap& rels) {
  CoverageStats stats;
  stats.observed_links = links.size();
  for (const LinkKey& key : links) {
    if (rels.get(key.first, key.second) != Relationship::Unknown) ++stats.covered_links;
  }
  return stats;
}

std::vector<LinkKey> dual_stack_links(const PathStore& v4_paths, const PathStore& v6_paths) {
  const auto v4_links = v4_paths.links();
  std::unordered_set<LinkKey, LinkKeyHash> v4_set(v4_links.begin(), v4_links.end());
  std::vector<LinkKey> out;
  for (const LinkKey& key : v6_paths.links()) {
    if (v4_set.count(key)) out.push_back(key);
  }
  return out;
}

std::vector<LinkKey> dual_stack_links(const PathStore& v4_paths, const PathStore& v6_paths,
                                      ThreadPool& pool) {
  return dual_stack_links(v4_paths.links(), v6_paths.links(), pool);
}

std::vector<LinkKey> dual_stack_links(const std::vector<LinkKey>& v4_links,
                                      const std::vector<LinkKey>& v6_links, ThreadPool& pool) {
  const std::unordered_set<LinkKey, LinkKeyHash> v4_set(v4_links.begin(), v4_links.end());
  const auto shards = shard_map(pool, v6_links.size(), [&](const ShardRange& range) {
    std::vector<LinkKey> hits;
    for (std::size_t i = range.begin; i < range.end; ++i) {
      if (v4_set.count(v6_links[i])) hits.push_back(v6_links[i]);
    }
    return hits;
  });
  std::vector<LinkKey> out;
  for (const auto& shard : shards) out.insert(out.end(), shard.begin(), shard.end());
  return out;
}

}  // namespace htor::core
