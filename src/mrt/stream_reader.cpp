#include "mrt/stream_reader.hpp"

#include <memory>
#include <utility>

#include "core/parallel.hpp"
#include "mrt/reader.hpp"
#include "obs/metrics.hpp"
#include "obs/sketch/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/bytes.hpp"

namespace htor::mrt {

namespace {

/// Registry handles for the ingest metric catalogue (README "Observability").
/// Resolved once — next() runs per record, so per-call name lookups would be
/// measurable; the handles themselves are just sharded-cell pointers.
struct IngestMetrics {
  obs::Counter records = obs::MetricsRegistry::global().counter("htor_ingest_records_total");
  obs::Counter bytes = obs::MetricsRegistry::global().counter("htor_ingest_bytes_total");
  obs::Counter batches = obs::MetricsRegistry::global().counter("htor_ingest_batches_total");

  obs::Counter decode_error(const char* reason) {
    return obs::MetricsRegistry::global().counter("htor_ingest_decode_errors_total",
                                                  {{"reason", reason}});
  }

  static IngestMetrics& get() {
    static IngestMetrics metrics;
    return metrics;
  }
};

bool is_peer_index_table(const RawFramedRecord& rec) {
  return rec.type == static_cast<std::uint16_t>(MrtType::TableDumpV2) &&
         rec.subtype == static_cast<std::uint16_t>(TableDumpV2Subtype::PeerIndexTable);
}

bool is_rib_record(const RawFramedRecord& rec) {
  return rec.type == static_cast<std::uint16_t>(MrtType::TableDumpV2) &&
         (rec.subtype == static_cast<std::uint16_t>(TableDumpV2Subtype::RibIpv4Unicast) ||
          rec.subtype == static_cast<std::uint16_t>(TableDumpV2Subtype::RibIpv6Unicast));
}

/// One batched record awaiting parallel decode: the raw frame plus the
/// peer-index table that governs it (null for non-RIB records, which decode
/// for validation only).
struct PendingRecord {
  RawFramedRecord raw;
  std::shared_ptr<const PeerIndexTable> peers;
};

/// One shard's decode output: the joined routes plus the shard-local sketch
/// accumulator (fed with no locking; absorbed in shard order below).
struct DecodedShard {
  std::vector<ObservedRoute> routes;
  obs::sketch::IngestBundle sketches;
};

/// Decode + join one batch on the pool; shards merge in record order.
void flush_batch(std::vector<PendingRecord>& batch, ThreadPool& pool, ObservedRib& rib) {
  IngestMetrics::get().batches.inc();
  std::vector<DecodedShard> shards;
  {
    OBS_SPAN("ingest.decode");
    shards = core::shard_map(pool, batch.size(), [&batch](const core::ShardRange& range) {
      DecodedShard out;
      for (std::size_t i = range.begin; i < range.end; ++i) {
        const PendingRecord& item = batch[i];
        Record record;
        try {
          record = decode_record_body(item.raw.timestamp, item.raw.type,
                                      item.raw.subtype, item.raw.body);
        } catch (const DecodeError&) {
          IngestMetrics::get().decode_error("record_body").inc();
          throw;
        }
        const auto* rib_rec = std::get_if<RibPrefixRecord>(&record.body);
        if (rib_rec == nullptr) continue;  // decoded only to validate the bytes
        const std::size_t first = out.routes.size();
        join_rib_record(*rib_rec, *item.peers, out.routes);
        for (std::size_t r = first; r < out.routes.size(); ++r) {
          out.sketches.add_route(out.routes[r].prefix, out.routes[r].as_path);
        }
      }
      return out;
    });
  }
  {
    OBS_SPAN("ingest.apply");
    auto& telemetry = obs::sketch::Telemetry::global();
    for (auto& shard : shards) {
      telemetry.absorb(shard.sketches);
      for (auto& route : shard.routes) {
        // Bloom pre-filter on the sequential leg: the feed order is the
        // record order, identical at every --jobs value and for both the
        // streaming and load-all ingest paths.
        std::uint32_t prev = 0;
        bool have_prev = false;
        for (const std::uint32_t asn : route.as_path) {
          if (have_prev && asn == prev) continue;
          if (have_prev) telemetry.note_link_seen(obs::sketch::link_item(prev, asn));
          prev = asn;
          have_prev = true;
        }
        rib.add(std::move(route));
      }
    }
  }
  batch.clear();
}

}  // namespace

MrtStreamReader::MrtStreamReader(const std::string& path, std::size_t io_buffer_bytes)
    : path_(path), io_buffer_(io_buffer_bytes > 0 ? io_buffer_bytes : kDefaultIoBuffer) {
  // pubsetbuf must precede open() to take effect portably.
  in_.rdbuf()->pubsetbuf(io_buffer_.data(), static_cast<std::streamsize>(io_buffer_.size()));
  in_.open(path, std::ios::binary);
  if (!in_) throw Error("cannot open '" + path + "'");
  in_.seekg(0, std::ios::end);
  const std::streamoff size = in_.tellg();
  if (size < 0) throw Error("cannot determine size of '" + path + "'");
  file_size_ = static_cast<std::uint64_t>(size);
  in_.seekg(0);
}

std::optional<RawFramedRecord> MrtStreamReader::next() {
  constexpr std::size_t kHeaderBytes = 12;
  std::uint8_t header[kHeaderBytes];
  // lint: allow(raw-cast) istream::read takes char*; the bytes are decoded
  // through ByteReader afterwards, never via pointer casts
  in_.read(reinterpret_cast<char*>(header), kHeaderBytes);
  const std::streamsize got = in_.gcount();
  if (got == 0 && in_.eof()) return std::nullopt;  // clean end-of-file
  if (got < static_cast<std::streamsize>(kHeaderBytes)) {
    if (in_.eof()) {
      IngestMetrics::get().decode_error("truncated_header").inc();
      throw DecodeError("truncated MRT record header at byte " + std::to_string(bytes_) +
                        " of '" + path_ + "': " + std::to_string(got) + " of 12 bytes");
    }
    throw Error("read from '" + path_ + "' failed at byte " + std::to_string(bytes_));
  }

  ByteReader hdr(std::span<const std::uint8_t>(header, kHeaderBytes));
  RawFramedRecord rec;
  rec.timestamp = hdr.u32();
  rec.type = hdr.u16();
  rec.subtype = hdr.u16();
  const std::uint32_t length = hdr.u32();

  // Validate framing against the file size before allocating: a corrupt
  // length field must fail cleanly, not over-allocate or short-read.  The
  // size was snapshotted at open, so a file that grows underneath us (a
  // collector still appending) reads as truncated at the snapshot, not as
  // an unsigned underflow that would disable this guard.
  const std::uint64_t body_start = bytes_ + kHeaderBytes;
  if (body_start > file_size_) {
    IngestMetrics::get().decode_error("header_overrun").inc();
    throw DecodeError("MRT record header at byte " + std::to_string(bytes_) + " of '" + path_ +
                      "' extends past the file size observed at open (" +
                      std::to_string(file_size_) + " bytes); file changed while reading?");
  }
  if (length > file_size_ - body_start) {
    IngestMetrics::get().decode_error("body_overrun").inc();
    throw DecodeError("MRT record at byte " + std::to_string(bytes_) + " of '" + path_ +
                      "' declares " + std::to_string(length) + " body bytes but only " +
                      std::to_string(file_size_ - body_start) + " remain");
  }

  rec.body.resize(length);
  // lint: allow(raw-cast) istream::read takes char*; `length` was bounded
  // against the file size above before the resize
  in_.read(reinterpret_cast<char*>(rec.body.data()), static_cast<std::streamsize>(length));
  if (in_.gcount() < static_cast<std::streamsize>(length)) {
    if (in_.eof()) {  // file shrank under us
      IngestMetrics::get().decode_error("truncated_body").inc();
      throw DecodeError("truncated MRT record body at byte " + std::to_string(body_start) +
                        " of '" + path_ + "'");
    }
    throw Error("read from '" + path_ + "' failed at byte " + std::to_string(body_start));
  }

  bytes_ = body_start + length;
  ++records_;
  IngestMetrics::get().records.inc();
  IngestMetrics::get().bytes.inc(kHeaderBytes + length);
  return rec;
}

std::optional<RawFramedRecord> MrtStreamReader::next_update() {
  while (auto raw = next()) {
    const bool is_update =
        raw->type == static_cast<std::uint16_t>(MrtType::Bgp4mp) &&
        (raw->subtype == static_cast<std::uint16_t>(Bgp4mpSubtype::Message) ||
         raw->subtype == static_cast<std::uint16_t>(Bgp4mpSubtype::MessageAs4));
    if (is_update) return raw;
    ++skipped_;  // skipped by header alone; the body is never decoded
  }
  return std::nullopt;
}

ObservedRib rib_from_stream(const std::string& path, ThreadPool& pool,
                            std::size_t batch_records) {
  OBS_SPAN("ingest");
  if (batch_records == 0) batch_records = kStreamBatchRecords;
  MrtStreamReader stream(path);
  ObservedRib rib;

  // Peer-index tables decode inline during the header scan — they are rare
  // (one per dump), cheap, and must govern the RIB records that follow them
  // within the same batch.  shared_ptr keeps a table alive for exactly the
  // batches that reference it.
  std::shared_ptr<const PeerIndexTable> current_peers;
  std::vector<PendingRecord> batch;
  batch.reserve(batch_records);

  while (auto raw = stream.next()) {
    if (is_peer_index_table(*raw)) {
      Record record = decode_record_body(raw->timestamp, raw->type, raw->subtype, raw->body);
      current_peers = std::make_shared<const PeerIndexTable>(
          std::move(std::get<PeerIndexTable>(record.body)));
      continue;
    }
    if (is_rib_record(*raw)) {
      if (current_peers == nullptr) {
        throw DecodeError("RIB record before any PEER_INDEX_TABLE");
      }
      batch.push_back(PendingRecord{std::move(*raw), current_peers});
    } else {
      // Non-RIB records contribute no routes but still decode (in the batch,
      // on the pool) so corrupt bytes fail exactly like the in-memory path.
      batch.push_back(PendingRecord{std::move(*raw), nullptr});
    }
    if (batch.size() >= batch_records) flush_batch(batch, pool, rib);
  }
  flush_batch(batch, pool, rib);
  return rib;
}

ObservedRib rib_from_stream(const std::string& path) {
  ThreadPool inline_pool(1);
  return rib_from_stream(path, inline_pool);
}

}  // namespace htor::mrt
