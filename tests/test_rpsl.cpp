// Unit tests for the RPSL parser and the community-documentation miner,
// including a parameterized phrase corpus covering the dialects the
// synthetic IRR emits (and a few real-world-style variants).
#include <gtest/gtest.h>

#include "rpsl/community_dict.hpp"
#include "rpsl/object.hpp"

namespace htor::rpsl {
namespace {

TEST(RpslParser, BasicObject) {
  const auto objects = parse_objects(
      "aut-num:  AS64500\n"
      "as-name:  TEST\n"
      "remarks:  hello\n"
      "source:   TESTDB\n");
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(objects[0].class_name(), "aut-num");
  EXPECT_EQ(objects[0].get("as-name"), "TEST");
  EXPECT_EQ(objects[0].autnum(), Asn{64500});
}

TEST(RpslParser, MultipleObjectsAndComments) {
  const auto objects = parse_objects(
      "% whois comment\n"
      "aut-num: AS1\n"
      "\n"
      "# another comment\n"
      "route6: 2001:db8::/32\n"
      "origin: AS1\n"
      "\n\n"
      "aut-num: AS2\n");
  ASSERT_EQ(objects.size(), 3u);
  EXPECT_EQ(objects[0].class_name(), "aut-num");
  EXPECT_EQ(objects[1].class_name(), "route6");
  EXPECT_FALSE(objects[1].autnum().has_value());
  EXPECT_EQ(objects[2].autnum(), Asn{2});
}

TEST(RpslParser, ContinuationLines) {
  const auto objects = parse_objects(
      "aut-num: AS7\n"
      "remarks: first line\n"
      "         second line\n"
      "+third line\n");
  ASSERT_EQ(objects.size(), 1u);
  const auto remarks = objects[0].all("remarks");
  ASSERT_EQ(remarks.size(), 1u);
  EXPECT_EQ(remarks[0], "first line\nsecond line\nthird line");
}

TEST(RpslParser, RepeatedAttributes) {
  const auto objects = parse_objects(
      "aut-num: AS7\n"
      "remarks: a\n"
      "remarks: b\n");
  EXPECT_EQ(objects[0].all("remarks").size(), 2u);
  EXPECT_EQ(objects[0].get("remarks"), "a");  // first value
}

TEST(RpslParser, KeysAreLowercasedAndMalformedLinesSkipped) {
  const auto objects = parse_objects(
      "AUT-NUM: AS9\n"
      "garbage line without colon\n"
      "Mnt-By: M\n");
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(objects[0].autnum(), Asn{9});
  EXPECT_TRUE(objects[0].get("mnt-by").has_value());
}

TEST(RpslParser, BadAutnums) {
  EXPECT_FALSE(parse_objects("aut-num: 64500\n")[0].autnum().has_value());
  EXPECT_FALSE(parse_objects("aut-num: ASX\n")[0].autnum().has_value());
  EXPECT_FALSE(parse_objects("aut-num: AS\n")[0].autnum().has_value());
}

// --- remark interpretation ------------------------------------------------

struct PhraseCase {
  const char* line;
  CommunityTagKind kind;
  std::uint32_t locpref;
};

class RemarkPhrases : public ::testing::TestWithParam<PhraseCase> {};

TEST_P(RemarkPhrases, Classified) {
  const auto& c = GetParam();
  bgp::Community community;
  CommunityMeaning meaning;
  ASSERT_TRUE(interpret_remark_line(c.line, community, meaning)) << c.line;
  EXPECT_EQ(meaning.kind, c.kind) << c.line;
  if (c.kind == CommunityTagKind::SetLocPref) {
    EXPECT_EQ(meaning.locpref, c.locpref) << c.line;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, RemarkPhrases,
    ::testing::Values(
        PhraseCase{"64500:100 routes learned from customers", CommunityTagKind::FromCustomer, 0},
        PhraseCase{"64500:100 customer routes", CommunityTagKind::FromCustomer, 0},
        PhraseCase{"64500:100 received from customer", CommunityTagKind::FromCustomer, 0},
        PhraseCase{"64500:200 routes learned from peers", CommunityTagKind::FromPeer, 0},
        PhraseCase{"64500:200 peer routes received at public peering", CommunityTagKind::FromPeer,
                   0},
        PhraseCase{"64500:200 received from peering partner", CommunityTagKind::FromPeer, 0},
        PhraseCase{"64500:300 routes learned from upstream providers",
                   CommunityTagKind::FromProvider, 0},
        PhraseCase{"64500:300 transit provider routes", CommunityTagKind::FromProvider, 0},
        PhraseCase{"64500:300 received from upstream transit", CommunityTagKind::FromProvider, 0},
        PhraseCase{"64500:400 routes from sibling ASes", CommunityTagKind::FromSibling, 0},
        PhraseCase{"64500:400 internal routes of our backbone", CommunityTagKind::FromSibling, 0},
        PhraseCase{"64500:70 set local-pref to 70 (backup)", CommunityTagKind::SetLocPref, 70},
        PhraseCase{"64500:900 sets local preference to 250", CommunityTagKind::SetLocPref, 250},
        PhraseCase{"64500:50 local-pref 50 applied on ingress", CommunityTagKind::SetLocPref, 50},
        PhraseCase{"64500:7001 prepend once towards peers", CommunityTagKind::Prepend, 0},
        PhraseCase{"64500:7002 prepend 3x towards upstreams", CommunityTagKind::Prepend, 0},
        PhraseCase{"64500:666 blackhole / RTBH", CommunityTagKind::Blackhole, 0},
        PhraseCase{"64500:0 do not announce to peers", CommunityTagKind::NoExportTo, 0},
        PhraseCase{"64500:5001 route originated in city-3", CommunityTagKind::GeoTag, 0},
        PhraseCase{"64500:6001 received in region 2", CommunityTagKind::GeoTag, 0},
        PhraseCase{"64500:65301 PoP 4 ingress", CommunityTagKind::GeoTag, 0},
        PhraseCase{"64500:999 type A routes", CommunityTagKind::Other, 0}));

TEST(RemarkInterpretation, TePhrasingBeatsRelationshipWords) {
  // "set local-pref for peer routes" must not be read as a peer ingress tag.
  bgp::Community c;
  CommunityMeaning m;
  ASSERT_TRUE(interpret_remark_line("64500:80 set local-pref 80 for peer routes", c, m));
  EXPECT_EQ(m.kind, CommunityTagKind::SetLocPref);
  EXPECT_EQ(m.locpref, 80u);
}

TEST(RemarkInterpretation, NonCommunityLinesIgnored) {
  bgp::Community c;
  CommunityMeaning m;
  EXPECT_FALSE(interpret_remark_line("===== BGP communities =====", c, m));
  EXPECT_FALSE(interpret_remark_line("", c, m));
  EXPECT_FALSE(interpret_remark_line("contact noc@example.net", c, m));
}

TEST(Dictionary, MiningAndLookups) {
  const auto objects = parse_objects(
      "aut-num: AS64500\n"
      "remarks: 64500:100 routes learned from customers\n"
      "remarks: 64500:200 routes learned from peers\n"
      "remarks: 64500:70  set local-pref to 70\n"
      "\n"
      "aut-num: AS64501\n"
      "remarks: 64501:100 received from upstream transit\n"
      "\n"
      "route6: 2001:db8::/32\n"
      "remarks: 9:9 routes learned from customers\n");  // not an aut-num: ignored
  const auto dict = mine_dictionary(objects);
  EXPECT_EQ(dict.size(), 4u);
  ASSERT_NE(dict.lookup(bgp::Community(64500, 100)), nullptr);
  EXPECT_EQ(dict.lookup(bgp::Community(64500, 100))->kind, CommunityTagKind::FromCustomer);
  EXPECT_EQ(dict.lookup(bgp::Community(64501, 100))->kind, CommunityTagKind::FromProvider);
  EXPECT_EQ(dict.lookup(bgp::Community(9, 9)), nullptr);
  EXPECT_EQ(dict.lookup(bgp::Community(64500, 9999)), nullptr);
  EXPECT_EQ(dict.documented_asns().size(), 2u);
}

TEST(Dictionary, RelationshipOfMapping) {
  EXPECT_EQ(relationship_of(CommunityTagKind::FromCustomer), Relationship::P2C);
  EXPECT_EQ(relationship_of(CommunityTagKind::FromPeer), Relationship::P2P);
  EXPECT_EQ(relationship_of(CommunityTagKind::FromProvider), Relationship::C2P);
  EXPECT_EQ(relationship_of(CommunityTagKind::FromSibling), Relationship::S2S);
  EXPECT_THROW(relationship_of(CommunityTagKind::Prepend), InvalidArgument);
}

TEST(Dictionary, ConflictKeepsFirstMeaning) {
  CommunityDictionary dict;
  dict.add(bgp::Community(1, 1), {CommunityTagKind::FromCustomer, 0});
  dict.add(bgp::Community(1, 1), {CommunityTagKind::FromPeer, 0});
  EXPECT_EQ(dict.size(), 1u);
  EXPECT_EQ(dict.conflicts(), 1u);
  EXPECT_EQ(dict.lookup(bgp::Community(1, 1))->kind, CommunityTagKind::FromCustomer);
  // Identical re-registration is not a conflict.
  dict.add(bgp::Community(1, 1), {CommunityTagKind::FromCustomer, 0});
  EXPECT_EQ(dict.conflicts(), 1u);
}

TEST(Dictionary, KindHistogramAndTagClasses) {
  CommunityDictionary dict;
  dict.add(bgp::Community(1, 1), {CommunityTagKind::FromCustomer, 0});
  dict.add(bgp::Community(1, 2), {CommunityTagKind::SetLocPref, 80});
  const auto hist = dict.kind_histogram();
  EXPECT_EQ(hist.at(CommunityTagKind::FromCustomer), 1u);
  EXPECT_EQ(hist.at(CommunityTagKind::SetLocPref), 1u);
  EXPECT_TRUE(is_relationship_tag(CommunityTagKind::FromSibling));
  EXPECT_FALSE(is_relationship_tag(CommunityTagKind::GeoTag));
  EXPECT_TRUE(is_te_tag(CommunityTagKind::SetLocPref));
  EXPECT_TRUE(is_te_tag(CommunityTagKind::Prepend));
  EXPECT_FALSE(is_te_tag(CommunityTagKind::FromPeer));
}

}  // namespace
}  // namespace htor::rpsl
