// Gao's relationship inference algorithm (ToN 2001), the canonical
// valley-free heuristic the paper contrasts with.
//
// Like the prior work the paper critiques ([1], [4]), the algorithm is
// address-family agnostic: feed it the union of IPv4 and IPv6 paths and it
// produces one relationship per link — which is precisely what manufactures
// the misinference on hybrid links that Figure 2 quantifies.
//
// Sketch: every path is assumed valley-free with its highest-degree AS at
// the top; links before the top vote "climbing" (c2p), links after vote
// "descending" (p2c).  Links with votes both ways within a factor of L are
// siblings; links with no transit votes whose endpoint degrees are within a
// factor of R are peers.
#pragma once

#include <cstddef>

#include "topology/path_store.hpp"
#include "topology/relationship.hpp"

namespace htor::baselines {

struct GaoParams {
  /// Sibling threshold: both directions have votes and the minority side
  /// has at least 1/L of the majority's votes.
  double sibling_ratio = 0.5;
  /// Degree ratio under which an unvoted link is classified p2p.
  double peer_degree_ratio = 60.0;
};

struct GaoResult {
  RelationshipMap rels;
  std::size_t transit_links = 0;
  std::size_t peer_links = 0;
  std::size_t sibling_links = 0;
};

/// Run Gao's algorithm over the (possibly mixed-family) path set.
GaoResult infer_gao(const PathStore& paths, const GaoParams& params = {});

}  // namespace htor::baselines
