// F1 (Figure 1): the customer tree of AS1 changes drastically when the
// relationship of link 1-2 flips between p2c and p2p.  In (a) AS1 reaches
// every node through p2c links; in (b) it reaches only AS3.
#include <iostream>

#include "harness.hpp"
#include "topology/customer_tree.hpp"
#include "util/table.hpp"

int main() {
  using namespace htor;
  bench::print_header("F1 / bench_fig1_customer_tree",
                      "flipping link 1-2 p2c<->p2p changes AS1's customer tree from "
                      "all nodes to just AS3");

  // The paper's toy topology: AS1 at the top, AS3 its direct customer, and
  // AS2's subtree (AS4, AS5, AS6) below AS2.
  auto build = [](Relationship rel_1_2) {
    RelationshipMap rels;
    rels.set(1, 2, rel_1_2);
    rels.set(1, 3, Relationship::P2C);
    rels.set(2, 4, Relationship::P2C);
    rels.set(2, 5, Relationship::P2C);
    rels.set(4, 6, Relationship::P2C);
    return rels;
  };

  for (auto [label, rel] : {std::pair{"(a) link 1-2 = p2c", Relationship::P2C},
                            std::pair{"(b) link 1-2 = p2p", Relationship::P2P}}) {
    const RelationshipMap rels = build(rel);
    const CustomerTreeAnalysis trees(rels);
    std::cout << "\n" << label << "\n";
    Table t({"root", "customer tree", "cone size"});
    for (Asn root : {1u, 2u}) {
      std::string members;
      for (Asn asn : trees.tree_of(root)) {
        if (!members.empty()) members += ' ';
        members += "AS" + std::to_string(asn);
      }
      t.row({"AS" + std::to_string(root), members, std::to_string(trees.cone_size(root))});
    }
    t.print(std::cout);
    const auto m = trees.union_metrics();
    std::cout << "union-of-trees: nodes=" << m.nodes << " p2c-edges=" << m.edges
              << " avg-valley-free-path=" << m.avg_path_length << " diameter=" << m.diameter
              << "\n";
  }
  return 0;
}
