// Quickstart: the whole hybridtor pipeline in one page.
//
//   1. generate a small synthetic Internet (two address planes, hybrid
//      relationships planted on dual-stack links),
//   2. let its collector observe both planes and serialize the RIB to real
//      MRT TABLE_DUMP_V2 bytes,
//   3. parse the bytes back, mine the IRR dump's community documentation,
//   4. run the paper's census: coverage, hybrid links, valley paths.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/census_report.hpp"
#include "gen/internet.hpp"
#include "mrt/reader.hpp"
#include "mrt/writer.hpp"
#include "rpsl/object.hpp"
#include "util/strings.hpp"

int main() {
  using namespace htor;

  // 1. A small deterministic Internet (~300 ASes).
  const auto net = gen::SyntheticInternet::generate(gen::small_params(/*seed=*/42));
  std::cout << "synthetic Internet: " << net.graph().as_count() << " ASes, "
            << net.graph().link_count(IpVersion::V4) << " v4 links, "
            << net.graph().link_count(IpVersion::V6) << " v6 links, "
            << net.hybrid_links().size() << " planted hybrid links\n";

  // 2. Observe it and write genuine MRT bytes (what RouteViews would serve).
  mrt::MrtWriter writer;
  for (const auto& record :
       mrt::records_from_rib(net.collect(), 0xc0ffee01u, "quickstart", 1281052800u)) {
    writer.write(record);
  }
  std::cout << "collector RIB: " << writer.data().size() << " bytes of MRT\n";

  // 3. Parse the bytes back and mine the IRR text.
  const auto rib = mrt::rib_from_records(mrt::read_all(writer.data()));
  const auto dict = rpsl::mine_dictionary(rpsl::parse_objects(net.irr_dump()));
  std::cout << "community dictionary: " << dict.size() << " entries from "
            << dict.documented_asns().size() << " documented ASes\n";

  // 4. The paper's census.
  const auto census = core::run_census(rib, dict);
  std::cout << "\n--- census ---\n";
  std::cout << "IPv6 AS paths:        " << census.v6_paths << "\n";
  std::cout << "IPv6 AS links:        " << census.v6_links << " ("
            << fmt_pct(census.v6_coverage.covered_links, census.v6_coverage.observed_links)
            << " with a relationship)\n";
  std::cout << "dual-stack links:     " << census.dual_links << "\n";
  std::cout << "hybrid links:         " << census.hybrids.hybrids.size() << " ("
            << fmt_pct(census.hybrids.hybrids.size(), census.hybrids.dual_links_both_known)
            << " of those typed in both planes)\n";
  std::cout << "IPv6 valley paths:    " << census.v6_valleys.valley << " ("
            << fmt_pct(census.v6_valleys.valley, census.v6_valleys.paths) << ")\n";
  std::cout << "IPv4 valley paths:    " << census.v4_valleys.valley << " (should be 0)\n";

  if (!census.hybrids.hybrids.empty()) {
    const auto& top = census.hybrids.hybrids.front();
    std::cout << "\nmost visible hybrid link: AS" << top.link.first << " - AS"
              << top.link.second << "  v4=" << to_string(top.rel_v4)
              << " v6=" << to_string(top.rel_v6) << " (" << to_string(top.cls) << ", on "
              << top.v6_path_visibility << " IPv6 paths)\n";
  }
  return 0;
}
