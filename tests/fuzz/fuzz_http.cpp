// Fuzz target: the HTTP/1.1 request parser (server::RequestParser).
//
// The parser never throws — its contract is a typed verdict per request:
// Done with a valid request, Bad with a 4xx status and a reasoned message,
// or NeedMore for a stream that ends mid-request (a socket peer that went
// quiet).  Two properties are asserted per input:
//
//   1. Verdict sanity: Bad always carries a status in 400..499 and a
//      non-empty reason; Done always carries a non-empty method and a
//      target starting with '/' (origin-form).
//   2. Chunking independence: feeding the same bytes one byte at a time
//      must produce exactly the same sequence of verdicts (and parsed
//      method/target per request) as feeding them all at once.  Incremental
//      parsers love to hide state bugs in the resume paths; this catches
//      them without a socket.
#include "fuzz/driver.hpp"

#include "server/http.hpp"

using namespace htor;
using htor::server::RequestParser;

namespace {

/// One parsed-or-rejected event in a request stream.
struct Event {
  char kind;           // 'D' done, 'B' bad
  int status;          // error status for 'B', 0 for 'D'
  std::string method;  // for 'D'
  std::string target;  // for 'D'

  bool operator==(const Event& other) const = default;
};

/// Run the parser over `input` delivered in `chunk`-byte slices; record the
/// stream of events.  Throws (failing the fuzz contract) on any verdict
/// that violates the parser's own guarantees.
std::vector<Event> drive(const std::vector<std::uint8_t>& input, std::size_t chunk) {
  std::vector<Event> events;
  RequestParser parser;
  std::string pending;
  std::size_t offset = 0;
  while (offset < input.size() || !pending.empty()) {
    if (pending.empty()) {
      const std::size_t take = std::min(chunk, input.size() - offset);
      pending.assign(reinterpret_cast<const char*>(input.data()) + offset, take);
      offset += take;
    }
    std::size_t consumed = 0;
    const auto status = parser.feed(pending, consumed);
    pending.erase(0, consumed);
    if (status == RequestParser::Status::Bad) {
      if (parser.error_status() < 400 || parser.error_status() > 499) {
        throw std::runtime_error("Bad verdict with non-4xx status " +
                                 std::to_string(parser.error_status()));
      }
      if (parser.error().empty()) {
        throw std::runtime_error("Bad verdict with an empty reason");
      }
      events.push_back({'B', parser.error_status(), "", ""});
      break;  // the stream is unsynchronized after a parse error
    }
    if (status == RequestParser::Status::Done) {
      const auto& request = parser.request();
      if (request.method.empty() || request.target.empty() || request.target[0] != '/') {
        throw std::runtime_error("Done verdict with an invalid request line");
      }
      events.push_back({'D', 0, request.method, request.target});
      parser = RequestParser();  // next pipelined request
      continue;
    }
    // NeedMore: the parser consumed everything it was given.
    if (!pending.empty()) throw std::runtime_error("NeedMore left bytes unconsumed");
  }
  return events;
}

}  // namespace

int main(int argc, char** argv) {
  return fuzz::run_target("fuzz_http", argc, argv, [](const std::vector<std::uint8_t>& input) {
    const auto bulk = drive(input, input.empty() ? 1 : input.size());
    const auto trickle = drive(input, 1);
    if (bulk != trickle) {
      throw std::runtime_error("verdicts differ between bulk and byte-at-a-time delivery");
    }
    // Parsed = at least one complete request and no Bad verdict; everything
    // else (rejected or truncated mid-request) counts as a rejection.
    const bool any_bad = !bulk.empty() && bulk.back().kind == 'B';
    const bool any_done = !bulk.empty() && bulk.front().kind == 'D';
    return (any_done && !any_bad) ? fuzz::Outcome::Parsed : fuzz::Outcome::Rejected;
  });
}
