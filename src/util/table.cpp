#include "util/table.hpp"

#include <algorithm>
#include <ostream>

#include "util/error.hpp"

namespace htor {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw InvalidArgument("Table: no headers");
}

void Table::row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw InvalidArgument("Table::row: expected " + std::to_string(headers_.size()) +
                          " cells, got " + std::to_string(cells.size()));
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) {
        os << std::string(width[c] - cells[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
}

}  // namespace htor
