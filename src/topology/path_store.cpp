#include "topology/path_store.hpp"

#include <algorithm>
#include <unordered_set>

namespace htor {

void PathStore::add(const std::vector<Asn>& path) {
  if (path.size() < 2) return;
  ++paths_[path];
  ++total_;
  index_built_ = false;
}

void PathStore::merge(const PathStore& other) {
  for (const auto& [path, count] : other.paths_) paths_[path] += count;
  total_ += other.total_;
  index_built_ = false;
}

void PathStore::for_each(
    const std::function<void(const std::vector<Asn>&, std::uint64_t)>& fn) const {
  for (const auto& [path, count] : paths_) fn(path, count);
}

std::vector<LinkKey> PathStore::links() const {
  build_link_index();
  std::vector<LinkKey> out;
  out.reserve(link_paths_.size());
  for (const auto& [key, count] : link_paths_) {
    (void)count;
    out.push_back(key);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t PathStore::paths_containing(Asn a, Asn b) const {
  build_link_index();
  auto it = link_paths_.find(LinkKey(a, b));
  return it == link_paths_.end() ? 0 : it->second;
}

void PathStore::build_link_index() const {
  if (index_built_) return;
  link_paths_.clear();
  for (const auto& [path, count] : paths_) {
    (void)count;
    std::unordered_set<LinkKey, LinkKeyHash> seen;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (path[i] == path[i + 1]) continue;  // prepending
      const LinkKey key(path[i], path[i + 1]);
      if (seen.insert(key).second) ++link_paths_[key];
    }
  }
  index_built_ = true;
}

}  // namespace htor
