// mrt_inspect: a bgpdump-style MRT file inspector built on the hybridtor MRT
// codec.  Given no argument it writes a demo dump to a temp file first, so
// it is runnable out of the box.
//
// Usage:  mrt_inspect [file.mrt] [--routes]
//    --routes   print one line per observed route instead of per record
#include <cstring>
#include <iostream>
#include <string>

#include "gen/internet.hpp"
#include "mrt/reader.hpp"
#include "mrt/rib_view.hpp"
#include "mrt/writer.hpp"

namespace {

std::string demo_file() {
  using namespace htor;
  const auto net = gen::SyntheticInternet::generate(gen::small_params(1));
  mrt::MrtWriter writer;
  for (const auto& rec :
       mrt::records_from_rib(net.collect(), 0xdeadbeefu, "demo", 1281052800u)) {
    writer.write(rec);
  }
  const std::string path = "/tmp/hybridtor_demo.mrt";
  writer.save(path);
  std::cout << "(no input given; wrote demo dump to " << path << ")\n";
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace htor;
  std::string path;
  bool routes_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--routes") == 0) {
      routes_mode = true;
    } else {
      path = argv[i];
    }
  }
  if (path.empty()) path = demo_file();

  const auto data = mrt::load_file(path);
  const auto records = mrt::read_all(data);
  std::cout << path << ": " << data.size() << " bytes, " << records.size() << " records\n";

  if (routes_mode) {
    const auto rib = mrt::rib_from_records(records);
    for (const auto& route : rib.routes()) {
      std::cout << route.prefix.to_string() << " via AS" << route.peer_asn << " path [";
      for (std::size_t i = 0; i < route.as_path.size(); ++i) {
        if (i) std::cout << ' ';
        std::cout << route.as_path[i];
      }
      std::cout << "]";
      if (route.local_pref) std::cout << " locpref " << *route.local_pref;
      if (!route.communities.empty()) {
        std::cout << " communities";
        for (auto c : route.communities) std::cout << ' ' << c.to_string();
      }
      std::cout << "\n";
    }
    return 0;
  }

  std::size_t shown = 0;
  for (const auto& record : records) {
    if (shown++ > 20) {
      std::cout << "... (" << records.size() - 20 << " more records; use --routes)\n";
      break;
    }
    std::cout << "t=" << record.timestamp << " ";
    if (const auto* pit = std::get_if<mrt::PeerIndexTable>(&record.body)) {
      std::cout << "PEER_INDEX_TABLE view='" << pit->view_name << "' peers="
                << pit->peers.size() << "\n";
      for (const auto& peer : pit->peers) {
        std::cout << "    AS" << peer.asn << " @ " << peer.address.to_string() << "\n";
      }
    } else if (const auto* rib = std::get_if<mrt::RibPrefixRecord>(&record.body)) {
      std::cout << "RIB_" << (rib->prefix.version() == IpVersion::V4 ? "IPV4" : "IPV6")
                << "_UNICAST seq=" << rib->sequence << " " << rib->prefix.to_string()
                << " entries=" << rib->entries.size() << "\n";
    } else if (std::get_if<mrt::Bgp4mpMessage>(&record.body)) {
      std::cout << "BGP4MP_MESSAGE\n";
    } else {
      const auto& raw = std::get<mrt::RawRecord>(record.body);
      std::cout << "raw type=" << raw.type << " subtype=" << raw.subtype << " len="
                << raw.payload.size() << "\n";
    }
  }
  return 0;
}
