// Unit tests for classic and large BGP communities.
#include <gtest/gtest.h>

#include "bgp/community.hpp"
#include "util/error.hpp"

namespace htor::bgp {
namespace {

TEST(Community, Accessors) {
  const Community c(64500, 120);
  EXPECT_EQ(c.asn(), 64500);
  EXPECT_EQ(c.value(), 120);
  EXPECT_EQ(c.raw(), 64500u << 16 | 120u);
  EXPECT_EQ(Community(c.raw()), c);
}

TEST(Community, ParseFormatRoundTrip) {
  const auto c = Community::parse("3356:100");
  EXPECT_EQ(c.asn(), 3356);
  EXPECT_EQ(c.value(), 100);
  EXPECT_EQ(c.to_string(), "3356:100");
  EXPECT_EQ(Community::parse(c.to_string()), c);
}

TEST(Community, ParseErrors) {
  Community out;
  EXPECT_FALSE(Community::try_parse("3356", out));
  EXPECT_FALSE(Community::try_parse("65536:1", out));
  EXPECT_FALSE(Community::try_parse("1:65536", out));
  EXPECT_FALSE(Community::try_parse("a:1", out));
  EXPECT_FALSE(Community::try_parse(":", out));
  EXPECT_THROW(Community::parse("x"), ParseError);
}

TEST(Community, WellKnownValues) {
  EXPECT_EQ(kNoExport.raw(), 0xffffff01u);
  EXPECT_EQ(kNoAdvertise.raw(), 0xffffff02u);
  EXPECT_EQ(kNoExportSubconfed.raw(), 0xffffff03u);
}

TEST(Community, Ordering) {
  EXPECT_LT(Community(1, 1), Community(1, 2));
  EXPECT_LT(Community(1, 65535), Community(2, 0));
}

TEST(LargeCommunity, ParseFormatRoundTrip) {
  const auto lc = LargeCommunity::parse("4200000000:1:2");
  EXPECT_EQ(lc.global, 4200000000u);
  EXPECT_EQ(lc.local1, 1u);
  EXPECT_EQ(lc.local2, 2u);
  EXPECT_EQ(LargeCommunity::parse(lc.to_string()), lc);
}

TEST(LargeCommunity, ParseErrors) {
  LargeCommunity out;
  EXPECT_FALSE(LargeCommunity::try_parse("1:2", out));
  EXPECT_FALSE(LargeCommunity::try_parse("1:2:3:4", out));
  EXPECT_FALSE(LargeCommunity::try_parse("4294967296:0:0", out));
  EXPECT_THROW(LargeCommunity::parse("bad"), ParseError);
}

TEST(Normalized, SortsAndDeduplicates) {
  const auto out = normalized({Community(2, 2), Community(1, 1), Community(2, 2)});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], Community(1, 1));
  EXPECT_EQ(out[1], Community(2, 2));
  EXPECT_TRUE(normalized({}).empty());
}

}  // namespace
}  // namespace htor::bgp
