// Unit tests for IP address parsing/formatting, including the RFC 5952
// canonical text form for IPv6.
#include <gtest/gtest.h>

#include "netbase/ip.hpp"

namespace htor {
namespace {

TEST(Ipv4, ParseAndFormat) {
  const auto a = IpAddress::parse("192.0.2.1");
  EXPECT_TRUE(a.is_v4());
  EXPECT_EQ(a.to_string(), "192.0.2.1");
  EXPECT_EQ(a.v4_value(), 0xc0000201u);
  EXPECT_EQ(IpAddress::v4(0x0a000001u).to_string(), "10.0.0.1");
}

TEST(Ipv4, RejectsMalformed) {
  IpAddress out;
  EXPECT_FALSE(IpAddress::try_parse("192.0.2", out));
  EXPECT_FALSE(IpAddress::try_parse("192.0.2.256", out));
  EXPECT_FALSE(IpAddress::try_parse("192.0.2.1.5", out));
  EXPECT_FALSE(IpAddress::try_parse("192.0.2.a", out));
  EXPECT_FALSE(IpAddress::try_parse("0192.0.2.1", out));  // over-long octet
  EXPECT_FALSE(IpAddress::try_parse("", out));
  EXPECT_THROW(IpAddress::parse("not-an-ip"), ParseError);
}

// Parse -> format must be the RFC 5952 canonical form.
struct V6Case {
  const char* input;
  const char* canonical;
};

class Ipv6Canonical : public ::testing::TestWithParam<V6Case> {};

TEST_P(Ipv6Canonical, ParseFormat) {
  const auto& c = GetParam();
  const auto addr = IpAddress::parse(c.input);
  EXPECT_TRUE(addr.is_v6());
  EXPECT_EQ(addr.to_string(), c.canonical);
  // Canonical text re-parses to the same address.
  EXPECT_EQ(IpAddress::parse(addr.to_string()), addr);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, Ipv6Canonical,
    ::testing::Values(
        V6Case{"2001:db8::1", "2001:db8::1"},
        V6Case{"2001:0db8:0000:0000:0000:0000:0000:0001", "2001:db8::1"},
        V6Case{"::", "::"},
        V6Case{"::1", "::1"},
        V6Case{"1::", "1::"},
        V6Case{"2001:DB8::A", "2001:db8::a"},
        V6Case{"fe80:0:0:0:1:0:0:1", "fe80::1:0:0:1"},      // leftmost longest run
        V6Case{"2001:db8:0:1:1:1:1:1", "2001:db8:0:1:1:1:1:1"},  // no run >= 2
        V6Case{"::ffff:192.0.2.128", "::ffff:c000:280"},    // embedded IPv4
        V6Case{"64:ff9b::192.0.2.33", "64:ff9b::c000:221"},
        V6Case{"a:b:c:d:e:f:1:2", "a:b:c:d:e:f:1:2"},
        V6Case{"0:0:1::", "0:0:1::"},
        V6Case{"2001:db8::", "2001:db8::"}));

TEST(Ipv6, RejectsMalformed) {
  IpAddress out;
  EXPECT_FALSE(IpAddress::try_parse("2001:db8", out));
  EXPECT_FALSE(IpAddress::try_parse("1:2:3:4:5:6:7:8:9", out));
  EXPECT_FALSE(IpAddress::try_parse("1::2::3", out));          // two gaps
  EXPECT_FALSE(IpAddress::try_parse("1:2:3:4:5:6:7", out));    // too short, no gap
  EXPECT_FALSE(IpAddress::try_parse("12345::", out));          // group too long
  EXPECT_FALSE(IpAddress::try_parse("1:2:3:4:5:6:7:8::", out));  // gap with 8 groups
  EXPECT_FALSE(IpAddress::try_parse(":::", out));
  EXPECT_FALSE(IpAddress::try_parse("g::1", out));
}

TEST(IpAddress, BitAccess) {
  const auto a = IpAddress::v4(0x80000001u);
  EXPECT_TRUE(a.bit(0));
  EXPECT_FALSE(a.bit(1));
  EXPECT_TRUE(a.bit(31));
  EXPECT_THROW(a.bit(32), InvalidArgument);
  const auto b = IpAddress::parse("8000::");
  EXPECT_TRUE(b.bit(0));
  EXPECT_FALSE(b.bit(127));
}

TEST(IpAddress, Masking) {
  const auto a = IpAddress::parse("192.0.2.255");
  EXPECT_EQ(a.masked(24).to_string(), "192.0.2.0");
  EXPECT_EQ(a.masked(0).to_string(), "0.0.0.0");
  EXPECT_EQ(a.masked(32), a);
  EXPECT_EQ(a.masked(25).to_string(), "192.0.2.128");
  EXPECT_THROW(a.masked(33), InvalidArgument);

  const auto b = IpAddress::parse("2001:db8:ffff::1");
  EXPECT_EQ(b.masked(32).to_string(), "2001:db8::");
  EXPECT_EQ(b.masked(48).to_string(), "2001:db8:ffff::");
}

TEST(IpAddress, CommonPrefixLen) {
  const auto a = IpAddress::parse("10.0.0.0");
  const auto b = IpAddress::parse("10.0.1.0");
  EXPECT_EQ(a.common_prefix_len(b), 23);
  EXPECT_EQ(a.common_prefix_len(a), 32);
  const auto v6 = IpAddress::parse("2001:db8::");
  EXPECT_THROW(a.common_prefix_len(v6), InvalidArgument);
}

TEST(IpAddress, OrderingGroupsByFamily) {
  const auto v4 = IpAddress::parse("255.255.255.255");
  const auto v6 = IpAddress::parse("::");
  EXPECT_LT(v4, v6);  // family ordinal dominates
  EXPECT_LT(IpAddress::parse("10.0.0.1"), IpAddress::parse("10.0.0.2"));
}

TEST(IpAddress, RawByteConstructor) {
  const std::uint8_t raw4[4] = {192, 0, 2, 1};
  EXPECT_EQ(IpAddress(IpVersion::V4, raw4).to_string(), "192.0.2.1");
  EXPECT_THROW(IpAddress(IpVersion::V6, raw4), InvalidArgument);
}

}  // namespace
}  // namespace htor
