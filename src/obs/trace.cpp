#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>

#include "util/error.hpp"
#include "util/json.hpp"

namespace htor::obs {

namespace {

/// Small sequential thread ids for trace rows — stable within a process run
/// and far more legible in chrome://tracing than std::thread::id hashes.
std::uint32_t trace_thread_id() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::uint64_t us_between(std::chrono::steady_clock::time_point a,
                         std::chrono::steady_clock::time_point b) {
  if (b <= a) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}

}  // namespace

TraceCollector& TraceCollector::global() {
  static TraceCollector* instance = new TraceCollector();  // never destroyed
  return *instance;
}

void TraceCollector::enable() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_release);
}

void TraceCollector::disable() { enabled_.store(false, std::memory_order_release); }

void TraceCollector::record(std::string_view name,
                            std::chrono::steady_clock::time_point start,
                            std::chrono::steady_clock::time_point end) {
  const std::uint32_t tid = trace_thread_id();
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_.load(std::memory_order_relaxed)) return;  // raced a disable()
  Event event;
  event.name.assign(name);
  event.start_us = us_between(epoch_, start);
  event.duration_us = us_between(start, end);
  event.tid = tid;
  events_.push_back(std::move(event));
}

std::size_t TraceCollector::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::string TraceCollector::render_json() const {
  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events = events_;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) { return a.start_us < b.start_us; });

  JsonWriter writer;
  writer.begin_object().key("traceEvents").begin_array();
  for (const auto& event : events) {
    writer.begin_object();
    writer.key("name").value(event.name);
    writer.key("ph").value("X");
    writer.key("ts").value(event.start_us);
    writer.key("dur").value(event.duration_us);
    writer.key("pid").value(std::uint64_t{1});
    writer.key("tid").value(event.tid);
    writer.end_object();
  }
  writer.end_array().key("displayTimeUnit").value("ms").end_object();
  return writer.str();
}

void TraceCollector::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot open trace output file: " + path);
  out << render_json();
  out.flush();
  if (!out) throw Error("failed writing trace output file: " + path);
}

Span::~Span() {
  const auto end = std::chrono::steady_clock::now();
  // Handles are find-or-create behind a registry mutex; spans fire at stage
  // granularity (dozens per run, not per record), so the lookup cost is
  // irrelevant and the handle cache a thread_local map would need isn't
  // worth its complexity.
  MetricsRegistry::global()
      .histogram(kStageDurationMetric, {{"stage", std::string(name_)}})
      .record(us_between(start_, end));
  auto& collector = TraceCollector::global();
  if (collector.enabled()) collector.record(name_, start_, end);
}

}  // namespace htor::obs
