// MRT record model (RFC 6396).
//
// Only the record types a route collector produces are modelled:
// TABLE_DUMP_V2 (RIB snapshots, what RouteViews/RIPE RIS publish as "bviews")
// and BGP4MP (live update traces).  Unknown types survive round-trips as raw
// payloads.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "bgp/message.hpp"
#include "bgp/path_attrs.hpp"
#include "netbase/asn.hpp"
#include "netbase/ip.hpp"
#include "netbase/prefix.hpp"

namespace htor::mrt {

enum class MrtType : std::uint16_t {
  TableDumpV2 = 13,
  Bgp4mp = 16,
};

/// TABLE_DUMP_V2 subtypes.
enum class TableDumpV2Subtype : std::uint16_t {
  PeerIndexTable = 1,
  RibIpv4Unicast = 2,
  RibIpv4Multicast = 3,
  RibIpv6Unicast = 4,
  RibIpv6Multicast = 5,
  RibGeneric = 6,
};

/// BGP4MP subtypes.
enum class Bgp4mpSubtype : std::uint16_t {
  StateChange = 0,
  Message = 1,
  MessageAs4 = 4,
  StateChangeAs4 = 5,
};

/// One collector peer as listed in the PEER_INDEX_TABLE.
struct PeerEntry {
  std::uint32_t bgp_id = 0;
  IpAddress address;  // determines the "IPv6 address" type bit
  Asn asn = 0;        // 4-byte encoding used when > 65535

  friend bool operator==(const PeerEntry&, const PeerEntry&) = default;
};

struct PeerIndexTable {
  std::uint32_t collector_bgp_id = 0;
  std::string view_name;
  std::vector<PeerEntry> peers;

  friend bool operator==(const PeerIndexTable&, const PeerIndexTable&) = default;
};

/// One route (one peer's best path) inside a RIB record.
struct RibEntry {
  std::uint16_t peer_index = 0;
  std::uint32_t originated_time = 0;
  bgp::PathAttributes attrs;  // MP_REACH carried in the abbreviated MRT form

  friend bool operator==(const RibEntry&, const RibEntry&) = default;
};

/// RIB_IPV4_UNICAST / RIB_IPV6_UNICAST record: all peers' routes for one
/// prefix.
struct RibPrefixRecord {
  std::uint32_t sequence = 0;
  Prefix prefix;
  std::vector<RibEntry> entries;

  friend bool operator==(const RibPrefixRecord&, const RibPrefixRecord&) = default;
};

/// BGP4MP_MESSAGE / BGP4MP_MESSAGE_AS4 record.
struct Bgp4mpMessage {
  Asn peer_as = 0;
  Asn local_as = 0;
  std::uint16_t interface_index = 0;
  IpAddress peer_ip;
  IpAddress local_ip;
  bgp::Message message;
  bool as4 = true;  // MESSAGE_AS4 (4-byte ASN header fields)

  friend bool operator==(const Bgp4mpMessage&, const Bgp4mpMessage&) = default;
};

/// A record type this library does not model.
struct RawRecord {
  std::uint16_t type = 0;
  std::uint16_t subtype = 0;
  std::vector<std::uint8_t> payload;

  friend bool operator==(const RawRecord&, const RawRecord&) = default;
};

using RecordBody = std::variant<PeerIndexTable, RibPrefixRecord, Bgp4mpMessage, RawRecord>;

struct Record {
  std::uint32_t timestamp = 0;
  RecordBody body;

  friend bool operator==(const Record&, const Record&) = default;
};

}  // namespace htor::mrt
