// An evolving collector RIB: the keyed, mutable counterpart of
// mrt::ObservedRib.  The batch pipeline's RIB is an append-only route vector
// built once from a TABLE_DUMP_V2 dump; live ingestion needs the opposite —
// a (family, prefix, vantage-peer) keyed table that BGP4MP UPDATEs announce
// into and withdraw from, one message at a time.
//
// Two invariants make this the foundation of the continuous census:
//
//   1. Strong exception safety per message.  apply() validates the whole
//      message before touching the table; a malformed update (announced
//      prefixes with no AS_PATH, family mismatch between prefix and field)
//      throws DecodeError and leaves the RIB exactly as it was.  The fuzz
//      harness holds this as its oracle.
//
//   2. Canonical materialization.  materialize() walks the table in key
//      order — (family, prefix, peer), all totally ordered — so two RIBs
//      holding the same route set produce byte-identical mrt::ObservedRibs
//      no matter what sequence of applies built them.  This is what lets a
//      live epoch's census be compared byte-for-byte against
//      core::run_census over the "same" RIB.
#pragma once

#include <compare>
#include <cstdint>
#include <map>
#include <vector>

#include "mrt/record.hpp"
#include "mrt/rib_view.hpp"

namespace htor::live {

/// Identity of one route slot: the collector holds at most one path per
/// (family, prefix, vantage peer), exactly like a real BGP Adj-RIB-In.
struct RouteKey {
  IpVersion af = IpVersion::V4;
  Prefix prefix;
  Asn peer = 0;

  friend bool operator==(const RouteKey&, const RouteKey&) = default;
  friend auto operator<=>(const RouteKey&, const RouteKey&) = default;
};

/// What one apply() did, expressed as route-level deltas so an incremental
/// census can retract exactly the state the old routes contributed and add
/// the new routes' contribution.  A replaced route appears in both lists
/// (old value in `removed`, new value in `added`).
struct ApplyDelta {
  std::vector<mrt::ObservedRoute> added;
  std::vector<mrt::ObservedRoute> removed;

  bool empty() const { return added.empty() && removed.empty(); }
};

/// Statistics over everything applied so far (monotonic).
struct ApplyStats {
  std::uint64_t messages = 0;          ///< UPDATE messages applied
  std::uint64_t non_updates = 0;       ///< OPEN/KEEPALIVE/NOTIFICATION no-ops
  std::uint64_t announced = 0;         ///< routes newly installed
  std::uint64_t replaced = 0;          ///< routes overwritten by re-announce
  std::uint64_t duplicates = 0;        ///< re-announces identical to stored
  std::uint64_t withdrawn = 0;         ///< routes removed
  std::uint64_t withdrawn_missing = 0; ///< withdraws for routes never held
};

class ObservedRib {
 public:
  /// Install every route of a batch-loaded RIB, last-wins per key (matching
  /// how a real table would converge after replaying the dump in order).
  void seed(const mrt::ObservedRib& rib);

  /// Apply one BGP4MP message.  UPDATEs install/replace announced routes and
  /// erase withdrawn ones; OPEN/KEEPALIVE/NOTIFICATION are counted no-ops.
  /// Validates before mutating: on DecodeError the RIB is untouched.
  ApplyDelta apply(const mrt::Bgp4mpMessage& msg);

  std::size_t size() const { return routes_.size(); }
  std::size_t size_of(IpVersion af) const {
    return af == IpVersion::V4 ? v4_count_ : v6_count_;
  }
  const ApplyStats& stats() const { return stats_; }

  /// The current table as a batch-pipeline RIB, routes in canonical
  /// (family, prefix, peer) order — identical for any apply history that
  /// reaches the same route set.
  mrt::ObservedRib materialize() const;

  /// Visit every held route in canonical key order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [key, route] : routes_) fn(route);
  }

 private:
  void insert(mrt::ObservedRoute route, ApplyDelta& delta);
  void erase(const RouteKey& key, ApplyDelta& delta);

  std::map<RouteKey, mrt::ObservedRoute> routes_;
  std::size_t v4_count_ = 0;
  std::size_t v6_count_ = 0;
  ApplyStats stats_;
};

}  // namespace htor::live
