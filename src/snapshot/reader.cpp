#include "snapshot/reader.hpp"

#include "snapshot/layout.hpp"
#include "util/bytes.hpp"

namespace htor::snapshot {

namespace {

// Serialized sizes, used to bound count fields against the bytes actually
// present before any allocation happens (a garbage count must fail cleanly,
// never over-allocate).
constexpr std::size_t kMapEntryBytes = 4 + 4 + 1;
constexpr std::size_t kHybridEntryBytes = 4 + 4 + 1 + 1 + 1 + 8;

Header decode_header(ByteReader& r) {
  const std::uint32_t magic = r.u32();
  if (magic != kMagic) {
    throw DecodeError("not a hybridtor snapshot (bad magic)");
  }
  Header header;
  header.version = r.u32();
  if (header.version == 0 || header.version > kFormatVersion) {
    throw DecodeError("unsupported snapshot format version " + std::to_string(header.version) +
                      " (this build reads versions 1.." + std::to_string(kFormatVersion) + ")");
  }
  header.timestamp = r.u64();
  const std::uint16_t source_len = r.u16();
  header.source = r.text(source_len);
  return header;
}

CoverageCounters decode_coverage(ByteReader& r) {
  CoverageCounters c;
  c.observed = r.u64();
  c.covered = r.u64();
  if (c.covered > c.observed) {
    throw DecodeError("snapshot coverage counters corrupt (covered > observed)");
  }
  return c;
}

ValleyCounters decode_valleys(ByteReader& r) {
  ValleyCounters v;
  v.paths = r.u64();
  v.valley_free = r.u64();
  v.valley = r.u64();
  v.incomplete = r.u64();
  v.classified_valleys = r.u64();
  v.necessary_valleys = r.u64();
  return v;
}

Relationship decode_rel(ByteReader& r) {
  const std::uint8_t raw = r.u8();
  if (raw > static_cast<std::uint8_t>(Relationship::Unknown)) {
    throw DecodeError("snapshot relationship value " + std::to_string(raw) + " out of range");
  }
  return static_cast<Relationship>(raw);
}

LinkKey decode_link(ByteReader& r) {
  const Asn first = r.u32();
  const Asn second = r.u32();
  if (first >= second) {
    throw DecodeError("snapshot link AS" + std::to_string(first) + "-AS" +
                      std::to_string(second) + " is not a canonical AS pair");
  }
  return LinkKey(first, second);
}

std::uint64_t decode_count(ByteReader& r, std::size_t entry_bytes, const char* what) {
  const std::uint64_t count = r.u64();
  if (count > r.remaining() / entry_bytes) {
    throw DecodeError(std::string("snapshot ") + what + " count " + std::to_string(count) +
                      " overruns the file");
  }
  return count;
}

RelationshipMap decode_map(ByteReader& r) {
  const std::uint64_t count = decode_count(r, kMapEntryBytes, "relationship");
  RelationshipMap map;
  LinkKey prev;
  for (std::uint64_t i = 0; i < count; ++i) {
    const LinkKey link = decode_link(r);
    const Relationship rel = decode_rel(r);
    // Strictly ascending canonical order is part of the format: it makes
    // encoding injective (one byte form per map) and rejects duplicates.
    if (i > 0 && !(prev < link)) {
      throw DecodeError("snapshot relationship entries out of canonical order");
    }
    prev = link;
    map.set(link.first, link.second, rel);
  }
  return map;
}

// Read and check magic + version; returns the version for dispatch.
std::uint32_t decode_version(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  const std::uint32_t magic = r.u32();
  if (magic != kMagic) {
    throw DecodeError("not a hybridtor snapshot (bad magic)");
  }
  const std::uint32_t version = r.u32();
  if (version == 0 || version > kFormatVersion) {
    throw DecodeError("unsupported snapshot format version " + std::to_string(version) +
                      " (this build reads versions 1.." + std::to_string(kFormatVersion) + ")");
  }
  return version;
}

// v2 decode: validate the whole flat image, then materialize the Snapshot —
// the maps from the link rows' presence flags, the hybrid list verbatim.
Snapshot decode_v2(std::span<const std::uint8_t> data) {
  const V2View v = validate_v2(data);
  Snapshot snap;
  snap.header.version = 2;
  snap.header.timestamp = v.timestamp;
  snap.header.source = v.source();
  snap.dataset = v.dataset();
  snap.coverage_v4 = v.coverage(0);
  snap.coverage_v6 = v.coverage(1);
  snap.coverage_dual = v.coverage(2);
  snap.valleys_v4 = v.valleys(0);
  snap.valleys_v6 = v.valleys(1);
  snap.hybrid_counters = v.hybrid_counters();
  for (std::uint64_t i = 0; i < v.link_count; ++i) {
    const V2View::LinkRow row = v.link_at(i);
    if (row.in_v4) snap.rels_v4.set(row.first, row.second, row.rel_v4);
    if (row.in_v6) snap.rels_v6.set(row.first, row.second, row.rel_v6);
  }
  snap.hybrids.reserve(v.hybrid_count);
  for (std::uint64_t i = 0; i < v.hybrid_count; ++i) {
    snap.hybrids.push_back(v.hybrid_at(i));
  }
  return snap;
}

// Header-only v2 probe: the source string lives at the tail of a v2 file,
// so the probe checks just enough of the layout to reach it safely.
Header probe_v2(std::span<const std::uint8_t> data) {
  V2View v;
  v.bytes = data;
  if (data.size() < kV2HeaderBytes) {
    throw DecodeError("snapshot v2 header truncated (need " + std::to_string(kV2HeaderBytes) +
                      " bytes, have " + std::to_string(data.size()) + ")");
  }
  const std::uint64_t declared = v.u64_at(kV2OffFileSize);
  if (declared != data.size()) {
    throw DecodeError("snapshot v2 size field " + std::to_string(declared) +
                      " does not match the file's " + std::to_string(data.size()) + " bytes");
  }
  const std::uint64_t source_len = v.u32_at(kV2OffSourceLen);
  const std::uint64_t off_source = v.u64_at(kV2OffSectionOffsets + 40);
  if (off_source > data.size() || source_len + 4 > data.size() - off_source ||
      off_source + source_len + 4 != data.size()) {
    throw DecodeError("snapshot v2 section offset corrupt (source at " +
                      std::to_string(off_source) + ")");
  }
  Header header;
  header.version = 2;
  header.timestamp = v.u64_at(kV2OffTimestamp);
  v.source_len = static_cast<std::uint32_t>(source_len);
  v.off_source = off_source;
  header.source = v.source();
  return header;
}

}  // namespace

Snapshot Reader::decode(std::span<const std::uint8_t> data) {
  if (decode_version(data) == 2) return decode_v2(data);
  ByteReader r(data);
  Snapshot snap;
  snap.header = decode_header(r);

  snap.dataset.v4_paths = r.u64();
  snap.dataset.v6_paths = r.u64();
  snap.dataset.v4_links = r.u64();
  snap.dataset.v6_links = r.u64();
  snap.dataset.dual_links = r.u64();

  snap.coverage_v4 = decode_coverage(r);
  snap.coverage_v6 = decode_coverage(r);
  snap.coverage_dual = decode_coverage(r);
  snap.valleys_v4 = decode_valleys(r);
  snap.valleys_v6 = decode_valleys(r);

  snap.hybrid_counters.dual_links_observed = r.u64();
  snap.hybrid_counters.dual_links_both_known = r.u64();
  snap.hybrid_counters.v6_paths_total = r.u64();
  snap.hybrid_counters.v6_paths_with_hybrid = r.u64();

  snap.rels_v4 = decode_map(r);
  snap.rels_v6 = decode_map(r);

  const std::uint64_t hybrid_count = decode_count(r, kHybridEntryBytes, "hybrid");
  snap.hybrids.reserve(hybrid_count);
  for (std::uint64_t i = 0; i < hybrid_count; ++i) {
    HybridLink h;
    h.link = decode_link(r);
    h.rel_v4 = decode_rel(r);
    h.rel_v6 = decode_rel(r);
    h.cls = r.u8();
    if (h.cls > 3) {
      throw DecodeError("snapshot hybrid class value " + std::to_string(h.cls) +
                        " out of range");
    }
    h.v6_path_visibility = r.u64();
    snap.hybrids.push_back(h);
  }

  if (r.u32() != kTrailer) {
    throw DecodeError("snapshot trailer missing (file truncated or corrupt)");
  }
  if (!r.exhausted()) {
    throw DecodeError("trailing garbage after snapshot (" + std::to_string(r.remaining()) +
                      " bytes)");
  }
  return snap;
}

Snapshot Reader::read_file(const std::string& path) { return decode(load_bytes(path)); }

Header Reader::probe(std::span<const std::uint8_t> data) {
  if (decode_version(data) == 2) return probe_v2(data);
  ByteReader r(data);
  return decode_header(r);
}

}  // namespace htor::snapshot
