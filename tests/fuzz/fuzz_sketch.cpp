// Fuzz target: the sketch layer (obs/sketch/ Hll, Cms, Bloom).
//
// The sketches are not wire decoders — their contract is stronger: for ANY
// in-range shape and ANY item stream they never throw, and the algebraic
// invariants the telemetry layer rests on hold unconditionally:
//
//   * HLL merge is commutative and idempotent (register-for-register);
//   * CMS point queries never undercount a tracked exact tally, before or
//     after a merge, and total_weight is exactly additive;
//   * Bloom never reports a false negative, and merge is the bitwise OR.
//
// The harness maps the fuzz bytes onto an op stream: byte 0 picks the
// sketch shapes, then 9-byte chunks [opcode][item, little-endian] drive
// adds/updates/inserts into two shards of each sketch plus periodic
// invariant checkpoints.  A trailing partial chunk is the one malformed
// input and is rejected with a reasoned ParseError; an invariant violation
// throws std::logic_error, which the driver counts as a contract breach.
#include "fuzz/driver.hpp"

#include <map>
#include <unordered_set>

#include "obs/sketch/bloom.hpp"
#include "obs/sketch/cms.hpp"
#include "obs/sketch/hll.hpp"

using namespace htor;
using namespace htor::obs::sketch;

namespace {

void require(bool ok, const char* what) {
  if (!ok) throw std::logic_error(std::string("sketch invariant violated: ") + what);
}

/// Two shards of each sketch plus bounded exact baselines, driven by ops.
struct Machine {
  Hll hll_a, hll_b;
  Cms cms_a, cms_b;
  Bloom bloom_a, bloom_b;
  std::map<std::uint64_t, std::uint64_t> exact_counts;     // item -> true total
  std::unordered_set<std::uint64_t> bloom_members;         // inserted into either

  static constexpr std::size_t kExactTracked = 64;
  static constexpr std::size_t kMembersTracked = 4096;

  explicit Machine(std::uint8_t shape)
      : hll_a(10 + shape % 5, kTelemetrySeed),
        hll_b(10 + shape % 5, kTelemetrySeed),
        cms_a(8 + shape % 5, 2 + shape % 3, 8, kTelemetrySeed),
        cms_b(8 + shape % 5, 2 + shape % 3, 8, kTelemetrySeed),
        bloom_a(1024 + shape * 64, 0.02, kTelemetrySeed),
        bloom_b(1024 + shape * 64, 0.02, kTelemetrySeed) {}

  void cms_update(Cms& cms, std::uint64_t item, std::uint64_t weight) {
    cms.update(item, weight);
    if (exact_counts.size() < kExactTracked || exact_counts.count(item) != 0) {
      exact_counts[item] += weight;
    }
  }

  void bloom_insert(Bloom& bloom, std::uint64_t item) {
    bloom.insert(item);
    if (bloom_members.size() < kMembersTracked) bloom_members.insert(item);
  }

  void step(std::uint8_t opcode, std::uint64_t item) {
    switch (opcode % 8) {
      case 0: hll_a.add(item); break;
      case 1: hll_b.add(item); break;
      case 2: cms_update(cms_a, item, (item >> 56) + 1); break;
      case 3: cms_update(cms_b, item, 1); break;
      case 4: bloom_insert(bloom_a, item); break;
      case 5: bloom_insert(bloom_b, item); break;
      case 6: check_invariants(); break;
      case 7:
      default: {
        const double estimate = hll_a.estimate();
        require(std::isfinite(estimate) && estimate >= 0.0, "HLL estimate finite and >= 0");
        (void)cms_a.query(item);
        (void)bloom_a.contains(item);
        break;
      }
    }
  }

  void check_invariants() const {
    // HLL: merge commutes register-for-register and is idempotent.
    Hll ab = hll_a;
    ab.merge(hll_b);
    Hll ba = hll_b;
    ba.merge(hll_a);
    require(ab.registers() == ba.registers(), "HLL merge commutativity");
    Hll aa = hll_a;
    aa.merge(hll_a);
    require(aa.registers() == hll_a.registers(), "HLL merge idempotence");
    require(std::isfinite(ab.estimate()) && ab.estimate() >= 0.0, "merged HLL estimate sane");

    // CMS: the merged sketch never undercounts any tracked item, and the
    // stream weight is exactly additive.
    Cms merged = cms_a;
    merged.merge(cms_b);
    require(merged.total_weight() == cms_a.total_weight() + cms_b.total_weight(),
            "CMS total_weight additivity");
    for (const auto& [item, true_count] : exact_counts) {
      require(merged.query(item) >= true_count, "CMS never undercounts");
    }
    require(merged.top().size() <= merged.top_k(), "CMS top() bounded by top_k");

    // Bloom: merge is the OR, and no member is ever reported absent.
    Bloom both = bloom_a;
    both.merge(bloom_b);
    for (const std::uint64_t item : bloom_members) {
      require(both.contains(item), "Bloom no false negatives after merge");
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  return fuzz::run_target("fuzz_sketch", argc, argv, [](const std::vector<std::uint8_t>& input) {
    if (input.empty()) return fuzz::Outcome::Parsed;  // no ops, nothing to do
    if ((input.size() - 1) % 9 != 0) {
      throw ParseError("sketch op stream has a trailing partial chunk");
    }
    Machine machine(input[0]);
    for (std::size_t at = 1; at + 9 <= input.size(); at += 9) {
      std::uint64_t item = 0;
      for (std::size_t b = 0; b < 8; ++b) {
        item |= static_cast<std::uint64_t>(input[at + 1 + b]) << (8 * b);
      }
      machine.step(input[at], item);
    }
    machine.check_invariants();
    return fuzz::Outcome::Parsed;
  });
}
