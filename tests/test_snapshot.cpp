// Tests for the snapshot store: lossless deterministic round-trips, the MRT
// readers' fail-clean discipline (truncation at any byte, wrong magic, future
// versions, out-of-range values never yield a partial snapshot), the diff
// engine, and the query index.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <vector>

#include "core/census_report.hpp"
#include "core/hybrid.hpp"
#include "core/snapshot_bridge.hpp"
#include "gen/internet.hpp"
#include "rpsl/object.hpp"
#include "snapshot/diff.hpp"
#include "snapshot/query.hpp"
#include "snapshot/reader.hpp"
#include "snapshot/writer.hpp"
#include "util/bytes.hpp"

namespace htor::snapshot {
namespace {

/// A real snapshot: the full census of a generated Internet.
const Snapshot& census_snapshot() {
  static const Snapshot snap = [] {
    const auto net = gen::SyntheticInternet::generate(gen::small_params(21));
    const auto dict = rpsl::mine_dictionary(rpsl::parse_objects(net.irr_dump()));
    const auto report = core::run_census(net.collect(), dict);
    return core::to_snapshot(report, "census/rib.mrt", 1281052800u);
  }();
  return snap;
}

/// A tiny handcrafted snapshot whose byte layout the format tests pin down.
Snapshot tiny_snapshot() {
  Snapshot snap;
  snap.header.timestamp = 1700000000u;
  snap.header.source = "tiny.mrt";  // 8 bytes — the offsets below assume this
  snap.dataset = {10, 8, 5, 4, 3};
  snap.coverage_v4 = {5, 4};
  snap.coverage_v6 = {4, 3};
  snap.coverage_dual = {3, 2};
  snap.valleys_v4 = {8, 6, 1, 1, 1, 1};
  snap.valleys_v6 = {6, 4, 2, 0, 2, 1};
  snap.hybrid_counters = {3, 2, 8, 4};
  snap.rels_v4.set(1, 2, Relationship::P2C);
  snap.rels_v4.set(2, 3, Relationship::P2P);
  snap.rels_v6.set(1, 2, Relationship::P2P);
  snap.rels_v6.set(2, 3, Relationship::P2P);
  snap.hybrids.push_back({LinkKey(1, 2), Relationship::P2C, Relationship::P2P,
                          static_cast<std::uint8_t>(core::HybridClass::TransitV4PeerV6), 5});
  return snap;
}

// Format-v1 offsets into the tiny snapshot's v1 encoding (8-byte source
// path): header 26, dataset 40, coverage 48, valleys 96, hybrid counters 32,
// then the v4 map (count @242, entries of 9 bytes from 250), the v6 map
// (@268/276), the hybrid list (count @294, one 19-byte entry @302), and the
// trailer @321.  kTinyV1Size pins the whole legacy layout; the reader must
// keep accepting it forever.
constexpr std::size_t kTinyV4CountOffset = 242;
constexpr std::size_t kTinyV4FirstEntryOffset = 250;
constexpr std::size_t kTinyV4FirstRelOffset = 258;
constexpr std::size_t kTinyV4SecondEntryOffset = 259;
constexpr std::size_t kTinyHybridClsOffset = 312;
constexpr std::size_t kTinyV1Size = 325;

// Format-v2 offsets into the same tiny snapshot (3 ASes, 2 links, 1 hybrid,
// 8-byte source): 312-byte header, ASN table @312 (3 x u32), pad, adjacency
// index @328 (4 x u64: 0,1,3,4), adjacency entries @360 (4 x 8), link rows
// @392 (2 x 12), hybrid row @416 (1 x 20), pad, source @440, trailer @448.
// kTinyV2Size pins the mmap-able layout; a failure here means the layout
// changed and kFormatVersion must be bumped again.
constexpr std::size_t kTinyV2LinkCountOffset = 32;   ///< u64 in the header
constexpr std::size_t kTinyV2FirstLinkOffset = 392;  ///< row 0: (1,2)
constexpr std::size_t kTinyV2FirstRelOffset = 400;   ///< row 0 rel_v4 byte
constexpr std::size_t kTinyV2FlagsOffset = 402;      ///< row 0 flags byte
constexpr std::size_t kTinyV2SecondLinkOffset = 404; ///< row 1: (2,3)
constexpr std::size_t kTinyV2HybridClsOffset = 426;  ///< hybrid row class byte
constexpr std::size_t kTinyV2Size = 452;

TEST(SnapshotRoundTrip, TinyLossless) {
  const Snapshot original = tiny_snapshot();
  const auto bytes = Writer::encode(original);
  EXPECT_EQ(bytes.size(), kTinyV2Size);

  const Snapshot decoded = Reader::decode(bytes);
  EXPECT_TRUE(equal(original, decoded));
  EXPECT_EQ(decoded.header.version, kFormatVersion);
  EXPECT_EQ(decoded.header.timestamp, 1700000000u);
  EXPECT_EQ(decoded.header.source, "tiny.mrt");
  EXPECT_EQ(decoded.rels_v4.get(1, 2), Relationship::P2C);
  EXPECT_EQ(decoded.rels_v4.get(2, 1), Relationship::C2P);
  ASSERT_EQ(decoded.hybrids.size(), 1u);
  EXPECT_EQ(decoded.hybrids[0].v6_path_visibility, 5u);

  // Re-encoding the decoded snapshot reproduces the bytes exactly.
  EXPECT_EQ(Writer::encode(decoded), bytes);
}

// The legacy v1 encoding stays readable and losslessly equivalent: a v1
// file decodes to the same snapshot, keeps its own version in the header,
// and re-encodes (as v1) to the same bytes.
TEST(SnapshotRoundTrip, TinyV1StillReadsLossless) {
  const Snapshot original = tiny_snapshot();
  const auto bytes = Writer::encode_v1(original);
  EXPECT_EQ(bytes.size(), kTinyV1Size);

  const Snapshot decoded = Reader::decode(bytes);
  Snapshot expect = original;
  expect.header.version = 1;  // the header keeps the file's actual version
  EXPECT_TRUE(equal(expect, decoded));
  EXPECT_EQ(decoded.header.source, "tiny.mrt");
  EXPECT_EQ(Writer::encode_v1(decoded), bytes);
  // Upgrading is pure re-encoding: the v2 bytes of the decoded v1 snapshot
  // match the v2 bytes of the original exactly.
  EXPECT_EQ(Writer::encode(decoded), Writer::encode(original));
}

TEST(SnapshotRoundTrip, CensusLossless) {
  const Snapshot& original = census_snapshot();
  ASSERT_GT(original.rels_v4.size(), 0u);
  ASSERT_GT(original.rels_v6.size(), 0u);
  ASSERT_GT(original.hybrids.size(), 0u);

  const auto bytes = Writer::encode(original);
  const Snapshot decoded = Reader::decode(bytes);
  EXPECT_TRUE(equal(original, decoded));
  EXPECT_EQ(decoded.dataset, original.dataset);
  EXPECT_EQ(decoded.coverage_dual, original.coverage_dual);
  EXPECT_EQ(decoded.valleys_v6, original.valleys_v6);
  EXPECT_EQ(decoded.hybrid_counters, original.hybrid_counters);
  EXPECT_EQ(decoded.hybrids, original.hybrids);
  EXPECT_TRUE(same_entries(decoded.rels_v4, original.rels_v4));
  EXPECT_TRUE(same_entries(decoded.rels_v6, original.rels_v6));
  EXPECT_EQ(Writer::encode(decoded), bytes);
}

// The canonical encoding is independent of map insertion order and of the
// census thread count: the same measurement always yields the same bytes.
TEST(SnapshotRoundTrip, EncodingIsCanonical) {
  Snapshot a = tiny_snapshot();
  Snapshot b;
  b.header = a.header;
  b.dataset = a.dataset;
  b.coverage_v4 = a.coverage_v4;
  b.coverage_v6 = a.coverage_v6;
  b.coverage_dual = a.coverage_dual;
  b.valleys_v4 = a.valleys_v4;
  b.valleys_v6 = a.valleys_v6;
  b.hybrid_counters = a.hybrid_counters;
  // Reverse insertion order and orientation; the canonical form is the same.
  b.rels_v4.set(3, 2, Relationship::P2P);
  b.rels_v4.set(2, 1, Relationship::C2P);
  b.rels_v6.set(3, 2, Relationship::P2P);
  b.rels_v6.set(2, 1, Relationship::P2P);
  b.hybrids = a.hybrids;
  EXPECT_EQ(Writer::encode(a), Writer::encode(b));
}

TEST(SnapshotRoundTrip, CensusJobsDeterministic) {
  const auto net = gen::SyntheticInternet::generate(gen::small_params(21));
  const auto rib = net.collect();
  const auto dict = rpsl::mine_dictionary(rpsl::parse_objects(net.irr_dump()));
  std::vector<std::uint8_t> reference;
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    core::InferenceConfig config;
    config.threads = jobs;
    const auto report = core::run_census(rib, dict, config);
    const auto bytes = Writer::encode(core::to_snapshot(report, "census/rib.mrt", 1281052800u));
    if (reference.empty()) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference) << "snapshot differs at jobs=" << jobs;
    }
  }
}

TEST(SnapshotFile, RoundTripAndMissingFile) {
  const std::string path = ::testing::TempDir() + "/roundtrip.snap";
  Writer::write_file(census_snapshot(), path);
  const Snapshot loaded = Reader::read_file(path);
  EXPECT_TRUE(equal(loaded, census_snapshot()));
  std::remove(path.c_str());

  EXPECT_THROW(Reader::read_file("/nonexistent/nope.snap"), Error);
  EXPECT_THROW(Writer::write_file(census_snapshot(), "/nonexistent/dir/out.snap"), Error);
}

// The acceptance criterion verbatim: EVERY truncated prefix of a valid
// snapshot fails with DecodeError — no byte boundary yields a partial
// snapshot.  Both format versions get the full sweep.
TEST(SnapshotRobustness, TruncationSweepEveryByte) {
  const auto bytes = Writer::encode(tiny_snapshot());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::span<const std::uint8_t> cut(bytes.data(), len);
    EXPECT_THROW(Reader::decode(cut), DecodeError) << "cut at " << len;
  }
}

TEST(SnapshotRobustness, TruncationSweepEveryByteV1) {
  const auto bytes = Writer::encode_v1(tiny_snapshot());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::span<const std::uint8_t> cut(bytes.data(), len);
    EXPECT_THROW(Reader::decode(cut), DecodeError) << "cut at " << len;
  }
}

// Same sweep, strided, over the much larger census snapshot (its map regions
// exercise the count-vs-remaining bound and mid-entry cuts at scale).
TEST(SnapshotRobustness, TruncationSweepCensusStrided) {
  const auto bytes = Writer::encode(census_snapshot());
  for (std::size_t len = 0; len < bytes.size(); len += (len < 512 ? 7 : 487)) {
    const std::span<const std::uint8_t> cut(bytes.data(), len);
    EXPECT_THROW(Reader::decode(cut), DecodeError) << "cut at " << len;
  }
}

TEST(SnapshotRobustness, WrongMagicIsReasoned) {
  auto bytes = Writer::encode(tiny_snapshot());
  bytes[0] ^= 0xff;
  try {
    Reader::decode(bytes);
    FAIL() << "decode accepted a bad magic";
  } catch (const DecodeError& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos) << e.what();
  }
}

TEST(SnapshotRobustness, FutureVersionIsReasoned) {
  auto bytes = Writer::encode(tiny_snapshot());
  // Version field is bytes 4..7 big-endian; declare a future major version.
  bytes[4] = 0;
  bytes[5] = 0;
  bytes[6] = 0;
  bytes[7] = static_cast<std::uint8_t>(kFormatVersion + 1);
  try {
    Reader::decode(bytes);
    FAIL() << "decode accepted a future format version";
  } catch (const DecodeError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos) << e.what();
  }
  // Version 0 is equally invalid.
  bytes[7] = 0;
  EXPECT_THROW(Reader::decode(bytes), DecodeError);
}

TEST(SnapshotRobustness, TrailingGarbageThrows) {
  auto bytes = Writer::encode(tiny_snapshot());
  bytes.push_back(0x00);
  EXPECT_THROW(Reader::decode(bytes), DecodeError);
}

TEST(SnapshotRobustness, OutOfRangeRelationshipThrows) {
  auto bytes = Writer::encode_v1(tiny_snapshot());
  ASSERT_EQ(bytes[kTinyV4FirstRelOffset], static_cast<std::uint8_t>(Relationship::P2C));
  bytes[kTinyV4FirstRelOffset] = 9;
  EXPECT_THROW(Reader::decode(bytes), DecodeError);

  auto v2 = Writer::encode(tiny_snapshot());
  ASSERT_EQ(v2[kTinyV2FirstRelOffset], static_cast<std::uint8_t>(Relationship::P2C));
  v2[kTinyV2FirstRelOffset] = 9;
  EXPECT_THROW(Reader::decode(v2), DecodeError);
}

TEST(SnapshotRobustness, OutOfRangeHybridClassThrows) {
  auto bytes = Writer::encode_v1(tiny_snapshot());
  ASSERT_EQ(bytes[kTinyHybridClsOffset],
            static_cast<std::uint8_t>(core::HybridClass::TransitV4PeerV6));
  bytes[kTinyHybridClsOffset] = 7;
  EXPECT_THROW(Reader::decode(bytes), DecodeError);

  auto v2 = Writer::encode(tiny_snapshot());
  ASSERT_EQ(v2[kTinyV2HybridClsOffset],
            static_cast<std::uint8_t>(core::HybridClass::TransitV4PeerV6));
  v2[kTinyV2HybridClsOffset] = 7;
  EXPECT_THROW(Reader::decode(v2), DecodeError);
}

TEST(SnapshotRobustness, NonCanonicalPairThrows) {
  auto bytes = Writer::encode_v1(tiny_snapshot());
  // Rewrite the first v4 entry's link from (1,2) to (2,1).
  const std::uint8_t swapped[8] = {0, 0, 0, 2, 0, 0, 0, 1};
  std::copy(std::begin(swapped), std::end(swapped),
            bytes.begin() + static_cast<long>(kTinyV4FirstEntryOffset));
  EXPECT_THROW(Reader::decode(bytes), DecodeError);

  auto v2 = Writer::encode(tiny_snapshot());
  std::copy(std::begin(swapped), std::end(swapped),
            v2.begin() + static_cast<long>(kTinyV2FirstLinkOffset));
  EXPECT_THROW(Reader::decode(v2), DecodeError);
}

TEST(SnapshotRobustness, OutOfOrderEntriesThrow) {
  auto bytes = Writer::encode_v1(tiny_snapshot());
  // Rewrite the second v4 entry's link from (2,3) to (1,2): duplicates the
  // first entry, breaking the strictly-ascending canonical order.
  const std::uint8_t duplicate[8] = {0, 0, 0, 1, 0, 0, 0, 2};
  std::copy(std::begin(duplicate), std::end(duplicate),
            bytes.begin() + static_cast<long>(kTinyV4SecondEntryOffset));
  EXPECT_THROW(Reader::decode(bytes), DecodeError);

  auto v2 = Writer::encode(tiny_snapshot());
  std::copy(std::begin(duplicate), std::end(duplicate),
            v2.begin() + static_cast<long>(kTinyV2SecondLinkOffset));
  EXPECT_THROW(Reader::decode(v2), DecodeError);
}

// A garbage count field must fail against the bytes actually present, before
// any allocation proportional to the claimed count.
TEST(SnapshotRobustness, CountOverrunFailsFast) {
  auto bytes = Writer::encode_v1(tiny_snapshot());
  for (std::size_t i = 0; i < 8; ++i) bytes[kTinyV4CountOffset + i] = 0xff;
  try {
    Reader::decode(bytes);
    FAIL() << "decode accepted an absurd entry count";
  } catch (const DecodeError& e) {
    EXPECT_NE(std::string(e.what()).find("overruns"), std::string::npos) << e.what();
  }

  auto v2 = Writer::encode(tiny_snapshot());
  for (std::size_t i = 0; i < 8; ++i) v2[kTinyV2LinkCountOffset + i] = 0xff;
  try {
    Reader::decode(v2);
    FAIL() << "decode accepted an absurd v2 link count";
  } catch (const DecodeError& e) {
    EXPECT_NE(std::string(e.what()).find("overruns"), std::string::npos) << e.what();
  }
}

// The v2-only failure modes: every structural invariant of the flat layout
// is checked before any view escapes, each with its own reasoned message.
TEST(SnapshotRobustness, V2StructuralCorruptionIsReasoned) {
  const auto pristine = Writer::encode(tiny_snapshot());
  const auto expect_reason = [&](std::vector<std::uint8_t> bytes, const char* needle) {
    try {
      Reader::decode(bytes);
      FAIL() << "decode accepted a corrupt v2 image (wanted: " << needle << ")";
    } catch (const DecodeError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
  };

  // Declared file size disagrees with the actual byte count.
  auto size_lie = pristine;
  size_lie[23] ^= 0x01;  // low byte of the u64 size field at offset 16
  expect_reason(std::move(size_lie), "does not match the file");

  // A section offset that disagrees with the recomputed layout.
  auto bad_offset = pristine;
  bad_offset[48 + 7] ^= 0x08;  // first section offset (ASN table)
  expect_reason(std::move(bad_offset), "section offset corrupt");

  // Reserved flag bits on a link row.
  auto bad_flags = pristine;
  bad_flags[kTinyV2FlagsOffset] |= 0x80;
  expect_reason(std::move(bad_flags), "reserved bits");

  // A link row whose flags clear both families and the hybrid bit.
  auto orphan_row = pristine;
  orphan_row[kTinyV2FlagsOffset] = 0;
  expect_reason(std::move(orphan_row), "no family");

  // Non-zero padding between sections.
  auto dirty_pad = pristine;
  dirty_pad[324] = 0xcc;  // the 4 pad bytes after the 3-entry ASN table
  expect_reason(std::move(dirty_pad), "padding");

  // AS table out of ascending order.
  auto unsorted_asn = pristine;
  unsorted_asn[315] = 9;  // first ASN 1 -> 9, no longer < 2
  expect_reason(std::move(unsorted_asn), "AS table out of canonical order");

  // A trailing byte breaks the declared size before anything else.
  auto trailing = pristine;
  trailing.push_back(0x00);
  expect_reason(std::move(trailing), "does not match the file");
}

TEST(SnapshotWriter, RejectsUnencodableSnapshots) {
  Snapshot self_link = tiny_snapshot();
  self_link.rels_v4.set(5, 5, Relationship::P2P);  // LinkKey(5,5): first == second
  EXPECT_THROW(Writer::encode(self_link), InvalidArgument);

  Snapshot long_source = tiny_snapshot();
  long_source.header.source.assign(70000, 'x');
  EXPECT_THROW(Writer::encode(long_source), InvalidArgument);
}

TEST(SnapshotProbe, ReadsHeaderOnly) {
  const auto bytes = Writer::encode(census_snapshot());
  const Header header = Reader::probe(bytes);
  EXPECT_EQ(header.version, kFormatVersion);
  EXPECT_EQ(header.timestamp, 1281052800u);
  EXPECT_EQ(header.source, "census/rib.mrt");
  // Probing a buffer cut inside the header still fails cleanly.
  const std::span<const std::uint8_t> cut(bytes.data(), 10);
  EXPECT_THROW(Reader::probe(cut), DecodeError);
}

// ---------------------------------------------------------------- diff

TEST(SnapshotDiff, SelfDiffIsZeroChurn) {
  const Snapshot& snap = census_snapshot();
  const Diff diff = diff_snapshots(snap, snap);
  EXPECT_EQ(diff.total_churn(), 0u);
  EXPECT_EQ(diff.v4.unchanged, snap.rels_v4.size());
  EXPECT_EQ(diff.v6.unchanged, snap.rels_v6.size());
  EXPECT_EQ(diff.hybrids_stable, snap.hybrids.size());
  EXPECT_TRUE(diff.v4.appeared.empty());
  EXPECT_TRUE(diff.v4.vanished.empty());
  EXPECT_TRUE(diff.v4.flips.empty());
}

TEST(SnapshotDiff, ReportsChurnBuckets) {
  RelationshipMap a;
  a.set(1, 2, Relationship::P2C);   // will flip to P2P
  a.set(2, 3, Relationship::P2P);   // unchanged
  a.set(3, 4, Relationship::C2P);   // vanishes
  RelationshipMap b;
  b.set(1, 2, Relationship::P2P);
  b.set(2, 3, Relationship::P2P);
  b.set(4, 5, Relationship::S2S);   // appears

  const FamilyDiff diff = diff_relationships(a, b);
  EXPECT_EQ(diff.appeared, (std::vector<LinkKey>{LinkKey(4, 5)}));
  EXPECT_EQ(diff.vanished, (std::vector<LinkKey>{LinkKey(3, 4)}));
  ASSERT_EQ(diff.flips.size(), 1u);
  EXPECT_EQ(diff.flips[0],
            (RelChange{LinkKey(1, 2), Relationship::P2C, Relationship::P2P}));
  EXPECT_EQ(diff.unchanged, 1u);
  EXPECT_EQ(diff.churn(), 3u);
}

TEST(SnapshotDiff, TracksHybridFormationAndResolution) {
  Snapshot a = tiny_snapshot();  // hybrid on (1,2)
  Snapshot b = tiny_snapshot();
  b.hybrids.clear();
  b.hybrids.push_back({LinkKey(2, 3), Relationship::P2P, Relationship::P2C,
                       static_cast<std::uint8_t>(core::HybridClass::PeerV4TransitV6), 3});

  const Diff diff = diff_snapshots(a, b);
  EXPECT_EQ(diff.hybrids_formed, (std::vector<LinkKey>{LinkKey(2, 3)}));
  EXPECT_EQ(diff.hybrids_resolved, (std::vector<LinkKey>{LinkKey(1, 2)}));
  EXPECT_EQ(diff.hybrids_stable, 0u);
  EXPECT_EQ(diff.v4.churn(), 0u);
  EXPECT_EQ(diff.v6.churn(), 0u);
  EXPECT_EQ(diff.total_churn(), 2u);
}

// Diff output is canonically ordered: shuffled insertion produces the same
// sorted vectors.
TEST(SnapshotDiff, OutputIsCanonicallyOrdered) {
  RelationshipMap a;
  RelationshipMap b;
  for (const Asn asn : {9, 3, 7, 5}) {
    b.set(asn, asn + 1, Relationship::P2P);
  }
  const FamilyDiff diff = diff_relationships(a, b);
  const std::vector<LinkKey> expected = {LinkKey(3, 4), LinkKey(5, 6), LinkKey(7, 8),
                                         LinkKey(9, 10)};
  EXPECT_EQ(diff.appeared, expected);
}

// Mixed-version operands: diffing a v1 file against a v2 file (either way
// round) produces exactly the churn report of the same-version diff — the
// format a snapshot was stored in is invisible to the diff engine.
TEST(SnapshotDiff, MixedVersionOperandsDiffIdentically) {
  const Snapshot& a = census_snapshot();
  Snapshot b = a;
  b.rels_v4.set(1, 2, Relationship::P2P);            // churn: appears or flips
  b.hybrids.push_back({LinkKey(2, 3), Relationship::P2P, Relationship::P2C,
                       static_cast<std::uint8_t>(core::HybridClass::PeerV4TransitV6), 3});

  const Snapshot a_v1 = Reader::decode(Writer::encode_v1(a));
  const Snapshot a_v2 = Reader::decode(Writer::encode(a));
  const Snapshot b_v1 = Reader::decode(Writer::encode_v1(b));
  const Snapshot b_v2 = Reader::decode(Writer::encode(b));

  const Diff reference = diff_snapshots(a_v2, b_v2);
  EXPECT_GT(reference.total_churn(), 0u);
  EXPECT_EQ(diff_snapshots(a_v1, b_v2), reference);
  EXPECT_EQ(diff_snapshots(a_v2, b_v1), reference);
  EXPECT_EQ(diff_snapshots(a_v1, b_v1), reference);
}

// ---------------------------------------------------------------- query

TEST(SnapshotQuery, PairLookupIsOriented) {
  const QueryIndex index(tiny_snapshot());
  const auto forward = index.lookup(1, 2);
  ASSERT_TRUE(forward.has_value());
  EXPECT_EQ(forward->rel_v4, Relationship::P2C);
  EXPECT_EQ(forward->rel_v6, Relationship::P2P);
  EXPECT_TRUE(forward->hybrid);

  const auto backward = index.lookup(2, 1);
  ASSERT_TRUE(backward.has_value());
  EXPECT_EQ(backward->rel_v4, Relationship::C2P);
  EXPECT_EQ(backward->rel_v6, Relationship::P2P);
  EXPECT_TRUE(backward->hybrid);

  EXPECT_FALSE(index.lookup(1, 3).has_value());
  EXPECT_FALSE(index.lookup(99, 100).has_value());
}

TEST(SnapshotQuery, NeighborListsAreSortedAndComplete) {
  const QueryIndex index(tiny_snapshot());
  EXPECT_EQ(index.link_count(), 2u);
  EXPECT_EQ(index.as_count(), 3u);
  EXPECT_EQ(index.hybrid_count(), 1u);

  const auto neighbors = index.neighbors(2);
  ASSERT_EQ(neighbors.size(), 2u);
  EXPECT_EQ(neighbors[0].asn, 1u);
  EXPECT_EQ(neighbors[0].info.rel_v4, Relationship::C2P);  // 2 -> 1
  EXPECT_TRUE(neighbors[0].info.hybrid);
  EXPECT_EQ(neighbors[1].asn, 3u);
  EXPECT_EQ(neighbors[1].info.rel_v4, Relationship::P2P);
  EXPECT_FALSE(neighbors[1].info.hybrid);

  EXPECT_TRUE(index.neighbors(42).empty());
  EXPECT_FALSE(index.contains(42));
  EXPECT_TRUE(index.contains(3));
}

// A link only one family knows still resolves, with the other family
// Unknown.
TEST(SnapshotQuery, SingleFamilyLinksResolve) {
  Snapshot snap;
  snap.rels_v6.set(10, 11, Relationship::C2P);
  const QueryIndex index(snap);
  const auto info = index.lookup(10, 11);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->rel_v4, Relationship::Unknown);
  EXPECT_EQ(info->rel_v6, Relationship::C2P);
  EXPECT_FALSE(info->hybrid);
}

// v6-only links (the paper's deep IPv6 periphery: no v4 counterpart at all)
// must index, orient, and appear in neighbor lists like any other link.
TEST(SnapshotQuery, V6OnlyLinksOrientAndList) {
  Snapshot snap;
  snap.rels_v6.set(20, 21, Relationship::P2C);  // 20 provides transit to 21
  snap.rels_v6.set(21, 22, Relationship::P2P);
  const QueryIndex index(snap);
  EXPECT_EQ(index.link_count(), 2u);
  EXPECT_EQ(index.as_count(), 3u);
  EXPECT_EQ(index.hybrid_count(), 0u);

  const auto reversed = index.lookup(21, 20);
  ASSERT_TRUE(reversed.has_value());
  EXPECT_EQ(reversed->rel_v4, Relationship::Unknown);  // reverse(Unknown) stays Unknown
  EXPECT_EQ(reversed->rel_v6, Relationship::C2P);
  EXPECT_FALSE(reversed->hybrid);

  const auto neighbors = index.neighbors(21);
  ASSERT_EQ(neighbors.size(), 2u);
  EXPECT_EQ(neighbors[0].asn, 20u);
  EXPECT_EQ(neighbors[0].info.rel_v6, Relationship::C2P);
  EXPECT_EQ(neighbors[1].asn, 22u);
  EXPECT_EQ(neighbors[1].info.rel_v6, Relationship::P2P);
}

TEST(SnapshotQuery, EmptySnapshotAnswersEverythingWithNothing) {
  const QueryIndex index(Snapshot{});
  EXPECT_EQ(index.link_count(), 0u);
  EXPECT_EQ(index.as_count(), 0u);
  EXPECT_EQ(index.hybrid_count(), 0u);
  EXPECT_FALSE(index.lookup(1, 2).has_value());
  EXPECT_FALSE(index.contains(0));
  EXPECT_TRUE(index.neighbors(1).empty());
}

// Since v2 the index IS the encoded image, so a hand-built snapshot that
// the format rejects (a self-loop link) cannot be indexed either — the
// constructor surfaces Writer::encode's InvalidArgument instead of
// inventing answers the on-disk form could never round-trip.
TEST(SnapshotQuery, SelfLoopSnapshotsAreUnindexable) {
  Snapshot snap;
  snap.rels_v4.set(5, 5, Relationship::S2S);
  snap.rels_v4.set(5, 6, Relationship::P2C);
  EXPECT_THROW(QueryIndex{snap}, InvalidArgument);

  Snapshot hybrid_self;
  hybrid_self.hybrids.push_back({LinkKey(7, 7), Relationship::P2P, Relationship::S2S, 0, 1});
  EXPECT_THROW(QueryIndex{hybrid_self}, InvalidArgument);
}

// A link listed only in the hybrid table (neither family map knows it) still
// indexes: present, hybrid, Unknown in both families.
TEST(SnapshotQuery, HybridOnlyLinksResolveAsUnknownFamilies) {
  Snapshot snap;
  snap.hybrids.push_back({LinkKey(7, 8), Relationship::Unknown, Relationship::Unknown, 0, 1});
  snap.hybrids.push_back({LinkKey(7, 8), Relationship::Unknown, Relationship::Unknown, 1, 2});
  const QueryIndex index(snap);
  EXPECT_EQ(index.hybrid_count(), 1u);        // one distinct hybrid link...
  EXPECT_EQ(index.hybrid_entry_count(), 2u);  // ...from two table entries
  const auto info = index.lookup(7, 8);
  ASSERT_TRUE(info.has_value());
  EXPECT_TRUE(info->hybrid);
  EXPECT_EQ(info->rel_v4, Relationship::Unknown);
  EXPECT_EQ(info->rel_v6, Relationship::Unknown);
  const auto neighbors = index.neighbors(7);
  ASSERT_EQ(neighbors.size(), 1u);
  EXPECT_EQ(neighbors[0].asn, 8u);
  EXPECT_TRUE(neighbors[0].info.hybrid);
}

// File-backed construction: open() (owned bytes) and open_mapped() (mmap)
// answer identically for both format versions, and the metadata accessors
// report the origin file faithfully.
TEST(SnapshotQuery, OpenAndOpenMappedServeBothVersions) {
  const Snapshot snap = tiny_snapshot();
  const std::string v2_path = ::testing::TempDir() + "/query_v2.snap";
  const std::string v1_path = ::testing::TempDir() + "/query_v1.snap";
  Writer::write_file(snap, v2_path);
  save_bytes(v1_path, Writer::encode_v1(snap));

  const QueryIndex eager_v2 = QueryIndex::open(v2_path);
  const QueryIndex eager_v1 = QueryIndex::open(v1_path);
  const QueryIndex mapped_v2 = QueryIndex::open_mapped(v2_path);
  const QueryIndex mapped_v1 = QueryIndex::open_mapped(v1_path);

  EXPECT_EQ(eager_v2.format_version(), 2u);
  EXPECT_EQ(eager_v1.format_version(), 1u);
  EXPECT_EQ(eager_v2.snapshot_bytes(), kTinyV2Size);
  EXPECT_EQ(eager_v1.snapshot_bytes(), kTinyV1Size);
  EXPECT_FALSE(eager_v2.is_mapped());
  EXPECT_TRUE(mapped_v2.is_mapped());
  EXPECT_FALSE(mapped_v1.is_mapped());  // v1 falls back to an owned image
  // Whatever the origin version, the serving image is always a v2 image.
  EXPECT_EQ(eager_v1.mapped_bytes(), kTinyV2Size);
  EXPECT_EQ(mapped_v2.mapped_bytes(), kTinyV2Size);

  for (const QueryIndex* index : {&eager_v2, &eager_v1, &mapped_v2, &mapped_v1}) {
    EXPECT_EQ(index->link_count(), 2u);
    EXPECT_EQ(index->as_count(), 3u);
    EXPECT_EQ(index->hybrid_count(), 1u);
    EXPECT_EQ(index->source(), "tiny.mrt");
    EXPECT_EQ(index->timestamp(), 1700000000u);
    const auto info = index->lookup(2, 1);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->rel_v4, Relationship::C2P);
    EXPECT_TRUE(info->hybrid);
    EXPECT_EQ(index->neighbors(2).size(), 2u);
  }

  std::remove(v2_path.c_str());
  std::remove(v1_path.c_str());
}

// A view created before a rename()-replacement keeps answering from the old
// image (the mapping pins the inode; owned bytes trivially survive).
TEST(SnapshotQuery, MappedViewSurvivesFileReplacement) {
  const std::string path = ::testing::TempDir() + "/replace.snap";
  Writer::write_file(tiny_snapshot(), path);
  const QueryIndex before = QueryIndex::open_mapped(path);

  Snapshot changed = tiny_snapshot();
  changed.rels_v4.set(1, 2, Relationship::P2P);  // flip the (1,2) relationship
  Writer::write_file(changed, path);             // atomic rename-replace

  EXPECT_EQ(before.lookup(1, 2)->rel_v4, Relationship::P2C);  // old bytes
  const QueryIndex after = QueryIndex::open_mapped(path);
  EXPECT_EQ(after.lookup(1, 2)->rel_v4, Relationship::P2P);   // new bytes
  std::remove(path.c_str());
}

// --------------------------------------------------- error-reason contracts
//
// The fuzz harness buckets failures by reason prefix, so the *wording* of
// the two easiest-to-confuse corruptions is part of the reader's contract:
// a count field that claims more entries than the file holds must say
// "overruns", and bytes left over after a structurally complete snapshot
// must say "trailing garbage" and how many bytes — not the other way
// round, and never a generic "bad snapshot".

TEST(SnapshotErrorReasons, RelationshipCountOverrunNamesSectionAndCount) {
  auto bytes = Writer::encode_v1(tiny_snapshot());
  // Claim 2^64-1 v4 relationship entries; the file obviously has fewer.
  for (std::size_t i = 0; i < 8; ++i) bytes[kTinyV4CountOffset + i] = 0xff;
  try {
    Reader::decode(bytes);
    FAIL() << "decode accepted an absurd relationship count";
  } catch (const DecodeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("relationship count"), std::string::npos) << what;
    EXPECT_NE(what.find("18446744073709551615"), std::string::npos) << what;
    EXPECT_NE(what.find("overruns the file"), std::string::npos) << what;
    // Must NOT be misreported as trailing garbage.
    EXPECT_EQ(what.find("trailing garbage"), std::string::npos) << what;
  }
}

TEST(SnapshotErrorReasons, HybridCountOverrunNamesItsOwnSection) {
  auto bytes = Writer::encode_v1(tiny_snapshot());
  // The hybrid count sits right after the two maps: 8 bytes before the one
  // 19-byte hybrid entry and the 4-byte trailer.
  const std::size_t hybrid_count_offset = kTinyV1Size - 4 - 19 - 8;
  for (std::size_t i = 0; i < 8; ++i) bytes[hybrid_count_offset + i] = 0xff;
  try {
    Reader::decode(bytes);
    FAIL() << "decode accepted an absurd hybrid count";
  } catch (const DecodeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("hybrid count"), std::string::npos) << what;
    EXPECT_NE(what.find("overruns the file"), std::string::npos) << what;
  }
}

TEST(SnapshotErrorReasons, TrailingGarbageNamesTheByteCount) {
  auto bytes = Writer::encode_v1(tiny_snapshot());
  for (int i = 0; i < 7; ++i) bytes.push_back(0xab);
  try {
    Reader::decode(bytes);
    FAIL() << "decode accepted trailing garbage";
  } catch (const DecodeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("trailing garbage after snapshot"), std::string::npos) << what;
    EXPECT_NE(what.find("(7 bytes)"), std::string::npos) << what;
    // Must NOT be misreported as a count overrun.
    EXPECT_EQ(what.find("overruns"), std::string::npos) << what;
  }
}

// The boundary case fuzz triage actually hits: a count one too large is an
// *overrun of structure*, not trailing garbage — the reader runs out of
// entry bytes (or trips a downstream check), it never reports leftovers.
TEST(SnapshotErrorReasons, CountOffByOneIsNeverReportedAsTrailingGarbage) {
  auto bytes = Writer::encode_v1(tiny_snapshot());
  bytes[kTinyV4CountOffset + 7] = 3;  // tiny snapshot has 2 v4 entries
  try {
    Reader::decode(bytes);
    FAIL() << "decode accepted an off-by-one count";
  } catch (const DecodeError& e) {
    EXPECT_EQ(std::string(e.what()).find("trailing garbage"), std::string::npos) << e.what();
  }
}

TEST(SnapshotQuery, AgreesWithCensusMaps) {
  const Snapshot& snap = census_snapshot();
  const QueryIndex index(snap);
  std::size_t checked = 0;
  for (const auto& [link, rel] : sorted_entries(snap.rels_v4)) {
    const auto info = index.lookup(link.first, link.second);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->rel_v4, rel);
    if (++checked == 64) break;
  }
  for (const auto& h : snap.hybrids) {
    const auto info = index.lookup(h.link.first, h.link.second);
    ASSERT_TRUE(info.has_value());
    EXPECT_TRUE(info->hybrid);
    EXPECT_EQ(info->rel_v4, h.rel_v4);
    EXPECT_EQ(info->rel_v6, h.rel_v6);
  }
}

}  // namespace
}  // namespace htor::snapshot
