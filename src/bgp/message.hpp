// BGP-4 message codec (RFC 4271).
//
// The collector pipeline mostly needs UPDATE, but OPEN / NOTIFICATION /
// KEEPALIVE are modelled too so the library is usable as a general BGP
// message codec (MRT BGP4MP records can carry any of them).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "bgp/path_attrs.hpp"
#include "bgp/types.hpp"

namespace htor::bgp {

struct OpenMessage {
  std::uint8_t version = 4;
  Asn my_as = 0;          // 2-byte field on the wire; kAsTrans when 4-byte
  std::uint16_t hold_time = 180;
  std::uint32_t bgp_id = 0;
  std::vector<std::uint8_t> optional_params;  // raw capabilities blob

  friend bool operator==(const OpenMessage&, const OpenMessage&) = default;
};

struct UpdateMessage {
  std::vector<Prefix> withdrawn;  // IPv4 withdrawn routes
  PathAttributes attrs;
  std::vector<Prefix> nlri;  // IPv4 announced routes

  friend bool operator==(const UpdateMessage&, const UpdateMessage&) = default;
};

struct NotificationMessage {
  std::uint8_t code = 0;
  std::uint8_t subcode = 0;
  std::vector<std::uint8_t> data;

  friend bool operator==(const NotificationMessage&, const NotificationMessage&) = default;
};

struct KeepaliveMessage {
  friend bool operator==(const KeepaliveMessage&, const KeepaliveMessage&) = default;
};

using Message = std::variant<OpenMessage, UpdateMessage, NotificationMessage, KeepaliveMessage>;

MessageType type_of(const Message& msg);

/// Serialize with marker/length/type header.  Throws InvalidArgument when the
/// result would exceed the 4096-byte BGP maximum.
std::vector<std::uint8_t> encode_message(const Message& msg);

/// Parse one message; the reader must start at the 16-byte marker.  The
/// reader is left positioned after the message, so a stream of messages can
/// be decoded by repeated calls.
Message decode_message(ByteReader& r);

/// Convenience: an UPDATE carrying IPv6 routes in MP_REACH_NLRI.
UpdateMessage make_ipv6_update(const PathAttributes& base, const IpAddress& next_hop,
                               std::vector<Prefix> prefixes);

}  // namespace htor::bgp
