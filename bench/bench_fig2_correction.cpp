// F2 (Figure 2): correcting the 20 most path-visible hybrid links in a
// conventionally-inferred IPv6 relationship map.
// Paper: average shortest valley-free path of the union of IPv6 customer
// trees drops 3.8 -> 2.23 and the diameter 11 -> 7.  The misinferred map is
// produced the way prior work did it: Gao's algorithm over the mixed
// IPv4+IPv6 path set, which stamps the (IPv4-dominated) relationship onto
// IPv6 links.
#include <iostream>

#include "baselines/gao.hpp"
#include "core/correction.hpp"
#include "harness.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace htor;
  bench::print_header("F2 / bench_fig2_correction",
                      "avg shortest valley-free path 3.8 -> 2.23, diameter 11 -> 7 while "
                      "correcting the top-20 hybrid links");

  const auto ds = bench::make_dataset();
  const auto census = core::run_census(ds.rib, ds.dict);

  // The baseline of prior work ([4] and its kin): one relationship per AS
  // link, generalized across address families — i.e. the (correct) IPv4
  // relationship stamped onto every dual-stack IPv6 link.  This is exactly
  // the misinference mode the paper describes: AF-agnostic algorithms
  // *cannot* represent a link whose business relationship differs by IP
  // version.  Links that exist only in IPv6 get the valley-free heuristic
  // (Gao) run on the IPv6 paths.
  const auto gao_v6 = baselines::infer_gao(census.v6_path_store);

  RelationshipMap baseline_v6;
  for (const LinkKey& key : census.v6_path_store.links()) {
    Relationship rel = census.inferred.v4.get(key.first, key.second);
    if (rel == Relationship::Unknown) rel = gao_v6.rels.get(key.first, key.second);
    if (rel != Relationship::Unknown) baseline_v6.set(key.first, key.second, rel);
  }

  const auto steps = core::correction_experiment(baseline_v6, census.hybrids.hybrids, 20);

  Table t({"corrected", "avg valley-free path", "diameter", "p2c edges", "reachable pairs"});
  for (const auto& step : steps) {
    t.row({std::to_string(step.corrected), fmt_double(step.metrics.avg_path_length, 3),
           std::to_string(step.metrics.diameter), std::to_string(step.metrics.edges),
           std::to_string(step.metrics.reachable_pairs)});
  }
  t.print(std::cout);

  const auto& first = steps.front().metrics;
  const auto& last = steps.back().metrics;
  std::cout << "\npaper:    avg 3.8 -> 2.23, diameter 11 -> 7\n";
  std::cout << "measured: avg " << fmt_double(first.avg_path_length, 2) << " -> "
            << fmt_double(last.avg_path_length, 2) << ", diameter " << first.diameter << " -> "
            << last.diameter << "\n";
  return 0;
}
