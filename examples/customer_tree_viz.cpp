// Figure-1 style customer-tree visualization: builds the paper's 6-AS toy
// topology, prints the customer trees under both interpretations of the
// 1-2 link, and emits Graphviz DOT for both variants.
//
// Usage:  customer_tree_viz [--dot]    (--dot prints DOT instead of text)
#include <cstring>
#include <iostream>

#include "topology/customer_tree.hpp"
#include "util/strings.hpp"

namespace {

htor::RelationshipMap figure1(htor::Relationship rel_1_2) {
  htor::RelationshipMap rels;
  rels.set(1, 2, rel_1_2);
  rels.set(1, 3, htor::Relationship::P2C);
  rels.set(2, 4, htor::Relationship::P2C);
  rels.set(2, 5, htor::Relationship::P2C);
  rels.set(4, 6, htor::Relationship::P2C);
  return rels;
}

void emit_dot(const htor::RelationshipMap& rels, const char* name) {
  std::cout << "digraph " << name << " {\n  rankdir=TB;\n  node [shape=circle];\n";
  rels.for_each([](const htor::LinkKey& key, htor::Relationship rel) {
    using htor::Relationship;
    switch (rel) {
      case Relationship::P2C:
        std::cout << "  AS" << key.first << " -> AS" << key.second << " [label=\"p2c\"];\n";
        break;
      case Relationship::C2P:
        std::cout << "  AS" << key.second << " -> AS" << key.first << " [label=\"p2c\"];\n";
        break;
      default:
        std::cout << "  AS" << key.first << " -> AS" << key.second
                  << " [dir=none, style=dashed, label=\"" << to_string(rel) << "\"];\n";
        break;
    }
  });
  std::cout << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace htor;
  const bool dot = argc > 1 && std::strcmp(argv[1], "--dot") == 0;

  for (auto [label, rel] : {std::pair{"(a) link 1-2 = p2c", Relationship::P2C},
                            std::pair{"(b) link 1-2 = p2p", Relationship::P2P}}) {
    const auto rels = figure1(rel);
    if (dot) {
      emit_dot(rels, rel == Relationship::P2C ? "figure1a" : "figure1b");
      continue;
    }
    std::cout << "\n" << label << "\n";
    const CustomerTreeAnalysis trees(rels);
    for (Asn root : {1u, 2u, 4u}) {
      std::cout << "  customer tree of AS" << root << ":";
      for (Asn asn : trees.tree_of(root)) std::cout << " AS" << asn;
      std::cout << "  (cone " << trees.cone_size(root) << ")\n";
    }
    const auto m = trees.union_metrics();
    std::cout << "  union: " << m.edges << " p2c edges, avg valley-free path "
              << fmt_double(m.avg_path_length, 2) << ", diameter " << m.diameter << "\n";
  }
  if (!dot) {
    std::cout << "\nThe paper's point: a single relationship flip moves whole subtrees in or\n"
                 "out of an AS's customer tree — and prior AF-agnostic inference flips "
                 "hundreds\nof IPv6 links at once.  Run with --dot for Graphviz output.\n";
  }
  return 0;
}
