#include "server/render.hpp"

#include "util/json.hpp"

namespace htor::server {

namespace {

void link_fields(JsonWriter& json, const snapshot::QueryIndex::LinkInfo& info) {
  json.key("rel_v4").value(to_string(info.rel_v4));
  json.key("rel_v6").value(to_string(info.rel_v6));
  json.key("hybrid").value(info.hybrid);
}

}  // namespace

std::string link_json(Asn a, Asn b, const snapshot::QueryIndex::LinkInfo& info) {
  JsonWriter json;
  json.begin_object();
  json.key("a").value(a);
  json.key("b").value(b);
  link_fields(json, info);
  json.end_object();
  return json.str() + "\n";
}

std::string neighbors_json(Asn asn,
                           const std::vector<snapshot::QueryIndex::Neighbor>& neighbors) {
  JsonWriter json;
  json.begin_object();
  json.key("asn").value(asn);
  json.key("neighbor_count").value(static_cast<std::uint64_t>(neighbors.size()));
  json.key("neighbors").begin_array();
  for (const auto& n : neighbors) {
    json.begin_object();
    json.key("asn").value(n.asn);
    link_fields(json, n.info);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str() + "\n";
}

std::string error_json(std::string_view message) {
  JsonWriter json;
  json.begin_object().key("error").value(message).end_object();
  return json.str() + "\n";
}

std::string summary_json(const snapshot::QueryIndex& index) {
  JsonWriter json;
  json.begin_object();
  json.key("source").value(index.source());
  json.key("timestamp").value(index.timestamp());
  json.key("format_version").value(index.format_version());
  json.key("snapshot_bytes").value(index.snapshot_bytes());

  const snapshot::DatasetStats dataset = index.dataset();
  json.key("dataset").begin_object();
  json.key("v4_paths").value(dataset.v4_paths);
  json.key("v6_paths").value(dataset.v6_paths);
  json.key("v4_links").value(dataset.v4_links);
  json.key("v6_links").value(dataset.v6_links);
  json.key("dual_links").value(dataset.dual_links);
  json.end_object();

  const auto coverage = [&](const char* name, const snapshot::CoverageCounters& c) {
    json.key(name).begin_object();
    json.key("observed").value(c.observed);
    json.key("covered").value(c.covered);
    json.end_object();
  };
  coverage("coverage_v4", index.coverage_v4());
  coverage("coverage_v6", index.coverage_v6());
  coverage("coverage_dual", index.coverage_dual());

  const auto valleys = [&](const char* name, const snapshot::ValleyCounters& v) {
    json.key(name).begin_object();
    json.key("paths").value(v.paths);
    json.key("valley_free").value(v.valley_free);
    json.key("valley").value(v.valley);
    json.key("incomplete").value(v.incomplete);
    json.key("classified_valleys").value(v.classified_valleys);
    json.key("necessary_valleys").value(v.necessary_valleys);
    json.end_object();
  };
  valleys("valleys_v4", index.valleys_v4());
  valleys("valleys_v6", index.valleys_v6());

  const snapshot::HybridCounters hybrid = index.hybrid_counters();
  json.key("hybrids").begin_object();
  json.key("dual_links_observed").value(hybrid.dual_links_observed);
  json.key("dual_links_both_known").value(hybrid.dual_links_both_known);
  json.key("v6_paths_total").value(hybrid.v6_paths_total);
  json.key("v6_paths_with_hybrid").value(hybrid.v6_paths_with_hybrid);
  json.key("count").value(static_cast<std::uint64_t>(index.hybrid_entry_count()));
  json.end_object();

  json.key("index").begin_object();
  json.key("links").value(static_cast<std::uint64_t>(index.link_count()));
  json.key("ases").value(static_cast<std::uint64_t>(index.as_count()));
  json.key("hybrid_links").value(static_cast<std::uint64_t>(index.hybrid_count()));
  json.end_object();

  json.end_object();
  return json.str() + "\n";
}

}  // namespace htor::server
