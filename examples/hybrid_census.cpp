// Full-scale hybrid census: runs the paper's complete measurement on the
// default (bench-scale) synthetic Internet and prints a §3-style report,
// including ground-truth validation (which a real measurement cannot have —
// the point of a simulated substrate).
//
// Usage:  hybrid_census [seed]        (default seed 42)
#include <cstdlib>
#include <iostream>
#include <unordered_set>

#include "core/census_report.hpp"
#include "gen/internet.hpp"
#include "mrt/reader.hpp"
#include "mrt/writer.hpp"
#include "rpsl/object.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace htor;

  gen::GenParams params;
  if (argc > 1) params.seed = std::strtoull(argv[1], nullptr, 10);
  std::cout << "generating synthetic Internet (seed " << params.seed << ", "
            << params.total_ases() << " ASes)...\n";
  const auto net = gen::SyntheticInternet::generate(params);

  mrt::MrtWriter writer;
  for (const auto& record :
       mrt::records_from_rib(net.collect(), 0x0a0a0a0au, "census", 1281052800u)) {
    writer.write(record);
  }
  const auto rib = mrt::rib_from_records(mrt::read_all(writer.data()));
  const auto dict = rpsl::mine_dictionary(rpsl::parse_objects(net.irr_dump()));
  const auto census = core::run_census(rib, dict);

  std::cout << "\n===== dataset =====\n";
  Table ds({"metric", "value"});
  ds.row({"IPv4 AS paths", std::to_string(census.v4_paths)});
  ds.row({"IPv6 AS paths", std::to_string(census.v6_paths)});
  ds.row({"IPv4 AS links", std::to_string(census.v4_links)});
  ds.row({"IPv6 AS links", std::to_string(census.v6_links)});
  ds.row({"dual-stack links", std::to_string(census.dual_links)});
  ds.print(std::cout);

  std::cout << "\n===== inference coverage =====\n";
  Table cov({"plane", "links", "covered", "share"});
  cov.row({"IPv4", std::to_string(census.v4_coverage.observed_links),
           std::to_string(census.v4_coverage.covered_links),
           fmt_pct(census.v4_coverage.covered_links, census.v4_coverage.observed_links)});
  cov.row({"IPv6", std::to_string(census.v6_coverage.observed_links),
           std::to_string(census.v6_coverage.covered_links),
           fmt_pct(census.v6_coverage.covered_links, census.v6_coverage.observed_links)});
  cov.row({"dual (both planes typed)", std::to_string(census.dual_coverage.observed_links),
           std::to_string(census.dual_coverage.covered_links),
           fmt_pct(census.dual_coverage.covered_links, census.dual_coverage.observed_links)});
  cov.print(std::cout);

  const auto& h = census.hybrids;
  std::cout << "\n===== hybrid IPv4/IPv6 relationships =====\n";
  Table hy({"class", "links", "share of hybrids"});
  hy.row({"p2p(v4) / transit(v6)", std::to_string(h.peer_v4_transit_v6),
          fmt_pct(h.peer_v4_transit_v6, h.hybrids.size())});
  hy.row({"transit(v4) / p2p(v6)", std::to_string(h.transit_v4_peer_v6),
          fmt_pct(h.transit_v4_peer_v6, h.hybrids.size())});
  hy.row({"p2c(v4)/c2p(v6) reversal", std::to_string(h.reversals),
          fmt_pct(h.reversals, h.hybrids.size())});
  hy.row({"other", std::to_string(h.other_mix), fmt_pct(h.other_mix, h.hybrids.size())});
  hy.print(std::cout);
  std::cout << "hybrid share of typed dual links: "
            << fmt_pct(h.hybrids.size(), h.dual_links_both_known) << "\n";
  std::cout << "IPv6 paths crossing a hybrid link: "
            << fmt_pct(h.v6_paths_with_hybrid, h.v6_paths_total) << "\n";

  std::cout << "\n===== valley paths =====\n";
  Table vy({"plane", "paths", "valley", "share", "reachability-required"});
  vy.row({"IPv6", std::to_string(census.v6_valleys.paths),
          std::to_string(census.v6_valleys.valley),
          fmt_pct(census.v6_valleys.valley, census.v6_valleys.paths),
          fmt_pct(census.v6_valleys.necessary_valleys, census.v6_valleys.classified_valleys)});
  vy.row({"IPv4", std::to_string(census.v4_valleys.paths),
          std::to_string(census.v4_valleys.valley),
          fmt_pct(census.v4_valleys.valley, census.v4_valleys.paths), "-"});
  vy.print(std::cout);

  // Ground-truth validation — the luxury of a synthetic substrate.
  std::unordered_set<LinkKey, LinkKeyHash> planted;
  for (const auto& g : net.hybrid_links()) planted.insert(g.link);
  std::size_t true_pos = 0;
  for (const auto& f : h.hybrids) {
    if (planted.count(f.link)) ++true_pos;
  }
  std::cout << "\n===== validation against planted ground truth =====\n";
  std::cout << "planted hybrids:   " << planted.size() << " (whole topology)\n";
  std::cout << "detected hybrids:  " << h.hybrids.size() << " (observed, both planes typed)\n";
  std::cout << "precision:         " << fmt_pct(true_pos, h.hybrids.size()) << "\n";
  std::cout << "recall (observed): " << fmt_pct(true_pos, planted.size())
            << "  — limited by vantage coverage, cf. bench_ablation_vantage\n";
  return 0;
}
