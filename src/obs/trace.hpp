// Stage-scoped tracing spans.
//
// A Span times a named pipeline stage ("ingest.decode", "census.paths", ...)
// with RAII: construction stamps the start, destruction stamps the end and
// records the duration into the stage's latency histogram
// (htor_stage_duration_us{stage="..."} in MetricsRegistry::global()).  The
// OBS_SPAN macro declares one for the enclosing scope:
//
//   void flush_batch(...) {
//     OBS_SPAN("ingest.apply");
//     ...
//   }
//
// Histogram recording is always on (it is a couple of relaxed atomic adds —
// see BM_MetricsIncrement).  Full event capture is opt-in: when a caller has
// enabled the process TraceCollector (the CLI's --trace-out flag), each
// completed span additionally appends a Chrome-trace "complete" event
// ({"ph":"X"} with µs start/duration and the recording thread's id), and
// TraceCollector::write_file() emits a {"traceEvents":[...]} JSON file that
// chrome://tracing and Perfetto load directly.  When disabled (the default,
// and always in the daemon), spans never take the collector lock.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace htor::obs {

/// Collects completed span events for Chrome-trace export.  One process-wide
/// instance (TraceCollector::global()); disabled until enable() is called,
/// so the daemon and tests pay nothing for the machinery.
class TraceCollector {
 public:
  struct Event {
    std::string name;
    std::uint64_t start_us = 0;  ///< µs since enable()
    std::uint64_t duration_us = 0;
    std::uint32_t tid = 0;
  };

  static TraceCollector& global();

  /// Start capturing: clears prior events and stamps the trace epoch that
  /// event timestamps are relative to.
  void enable();
  void disable();
  bool enabled() const noexcept { return enabled_.load(std::memory_order_acquire); }

  void record(std::string_view name,
              std::chrono::steady_clock::time_point start,
              std::chrono::steady_clock::time_point end);

  /// Chrome trace event format: {"traceEvents":[{"name","ph":"X","ts","dur",
  /// "pid","tid"},...]}.  Events are ordered by start time.
  std::string render_json() const;

  /// render_json() to `path`; throws htor::Error on I/O failure.
  void write_file(const std::string& path) const;

  std::size_t event_count() const;

 private:
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_{};
  mutable std::mutex mutex_;
  std::vector<Event> events_;
};

/// RAII stage timer.  Not copyable or movable — it is only ever a scoped
/// local.  `name` must outlive the span (string literals in practice).
class Span {
 public:
  explicit Span(std::string_view name)
      : name_(name), start_(std::chrono::steady_clock::now()) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

 private:
  std::string_view name_;
  std::chrono::steady_clock::time_point start_;
};

/// Histogram family every span records into (labels: stage=<name>).
inline constexpr std::string_view kStageDurationMetric = "htor_stage_duration_us";

#define OBS_CONCAT_INNER(a, b) a##b
#define OBS_CONCAT(a, b) OBS_CONCAT_INNER(a, b)

/// Time the enclosing scope as pipeline stage `name` (a string literal).
#define OBS_SPAN(name) ::htor::obs::Span OBS_CONCAT(obs_span_, __LINE__)(name)

}  // namespace htor::obs
