// Tests for the BGP propagation engine: decision process, export filters,
// loop suppression, prepending, TE overrides, relaxation semantics, and the
// emergent valley-free property (parameterized over generated topologies).
#include <gtest/gtest.h>

#include "gen/internet.hpp"
#include "propagation/engine.hpp"
#include "topology/valley.hpp"

namespace htor::prop {
namespace {

struct World {
  AsGraph graph;
  RelationshipMap rels;
  std::unordered_map<Asn, NodePolicy> policies;

  void link(Asn a, Asn b, Relationship rel) {
    graph.add_link(a, b, IpVersion::V4);
    rels.set(a, b, rel);
  }
  Engine engine(const TeOverrides* te = nullptr) {
    return Engine(graph, rels, IpVersion::V4, policies, te);
  }
};

//        1 --p2p-- 2
//       /|          \            classic diamond used throughout
//      3 4           5
//            6 below 4
World diamond() {
  World w;
  w.link(1, 2, Relationship::P2P);
  w.link(1, 3, Relationship::P2C);
  w.link(1, 4, Relationship::P2C);
  w.link(2, 5, Relationship::P2C);
  w.link(4, 6, Relationship::P2C);
  return w;
}

TEST(Engine, PropagatesToEveryoneInAHierarchy) {
  World w = diamond();
  auto e = w.engine();
  e.run(6);
  for (Asn node : {1u, 2u, 3u, 4u, 5u}) {
    EXPECT_TRUE(e.has_route(node)) << "AS" << node;
  }
  EXPECT_EQ(e.advertised_path(6), (std::vector<Asn>{6}));
  EXPECT_EQ(e.advertised_path(4), (std::vector<Asn>{4, 6}));
  EXPECT_EQ(e.advertised_path(1), (std::vector<Asn>{1, 4, 6}));
  // 5 hears it via 2, which heard it over the peering link from 1.
  EXPECT_EQ(e.advertised_path(5), (std::vector<Asn>{5, 2, 1, 4, 6}));
  EXPECT_TRUE(e.converged());
}

TEST(Engine, PeerLearnedRoutesNotReExportedToPeers) {
  // 3 originates; 2 learns it via the 1-2 peering; 2 must not hand it to
  // another peer 7.
  World w = diamond();
  w.link(2, 7, Relationship::P2P);
  auto e = w.engine();
  e.run(3);
  EXPECT_TRUE(e.has_route(5));   // 2's customer gets it
  EXPECT_FALSE(e.has_route(7));  // 2's peer does not
}

TEST(Engine, ProviderRoutesNotExportedUpward) {
  World w;
  w.link(1, 2, Relationship::P2C);
  w.link(2, 3, Relationship::P2C);
  w.link(9, 3, Relationship::P2C);  // 9 is another provider of 3
  auto e = w.engine();
  e.run(1);
  EXPECT_TRUE(e.has_route(3));
  EXPECT_FALSE(e.has_route(9));  // would be a leak
}

TEST(Engine, PrefersCustomerRouteOverPeerAndProvider) {
  World w;
  w.link(10, 20, Relationship::P2C);
  w.link(20, 99, Relationship::P2C);
  w.link(10, 30, Relationship::P2P);
  w.link(30, 99, Relationship::P2C);
  w.link(10, 40, Relationship::C2P);
  w.link(40, 99, Relationship::P2C);
  auto e = w.engine();
  e.run(99);
  EXPECT_EQ(e.advertised_path(10), (std::vector<Asn>{10, 20, 99}));
  EXPECT_EQ(e.source(10), RouteSource::Customer);
  EXPECT_EQ(e.locpref(10), NodePolicy{}.lp_customer);
  EXPECT_EQ(e.best_neighbor(10), Asn{20});
}

TEST(Engine, ShorterPathWinsAtEqualLocPrf) {
  World w;
  w.link(1, 2, Relationship::P2C);
  w.link(2, 9, Relationship::P2C);
  w.link(1, 3, Relationship::P2C);
  w.link(3, 4, Relationship::P2C);
  w.link(4, 9, Relationship::P2C);
  auto e = w.engine();
  e.run(9);
  EXPECT_EQ(e.advertised_path(1), (std::vector<Asn>{1, 2, 9}));
}

TEST(Engine, LowestNeighborAsnBreaksTies) {
  World w;
  w.link(1, 5, Relationship::P2C);
  w.link(1, 3, Relationship::P2C);
  w.link(5, 9, Relationship::P2C);
  w.link(3, 9, Relationship::P2C);
  auto e = w.engine();
  e.run(9);
  EXPECT_EQ(e.best_neighbor(1), Asn{3});
}

TEST(Engine, PrependingLengthensAndAppearsInPath) {
  World w;
  w.link(1, 2, Relationship::P2C);  // 1 provider of 2
  w.link(3, 2, Relationship::P2C);  // 3 provider of 2
  w.link(1, 3, Relationship::P2P);
  w.policies[2].prepend_to_provider = 2;
  auto e = w.engine();
  e.run(2);
  // 1 hears [2 2 2] directly from its customer 2.
  EXPECT_EQ(e.advertised_path(1), (std::vector<Asn>{1, 2, 2, 2}));
  EXPECT_EQ(check_valley_free(e.advertised_path(1), w.rels).cls, PathPolicyClass::ValleyFree);
}

TEST(Engine, TeOverrideChangesSelection) {
  // 10 reaches 99 via a long customer chain or a short peer path; the TE
  // override flattens LocPrf so the shorter (peer) path wins.
  World w;
  w.link(10, 20, Relationship::P2C);
  w.link(20, 21, Relationship::P2C);
  w.link(21, 99, Relationship::P2C);
  w.link(10, 30, Relationship::P2P);
  w.link(30, 99, Relationship::P2C);
  TeOverrides te;
  te.set(10, 99, 55);
  auto e = w.engine(&te);
  e.run(99);
  EXPECT_EQ(e.advertised_path(10), (std::vector<Asn>{10, 30, 99}));
  EXPECT_EQ(e.locpref(10), 55u);
}

TEST(Engine, SiblingTransparencyBlocksLeaks) {
  // 2 and 3 are siblings; 2 learns from provider 1, exports to sibling 3;
  // 3 must NOT re-export the provider-learned route to its own provider 4.
  World w;
  w.link(1, 2, Relationship::P2C);
  w.link(2, 3, Relationship::S2S);
  w.link(4, 3, Relationship::P2C);
  auto e = w.engine();
  e.run(1);
  EXPECT_TRUE(e.has_route(3));
  EXPECT_EQ(e.source(3), RouteSource::Sibling);
  EXPECT_FALSE(e.has_route(4));
}

TEST(Engine, RelaxedExportLeaksToPeers) {
  World w;
  w.link(1, 2, Relationship::P2C);
  w.link(2, 3, Relationship::P2P);
  w.policies[2].relaxed_export = true;
  w.policies[2].relax_origin_fraction = 1.0;
  auto e = w.engine();
  e.run(1);
  EXPECT_TRUE(e.has_route(3));
  const auto path = e.advertised_path(3);
  EXPECT_EQ(path, (std::vector<Asn>{3, 2, 1}));
  EXPECT_EQ(check_valley_free(path, w.rels).cls, PathPolicyClass::Valley);

  // Without relaxation the same route must not exist.
  w.policies[2].relaxed_export = false;
  auto e2 = w.engine();
  e2.run(1);
  EXPECT_FALSE(e2.has_route(3));
}

TEST(Engine, SelectiveRelaxationSkipsSomeOrigins) {
  World w;
  w.link(1, 2, Relationship::P2C);
  w.link(2, 3, Relationship::P2P);
  w.policies[2].relaxed_export = true;
  w.policies[2].relax_origin_fraction = 0.0;  // fully selective: nothing leaks
  auto e = w.engine();
  e.run(1);
  EXPECT_FALSE(e.has_route(3));
}

TEST(Engine, FullRelaxationLeaksUpwardDepreffed) {
  // 2 learns from peer 1 and leaks it up to provider 4 (healer behaviour);
  // 4 must receive it at the last-resort LocPrf.
  World w;
  w.link(1, 2, Relationship::P2P);
  w.link(4, 2, Relationship::P2C);
  w.policies[2].relaxed_export_up = true;
  auto e = w.engine();
  e.run(1);
  ASSERT_TRUE(e.has_route(4));
  EXPECT_LT(e.locpref(4), NodePolicy{}.lp_provider);
  EXPECT_EQ(e.advertised_path(4), (std::vector<Asn>{4, 2, 1}));
}

TEST(Engine, LastResortRouteLosesToAnyAlternative) {
  // 4 hears origin 1 both through the healer leak (depreffed) and through a
  // normal peering with 1; the normal route must win.
  World w;
  w.link(1, 2, Relationship::P2P);
  w.link(4, 2, Relationship::P2C);
  w.link(4, 1, Relationship::P2P);
  w.policies[2].relaxed_export_up = true;
  auto e = w.engine();
  e.run(1);
  EXPECT_EQ(e.advertised_path(4), (std::vector<Asn>{4, 1}));
}

TEST(Engine, UnknownOriginThrows) {
  World w = diamond();
  auto e = w.engine();
  EXPECT_THROW(e.run(12345), InvalidArgument);
}

// Property: without relaxation, every selected path in a generated topology
// is valley-free under the ground truth (the Gao-Rexford guarantee).
class ValleyFreeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ValleyFreeProperty, AllSelectedPathsValleyFree) {
  auto params = gen::small_params(GetParam());
  params.relaxed_count = 0;
  params.healer_pairs = 0;
  const auto net = gen::SyntheticInternet::generate(params);

  Engine engine(net.graph(), net.truth(IpVersion::V4), IpVersion::V4,
                net.policies(IpVersion::V4), &net.te_overrides());
  std::size_t origins = 0;
  for (Asn origin : net.graph().ases()) {
    if (net.graph().neighbors(origin, IpVersion::V4).empty()) continue;
    if (++origins > 40) break;  // a sample is plenty
    engine.run(origin);
    EXPECT_TRUE(engine.converged());
    for (Asn node : net.graph().ases()) {
      if (!engine.has_route(node)) continue;
      const auto path = engine.advertised_path(node);
      const auto check = check_valley_free(path, net.truth(IpVersion::V4));
      EXPECT_NE(check.cls, PathPolicyClass::Valley) << "origin " << origin << " at " << node;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValleyFreeProperty, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace htor::prop
