// Fuzz target: the BGP4MP update path — MRT framing, BGP UPDATE decode, and
// live::ObservedRib::apply.
//
// Contract asserted per input: the buffer decodes into records and every
// BGP4MP message applies to the live RIB, or a reasoned DecodeError is
// thrown — no other exception type, no crash.  On top of the decoder
// contract this target asserts the apply-side strong exception guarantee:
// when apply() rejects a message, the observed RIB must be byte-identical
// to its state before the call (a torn table would silently poison every
// later census epoch, which is why the validation happens before any
// mutation).
#include "fuzz/driver.hpp"

#include "live/observed_rib.hpp"
#include "mrt/reader.hpp"

using namespace htor;

int main(int argc, char** argv) {
  return fuzz::run_target(
      "fuzz_updates", argc, argv, [](const std::vector<std::uint8_t>& input) {
        const auto records = mrt::read_all(input);
        live::ObservedRib rib;
        for (const auto& record : records) {
          const auto* msg = std::get_if<mrt::Bgp4mpMessage>(&record.body);
          if (msg == nullptr) continue;
          const auto before = rib.materialize();
          try {
            rib.apply(*msg);
          } catch (const DecodeError&) {
            // The strong guarantee: a rejected update leaves no trace.
            if (rib.materialize().routes() != before.routes()) {
              throw std::logic_error("apply() threw but mutated the observed RIB");
            }
            throw;  // still a reasoned rejection for the harness tally
          }
        }
        return fuzz::Outcome::Parsed;
      });
}
