// Persistent census snapshots: the durable core of one CensusReport, tied to
// the collector RIB it was measured from.
//
// A snapshot is what a multi-RIB study keeps per dump: the per-family
// relationship maps, the hybrid links, and the coverage/valley counters —
// everything needed to diff two measurement epochs or answer AS-level
// queries without re-running the census.  The on-disk form is a versioned,
// big-endian binary format (see writer.hpp / reader.hpp) with the same
// fail-clean discipline as the MRT readers.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "topology/relationship.hpp"

namespace htor::snapshot {

/// File magic, "HTSN" big-endian.
inline constexpr std::uint32_t kMagic = 0x4854534eu;
/// Trailer magic, "ENDS" big-endian: a reader that does not reach it read a
/// truncated or corrupt file.
inline constexpr std::uint32_t kTrailer = 0x454e4453u;
/// Current format version.  Readers accept versions in [1, kFormatVersion]
/// and reject anything newer with a reasoned DecodeError, so old binaries
/// fail cleanly on files from the future instead of misreading them.
/// v1 is the original sequential encoding; v2 (layout.hpp) is the
/// mmap-able flat layout the writer emits by default.
inline constexpr std::uint32_t kFormatVersion = 2;

struct Header {
  std::uint32_t version = kFormatVersion;
  std::uint64_t timestamp = 0;  ///< RIB epoch (MRT timestamp), unix seconds
  std::string source;           ///< path of the MRT file the census consumed

  friend bool operator==(const Header&, const Header&) = default;
};

/// Paper §3 ¶1 dataset statistics.
struct DatasetStats {
  std::uint64_t v4_paths = 0;  ///< distinct IPv4 AS paths
  std::uint64_t v6_paths = 0;
  std::uint64_t v4_links = 0;  ///< distinct IPv4 AS links observed
  std::uint64_t v6_links = 0;
  std::uint64_t dual_links = 0;  ///< links visible in both families

  friend bool operator==(const DatasetStats&, const DatasetStats&) = default;
};

struct CoverageCounters {
  std::uint64_t observed = 0;
  std::uint64_t covered = 0;

  friend bool operator==(const CoverageCounters&, const CoverageCounters&) = default;
};

struct ValleyCounters {
  std::uint64_t paths = 0;
  std::uint64_t valley_free = 0;
  std::uint64_t valley = 0;
  std::uint64_t incomplete = 0;
  std::uint64_t classified_valleys = 0;
  std::uint64_t necessary_valleys = 0;

  friend bool operator==(const ValleyCounters&, const ValleyCounters&) = default;
};

/// One hybrid link, relationships oriented link.first -> link.second.
struct HybridLink {
  LinkKey link;
  Relationship rel_v4 = Relationship::Unknown;
  Relationship rel_v6 = Relationship::Unknown;
  std::uint8_t cls = 0;  ///< core::HybridClass value
  std::uint64_t v6_path_visibility = 0;

  friend bool operator==(const HybridLink&, const HybridLink&) = default;
};

struct HybridCounters {
  std::uint64_t dual_links_observed = 0;
  std::uint64_t dual_links_both_known = 0;
  std::uint64_t v6_paths_total = 0;
  std::uint64_t v6_paths_with_hybrid = 0;

  friend bool operator==(const HybridCounters&, const HybridCounters&) = default;
};

/// The durable core of one census run.
struct Snapshot {
  Header header;
  DatasetStats dataset;
  CoverageCounters coverage_v4;
  CoverageCounters coverage_v6;
  CoverageCounters coverage_dual;
  ValleyCounters valleys_v4;
  ValleyCounters valleys_v6;
  HybridCounters hybrid_counters;
  RelationshipMap rels_v4;
  RelationshipMap rels_v6;
  /// Census order (IPv6 path visibility, descending).
  std::vector<HybridLink> hybrids;
};

/// A RelationshipMap's entries in canonical LinkKey order (rel oriented
/// key.first -> key.second).  This is the order the writer serializes and
/// the reader enforces, so equal maps always produce equal bytes.
std::vector<std::pair<LinkKey, Relationship>> sorted_entries(const RelationshipMap& map);

/// Entry-wise map equality (same links, same oriented relationships).
bool same_entries(const RelationshipMap& a, const RelationshipMap& b);

/// Deep snapshot equality (header, counters, maps, hybrid list).
bool equal(const Snapshot& a, const Snapshot& b);

}  // namespace htor::snapshot
