#include "util/bytes.hpp"

#include <fstream>

namespace htor {

std::vector<std::uint8_t> load_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw Error("cannot open '" + path + "'");
  const std::streamsize size = in.tellg();
  if (size < 0) throw Error("cannot determine size of '" + path + "'");
  in.seekg(0);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()), size);
  if (!in) throw Error("read from '" + path + "' failed");
  return data;
}

void save_bytes(const std::string& path, std::span<const std::uint8_t> data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot write '" + path + "'");
  out.write(reinterpret_cast<const char*>(data.data()), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) throw Error("write to '" + path + "' failed");
}

void ByteReader::require(std::size_t n) const {
  if (remaining() < n) {
    throw DecodeError("buffer underrun: need " + std::to_string(n) + " bytes, have " +
                      std::to_string(remaining()));
  }
}

std::uint8_t ByteReader::u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  require(2);
  std::uint16_t v = static_cast<std::uint16_t>(static_cast<std::uint16_t>(data_[pos_]) << 8 |
                                               static_cast<std::uint16_t>(data_[pos_ + 1]));
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  require(4);
  std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) << 24 |
                    static_cast<std::uint32_t>(data_[pos_ + 1]) << 16 |
                    static_cast<std::uint32_t>(data_[pos_ + 2]) << 8 |
                    static_cast<std::uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  std::uint64_t hi = u32();
  std::uint64_t lo = u32();
  return hi << 32 | lo;
}

std::span<const std::uint8_t> ByteReader::bytes(std::size_t n) {
  require(n);
  auto view = data_.subspan(pos_, n);
  pos_ += n;
  return view;
}

std::vector<std::uint8_t> ByteReader::bytes_copy(std::size_t n) {
  auto view = bytes(n);
  return {view.begin(), view.end()};
}

std::string ByteReader::text(std::size_t n) {
  auto view = bytes(n);
  return {reinterpret_cast<const char*>(view.data()), view.size()};
}

void ByteReader::skip(std::size_t n) {
  require(n);
  pos_ += n;
}

ByteReader ByteReader::sub(std::size_t n) { return ByteReader(bytes(n)); }

void ByteWriter::u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
  out_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  out_.push_back(static_cast<std::uint8_t>(v >> 24));
  out_.push_back(static_cast<std::uint8_t>(v >> 16));
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
  out_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  out_.insert(out_.end(), data.begin(), data.end());
}

void ByteWriter::text(const std::string& s) {
  out_.insert(out_.end(), s.begin(), s.end());
}

void ByteWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  if (offset + 2 > out_.size()) throw InvalidArgument("patch_u16 out of range");
  out_[offset] = static_cast<std::uint8_t>(v >> 8);
  out_[offset + 1] = static_cast<std::uint8_t>(v);
}

void ByteWriter::patch_u32(std::size_t offset, std::uint32_t v) {
  if (offset + 4 > out_.size()) throw InvalidArgument("patch_u32 out of range");
  out_[offset] = static_cast<std::uint8_t>(v >> 24);
  out_[offset + 1] = static_cast<std::uint8_t>(v >> 16);
  out_[offset + 2] = static_cast<std::uint8_t>(v >> 8);
  out_[offset + 3] = static_cast<std::uint8_t>(v);
}

}  // namespace htor
