// Unit tests for server/http: the daemon's hand-rolled HTTP/1.1 request
// parser (bounded sizes, fail-clean 4xx on anything malformed — the same
// discipline the MRT and snapshot readers apply to untrusted bytes) and the
// response serializer.
#include <gtest/gtest.h>

#include <string>

#include "server/http.hpp"

namespace htor::server {
namespace {

/// Feed the whole string at once; expects the parser to finish it.
RequestParser::Status feed_all(RequestParser& parser, std::string_view text,
                               std::size_t* consumed_out = nullptr) {
  std::size_t consumed = 0;
  const auto status = parser.feed(text, consumed);
  if (consumed_out != nullptr) *consumed_out = consumed;
  return status;
}

TEST(RequestParser, SimpleGet) {
  RequestParser parser;
  std::size_t consumed = 0;
  const auto status =
      feed_all(parser, "GET /v1/healthz HTTP/1.1\r\nHost: localhost\r\n\r\n", &consumed);
  ASSERT_EQ(status, RequestParser::Status::Done);
  EXPECT_EQ(consumed, std::string("GET /v1/healthz HTTP/1.1\r\nHost: localhost\r\n\r\n").size());
  const auto& req = parser.request();
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.target, "/v1/healthz");
  EXPECT_EQ(req.version_major, 1);
  EXPECT_EQ(req.version_minor, 1);
  ASSERT_EQ(req.headers.size(), 1u);
  EXPECT_EQ(req.headers[0].first, "host");  // names are lowercased
  EXPECT_EQ(req.headers[0].second, "localhost");
  EXPECT_TRUE(req.keep_alive());  // 1.1 default
}

TEST(RequestParser, BareLfLineEndingsAccepted) {
  RequestParser parser;
  ASSERT_EQ(feed_all(parser, "GET / HTTP/1.1\nHost: x\n\n"), RequestParser::Status::Done);
  EXPECT_EQ(parser.request().target, "/");
}

TEST(RequestParser, KeepAliveSemantics) {
  {
    RequestParser parser;
    ASSERT_EQ(feed_all(parser, "GET / HTTP/1.1\r\nConnection: close\r\n\r\n"),
              RequestParser::Status::Done);
    EXPECT_FALSE(parser.request().keep_alive());
  }
  {
    RequestParser parser;
    ASSERT_EQ(feed_all(parser, "GET / HTTP/1.0\r\n\r\n"), RequestParser::Status::Done);
    EXPECT_FALSE(parser.request().keep_alive());  // 1.0 default is close
  }
  {
    RequestParser parser;
    ASSERT_EQ(feed_all(parser, "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"),
              RequestParser::Status::Done);
    EXPECT_TRUE(parser.request().keep_alive());
  }
}

TEST(RequestParser, RepeatedConnectionHeadersAggregate) {
  // Connection is list-valued and may repeat; "close" anywhere wins.
  RequestParser parser;
  ASSERT_EQ(feed_all(parser,
                     "GET / HTTP/1.1\r\nConnection: upgrade\r\nConnection: close\r\n\r\n"),
            RequestParser::Status::Done);
  EXPECT_FALSE(parser.request().keep_alive());
}

TEST(RequestParser, ByteAtATimeFeedingMatchesOneShot) {
  const std::string wire = "POST /v1/reload HTTP/1.1\r\nContent-Length: 4\r\n\r\nwork";
  RequestParser parser;
  RequestParser::Status status = RequestParser::Status::NeedMore;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    std::size_t consumed = 0;
    status = parser.feed(std::string_view(wire).substr(i, 1), consumed);
    if (i + 1 < wire.size()) {
      ASSERT_EQ(status, RequestParser::Status::NeedMore) << "at byte " << i;
      ASSERT_EQ(consumed, 1u);
    }
  }
  ASSERT_EQ(status, RequestParser::Status::Done);
  EXPECT_EQ(parser.request().method, "POST");
  EXPECT_EQ(parser.request().body, "work");
}

TEST(RequestParser, PipelinedRequestsLeaveTheRemainder) {
  const std::string first = "GET /a HTTP/1.1\r\n\r\n";
  const std::string second = "GET /b HTTP/1.1\r\n\r\n";
  RequestParser parser;
  std::size_t consumed = 0;
  ASSERT_EQ(feed_all(parser, first + second, &consumed), RequestParser::Status::Done);
  EXPECT_EQ(consumed, first.size());  // the second request stays with the caller

  RequestParser next;
  ASSERT_EQ(feed_all(next, second), RequestParser::Status::Done);
  EXPECT_EQ(next.request().target, "/b");
}

TEST(RequestParser, LeadingBlankLinesTolerated) {
  RequestParser parser;
  ASSERT_EQ(feed_all(parser, "\r\n\r\nGET / HTTP/1.1\r\n\r\n"), RequestParser::Status::Done);
  EXPECT_EQ(parser.request().target, "/");

  RequestParser flood;
  ASSERT_EQ(feed_all(flood, "\r\n\r\n\r\n\r\n"), RequestParser::Status::Bad);
  EXPECT_EQ(flood.error_status(), 400);
}

struct BadCase {
  const char* name;
  std::string wire;
  int status;
};

TEST(RequestParser, MalformedRequestsFailCleanWith4xx) {
  const std::string long_target(2048, 'a');
  std::string many_headers = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 100; ++i) many_headers += "X-H" + std::to_string(i) + ": v\r\n";
  many_headers += "\r\n";

  const BadCase cases[] = {
      {"garbage", "GARBAGE\r\n\r\n", 400},
      {"no target", "GET HTTP/1.1\r\n\r\n", 400},
      {"relative target", "GET foo HTTP/1.1\r\n\r\n", 400},
      {"target with space dance", "GET / bar HTTP/1.1\r\n\r\n", 400},
      {"bad method token", "G{}T / HTTP/1.1\r\n\r\n", 400},
      {"empty method", " / HTTP/1.1\r\n\r\n", 400},
      {"bad version", "GET / HTTTP/1.1\r\n\r\n", 400},
      {"http/2", "GET / HTTP/2.0\r\n\r\n", 400},
      {"version garbage", "GET / HTTP/x.y\r\n\r\n", 400},
      {"header without colon", "GET / HTTP/1.1\r\nnocolon\r\n\r\n", 400},
      {"header empty name", "GET / HTTP/1.1\r\n: v\r\n\r\n", 400},
      {"header bad name", "GET / HTTP/1.1\r\nbad name: v\r\n\r\n", 400},
      {"obsolete folding", "GET / HTTP/1.1\r\nA: b\r\n c\r\n\r\n", 400},
      {"bad content-length", "POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n", 400},
      {"negative content-length", "POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n", 400},
      {"conflicting content-lengths",
       "POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n", 400},
      {"chunked", "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 400},
      {"oversized body", "POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n", 413},
      {"oversized request line", "GET /" + long_target + " HTTP/1.1\r\n\r\n", 414},
      {"oversized header line", "GET / HTTP/1.1\r\nX: " + long_target + "\r\n\r\n", 431},
      {"too many headers", many_headers, 431},
  };
  for (const auto& c : cases) {
    RequestParser parser;
    const auto status = feed_all(parser, c.wire);
    EXPECT_EQ(status, RequestParser::Status::Bad) << c.name;
    EXPECT_EQ(parser.error_status(), c.status) << c.name;
    EXPECT_FALSE(parser.error().empty()) << c.name;
    EXPECT_GE(parser.error_status(), 400) << c.name;
    EXPECT_LT(parser.error_status(), 500) << c.name;
  }
}

TEST(RequestParser, OversizedRequestLineFailsEvenWithoutNewline) {
  // A client that never sends a newline must not make the server buffer
  // unboundedly: the limit applies to the partial line too.
  RequestParser parser;
  const std::string endless(4096, 'a');
  std::size_t consumed = 0;
  EXPECT_EQ(parser.feed(endless, consumed), RequestParser::Status::Bad);
  EXPECT_EQ(parser.error_status(), 414);
}

TEST(RequestParser, TruncatedRequestStaysIncomplete) {
  RequestParser parser;
  EXPECT_EQ(feed_all(parser, "GET /v1/healthz HTTP/1."), RequestParser::Status::NeedMore);
  EXPECT_EQ(feed_all(parser, ""), RequestParser::Status::NeedMore);

  RequestParser body_short;
  EXPECT_EQ(feed_all(body_short, "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            RequestParser::Status::NeedMore);
}

TEST(HttpResponse, SerializesExactBytes) {
  HttpResponse resp;
  resp.status = 200;
  resp.body = "{\"ok\":true}\n";
  resp.keep_alive = true;
  EXPECT_EQ(resp.serialize(),
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/json\r\n"
            "Content-Length: 12\r\n"
            "Connection: keep-alive\r\n"
            "\r\n"
            "{\"ok\":true}\n");
}

TEST(HttpResponse, HeadOmitsBodyButKeepsLength) {
  HttpResponse resp;
  resp.status = 404;
  resp.body = "{\"error\":\"x\"}\n";
  resp.keep_alive = false;
  const auto head = resp.serialize(/*include_body=*/false);
  EXPECT_NE(head.find("Content-Length: 14\r\n"), std::string::npos);
  EXPECT_NE(head.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(head.find("error"), std::string::npos);
  EXPECT_EQ(head.substr(head.size() - 4), "\r\n\r\n");
}

TEST(HttpResponse, ReasonPhrases) {
  EXPECT_EQ(status_reason(200), "OK");
  EXPECT_EQ(status_reason(400), "Bad Request");
  EXPECT_EQ(status_reason(404), "Not Found");
  EXPECT_EQ(status_reason(405), "Method Not Allowed");
  EXPECT_EQ(status_reason(413), "Content Too Large");
  EXPECT_EQ(status_reason(414), "URI Too Long");
  EXPECT_EQ(status_reason(431), "Request Header Fields Too Large");
  EXPECT_EQ(status_reason(503), "Service Unavailable");
}

}  // namespace
}  // namespace htor::server
