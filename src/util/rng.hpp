// Deterministic random source for the synthetic-Internet generator.
//
// All randomness in the project flows through this wrapper so that every
// experiment is reproducible from a single seed (DESIGN.md §6).
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace htor {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::uint32_t uniform(std::uint32_t lo, std::uint32_t hi) {
    if (lo > hi) throw InvalidArgument("Rng::uniform: lo > hi");
    return std::uniform_int_distribution<std::uint32_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n).  Requires n > 0.
  std::size_t index(std::size_t n) {
    if (n == 0) throw InvalidArgument("Rng::index: empty range");
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Uniform double in [0, 1).
  double real() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  /// True with probability p (clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return real() < p;
  }

  /// Uniformly chosen element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    return items[index(items.size())];
  }

  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[index(items.size())];
  }

  /// Index drawn proportionally to non-negative weights (at least one > 0).
  std::size_t weighted(std::span<const double> weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) throw InvalidArgument("Rng::weighted: no positive weight");
    double x = real() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x < 0.0) return i;
    }
    return weights.size() - 1;
  }

  template <typename T>
  void shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  /// Geometric-ish small count: 1 + number of successes of repeated coin
  /// flips with probability p, capped at `cap`.  Used for provider counts.
  std::uint32_t small_count(double p, std::uint32_t cap) {
    std::uint32_t n = 1;
    while (n < cap && chance(p)) ++n;
    return n;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace htor
