// Tests for the ToR baselines (Gao, degree-rank): correctness on handcrafted
// path sets and behaviour on generated topologies.
#include <gtest/gtest.h>

#include "baselines/degree_rank.hpp"
#include "baselines/gao.hpp"
#include "gen/internet.hpp"
#include "propagation/engine.hpp"

namespace htor::baselines {
namespace {

// A star hierarchy: big provider 1 with customers 2..9; 2 also provides for
// 20, 3 provides for 30.  Vantage-style paths climb to 1 and descend.
PathStore star_paths() {
  PathStore store;
  store.add({20, 2, 1, 3, 30});
  store.add({30, 3, 1, 2, 20});
  for (Asn c = 4; c <= 9; ++c) {
    store.add({20, 2, 1, c});
    store.add({30, 3, 1, c});
  }
  return store;
}

TEST(Gao, InfersStarHierarchy) {
  const auto result = infer_gao(star_paths());
  EXPECT_EQ(result.rels.get(1, 2), Relationship::P2C);
  EXPECT_EQ(result.rels.get(1, 3), Relationship::P2C);
  EXPECT_EQ(result.rels.get(2, 20), Relationship::P2C);
  EXPECT_EQ(result.rels.get(3, 30), Relationship::P2C);
  EXPECT_EQ(result.rels.get(1, 7), Relationship::P2C);
  EXPECT_GT(result.transit_links, 0u);
}

TEST(Gao, PeakLinkBecomesPeering) {
  // Two comparable mid-size ASes 2 and 3 exchange traffic across their
  // mutual link at the top of every path: classic p2p.
  PathStore store;
  store.add({20, 2, 3, 30});
  store.add({30, 3, 2, 20});
  store.add({21, 2, 3, 31});
  store.add({31, 3, 2, 21});
  store.add({20, 2, 3, 31});
  store.add({21, 2, 3, 30});
  const auto result = infer_gao(store);
  EXPECT_EQ(result.rels.get(2, 3), Relationship::P2P);
  EXPECT_EQ(result.rels.get(2, 20), Relationship::P2C);
  EXPECT_EQ(result.rels.get(3, 30), Relationship::P2C);
}

TEST(Gao, SiblingWhenVotesSplit) {
  // Votes flow both ways across 2-3 in comparable volume.
  PathStore store;
  store.add({20, 2, 3, 9});   // peak at 9? degrees decide; craft both climbs
  store.add({9, 3, 2, 20});
  store.add({21, 2, 3, 9});
  store.add({9, 3, 2, 21});
  store.add({30, 3, 2, 8});
  store.add({8, 2, 3, 30});
  GaoParams params;
  params.sibling_ratio = 0.3;
  const auto result = infer_gao(store, params);
  // Whatever the exact volume split, the 2-3 link must not be one-way
  // transit here; accept s2s or p2p.
  const Relationship rel = result.rels.get(2, 3);
  EXPECT_TRUE(rel == Relationship::S2S || rel == Relationship::P2P)
      << to_string(rel);
}

TEST(Gao, EmptyPathStore) {
  const auto result = infer_gao(PathStore{});
  EXPECT_EQ(result.rels.size(), 0u);
}

TEST(Gao, CoversEveryObservedLink) {
  const auto store = star_paths();
  const auto result = infer_gao(store);
  for (const auto& link : store.links()) {
    EXPECT_NE(result.rels.get(link.first, link.second), Relationship::Unknown);
  }
}

TEST(DegreeRank, BigSmallIsTransit) {
  const auto result = infer_degree_rank(star_paths());
  EXPECT_EQ(result.rels.get(1, 2), Relationship::P2C);
  EXPECT_EQ(result.rels.get(2, 20), Relationship::P2C);
  EXPECT_GT(result.transit_links, 0u);
}

TEST(DegreeRank, ComparableTransitDegreesArePeers) {
  PathStore store;
  // 2 and 3 both transit for two customers each and interconnect.
  store.add({20, 2, 3, 30});
  store.add({21, 2, 3, 31});
  store.add({30, 3, 2, 20});
  store.add({31, 3, 2, 21});
  const auto result = infer_degree_rank(store);
  EXPECT_EQ(result.rels.get(2, 3), Relationship::P2P);
}

// On a generated topology the AF-agnostic baselines must stamp ONE
// relationship per link — which on hybrid links is wrong in at least one
// address family.  This is the paper's core argument, stated as a property.
class BaselineCannotSeeHybrids : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BaselineCannotSeeHybrids, OneLabelPerLink) {
  const auto net = gen::SyntheticInternet::generate(gen::small_params(GetParam()));
  const auto rib = net.collect();
  PathStore mixed;
  for (const auto& route : rib.routes()) mixed.add(route.as_path);
  const auto gao = infer_gao(mixed);

  std::size_t observed_hybrids = 0;
  std::size_t wrong_somewhere = 0;
  for (const auto& h : net.hybrid_links()) {
    const Relationship got = gao.rels.get(h.link.first, h.link.second);
    if (got == Relationship::Unknown) continue;  // not observed
    ++observed_hybrids;
    if (got != h.rel_v4 || got != h.rel_v6) ++wrong_somewhere;
  }
  // A single label can never match two different truths.
  EXPECT_EQ(wrong_somewhere, observed_hybrids);
  EXPECT_GT(observed_hybrids, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineCannotSeeHybrids, ::testing::Values(7, 8, 9));

}  // namespace
}  // namespace htor::baselines
