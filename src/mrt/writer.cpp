#include "mrt/writer.hpp"

#include <fstream>

#include "bgp/nlri.hpp"

namespace htor::mrt {

namespace {

void encode_peer_index_table(ByteWriter& w, const PeerIndexTable& pit) {
  w.u32(pit.collector_bgp_id);
  w.u16(static_cast<std::uint16_t>(pit.view_name.size()));
  w.text(pit.view_name);
  w.u16(static_cast<std::uint16_t>(pit.peers.size()));
  for (const auto& peer : pit.peers) {
    std::uint8_t type = 0;
    if (peer.address.is_v6()) type |= 0x01;
    const bool as4 = is_4byte(peer.asn);
    if (as4) type |= 0x02;
    w.u8(type);
    w.u32(peer.bgp_id);
    w.bytes(peer.address.bytes());
    if (as4) {
      w.u32(peer.asn);
    } else {
      w.u16(static_cast<std::uint16_t>(peer.asn));
    }
  }
}

void encode_rib(ByteWriter& w, const RibPrefixRecord& rib) {
  w.u32(rib.sequence);
  bgp::encode_nlri_prefix(w, rib.prefix);
  w.u16(static_cast<std::uint16_t>(rib.entries.size()));
  for (const auto& entry : rib.entries) {
    w.u16(entry.peer_index);
    w.u32(entry.originated_time);
    const auto attrs = bgp::encode_path_attributes(entry.attrs, bgp::MpReachForm::MrtRib);
    w.u16(static_cast<std::uint16_t>(attrs.size()));
    w.bytes(attrs);
  }
}

void encode_bgp4mp(ByteWriter& w, const Bgp4mpMessage& msg) {
  if (msg.as4) {
    w.u32(msg.peer_as);
    w.u32(msg.local_as);
  } else {
    w.u16(static_cast<std::uint16_t>(msg.peer_as));
    w.u16(static_cast<std::uint16_t>(msg.local_as));
  }
  w.u16(msg.interface_index);
  if (msg.peer_ip.version() != msg.local_ip.version()) {
    throw InvalidArgument("BGP4MP peer/local address family mismatch");
  }
  w.u16(msg.peer_ip.is_v4() ? 1 : 2);  // AFI
  w.bytes(msg.peer_ip.bytes());
  w.bytes(msg.local_ip.bytes());
  w.bytes(bgp::encode_message(msg.message));
}

std::uint16_t subtype_of(const RecordBody& body) {
  if (std::holds_alternative<PeerIndexTable>(body)) {
    return static_cast<std::uint16_t>(TableDumpV2Subtype::PeerIndexTable);
  }
  if (const auto* rib = std::get_if<RibPrefixRecord>(&body)) {
    return static_cast<std::uint16_t>(rib->prefix.version() == IpVersion::V4
                                          ? TableDumpV2Subtype::RibIpv4Unicast
                                          : TableDumpV2Subtype::RibIpv6Unicast);
  }
  if (const auto* msg = std::get_if<Bgp4mpMessage>(&body)) {
    return static_cast<std::uint16_t>(msg->as4 ? Bgp4mpSubtype::MessageAs4
                                               : Bgp4mpSubtype::Message);
  }
  return std::get<RawRecord>(body).subtype;
}

std::uint16_t type_of(const RecordBody& body) {
  if (std::holds_alternative<Bgp4mpMessage>(body)) {
    return static_cast<std::uint16_t>(MrtType::Bgp4mp);
  }
  if (std::holds_alternative<RawRecord>(body)) return std::get<RawRecord>(body).type;
  return static_cast<std::uint16_t>(MrtType::TableDumpV2);
}

}  // namespace

std::vector<std::uint8_t> encode_record(const Record& record) {
  ByteWriter body;
  if (const auto* pit = std::get_if<PeerIndexTable>(&record.body)) {
    encode_peer_index_table(body, *pit);
  } else if (const auto* rib = std::get_if<RibPrefixRecord>(&record.body)) {
    encode_rib(body, *rib);
  } else if (const auto* msg = std::get_if<Bgp4mpMessage>(&record.body)) {
    encode_bgp4mp(body, *msg);
  } else {
    body.bytes(std::get<RawRecord>(record.body).payload);
  }

  ByteWriter w;
  w.u32(record.timestamp);
  w.u16(type_of(record.body));
  w.u16(subtype_of(record.body));
  w.u32(static_cast<std::uint32_t>(body.size()));
  w.bytes(body.data());
  return w.take();
}

void MrtWriter::write(const Record& record) {
  const auto bytes = encode_record(record);
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  ++count_;
}

void MrtWriter::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot open '" + path + "' for writing");
  // lint: allow(raw-cast) ostream::write takes const char*; output path only
  out.write(reinterpret_cast<const char*>(buffer_.data()),
            static_cast<std::streamsize>(buffer_.size()));
  if (!out) throw Error("write to '" + path + "' failed");
}

}  // namespace htor::mrt
