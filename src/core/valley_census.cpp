#include "core/valley_census.hpp"

#include <unordered_map>

#include "topology/reachability.hpp"
#include "topology/valley.hpp"

namespace htor::core {

namespace {

/// Dense valley-free-reachability oracle over the links of a relationship
/// map, with per-source memoization (sources are the few vantage ASes).
class ReachOracle {
 public:
  explicit ReachOracle(const RelationshipMap& rels) {
    rels.for_each([this](const LinkKey& key, Relationship rel) {
      const std::uint32_t a = intern(key.first);
      const std::uint32_t b = intern(key.second);
      adj_[a].push_back({b, edge_kind(rel)});
      adj_[b].push_back({a, edge_kind(reverse(rel))});
    });
  }

  /// kUnreachable when src/dst unknown or no valley-free path.
  bool reachable(Asn src, Asn dst) {
    auto s = index_.find(src);
    auto d = index_.find(dst);
    if (s == index_.end() || d == index_.end()) return false;
    auto [it, inserted] = cache_.try_emplace(s->second);
    if (inserted) it->second = valley_free_distances(adj_, s->second);
    return it->second[d->second] != kUnreachable;
  }

 private:
  std::uint32_t intern(Asn asn) {
    auto [it, inserted] = index_.try_emplace(asn, static_cast<std::uint32_t>(adj_.size()));
    if (inserted) adj_.emplace_back();
    return it->second;
  }

  std::unordered_map<Asn, std::uint32_t> index_;
  AdjacencyList adj_;
  std::unordered_map<std::uint32_t, std::vector<std::int32_t>> cache_;
};

}  // namespace

bool valley_is_necessary(Asn src, Asn dst, const RelationshipMap& rels) {
  ReachOracle oracle(rels);
  return !oracle.reachable(src, dst);
}

ValleyCensus census_valleys(const PathStore& paths, const RelationshipMap& rels) {
  ValleyCensus census;
  ReachOracle oracle(rels);

  paths.for_each([&](const std::vector<Asn>& path, std::uint64_t) {
    ++census.paths;
    const ValleyCheckResult check = check_valley_free(path, rels);
    switch (check.cls) {
      case PathPolicyClass::ValleyFree:
        ++census.valley_free;
        return;
      case PathPolicyClass::Incomplete:
        ++census.incomplete;
        return;
      case PathPolicyClass::Valley:
        break;
    }
    ++census.valley;
    if (check.unknown_links > 0) return;  // endpoints typed, but gaps remain
    ++census.classified_valleys;
    if (!oracle.reachable(path.front(), path.back())) ++census.necessary_valleys;
  });
  return census;
}

}  // namespace htor::core
