// Failure-injection tests: the wire decoders (BGP messages, path attributes,
// MRT records) must survive arbitrary truncation and byte corruption of
// valid inputs — either parsing successfully or throwing DecodeError, never
// crashing or looping.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "bgp/message.hpp"
#include "gen/internet.hpp"
#include "mrt/reader.hpp"
#include "mrt/rib_view.hpp"
#include "mrt/stream_reader.hpp"
#include "mrt/writer.hpp"
#include "util/rng.hpp"

namespace htor {
namespace {

std::vector<std::uint8_t> valid_update_bytes() {
  bgp::PathAttributes attrs;
  attrs.origin = bgp::Origin::Igp;
  attrs.as_path = bgp::AsPath::sequence({64500, 3356, 1299});
  attrs.local_pref = 120;
  attrs.communities = {bgp::Community(3356, 100), bgp::Community(1299, 50)};
  const auto update = bgp::make_ipv6_update(attrs, IpAddress::parse("2001:db8::1"),
                                            {Prefix::parse("2001:db8:77::/48")});
  return bgp::encode_message(update);
}

std::vector<std::uint8_t> valid_mrt_bytes() {
  const auto net = gen::SyntheticInternet::generate(gen::small_params(17));
  mrt::MrtWriter writer;
  std::size_t written = 0;
  for (const auto& rec : mrt::records_from_rib(net.collect(), 1, "rb", 0)) {
    writer.write(rec);
    if (++written >= 40) break;  // enough structure, small enough to sweep
  }
  return writer.take();
}

// Truncation at every possible length: parse or throw, never hang/crash.
TEST(Robustness, BgpMessageTruncationSweep) {
  const auto bytes = valid_update_bytes();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + static_cast<long>(len));
    ByteReader r(cut);
    EXPECT_THROW(bgp::decode_message(r), DecodeError) << "at length " << len;
  }
  // The untruncated message still parses.
  ByteReader r(bytes);
  EXPECT_NO_THROW(bgp::decode_message(r));
}

TEST(Robustness, MrtTruncationSweep) {
  const auto bytes = valid_mrt_bytes();
  // Sweep cut points across the first few records densely, then stride.
  for (std::size_t len = 1; len < bytes.size(); len += (len < 4096 ? 7 : 997)) {
    std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + static_cast<long>(len));
    mrt::MrtReader reader(cut);
    try {
      while (reader.next()) {
      }
      // Clean EOF is acceptable when the cut fell on a record boundary.
    } catch (const DecodeError&) {
      // Expected for mid-record cuts.
    }
  }
}

// Record *header* corruption mid-file (the earlier sweeps mostly land in
// bodies): both readers must raise a clean DecodeError — never silently stop
// or hand back a partial RIB.
TEST(Robustness, TruncatedHeaderMidFileThrows) {
  auto bytes = valid_mrt_bytes();
  // 7 stray bytes after the last valid record: a header cut short.
  bytes.insert(bytes.end(), {0x12, 0x34, 0x56, 0x78, 0x00, 0x0d, 0x00});

  mrt::MrtReader reader(bytes);
  EXPECT_THROW(
      {
        while (reader.next()) {
        }
      },
      DecodeError);
  EXPECT_THROW(mrt::rib_from_records(mrt::read_all(bytes)), DecodeError);

  // Same file on disk through the streaming reader.
  const std::string path = ::testing::TempDir() + "/trunc_header.mrt";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out);
    out.write(reinterpret_cast<const char*>(bytes.data()), static_cast<long>(bytes.size()));
  }
  EXPECT_THROW(mrt::rib_from_stream(path), DecodeError);
  std::remove(path.c_str());
}

TEST(Robustness, GarbageHeaderLengthMidFileThrows) {
  auto bytes = valid_mrt_bytes();
  // A structurally complete header whose length field points far past EOF.
  bytes.insert(bytes.end(),
               {0x00, 0x00, 0x00, 0x01, 0x00, 0x0d, 0x00, 0x02, 0xff, 0xff, 0xff, 0xfe});

  mrt::MrtReader reader(bytes);
  EXPECT_THROW(
      {
        while (reader.next()) {
        }
      },
      DecodeError);
  EXPECT_THROW(mrt::rib_from_records(mrt::read_all(bytes)), DecodeError);

  const std::string path = ::testing::TempDir() + "/garbage_header.mrt";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out);
    out.write(reinterpret_cast<const char*>(bytes.data()), static_cast<long>(bytes.size()));
  }
  EXPECT_THROW(mrt::rib_from_stream(path), DecodeError);
  std::remove(path.c_str());
}

// Regression for the census fail-fast path: a RIB dump truncated mid-record
// must abort the load -> parse -> join pipeline with DecodeError instead of
// yielding a partially parsed RIB.  This is the exact code path `hybridtor
// census` runs on its <rib.mrt> argument, including the on-disk round trip.
TEST(Robustness, TruncatedRibFileFailsFast) {
  const auto bytes = valid_mrt_bytes();
  const std::string path = ::testing::TempDir() + "/truncated_rib.mrt";

  // A cut inside the second record's body: the MRT framing (12-byte header
  // plus declared length) makes the truncation detectable.
  const std::size_t cut = bytes.size() - 5;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out);
    out.write(reinterpret_cast<const char*>(bytes.data()), static_cast<long>(cut));
  }

  const auto data = mrt::load_file(path);
  ASSERT_EQ(data.size(), cut);
  EXPECT_THROW(mrt::rib_from_records(mrt::read_all(data)), DecodeError);

  // The sharded join shows the same discipline.
  ThreadPool pool(4);
  EXPECT_THROW(mrt::rib_from_records(mrt::read_all(data), pool), DecodeError);

  std::remove(path.c_str());
}

// Single-byte corruption: every outcome must be a clean parse or DecodeError.
class BgpCorruption : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BgpCorruption, SingleByteFlips) {
  const auto original = valid_update_bytes();
  Rng rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    auto bytes = original;
    const std::size_t pos = rng.index(bytes.size());
    bytes[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform(0, 7));
    ByteReader r(bytes);
    try {
      const auto msg = bgp::decode_message(r);
      (void)msg;  // a benign flip (e.g. inside an ASN) may still parse
    } catch (const DecodeError&) {
    } catch (const InvalidArgument&) {
      // some flips hit semantic validation instead of framing
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BgpCorruption, ::testing::Values(1, 2, 3));

class MrtCorruption : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MrtCorruption, SingleByteFlips) {
  const auto original = valid_mrt_bytes();
  Rng rng(GetParam());
  for (int trial = 0; trial < 120; ++trial) {
    auto bytes = original;
    const std::size_t pos = rng.index(bytes.size());
    bytes[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform(0, 7));
    mrt::MrtReader reader(bytes);
    try {
      std::size_t records = 0;
      while (reader.next()) {
        // Defensive bound: corruption must not manufacture unbounded output.
        ASSERT_LT(++records, 100000u);
      }
    } catch (const DecodeError&) {
    } catch (const InvalidArgument&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MrtCorruption, ::testing::Values(4, 5, 6));

// The RIB join layer on top must show the same discipline.
TEST(Robustness, RibJoinOnCorruptedDumps) {
  const auto original = valid_mrt_bytes();
  Rng rng(9);
  for (int trial = 0; trial < 60; ++trial) {
    auto bytes = original;
    for (int flips = 0; flips < 4; ++flips) {
      bytes[rng.index(bytes.size())] ^= static_cast<std::uint8_t>(rng.uniform(1, 255));
    }
    try {
      const auto rib = mrt::rib_from_records(mrt::read_all(bytes));
      (void)rib;
    } catch (const DecodeError&) {
    } catch (const InvalidArgument&) {
    }
  }
}

// Garbage from nothing: random byte soup must never parse as a full BGP
// message stream without the all-ones marker.
TEST(Robustness, RandomBytesRejected) {
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> bytes(64);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
    bytes[0] = 0xfe;  // guarantee a broken marker
    ByteReader r(bytes);
    EXPECT_THROW(bgp::decode_message(r), DecodeError);
  }
}

}  // namespace
}  // namespace htor
