// hybridtor — command-line front end for the library.
//
// Subcommands:
//   generate <outdir> [seed]   generate the synthetic Internet and write
//                              rib.mrt (TABLE_DUMP_V2), irr.txt (RPSL) and
//                              truth.csv (planted ground truth) into outdir
//   census  <rib.mrt> <irr.txt>
//                              run the paper's full census on on-disk data
//                              (works on real RouteViews TABLE_DUMP_V2 files
//                              plus any IRR text dump)
//   inspect <rib.mrt>          per-record summary of an MRT file
//
// The census subcommand is the adoption path for real data: it consumes
// nothing but the two files.
//
// `--jobs N` (anywhere on the command line) sizes the census thread pool:
// 1 (the default) runs fully sequential, 0 uses one worker per hardware
// thread.  Every value produces byte-identical reports.
//
// `census` ingests the MRT file by streaming it: headers are scanned
// sequentially, record bodies decode in parallel batches, and routes join
// straight into the RIB, so peak memory stays one batch deep instead of
// ~3× the decoded RIB.  `--no-stream` selects the legacy load-all path;
// both paths produce byte-identical reports.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/census_report.hpp"
#include "core/pipeline.hpp"
#include "gen/internet.hpp"
#include "mrt/reader.hpp"
#include "mrt/stream_reader.hpp"
#include "mrt/writer.hpp"
#include "rpsl/object.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace htor;

/// Strict numeric parse for --jobs ("0" = auto is legal; "abc"/"4x"/"-1" is
/// not, and neither is a value no machine has threads for).
constexpr std::size_t kMaxJobs = 4096;

std::optional<std::size_t> parse_jobs(const std::string& value) {
  const bool digits_only =
      !value.empty() &&
      value.find_first_not_of("0123456789") == std::string::npos;
  const unsigned long long parsed = digits_only ? std::strtoull(value.c_str(), nullptr, 10) : 0;
  if (!digits_only || parsed > kMaxJobs) {
    std::cerr << "error: --jobs expects an integer in [0, " << kMaxJobs << "], got '" << value
              << "'\n";
    return std::nullopt;
  }
  return static_cast<std::size_t>(parsed);
}

int usage() {
  std::cerr << "usage:\n"
               "  hybridtor generate <outdir> [seed]\n"
               "  hybridtor census [--jobs N] [--no-stream] <rib.mrt> <irr.txt>\n"
               "  hybridtor inspect <rib.mrt>\n";
  return 2;
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

int cmd_generate(const std::string& outdir, std::uint64_t seed) {
  std::error_code ec;
  std::filesystem::create_directories(outdir, ec);
  if (ec) {
    throw Error("cannot create output directory '" + outdir + "': " + ec.message());
  }

  gen::GenParams params;
  params.seed = seed;
  std::cout << "generating (seed " << seed << ", " << params.total_ases() << " ASes)...\n";
  const auto net = gen::SyntheticInternet::generate(params);

  mrt::MrtWriter writer;
  for (const auto& record :
       mrt::records_from_rib(net.collect(), 0x0a0a0a0au, "hybridtor", 1281052800u)) {
    writer.write(record);
  }
  writer.save(outdir + "/rib.mrt");
  std::cout << "wrote " << outdir << "/rib.mrt (" << writer.data().size() << " bytes)\n";

  std::ofstream irr(outdir + "/irr.txt");
  if (!irr) throw Error("cannot write " + outdir + "/irr.txt");
  irr << net.irr_dump();
  std::cout << "wrote " << outdir << "/irr.txt\n";

  std::ofstream truth(outdir + "/truth.csv");
  truth << "as_a,as_b,rel_v4,rel_v6,hybrid\n";
  net.graph().for_each_link(IpVersion::V4, [&](const LinkKey& key) {
    const auto r4 = net.truth(IpVersion::V4).get(key.first, key.second);
    const auto r6 = net.truth(IpVersion::V6).get(key.first, key.second);
    truth << key.first << ',' << key.second << ',' << to_string(r4) << ',' << to_string(r6)
          << ',' << (r6 != Relationship::Unknown && r4 != r6 ? 1 : 0) << '\n';
  });
  std::cout << "wrote " << outdir << "/truth.csv\n";
  return 0;
}

int cmd_census(const std::string& mrt_path, const std::string& irr_path, std::size_t jobs,
               bool streaming) {
  // Fail fast on unreadable or truncated input: no partial census is ever
  // printed — the single diagnostic below names the file and the reason.
  ThreadPool pool(jobs);
  core::IngestOptions ingest;
  ingest.streaming = streaming;
  mrt::ObservedRib rib;
  try {
    rib = core::load_rib(mrt_path, pool, ingest);
  } catch (const Error& e) {
    throw Error("census aborted: " + mrt_path + ": " + e.what());
  }
  const auto dict = rpsl::mine_dictionary(rpsl::parse_objects(read_text_file(irr_path)));
  std::cout << mrt_path << ": " << rib.size() << " routes ("
            << rib.size_of(IpVersion::V6) << " IPv6); dictionary: " << dict.size()
            << " communities from " << dict.documented_asns().size() << " ASes\n\n";

  core::InferenceConfig config;
  config.threads = jobs;
  const auto census = core::run_census(rib, dict, config, pool);

  Table t({"metric", "value"});
  t.row({"IPv6 AS paths", std::to_string(census.v6_paths)});
  t.row({"IPv6 AS links", std::to_string(census.v6_links)});
  t.row({"IPv6 links with relationship",
         fmt_pct(census.v6_coverage.covered_links, census.v6_coverage.observed_links)});
  t.row({"dual-stack links", std::to_string(census.dual_links)});
  t.row({"dual-stack typed in both planes", std::to_string(census.dual_coverage.covered_links)});
  t.row({"hybrid links", std::to_string(census.hybrids.hybrids.size()) + " (" +
                             fmt_pct(census.hybrids.hybrids.size(),
                                     census.hybrids.dual_links_both_known) +
                             " of typed duals)"});
  t.row({"  p2p(v4)/transit(v6)", std::to_string(census.hybrids.peer_v4_transit_v6)});
  t.row({"  transit(v4)/p2p(v6)", std::to_string(census.hybrids.transit_v4_peer_v6)});
  t.row({"  reversals", std::to_string(census.hybrids.reversals)});
  t.row({"IPv6 paths crossing a hybrid",
         fmt_pct(census.hybrids.v6_paths_with_hybrid, census.hybrids.v6_paths_total)});
  t.row({"IPv6 valley paths",
         fmt_pct(census.v6_valleys.valley, census.v6_valleys.paths)});
  t.row({"  reachability-required",
         fmt_pct(census.v6_valleys.necessary_valleys, census.v6_valleys.classified_valleys)});
  t.print(std::cout);

  if (!census.hybrids.hybrids.empty()) {
    std::cout << "\ntop hybrid links by IPv6 path visibility:\n";
    Table top({"link", "v4", "v6", "paths"});
    for (std::size_t i = 0; i < census.hybrids.hybrids.size() && i < 10; ++i) {
      const auto& f = census.hybrids.hybrids[i];
      top.row({"AS" + std::to_string(f.link.first) + "-AS" + std::to_string(f.link.second),
               to_string(f.rel_v4), to_string(f.rel_v6),
               std::to_string(f.v6_path_visibility)});
    }
    top.print(std::cout);
  }
  return 0;
}

int cmd_inspect(const std::string& mrt_path) {
  // Streamed record-at-a-time decode: constant memory however large the dump.
  mrt::MrtStreamReader stream(mrt_path);
  std::size_t pit = 0;
  std::size_t rib4 = 0;
  std::size_t rib6 = 0;
  std::size_t bgp4mp = 0;
  std::size_t raw = 0;
  std::size_t entries = 0;
  while (auto framed = stream.next()) {
    const auto record =
        mrt::decode_record_body(framed->timestamp, framed->type, framed->subtype, framed->body);
    if (std::holds_alternative<mrt::PeerIndexTable>(record.body)) {
      ++pit;
    } else if (const auto* r = std::get_if<mrt::RibPrefixRecord>(&record.body)) {
      (r->prefix.version() == IpVersion::V4 ? rib4 : rib6) += 1;
      entries += r->entries.size();
    } else if (std::holds_alternative<mrt::Bgp4mpMessage>(record.body)) {
      ++bgp4mp;
    } else {
      ++raw;
    }
  }
  std::cout << mrt_path << ": " << stream.bytes_read() << " bytes, " << stream.records_read()
            << " records\n"
            << "  PEER_INDEX_TABLE: " << pit << "\n"
            << "  RIB_IPV4_UNICAST: " << rib4 << "\n"
            << "  RIB_IPV6_UNICAST: " << rib6 << "\n"
            << "  BGP4MP:           " << bgp4mp << "\n"
            << "  other/raw:        " << raw << "\n"
            << "  RIB entries:      " << entries << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Split the command line into positionals and the --jobs option, which is
  // accepted anywhere (before or after the subcommand's file arguments).
  std::vector<std::string> args;
  std::size_t jobs = 1;
  bool streaming = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--no-stream") {
      streaming = false;
      continue;
    }
    if (arg == "--jobs" || arg == "-j") {
      if (i + 1 >= argc) {
        std::cerr << "error: --jobs requires a value\n";
        return 2;
      }
      const auto parsed = parse_jobs(argv[++i]);
      if (!parsed) return 2;
      jobs = *parsed;
      continue;
    }
    if (arg.rfind("--jobs=", 0) == 0) {
      const auto parsed = parse_jobs(arg.substr(7));
      if (!parsed) return 2;
      jobs = *parsed;
      continue;
    }
    args.push_back(arg);
  }
  if (args.empty()) return usage();
  const std::string& cmd = args[0];
  try {
    if (cmd == "generate" && args.size() >= 2) {
      const std::uint64_t seed = args.size() >= 3 ? std::strtoull(args[2].c_str(), nullptr, 10) : 42;
      return cmd_generate(args[1], seed);
    }
    if (cmd == "census" && args.size() == 3) return cmd_census(args[1], args[2], jobs, streaming);
    if (cmd == "inspect" && args.size() == 2) return cmd_inspect(args[1]);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
