#include "topology/tier.hpp"

#include <unordered_set>

#include "topology/customer_tree.hpp"

namespace htor {

const char* to_string(Tier tier) {
  switch (tier) {
    case Tier::Tier1: return "tier-1";
    case Tier::Tier2: return "tier-2";
    case Tier::Tier3: return "tier-3";
    case Tier::Stub: return "stub";
  }
  return "?";
}

std::unordered_map<Asn, Tier> classify_tiers(const RelationshipMap& rels,
                                             const TierParams& params) {
  std::unordered_set<Asn> ases;
  rels.for_each([&](const LinkKey& key, Relationship) {
    ases.insert(key.first);
    ases.insert(key.second);
  });

  CustomerTreeAnalysis trees(rels);
  std::unordered_map<Asn, Tier> out;
  out.reserve(ases.size());
  for (Asn asn : ases) {
    const bool has_provider = !rels.providers(asn).empty();
    const bool has_customer = !rels.customers(asn).empty();
    const std::size_t cone = has_customer ? trees.cone_size(asn) : 0;
    Tier tier;
    if (!has_provider && cone >= params.tier1_min_cone) {
      tier = Tier::Tier1;
    } else if (!has_customer) {
      tier = Tier::Stub;
    } else if (cone >= params.tier2_min_cone) {
      tier = Tier::Tier2;
    } else {
      tier = Tier::Tier3;
    }
    out.emplace(asn, tier);
  }
  return out;
}

}  // namespace htor
