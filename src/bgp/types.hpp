// Protocol constants for BGP-4 (RFC 4271) and its multiprotocol extensions
// (RFC 4760), 4-byte ASNs (RFC 6793), communities (RFC 1997) and large
// communities (RFC 8092).
#pragma once

#include <cstdint>

namespace htor::bgp {

enum class MessageType : std::uint8_t {
  Open = 1,
  Update = 2,
  Notification = 3,
  Keepalive = 4,
};

enum class PathAttrType : std::uint8_t {
  Origin = 1,
  AsPath = 2,
  NextHop = 3,
  Med = 4,
  LocalPref = 5,
  AtomicAggregate = 6,
  Aggregator = 7,
  Communities = 8,
  MpReachNlri = 14,
  MpUnreachNlri = 15,
  LargeCommunities = 32,
};

enum class Origin : std::uint8_t { Igp = 0, Egp = 1, Incomplete = 2 };

inline const char* to_string(Origin o) {
  switch (o) {
    case Origin::Igp: return "IGP";
    case Origin::Egp: return "EGP";
    case Origin::Incomplete: return "INCOMPLETE";
  }
  return "?";
}

/// Address Family Identifiers (RFC 4760).
enum class Afi : std::uint16_t { Ipv4 = 1, Ipv6 = 2 };

/// Subsequent Address Family Identifiers.
enum class Safi : std::uint8_t { Unicast = 1, Multicast = 2 };

/// Path-attribute flag bits.
inline constexpr std::uint8_t kAttrFlagOptional = 0x80;
inline constexpr std::uint8_t kAttrFlagTransitive = 0x40;
inline constexpr std::uint8_t kAttrFlagPartial = 0x20;
inline constexpr std::uint8_t kAttrFlagExtendedLength = 0x10;

/// BGP message header: 16-byte marker + 2-byte length + 1-byte type.
inline constexpr std::size_t kMessageHeaderSize = 19;
inline constexpr std::size_t kMaxMessageSize = 4096;

}  // namespace htor::bgp
