// Process-wide sketch telemetry: the probabilistic counterpart of
// obs::MetricsRegistry for values that are *sets*, not scalars.
//
// Exact per-entity counting (every AS, prefix, and link seen during ingest)
// does not hold at internet scale — ~1M prefixes × hundreds of peers — so
// this owner keeps HyperLogLogs for unique-entity cardinality, count-min
// sketches for heavy hitters (busiest origin ASes, most-voted links), and a
// Bloom seen-set pre-filter over links.  Memory is fixed no matter how big
// the stream gets (~80 KiB total at the default shapes; see memory_bytes()).
//
// Feed discipline mirrors core/parallel.hpp: hot paths accumulate into
// per-shard IngestBundles with no locking, and absorb() merges them in shard
// order.  HLL merge (max) and Bloom merge (or) are order-independent, so
// estimates are byte-identical at every --jobs value; the CMS counter plane
// is order-independent too, only its heavy-hitter *candidate* set depends on
// feed order — which is why the shard boundaries are fixed and
// feed_link_votes takes a caller-sorted stream.
//
// Everything surfaces as `htor_sketch_*` callback metrics on
// MetricsRegistry::global(), so GET /metrics and /v1/metrics pick the
// estimates up without the daemon knowing any sketch exists.
#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <vector>

#include "netbase/prefix.hpp"
#include "obs/metrics.hpp"
#include "obs/sketch/bloom.hpp"
#include "obs/sketch/cms.hpp"
#include "obs/sketch/hll.hpp"

namespace htor::obs::sketch {

/// Item derivations — the single definition of how census entities map into
/// the uint64 sketch item space, shared by ingest, the live tier, and tests.
inline std::uint64_t as_item(std::uint32_t asn) { return asn; }

/// Canonical (unordered) link identity: smaller ASN in the high word.
inline std::uint64_t link_item(std::uint32_t a, std::uint32_t b) {
  const std::uint32_t lo = std::min(a, b);
  const std::uint32_t hi = std::max(a, b);
  return (std::uint64_t{lo} << 32) | hi;
}

/// Prefix identity from the canonical (version, length, network bytes) form.
inline std::uint64_t prefix_item(const Prefix& prefix) {
  std::uint64_t h = hash_mix(static_cast<std::uint64_t>(prefix.version()) << 8 |
                                 prefix.length(),
                             0);
  for (std::uint8_t b : prefix.address().bytes()) h = hash_mix(h, b);
  return h;
}

/// Per-shard accumulator for the ingest hot path: built inside a shard_map
/// lambda with no locking, merged into the global Telemetry in shard order.
struct IngestBundle {
  Hll ases{Hll::kDefaultPrecision, kTelemetrySeed};
  Hll prefixes{Hll::kDefaultPrecision, kTelemetrySeed};
  Hll links{Hll::kDefaultPrecision, kTelemetrySeed};
  Cms origins{Cms::kDefaultWidthLog2, Cms::kDefaultDepth, Cms::kDefaultTopK, kTelemetrySeed};

  /// Record one observed route: its prefix, every AS on the (collapsed)
  /// path, every adjacent link, and the origin AS (last hop) as one more
  /// route for that origin.
  void add_route(const Prefix& prefix, const std::vector<std::uint32_t>& as_path) {
    prefixes.add(prefix_item(prefix));
    std::uint32_t prev = 0;
    bool have_prev = false;
    for (const std::uint32_t asn : as_path) {
      if (have_prev && asn == prev) continue;  // prepending collapses
      ases.add(as_item(asn));
      if (have_prev) links.add(link_item(prev, asn));
      prev = asn;
      have_prev = true;
    }
    if (have_prev) origins.update(as_item(prev));
  }

  void merge(const IngestBundle& other) {
    ases.merge(other.ases);
    prefixes.merge(other.prefixes);
    links.merge(other.links);
    origins.merge(other.origins);
  }
};

/// Global owner of the process's sketches.  All access is mutex-guarded —
/// the hot paths touch it once per shard (absorb) or once per applied route
/// (the Bloom pre-filter, which runs on the sequential apply leg anyway).
class Telemetry {
 public:
  /// Never destroyed, like MetricsRegistry::global(): callback metrics
  /// registered in the constructor stay valid through static teardown.
  static Telemetry& global();

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Merge one shard's accumulator.  Call in shard order.
  void absorb(const IngestBundle& bundle);

  /// Bloom "seen this link?" pre-filter: inserts and returns prior
  /// membership, counting the answer as hit or miss.
  bool note_link_seen(std::uint64_t link);

  /// Feed the post-merge community-vote tallies (item = packed LinkKey,
  /// weight = total votes).  The caller sorts by item first so the CMS
  /// heavy-hitter candidate set never depends on map iteration order.
  void feed_link_votes(const std::vector<std::pair<std::uint64_t, std::uint64_t>>& votes);

  /// Publish the latest live-census epoch's churn cardinality estimates
  /// (from the epoch-scoped HLLs the live tier owns).
  void set_epoch_churn(std::int64_t ases, std::int64_t prefixes, std::int64_t links);

  /// Everything the census report / `inspect` heavy-hitters table needs,
  /// captured under one lock.
  struct Snapshot {
    std::int64_t unique_ases = 0;
    std::int64_t unique_prefixes = 0;
    std::int64_t unique_links = 0;
    std::uint64_t bloom_hits = 0;
    std::uint64_t bloom_misses = 0;
    std::uint64_t origin_routes_total = 0;  ///< CMS stream weight (= routes fed)
    std::vector<Cms::HeavyHitter> top_origins;
    std::vector<Cms::HeavyHitter> top_link_votes;
    std::size_t memory_bytes = 0;
  };
  Snapshot snapshot() const;

  /// Zero every sketch and counter (a fresh census run, test isolation).
  /// Callback registrations persist.
  void reset();

 private:
  Telemetry();

  mutable std::mutex mutex_;
  Hll ases_;
  Hll prefixes_;
  Hll links_;
  Cms origins_;
  Cms link_votes_;
  Bloom seen_links_;
  std::uint64_t bloom_hits_ = 0;
  std::uint64_t bloom_misses_ = 0;
  std::int64_t epoch_churn_ases_ = 0;
  std::int64_t epoch_churn_prefixes_ = 0;
  std::int64_t epoch_churn_links_ = 0;

  std::vector<CallbackMetric> registrations_;
};

}  // namespace htor::obs::sketch
