// End-to-end relationship inference: community dictionary application plus
// LocPrf Rosetta, per address family.
#pragma once

#include "core/community_inference.hpp"
#include "core/rosetta.hpp"
#include "mrt/rib_view.hpp"
#include "topology/path_store.hpp"

namespace htor::core {

struct InferenceConfig {
  CommunityInferenceParams community;
  RosettaParams rosetta;
  bool use_rosetta = true;
};

struct CoverageStats {
  std::size_t observed_links = 0;
  std::size_t covered_links = 0;
  double fraction() const {
    return observed_links == 0
               ? 0.0
               : static_cast<double>(covered_links) / static_cast<double>(observed_links);
  }
};

struct InferredRelationships {
  /// Final relationship maps (communities + Rosetta), one per family.
  RelationshipMap v4;
  RelationshipMap v6;

  CommunityInferenceResult community_v4;
  CommunityInferenceResult community_v6;
  RosettaResult rosetta_v4;
  RosettaResult rosetta_v6;
};

/// Run the full inference over a collector RIB.
InferredRelationships infer_relationships(const mrt::ObservedRib& rib,
                                          const rpsl::CommunityDictionary& dict,
                                          const InferenceConfig& config = {});

/// Distinct AS paths of one family, as a PathStore.
PathStore paths_of(const mrt::ObservedRib& rib, IpVersion af);

/// How many of `links` the map can type.
CoverageStats coverage(const std::vector<LinkKey>& links, const RelationshipMap& rels);

/// Links observed in both families (intersection of the two path link sets).
std::vector<LinkKey> dual_stack_links(const PathStore& v4_paths, const PathStore& v6_paths);

}  // namespace htor::core
