// Fixed-capacity single-producer/single-consumer ring for the live update
// pipeline (live/pipeline.hpp): reader -> decoder -> apply run as overlapping
// stages connected by two of these, with the ring's bounded capacity as the
// backpressure mechanism — a fast producer stalls instead of growing an
// unbounded queue, and a fast consumer waits instead of spinning on a lock.
//
// Concurrency contract: exactly ONE thread calls try_push()/close() and
// exactly ONE thread calls try_pop() over the ring's lifetime.  Under that
// contract the ring is lock-free and wait-free per operation:
//
//   - the producer owns tail_ (plain increments, release-published) and
//     keeps a non-atomic cache of the consumer's head so a push normally
//     touches no shared line but its own;
//   - the consumer owns head_ symmetrically;
//   - slot contents are synchronized by the release/acquire pair on the
//     index that made the slot visible, so the payload type needs no
//     atomicity of its own (moves of vectors/strings are fine).
//
// Indices are free-running 64-bit counters (they never wrap in practice:
// 2^64 records is centuries of updates), masked into the power-of-two slot
// array; occupancy() is exact from either owning thread and a point-in-time
// estimate from anywhere else.
//
// FIFO order is the pipeline's determinism spine: one producer, one
// consumer, one queue means pop order equals push order for ANY capacity
// and ANY interleaving — which is why census state after an update stream
// is byte-identical at ring capacity 2 and 4096.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace htor {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two, floored at 2.  Throws
  /// InvalidArgument on 0 (a ring that can hold nothing deadlocks its
  /// producer by construction).
  explicit SpscRing(std::size_t capacity) {
    if (capacity == 0) throw InvalidArgument("SpscRing capacity must be > 0");
    std::size_t pow2 = 2;
    while (pow2 < capacity) pow2 <<= 1;
    slots_.resize(pow2);
    mask_ = pow2 - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer side.  Moves from `value` and returns true when a slot was
  /// free; leaves `value` untouched and returns false when the ring is full
  /// (the caller decides how to wait — see live::Pipeline's backoff).
  bool try_push(T& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= capacity()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= capacity()) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.  Moves the oldest element into `out` and returns true;
  /// returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head >= cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head >= cached_tail_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Producer signals end-of-stream; after the consumer drains the ring,
  /// done() turns true.  Idempotent.
  void close() { closed_.store(true, std::memory_order_release); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Consumer-side: the producer has closed AND nothing is left to pop.
  /// (Order matters: the closed flag is read first, so a push racing close
  /// can only make done() conservatively false, never skip an element.)
  bool done() const { return closed() && occupancy() == 0; }

  /// Elements currently queued.  Exact from the producer or consumer
  /// thread; a point-in-time estimate from a metrics scrape.
  std::size_t occupancy() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;

  // Producer's cache line: its own index plus a stale copy of the
  // consumer's, so the fast path never reads the consumer's line.  (These
  // atomics are the SPSC protocol itself, not ad-hoc telemetry — lint.py's
  // adhoc-atomic-counter rule carves this file out for exactly that reason;
  // occupancy reaches /metrics via the pipeline's callback gauges.)
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t cached_head_ = 0;

  // Consumer's cache line, symmetric.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  std::uint64_t cached_tail_ = 0;

  alignas(64) std::atomic<bool> closed_{false};
};

}  // namespace htor
