// T4 (§3 ¶2-3): hybrid links sit among tier-1/tier-2 ASes and are highly
// visible: more than 28% of IPv6 AS paths contain at least one hybrid link.
#include <iostream>

#include "harness.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace htor;
  bench::print_header("T4 / bench_sec3_visibility",
                      ">28% of IPv6 paths traverse a hybrid link; hybrids among tier-1/2");

  const auto ds = bench::make_dataset();
  const auto census = core::run_census(ds.rib, ds.dict);
  const auto& h = census.hybrids;

  Table t({"metric", "paper", "measured"});
  t.row({"IPv6 paths with >=1 hybrid link", ">28%",
         std::to_string(h.v6_paths_with_hybrid) + " / " + std::to_string(h.v6_paths_total) +
             " (" + fmt_pct(h.v6_paths_with_hybrid, h.v6_paths_total) + ")"});
  t.print(std::cout);

  std::cout << "\nhybrid endpoint tiers (each link contributes two endpoints):\n";
  std::size_t total_endpoints = 0;
  for (const auto& [tier, count] : h.endpoint_tiers) {
    (void)tier;
    total_endpoints += count;
  }
  Table tiers({"tier", "endpoints", "share"});
  for (Tier tier : {Tier::Tier1, Tier::Tier2, Tier::Tier3, Tier::Stub}) {
    auto it = h.endpoint_tiers.find(tier);
    const std::size_t count = it == h.endpoint_tiers.end() ? 0 : it->second;
    tiers.row({to_string(tier), std::to_string(count), fmt_pct(count, total_endpoints)});
  }
  tiers.print(std::cout);

  std::cout << "\ntop 10 hybrid links by IPv6 path visibility:\n";
  Table top({"link", "rel v4", "rel v6", "IPv6 paths"});
  for (std::size_t i = 0; i < h.hybrids.size() && i < 10; ++i) {
    const auto& f = h.hybrids[i];
    top.row({"AS" + std::to_string(f.link.first) + " - AS" + std::to_string(f.link.second),
             to_string(f.rel_v4), to_string(f.rel_v6), std::to_string(f.v6_path_visibility)});
  }
  top.print(std::cout);
  return 0;
}
