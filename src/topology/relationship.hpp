// AS business relationships and the per-address-family relationship map.
//
// A relationship is always expressed *directionally*: rel(a, b) is the role b
// plays for a.  P2C means "b is a's customer" (a provides transit to b);
// C2P means "b is a's provider"; P2P peers; S2S siblings (same organization).
// The map stores one entry per unordered link and exposes both directions.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netbase/asn.hpp"
#include "netbase/ip.hpp"

namespace htor {

enum class Relationship : std::uint8_t {
  P2C,      ///< provider-to-customer: the other AS is my customer
  C2P,      ///< customer-to-provider: the other AS is my provider
  P2P,      ///< settlement-free peering
  S2S,      ///< sibling (same organization)
  Unknown,  ///< not inferred / not covered
};

/// The same link seen from the other endpoint.
Relationship reverse(Relationship rel);

const char* to_string(Relationship rel);

/// True for P2C/C2P (transit) relationships.
inline bool is_transit(Relationship rel) {
  return rel == Relationship::P2C || rel == Relationship::C2P;
}

/// Unordered AS pair, stored canonically with first < second.
struct LinkKey {
  Asn first = 0;
  Asn second = 0;

  LinkKey() = default;
  LinkKey(Asn a, Asn b) : first(a < b ? a : b), second(a < b ? b : a) {}

  friend bool operator==(const LinkKey&, const LinkKey&) = default;
  friend auto operator<=>(const LinkKey&, const LinkKey&) = default;
};

struct LinkKeyHash {
  std::size_t operator()(const LinkKey& k) const {
    return std::hash<std::uint64_t>()(static_cast<std::uint64_t>(k.first) << 32 | k.second);
  }
};

/// Relationship map for one address family.
class RelationshipMap {
 public:
  /// Record rel(a, b); the reverse direction is implied.  Overwrites.
  void set(Asn a, Asn b, Relationship rel);

  /// rel(a, b), Relationship::Unknown when the link is not present.
  Relationship get(Asn a, Asn b) const;

  bool contains(Asn a, Asn b) const { return entries_.count(LinkKey(a, b)) != 0; }
  bool contains(const LinkKey& key) const { return entries_.count(key) != 0; }

  void erase(Asn a, Asn b) { entries_.erase(LinkKey(a, b)); }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Visit each link once as (key, rel-of-key.first-toward-key.second).
  void for_each(const std::function<void(const LinkKey&, Relationship)>& fn) const;

  /// All customers of `asn` (ASes x with rel(asn, x) == P2C).
  std::vector<Asn> customers(Asn asn) const;
  /// All providers of `asn`.
  std::vector<Asn> providers(Asn asn) const;
  /// All peers of `asn`.
  std::vector<Asn> peers(Asn asn) const;

  /// Count of links by relationship type (counted once per link, with the
  /// canonical orientation collapsed: P2C and C2P count as transit).
  struct Counts {
    std::size_t transit = 0;
    std::size_t peering = 0;
    std::size_t sibling = 0;
    std::size_t unknown = 0;
  };
  Counts counts() const;

 private:
  // Value is rel(key.first -> key.second).
  std::unordered_map<LinkKey, Relationship, LinkKeyHash> entries_;
  // Secondary index for customers()/providers()/peers().
  std::unordered_map<Asn, std::vector<Asn>> adjacency_;

  friend class RelationshipMapBuilderAccess;
  void index_add(Asn a, Asn b);
};

}  // namespace htor
