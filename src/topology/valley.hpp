// Valley-free rule (Gao 2001) over relationship-annotated AS paths.
//
// A path is valley-free when, read from either end, its link relationships
// match  c2p* (p2p)? p2c*  — i.e. it climbs customer-to-provider links, may
// cross at most one peering link at the top, and then descends
// provider-to-customer links.  Sibling links are transparent.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "netbase/asn.hpp"
#include "topology/relationship.hpp"

namespace htor {

enum class PathPolicyClass : std::uint8_t {
  ValleyFree,   ///< conforms to the valley-free rule
  Valley,       ///< violates the rule ("valley path" in the paper)
  Incomplete,   ///< at least one link has Relationship::Unknown
};

struct ValleyCheckResult {
  PathPolicyClass cls = PathPolicyClass::ValleyFree;
  /// Index i of the first offending link (p[i], p[i+1]) for Valley paths.
  std::optional<std::size_t> first_violation;
  /// Number of peering links crossed.
  std::size_t peer_links = 0;
  /// Number of links with Unknown relationship.
  std::size_t unknown_links = 0;
};

/// Relationship oracle: rel(a, b) as defined in relationship.hpp.
using RelationshipFn = std::function<Relationship(Asn, Asn)>;

/// Classify `path` (adjacent duplicate ASNs — prepending — are ignored).
ValleyCheckResult check_valley_free(const std::vector<Asn>& path, const RelationshipFn& rel);

/// Convenience overload using a RelationshipMap.
ValleyCheckResult check_valley_free(const std::vector<Asn>& path, const RelationshipMap& rels);

/// True when the check yields ValleyFree (Incomplete counts as not
/// valley-free only if `strict`).
bool is_valley_free(const std::vector<Asn>& path, const RelationshipMap& rels,
                    bool strict = false);

}  // namespace htor
