// The paper's Figure 2 experiment: start from a conventionally-inferred
// (misinferred) IPv6 relationship map and progressively replace the k most
// path-visible hybrid links with their correct IPv6 relationships, tracking
// the average shortest valley-free path and diameter of the union of IPv6
// customer trees at every step.
#pragma once

#include <cstddef>
#include <vector>

#include "core/hybrid.hpp"
#include "topology/customer_tree.hpp"
#include "topology/relationship.hpp"

namespace htor::core {

struct CorrectionStep {
  std::size_t corrected = 0;  ///< hybrid links fixed so far (0 = baseline)
  CustomerTreeAnalysis::Metrics metrics;
};

/// `baseline_v6` is the misinferred map (e.g. Gao over mixed-family paths);
/// `hybrids` must be sorted by visibility (as HybridReport produces) and
/// carry the correct IPv6 relationship in rel_v6.  Returns max_corrections+1
/// steps, step 0 being the untouched baseline.
std::vector<CorrectionStep> correction_experiment(const RelationshipMap& baseline_v6,
                                                  const std::vector<HybridFinding>& hybrids,
                                                  std::size_t max_corrections = 20);

}  // namespace htor::core
