// Sketch-layer microbenchmarks plus the 100k-AS ingest before/after.
//
// The BM_Hll* / BM_Cms* / BM_Bloom* benches time the per-item hot paths the
// ingest shards run (one add/update/insert per route entity) and the merge
// step the shard-order absorb pays per shard.  The BM_Ingest100k* pair is
// the exact→sketch trajectory the telemetry layer exists for: counting the
// unique entities of a ≥100k-AS RIB with exact hash sets versus with one
// IngestBundle, with the resident bytes of each reported as a counter —
// sketch memory is fixed (~80 KiB of HLL/CMS state) no matter how large the
// stream, while the exact sets grow with the census.
//
// BM_Hll*/BM_Cms* double as the CTest bench-smoke step (the ASan CI job
// runs them with --benchmark_filter), so they must stay self-contained and
// fast: the 100k dataset is built lazily only when an ingest bench runs.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "gen/internet.hpp"
#include "mrt/rib_view.hpp"
#include "obs/sketch/bloom.hpp"
#include "obs/sketch/cms.hpp"
#include "obs/sketch/hll.hpp"
#include "obs/sketch/telemetry.hpp"

namespace {

using namespace htor;
using namespace htor::obs::sketch;

constexpr std::size_t kItems = 1 << 16;

std::vector<std::uint64_t> make_items(std::uint64_t base) {
  std::vector<std::uint64_t> items;
  items.reserve(kItems);
  for (std::size_t i = 0; i < kItems; ++i) items.push_back(splitmix64(base + i));
  return items;
}

void BM_HllAdd(benchmark::State& state) {
  const auto items = make_items(1);
  Hll hll(Hll::kDefaultPrecision, kTelemetrySeed);
  for (auto _ : state) {
    for (const std::uint64_t item : items) hll.add(item);
    benchmark::DoNotOptimize(hll);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * items.size()));
}
BENCHMARK(BM_HllAdd);

void BM_HllMerge(benchmark::State& state) {
  Hll a(Hll::kDefaultPrecision, kTelemetrySeed);
  Hll b(Hll::kDefaultPrecision, kTelemetrySeed);
  for (const std::uint64_t item : make_items(2)) a.add(item);
  for (const std::uint64_t item : make_items(3)) b.add(item);
  for (auto _ : state) {
    Hll merged = a;
    merged.merge(b);
    benchmark::DoNotOptimize(merged);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * a.memory_bytes()));
}
BENCHMARK(BM_HllMerge);

void BM_HllEstimate(benchmark::State& state) {
  Hll hll(Hll::kDefaultPrecision, kTelemetrySeed);
  for (const std::uint64_t item : make_items(4)) hll.add(item);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hll.estimate());
  }
}
BENCHMARK(BM_HllEstimate);

void BM_CmsUpdate(benchmark::State& state) {
  const auto items = make_items(5);
  Cms cms(Cms::kDefaultWidthLog2, Cms::kDefaultDepth, Cms::kDefaultTopK, kTelemetrySeed);
  for (auto _ : state) {
    for (const std::uint64_t item : items) cms.update(item & 0xffff);  // skewed stream
    benchmark::DoNotOptimize(cms);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * items.size()));
}
BENCHMARK(BM_CmsUpdate);

void BM_CmsMerge(benchmark::State& state) {
  Cms a(Cms::kDefaultWidthLog2, Cms::kDefaultDepth, Cms::kDefaultTopK, kTelemetrySeed);
  Cms b(Cms::kDefaultWidthLog2, Cms::kDefaultDepth, Cms::kDefaultTopK, kTelemetrySeed);
  for (const std::uint64_t item : make_items(6)) a.update(item & 0xffff);
  for (const std::uint64_t item : make_items(7)) b.update(item & 0xffff);
  for (auto _ : state) {
    Cms merged = a;
    merged.merge(b);
    benchmark::DoNotOptimize(merged);
  }
}
BENCHMARK(BM_CmsMerge);

void BM_BloomInsert(benchmark::State& state) {
  const auto items = make_items(8);
  Bloom bloom(1 << 20, 0.01, kTelemetrySeed);
  for (auto _ : state) {
    for (const std::uint64_t item : items) benchmark::DoNotOptimize(bloom.insert(item));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * items.size()));
}
BENCHMARK(BM_BloomInsert);

void BM_BloomQuery(benchmark::State& state) {
  const auto members = make_items(9);
  const auto probes = make_items(10);  // ~50/50 hit/miss at this load
  Bloom bloom(1 << 20, 0.01, kTelemetrySeed);
  for (const std::uint64_t item : members) bloom.insert(item);
  for (auto _ : state) {
    for (const std::uint64_t item : probes) benchmark::DoNotOptimize(bloom.contains(item));
    for (const std::uint64_t item : members) benchmark::DoNotOptimize(bloom.contains(item));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * (probes.size() + members.size())));
}
BENCHMARK(BM_BloomQuery);

// ------------------------------------------------ 100k-AS ingest pair

/// The ≥100k-AS RIB, built once and only when an ingest bench runs: the
/// scale generator plus the O(N·vantages) collector keep this in seconds.
const mrt::ObservedRib& scale_rib() {
  static const mrt::ObservedRib rib = [] {
    const auto net = gen::SyntheticInternet::generate(gen::scale_params(100'100, 42));
    return net.collect_scaled(2);
  }();
  return rib;
}

void BM_Ingest100kExactCount(benchmark::State& state) {
  const auto& rib = scale_rib();
  std::size_t resident = 0;
  for (auto _ : state) {
    std::unordered_set<std::uint64_t> ases;
    std::unordered_set<std::uint64_t> prefixes;
    std::unordered_set<std::uint64_t> links;
    for (const auto& route : rib.routes()) {
      prefixes.insert(prefix_item(route.prefix));
      std::uint32_t prev = 0;
      bool have_prev = false;
      for (const std::uint32_t asn : route.as_path) {
        if (have_prev && asn == prev) continue;
        ases.insert(as_item(asn));
        if (have_prev) links.insert(link_item(prev, asn));
        prev = asn;
        have_prev = true;
      }
    }
    benchmark::DoNotOptimize(ases.size() + prefixes.size() + links.size());
    // Conservative resident estimate: one bucket pointer per bucket plus a
    // heap node (key + next + allocator overhead) per element.
    resident = 0;
    for (const auto* set : {&ases, &prefixes, &links}) {
      resident += set->bucket_count() * sizeof(void*) + set->size() * 32;
    }
  }
  state.counters["resident_bytes"] = static_cast<double>(resident);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * rib.routes().size()));
}
BENCHMARK(BM_Ingest100kExactCount)->Unit(benchmark::kMillisecond);

void BM_Ingest100kSketchCount(benchmark::State& state) {
  const auto& rib = scale_rib();
  std::size_t resident = 0;
  for (auto _ : state) {
    IngestBundle bundle;
    for (const auto& route : rib.routes()) bundle.add_route(route.prefix, route.as_path);
    benchmark::DoNotOptimize(bundle.ases.estimate_count());
    resident = bundle.ases.memory_bytes() + bundle.prefixes.memory_bytes() +
               bundle.links.memory_bytes() + bundle.origins.memory_bytes();
  }
  state.counters["resident_bytes"] = static_cast<double>(resident);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * rib.routes().size()));
}
BENCHMARK(BM_Ingest100kSketchCount)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
