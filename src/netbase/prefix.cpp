#include "netbase/prefix.hpp"

#include "util/strings.hpp"

namespace htor {

Prefix::Prefix(const IpAddress& addr, std::uint8_t len)
    : addr_(addr.masked(len)), len_(len) {}

bool Prefix::try_parse(std::string_view text, Prefix& out) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return false;
  IpAddress addr;
  if (!IpAddress::try_parse(text.substr(0, slash), addr)) return false;
  std::uint64_t len = 0;
  if (!parse_u64(text.substr(slash + 1), len)) return false;
  if (len > address_bits(addr.version())) return false;
  out = Prefix(addr, static_cast<std::uint8_t>(len));
  return true;
}

Prefix Prefix::parse(std::string_view text) {
  Prefix out;
  if (!try_parse(text, out)) throw ParseError("bad prefix '" + std::string(text) + "'");
  return out;
}

bool Prefix::contains(const IpAddress& addr) const {
  if (addr.version() != version()) return false;
  return addr.masked(len_) == addr_;
}

bool Prefix::contains(const Prefix& other) const {
  if (other.version() != version() || other.len_ < len_) return false;
  return other.addr_.masked(len_) == addr_;
}

std::string Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(len_);
}

}  // namespace htor
