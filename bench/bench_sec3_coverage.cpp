// T2 (§3 ¶1): inference coverage.
// Paper: actual relationships extracted for 72% (7,651) of all IPv6 links
// and 81% (6,160) of the dual-stack links.
#include <iostream>

#include "harness.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace htor;
  bench::print_header("T2 / bench_sec3_coverage",
                      "relationships for 72% of IPv6 links, 81% of IPv4/IPv6 links");

  const auto ds = bench::make_dataset();
  const auto census = core::run_census(ds.rib, ds.dict);

  Table t({"metric", "paper", "measured"});
  t.row({"IPv6 links covered", "7651 (72%)",
         std::to_string(census.v6_coverage.covered_links) + " (" +
             fmt_pct(census.v6_coverage.covered_links, census.v6_coverage.observed_links) + ")"});
  t.row({"dual-stack links covered (both AFs)", "6160 (81%)",
         std::to_string(census.dual_coverage.covered_links) + " (" +
             fmt_pct(census.dual_coverage.covered_links, census.dual_coverage.observed_links) +
             ")"});
  t.row({"IPv4 links covered", "-",
         std::to_string(census.v4_coverage.covered_links) + " (" +
             fmt_pct(census.v4_coverage.covered_links, census.v4_coverage.observed_links) + ")"});
  t.print(std::cout);

  std::cout << "\nmechanism breakdown (IPv6):\n";
  Table m({"stage", "links typed", "notes"});
  m.row({"communities (votes)", std::to_string(census.inferred.community_v6.rels.size()),
         std::to_string(census.inferred.community_v6.conflicted_links) + " conflicted"});
  m.row({"+ LocPrf Rosetta", std::to_string(census.inferred.rosetta_v6.first_hop_rels.size()),
         std::to_string(census.inferred.rosetta_v6.values_learned) + " values learned, " +
             std::to_string(census.inferred.rosetta_v6.routes_te_filtered) + " routes TE-filtered"});
  m.row({"dictionary size", std::to_string(ds.dict.size()),
         std::to_string(ds.dict.documented_asns().size()) + " ASes documented"});
  m.print(std::cout);
  return 0;
}
