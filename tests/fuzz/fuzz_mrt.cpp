// Fuzz target: the MRT record decoder (mrt::read_all / decode_record_body).
//
// Contract asserted per input: the whole buffer decodes into records, or a
// reasoned DecodeError is thrown — no other exception type, no crash, no
// partial RIB handed back.  Joining the decoded records into an ObservedRib
// is also exercised so attribute-level garbage (bad AS_PATH segments,
// malformed NLRI) that only surfaces at join time stays inside the contract.
#include "fuzz/driver.hpp"

#include "mrt/reader.hpp"
#include "mrt/rib_view.hpp"

using namespace htor;

int main(int argc, char** argv) {
  return fuzz::run_target("fuzz_mrt", argc, argv, [](const std::vector<std::uint8_t>& input) {
    const auto records = mrt::read_all(input);
    // A decoded record set must survive the join into an observed RIB; a
    // throw here is still a reasoned DecodeError by contract.
    const auto rib = mrt::rib_from_records(records);
    (void)rib;
    return fuzz::Outcome::Parsed;
  });
}
