// Per-AS routing policy knobs for the propagation engine.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "netbase/asn.hpp"

namespace htor::prop {

/// The classic Gao-Rexford preference ordering is customer > peer > provider;
/// per-AS values vary in practice, which is why the paper needs the
/// communities "Rosetta stone" to interpret them.
struct NodePolicy {
  std::uint32_t lp_customer = 100;
  std::uint32_t lp_peer = 90;
  std::uint32_t lp_provider = 80;
  std::uint32_t lp_sibling = 95;

  /// Extra copies of the own ASN when exporting to a provider (backup-link
  /// style traffic engineering).
  std::uint8_t prepend_to_provider = 0;

  /// IPv6 export relaxation: also export peer-/provider-learned routes to
  /// peers.  This deliberately violates the valley-free export rule — the
  /// behaviour the paper identifies behind IPv6 valley paths.
  bool relaxed_export = false;

  /// Full relaxation: additionally export peer-/provider-learned routes to
  /// providers.  Used by the "healer" ASes that restore reachability across
  /// the partitioned IPv6 core (the paper's reachability-required valleys).
  bool relaxed_export_up = false;

  /// Selectivity of `relaxed_export`: the fraction of origins actually
  /// leaked (deterministic per (exporter, origin)).  Real relaxed peering is
  /// a partial-transit arrangement, not a full-table leak.  Full relaxation
  /// (relaxed_export_up) ignores this and always leaks.
  double relax_origin_fraction = 1.0;
};

/// LocPrf traffic-engineering overrides: (listening AS, origin AS) -> value.
/// When present, the AS assigns this LocPrf to routes of that origin instead
/// of its relationship-based default (and, in the synthetic Internet, tags
/// the route with its "set local-pref" community).
class TeOverrides {
 public:
  void set(Asn node, Asn origin, std::uint32_t locpref) {
    overrides_[key(node, origin)] = locpref;
  }

  const std::uint32_t* find(Asn node, Asn origin) const {
    auto it = overrides_.find(key(node, origin));
    return it == overrides_.end() ? nullptr : &it->second;
  }

  std::size_t size() const { return overrides_.size(); }

 private:
  static std::uint64_t key(Asn node, Asn origin) {
    return static_cast<std::uint64_t>(node) << 32 | origin;
  }
  std::unordered_map<std::uint64_t, std::uint32_t> overrides_;
};

}  // namespace htor::prop
