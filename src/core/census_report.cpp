#include "core/census_report.hpp"

#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace htor::core {

CensusReport run_census(const mrt::ObservedRib& rib, const rpsl::CommunityDictionary& dict,
                        const InferenceConfig& config) {
  ThreadPool pool(config.threads);
  return run_census(rib, dict, config, pool);
}

CensusReport run_census(const mrt::ObservedRib& rib, const rpsl::CommunityDictionary& dict,
                        const InferenceConfig& config, ThreadPool& pool) {
  OBS_SPAN("census");
  CensusReport report;

  std::vector<LinkKey> v4_links;
  std::vector<LinkKey> v6_links;
  std::vector<LinkKey> duals;
  {
    OBS_SPAN("census.paths");
    report.v4_path_store = paths_of(rib, IpVersion::V4, pool);
    report.v6_path_store = paths_of(rib, IpVersion::V6, pool);
    report.v4_paths = report.v4_path_store.unique_paths();
    report.v6_paths = report.v6_path_store.unique_paths();
    v4_links = report.v4_path_store.links();
    v6_links = report.v6_path_store.links();
  }
  {
    OBS_SPAN("census.duals");
    duals = dual_stack_links(v4_links, v6_links, pool);
  }
  report.v4_links = v4_links.size();
  report.v6_links = v6_links.size();
  report.dual_links = duals.size();

  {
    OBS_SPAN("census.infer");
    report.inferred = infer_relationships(rib, dict, config, pool);
  }
  {
    OBS_SPAN("census.coverage");
    report.v4_coverage = coverage(v4_links, report.inferred.v4);
    report.v6_coverage = coverage(v6_links, report.inferred.v6);

    // Dual coverage in the paper's sense: both the IPv4 and the IPv6
    // relationship of the link are known.
    report.dual_coverage.observed_links = duals.size();
    for (const LinkKey& key : duals) {
      if (report.inferred.v4.get(key.first, key.second) != Relationship::Unknown &&
          report.inferred.v6.get(key.first, key.second) != Relationship::Unknown) {
        ++report.dual_coverage.covered_links;
      }
    }
  }

  {
    OBS_SPAN("census.hybrids");
    // Tier attribution from the richer (IPv4) inferred map.
    const auto tiers = classify_tiers(report.inferred.v4);
    report.hybrids = detect_hybrids(duals, report.inferred.v4, report.inferred.v6,
                                    report.v6_path_store, &tiers);
  }

  {
    OBS_SPAN("census.valleys");
    report.v6_valleys = census_valleys(report.v6_path_store, report.inferred.v6, pool);
    report.v4_valleys = census_valleys(report.v4_path_store, report.inferred.v4, pool);
  }
  return report;
}

}  // namespace htor::core
