// Valley-path census (paper §3, ¶4): how many observed IPv6 paths violate
// the valley-free rule, and how many of those violations are *necessary* —
// i.e. no strict valley-free path between the vantage and the origin exists
// at all, so the valley is the price of reachability.
#pragma once

#include <cstdint>

#include "topology/path_store.hpp"
#include "topology/relationship.hpp"
#include "util/thread_pool.hpp"

namespace htor::core {

struct ValleyCensus {
  std::uint64_t paths = 0;
  std::uint64_t valley_free = 0;
  std::uint64_t valley = 0;
  std::uint64_t incomplete = 0;  ///< paths with unknown-relationship links

  std::uint64_t classified_valleys = 0;  ///< valleys testable for necessity
  std::uint64_t necessary_valleys = 0;   ///< no valley-free alternative exists

  double valley_fraction() const {
    return paths == 0 ? 0.0 : static_cast<double>(valley) / static_cast<double>(paths);
  }
  double necessary_fraction() const {
    return classified_valleys == 0 ? 0.0
                                   : static_cast<double>(necessary_valleys) /
                                         static_cast<double>(classified_valleys);
  }
};

/// Classify every distinct path in `paths` under `rels`.  The necessity test
/// runs valley-free reachability over the link set of `rels` itself (the
/// best topology knowledge available to the measurement, as in the paper).
ValleyCensus census_valleys(const PathStore& paths, const RelationshipMap& rels);

/// Sharded variant: path classification shards on `pool`, and the
/// valley-free BFS runs one pool task per distinct vantage source.  Counters
/// are additive, so the result equals the sequential overload for any pool
/// size.
ValleyCensus census_valleys(const PathStore& paths, const RelationshipMap& rels,
                            ThreadPool& pool);

/// True when no strict valley-free path connects src and dst in `rels`.
bool valley_is_necessary(Asn src, Asn dst, const RelationshipMap& rels);

}  // namespace htor::core
