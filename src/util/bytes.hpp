// Bounds-checked big-endian byte readers/writers used by the BGP and MRT
// wire codecs.  Network protocols are big-endian throughout, so only
// big-endian accessors are provided.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace htor {

/// Sequential reader over an immutable byte buffer.  Every accessor checks
/// bounds and throws DecodeError on underrun; the reader never reads past
/// the span it was constructed with.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Bytes not yet consumed.
  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();

  /// Consume exactly n bytes and return a view of them (valid while the
  /// underlying buffer lives).
  std::span<const std::uint8_t> bytes(std::size_t n);

  /// Consume n bytes into an owned vector.
  std::vector<std::uint8_t> bytes_copy(std::size_t n);

  /// Consume n bytes as text.
  std::string text(std::size_t n);

  /// Skip n bytes.
  void skip(std::size_t n);

  /// A sub-reader over the next n bytes; the parent position advances by n.
  ByteReader sub(std::size_t n);

 private:
  void require(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Read a whole binary file into memory.  Throws Error when the file cannot
/// be opened, sized, or fully read.
std::vector<std::uint8_t> load_bytes(const std::string& path);

/// Write `data` to `path` (truncating).  Throws Error when the file cannot
/// be created or the final flush fails — a short write never passes silently.
void save_bytes(const std::string& path, std::span<const std::uint8_t> data);

/// Append-only big-endian writer producing a byte vector.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void bytes(std::span<const std::uint8_t> data);
  void text(const std::string& s);

  /// Back-patch a previously written 16-bit length field at `offset`.
  void patch_u16(std::size_t offset, std::uint16_t v);
  /// Back-patch a previously written 32-bit length field at `offset`.
  void patch_u32(std::size_t offset, std::uint32_t v);

  std::size_t size() const { return out_.size(); }
  const std::vector<std::uint8_t>& data() const { return out_; }
  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

}  // namespace htor
