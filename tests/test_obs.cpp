// Tests for the observability layer (src/obs/): registry identity and
// find-or-create semantics, sharded-counter merge correctness under real
// thread concurrency (the TSan CI job runs this suite), deterministic
// Prometheus text exposition (golden text), callback metric lifetime, and
// the Chrome-trace exporter — whose output is parsed back with
// util::JsonValue to prove it is well-formed JSON of the documented shape.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace htor::obs {
namespace {

// ------------------------------------------------------------ registry

TEST(MetricsRegistry, CounterFindOrCreateSharesCells) {
  MetricsRegistry reg;
  Counter a = reg.counter("requests", {{"endpoint", "link"}});
  Counter b = reg.counter("requests", {{"endpoint", "link"}});
  Counter other = reg.counter("requests", {{"endpoint", "summary"}});

  a.inc();
  b.inc(2);
  other.inc(10);

  // a and b are two handles onto the same cells; `other` is a distinct
  // label set in the same family.
  EXPECT_EQ(a.value(), 3u);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(other.value(), 10u);
  EXPECT_EQ(reg.counter_value("requests", {{"endpoint", "link"}}), 3u);
  EXPECT_EQ(reg.counter_value("requests", {{"endpoint", "summary"}}), 10u);
  EXPECT_EQ(reg.counter_value("requests", {{"endpoint", "absent"}}), 0u);
}

TEST(MetricsRegistry, DefaultConstructedHandlesAreInert) {
  Counter c;
  Gauge g;
  Histogram h;
  c.inc();
  g.set(7);
  h.record(3);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.snapshot().total(), 0u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), InvalidArgument);
  EXPECT_THROW(reg.histogram("x"), InvalidArgument);
  // A family must be kind-homogeneous even across label sets.
  reg.counter("fam", {{"a", "1"}});
  EXPECT_THROW(reg.histogram("fam", {{"a", "2"}}), InvalidArgument);
}

TEST(MetricsRegistry, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge g = reg.gauge("depth");
  g.set(5);
  g.add(-2);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(reg.gauge_value("depth"), 3);
}

TEST(MetricsRegistry, HistogramBucketsAreLog2Exclusive) {
  MetricsRegistry reg;
  Histogram h = reg.histogram("lat");
  // Bucket i is the smallest i with value <= 2^i: 0,1 -> bucket 0;
  // 2 -> bucket 1; 3,4 -> bucket 2; 65536 (> 2^15) -> overflow.
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(4);
  h.record(1u << 15);
  h.record((1u << 15) + 1);

  const auto snap = h.snapshot();
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 2u);
  EXPECT_EQ(snap.counts[15], 1u);
  EXPECT_EQ(snap.overflow, 1u);
  EXPECT_EQ(snap.total(), 7u);
  EXPECT_EQ(snap.sum, 0u + 1 + 2 + 3 + 4 + (1u << 15) + (1u << 15) + 1);
}

TEST(MetricsRegistry, ResetValuesKeepsHandlesValid) {
  MetricsRegistry reg;
  Counter c = reg.counter("n");
  Histogram h = reg.histogram("d");
  Gauge g = reg.gauge("g");
  c.inc(9);
  h.record(100);
  g.set(4);

  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.snapshot().total(), 0u);
  EXPECT_EQ(g.value(), 0);

  // Old handles still point at live cells.
  c.inc();
  EXPECT_EQ(reg.counter_value("n"), 1u);
}

// reset_values must also drop the callback metrics' cached last-scrape
// state: a stale cache would let polled_value report a pre-reset value as
// if the post-reset world had been scraped.  (The counter/histogram half of
// reset is covered above; this pins the callback half.)
TEST(MetricsRegistry, ResetValuesDropsCallbackLastScrapeCache) {
  MetricsRegistry reg;
  std::int64_t depth = 5;
  CallbackMetric cb = reg.callback("cache_depth", {}, MetricsRegistry::Kind::Gauge,
                                   [&] { return depth; });
  // Nothing scraped yet: the cache is empty.
  EXPECT_EQ(reg.polled_value("cache_depth"), 0);
  (void)reg.render_prometheus();
  EXPECT_EQ(reg.polled_value("cache_depth"), 5);

  reg.reset_values();
  EXPECT_EQ(reg.polled_value("cache_depth"), 0);

  // The registration survived the reset; the next scrape re-polls.
  (void)reg.polled_samples();
  EXPECT_EQ(reg.polled_value("cache_depth"), 5);
}

// The core concurrency claim: kShards cache-line cells merged at scrape
// time lose no increments under real contention.  8 threads (more than
// some shard assignments, exercising both exclusive and shared cells when
// the process has handed out many thread ids already) each bump a shared
// counter and histogram a deterministic number of times; totals must be
// exact.  The TSan CI job runs this test to prove the relaxed fetch_adds
// and the scrape-side loads race-free.
TEST(MetricsRegistry, ConcurrentIncrementsMergeExactly) {
  MetricsRegistry reg;
  Counter counter = reg.counter("concurrent_total");
  Histogram hist = reg.histogram("concurrent_lat");

  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    // lint: allow(naked-thread) bounded test worker, joined below
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.inc();
        hist.record(static_cast<std::uint64_t>(t));  // per-thread fixed bucket
      }
    });
  }
  // Scrape concurrently with the writers: totals only need to be exact
  // after the join, but the loads must be race-free throughout (TSan).
  for (int i = 0; i < 100; ++i) {
    (void)counter.value();
    (void)hist.snapshot();
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.total(), kThreads * kPerThread);
  std::uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) expected_sum += t * kPerThread;
  EXPECT_EQ(snap.sum, expected_sum);
}

// ------------------------------------------------------------ callbacks

TEST(MetricsRegistry, CallbackMetricsSumAndUnregister) {
  MetricsRegistry reg;
  std::int64_t depth_a = 3;
  {
    CallbackMetric a = reg.callback("queue_depth", {{"pool", "serve"}},
                                    MetricsRegistry::Kind::Gauge,
                                    [&] { return depth_a; });
    CallbackMetric b = reg.callback("queue_depth", {{"pool", "serve"}},
                                    MetricsRegistry::Kind::Gauge,
                                    [] { return std::int64_t{4}; });
    // Two live registrations of one identity sum at render time.
    EXPECT_NE(reg.render_prometheus().find("queue_depth{pool=\"serve\"} 7"),
              std::string::npos);
    depth_a = 10;
    EXPECT_NE(reg.render_prometheus().find("queue_depth{pool=\"serve\"} 14"),
              std::string::npos);
  }
  // Both handles destroyed: the metric disappears from the exposition.
  EXPECT_EQ(reg.render_prometheus().find("queue_depth"), std::string::npos);
}

TEST(MetricsRegistry, CallbackMetricMoveTransfersOwnership) {
  MetricsRegistry reg;
  CallbackMetric a = reg.callback("cb", {}, MetricsRegistry::Kind::Counter,
                                  [] { return std::int64_t{1}; });
  CallbackMetric b = std::move(a);
  EXPECT_NE(reg.render_prometheus().find("cb 1"), std::string::npos);
  CallbackMetric c;
  c = std::move(b);
  EXPECT_NE(reg.render_prometheus().find("cb 1"), std::string::npos);
}

// ------------------------------------------------------------ exposition

// Byte-exact golden text: the registry's render order is (name, labels), a
// # TYPE line exactly once per family, histograms rendered cumulative with
// a closing le="+Inf" bucket plus _sum/_count.  Deterministic output is a
// design goal (header comment in metrics.hpp) — this is the test that
// holds it.
TEST(MetricsRegistry, PrometheusGoldenText) {
  MetricsRegistry reg;
  reg.counter("zz_last").inc(1);  // registered first, must render last
  reg.counter("aa_requests", {{"endpoint", "link"}}).inc(5);
  reg.counter("aa_requests", {{"endpoint", "summary"}}).inc(2);
  reg.gauge("mm_depth").set(-3);
  Histogram h = reg.histogram("kk_lat", {{"stage", "decode"}});
  h.record(1);  // bucket 0 (le 1)
  h.record(2);  // bucket 1 (le 2)
  h.record(70000);  // overflow (> 2^15 = 32768)

  std::string expected;
  expected += "# TYPE aa_requests counter\n";
  expected += "aa_requests{endpoint=\"link\"} 5\n";
  expected += "aa_requests{endpoint=\"summary\"} 2\n";
  expected += "# TYPE kk_lat histogram\n";
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    cumulative += (i == 0 || i == 1) ? 1 : 0;
    expected += "kk_lat_bucket{stage=\"decode\",le=\"" + std::to_string(1u << i) +
                "\"} " + std::to_string(cumulative) + "\n";
  }
  expected += "kk_lat_bucket{stage=\"decode\",le=\"+Inf\"} 3\n";
  expected += "kk_lat_sum{stage=\"decode\"} 70003\n";
  expected += "kk_lat_count{stage=\"decode\"} 3\n";
  expected += "# TYPE mm_depth gauge\n";
  expected += "mm_depth -3\n";
  expected += "# TYPE zz_last counter\n";
  expected += "zz_last 1\n";

  EXPECT_EQ(reg.render_prometheus(), expected);
}

TEST(MetricsRegistry, LabelValuesAreEscaped) {
  MetricsRegistry reg;
  reg.counter("esc", {{"path", "a\\b\"c\nd"}}).inc();
  const std::string text = reg.render_prometheus();
  EXPECT_NE(text.find("esc{path=\"a\\\\b\\\"c\\nd\"} 1"), std::string::npos);
}

TEST(MetricsRegistry, HistogramFamilyListsLabelSetsInOrder) {
  MetricsRegistry reg;
  reg.histogram("stage_us", {{"stage", "b"}}).record(4);
  reg.histogram("stage_us", {{"stage", "a"}}).record(2);
  reg.histogram("stage_us", {{"stage", "a"}}).record(2);
  reg.histogram("unrelated").record(1);

  const auto rows = reg.histogram_family("stage_us");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].labels, "{stage=\"a\"}");
  EXPECT_EQ(rows[0].values.total(), 2u);
  EXPECT_EQ(rows[0].values.sum, 4u);
  EXPECT_EQ(rows[1].labels, "{stage=\"b\"}");
  EXPECT_EQ(rows[1].values.total(), 1u);
}

// ------------------------------------------------------------ tracing

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Spans record into the global registry; isolate from other suites.
    MetricsRegistry::global().reset_values();
    TraceCollector::global().disable();
  }
  void TearDown() override { TraceCollector::global().disable(); }
};

TEST_F(TraceTest, SpanRecordsStageHistogramWithoutCollector) {
  ASSERT_FALSE(TraceCollector::global().enabled());
  { OBS_SPAN("test.stage_only"); }
  const auto snap = MetricsRegistry::global().histogram_snapshot(
      std::string(kStageDurationMetric), {{"stage", "test.stage_only"}});
  EXPECT_EQ(snap.total(), 1u);
  EXPECT_EQ(TraceCollector::global().event_count(), 0u);
}

TEST_F(TraceTest, ChromeTraceJsonParsesBack) {
  auto& collector = TraceCollector::global();
  collector.enable();
  {
    OBS_SPAN("test.outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    { OBS_SPAN("test.inner"); }
  }
  collector.disable();
  ASSERT_EQ(collector.event_count(), 2u);

  // The exporter's output must be a valid Chrome trace document — prove it
  // by round-tripping through the strict JSON parser.
  const JsonValue doc = JsonValue::parse(collector.render_json());
  ASSERT_TRUE(doc.contains("traceEvents"));
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  for (const auto& ev : events) {
    EXPECT_EQ(ev.at("ph").as_string(), "X");
    EXPECT_FALSE(ev.at("name").as_string().empty());
    EXPECT_EQ(ev.at("pid").as_uint(), 1u);
    (void)ev.at("ts").as_uint();
    (void)ev.at("dur").as_uint();
    (void)ev.at("tid").as_uint();
  }
  // Ordered by start time: outer opened before inner.
  EXPECT_EQ(events[0].at("name").as_string(), "test.outer");
  EXPECT_EQ(events[1].at("name").as_string(), "test.inner");
  EXPECT_LE(events[0].at("ts").as_uint(), events[1].at("ts").as_uint());
  // The outer span encloses the sleep; the inner one does not.
  EXPECT_GE(events[0].at("dur").as_uint(), 2000u);
  EXPECT_LT(events[1].at("dur").as_uint(), events[0].at("dur").as_uint());
}

TEST_F(TraceTest, EnableClearsPriorEvents) {
  auto& collector = TraceCollector::global();
  collector.enable();
  { OBS_SPAN("test.first"); }
  EXPECT_EQ(collector.event_count(), 1u);
  collector.enable();  // re-enable: fresh capture
  EXPECT_EQ(collector.event_count(), 0u);
  { OBS_SPAN("test.second"); }
  collector.disable();
  ASSERT_EQ(collector.event_count(), 1u);
  const JsonValue doc = JsonValue::parse(collector.render_json());
  EXPECT_EQ(doc.at("traceEvents").as_array()[0].at("name").as_string(), "test.second");
}

TEST_F(TraceTest, WriteFileEmitsParseableDocument) {
  auto& collector = TraceCollector::global();
  collector.enable();
  { OBS_SPAN("test.file"); }
  collector.disable();

  const auto path = std::filesystem::temp_directory_path() /
                    "htor_obs_trace_test.json";
  collector.write_file(path.string());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  std::filesystem::remove(path);

  const JsonValue doc = JsonValue::parse(buf.str());
  EXPECT_EQ(doc.at("traceEvents").as_array().size(), 1u);
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
}

TEST_F(TraceTest, DisabledCollectorRecordsNothing) {
  // disable() deliberately keeps captured events (write_file runs after
  // disable); clear leftovers from other tests with an enable/disable pair.
  TraceCollector::global().enable();
  TraceCollector::global().disable();
  { OBS_SPAN("test.silent"); }
  EXPECT_EQ(TraceCollector::global().event_count(), 0u);
  const JsonValue doc = JsonValue::parse(TraceCollector::global().render_json());
  EXPECT_TRUE(doc.at("traceEvents").as_array().empty());
}

}  // namespace
}  // namespace htor::obs
