// Tests for the streaming MRT ingest path: framing equivalence with the
// in-memory reader, byte-identical RIBs at any pool size and batch size, and
// clean DecodeError on truncated or garbage framing — never a partial RIB.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "gen/internet.hpp"
#include "gen/updates.hpp"
#include "mrt/reader.hpp"
#include "mrt/rib_view.hpp"
#include "mrt/stream_reader.hpp"
#include "mrt/writer.hpp"

namespace htor::mrt {
namespace {

/// A real multi-record TABLE_DUMP_V2 dump from the synthetic collector.
const std::vector<std::uint8_t>& sample_dump() {
  static const std::vector<std::uint8_t> bytes = [] {
    const auto net = gen::SyntheticInternet::generate(gen::small_params(21));
    MrtWriter writer;
    for (const auto& rec : records_from_rib(net.collect(), 1, "stream", 1281052800u)) {
      writer.write(rec);
    }
    return writer.take();
  }();
  return bytes;
}

std::string write_temp(const std::vector<std::uint8_t>& bytes, const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  EXPECT_TRUE(out);
  out.write(reinterpret_cast<const char*>(bytes.data()), static_cast<long>(bytes.size()));
  return path;
}

TEST(MrtStreamReader, FramesMatchInMemoryReader) {
  const auto& bytes = sample_dump();
  const std::string path = write_temp(bytes, "stream_frames.mrt");

  const auto records = read_all(bytes);
  MrtStreamReader stream(path);
  std::size_t i = 0;
  while (auto framed = stream.next()) {
    ASSERT_LT(i, records.size());
    const Record decoded =
        decode_record_body(framed->timestamp, framed->type, framed->subtype, framed->body);
    EXPECT_EQ(decoded, records[i]) << "record " << i;
    ++i;
  }
  EXPECT_EQ(i, records.size());
  EXPECT_EQ(stream.records_read(), records.size());
  EXPECT_EQ(stream.bytes_read(), bytes.size());
  EXPECT_EQ(stream.file_size(), bytes.size());
  std::remove(path.c_str());
}

TEST(MrtStreamReader, MissingFileThrows) {
  EXPECT_THROW(MrtStreamReader("/nonexistent/nope.mrt"), Error);
  EXPECT_THROW(rib_from_stream("/nonexistent/nope.mrt"), Error);
}

TEST(MrtStreamReader, EmptyFileIsCleanEof) {
  const std::string path = write_temp({}, "stream_empty.mrt");
  MrtStreamReader stream(path);
  EXPECT_FALSE(stream.next().has_value());
  EXPECT_EQ(rib_from_stream(path).size(), 0u);
  std::remove(path.c_str());
}

// A header cut short mid-file (valid records, then 5 stray bytes) must fail
// with DecodeError, not be silently dropped as EOF.
TEST(MrtStreamReader, TruncatedHeaderMidFileThrows) {
  const auto& all = sample_dump();
  // Find a record boundary roughly halfway into the dump, keep the records
  // before it, and append 5 stray bytes — a header cut short mid-file.
  std::size_t boundary = 0;
  MrtReader probe(all);
  while (boundary < all.size() / 2 && probe.next()) {
    boundary = all.size() - probe.remaining();
  }
  ASSERT_GT(boundary, 0u);
  ASSERT_LT(boundary, all.size());
  std::vector<std::uint8_t> aligned(all.begin(), all.begin() + static_cast<long>(boundary));
  aligned.insert(aligned.end(), {0x4c, 0x3a, 0x5e, 0x00, 0x00});  // 5 of 12 header bytes

  const std::string path = write_temp(aligned, "stream_trunc_header.mrt");
  MrtStreamReader stream(path);
  EXPECT_THROW(
      {
        while (stream.next()) {
        }
      },
      DecodeError);
  ThreadPool pool(4);
  EXPECT_THROW(rib_from_stream(path, pool), DecodeError);
  std::remove(path.c_str());
}

// A garbage header whose length field overruns the file must fail at that
// record, without over-allocating.
TEST(MrtStreamReader, GarbageLengthFieldThrows) {
  auto bytes = sample_dump();
  // Append a header declaring a body far past EOF.
  const std::vector<std::uint8_t> garbage = {0x00, 0x00, 0x00, 0x01, 0x00, 0x0d,
                                             0x00, 0x02, 0xff, 0xff, 0xff, 0xff};
  bytes.insert(bytes.end(), garbage.begin(), garbage.end());
  const std::string path = write_temp(bytes, "stream_garbage_len.mrt");

  MrtStreamReader stream(path);
  EXPECT_THROW(
      {
        while (stream.next()) {
        }
      },
      DecodeError);
  EXPECT_THROW(rib_from_stream(path), DecodeError);
  std::remove(path.c_str());
}

// The heart of the tentpole: rib_from_stream == rib_from_records, route for
// route, at several pool sizes and batch sizes (including batches far
// smaller than the record count, forcing many flushes).
TEST(RibFromStream, IdenticalToInMemoryJoin) {
  const auto& bytes = sample_dump();
  const std::string path = write_temp(bytes, "stream_equiv.mrt");
  const ObservedRib reference = rib_from_records(read_all(bytes));

  for (std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    for (std::size_t batch : {std::size_t{1}, std::size_t{7}, std::size_t{0}}) {
      ThreadPool pool(jobs);
      const ObservedRib streamed = rib_from_stream(path, pool, batch);
      ASSERT_EQ(streamed.size(), reference.size()) << "jobs=" << jobs << " batch=" << batch;
      EXPECT_EQ(streamed.size_of(IpVersion::V4), reference.size_of(IpVersion::V4));
      EXPECT_EQ(streamed.size_of(IpVersion::V6), reference.size_of(IpVersion::V6));
      for (std::size_t i = 0; i < reference.size(); ++i) {
        ASSERT_EQ(streamed.routes()[i], reference.routes()[i])
            << "route " << i << " jobs=" << jobs << " batch=" << batch;
      }
    }
  }
  std::remove(path.c_str());
}

// ------------------------------------------------------------ next_update

/// A file interleaving the TABLE_DUMP_V2 dump with a BGP4MP update stream —
/// the shape `follow` consumes when a collector archive mixes both.
std::vector<std::uint8_t> mixed_dump(std::size_t events) {
  const auto net = gen::SyntheticInternet::generate(gen::small_params(21));
  const auto rib = net.collect();
  MrtWriter writer;
  for (const auto& rec : records_from_rib(rib, 1, "stream", 1281052800u)) writer.write(rec);
  gen::UpdateScheduleParams params;
  params.events = events;
  for (const auto& rec : gen::synthesize_updates(rib, params)) writer.write(rec);
  return writer.take();
}

TEST(MrtStreamReaderUpdates, NextUpdateYieldsOnlyBgp4mpFrames) {
  const auto bytes = mixed_dump(25);
  const std::string path = write_temp(bytes, "stream_mixed.mrt");

  // Ground truth from the in-memory reader: which records are updates.
  const auto records = read_all(bytes);
  std::size_t expected_updates = 0;
  for (const auto& rec : records) {
    if (std::holds_alternative<Bgp4mpMessage>(rec.body)) ++expected_updates;
  }
  ASSERT_GT(expected_updates, 0u);
  ASSERT_LT(expected_updates, records.size());  // the RIB frames are really there

  MrtStreamReader stream(path);
  std::size_t yielded = 0;
  while (auto frame = stream.next_update()) {
    const Record decoded =
        decode_record_body(frame->timestamp, frame->type, frame->subtype, frame->body);
    EXPECT_TRUE(std::holds_alternative<Bgp4mpMessage>(decoded.body)) << "frame " << yielded;
    ++yielded;
  }
  EXPECT_EQ(yielded, expected_updates);
  EXPECT_EQ(stream.updates_skipped(), records.size() - expected_updates);
  EXPECT_EQ(stream.records_read(), records.size());
  std::remove(path.c_str());
}

TEST(MrtStreamReaderUpdates, PureRibFileYieldsNoUpdates) {
  const auto& bytes = sample_dump();
  const std::string path = write_temp(bytes, "stream_pure_rib.mrt");
  MrtStreamReader stream(path);
  EXPECT_FALSE(stream.next_update().has_value());
  EXPECT_EQ(stream.updates_skipped(), read_all(bytes).size());
  std::remove(path.c_str());
}

// Framing errors surface through next_update() exactly as through next():
// a header cut short mid-stream throws DecodeError instead of reading EOF.
TEST(MrtStreamReaderUpdates, TruncatedUpdateStreamThrows) {
  auto bytes = mixed_dump(25);
  bytes.resize(bytes.size() - 7);  // cut inside the final update record
  const std::string path = write_temp(bytes, "stream_trunc_update.mrt");
  MrtStreamReader stream(path);
  EXPECT_THROW(
      {
        while (stream.next_update()) {
        }
      },
      DecodeError);
  std::remove(path.c_str());
}

// An orphan RIB record (no PEER_INDEX_TABLE yet) fails identically to the
// in-memory path.
TEST(RibFromStream, RejectsRibBeforePeerTable) {
  RibPrefixRecord rib;
  rib.prefix = Prefix::parse("10.0.0.0/8");
  rib.entries.push_back({});
  MrtWriter w;
  w.write(Record{0, rib});
  const std::string path = write_temp(w.take(), "stream_orphan.mrt");
  EXPECT_THROW(rib_from_stream(path), DecodeError);
  std::remove(path.c_str());
}

// Truncating anywhere inside the dump must never yield a partial RIB: every
// cut either streams cleanly (cut on a record boundary) or throws.
TEST(RibFromStream, TruncationSweepNeverYieldsPartialRib) {
  const auto& bytes = sample_dump();
  const ObservedRib reference = rib_from_records(read_all(bytes));
  ThreadPool pool(2);
  for (std::size_t len = 1; len < bytes.size(); len += (len < 4096 ? 13 : 991)) {
    const std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + static_cast<long>(len));
    const std::string path = write_temp(cut, "stream_cut.mrt");
    std::optional<ObservedRib> streamed;
    try {
      streamed = rib_from_stream(path, pool);
    } catch (const DecodeError&) {
      // Expected for mid-record cuts.
    }
    if (streamed.has_value()) {
      // A clean streamed parse is only legal when the cut fell on a record
      // boundary — the in-memory path must then parse too and agree.  The
      // reference runs OUTSIDE the try above so a streaming-accepts /
      // in-memory-rejects divergence fails loudly instead of being
      // swallowed by the catch.
      ObservedRib in_memory;
      ASSERT_NO_THROW(in_memory = rib_from_records(read_all(cut))) << "cut at " << len;
      EXPECT_EQ(streamed->size(), in_memory.size()) << "cut at " << len;
    }
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace htor::mrt
