// Count-min sketch (Cormode & Muthukrishnan 2005) with deterministic
// heavy-hitter tracking.
//
// The counter plane is the textbook depth × width grid: `update(item, n)`
// adds n to one counter per row (row hash from `seeded(seed, row)`), and
// `query` takes the row-wise minimum, so estimates only ever overcount.
// With width 2^w and depth d the overcount is bounded by 2N/2^w with
// probability 1 - 2^-d (N = total stream weight).
//
// Heavy hitters ride alongside: a bounded candidate map keeps the items
// whose *estimates* are currently largest.  The bound, the pruning order
// (estimate desc, then item asc) and the merge (counter add, candidate
// union, re-prune) are all deterministic, so two sketches fed the same
// multiset of (item, weight) pairs in the same order agree exactly —
// which is what the shard-merge discipline needs.  Because pruning
// decisions do depend on feed order, code that feeds per-shard streams
// sorts them first (see core/pipeline.cpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include "obs/sketch/hash.hpp"

namespace htor::obs::sketch {

class Cms {
 public:
  static constexpr std::uint32_t kDefaultWidthLog2 = 12;  // 4096 columns
  static constexpr std::uint32_t kDefaultDepth = 4;
  static constexpr std::size_t kDefaultTopK = 16;

  explicit Cms(std::uint32_t width_log2 = kDefaultWidthLog2,
               std::uint32_t depth = kDefaultDepth,
               std::size_t top_k = kDefaultTopK,
               std::uint64_t seed = 0)
      : width_log2_(width_log2), depth_(depth), top_k_(top_k), seed_(seed) {
    if (width_log2 < 4 || width_log2 > 24) {
      throw std::invalid_argument("Cms: width_log2 out of [4, 24]");
    }
    if (depth < 1 || depth > 16) throw std::invalid_argument("Cms: depth out of [1, 16]");
    if (top_k < 1) throw std::invalid_argument("Cms: top_k must be >= 1");
    counters_.assign((std::size_t{1} << width_log2) * depth, 0);
  }

  std::uint32_t width_log2() const { return width_log2_; }
  std::uint32_t depth() const { return depth_; }
  std::size_t top_k() const { return top_k_; }
  std::uint64_t seed() const { return seed_; }

  void update(std::uint64_t item, std::uint64_t weight = 1) {
    if (weight == 0) return;
    total_ += weight;
    const std::size_t mask = (std::size_t{1} << width_log2_) - 1;
    std::uint64_t min_after = ~std::uint64_t{0};
    for (std::uint32_t row = 0; row < depth_; ++row) {
      std::uint64_t& cell =
          counters_[(static_cast<std::size_t>(row) << width_log2_) +
                    (hash64(seeded(seed_, row), item) & mask)];
      cell += weight;
      min_after = std::min(min_after, cell);
    }
    note_candidate(item, min_after);
  }

  /// Point estimate — never undercounts the true total for `item`.
  std::uint64_t query(std::uint64_t item) const {
    const std::size_t mask = (std::size_t{1} << width_log2_) - 1;
    std::uint64_t best = ~std::uint64_t{0};
    for (std::uint32_t row = 0; row < depth_; ++row) {
      best = std::min(best,
                      counters_[(static_cast<std::size_t>(row) << width_log2_) +
                                (hash64(seeded(seed_, row), item) & mask)]);
    }
    return best;
  }

  std::uint64_t total_weight() const { return total_; }

  /// Elementwise counter add + candidate union, re-estimated against the
  /// merged counters and re-pruned.  Throws on shape/seed mismatch.
  void merge(const Cms& other) {
    if (other.width_log2_ != width_log2_ || other.depth_ != depth_ ||
        other.seed_ != seed_ || other.top_k_ != top_k_) {
      throw std::invalid_argument("Cms::merge: shape/seed mismatch");
    }
    for (std::size_t i = 0; i < counters_.size(); ++i) counters_[i] += other.counters_[i];
    total_ += other.total_;
    for (const auto& [item, estimate] : other.candidates_) {
      (void)estimate;
      candidates_[item] = 0;  // re-estimated below against merged counters
    }
    for (auto& [item, estimate] : candidates_) estimate = query(item);
    prune();
  }

  struct HeavyHitter {
    std::uint64_t item;
    std::uint64_t estimate;
  };

  /// Top candidates, sorted by estimate desc then item asc.  At most
  /// `top_k()` entries; estimates are re-read from the counters so they
  /// reflect every update, not the value at candidate-admission time.
  std::vector<HeavyHitter> top() const {
    std::vector<HeavyHitter> out;
    out.reserve(candidates_.size());
    for (const auto& [item, estimate] : candidates_) {
      (void)estimate;
      out.push_back({item, query(item)});
    }
    std::sort(out.begin(), out.end(), [](const HeavyHitter& a, const HeavyHitter& b) {
      if (a.estimate != b.estimate) return a.estimate > b.estimate;
      return a.item < b.item;
    });
    if (out.size() > top_k_) out.resize(top_k_);
    return out;
  }

  void reset() {
    counters_.assign(counters_.size(), 0);
    candidates_.clear();
    total_ = 0;
    floor_ = 0;
  }

  const std::vector<std::uint64_t>& counters() const { return counters_; }

  std::size_t memory_bytes() const {
    return counters_.size() * sizeof(std::uint64_t) +
           candidates_.size() * (sizeof(std::uint64_t) * 2 + 48);  // map node overhead
  }

 private:
  // Candidate set holds the items with the largest estimates, up to 4*top_k
  // retained so a heavy item that starts slow is not evicted by early
  // noise.  Two guards keep this off the per-update critical path on
  // adversarial (near-uniform) streams: an admission floor — the smallest
  // estimate the last prune retained — rejects items that cannot displace
  // anything, and the set grows to 8*top_k before the O(n log n) prune
  // cuts it back, so the sort amortises over at least 4*top_k admissions
  // instead of firing per update.  A heavy item skipped early is re-offered
  // with a larger estimate on every later update, so it is admitted as
  // soon as it matters.  Every decision is a pure function of the feed
  // order, preserving the shard-merge determinism.
  void note_candidate(std::uint64_t item, std::uint64_t estimate) {
    const auto it = candidates_.find(item);
    if (it != candidates_.end()) {
      it->second = estimate;
      return;
    }
    if (candidates_.size() >= top_k_ * 4 && estimate <= floor_) return;
    candidates_[item] = estimate;
    if (candidates_.size() > top_k_ * 8) prune();
  }

  /// Cut the candidates back to 4*top_k in (estimate desc, item asc) order
  /// and remember the smallest retained estimate as the admission floor.
  void prune() {
    if (candidates_.size() <= top_k_ * 4) return;
    std::vector<HeavyHitter> ranked;
    ranked.reserve(candidates_.size());
    for (const auto& [item, estimate] : candidates_) ranked.push_back({item, estimate});
    std::sort(ranked.begin(), ranked.end(), [](const HeavyHitter& a, const HeavyHitter& b) {
      if (a.estimate != b.estimate) return a.estimate > b.estimate;
      return a.item < b.item;
    });
    ranked.resize(top_k_ * 4);
    candidates_.clear();
    for (const HeavyHitter& hh : ranked) candidates_[hh.item] = hh.estimate;
    floor_ = ranked.back().estimate;
  }

  std::uint32_t width_log2_;
  std::uint32_t depth_;
  std::size_t top_k_;
  std::uint64_t seed_;
  std::uint64_t total_ = 0;
  std::uint64_t floor_ = 0;  ///< admission floor from the last prune
  std::vector<std::uint64_t> counters_;
  std::map<std::uint64_t, std::uint64_t> candidates_;  // item -> last estimate
};

}  // namespace htor::obs::sketch
