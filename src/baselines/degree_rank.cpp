#include "baselines/degree_rank.hpp"

#include <unordered_map>
#include <unordered_set>

namespace htor::baselines {

DegreeRankResult infer_degree_rank(const PathStore& paths, const DegreeRankParams& params) {
  // Transit degree: how many distinct (left, right) neighbor pairs an AS is
  // seen forwarding between.
  std::unordered_map<Asn, std::unordered_set<Asn>> transit_neighbors;
  std::unordered_map<Asn, std::unordered_set<Asn>> plain_neighbors;
  paths.for_each([&](const std::vector<Asn>& raw, std::uint64_t) {
    std::vector<Asn> path;
    for (Asn a : raw) {
      if (path.empty() || path.back() != a) path.push_back(a);
    }
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      plain_neighbors[path[i]].insert(path[i + 1]);
      plain_neighbors[path[i + 1]].insert(path[i]);
    }
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      transit_neighbors[path[i]].insert(path[i - 1]);
      transit_neighbors[path[i]].insert(path[i + 1]);
    }
  });

  auto tdeg = [&](Asn asn) -> double {
    auto it = transit_neighbors.find(asn);
    // Smoothed: stubs have transit degree 0; +1 keeps ratios finite.
    return 1.0 + (it == transit_neighbors.end() ? 0.0 : static_cast<double>(it->second.size()));
  };

  DegreeRankResult result;
  for (const LinkKey& key : paths.links()) {
    const double ta = tdeg(key.first);
    const double tb = tdeg(key.second);
    const double ratio = std::max(ta, tb) / std::min(ta, tb);
    if (ratio < params.provider_ratio) {
      result.rels.set(key.first, key.second, Relationship::P2P);
      ++result.peer_links;
    } else if (ta > tb) {
      result.rels.set(key.first, key.second, Relationship::P2C);
      ++result.transit_links;
    } else {
      result.rels.set(key.first, key.second, Relationship::C2P);
      ++result.transit_links;
    }
  }
  return result;
}

}  // namespace htor::baselines
