// Bloom filter seen-set pre-filter.
//
// k probe positions per item via double hashing (Kirsch & Mitzenmacher:
// h1 + i*h2 is as good as k independent hashes), bits in a flat
// vector<uint64_t>.  `insert()` returns whether the item was *already*
// present — exactly the hit/miss signal the ingest pre-filter counts —
// and `merge()` is the bitwise OR, so per-shard filters combine in any
// order to the same bits.
//
// False positives only, never false negatives: a "hit" may be wrong at
// the configured rate, a "miss" is always a genuinely new item.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "obs/sketch/hash.hpp"

namespace htor::obs::sketch {

class Bloom {
 public:
  /// `expected_items` at `fp_rate` sizes the filter with the standard
  /// m = -n ln(p) / (ln 2)^2 and k = (m/n) ln 2 formulas.
  explicit Bloom(std::size_t expected_items = 1 << 20, double fp_rate = 0.01,
                 std::uint64_t seed = 0)
      : seed_(seed) {
    if (expected_items == 0) throw std::invalid_argument("Bloom: expected_items must be > 0");
    if (!(fp_rate > 0.0) || !(fp_rate < 1.0)) {
      throw std::invalid_argument("Bloom: fp_rate out of (0, 1)");
    }
    const double ln2 = 0.6931471805599453;
    const double m = -static_cast<double>(expected_items) * std::log(fp_rate) / (ln2 * ln2);
    n_bits_ = std::max<std::size_t>(64, (static_cast<std::size_t>(m) + 63) & ~std::size_t{63});
    hashes_ = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(
               std::lround(static_cast<double>(n_bits_) / static_cast<double>(expected_items) * ln2)));
    bits_.assign(n_bits_ / 64, 0);
  }

  std::size_t bit_count() const { return n_bits_; }
  std::uint32_t hash_count() const { return hashes_; }
  std::uint64_t seed() const { return seed_; }

  /// Insert and report prior membership (subject to false positives).
  bool insert(std::uint64_t item) {
    const std::uint64_t h1 = hash64(seeded(seed_, 0), item);
    const std::uint64_t h2 = hash64(seeded(seed_, 1), item) | 1;  // odd => full cycle
    bool was_present = true;
    for (std::uint32_t i = 0; i < hashes_; ++i) {
      const std::uint64_t bit = (h1 + i * h2) % n_bits_;
      std::uint64_t& word = bits_[bit >> 6];
      const std::uint64_t mask = std::uint64_t{1} << (bit & 63);
      if ((word & mask) == 0) {
        was_present = false;
        word |= mask;
      }
    }
    return was_present;
  }

  bool contains(std::uint64_t item) const {
    const std::uint64_t h1 = hash64(seeded(seed_, 0), item);
    const std::uint64_t h2 = hash64(seeded(seed_, 1), item) | 1;
    for (std::uint32_t i = 0; i < hashes_; ++i) {
      const std::uint64_t bit = (h1 + i * h2) % n_bits_;
      if ((bits_[bit >> 6] & (std::uint64_t{1} << (bit & 63))) == 0) return false;
    }
    return true;
  }

  /// Bitwise OR.  Throws on shape/seed mismatch.
  void merge(const Bloom& other) {
    if (other.n_bits_ != n_bits_ || other.hashes_ != hashes_ || other.seed_ != seed_) {
      throw std::invalid_argument("Bloom::merge: shape/seed mismatch");
    }
    for (std::size_t i = 0; i < bits_.size(); ++i) bits_[i] |= other.bits_[i];
  }

  void reset() { bits_.assign(bits_.size(), 0); }

  const std::vector<std::uint64_t>& words() const { return bits_; }

  std::size_t memory_bytes() const { return bits_.size() * sizeof(std::uint64_t); }

 private:
  std::uint64_t seed_;
  std::size_t n_bits_ = 0;
  std::uint32_t hashes_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace htor::obs::sketch
