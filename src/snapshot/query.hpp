// Query index over one snapshot: AS-pair lookups (rel_v4, rel_v6, hybrid?)
// and AS neighbor lists.
//
// Since format v2 this is a zero-copy *view* over a MappedSnapshot, not a
// rebuilt in-RAM structure: `lookup` is a branchless binary search over the
// file's sorted link table, `neighbors` walks a CSR slice, and constructing
// the index from a v2 file is map-validate-wrap with no per-entry decode.
// The view holds shared ownership of the image, so copies stay valid after
// the file on disk changes and after a daemon hot-reload swap; the image is
// unmapped/freed when the last view drops.
//
// v1 inputs transparently fall back to the eager path: decode, re-encode as
// an in-memory v2 image, wrap.  Answers are identical either way.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "snapshot/mapped.hpp"
#include "snapshot/snapshot.hpp"

namespace htor::snapshot {

class QueryIndex {
 public:
  /// Index an in-memory snapshot by encoding it to a v2 image (the snapshot
  /// itself is not retained).  Throws InvalidArgument when the snapshot is
  /// not encodable — the same rules as Writer::encode.
  explicit QueryIndex(const Snapshot& snap);

  /// Open a snapshot file into an *owned* image: read, validate, wrap (v2)
  /// or decode eagerly and re-encode (v1).  This is the daemon's reload
  /// path — owned bytes survive the file being truncated or rewritten in
  /// place underneath a running server, which an mmap would not (SIGBUS).
  static QueryIndex open(const std::string& path);

  /// Open a v2 snapshot file zero-copy via mmap (v1 falls back to the eager
  /// path).  For short-lived CLI lookups: the kernel pages in only what the
  /// binary search touches.  The mapping pins the inode, so views keep
  /// working after the path is rename()-replaced — but not after an
  /// in-place truncation, which is why the daemon uses open() instead.
  static QueryIndex open_mapped(const std::string& path);

  /// One link as seen from `a` toward `b`: relationships are oriented a -> b.
  struct LinkInfo {
    Relationship rel_v4 = Relationship::Unknown;
    Relationship rel_v6 = Relationship::Unknown;
    bool hybrid = false;

    friend bool operator==(const LinkInfo&, const LinkInfo&) = default;
  };

  /// The a->b view of the link, or nullopt when neither family recorded it.
  std::optional<LinkInfo> lookup(Asn a, Asn b) const;

  struct Neighbor {
    Asn asn = 0;
    LinkInfo info;  ///< oriented from the queried AS toward `asn`
  };

  /// All recorded neighbors of `asn`, ascending by neighbor ASN; empty when
  /// the AS appears in neither family's map nor the hybrid list.
  std::vector<Neighbor> neighbors(Asn asn) const;

  bool contains(Asn asn) const { return view().find_asn(asn).has_value(); }

  std::size_t link_count() const { return view().link_count; }
  std::size_t as_count() const { return view().asn_count; }
  /// Distinct links flagged hybrid (the hybrid table may list duplicates).
  std::size_t hybrid_count() const { return view().hybrid_link_count; }
  /// Rows in the hybrid table itself, duplicates included.
  std::size_t hybrid_entry_count() const { return view().hybrid_count; }

  // -- snapshot metadata, straight from the image ------------------------

  /// Format version of the *origin*: the file this index was opened from
  /// (1 for an eagerly upgraded v1 file) or the encoded snapshot's version.
  std::uint32_t format_version() const { return source_version_; }
  /// Byte size of the origin snapshot (file size, or encoded size).
  std::uint64_t snapshot_bytes() const { return file_bytes_; }
  /// Byte size of the v2 image answering queries.
  std::uint64_t mapped_bytes() const { return image_->byte_size(); }
  /// True when the image is an mmap rather than owned memory.
  bool is_mapped() const { return image_->is_mapped(); }

  std::string source() const { return view().source(); }
  std::uint64_t timestamp() const { return view().timestamp; }
  DatasetStats dataset() const { return view().dataset(); }
  CoverageCounters coverage_v4() const { return view().coverage(0); }
  CoverageCounters coverage_v6() const { return view().coverage(1); }
  CoverageCounters coverage_dual() const { return view().coverage(2); }
  ValleyCounters valleys_v4() const { return view().valleys(0); }
  ValleyCounters valleys_v6() const { return view().valleys(1); }
  HybridCounters hybrid_counters() const { return view().hybrid_counters(); }

 private:
  QueryIndex(std::shared_ptr<const MappedSnapshot> image, std::uint32_t source_version,
             std::uint64_t file_bytes);

  const V2View& view() const { return image_->view(); }

  std::shared_ptr<const MappedSnapshot> image_;
  std::uint32_t source_version_ = kFormatVersion;
  std::uint64_t file_bytes_ = 0;
};

}  // namespace htor::snapshot
