#include "netbase/ip.hpp"

#include <algorithm>
#include <cstdio>

#include "util/strings.hpp"

namespace htor {

namespace {

bool parse_v4_into(std::string_view text, std::uint8_t* out4) {
  auto parts = split(text, '.');
  if (parts.size() != 4) return false;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t v = 0;
    if (!parse_u64(parts[static_cast<std::size_t>(i)], v) || v > 255) return false;
    if (parts[static_cast<std::size_t>(i)].size() > 3) return false;
    out4[i] = static_cast<std::uint8_t>(v);
  }
  return true;
}

bool parse_hex_group(std::string_view s, std::uint16_t& out) {
  if (s.empty() || s.size() > 4) return false;
  std::uint32_t v = 0;
  for (char c : s) {
    std::uint32_t d;
    if (c >= '0' && c <= '9') d = static_cast<std::uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f') d = static_cast<std::uint32_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') d = static_cast<std::uint32_t>(c - 'A' + 10);
    else return false;
    v = v << 4 | d;
  }
  out = static_cast<std::uint16_t>(v);
  return true;
}

// Parse RFC 4291 IPv6 text into 16 bytes.  Handles "::" and an optional
// embedded dotted-quad in the last 32 bits.
bool parse_v6_into(std::string_view text, std::uint8_t* out16) {
  if (text.empty()) return false;

  // Split around at most one "::".
  std::string_view head = text;
  std::string_view tail;
  bool has_gap = false;
  if (auto gap = text.find("::"); gap != std::string_view::npos) {
    if (text.find("::", gap + 1) != std::string_view::npos) return false;  // two gaps
    has_gap = true;
    head = text.substr(0, gap);
    tail = text.substr(gap + 2);
  }

  auto parse_side = [](std::string_view side, std::vector<std::uint16_t>& groups,
                       bool allow_v4_tail) -> bool {
    if (side.empty()) return true;
    auto parts = split(side, ':');
    for (std::size_t i = 0; i < parts.size(); ++i) {
      if (parts[i].empty()) return false;  // stray ':' (the "::" was already removed)
      const bool last = i + 1 == parts.size();
      if (last && allow_v4_tail && parts[i].find('.') != std::string_view::npos) {
        std::uint8_t quad[4];
        if (!parse_v4_into(parts[i], quad)) return false;
        groups.push_back(static_cast<std::uint16_t>(quad[0] << 8 | quad[1]));
        groups.push_back(static_cast<std::uint16_t>(quad[2] << 8 | quad[3]));
        continue;
      }
      std::uint16_t g;
      if (!parse_hex_group(parts[i], g)) return false;
      groups.push_back(g);
    }
    return true;
  };

  std::vector<std::uint16_t> left;
  std::vector<std::uint16_t> right;
  if (!parse_side(head, left, !has_gap)) return false;
  if (has_gap && !parse_side(tail, right, true)) return false;

  const std::size_t total = left.size() + right.size();
  if (has_gap) {
    if (total > 7) return false;  // "::" must stand for at least one group
  } else {
    if (total != 8) return false;
  }

  std::array<std::uint16_t, 8> groups{};
  for (std::size_t i = 0; i < left.size(); ++i) groups[i] = left[i];
  for (std::size_t i = 0; i < right.size(); ++i) {
    groups[8 - right.size() + i] = right[i];
  }
  for (std::size_t i = 0; i < 8; ++i) {
    out16[2 * i] = static_cast<std::uint8_t>(groups[i] >> 8);
    out16[2 * i + 1] = static_cast<std::uint8_t>(groups[i]);
  }
  return true;
}

}  // namespace

IpAddress::IpAddress(IpVersion v, std::span<const std::uint8_t> raw) : version_(v) {
  if (raw.size() != address_bytes(v)) {
    throw InvalidArgument("IpAddress: expected " + std::to_string(address_bytes(v)) +
                          " bytes, got " + std::to_string(raw.size()));
  }
  bytes_.fill(0);
  std::copy(raw.begin(), raw.end(), bytes_.begin());
}

IpAddress IpAddress::v4(std::uint32_t host_order) {
  std::array<std::uint8_t, 4> b{
      static_cast<std::uint8_t>(host_order >> 24), static_cast<std::uint8_t>(host_order >> 16),
      static_cast<std::uint8_t>(host_order >> 8), static_cast<std::uint8_t>(host_order)};
  return IpAddress(IpVersion::V4, b);
}

IpAddress IpAddress::v6(const std::array<std::uint8_t, 16>& raw) {
  return IpAddress(IpVersion::V6, raw);
}

bool IpAddress::try_parse(std::string_view text, IpAddress& out) {
  std::array<std::uint8_t, 16> buf{};
  if (text.find(':') != std::string_view::npos) {
    if (!parse_v6_into(text, buf.data())) return false;
    out = IpAddress(IpVersion::V6, buf);
    return true;
  }
  if (!parse_v4_into(text, buf.data())) return false;
  out = IpAddress(IpVersion::V4, std::span<const std::uint8_t>(buf.data(), 4));
  return true;
}

IpAddress IpAddress::parse(std::string_view text) {
  IpAddress out;
  if (!try_parse(text, out)) throw ParseError("bad IP address '" + std::string(text) + "'");
  return out;
}

std::uint32_t IpAddress::v4_value() const {
  if (!is_v4()) throw InvalidArgument("v4_value on IPv6 address");
  return static_cast<std::uint32_t>(bytes_[0]) << 24 | static_cast<std::uint32_t>(bytes_[1]) << 16 |
         static_cast<std::uint32_t>(bytes_[2]) << 8 | static_cast<std::uint32_t>(bytes_[3]);
}

bool IpAddress::bit(std::uint8_t i) const {
  if (i >= address_bits(version_)) throw InvalidArgument("IpAddress::bit out of range");
  return (bytes_[i / 8] >> (7 - i % 8) & 1) != 0;
}

IpAddress IpAddress::masked(std::uint8_t keep_bits) const {
  const std::uint8_t max_bits = address_bits(version_);
  if (keep_bits > max_bits) throw InvalidArgument("IpAddress::masked: mask too long");
  IpAddress out = *this;
  for (std::size_t i = 0; i < 16; ++i) {
    const std::size_t bit_lo = i * 8;
    if (bit_lo >= keep_bits) {
      out.bytes_[i] = 0;
    } else if (bit_lo + 8 > keep_bits) {
      const std::uint8_t keep_in_byte = static_cast<std::uint8_t>(keep_bits - bit_lo);
      out.bytes_[i] &= static_cast<std::uint8_t>(0xff << (8 - keep_in_byte));
    }
  }
  return out;
}

std::uint8_t IpAddress::common_prefix_len(const IpAddress& other) const {
  if (version_ != other.version_) {
    throw InvalidArgument("common_prefix_len across address families");
  }
  const std::uint8_t max_bits = address_bits(version_);
  for (std::uint8_t i = 0; i < max_bits; ++i) {
    if (bit(i) != other.bit(i)) return i;
  }
  return max_bits;
}

std::string IpAddress::to_string() const {
  if (is_v4()) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", bytes_[0], bytes_[1], bytes_[2], bytes_[3]);
    return buf;
  }
  std::array<std::uint16_t, 8> groups;
  for (std::size_t i = 0; i < 8; ++i) {
    groups[i] = static_cast<std::uint16_t>(bytes_[2 * i] << 8 | bytes_[2 * i + 1]);
  }
  // RFC 5952: compress the longest run of >= 2 zero groups (leftmost on tie).
  int best_start = -1;
  int best_len = 0;
  for (int i = 0; i < 8;) {
    if (groups[static_cast<std::size_t>(i)] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[static_cast<std::size_t>(j)] == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  char buf[8];
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";  // groups before the run do not emit a trailing ':'
      i += best_len;
      if (i == 8) break;
      continue;
    }
    std::snprintf(buf, sizeof buf, "%x", groups[static_cast<std::size_t>(i)]);
    out += buf;
    ++i;
    if (i < 8 && i != best_start) out += ":";
  }
  if (out.empty()) out = "::";
  return out;
}

}  // namespace htor
