// HyperLogLog cardinality estimator (Flajolet et al. 2007), dense layout.
//
// Design constraints, in order:
//   * Mergeable: `merge()` is the elementwise register max, so it is
//     commutative, associative, and idempotent — per-shard sketches fed in
//     any order and merged in shard order give byte-identical registers at
//     every `--jobs` value, and re-feeding an already-counted stream
//     cannot move the estimate.
//   * Deterministic: one seed, one hash function (obs/sketch/hash.hpp),
//     no floating-point accumulation during ingest — doubles only appear
//     in `estimate()`, computed from integer registers.
//   * Header-only and dense: precision p gives 2^p uint8 registers
//     (16 KiB at the default p=14, standard error 1.04/sqrt(2^14) ≈ 0.81%,
//     comfortably inside the repo's 2%-of-exact acceptance bound).
//
// The estimator uses the classic alpha_m bias correction plus the
// linear-counting small-range correction.  The large-range correction is
// deliberately omitted: it exists for 32-bit hash saturation and we hash
// to 64 bits.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "obs/sketch/hash.hpp"

namespace htor::obs::sketch {

class Hll {
 public:
  static constexpr std::uint32_t kDefaultPrecision = 14;
  static constexpr std::uint32_t kMinPrecision = 4;
  static constexpr std::uint32_t kMaxPrecision = 18;

  explicit Hll(std::uint32_t precision = kDefaultPrecision, std::uint64_t seed = 0)
      : precision_(precision), seed_(seed) {
    if (precision < kMinPrecision || precision > kMaxPrecision) {
      throw std::invalid_argument("Hll: precision out of [4, 18]");
    }
    registers_.assign(std::size_t{1} << precision, 0);
  }

  std::uint32_t precision() const { return precision_; }
  std::uint64_t seed() const { return seed_; }

  void add(std::uint64_t item) {
    const std::uint64_t h = hash64(seed_, item);
    const std::size_t index = static_cast<std::size_t>(h >> (64 - precision_));
    // Rank of the remaining (64 - p) bits: position of the leftmost 1,
    // counting from 1; all-zero tail gets the maximum rank.
    const std::uint64_t tail = h << precision_;
    const std::uint8_t rank = static_cast<std::uint8_t>(
        tail == 0 ? (64 - precision_ + 1) : (__builtin_clzll(tail) + 1));
    if (rank > registers_[index]) registers_[index] = rank;
  }

  /// Elementwise max.  Throws on precision/seed mismatch — merging sketches
  /// of different shapes silently would corrupt both.
  void merge(const Hll& other) {
    if (other.precision_ != precision_ || other.seed_ != seed_) {
      throw std::invalid_argument("Hll::merge: precision/seed mismatch");
    }
    for (std::size_t i = 0; i < registers_.size(); ++i) {
      if (other.registers_[i] > registers_[i]) registers_[i] = other.registers_[i];
    }
  }

  double estimate() const {
    const double m = static_cast<double>(registers_.size());
    double inverse_sum = 0.0;
    std::size_t zeros = 0;
    for (std::uint8_t reg : registers_) {
      inverse_sum += std::ldexp(1.0, -static_cast<int>(reg));
      if (reg == 0) ++zeros;
    }
    const double raw = alpha(registers_.size()) * m * m / inverse_sum;
    if (raw <= 2.5 * m && zeros != 0) {
      return m * std::log(m / static_cast<double>(zeros));  // linear counting
    }
    return raw;
  }

  /// Estimate rounded to a whole count, for integer-valued gauges.
  std::int64_t estimate_count() const {
    return static_cast<std::int64_t>(std::llround(estimate()));
  }

  bool empty() const {
    for (std::uint8_t reg : registers_) {
      if (reg != 0) return false;
    }
    return true;
  }

  void reset() { registers_.assign(registers_.size(), 0); }

  /// Raw registers — the byte-identity tests compare these directly.
  const std::vector<std::uint8_t>& registers() const { return registers_; }

  /// Resident size in bytes (registers only; the struct itself is tiny).
  std::size_t memory_bytes() const { return registers_.size(); }

 private:
  static double alpha(std::size_t m) {
    switch (m) {
      case 16: return 0.673;
      case 32: return 0.697;
      case 64: return 0.709;
      default: return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
    }
  }

  std::uint32_t precision_;
  std::uint64_t seed_;
  std::vector<std::uint8_t> registers_;
};

}  // namespace htor::obs::sketch
