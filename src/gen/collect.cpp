// The synthetic collector: runs both propagation planes and records, for
// every (vantage peer, origin prefix), the route the vantage would export to
// a RouteViews-style collector — AS path with prepending, the communities
// accumulated along the way (ingress relationship tags, TE tags, geo tags,
// with stripping applied), and the vantage's LocPrf.
#include <algorithm>
#include <unordered_map>

#include "gen/internet.hpp"
#include "propagation/engine.hpp"
#include "util/hash.hpp"

namespace htor::gen {

namespace {

/// Collapse prepending: the unique AS chain of a path.
std::vector<Asn> collapse(const std::vector<Asn>& path) {
  std::vector<Asn> out;
  out.reserve(path.size());
  for (Asn a : path) {
    if (out.empty() || out.back() != a) out.push_back(a);
  }
  return out;
}

}  // namespace

mrt::ObservedRib SyntheticInternet::collect() const {
  mrt::ObservedRib rib;

  for (IpVersion af : {IpVersion::V4, IpVersion::V6}) {
    const auto pol = policies(af);
    prop::Engine engine(graph_, truth(af), af, pol, &te_);

    std::vector<Asn> origins = graph_.ases();
    std::sort(origins.begin(), origins.end());

    for (Asn origin : origins) {
      if (af == IpVersion::V6 && !v6_capable(origin)) continue;
      if (graph_.neighbors(origin, af).empty()) continue;  // isolated in this plane
      engine.run(origin);

      for (Asn vantage : vantages_) {
        if (vantage == origin) continue;
        if (af == IpVersion::V6 && !v6_capable(vantage)) continue;
        if (!engine.has_route(vantage)) continue;

        mrt::ObservedRoute route;
        route.af = af;
        route.prefix = prefix_of(origin, af);
        route.peer_asn = vantage;
        route.as_path = engine.advertised_path(vantage);
        route.local_pref = engine.locpref(vantage);

        // Reconstruct the communities the route carries when it reaches the
        // vantage.  Walk from the origin side: each AS on the way strips
        // and/or tags according to its profile.
        const std::vector<Asn> chain = collapse(route.as_path);
        std::vector<bgp::Community> communities;
        for (std::size_t i = chain.size() - 1; i-- > 0;) {
          const Asn node = chain[i];
          const Asn from = chain[i + 1];
          const AsProfile& pr = profile(node);
          if (pr.strips_communities) communities.clear();
          if (pr.tags_relationships) {
            std::uint16_t value = 0;
            switch (truth(af).get(node, from)) {
              case Relationship::P2C: value = pr.c_customer; break;
              case Relationship::P2P: value = pr.c_peer; break;
              case Relationship::C2P: value = pr.c_provider; break;
              case Relationship::S2S: value = pr.c_sibling; break;
              case Relationship::Unknown: break;
            }
            if (value != 0) {
              communities.emplace_back(static_cast<std::uint16_t>(node), value);
            }
          }
          if (te_.find(node, origin) != nullptr) {
            communities.emplace_back(static_cast<std::uint16_t>(node), pr.c_te_locpref);
          }
          if (pr.geo_tags && geo_tag_applies(node, origin)) {
            const std::uint16_t geo = static_cast<std::uint16_t>(
                pr.c_geo_base + (hash_mix(node, origin) & 3));
            communities.emplace_back(static_cast<std::uint16_t>(node), geo);
          }
          if (i > 0 && pr.policy.prepend_to_provider > 0 &&
              truth(af).get(node, chain[i - 1]) == Relationship::C2P) {
            communities.emplace_back(static_cast<std::uint16_t>(node), pr.c_prepend);
          }
        }
        route.communities = bgp::normalized(std::move(communities));
        rib.add(std::move(route));
      }
    }
  }
  return rib;
}

mrt::ObservedRib SyntheticInternet::collect_scaled(std::size_t max_vantages) const {
  mrt::ObservedRib rib;

  // Memoized min-ASN IPv4 provider per AS (0 = top of its hierarchy).  The
  // C2P relation is acyclic by construction (tiers buy upward; the only
  // lateral transit links are v6-only), so the chain walk terminates.
  std::unordered_map<Asn, Asn> up;
  auto provider_of = [&](Asn asn) {
    const auto it = up.find(asn);
    if (it != up.end()) return it->second;
    Asn best = 0;
    for (Asn n : graph_.neighbors(asn, IpVersion::V4)) {
      if (rels_v4_.get(asn, n) == Relationship::C2P && (best == 0 || n < best)) best = n;
    }
    up.emplace(asn, best);
    return best;
  };
  auto chain_of = [&](Asn asn) {
    std::vector<Asn> out{asn};
    for (Asn cur = provider_of(asn); cur != 0; cur = provider_of(cur)) {
      out.push_back(cur);
      if (out.size() > 16) break;  // defensive: planted hierarchies are ≤4 deep
    }
    return out;
  };

  std::vector<Asn> origins = graph_.ases();
  std::sort(origins.begin(), origins.end());

  for (std::size_t v = 0; v < vantages_.size() && v < max_vantages; ++v) {
    const Asn vantage = vantages_[v];
    const std::vector<Asn> vc = chain_of(vantage);
    for (Asn origin : origins) {
      if (origin == vantage) continue;
      const std::vector<Asn> oc = chain_of(origin);
      // Join at the first AS of the vantage chain that the origin chain
      // also crosses; with disjoint chains the two tier-1 tops peer in the
      // clique, so the concatenation is still a plausible path.
      std::vector<Asn> path;
      std::size_t join = oc.size();
      for (Asn hop : vc) {
        path.push_back(hop);
        const auto pos = std::find(oc.begin(), oc.end(), hop);
        if (pos != oc.end()) {
          join = static_cast<std::size_t>(pos - oc.begin());
          break;
        }
      }
      for (std::size_t i = join; i-- > 0;) path.push_back(oc[i]);

      mrt::ObservedRoute route;
      route.af = IpVersion::V4;
      route.prefix = prefix_of(origin, IpVersion::V4);
      route.peer_asn = vantage;
      route.as_path = std::move(path);
      route.local_pref = 100;
      rib.add(std::move(route));
    }
  }
  return rib;
}

}  // namespace htor::gen
