// P1: google-benchmark microbenchmarks for the hot paths of the pipeline —
// MRT record parsing, BGP UPDATE decode, community dictionary application,
// valley checking, and the constrained (valley-free) BFS.
#include <benchmark/benchmark.h>

#include "bgp/message.hpp"
#include "core/community_inference.hpp"
#include "harness.hpp"
#include "core/pipeline.hpp"
#include "gen/internet.hpp"
#include "mrt/reader.hpp"
#include "mrt/writer.hpp"
#include "rpsl/object.hpp"
#include "topology/reachability.hpp"
#include "topology/valley.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace htor;

/// Small shared dataset, built once.
struct DatasetBits {
  gen::SyntheticInternet net = gen::SyntheticInternet::generate(gen::small_params(3));
  mrt::ObservedRib rib = net.collect();
  std::vector<std::uint8_t> mrt_bytes;
  rpsl::CommunityDictionary dict;
  RelationshipMap rels;
  std::vector<std::vector<Asn>> paths;

  DatasetBits() {
    mrt::MrtWriter writer;
    for (const auto& rec : mrt::records_from_rib(rib, 1, "micro", 1281052800u)) {
      writer.write(rec);
    }
    mrt_bytes = writer.take();
    dict = rpsl::mine_dictionary(rpsl::parse_objects(net.irr_dump()));
    rels = net.truth(IpVersion::V6);
    for (const auto& route : rib.routes()) {
      if (route.af == IpVersion::V6) paths.push_back(route.as_path);
    }
  }
};

const DatasetBits& bits() {
  static const DatasetBits instance;
  return instance;
}

void BM_MrtParseRib(benchmark::State& state) {
  const auto& data = bits().mrt_bytes;
  std::uint64_t records = 0;
  for (auto _ : state) {
    mrt::MrtReader reader(data);
    while (auto rec = reader.next()) {
      benchmark::DoNotOptimize(rec);
      ++records;
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * data.size()));
  state.counters["records"] = static_cast<double>(records) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_MrtParseRib);

void BM_BgpUpdateRoundTrip(benchmark::State& state) {
  bgp::PathAttributes attrs;
  attrs.origin = bgp::Origin::Igp;
  attrs.as_path = bgp::AsPath::sequence({64500, 3356, 1299, 20940});
  attrs.local_pref = 120;
  attrs.communities = {bgp::Community(3356, 100), bgp::Community(1299, 2000)};
  const auto update = bgp::make_ipv6_update(attrs, IpAddress::parse("2001:db8::1"),
                                            {Prefix::parse("2001:db8:1000::/48")});
  for (auto _ : state) {
    const auto bytes = bgp::encode_message(update);
    ByteReader reader(bytes);
    auto decoded = bgp::decode_message(reader);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_BgpUpdateRoundTrip);

void BM_CommunityInference(benchmark::State& state) {
  const auto routes = bits().rib.routes_of(IpVersion::V6);
  for (auto _ : state) {
    auto result = core::infer_from_communities(routes, bits().dict);
    benchmark::DoNotOptimize(result);
  }
  state.counters["routes"] = static_cast<double>(routes.size());
}
BENCHMARK(BM_CommunityInference);

// The inference stage of the census (both families, communities + Rosetta)
// with the route scans sharded over a pool — Arg is the job count, so the
// speedup over /1 is the parallelization win on this machine.
void BM_InferRelationships(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  ThreadPool pool(jobs);
  core::InferenceConfig config;
  config.threads = jobs;
  for (auto _ : state) {
    auto result = core::infer_relationships(bits().rib, bits().dict, config, pool);
    benchmark::DoNotOptimize(result);
  }
  state.counters["routes"] = static_cast<double>(bits().rib.size());
  state.counters["jobs"] = static_cast<double>(jobs);
}
BENCHMARK(BM_InferRelationships)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// Full census (path stores, inference, hybrids, valley census) across job
// counts; reports are byte-identical, only wall time changes.
void BM_RunCensus(benchmark::State& state) {
  core::InferenceConfig config;
  config.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto report = core::run_census(bits().rib, bits().dict, config);
    benchmark::DoNotOptimize(report);
  }
  state.counters["jobs"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RunCensus)->Arg(1)->Arg(4)->UseRealTime();

void BM_ValleyCheck(benchmark::State& state) {
  const auto& rels = bits().rels;
  const auto& paths = bits().paths;
  std::size_t i = 0;
  for (auto _ : state) {
    auto result = check_valley_free(paths[i % paths.size()], rels);
    benchmark::DoNotOptimize(result);
    ++i;
  }
}
BENCHMARK(BM_ValleyCheck);

void BM_ConstrainedBfs(benchmark::State& state) {
  const auto& net = bits().net;
  ValleyFreeRouting vf(net.graph(), net.truth(IpVersion::V6), IpVersion::V6);
  const auto ases = net.v6_ases();
  std::size_t i = 0;
  for (auto _ : state) {
    auto dist = vf.distances_from(ases[i % ases.size()]);
    benchmark::DoNotOptimize(dist);
    ++i;
  }
  state.counters["nodes"] = static_cast<double>(vf.node_count());
}
BENCHMARK(BM_ConstrainedBfs);

void BM_DictionaryMining(benchmark::State& state) {
  const std::string irr = bits().net.irr_dump();
  for (auto _ : state) {
    auto dict = rpsl::mine_dictionary(rpsl::parse_objects(irr));
    benchmark::DoNotOptimize(dict);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * irr.size()));
}
BENCHMARK(BM_DictionaryMining);

}  // namespace

BENCHMARK_MAIN();
