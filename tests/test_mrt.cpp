// Unit tests for the MRT codec: record round trips, raw passthrough, file
// I/O, and the RIB view join in both directions.
#include <gtest/gtest.h>

#include <cstdio>

#include "mrt/reader.hpp"
#include "mrt/rib_view.hpp"
#include "mrt/writer.hpp"

namespace htor::mrt {
namespace {

Record round_trip(const Record& in) {
  MrtWriter w;
  w.write(in);
  MrtReader reader(w.data());
  auto out = reader.next();
  EXPECT_TRUE(out.has_value());
  EXPECT_FALSE(reader.next().has_value());
  return *out;
}

PeerIndexTable sample_pit() {
  PeerIndexTable pit;
  pit.collector_bgp_id = 0x0a0b0c0d;
  pit.view_name = "test-view";
  pit.peers.push_back({0x01010101, IpAddress::parse("10.0.0.1"), 64500});
  pit.peers.push_back({0x02020202, IpAddress::parse("2001:db8::2"), 3356});
  pit.peers.push_back({0x03030303, IpAddress::parse("10.0.0.3"), 4200000000u});  // AS4
  return pit;
}

TEST(Mrt, PeerIndexTableRoundTrip) {
  const Record in{1281052800u, sample_pit()};
  const Record out = round_trip(in);
  EXPECT_EQ(out, in);
}

TEST(Mrt, RibV4RoundTrip) {
  RibPrefixRecord rib;
  rib.sequence = 7;
  rib.prefix = Prefix::parse("192.0.2.0/24");
  RibEntry entry;
  entry.peer_index = 1;
  entry.originated_time = 1000;
  entry.attrs.origin = bgp::Origin::Igp;
  entry.attrs.as_path = bgp::AsPath::sequence({64500, 3356, 20940});
  entry.attrs.next_hop = IpAddress::parse("10.0.0.1");
  entry.attrs.communities = {bgp::Community(3356, 100)};
  rib.entries.push_back(entry);
  const Record out = round_trip(Record{123, rib});
  EXPECT_EQ(std::get<RibPrefixRecord>(out.body), rib);
}

TEST(Mrt, RibV6RoundTrip) {
  RibPrefixRecord rib;
  rib.prefix = Prefix::parse("2001:db8::/32");
  RibEntry entry;
  entry.attrs.as_path = bgp::AsPath::sequence({1, 2});
  entry.attrs.local_pref = 200;
  bgp::MpReachNlri mp;
  mp.next_hops = {IpAddress::parse("2001:db8::1")};
  entry.attrs.mp_reach = mp;
  rib.entries.push_back(entry);
  const Record out = round_trip(Record{0, rib});
  const auto& got = std::get<RibPrefixRecord>(out.body);
  EXPECT_EQ(got, rib);
}

TEST(Mrt, Bgp4mpMessageRoundTrip) {
  Bgp4mpMessage msg;
  msg.peer_as = 4200000001u;
  msg.local_as = 64500;
  msg.interface_index = 3;
  msg.peer_ip = IpAddress::parse("10.0.0.1");
  msg.local_ip = IpAddress::parse("10.0.0.2");
  msg.message = bgp::KeepaliveMessage{};
  const Record out = round_trip(Record{55, msg});
  EXPECT_EQ(std::get<Bgp4mpMessage>(out.body), msg);
}

TEST(Mrt, Bgp4mpIpv6SessionRoundTrip) {
  Bgp4mpMessage msg;
  msg.peer_as = 1;
  msg.local_as = 2;
  msg.peer_ip = IpAddress::parse("2001:db8::1");
  msg.local_ip = IpAddress::parse("2001:db8::2");
  msg.message = bgp::KeepaliveMessage{};
  const Record out = round_trip(Record{55, msg});
  EXPECT_EQ(std::get<Bgp4mpMessage>(out.body).peer_ip.version(), IpVersion::V6);
}

TEST(Mrt, RawRecordPassthrough) {
  RawRecord raw;
  raw.type = 48;     // TABLE_DUMP (legacy), unmodelled
  raw.subtype = 1;
  raw.payload = {9, 8, 7};
  const Record out = round_trip(Record{1, raw});
  EXPECT_EQ(std::get<RawRecord>(out.body), raw);
}

TEST(Mrt, TruncatedRecordThrows) {
  MrtWriter w;
  w.write(Record{1, sample_pit()});
  auto bytes = w.take();
  bytes.resize(bytes.size() - 3);
  MrtReader reader(bytes);
  EXPECT_THROW(reader.next(), DecodeError);
}

TEST(Mrt, SaveAndLoadFile) {
  MrtWriter w;
  w.write(Record{1, sample_pit()});
  const std::string path = ::testing::TempDir() + "/htor_test.mrt";
  w.save(path);
  const auto data = load_file(path);
  EXPECT_EQ(data, w.data());
  const auto records = read_all(data);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(std::get<PeerIndexTable>(records[0].body), sample_pit());
  std::remove(path.c_str());
  EXPECT_THROW(load_file("/nonexistent/nope.mrt"), Error);
}

// ---- RIB view -----------------------------------------------------------

ObservedRib sample_rib() {
  ObservedRib rib;
  ObservedRoute r4;
  r4.af = IpVersion::V4;
  r4.prefix = Prefix::parse("10.1.0.0/24");
  r4.peer_asn = 64500;
  r4.as_path = {64500, 3356, 100};
  r4.local_pref = 120;
  r4.communities = {bgp::Community(3356, 100)};
  rib.add(r4);

  ObservedRoute r6;
  r6.af = IpVersion::V6;
  r6.prefix = Prefix::parse("2001:db8:64::/48");
  r6.peer_asn = 3356;
  r6.as_path = {3356, 100};
  r6.communities = {bgp::Community(100, 200)};
  rib.add(r6);
  return rib;
}

TEST(RibView, CountsByFamily) {
  const auto rib = sample_rib();
  EXPECT_EQ(rib.size(), 2u);
  EXPECT_EQ(rib.size_of(IpVersion::V4), 1u);
  EXPECT_EQ(rib.size_of(IpVersion::V6), 1u);
  EXPECT_EQ(rib.routes_of(IpVersion::V6).size(), 1u);
  EXPECT_EQ(rib.routes_of(IpVersion::V6)[0]->origin_asn(), 100u);
}

TEST(RibView, MrtRoundTripPreservesRoutes) {
  const auto rib = sample_rib();
  const auto records = records_from_rib(rib, 0xc0ffee00u, "rt", 1281052800u);

  // Serialize to actual bytes and back.
  MrtWriter w;
  for (const auto& rec : records) w.write(rec);
  const auto parsed = read_all(w.data());
  const auto out = rib_from_records(parsed);

  ASSERT_EQ(out.size(), rib.size());
  // Order may differ (grouped by prefix); compare as sets.
  for (const auto& want : rib.routes()) {
    bool found = false;
    for (const auto& got : out.routes()) {
      if (got == want) found = true;
    }
    EXPECT_TRUE(found) << "route for " << want.prefix.to_string() << " lost in round trip";
  }
}

TEST(RibView, RejectsRibBeforePeerTable) {
  RibPrefixRecord rib;
  rib.prefix = Prefix::parse("10.0.0.0/8");
  rib.entries.push_back({});
  EXPECT_THROW(rib_from_records({Record{0, rib}}), DecodeError);
}

TEST(RibView, RejectsOutOfRangePeerIndex) {
  PeerIndexTable pit;  // no peers
  RibPrefixRecord rib;
  rib.prefix = Prefix::parse("10.0.0.0/8");
  RibEntry entry;
  entry.peer_index = 4;
  rib.entries.push_back(entry);
  EXPECT_THROW(rib_from_records({Record{0, pit}, Record{0, rib}}), DecodeError);
}

TEST(RibView, RejectsMoreThan16BitPeers) {
  // Regression: 65536 distinct vantage peers cannot be addressed by the
  // format's 16-bit peer index — the serializer used to truncate the index
  // silently; it must refuse with a reasoned error instead.
  ObservedRib rib;
  for (std::uint32_t asn = 1; asn <= 65536; ++asn) {
    ObservedRoute r;
    r.af = IpVersion::V4;
    r.prefix = Prefix::parse("10.0.0.0/8");
    r.peer_asn = asn;
    r.as_path = {asn};
    rib.add(std::move(r));
  }
  EXPECT_THROW(records_from_rib(rib, 1, "overflow", 0), InvalidArgument);
}

TEST(RibView, FlattensAsSets) {
  PeerIndexTable pit;
  pit.peers.push_back({1, IpAddress::parse("10.0.0.1"), 64500});
  RibPrefixRecord rib;
  rib.prefix = Prefix::parse("10.0.0.0/8");
  RibEntry entry;
  entry.peer_index = 0;
  bgp::AsPath path;
  path.add_segment({bgp::AsSegmentType::Sequence, {64500}});
  path.add_segment({bgp::AsSegmentType::Set, {1, 2}});
  entry.attrs.as_path = path;
  rib.entries.push_back(entry);
  const auto out = rib_from_records({Record{0, pit}, Record{0, rib}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.routes()[0].as_path, (std::vector<Asn>{64500, 1, 2}));
}

}  // namespace
}  // namespace htor::mrt
