// MRT deserializer: iterate the records of an in-memory or on-disk MRT file.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "mrt/record.hpp"
#include "util/bytes.hpp"

namespace htor::mrt {

class MrtReader {
 public:
  /// Read from an in-memory buffer (not copied; must outlive the reader).
  explicit MrtReader(std::span<const std::uint8_t> data) : reader_(data) {}

  /// Next record, or nullopt at clean end-of-stream.  Throws DecodeError on
  /// a truncated or structurally invalid record.
  std::optional<Record> next();

  /// Remaining unread bytes.
  std::size_t remaining() const { return reader_.remaining(); }

 private:
  ByteReader reader_;
};

/// Decode one record body given the common-header fields that frame it.
/// Modelled (type, subtype) pairs are fully validated and throw DecodeError
/// on malformed bytes; unmodelled ones come back as RawRecord.  This is the
/// per-record core shared by MrtReader and the streaming reader.
Record decode_record_body(std::uint32_t timestamp, std::uint16_t type, std::uint16_t subtype,
                          std::span<const std::uint8_t> body);

/// Load a whole file into memory.  Throws Error on I/O failure.
std::vector<std::uint8_t> load_file(const std::string& path);

/// Parse every record of a buffer.
std::vector<Record> read_all(std::span<const std::uint8_t> data);

}  // namespace htor::mrt
