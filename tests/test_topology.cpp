// Unit tests for the topology module: relationship maps, the per-family AS
// graph, and the path store.
#include <gtest/gtest.h>

#include "topology/as_graph.hpp"
#include "topology/path_store.hpp"
#include "topology/relationship.hpp"

namespace htor {
namespace {

TEST(Relationship, ReverseIsInvolution) {
  for (Relationship rel : {Relationship::P2C, Relationship::C2P, Relationship::P2P,
                           Relationship::S2S, Relationship::Unknown}) {
    EXPECT_EQ(reverse(reverse(rel)), rel);
  }
  EXPECT_EQ(reverse(Relationship::P2C), Relationship::C2P);
  EXPECT_EQ(reverse(Relationship::P2P), Relationship::P2P);
}

TEST(LinkKey, CanonicalOrder) {
  const LinkKey a(5, 3);
  EXPECT_EQ(a.first, 3u);
  EXPECT_EQ(a.second, 5u);
  EXPECT_EQ(a, LinkKey(3, 5));
  EXPECT_EQ(LinkKeyHash{}(a), LinkKeyHash{}(LinkKey(3, 5)));
}

TEST(RelationshipMap, DirectionalViews) {
  RelationshipMap rels;
  rels.set(1, 2, Relationship::P2C);  // 2 is 1's customer
  EXPECT_EQ(rels.get(1, 2), Relationship::P2C);
  EXPECT_EQ(rels.get(2, 1), Relationship::C2P);
  EXPECT_EQ(rels.get(1, 3), Relationship::Unknown);
  EXPECT_TRUE(rels.contains(2, 1));
  EXPECT_EQ(rels.size(), 1u);

  // Setting from the other side overwrites consistently.
  rels.set(2, 1, Relationship::P2P);
  EXPECT_EQ(rels.get(1, 2), Relationship::P2P);
  EXPECT_EQ(rels.size(), 1u);
}

TEST(RelationshipMap, NeighborQueries) {
  RelationshipMap rels;
  rels.set(10, 1, Relationship::P2C);
  rels.set(10, 2, Relationship::P2C);
  rels.set(10, 20, Relationship::P2P);
  rels.set(10, 30, Relationship::C2P);
  auto customers = rels.customers(10);
  std::sort(customers.begin(), customers.end());
  EXPECT_EQ(customers, (std::vector<Asn>{1, 2}));
  EXPECT_EQ(rels.peers(10), (std::vector<Asn>{20}));
  EXPECT_EQ(rels.providers(10), (std::vector<Asn>{30}));
  EXPECT_EQ(rels.providers(1), (std::vector<Asn>{10}));
  EXPECT_TRUE(rels.customers(99).empty());
}

TEST(RelationshipMap, Counts) {
  RelationshipMap rels;
  rels.set(1, 2, Relationship::P2C);
  rels.set(3, 4, Relationship::C2P);
  rels.set(5, 6, Relationship::P2P);
  rels.set(7, 8, Relationship::S2S);
  const auto c = rels.counts();
  EXPECT_EQ(c.transit, 2u);
  EXPECT_EQ(c.peering, 1u);
  EXPECT_EQ(c.sibling, 1u);
}

TEST(RelationshipMap, EraseAndForEach) {
  RelationshipMap rels;
  rels.set(1, 2, Relationship::P2C);
  rels.set(3, 4, Relationship::P2P);
  rels.erase(2, 1);
  EXPECT_EQ(rels.size(), 1u);
  int visits = 0;
  rels.for_each([&](const LinkKey& key, Relationship rel) {
    ++visits;
    EXPECT_EQ(key, LinkKey(3, 4));
    EXPECT_EQ(rel, Relationship::P2P);
  });
  EXPECT_EQ(visits, 1);
}

TEST(AsGraph, PerFamilyLinks) {
  AsGraph g;
  EXPECT_TRUE(g.add_link(1, 2, IpVersion::V4));
  EXPECT_FALSE(g.add_link(2, 1, IpVersion::V4));  // duplicate
  EXPECT_TRUE(g.add_link(1, 2, IpVersion::V6));   // same pair, other family
  EXPECT_TRUE(g.add_link(1, 3, IpVersion::V6));

  EXPECT_EQ(g.as_count(), 3u);
  EXPECT_EQ(g.link_count(IpVersion::V4), 1u);
  EXPECT_EQ(g.link_count(IpVersion::V6), 2u);
  EXPECT_EQ(g.dual_stack_link_count(), 1u);
  EXPECT_TRUE(g.has_link(1, 2, IpVersion::V4));
  EXPECT_FALSE(g.has_link(1, 3, IpVersion::V4));
  EXPECT_TRUE(g.has_link(1, 3));
  EXPECT_EQ(g.degree(1, IpVersion::V6), 2u);
  EXPECT_EQ(g.degree(1, IpVersion::V4), 1u);
  EXPECT_TRUE(g.neighbors(99, IpVersion::V4).empty());

  const auto duals = g.dual_stack_links();
  ASSERT_EQ(duals.size(), 1u);
  EXPECT_EQ(duals[0], LinkKey(1, 2));
  EXPECT_EQ(g.links(IpVersion::V6).size(), 2u);
}

TEST(AsGraph, SelfLinkRejected) {
  AsGraph g;
  EXPECT_THROW(g.add_link(1, 1, IpVersion::V4), InvalidArgument);
}

TEST(PathStore, DeduplicationAndCounts) {
  PathStore store;
  store.add({1, 2, 3});
  store.add({1, 2, 3});
  store.add({1, 2, 4});
  store.add({7});      // ignored: single AS
  store.add({});       // ignored: empty
  EXPECT_EQ(store.unique_paths(), 2u);
  EXPECT_EQ(store.total_occurrences(), 3u);

  std::uint64_t count_123 = 0;
  store.for_each([&](const std::vector<Asn>& path, std::uint64_t count) {
    if (path == std::vector<Asn>{1, 2, 3}) count_123 = count;
  });
  EXPECT_EQ(count_123, 2u);
}

TEST(PathStore, LinkExtraction) {
  PathStore store;
  store.add({1, 2, 3});
  store.add({2, 3, 4});
  store.add({5, 5, 6});  // prepending collapses: only link 5-6
  const auto links = store.links();
  EXPECT_EQ(links.size(), 4u);  // 1-2, 2-3, 3-4, 5-6
  EXPECT_EQ(store.paths_containing(2, 3), 2u);
  EXPECT_EQ(store.paths_containing(3, 2), 2u);  // unordered
  EXPECT_EQ(store.paths_containing(1, 3), 0u);
  EXPECT_EQ(store.paths_containing(5, 6), 1u);
}

TEST(PathStore, PathCountedOncePerLink) {
  PathStore store;
  store.add({1, 2, 1, 2});  // pathological path repeating a link
  EXPECT_EQ(store.paths_containing(1, 2), 1u);
}

}  // namespace
}  // namespace htor
