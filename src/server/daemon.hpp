// The query daemon: a long-running HTTP/1.1 server over one loaded snapshot.
//
// `hybridtor serve <snapshot> --port N` builds a QueryDaemon, which loads
// the snapshot once into a snapshot::QueryIndex and then serves lookups
// from memory — the daemon is what turns the batch census pipeline into a
// serving system.  Architecture:
//
//   - One acceptor thread polls the listening socket (200 ms ticks so stop
//     and reload requests are honoured promptly) and hands each accepted
//     connection to the shared util::ThreadPool, sized by --jobs.
//   - Each connection runs a keep-alive read/parse/respond pump built on
//     server::RequestParser; malformed or over-limit requests get a
//     reasoned 4xx JSON body and the connection closes.  A connection that
//     has nothing readable after one poll tick *yields its worker* — the
//     pump re-enqueues itself on the pool — so idle keep-alive clients
//     round-robin with new connections instead of pinning workers (two
//     lazy clients cannot starve /v1/healthz).  Idle connections are
//     reaped after `idle_timeout_ms`.
//   - The serving state (a zero-copy QueryIndex view + epoch counter) is
//     immutable behind a shared_ptr.  Hot reload — POST /v1/reload or
//     SIGHUP via request_reload() — is read-validate-swap: for a v2
//     snapshot the file bytes are validated in place and wrapped with no
//     per-entry decode (v1 files fall back to the eager decode path).  The
//     bytes are *owned*, not a live mmap of the file: the snapshot path can
//     be truncated or rewritten in place underneath a running daemon (the
//     torn-file stress tests do exactly that), and owned bytes fail that
//     race cleanly where a mapping would SIGBUS.  In-flight requests keep
//     the state they started with — views pin the old image until the last
//     reader drops — and a snapshot that fails to validate leaves the old
//     state serving (the error is reported in the 503 body and
//     /v1/metrics, which also records the reload's duration in µs).
//
// Endpoints (JSON bodies unless noted, shapes in server/render.hpp):
//   GET  /v1/link/<a>/<b>    oriented rel_v4 / rel_v6 / hybrid for one link
//   GET  /v1/neighbors/<asn> full neighbor list with both planes
//   GET  /v1/summary         dataset / coverage / valley / hybrid counters
//   GET  /v1/healthz         liveness + current epoch
//   GET  /v1/metrics         request counts, latency histogram, epoch (JSON)
//   GET  /metrics            Prometheus text exposition of the process-wide
//                            obs::MetricsRegistry (daemon, reload, thread
//                            pool, snapshot, ingest — everything)
//   POST /v1/reload          reload the snapshot file, swap on success
//
// Telemetry lives in obs::MetricsRegistry::global(); /v1/metrics and
// /metrics are two renderings of the same counters, so they can never
// disagree.  Recording points, fixed deliberately:
//
//   - Request/status counters increment in handle(), after route() returns —
//     so a metrics body rendered *inside* route() never counts its own
//     request, whichever exposition format asked.
//   - The latency histogram is recorded at exactly one point for every
//     endpoint: in the connection pump, after the response is fully
//     serialized and before the socket write.  Serialization is our work
//     and belongs in the measurement; socket write time measures the peer's
//     read behaviour, not us, and recording before the write guarantees a
//     client that reads its response and then scrapes sees its own request
//     (read-your-writes).  Socketless handle() calls (tests, the routing
//     bench) therefore record no latency sample — nothing was served.
#pragma once

#include <atomic>
#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "server/http.hpp"
#include "snapshot/query.hpp"
#include "snapshot/snapshot.hpp"
#include "util/thread_pool.hpp"

namespace htor::server {

struct DaemonConfig {
  std::uint16_t port = 8080;  ///< 0 binds an ephemeral port (see port())
  /// Connection worker pool size; 0 = one per hardware thread.  Floored at
  /// 2 actual workers so connections never run inline on the acceptor
  /// thread (ThreadPool's jobs<=1 inline mode would let one keep-alive
  /// client starve accepts and reloads).
  std::size_t jobs = 0;
  HttpLimits limits;          ///< parser bounds, per connection
  int idle_timeout_ms = 5000; ///< keep-alive connections are reaped after this
};

class QueryDaemon {
 public:
  /// Loads `snapshot_path` eagerly — a snapshot that does not decode fails
  /// construction, never a half-started daemon.
  QueryDaemon(std::string snapshot_path, DaemonConfig config = {});

  /// Serve an in-memory index with no backing file (the serve --follow
  /// path: epochs arrive via swap_index(), not reload()).  reload() on such
  /// a daemon fails gracefully with an explanatory error.
  explicit QueryDaemon(snapshot::QueryIndex index, DaemonConfig config = {});

  ~QueryDaemon();

  QueryDaemon(const QueryDaemon&) = delete;
  QueryDaemon& operator=(const QueryDaemon&) = delete;

  /// Bind, listen, and spawn the acceptor.  Throws Error on any socket
  /// failure (port in use, no permission).
  void start();

  /// Stop accepting, drain in-flight connections, join.  Idempotent.
  void stop();

  /// The port actually bound (resolves port 0 after start()).
  std::uint16_t port() const { return bound_port_; }

  /// Reload the snapshot file now (caller thread).  On success the new
  /// state is swapped in and the epoch advances; on failure the old state
  /// keeps serving and last_reload_error() explains why.
  bool reload();

  /// Async-signal-safe reload request (the SIGHUP handler calls this); the
  /// acceptor performs the reload on its next tick.
  void request_reload() { reload_requested_.store(true, std::memory_order_relaxed); }

  /// Swap a fresh index in (the live-follow publish path): the epoch
  /// advances and new requests see the new index immediately, while
  /// in-flight requests finish on the state they pinned — exactly the
  /// reload() swap discipline, minus the file read.
  void swap_index(snapshot::QueryIndex index);

  std::uint64_t epoch() const;
  std::string last_reload_error() const;

  /// Route one parsed request to a response.  Public so tests and the
  /// loopback bench can exercise routing without a socket.
  HttpResponse handle(const HttpRequest& request);

  /// The /v1/metrics body.
  std::string metrics_json() const;

 private:
  /// Immutable serving state; connections pin it with a shared_ptr so a
  /// reload never invalidates an in-flight request.  The index is a view
  /// over a shared snapshot image, so the state carries no decoded maps.
  struct ServingState {
    snapshot::QueryIndex index;
    std::uint64_t epoch;

    ServingState(snapshot::QueryIndex i, std::uint64_t e) : index(std::move(i)), epoch(e) {}
  };

  /// Per-connection pump state; lives on the heap across worker yields.
  struct Connection;
  enum class PumpResult { Finished, Yield };

  void register_metrics();
  std::shared_ptr<const ServingState> current() const;
  void accept_loop();
  /// Run `conn` until it finishes or yields; on yield, re-enqueue it.
  void pump_connection(std::shared_ptr<Connection> conn);
  /// One pump slice: drain buffered bytes, answer complete requests, poll
  /// one tick for more.  Yield = nothing readable yet, give the worker up.
  PumpResult pump(Connection& conn);
  void record(std::size_t endpoint, int status);
  HttpResponse route(const HttpRequest& request, std::size_t& endpoint);

  // Endpoint slots for the metrics counters.
  enum Endpoint : std::size_t { kLink, kNeighbors, kSummary, kHealthz, kMetrics, kReload, kOther, kEndpointCount };

  std::string snapshot_path_;
  DaemonConfig config_;

  mutable std::mutex state_mutex_;
  std::shared_ptr<const ServingState> state_;
  std::string last_reload_error_;
  std::mutex reload_mutex_;  ///< serializes concurrent reload() calls

  ThreadPool pool_;
  // lint: allow(naked-thread) dedicated acceptor; joined in stop()
  std::thread acceptor_;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> reload_requested_{false};
  // lint: allow(adhoc-atomic-counter) lifecycle state, not telemetry —
  // stop() spins on it to quiesce, so it must survive a registry reset;
  // the htor_http_active_connections gauge polls it via callback
  std::atomic<std::size_t> active_connections_{0};

  // Handles into MetricsRegistry::global() — resolved once at construction
  // so the request path never does a name lookup.  The JSON /v1/metrics
  // body and the Prometheus /metrics body both render from these (the JSON
  // shape is unchanged from when the daemon owned raw atomics).
  static constexpr std::size_t kLatencyBuckets = obs::Histogram::kBuckets;
  std::array<obs::Counter, kEndpointCount> endpoint_requests_;
  std::array<obs::Counter, 4> status_class_;  // 2xx,3xx,4xx,5xx
  obs::Histogram request_latency_;
  obs::Counter parse_failures_;
  obs::Counter reloads_ok_;
  obs::Counter reloads_failed_;
  obs::Gauge last_reload_us_;
  /// Polled gauges (epoch, active connections, pool queue depth / executed
  /// tasks).  Declared last: destroyed first, so no scrape can reach a
  /// callback after the members it reads are gone.
  std::vector<obs::CallbackMetric> polled_;
};

}  // namespace htor::server
