#include "core/hybrid.hpp"

#include <algorithm>
#include <unordered_set>

namespace htor::core {

const char* to_string(HybridClass cls) {
  switch (cls) {
    case HybridClass::PeerV4TransitV6: return "p2p(v4)/transit(v6)";
    case HybridClass::TransitV4PeerV6: return "transit(v4)/p2p(v6)";
    case HybridClass::Reversal: return "p2c(v4)/c2p(v6)";
    case HybridClass::OtherMix: return "other";
  }
  return "?";
}

namespace {

HybridClass classify(Relationship v4, Relationship v6) {
  const bool v4_transit = is_transit(v4);
  const bool v6_transit = is_transit(v6);
  if (v4 == Relationship::P2P && v6_transit) return HybridClass::PeerV4TransitV6;
  if (v4_transit && v6 == Relationship::P2P) return HybridClass::TransitV4PeerV6;
  if (v4_transit && v6_transit && v4 != v6) return HybridClass::Reversal;
  return HybridClass::OtherMix;
}

}  // namespace

HybridReport detect_hybrids(const std::vector<LinkKey>& dual_links, const RelationshipMap& v4,
                            const RelationshipMap& v6, const PathStore& v6_paths,
                            const std::unordered_map<Asn, Tier>* tiers) {
  HybridReport report;
  report.dual_links_observed = dual_links.size();

  std::unordered_set<LinkKey, LinkKeyHash> hybrid_set;
  for (const LinkKey& key : dual_links) {
    const Relationship r4 = v4.get(key.first, key.second);
    const Relationship r6 = v6.get(key.first, key.second);
    if (r4 == Relationship::Unknown || r6 == Relationship::Unknown) continue;
    ++report.dual_links_both_known;
    if (r4 == r6) continue;

    HybridFinding finding;
    finding.link = key;
    finding.rel_v4 = r4;
    finding.rel_v6 = r6;
    finding.cls = classify(r4, r6);
    finding.v6_path_visibility = v6_paths.paths_containing(key.first, key.second);
    switch (finding.cls) {
      case HybridClass::PeerV4TransitV6: ++report.peer_v4_transit_v6; break;
      case HybridClass::TransitV4PeerV6: ++report.transit_v4_peer_v6; break;
      case HybridClass::Reversal: ++report.reversals; break;
      case HybridClass::OtherMix: ++report.other_mix; break;
    }
    if (tiers != nullptr) {
      for (Asn endpoint : {key.first, key.second}) {
        auto it = tiers->find(endpoint);
        if (it != tiers->end()) ++report.endpoint_tiers[it->second];
      }
    }
    hybrid_set.insert(key);
    report.hybrids.push_back(std::move(finding));
  }

  std::sort(report.hybrids.begin(), report.hybrids.end(),
            [](const HybridFinding& a, const HybridFinding& b) {
              if (a.v6_path_visibility != b.v6_path_visibility) {
                return a.v6_path_visibility > b.v6_path_visibility;
              }
              return a.link < b.link;
            });

  report.v6_paths_total = v6_paths.unique_paths();
  v6_paths.for_each([&](const std::vector<Asn>& path, std::uint64_t) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (path[i] == path[i + 1]) continue;
      if (hybrid_set.count(LinkKey(path[i], path[i + 1]))) {
        ++report.v6_paths_with_hybrid;
        return;
      }
    }
  });
  return report;
}

}  // namespace htor::core
