#include "core/pipeline.hpp"

#include <unordered_set>

namespace htor::core {

InferredRelationships infer_relationships(const mrt::ObservedRib& rib,
                                          const rpsl::CommunityDictionary& dict,
                                          const InferenceConfig& config) {
  InferredRelationships out;

  for (IpVersion af : {IpVersion::V4, IpVersion::V6}) {
    const auto routes = rib.routes_of(af);
    auto& community = af == IpVersion::V4 ? out.community_v4 : out.community_v6;
    auto& rosetta = af == IpVersion::V4 ? out.rosetta_v4 : out.rosetta_v6;
    auto& rels = af == IpVersion::V4 ? out.v4 : out.v6;

    community = infer_from_communities(routes, dict, config.community);
    rels = community.rels;
    if (config.use_rosetta) {
      rosetta = run_rosetta(routes, dict, rels, config.rosetta);
      rosetta.first_hop_rels.for_each([&rels](const LinkKey& key, Relationship rel) {
        if (rels.get(key.first, key.second) == Relationship::Unknown) {
          rels.set(key.first, key.second, rel);
        }
      });
    }
  }
  return out;
}

PathStore paths_of(const mrt::ObservedRib& rib, IpVersion af) {
  PathStore store;
  for (const auto& route : rib.routes()) {
    if (route.af == af) store.add(route.as_path);
  }
  return store;
}

CoverageStats coverage(const std::vector<LinkKey>& links, const RelationshipMap& rels) {
  CoverageStats stats;
  stats.observed_links = links.size();
  for (const LinkKey& key : links) {
    if (rels.get(key.first, key.second) != Relationship::Unknown) ++stats.covered_links;
  }
  return stats;
}

std::vector<LinkKey> dual_stack_links(const PathStore& v4_paths, const PathStore& v6_paths) {
  const auto v4_links = v4_paths.links();
  std::unordered_set<LinkKey, LinkKeyHash> v4_set(v4_links.begin(), v4_links.end());
  std::vector<LinkKey> out;
  for (const LinkKey& key : v6_paths.links()) {
    if (v4_set.count(key)) out.push_back(key);
  }
  return out;
}

}  // namespace htor::core
