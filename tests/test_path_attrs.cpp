// Unit tests for the path-attribute wire codec: per-attribute round trips,
// flag handling, extended lengths, unknown-attribute passthrough, the MRT
// abbreviated MP_REACH form, and malformed-input rejection.
#include <gtest/gtest.h>

#include "bgp/path_attrs.hpp"

namespace htor::bgp {
namespace {

PathAttributes round_trip(const PathAttributes& in, MpReachForm form = MpReachForm::Full) {
  const auto bytes = encode_path_attributes(in, form);
  ByteReader r(bytes);
  return decode_path_attributes(r, form);
}

TEST(PathAttrs, EmptySet) {
  const PathAttributes attrs;
  EXPECT_TRUE(encode_path_attributes(attrs).empty());
  EXPECT_EQ(round_trip(attrs), attrs);
}

TEST(PathAttrs, FullIpv4RouteRoundTrip) {
  PathAttributes attrs;
  attrs.origin = Origin::Igp;
  attrs.as_path = AsPath::sequence({64500, 3356, 1299});
  attrs.next_hop = IpAddress::parse("192.0.2.1");
  attrs.med = 50;
  attrs.local_pref = 120;
  attrs.atomic_aggregate = true;
  attrs.aggregator = Aggregator{64500, IpAddress::parse("10.0.0.1")};
  attrs.communities = {Community(3356, 100), kNoExport};
  EXPECT_EQ(round_trip(attrs), attrs);
}

TEST(PathAttrs, Ipv6MpReachRoundTrip) {
  PathAttributes attrs;
  attrs.origin = Origin::Egp;
  attrs.as_path = AsPath::sequence({1, 2});
  MpReachNlri mp;
  mp.afi = Afi::Ipv6;
  mp.safi = Safi::Unicast;
  mp.next_hops = {IpAddress::parse("2001:db8::1"), IpAddress::parse("fe80::1")};
  mp.nlri = {Prefix::parse("2001:db8:1::/48"), Prefix::parse("2001:db8:2::/48")};
  attrs.mp_reach = mp;
  EXPECT_EQ(round_trip(attrs), attrs);
}

TEST(PathAttrs, MpUnreachRoundTrip) {
  PathAttributes attrs;
  MpUnreachNlri mp;
  mp.afi = Afi::Ipv6;
  mp.withdrawn = {Prefix::parse("2001:db8::/32")};
  attrs.mp_unreach = mp;
  EXPECT_EQ(round_trip(attrs), attrs);
}

TEST(PathAttrs, MrtRibAbbreviatedMpReach) {
  PathAttributes attrs;
  attrs.as_path = AsPath::sequence({65000, 65001});
  MpReachNlri mp;
  mp.next_hops = {IpAddress::parse("2001:db8::ff")};
  // NLRI intentionally absent: it lives in the MRT RIB header.
  attrs.mp_reach = mp;

  const auto decoded = round_trip(attrs, MpReachForm::MrtRib);
  ASSERT_TRUE(decoded.mp_reach.has_value());
  EXPECT_EQ(decoded.mp_reach->next_hops, mp.next_hops);
  EXPECT_TRUE(decoded.mp_reach->nlri.empty());
  EXPECT_EQ(decoded.mp_reach->afi, Afi::Ipv6);
}

TEST(PathAttrs, MrtRibFormInfersV4NextHop) {
  PathAttributes attrs;
  MpReachNlri mp;
  mp.afi = Afi::Ipv4;
  mp.next_hops = {IpAddress::parse("10.0.0.1")};
  attrs.mp_reach = mp;
  const auto decoded = round_trip(attrs, MpReachForm::MrtRib);
  ASSERT_TRUE(decoded.mp_reach.has_value());
  EXPECT_EQ(decoded.mp_reach->afi, Afi::Ipv4);
  EXPECT_EQ(decoded.mp_reach->next_hops[0].to_string(), "10.0.0.1");
}

TEST(PathAttrs, LargeCommunitiesRoundTrip) {
  PathAttributes attrs;
  attrs.large_communities = {{64500, 1, 2}, {64500, 3, 4}};
  EXPECT_EQ(round_trip(attrs), attrs);
}

TEST(PathAttrs, UnknownAttributePassthrough) {
  PathAttributes attrs;
  RawAttribute raw;
  raw.flags = kAttrFlagOptional | kAttrFlagTransitive;
  raw.type = 99;
  raw.payload = {1, 2, 3, 4};
  attrs.unknown = {raw};
  EXPECT_EQ(round_trip(attrs), attrs);
}

TEST(PathAttrs, ExtendedLengthForLargePayloads) {
  PathAttributes attrs;
  // 70 communities = 280 bytes > 255 -> needs the extended-length flag.
  for (std::uint16_t i = 0; i < 70; ++i) attrs.communities.emplace_back(64500, i);
  const auto bytes = encode_path_attributes(attrs);
  EXPECT_TRUE(bytes[0] & kAttrFlagExtendedLength);
  EXPECT_EQ(round_trip(attrs), attrs);
}

TEST(PathAttrs, AsSetSegmentRoundTrip) {
  PathAttributes attrs;
  AsPath p;
  p.add_segment({AsSegmentType::Sequence, {64500}});
  p.add_segment({AsSegmentType::Set, {1, 2, 3}});
  attrs.as_path = p;
  EXPECT_EQ(round_trip(attrs), attrs);
}

TEST(PathAttrs, MalformedInputsThrow) {
  {
    // ORIGIN with invalid value 7.
    const std::uint8_t bytes[] = {kAttrFlagTransitive, 1, 1, 7};
    ByteReader r(bytes);
    EXPECT_THROW(decode_path_attributes(r), DecodeError);
  }
  {
    // Attribute length runs past the buffer.
    const std::uint8_t bytes[] = {kAttrFlagTransitive, 8, 8, 0, 0};
    ByteReader r(bytes);
    EXPECT_THROW(decode_path_attributes(r), DecodeError);
  }
  {
    // COMMUNITIES payload not a multiple of 4.
    const std::uint8_t bytes[] = {kAttrFlagTransitive, 8, 3, 0, 0, 1};
    ByteReader r(bytes);
    EXPECT_THROW(decode_path_attributes(r), DecodeError);
  }
  {
    // AS_PATH with bad segment type.
    const std::uint8_t bytes[] = {kAttrFlagTransitive, 2, 2, 9, 0};
    ByteReader r(bytes);
    EXPECT_THROW(decode_path_attributes(r), DecodeError);
  }
}

TEST(PathAttrs, EncodeRejectsNonV4NextHop) {
  PathAttributes attrs;
  attrs.next_hop = IpAddress::parse("2001:db8::1");
  EXPECT_THROW(encode_path_attributes(attrs), InvalidArgument);
}

TEST(PathAttrs, HasCommunityHelper) {
  PathAttributes attrs;
  attrs.communities = {Community(1, 2)};
  EXPECT_TRUE(attrs.has_community(Community(1, 2)));
  EXPECT_FALSE(attrs.has_community(Community(1, 3)));
}

}  // namespace
}  // namespace htor::bgp
