// IPv4/IPv6 address value type.
//
// A single IpAddress type holds either family (IPv4 in the first 4 bytes of
// the 16-byte storage).  Text parsing accepts dotted-quad IPv4 and the full
// RFC 4291 IPv6 grammar ("::" compression, embedded IPv4 tail); formatting
// follows RFC 5952 (lowercase hex, longest zero run compressed).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace htor {

/// Address family of a route, link, or topology plane.
enum class IpVersion : std::uint8_t { V4 = 4, V6 = 6 };

inline const char* to_string(IpVersion v) { return v == IpVersion::V4 ? "IPv4" : "IPv6"; }

/// Number of address bytes for a family.
inline std::size_t address_bytes(IpVersion v) { return v == IpVersion::V4 ? 4 : 16; }

/// Number of address bits for a family.
inline std::uint8_t address_bits(IpVersion v) { return v == IpVersion::V4 ? 8 * 4 : 8 * 16; }

class IpAddress {
 public:
  /// The all-zeros IPv4 address.
  IpAddress() : version_(IpVersion::V4) { bytes_.fill(0); }

  /// From raw network-order bytes; `raw` must be 4 or 16 bytes matching `v`.
  IpAddress(IpVersion v, std::span<const std::uint8_t> raw);

  /// IPv4 from a host-order 32-bit value.
  static IpAddress v4(std::uint32_t host_order);

  /// IPv6 from 16 network-order bytes.
  static IpAddress v6(const std::array<std::uint8_t, 16>& raw);

  /// Parse either family from text ("192.0.2.1", "2001:db8::1").
  /// Throws ParseError on malformed input.
  static IpAddress parse(std::string_view text);

  /// Parse, returning false instead of throwing.
  static bool try_parse(std::string_view text, IpAddress& out);

  IpVersion version() const { return version_; }
  bool is_v4() const { return version_ == IpVersion::V4; }
  bool is_v6() const { return version_ == IpVersion::V6; }

  /// Network-order bytes (4 or 16 depending on family).
  std::span<const std::uint8_t> bytes() const { return {bytes_.data(), address_bytes(version_)}; }

  /// IPv4 value in host order.  Precondition: is_v4().
  std::uint32_t v4_value() const;

  /// Bit `i` (0 = most significant).  Precondition: i < address_bits().
  bool bit(std::uint8_t i) const;

  /// Copy with all bits from `keep_bits` onward cleared (host part zeroed).
  IpAddress masked(std::uint8_t keep_bits) const;

  /// Length of the common leading bit prefix with `other` (same family only).
  std::uint8_t common_prefix_len(const IpAddress& other) const;

  /// RFC 5952 / dotted-quad text form.
  std::string to_string() const;

  friend bool operator==(const IpAddress& a, const IpAddress& b) {
    return a.version_ == b.version_ && a.bytes_ == b.bytes_;
  }
  friend std::strong_ordering operator<=>(const IpAddress& a, const IpAddress& b) {
    if (a.version_ != b.version_) {
      return static_cast<std::uint8_t>(a.version_) <=> static_cast<std::uint8_t>(b.version_);
    }
    return a.bytes_ <=> b.bytes_;
  }

 private:
  IpVersion version_;
  std::array<std::uint8_t, 16> bytes_{};  // IPv4 uses the first 4 bytes.
};

}  // namespace htor
