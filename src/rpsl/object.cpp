#include "rpsl/object.hpp"

#include "util/strings.hpp"

namespace htor::rpsl {

namespace {
const std::string kEmpty;
}

const std::string& RpslObject::class_name() const {
  return attrs_.empty() ? kEmpty : attrs_.front().key;
}

std::optional<std::string_view> RpslObject::get(std::string_view key) const {
  for (const auto& attr : attrs_) {
    if (attr.key == key) return std::string_view(attr.value);
  }
  return std::nullopt;
}

std::vector<std::string_view> RpslObject::all(std::string_view key) const {
  std::vector<std::string_view> out;
  for (const auto& attr : attrs_) {
    if (attr.key == key) out.emplace_back(attr.value);
  }
  return out;
}

std::optional<Asn> RpslObject::autnum() const {
  if (class_name() != "aut-num") return std::nullopt;
  auto value = get("aut-num");
  if (!value) return std::nullopt;
  auto v = trim(*value);
  if (v.size() < 3 || (v[0] != 'A' && v[0] != 'a') || (v[1] != 'S' && v[1] != 's')) {
    return std::nullopt;
  }
  Asn asn = 0;
  if (!parse_asn(v.substr(2), asn)) return std::nullopt;
  return asn;
}

std::vector<RpslObject> parse_objects(std::string_view text) {
  std::vector<RpslObject> objects;
  std::vector<Attribute> current;

  auto flush = [&]() {
    if (!current.empty()) {
      objects.emplace_back(std::move(current));
      current.clear();
    }
  };

  for (std::string_view raw : split(text, '\n')) {
    // Strip a trailing CR from CRLF dumps.
    if (!raw.empty() && raw.back() == '\r') raw.remove_suffix(1);

    if (trim(raw).empty()) {
      flush();
      continue;
    }
    if (raw.front() == '%' || raw.front() == '#') continue;  // comment

    // Continuation: leading space/tab or '+'.
    if (raw.front() == ' ' || raw.front() == '\t' || raw.front() == '+') {
      if (!current.empty()) {
        std::string_view cont = raw.front() == '+' ? raw.substr(1) : raw;
        current.back().value += '\n';
        current.back().value += std::string(trim(cont));
      }
      continue;
    }

    const auto colon = raw.find(':');
    if (colon == std::string_view::npos) continue;  // malformed; skip
    Attribute attr;
    attr.key = to_lower(trim(raw.substr(0, colon)));
    attr.value = std::string(trim(raw.substr(colon + 1)));
    current.push_back(std::move(attr));
  }
  flush();
  return objects;
}

}  // namespace htor::rpsl
