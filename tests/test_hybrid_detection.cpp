// Tests for hybrid-link detection and assessment: classification of every
// hybrid class, visibility ranking, tier attribution, and end-to-end
// precision against the generator's planted ground truth.
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/census_report.hpp"
#include "gen/internet.hpp"
#include "mrt/reader.hpp"
#include "mrt/writer.hpp"
#include "rpsl/object.hpp"

namespace htor::core {
namespace {

TEST(HybridDetection, ClassifiesAllClasses) {
  RelationshipMap v4;
  RelationshipMap v6;
  // (1,2): p2p v4, p2c v6 -> PeerV4TransitV6.
  v4.set(1, 2, Relationship::P2P);
  v6.set(1, 2, Relationship::P2C);
  // (3,4): p2c v4, p2p v6 -> TransitV4PeerV6.
  v4.set(3, 4, Relationship::P2C);
  v6.set(3, 4, Relationship::P2P);
  // (5,6): p2c v4, c2p v6 -> Reversal.
  v4.set(5, 6, Relationship::P2C);
  v6.set(5, 6, Relationship::C2P);
  // (7,8): s2s v4, p2p v6 -> OtherMix.
  v4.set(7, 8, Relationship::S2S);
  v6.set(7, 8, Relationship::P2P);
  // (9,10): identical in both planes -> not hybrid.
  v4.set(9, 10, Relationship::P2C);
  v6.set(9, 10, Relationship::P2C);
  // (11,12): v6 side unknown -> not counted as "both known".
  v4.set(11, 12, Relationship::P2P);

  PathStore v6_paths;
  v6_paths.add({1, 2, 9});
  v6_paths.add({3, 4});
  v6_paths.add({9, 10});

  const std::vector<LinkKey> duals = {LinkKey(1, 2),  LinkKey(3, 4), LinkKey(5, 6),
                                      LinkKey(7, 8),  LinkKey(9, 10), LinkKey(11, 12)};
  const auto report = detect_hybrids(duals, v4, v6, v6_paths);

  EXPECT_EQ(report.dual_links_observed, 6u);
  EXPECT_EQ(report.dual_links_both_known, 5u);
  ASSERT_EQ(report.hybrids.size(), 4u);
  EXPECT_EQ(report.peer_v4_transit_v6, 1u);
  EXPECT_EQ(report.transit_v4_peer_v6, 1u);
  EXPECT_EQ(report.reversals, 1u);
  EXPECT_EQ(report.other_mix, 1u);
  EXPECT_NEAR(report.hybrid_fraction(), 4.0 / 5.0, 1e-9);

  // Path-level visibility: 2 of 3 v6 paths cross a hybrid link.
  EXPECT_EQ(report.v6_paths_total, 3u);
  EXPECT_EQ(report.v6_paths_with_hybrid, 2u);
}

TEST(HybridDetection, SortsByVisibility) {
  RelationshipMap v4;
  RelationshipMap v6;
  v4.set(1, 2, Relationship::P2P);
  v6.set(1, 2, Relationship::P2C);
  v4.set(3, 4, Relationship::P2P);
  v6.set(3, 4, Relationship::P2C);

  PathStore v6_paths;
  v6_paths.add({9, 3, 4});
  v6_paths.add({8, 3, 4});
  v6_paths.add({7, 3, 4, 5});
  v6_paths.add({9, 1, 2});

  const auto report =
      detect_hybrids({LinkKey(1, 2), LinkKey(3, 4)}, v4, v6, v6_paths);
  ASSERT_EQ(report.hybrids.size(), 2u);
  EXPECT_EQ(report.hybrids[0].link, LinkKey(3, 4));
  EXPECT_EQ(report.hybrids[0].v6_path_visibility, 3u);
  EXPECT_EQ(report.hybrids[1].v6_path_visibility, 1u);
}

TEST(HybridDetection, TierAttribution) {
  RelationshipMap v4;
  RelationshipMap v6;
  v4.set(1, 2, Relationship::P2P);
  v6.set(1, 2, Relationship::P2C);
  std::unordered_map<Asn, Tier> tiers{{1, Tier::Tier1}, {2, Tier::Tier2}};
  PathStore v6_paths;
  const auto report = detect_hybrids({LinkKey(1, 2)}, v4, v6, v6_paths, &tiers);
  EXPECT_EQ(report.endpoint_tiers.at(Tier::Tier1), 1u);
  EXPECT_EQ(report.endpoint_tiers.at(Tier::Tier2), 1u);
}

TEST(HybridDetection, RelationsAreCanonicalized) {
  RelationshipMap v4;
  RelationshipMap v6;
  // Set from the "wrong" side; detection must still agree with itself.
  v4.set(9, 2, Relationship::C2P);  // canonical: (2,9) P2C
  v6.set(2, 9, Relationship::P2P);
  PathStore v6_paths;
  const auto report = detect_hybrids({LinkKey(2, 9)}, v4, v6, v6_paths);
  ASSERT_EQ(report.hybrids.size(), 1u);
  EXPECT_EQ(report.hybrids[0].cls, HybridClass::TransitV4PeerV6);
}

// End-to-end: every hybrid the pipeline reports on a generated Internet must
// be a planted one (precision 1.0), across seeds.
class HybridPrecision : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HybridPrecision, NoFalsePositives) {
  const auto net = gen::SyntheticInternet::generate(gen::small_params(GetParam()));

  // Full wire round trip, as in the benches.
  mrt::MrtWriter writer;
  for (const auto& rec : mrt::records_from_rib(net.collect(), 1, "t", 0)) writer.write(rec);
  const auto rib = mrt::rib_from_records(mrt::read_all(writer.data()));
  const auto dict = rpsl::mine_dictionary(rpsl::parse_objects(net.irr_dump()));
  const auto census = run_census(rib, dict);

  std::unordered_set<LinkKey, LinkKeyHash> planted;
  for (const auto& h : net.hybrid_links()) planted.insert(h.link);

  for (const auto& finding : census.hybrids.hybrids) {
    EXPECT_TRUE(planted.count(finding.link))
        << "false hybrid AS" << finding.link.first << "-AS" << finding.link.second;
    // And the reported relationships must match the planted truth exactly.
    EXPECT_EQ(finding.rel_v4,
              net.truth(IpVersion::V4).get(finding.link.first, finding.link.second));
    EXPECT_EQ(finding.rel_v6,
              net.truth(IpVersion::V6).get(finding.link.first, finding.link.second));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HybridPrecision, ::testing::Values(3, 4, 5, 6));

}  // namespace
}  // namespace htor::core
