// FollowService: the continuous-census serving loop behind both
// `hybridtor serve --follow` and the live e2e tests.
//
//   1. Load the seed RIB and IRR dictionary, build the IncrementalCensus,
//      cut epoch 0, and start a QueryDaemon over its in-memory QueryIndex.
//   2. Run the live Pipeline over the update files on a background thread.
//   3. On every cut epoch, encode the census snapshot to a fresh QueryIndex
//      and swap_index() it into the daemon — PR 7's read-validate-swap with
//      the file read elided.  In-flight requests keep the state they
//      pinned; no connection is ever dropped by a swap.
//
// Staleness semantics: the daemon's answers lag the stream by at most
// `epoch_every` applied updates (htor_live_staleness_updates gauges the
// current lag; htor_daemon_epoch ticks on every publish).  When the stream
// is exhausted the last epoch has zero staleness and the daemon keeps
// serving it until stop().
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "live/incremental_census.hpp"
#include "live/pipeline.hpp"
#include "obs/metrics.hpp"
#include "rpsl/community_dict.hpp"
#include "server/daemon.hpp"
#include "util/thread_pool.hpp"

namespace htor::live {

struct FollowConfig {
  server::DaemonConfig daemon;
  PipelineConfig pipeline;
  core::InferenceConfig inference;
  /// Jobs for census work (initial census + epoch recomputes).
  std::size_t jobs = 1;
};

class FollowService {
 public:
  /// Loads the RIB and IRR file eagerly and builds epoch 0; throws on any
  /// load/parse failure, never a half-started service.
  FollowService(const std::string& rib_path, const std::string& irr_path,
                std::vector<std::string> update_paths, FollowConfig config = {});
  ~FollowService();

  FollowService(const FollowService&) = delete;
  FollowService& operator=(const FollowService&) = delete;

  /// Start the HTTP daemon, then the pipeline thread.
  void start();

  /// Block until the update stream is exhausted (the daemon keeps serving).
  /// Rethrows a pipeline failure (e.g. DecodeError mid-stream).
  void wait();

  /// Stop the pipeline (cooperative) and the daemon.  Idempotent.
  void stop();

  std::uint16_t port() const { return daemon_.port(); }
  server::QueryDaemon& daemon() { return daemon_; }
  const IncrementalCensus& census() const { return census_; }

  std::uint64_t epochs_published() const;
  PipelineResult result() const;

 private:
  void run_pipeline();

  std::vector<std::string> update_paths_;
  FollowConfig config_;
  ThreadPool census_pool_;
  rpsl::CommunityDictionary dict_;
  IncrementalCensus census_;
  server::QueryDaemon daemon_;
  Pipeline pipeline_;

  // lint: allow(naked-thread) dedicated pipeline driver; joined in stop()
  // (and by the destructor) before any member it uses is torn down
  std::thread runner_;
  bool started_ = false;

  mutable std::mutex mutex_;  ///< guards the fields below
  std::uint64_t epochs_published_ = 0;
  PipelineResult result_;
  std::exception_ptr pipeline_error_;
  bool finished_ = false;
  /// When the currently-served epoch was swapped in (epoch 0 = construction).
  std::chrono::steady_clock::time_point last_publish_ = std::chrono::steady_clock::now();

  /// htor_live_epoch_age_seconds: staleness of the served epoch in wall
  /// seconds — the observable side of the --epoch-every bound.  Registered
  /// last so it unregisters first, before anything it reads is torn down.
  obs::CallbackMetric epoch_age_metric_;
};

}  // namespace htor::live
