// End-to-end test for `serve --follow` (live::FollowService): the daemon
// answers /v1/link on a keep-alive connection WHILE the BGP4MP update
// stream is applied and epochs are swapped in underneath it — no dropped
// connections, the epoch counter advances with every publish, and
// GET /metrics exposes the htor_live_* pipeline series.
//
// Labeled `e2e` in CTest so the slow suites can be filtered with -LE e2e.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gen/internet.hpp"
#include "gen/updates.hpp"
#include "live/follow.hpp"
#include "mrt/writer.hpp"
#include "obs/metrics.hpp"

namespace htor::live {
namespace {

// ------------------------------------------------------------ tiny client
// (Same shape as test_server_e2e's client: blocking with a poll() timeout.)

class Client {
 public:
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return fd_ >= 0; }

  bool send_raw(std::string_view data) {
    while (!data.empty()) {
      const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
      if (n <= 0) return false;
      data.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
  }

  struct Response {
    bool ok = false;
    int status = 0;
    std::string body;
  };

  Response read_response() {
    Response resp;
    while (buffer_.find("\r\n\r\n") == std::string::npos) {
      if (!fill()) return resp;
    }
    const auto header_end = buffer_.find("\r\n\r\n") + 4;
    const std::string head = buffer_.substr(0, header_end);
    buffer_.erase(0, header_end);
    if (head.rfind("HTTP/1.1 ", 0) == 0 && head.size() > 12) {
      resp.status = std::atoi(head.c_str() + 9);
    }
    std::size_t content_length = 0;
    const auto cl = head.find("Content-Length: ");
    if (cl != std::string::npos) {
      content_length = static_cast<std::size_t>(std::atol(head.c_str() + cl + 16));
    }
    while (buffer_.size() < content_length) {
      if (!fill()) return resp;
    }
    resp.body = buffer_.substr(0, content_length);
    buffer_.erase(0, content_length);
    resp.ok = true;
    return resp;
  }

 private:
  bool fill() {
    pollfd pfd{fd_, POLLIN, 0};
    if (::poll(&pfd, 1, 5000) <= 0) return false;
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    buffer_.append(buf, static_cast<std::size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string buffer_;
};

Client::Response fetch(std::uint16_t port, const std::string& method,
                       const std::string& target) {
  Client client(port);
  EXPECT_TRUE(client.connected());
  EXPECT_TRUE(client.send_raw(method + " " + target + " HTTP/1.1\r\nConnection: close\r\n\r\n"));
  return client.read_response();
}

// --------------------------------------------------------------- fixture

/// On-disk inputs shared by every test: seed RIB, IRR dump, update stream.
struct LiveFiles {
  std::string dir;
  std::string rib;
  std::string irr;
  std::string updates;
  std::size_t update_count = 0;
};

const LiveFiles& files() {
  static const LiveFiles f = [] {
    LiveFiles out;
    out.dir = (std::filesystem::temp_directory_path() /
               ("htor_live_e2e_" + std::to_string(::getpid())))
                  .string();
    std::filesystem::create_directories(out.dir);
    const auto net = gen::SyntheticInternet::generate(gen::small_params(7));
    const auto rib = net.collect();

    mrt::MrtWriter rib_writer;
    for (const auto& rec : mrt::records_from_rib(rib, 0x0a0a0a0au, "live-e2e", 1281052800u)) {
      rib_writer.write(rec);
    }
    out.rib = out.dir + "/rib.mrt";
    rib_writer.save(out.rib);

    out.irr = out.dir + "/irr.txt";
    std::ofstream irr(out.irr);
    irr << net.irr_dump();
    irr.flush();

    gen::UpdateScheduleParams params;
    params.events = 2500;
    const auto updates = gen::synthesize_updates(rib, params);
    mrt::MrtWriter update_writer;
    for (const auto& rec : updates) update_writer.write(rec);
    out.updates = out.dir + "/updates.mrt";
    update_writer.save(out.updates);
    out.update_count = updates.size();
    return out;
  }();
  return f;
}

FollowConfig follow_config(std::uint64_t epoch_every) {
  FollowConfig config;
  config.daemon.port = 0;  // ephemeral
  config.daemon.jobs = 2;
  config.pipeline.epoch_every = epoch_every;
  config.jobs = 1;
  return config;
}

// ------------------------------------------------------------------ tests

TEST(LiveFollowE2E, ServesQueriesWhileStreamingAndAdvancesEpochs) {
  obs::MetricsRegistry::global().reset_values();
  const LiveFiles& f = files();
  FollowService service(f.rib, f.irr, {f.updates}, follow_config(100));

  // A link the seed census types, so /v1/link answers 200 from epoch 1 on.
  LinkKey probe(0, 0);
  service.census().live_rels(IpVersion::V4).for_each(
      [&](const LinkKey& key, Relationship) {
        if (probe.first == 0) probe = key;
      });
  ASSERT_NE(probe.first, probe.second);

  service.start();
  ASSERT_NE(service.port(), 0);

  // Hammer one keep-alive connection for the whole stream: every request
  // must get a complete 200 while epochs swap in underneath.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> served{0};
  std::atomic<bool> broken{false};
  const std::string request = "GET /v1/link/" + std::to_string(probe.first) + "/" +
                              std::to_string(probe.second) + " HTTP/1.1\r\n\r\n";
  std::thread hammer([&] {
    Client client(service.port());
    if (!client.connected()) {
      broken.store(true);
      return;
    }
    while (!stop.load()) {
      if (!client.send_raw(request)) {
        broken.store(true);
        return;
      }
      const auto resp = client.read_response();
      if (!resp.ok || resp.status != 200 || resp.body.empty()) {
        broken.store(true);
        return;
      }
      served.fetch_add(1);
    }
  });

  service.wait();  // update stream exhausted; daemon still serving
  stop.store(true);
  hammer.join();

  EXPECT_FALSE(broken.load()) << "a keep-alive connection broke during epoch swaps";
  EXPECT_GT(served.load(), 0u);

  const auto result = service.result();
  EXPECT_FALSE(result.stopped);
  EXPECT_EQ(result.applied, f.update_count);
  EXPECT_EQ(result.records, f.update_count);
  EXPECT_GE(service.epochs_published(), 2u);
  EXPECT_EQ(result.epochs, service.epochs_published());
  // Every publish advanced the daemon's epoch: seed epoch 1 + one per swap.
  EXPECT_EQ(service.daemon().epoch(), 1 + service.epochs_published());

  const auto health = fetch(service.port(), "GET", "/v1/healthz");
  ASSERT_TRUE(health.ok);
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"epoch\":" + std::to_string(service.daemon().epoch())),
            std::string::npos)
      << health.body;

  // The Prometheus exposition carries the live pipeline series.
  const auto metrics = fetch(service.port(), "GET", "/metrics");
  ASSERT_TRUE(metrics.ok);
  for (const char* name :
       {"htor_live_records_total", "htor_live_updates_total", "htor_live_epochs_total",
        "htor_live_routes", "htor_live_staleness_updates"}) {
    EXPECT_NE(metrics.body.find(name), std::string::npos) << "missing " << name;
  }
  EXPECT_NE(metrics.body.find("htor_live_records_total " + std::to_string(f.update_count)),
            std::string::npos)
      << "records counter should equal the stream length";

  service.stop();
}

TEST(LiveFollowE2E, ReloadFailsGracefullyOnInMemoryIndex) {
  obs::MetricsRegistry::global().reset_values();
  const LiveFiles& f = files();
  FollowService service(f.rib, f.irr, {f.updates}, follow_config(0));
  service.start();
  service.wait();

  // POST /v1/reload: there is no snapshot file behind this daemon — the
  // reload must fail with a reasoned 503, not crash or swap garbage.
  const auto before = service.daemon().epoch();
  const auto resp = fetch(service.port(), "POST", "/v1/reload");
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.status, 503);
  EXPECT_NE(resp.body.find("live in-memory index"), std::string::npos) << resp.body;
  EXPECT_EQ(service.daemon().epoch(), before) << "a failed reload must not advance the epoch";

  // The daemon keeps serving afterwards.
  const auto health = fetch(service.port(), "GET", "/v1/healthz");
  EXPECT_EQ(health.status, 200);
  service.stop();
}

TEST(LiveFollowE2E, StopMidStreamIsCleanAndIdempotent) {
  obs::MetricsRegistry::global().reset_values();
  const LiveFiles& f = files();
  FollowService service(f.rib, f.irr, {f.updates}, follow_config(50));
  service.start();
  // Stop as early as possible: whichever stage the pipeline is in, stop()
  // must join cleanly, and a second stop() must be a no-op.
  service.stop();
  service.stop();
  SUCCEED();
}

}  // namespace
}  // namespace htor::live
