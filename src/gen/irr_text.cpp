// Emission of the synthetic IRR dump: one aut-num object per publishing AS,
// documenting its community scheme in "remarks:" prose.  Three phrasing
// dialects mirror the heterogeneity of real operator documentation; a small
// "cryptic" population publishes prose no miner can interpret, capping the
// dictionary's reach exactly the way real IRR data does.
#include <algorithm>
#include <sstream>

#include "gen/internet.hpp"

namespace htor::gen {

namespace {

struct Phrasing {
  const char* customer;
  const char* peer;
  const char* provider;
  const char* sibling;
  const char* te_locpref;  // printf-style with one %u for the value
  const char* prepend;
  const char* geo;  // with one %u for the region index
};

constexpr Phrasing kPhrasings[3] = {
    {"routes learned from customers", "routes learned from peers",
     "routes learned from upstream providers", "routes from sibling ASes",
     "set local-pref to %u (backup)", "prepend once towards peers",
     "route originated in city-%u"},
    {"customer routes", "peer routes received at public peering",
     "transit provider routes", "internal routes of our backbone",
     "sets local preference to %u", "prepend twice on export",
     "received in region %u"},
    {"received from customer", "received from peering partner",
     "received from upstream transit", "routes from sibling",
     "local-pref %u applied on ingress", "prepend 3x towards upstreams",
     "PoP %u ingress"},
};

std::string format_one(const char* fmt, unsigned value) {
  char buf[128];
  std::snprintf(buf, sizeof buf, fmt, value);
  return buf;
}

void remark(std::ostringstream& os, Asn asn, std::uint16_t value, const std::string& text) {
  os << "remarks:        " << asn << ":" << value << "   " << text << "\n";
}

}  // namespace

std::string SyntheticInternet::irr_dump() const {
  std::vector<Asn> publishers;
  for (const auto& [asn, profile] : profiles_) {
    if (profile.publishes_irr) publishers.push_back(asn);
  }
  std::sort(publishers.begin(), publishers.end());

  std::ostringstream os;
  os << "% Synthetic IRR dump (hybridtor); format follows RPSL whois output\n\n";
  for (Asn asn : publishers) {
    const AsProfile& pr = profiles_.at(asn);
    os << "aut-num:        AS" << asn << "\n";
    os << "as-name:        SYNTH-" << asn << "\n";
    os << "descr:          synthetic " << to_string(pr.tier) << " AS\n";
    os << "remarks:        ===== BGP communities =====\n";
    if (pr.cryptic_remarks) {
      // Documented, but in prose no dictionary miner can act on.
      remark(os, asn, pr.c_customer, "type A routes");
      remark(os, asn, pr.c_peer, "type B routes");
      remark(os, asn, pr.c_provider, "type C routes");
    } else {
      const Phrasing& ph = kPhrasings[pr.phrasing_style % 3];
      remark(os, asn, pr.c_customer, ph.customer);
      remark(os, asn, pr.c_peer, ph.peer);
      remark(os, asn, pr.c_provider, ph.provider);
      remark(os, asn, pr.c_sibling, ph.sibling);
      remark(os, asn, pr.c_te_locpref,
             format_one(ph.te_locpref, static_cast<unsigned>(pr.te_locpref_value)));
      remark(os, asn, pr.c_prepend, ph.prepend);
      for (unsigned g = 0; g < 4; ++g) {
        remark(os, asn, static_cast<std::uint16_t>(pr.c_geo_base + g),
               format_one(ph.geo, g + 1));
      }
    }
    os << "mnt-by:         MAINT-AS" << asn << "\n";
    os << "source:         SYNTHIRR\n";
    os << "\n";
  }
  return os.str();
}

}  // namespace htor::gen
