#include "propagation/engine.hpp"

#include <deque>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace htor::prop {

namespace {
/// Parent-chain walks are bounded: real AS paths are an order of magnitude
/// shorter, and the bound keeps transient parent cycles from hanging a walk.
constexpr std::size_t kMaxPathWalk = 64;

/// LocPrf assigned to routes received through an upward relaxation (a
/// customer leaking peer-/provider-learned routes to its provider).  Such
/// last-resort-transit arrangements are depreffed below every normal scheme,
/// so they only carry traffic that has no policy-compliant alternative.
constexpr std::uint32_t kLastResortLocPref = 20;
}  // namespace

Engine::Engine(const AsGraph& graph, const RelationshipMap& rels, IpVersion af,
               const std::unordered_map<Asn, NodePolicy>& policies, const TeOverrides* te)
    : te_(te) {
  asns_ = graph.ases();
  index_.reserve(asns_.size());
  for (std::size_t i = 0; i < asns_.size(); ++i) {
    index_.emplace(asns_[i], static_cast<std::uint32_t>(i));
  }
  adj_.resize(asns_.size());
  policy_.resize(asns_.size());
  for (std::size_t i = 0; i < asns_.size(); ++i) {
    auto it = policies.find(asns_[i]);
    if (it != policies.end()) policy_[i] = it->second;
  }
  graph.for_each_link(af, [&](const LinkKey& key) {
    const Relationship rel = rels.get(key.first, key.second);
    if (rel == Relationship::Unknown) return;
    const std::uint32_t a = index_.at(key.first);
    const std::uint32_t b = index_.at(key.second);
    adj_[a].push_back({b, rel});
    adj_[b].push_back({a, reverse(rel)});
  });
  best_.resize(asns_.size());
}

std::uint32_t Engine::index_of(Asn asn) const {
  auto it = index_.find(asn);
  if (it == index_.end()) throw InvalidArgument("Engine: unknown AS" + std::to_string(asn));
  return it->second;
}

RouteSource Engine::source_of(Relationship rel_node_to_parent) {
  switch (rel_node_to_parent) {
    case Relationship::P2C: return RouteSource::Customer;  // parent is my customer
    case Relationship::P2P: return RouteSource::Peer;
    case Relationship::C2P: return RouteSource::Provider;
    case Relationship::S2S: return RouteSource::Sibling;
    case Relationship::Unknown: break;
  }
  return RouteSource::None;
}

Engine::ExportClass Engine::exportable(const Best& route, Relationship rel_exporter_to_target,
                                       const NodePolicy& exporter, Asn exporter_asn) const {
  // Everything goes to customers and siblings.
  if (rel_exporter_to_target == Relationship::P2C ||
      rel_exporter_to_target == Relationship::S2S) {
    return ExportClass::Normal;
  }
  // To peers and providers: own and customer-learned routes only
  // (Gao-Rexford); ordinary relaxation opens a selected slice of peer-/
  // provider-learned routes to peers (partial transit, taken at normal peer
  // preference); full healer relaxation opens everything in every direction
  // but is depreffed by the receiver.
  switch (route.effective) {
    case RouteSource::Origin:
    case RouteSource::Customer:
      return ExportClass::Normal;
    case RouteSource::Peer:
    case RouteSource::Provider:
      if (rel_exporter_to_target == Relationship::P2P && exporter.relaxed_export &&
          hash_unit(hash_mix(static_cast<std::uint64_t>(exporter_asn) << 32 | origin_asn_,
                             0x5e1ec7ull)) < exporter.relax_origin_fraction) {
        return ExportClass::Normal;
      }
      if (exporter.relaxed_export_up) return ExportClass::LastResort;
      return ExportClass::No;
    case RouteSource::Sibling:  // effective class is never Sibling
    case RouteSource::None:
      return ExportClass::No;
  }
  return ExportClass::No;
}

bool Engine::path_contains(std::uint32_t start, std::uint32_t node) const {
  std::uint32_t cur = start;
  for (std::size_t steps = 0; steps < kMaxPathWalk; ++steps) {
    if (cur == node) return true;
    const Best& b = best_[cur];
    if (b.source == RouteSource::None || b.source == RouteSource::Origin) return false;
    cur = b.parent;
  }
  return true;  // over-long chain: treat as a loop and reject
}

void Engine::run(Asn origin) {
  origin_asn_ = origin;
  origin_idx_ = index_of(origin);
  const std::size_t n = asns_.size();

  best_.assign(n, Best{});
  best_[origin_idx_].source = RouteSource::Origin;
  best_[origin_idx_].effective = RouteSource::Origin;
  best_[origin_idx_].parent = origin_idx_;

  std::deque<std::uint32_t> queue;
  std::vector<bool> queued(n, false);
  auto enqueue = [&](std::uint32_t node) {
    if (node != origin_idx_ && !queued[node]) {
      queued[node] = true;
      queue.push_back(node);
    }
  };
  for (const Edge& e : adj_[origin_idx_]) enqueue(e.to);

  activations_ = 0;
  converged_ = true;
  const std::size_t activation_cap = 400 * n + 1000;

  while (!queue.empty() && activations_ < activation_cap) {
    const std::uint32_t m = queue.front();
    queue.pop_front();
    queued[m] = false;
    ++activations_;

    Best chosen;  // source None = no route
    for (const Edge& e : adj_[m]) {
      const Best& route = best_[e.to];
      if (route.source == RouteSource::None) continue;
      const Relationship rel_n_to_m = reverse(e.rel);
      const ExportClass export_class =
          exportable(route, rel_n_to_m, policy_[e.to], asns_[e.to]);
      if (export_class == ExportClass::No) continue;
      if (path_contains(e.to, m)) continue;

      Best cand;
      cand.parent = e.to;
      cand.source = source_of(e.rel);
      // Sibling hops are transparent for export purposes.
      cand.effective = cand.source == RouteSource::Sibling ? route.effective : cand.source;
      const std::uint32_t prepends =
          rel_n_to_m == Relationship::C2P ? policy_[e.to].prepend_to_provider : 0;
      cand.length = route.length + 1 + prepends;
      const std::uint32_t* override_lp =
          te_ ? te_->find(asns_[m], origin_asn_) : nullptr;
      if (export_class == ExportClass::LastResort) {
        cand.locpref = kLastResortLocPref;  // depreffed last-resort transit
      } else if (override_lp) {
        cand.locpref = *override_lp;
      } else {
        const NodePolicy& pol = policy_[m];
        switch (e.rel) {
          case Relationship::P2C: cand.locpref = pol.lp_customer; break;
          case Relationship::P2P: cand.locpref = pol.lp_peer; break;
          case Relationship::C2P: cand.locpref = pol.lp_provider; break;
          case Relationship::S2S: cand.locpref = pol.lp_sibling; break;
          case Relationship::Unknown: continue;
        }
      }

      if (chosen.source == RouteSource::None) {
        chosen = cand;
        continue;
      }
      if (cand.locpref != chosen.locpref) {
        if (cand.locpref > chosen.locpref) chosen = cand;
        continue;
      }
      if (cand.length != chosen.length) {
        if (cand.length < chosen.length) chosen = cand;
        continue;
      }
      if (asns_[cand.parent] < asns_[chosen.parent]) chosen = cand;
    }

    const Best& cur = best_[m];
    const bool changed = cur.source != chosen.source || cur.parent != chosen.parent ||
                         cur.effective != chosen.effective ||
                         cur.locpref != chosen.locpref || cur.length != chosen.length;
    if (changed) {
      best_[m] = chosen;
      for (const Edge& e : adj_[m]) enqueue(e.to);
    }
  }

  if (!queue.empty()) {
    converged_ = false;
    repair_broken_chains();
  }
}

void Engine::repair_broken_chains() {
  // After a capped (oscillating) run the parent pointers may contain cycles
  // or dangle on routeless nodes.  Drop every route whose chain does not
  // reach the origin; iterate because dropping a route orphans its
  // dependents.
  bool changed = true;
  std::size_t rounds = 0;
  while (changed && rounds++ < 2 * kMaxPathWalk) {
    changed = false;
    for (std::uint32_t node = 0; node < best_.size(); ++node) {
      if (best_[node].source == RouteSource::None ||
          best_[node].source == RouteSource::Origin) {
        continue;
      }
      std::uint32_t cur = node;
      bool ok = false;
      for (std::size_t steps = 0; steps < kMaxPathWalk; ++steps) {
        const Best& b = best_[cur];
        if (b.source == RouteSource::Origin) {
          ok = true;
          break;
        }
        if (b.source == RouteSource::None) break;
        cur = b.parent;
      }
      if (!ok) {
        best_[node] = Best{};
        changed = true;
      }
    }
  }
}

bool Engine::has_route(Asn node) const {
  return best_[index_of(node)].source != RouteSource::None;
}

std::vector<Asn> Engine::advertised_path(Asn node) const {
  const std::uint32_t start = index_of(node);
  if (best_[start].source == RouteSource::None) return {};

  std::vector<Asn> path{asns_[start]};
  std::uint32_t cur = start;
  for (std::size_t steps = 0; steps < kMaxPathWalk; ++steps) {
    const Best& b = best_[cur];
    if (b.source == RouteSource::Origin) return path;
    const std::uint32_t parent = b.parent;
    // Prepending the parent applied when exporting to `cur`: only toward its
    // provider, i.e. when cur is parent's provider.
    Relationship rel_cur_to_parent = Relationship::Unknown;
    for (const Edge& e : adj_[cur]) {
      if (e.to == parent) {
        rel_cur_to_parent = e.rel;
        break;
      }
    }
    const Relationship rel_parent_to_cur = reverse(rel_cur_to_parent);
    const std::uint32_t prepends =
        rel_parent_to_cur == Relationship::C2P ? policy_[parent].prepend_to_provider : 0;
    for (std::uint32_t i = 0; i < 1 + prepends; ++i) path.push_back(asns_[parent]);
    cur = parent;
  }
  throw Error("Engine::advertised_path: parent chain too long (non-converged state)");
}

std::uint32_t Engine::locpref(Asn node) const { return best_[index_of(node)].locpref; }

RouteSource Engine::source(Asn node) const { return best_[index_of(node)].source; }

std::optional<Asn> Engine::best_neighbor(Asn node) const {
  const Best& b = best_[index_of(node)];
  if (b.source == RouteSource::None || b.source == RouteSource::Origin) return std::nullopt;
  return asns_[b.parent];
}

}  // namespace htor::prop
