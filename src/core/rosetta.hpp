// The LocPrf "Rosetta stone" (paper §2).
//
// LocPrf values are operator-local: 100 may mean "customer" at one AS and
// "backup provider" at another.  Routes whose first-hop relationship is
// already known from communities *translate* the vantage's LocPrf scheme:
// once a (vantage, LocPrf value) pair is seen consistently with one
// relationship, the value can type first-hop links that communities did not
// cover.  Routes carrying a traffic-engineering community that overrides
// LocPrf are excluded from both learning and application — without this
// filter the scheme learns noise (quantified by bench_ablation_inference).
#pragma once

#include <cstdint>
#include <vector>

#include "mrt/rib_view.hpp"
#include "rpsl/community_dict.hpp"
#include "topology/relationship.hpp"

namespace htor::core {

struct RosettaParams {
  /// Samples required before a (vantage, value) pair is trusted.
  std::uint32_t min_samples = 3;
  /// Disable the TE filter (ablation only; keeps SetLocPref-tagged routes).
  bool filter_te = true;
};

struct RosettaResult {
  /// First-hop links typed by LocPrf translation (links already covered by
  /// communities are never re-typed here).
  RelationshipMap first_hop_rels;
  std::size_t values_learned = 0;    ///< usable (vantage, value) entries
  std::size_t values_ambiguous = 0;  ///< value maps to >1 relationship
  std::uint64_t routes_te_filtered = 0;
  std::uint64_t routes_resolved = 0;  ///< routes whose first hop got typed
};

RosettaResult run_rosetta(const std::vector<const mrt::ObservedRoute*>& routes,
                          const rpsl::CommunityDictionary& dict, const RelationshipMap& known,
                          const RosettaParams& params = {});

}  // namespace htor::core
