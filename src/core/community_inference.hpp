// Relationship extraction from BGP Communities (the paper's §2 method).
//
// For an observed AS path  p0 p1 … pk  (p0 = vantage peer, pk = origin),
// a community  pi:v  whose mined meaning is a relationship ingress tag
// asserts how pi learned the route from p_{i+1}: "learned from customer"
// means p_{i+1} is pi's customer, i.e. rel(pi, p_{i+1}) = p2c.  Every
// observed route casts votes for the links its tags can localize; links are
// then typed by majority, and contradicting majorities are flagged instead
// of guessed.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mrt/rib_view.hpp"
#include "rpsl/community_dict.hpp"
#include "topology/relationship.hpp"
#include "util/thread_pool.hpp"

namespace htor::core {

struct CommunityInferenceParams {
  /// Minimum votes before a link is typed.
  std::uint32_t min_votes = 1;
  /// Majority requirement: winning relationship must hold at least this
  /// fraction of the link's votes.
  double majority = 0.6;
};

struct CommunityInferenceResult {
  RelationshipMap rels;
  std::size_t links_with_votes = 0;
  std::size_t conflicted_links = 0;  ///< votes present but no clear majority
  std::uint64_t tagged_routes = 0;   ///< routes that contributed >= 1 vote
  std::uint64_t total_votes = 0;
};

/// Raw vote state produced by scanning a batch of routes.  Scans over
/// disjoint route shards merge commutatively (per-link counts add), which is
/// what lets the per-route scan run sharded on a thread pool.
struct CommunityVotes {
  /// Votes per canonical link, indexed P2C/C2P/P2P/S2S.
  std::unordered_map<LinkKey, std::array<std::uint32_t, 4>, LinkKeyHash> votes;
  std::uint64_t tagged_routes = 0;
  std::uint64_t total_votes = 0;

  void merge(const CommunityVotes& other);
};

/// Scan routes[begin, end) for localizable relationship tags.
CommunityVotes scan_community_votes(const std::vector<const mrt::ObservedRoute*>& routes,
                                    std::size_t begin, std::size_t end,
                                    const rpsl::CommunityDictionary& dict);

/// Majority-type every voted link.  Depends only on the merged vote totals,
/// so the sharding that produced them cannot change the outcome.
CommunityInferenceResult tally_community_votes(const CommunityVotes& votes,
                                               const CommunityInferenceParams& params = {});

/// Infer relationships for one address family's routes.
CommunityInferenceResult infer_from_communities(
    const std::vector<const mrt::ObservedRoute*>& routes,
    const rpsl::CommunityDictionary& dict, const CommunityInferenceParams& params = {});

/// Same inference with the route scan sharded on `pool` (deterministic:
/// identical to the sequential overload for any pool size).
CommunityInferenceResult infer_from_communities(
    const std::vector<const mrt::ObservedRoute*>& routes,
    const rpsl::CommunityDictionary& dict, const CommunityInferenceParams& params,
    ThreadPool& pool);

}  // namespace htor::core
