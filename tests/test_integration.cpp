// Integration tests: the full pipeline — generate, propagate, serialize to
// MRT bytes, parse back, mine the IRR, infer, census — with cross-module
// invariants checked on the result.
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/census_report.hpp"
#include "gen/internet.hpp"
#include "mrt/reader.hpp"
#include "mrt/writer.hpp"
#include "rpsl/object.hpp"

namespace htor {
namespace {

struct PipelineResult {
  gen::SyntheticInternet net;
  mrt::ObservedRib rib;
  rpsl::CommunityDictionary dict;
  core::CensusReport census;
};

PipelineResult run_pipeline(std::uint64_t seed) {
  auto net = gen::SyntheticInternet::generate(gen::small_params(seed));
  mrt::MrtWriter writer;
  for (const auto& rec : mrt::records_from_rib(net.collect(), 0xc011ec7u, "it", 1281052800u)) {
    writer.write(rec);
  }
  auto rib = mrt::rib_from_records(mrt::read_all(writer.data()));
  auto dict = rpsl::mine_dictionary(rpsl::parse_objects(net.irr_dump()));
  auto census = core::run_census(rib, dict);
  return {std::move(net), std::move(rib), std::move(dict), std::move(census)};
}

const PipelineResult& pipeline() {
  static const PipelineResult result = run_pipeline(7);
  return result;
}

TEST(Integration, MrtRoundTripIsLossless) {
  const auto& p = pipeline();
  const auto direct = p.net.collect();
  ASSERT_EQ(p.rib.size(), direct.size());
  // Routes survive byte-level serialization exactly (as multisets).
  std::multiset<std::string> a;
  std::multiset<std::string> b;
  auto key = [](const mrt::ObservedRoute& r) {
    std::string k = r.prefix.to_string() + "|" + std::to_string(r.peer_asn) + "|";
    for (Asn asn : r.as_path) k += std::to_string(asn) + " ";
    k += "|" + std::to_string(r.local_pref.value_or(0)) + "|";
    for (auto c : r.communities) k += c.to_string() + " ";
    return k;
  };
  for (const auto& r : direct.routes()) a.insert(key(r));
  for (const auto& r : p.rib.routes()) b.insert(key(r));
  EXPECT_EQ(a, b);
}

TEST(Integration, CommunityInferenceIsExact) {
  const auto& p = pipeline();
  // Community-derived relationships are authoritative: no excuse for errors.
  std::size_t checked = 0;
  for (IpVersion af : {IpVersion::V4, IpVersion::V6}) {
    const auto& inferred =
        af == IpVersion::V4 ? p.census.inferred.community_v4 : p.census.inferred.community_v6;
    inferred.rels.for_each([&](const LinkKey& key, Relationship rel) {
      EXPECT_EQ(rel, p.net.truth(af).get(key.first, key.second))
          << to_string(af) << " AS" << key.first << "-AS" << key.second;
      ++checked;
    });
  }
  EXPECT_GT(checked, 100u);
}

TEST(Integration, RosettaIsNearExact) {
  // LocPrf translation can rarely mistype a first-hop link: a TE override
  // issued by an AS that does not publish its scheme is invisible to the TE
  // filter (the paper faced the same blind spot).  Accuracy must still be
  // near-perfect.
  const auto& p = pipeline();
  std::size_t checked = 0;
  std::size_t correct = 0;
  for (IpVersion af : {IpVersion::V4, IpVersion::V6}) {
    const auto& inferred = af == IpVersion::V4 ? p.census.inferred.v4 : p.census.inferred.v6;
    inferred.for_each([&](const LinkKey& key, Relationship rel) {
      ++checked;
      if (rel == p.net.truth(af).get(key.first, key.second)) ++correct;
    });
  }
  EXPECT_GT(checked, 100u);
  EXPECT_GE(static_cast<double>(correct), 0.98 * static_cast<double>(checked));
}

TEST(Integration, CoverageIsSubstantialButNotTotal) {
  const auto& p = pipeline();
  EXPECT_GT(p.census.v6_coverage.fraction(), 0.4);
  EXPECT_LT(p.census.v6_coverage.fraction(), 1.0);  // unpublished ASes exist
  EXPECT_GT(p.census.v4_coverage.fraction(), 0.4);
}

TEST(Integration, DatasetShapeIsSane) {
  const auto& p = pipeline();
  EXPECT_GT(p.census.v6_paths, 100u);
  EXPECT_GT(p.census.v4_paths, p.census.v6_paths);  // v4 is the bigger plane
  EXPECT_GT(p.census.v6_links, 50u);
  EXPECT_GT(p.census.dual_links, 0u);
  EXPECT_LE(p.census.dual_links, p.census.v6_links);
  EXPECT_LE(p.census.dual_links, p.census.v4_links);
}

TEST(Integration, HybridFindingsMatchPlantedTruth) {
  const auto& p = pipeline();
  std::unordered_set<LinkKey, LinkKeyHash> planted;
  for (const auto& h : p.net.hybrid_links()) planted.insert(h.link);
  EXPECT_GT(p.census.hybrids.hybrids.size(), 0u);
  for (const auto& f : p.census.hybrids.hybrids) {
    EXPECT_TRUE(planted.count(f.link));
  }
}

TEST(Integration, ValleysOnlyInV6) {
  const auto& p = pipeline();
  EXPECT_EQ(p.census.v4_valleys.valley, 0u);
  EXPECT_GT(p.census.v6_valleys.valley, 0u);
  EXPECT_LT(p.census.v6_valleys.valley_fraction(), 0.5);
}

TEST(Integration, CensusIsDeterministic) {
  const auto again = run_pipeline(7);
  const auto& a = pipeline().census;
  const auto& b = again.census;
  EXPECT_EQ(a.v6_paths, b.v6_paths);
  EXPECT_EQ(a.v6_links, b.v6_links);
  EXPECT_EQ(a.dual_links, b.dual_links);
  EXPECT_EQ(a.hybrids.hybrids.size(), b.hybrids.hybrids.size());
  EXPECT_EQ(a.v6_valleys.valley, b.v6_valleys.valley);
  EXPECT_EQ(a.v6_valleys.necessary_valleys, b.v6_valleys.necessary_valleys);
  EXPECT_EQ(a.v6_coverage.covered_links, b.v6_coverage.covered_links);
}

TEST(Integration, ObservedTopologyIsSubsetOfTruth) {
  const auto& p = pipeline();
  for (const auto& link : p.census.v6_path_store.links()) {
    EXPECT_TRUE(p.net.graph().has_link(link.first, link.second, IpVersion::V6))
        << "phantom link AS" << link.first << "-AS" << link.second;
  }
  for (const auto& link : p.census.v4_path_store.links()) {
    EXPECT_TRUE(p.net.graph().has_link(link.first, link.second, IpVersion::V4));
  }
}

TEST(Integration, EveryObservedPathStartsAtAVantage) {
  const auto& p = pipeline();
  std::unordered_set<Asn> vantages(p.net.vantages().begin(), p.net.vantages().end());
  for (const auto& route : p.rib.routes()) {
    EXPECT_TRUE(vantages.count(route.peer_asn));
  }
}

TEST(Integration, DictionaryOnlyFromPublishedSchemes) {
  const auto& p = pipeline();
  for (std::uint16_t asn16 : p.dict.documented_asns()) {
    const auto& prof = p.net.profile(asn16);
    EXPECT_TRUE(prof.publishes_irr);
    EXPECT_FALSE(prof.cryptic_remarks);
  }
}

// The whole pipeline, parameterized over seeds, re-asserting the headline
// invariants (soundness + v4 valley-freeness) as a property.
class PipelineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineProperty, SoundInferenceAndCleanV4) {
  const auto p = run_pipeline(GetParam());
  // Community-derived links: exact.  Rosetta-extended map: near-exact (see
  // RosettaIsNearExact for the TE blind spot).
  p.census.inferred.community_v6.rels.for_each([&](const LinkKey& key, Relationship rel) {
    EXPECT_EQ(rel, p.net.truth(IpVersion::V6).get(key.first, key.second));
  });
  std::size_t checked = 0;
  std::size_t correct = 0;
  p.census.inferred.v6.for_each([&](const LinkKey& key, Relationship rel) {
    ++checked;
    if (rel == p.net.truth(IpVersion::V6).get(key.first, key.second)) ++correct;
  });
  EXPECT_GE(static_cast<double>(correct), 0.98 * static_cast<double>(checked));
  EXPECT_EQ(p.census.v4_valleys.valley, 0u);
  EXPECT_GT(p.census.v6_coverage.fraction(), 0.3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty, ::testing::Values(11, 12, 13));

}  // namespace
}  // namespace htor
