// Deduplicating store of observed AS paths with occurrence counts.
//
// The paper's path-level statistics ("13% of the IPv6 paths…", ">28% of the
// IPv6 paths contain at least one hybrid link") are computed over the set of
// distinct AS paths extracted from the collector dumps; this container is
// that set.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "netbase/asn.hpp"
#include "topology/relationship.hpp"

namespace htor {

/// FNV-1a unordered_map functor.  Process-local only — never feeds a
/// mergeable sketch (those hash through obs/sketch/hash.hpp).
struct AsnVectorHash {
  std::size_t operator()(const std::vector<Asn>& v) const {
    // lint: allow(raw-hash) unordered_map functor, not sketch input
    std::uint64_t h = 1469598103934665603ull;
    for (Asn a : v) {
      h ^= a;
      h *= 1099511628211ull;  // lint: allow(raw-hash) FNV prime of the same functor
    }
    return static_cast<std::size_t>(h);
  }
};

class PathStore {
 public:
  /// Record one occurrence of `path` (already de-prepended or not — stored
  /// verbatim).  Empty and single-AS paths are ignored.
  void add(const std::vector<Asn>& path);

  /// Fold another store's paths and occurrence counts into this one.
  void merge(const PathStore& other);

  /// Number of distinct paths.
  std::size_t unique_paths() const { return paths_.size(); }

  /// Total occurrences.
  std::uint64_t total_occurrences() const { return total_; }

  /// Visit every distinct path with its count.
  void for_each(const std::function<void(const std::vector<Asn>&, std::uint64_t)>& fn) const;

  /// Distinct links appearing in any stored path, in canonical (sorted)
  /// order — independent of insertion order, so sharded builds of the same
  /// path set enumerate links identically.
  std::vector<LinkKey> links() const;

  /// Number of distinct paths containing link (a, b) as adjacent ASes.
  /// Computed against an index built on first use.
  std::uint64_t paths_containing(Asn a, Asn b) const;

 private:
  void build_link_index() const;

  std::unordered_map<std::vector<Asn>, std::uint64_t, AsnVectorHash> paths_;
  std::uint64_t total_ = 0;

  mutable bool index_built_ = false;
  mutable std::unordered_map<LinkKey, std::uint64_t, LinkKeyHash> link_paths_;
};

}  // namespace htor
