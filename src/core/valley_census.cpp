#include "core/valley_census.hpp"

#include <unordered_map>

#include "core/parallel.hpp"
#include "topology/reachability.hpp"
#include "topology/valley.hpp"

namespace htor::core {

namespace {

/// Dense valley-free-reachability oracle over the links of a relationship
/// map, with per-source memoization (sources are the few vantage ASes).
class ReachOracle {
 public:
  explicit ReachOracle(const RelationshipMap& rels) {
    rels.for_each([this](const LinkKey& key, Relationship rel) {
      const std::uint32_t a = intern(key.first);
      const std::uint32_t b = intern(key.second);
      adj_[a].push_back({b, edge_kind(rel)});
      adj_[b].push_back({a, edge_kind(reverse(rel))});
    });
  }

  bool known(Asn asn) const { return index_.count(asn) != 0; }

  /// The BFS itself, memo-free — safe to call from pool workers for
  /// distinct sources.  `src` must be known().
  std::vector<std::int32_t> distances_from(Asn src) const {
    return valley_free_distances(adj_, index_.at(src));
  }

  /// Install a precomputed distance vector for `src`.
  void memoize(Asn src, std::vector<std::int32_t> distances) {
    cache_[index_.at(src)] = std::move(distances);
  }

  /// kUnreachable when src/dst unknown or no valley-free path.
  bool reachable(Asn src, Asn dst) {
    auto s = index_.find(src);
    auto d = index_.find(dst);
    if (s == index_.end() || d == index_.end()) return false;
    auto [it, inserted] = cache_.try_emplace(s->second);
    if (inserted) it->second = valley_free_distances(adj_, s->second);
    return it->second[d->second] != kUnreachable;
  }

 private:
  std::uint32_t intern(Asn asn) {
    auto [it, inserted] = index_.try_emplace(asn, static_cast<std::uint32_t>(adj_.size()));
    if (inserted) adj_.emplace_back();
    return it->second;
  }

  std::unordered_map<Asn, std::uint32_t> index_;
  AdjacencyList adj_;
  std::unordered_map<std::uint32_t, std::vector<std::int32_t>> cache_;
};

/// Per-path classification counters plus the endpoint pairs whose valleys
/// still need the (expensive) necessity test.
struct CensusShard {
  ValleyCensus counters;
  std::vector<std::pair<Asn, Asn>> necessity_candidates;
};

CensusShard classify_paths(const std::vector<const std::vector<Asn>*>& paths,
                           std::size_t begin, std::size_t end, const RelationshipMap& rels) {
  CensusShard shard;
  for (std::size_t i = begin; i < end; ++i) {
    const std::vector<Asn>& path = *paths[i];
    ++shard.counters.paths;
    const ValleyCheckResult check = check_valley_free(path, rels);
    switch (check.cls) {
      case PathPolicyClass::ValleyFree:
        ++shard.counters.valley_free;
        continue;
      case PathPolicyClass::Incomplete:
        ++shard.counters.incomplete;
        continue;
      case PathPolicyClass::Valley:
        break;
    }
    ++shard.counters.valley;
    if (check.unknown_links > 0) continue;  // endpoints typed, but gaps remain
    ++shard.counters.classified_valleys;
    shard.necessity_candidates.emplace_back(path.front(), path.back());
  }
  return shard;
}

}  // namespace

bool valley_is_necessary(Asn src, Asn dst, const RelationshipMap& rels) {
  ReachOracle oracle(rels);
  return !oracle.reachable(src, dst);
}

ValleyCensus census_valleys(const PathStore& paths, const RelationshipMap& rels) {
  ValleyCensus census;
  ReachOracle oracle(rels);

  paths.for_each([&](const std::vector<Asn>& path, std::uint64_t) {
    ++census.paths;
    const ValleyCheckResult check = check_valley_free(path, rels);
    switch (check.cls) {
      case PathPolicyClass::ValleyFree:
        ++census.valley_free;
        return;
      case PathPolicyClass::Incomplete:
        ++census.incomplete;
        return;
      case PathPolicyClass::Valley:
        break;
    }
    ++census.valley;
    if (check.unknown_links > 0) return;  // endpoints typed, but gaps remain
    ++census.classified_valleys;
    if (!oracle.reachable(path.front(), path.back())) ++census.necessary_valleys;
  });
  return census;
}

ValleyCensus census_valleys(const PathStore& paths, const RelationshipMap& rels,
                            ThreadPool& pool) {
  // Snapshot the distinct paths so shards can index them.
  std::vector<const std::vector<Asn>*> snapshot;
  snapshot.reserve(paths.unique_paths());
  paths.for_each([&snapshot](const std::vector<Asn>& path, std::uint64_t) {
    snapshot.push_back(&path);
  });

  CensusShard merged = shard_map_reduce(
      pool, snapshot.size(),
      [&snapshot, &rels](const ShardRange& range) {
        return classify_paths(snapshot, range.begin, range.end, rels);
      },
      CensusShard{},
      [](CensusShard& acc, CensusShard&& shard) {
        acc.counters.paths += shard.counters.paths;
        acc.counters.valley_free += shard.counters.valley_free;
        acc.counters.valley += shard.counters.valley;
        acc.counters.incomplete += shard.counters.incomplete;
        acc.counters.classified_valleys += shard.counters.classified_valleys;
        acc.necessity_candidates.insert(acc.necessity_candidates.end(),
                                        shard.necessity_candidates.begin(),
                                        shard.necessity_candidates.end());
      });

  ValleyCensus census = merged.counters;

  // The necessity test is one BFS per distinct source (the few vantages).
  // Run each source's BFS as its own pool task, then evaluate sequentially.
  ReachOracle oracle(rels);
  std::vector<Asn> sources;
  std::unordered_map<Asn, std::size_t> seen;
  for (const auto& [src, dst] : merged.necessity_candidates) {
    (void)dst;
    if (oracle.known(src) && seen.try_emplace(src, sources.size()).second) {
      sources.push_back(src);
    }
  }
  std::vector<std::future<std::vector<std::int32_t>>> futures;
  futures.reserve(sources.size());
  for (Asn src : sources) {
    futures.push_back(pool.submit([&oracle, src] { return oracle.distances_from(src); }));
  }
  std::exception_ptr first_error;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    try {
      oracle.memoize(sources[i], futures[i].get());
    } catch (...) {
      // Drain every future before unwinding — tasks reference the oracle.
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  for (const auto& [src, dst] : merged.necessity_candidates) {
    if (!oracle.reachable(src, dst)) ++census.necessary_valleys;
  }
  return census;
}

}  // namespace htor::core
