// Customer trees and the union-of-trees metric used in the paper's Figure 2.
//
// The customer tree of a root AS contains every AS the root can reach by
// following provider-to-customer links only (Dimitropoulos et al. 2007).
// The union of all customer trees is the p2c (transit) subgraph of the
// relationship map; the paper assesses misinference by the average shortest
// valley-free path length and diameter of that union.
#pragma once

#include <cstdint>
#include <vector>

#include "netbase/asn.hpp"
#include "topology/reachability.hpp"
#include "topology/relationship.hpp"

namespace htor {

class CustomerTreeAnalysis {
 public:
  /// Builds the p2c subgraph of `rels` once; the map must outlive nothing
  /// (everything is copied in).
  explicit CustomerTreeAnalysis(const RelationshipMap& rels);

  /// ASes in the customer tree of `root`, root included, BFS order.
  std::vector<Asn> tree_of(Asn root) const;

  /// Number of ASes in the tree excluding the root ("customer cone size").
  std::size_t cone_size(Asn root) const;

  struct Metrics {
    double avg_path_length = 0.0;   ///< mean over reachable ordered pairs
    std::int32_t diameter = 0;      ///< max shortest valley-free path
    std::uint64_t reachable_pairs = 0;
    std::size_t nodes = 0;          ///< nodes incident to >= 1 transit link
    std::size_t edges = 0;          ///< p2c links in the union
  };

  /// Metrics of the full union (all roots == the whole p2c subgraph).
  Metrics union_metrics() const;

 private:
  std::unordered_map<Asn, std::uint32_t> index_of_;
  std::vector<Asn> asns_;
  std::vector<std::vector<std::uint32_t>> down_;  // provider -> customers
  AdjacencyList adj_;                             // Up/Down product-graph edges
  std::size_t edges_ = 0;
};

}  // namespace htor
