#include "server/http.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace htor::server {

namespace {

bool is_token_char(char c) {
  // RFC 9110 token: visible ASCII minus delimiters.
  if (c <= 0x20 || c >= 0x7f) return false;
  static constexpr std::string_view delims = "\"(),/:;<=>?@[\\]{}";
  return delims.find(c) == std::string_view::npos;
}

bool is_target_char(char c) {
  // Origin-form target: any visible ASCII except whitespace.  Percent
  // escapes pass through untouched; the router only matches literal paths.
  return c > 0x20 && c < 0x7f;
}

}  // namespace

std::optional<std::string_view> HttpRequest::header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return std::string_view(value);
  }
  return std::nullopt;
}

bool HttpRequest::keep_alive() const {
  // Connection is a list-valued field and may be repeated; aggregate every
  // occurrence (RFC 9110 §5.3) — "Connection: upgrade" followed by
  // "Connection: close" must close.
  bool close = false;
  bool keep = false;
  for (const auto& [key, value] : headers) {
    if (key != "connection") continue;
    close = close || contains_ci(value, "close");
    keep = keep || contains_ci(value, "keep-alive");
  }
  if (close) return false;
  if (version_minor == 0 && version_major == 1) return keep;  // 1.0 default: close
  return true;                                                // 1.1 default: persist
}

RequestParser::Status RequestParser::fail(int status, const std::string& why) {
  state_ = State::Bad;
  error_status_ = status;
  error_ = why;
  return Status::Bad;
}

RequestParser::Status RequestParser::feed(std::string_view data, std::size_t& consumed) {
  std::size_t i = 0;
  while (true) {
    switch (state_) {
      case State::RequestLine:
      case State::Headers: {
        const bool in_request_line = state_ == State::RequestLine;
        const std::size_t limit =
            in_request_line ? limits_.max_request_line : limits_.max_header_line;
        const std::size_t nl = data.find('\n', i);
        if (nl == std::string_view::npos) {
          buffer_.append(data.substr(i));
          consumed = data.size();
          if (buffer_.size() > limit) {
            return in_request_line
                       ? fail(414, "request line exceeds " + std::to_string(limit) + " bytes")
                       : fail(431, "header line exceeds " + std::to_string(limit) + " bytes");
          }
          return Status::NeedMore;
        }
        if (buffer_.size() + (nl - i) > limit) {
          consumed = nl + 1;
          return in_request_line
                     ? fail(414, "request line exceeds " + std::to_string(limit) + " bytes")
                     : fail(431, "header line exceeds " + std::to_string(limit) + " bytes");
        }
        buffer_.append(data.substr(i, nl - i));
        i = nl + 1;
        std::string_view line = buffer_;
        if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
        if (in_request_line) {
          if (line.empty()) {
            // RFC 9112 §2.2: ignore at most a couple of stray CRLFs ahead of
            // the request line (a client that sends more is not talking HTTP).
            if (++leading_blanks_ > 2) {
              consumed = i;
              return fail(400, "expected a request line, got blank lines");
            }
          } else if (!parse_request_line(line)) {
            consumed = i;
            return Status::Bad;
          }
        } else if (line.empty()) {
          if (!finish_headers()) {
            consumed = i;
            return Status::Bad;
          }
          state_ = body_expected_ > 0 ? State::Body : State::Done;
        } else if (!parse_header_line(line)) {
          consumed = i;
          return Status::Bad;
        }
        buffer_.clear();
        break;
      }
      case State::Body: {
        const std::size_t missing = body_expected_ - request_.body.size();
        const std::size_t take = std::min(missing, data.size() - i);
        request_.body.append(data.substr(i, take));
        i += take;
        if (request_.body.size() < body_expected_) {
          consumed = data.size();
          return Status::NeedMore;
        }
        state_ = State::Done;
        break;
      }
      case State::Done:
        consumed = i;
        return Status::Done;
      case State::Bad:
        consumed = i;
        return Status::Bad;
    }
  }
}

bool RequestParser::parse_request_line(std::string_view line) {
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    fail(400, "request line is not 'METHOD target HTTP/x.y'");
    return false;
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (method.empty() || !std::all_of(method.begin(), method.end(), is_token_char)) {
    fail(400, "malformed method token");
    return false;
  }
  if (target.empty() || target[0] != '/' ||
      !std::all_of(target.begin(), target.end(), is_target_char)) {
    fail(400, "target must be an origin-form path");
    return false;
  }
  if (version.size() != 8 || version.substr(0, 5) != "HTTP/" || version[6] != '.' ||
      version[5] < '0' || version[5] > '9' || version[7] < '0' || version[7] > '9') {
    fail(400, "malformed HTTP version");
    return false;
  }
  request_.version_major = version[5] - '0';
  request_.version_minor = version[7] - '0';
  if (request_.version_major != 1) {
    fail(400, "unsupported HTTP version (only 1.x is served)");
    return false;
  }
  request_.method.assign(method);
  request_.target.assign(target);
  state_ = State::Headers;
  return true;
}

bool RequestParser::parse_header_line(std::string_view line) {
  if (request_.headers.size() >= limits_.max_headers) {
    fail(431, "more than " + std::to_string(limits_.max_headers) + " header fields");
    return false;
  }
  if (line[0] == ' ' || line[0] == '\t') {
    fail(400, "obsolete header line folding is not accepted");
    return false;
  }
  const std::size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    fail(400, "header field without a name/colon");
    return false;
  }
  const std::string_view name = line.substr(0, colon);
  if (!std::all_of(name.begin(), name.end(), is_token_char)) {
    fail(400, "malformed header field name");
    return false;
  }
  request_.headers.emplace_back(to_lower(name), std::string(trim(line.substr(colon + 1))));
  return true;
}

bool RequestParser::finish_headers() {
  if (request_.header("transfer-encoding")) {
    fail(400, "transfer codings are not accepted; send Content-Length");
    return false;
  }
  std::optional<std::uint64_t> length;
  for (const auto& [key, value] : request_.headers) {
    if (key != "content-length") continue;
    std::uint64_t parsed = 0;
    if (!parse_u64(value, parsed)) {
      fail(400, "malformed Content-Length '" + value + "'");
      return false;
    }
    if (length && *length != parsed) {
      fail(400, "conflicting Content-Length fields");
      return false;
    }
    length = parsed;
  }
  if (length && *length > limits_.max_body) {
    fail(413, "body of " + std::to_string(*length) + " bytes exceeds the " +
                  std::to_string(limits_.max_body) + "-byte limit");
    return false;
  }
  body_expected_ = length ? static_cast<std::size_t>(*length) : 0;
  return true;
}

std::string_view status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Content Too Large";
    case 414: return "URI Too Long";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string HttpResponse::serialize(bool include_body) const {
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += status_reason(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n\r\n";
  if (include_body) out += body;
  return out;
}

}  // namespace htor::server
