// The synthetic Internet: ground-truth topology, relationships, policies,
// community schemes, and the collector that observes it.
//
// This is the substitution substrate for RouteViews/RIPE RIS + IRR
// (DESIGN.md §2): everything the paper measures on the real Internet is an
// emergent observable of this object, and the inference pipeline must
// *recover* the planted ground truth from wire-format data only.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "gen/params.hpp"
#include "mrt/rib_view.hpp"
#include "netbase/prefix.hpp"
#include "propagation/policy.hpp"
#include "topology/as_graph.hpp"
#include "topology/relationship.hpp"
#include "topology/tier.hpp"

namespace htor::gen {

/// Ground truth about one planted hybrid link.
struct HybridLink {
  LinkKey link;
  Relationship rel_v4 = Relationship::Unknown;  ///< rel(link.first -> link.second) in IPv4
  Relationship rel_v6 = Relationship::Unknown;  ///< same direction, IPv6

  friend bool operator==(const HybridLink&, const HybridLink&) = default;
};

/// Everything the generator decided about one AS.
struct AsProfile {
  Asn asn = 0;
  Tier tier = Tier::Stub;
  bool v6_capable = false;

  prop::NodePolicy policy;  ///< LocPrf scheme, prepending; relaxed_export is v6-only

  // Community behaviour.
  bool publishes_irr = false;   ///< documents its scheme in the IRR
  bool tags_relationships = false;
  bool strips_communities = false;
  bool geo_tags = false;
  bool te_enabled = false;
  bool cryptic_remarks = false;  ///< publishes, but in uninterpretable prose

  int phrasing_style = 0;  ///< which IRR remark dialect the AS writes

  // Community scheme values (the <asn>:<value> halves).
  std::uint16_t c_customer = 0;
  std::uint16_t c_peer = 0;
  std::uint16_t c_provider = 0;
  std::uint16_t c_sibling = 0;
  std::uint16_t c_te_locpref = 0;  ///< "set local-pref to te_locpref_value"
  std::uint16_t c_prepend = 0;
  std::uint16_t c_geo_base = 0;   ///< geo tags use c_geo_base .. c_geo_base+3

  std::uint32_t te_locpref_value = 0;  ///< the LocPrf the TE community sets
};

class SyntheticInternet {
 public:
  static SyntheticInternet generate(const GenParams& params);

  const GenParams& params() const { return params_; }
  const AsGraph& graph() const { return graph_; }

  /// Ground-truth relationships of one plane.
  const RelationshipMap& truth(IpVersion af) const {
    return af == IpVersion::V4 ? rels_v4_ : rels_v6_;
  }

  const std::vector<HybridLink>& hybrid_links() const { return hybrids_; }
  const std::vector<Asn>& vantages() const { return vantages_; }
  const std::vector<Asn>& relaxed_ases() const { return relaxed_; }

  const AsProfile& profile(Asn asn) const;
  Tier tier_of(Asn asn) const { return profile(asn).tier; }
  bool v6_capable(Asn asn) const { return profile(asn).v6_capable; }

  /// The two tier-1s of the IPv6 peering dispute (0,0 when disabled).
  std::pair<Asn, Asn> dispute_pair() const { return dispute_; }

  /// The Hurricane-Electric-style IPv6 evangelist tier-1 (0 when disabled).
  Asn evangelist() const { return evangelist_; }

  /// The prefix `asn` originates in family `af`.
  Prefix prefix_of(Asn asn, IpVersion af) const;
  /// Inverse of prefix_of; 0 when the prefix is not a generated one.
  Asn origin_of(const Prefix& prefix) const;

  /// ASes that participate in the IPv6 plane.
  std::vector<Asn> v6_ases() const;

  /// TE LocPrf overrides (shared by the engine and the tag reconstruction).
  const prop::TeOverrides& te_overrides() const { return te_; }

  /// Deterministic: does `asn` attach a geo community to routes of `origin`?
  bool geo_tag_applies(Asn asn, Asn origin) const;

  /// The IRR dump text (aut-num objects of all publishing ASes).
  std::string irr_dump() const;

  /// Run both propagation planes and observe them from the vantages.
  /// The result is what a RouteViews-style collector would have in its RIB.
  mrt::ObservedRib collect() const;

  /// The internet-scale collector: instead of propagating every origin
  /// through the whole graph (O(N·E) — infeasible at scale_params size),
  /// synthesize one deterministic customer-to-provider route per
  /// (vantage, origin) pair by joining the two ASes' memoized uplink
  /// chains.  IPv4 only, no communities; O(N · max_vantages) overall.
  /// This is the substrate for the sketch-telemetry accuracy tests and
  /// benches, not for relationship-inference experiments.
  mrt::ObservedRib collect_scaled(std::size_t max_vantages = 4) const;

  /// Per-AS policies keyed by ASN for one plane (relaxation only in v6).
  std::unordered_map<Asn, prop::NodePolicy> policies(IpVersion af) const;

 private:
  friend class Generator;

  GenParams params_;
  AsGraph graph_;
  RelationshipMap rels_v4_;
  RelationshipMap rels_v6_;
  std::vector<HybridLink> hybrids_;
  std::vector<Asn> vantages_;
  std::vector<Asn> relaxed_;
  std::pair<Asn, Asn> dispute_{0, 0};
  Asn evangelist_ = 0;
  std::unordered_map<Asn, AsProfile> profiles_;
  prop::TeOverrides te_;
};

}  // namespace htor::gen
