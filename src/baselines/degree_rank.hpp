// Degree-rank ToR baseline in the spirit of Dimitropoulos et al. (CCR 2007):
// transit degrees are computed from path triples, and each link is typed by
// the ratio of its endpoints' transit degrees.  Also address-family agnostic.
#pragma once

#include "topology/path_store.hpp"
#include "topology/relationship.hpp"

namespace htor::baselines {

struct DegreeRankParams {
  /// Endpoint transit-degree ratio above which the larger side is provider.
  double provider_ratio = 2.0;
};

struct DegreeRankResult {
  RelationshipMap rels;
  std::size_t transit_links = 0;
  std::size_t peer_links = 0;
};

DegreeRankResult infer_degree_rank(const PathStore& paths, const DegreeRankParams& params = {});

}  // namespace htor::baselines
