// JSON renderings of snapshot query answers, shared by `hybridtor query
// --json` and the query daemon's HTTP bodies.
//
// Both consumers call the exact same functions on the exact same
// QueryIndex, which is what makes a daemon response body byte-identical to
// the CLI's stdout for the same snapshot — the server e2e test asserts that
// equality literally, byte for byte.  Every rendering ends with a single
// trailing newline so the bodies are also friendly to curl and shell
// pipelines.
#pragma once

#include <string>

#include "snapshot/query.hpp"
#include "snapshot/snapshot.hpp"

namespace htor::server {

/// The a -> b view of a link: asns, oriented rel_v4/rel_v6, hybrid flag.
std::string link_json(Asn a, Asn b, const snapshot::QueryIndex::LinkInfo& info);

/// Neighbor list of `asn`, ascending by neighbor ASN, each entry oriented
/// asn -> neighbor.
std::string neighbors_json(Asn asn, const std::vector<snapshot::QueryIndex::Neighbor>& neighbors);

/// {"error": message} — the shape every non-2xx daemon body and every CLI
/// --json failure shares.
std::string error_json(std::string_view message);

/// The durable counters of the snapshot a daemon is serving: header,
/// dataset, per-family coverage, valley and hybrid counters, plus the index
/// cardinalities.  Everything needed to sanity-check a serving instance
/// without re-reading the snapshot file — the index view carries all of it.
std::string summary_json(const snapshot::QueryIndex& index);

}  // namespace htor::server
