// Minimal deterministic JSON writer shared by the CLI's --json output and
// the query daemon's HTTP responses.
//
// The writer emits compact JSON (no whitespace) in exactly the order the
// caller makes calls, so the same sequence of values always produces the
// same bytes — which is what lets the server e2e test assert that a daemon
// response body is byte-identical to `hybridtor query --json` output.
// Strings are escaped per RFC 8259: the two mandatory escapes (`"` and `\`)
// plus control characters as \b \t \n \f \r or \u00XX.  Only the JSON
// subset the project needs is implemented: objects, arrays, strings,
// unsigned integers, and booleans.  Nesting misuse (a value where a key is
// required, unbalanced end calls) throws InvalidArgument rather than
// producing malformed output.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace htor {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Member key inside an object; must be followed by exactly one value.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::uint32_t v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(bool v);

  /// The finished document.  Throws InvalidArgument when containers are
  /// still open or nothing was written.
  std::string str() const;

  /// Escape `s` as a JSON string literal, quotes included.
  static std::string quote(std::string_view s);

 private:
  enum class Frame : std::uint8_t { Object, Array };

  void begin_value(const char* what);

  std::string out_;
  std::vector<Frame> stack_;
  bool need_comma_ = false;   // a value/key at this position needs a ',' first
  bool after_key_ = false;    // the previous token was key(); a value must follow
  bool done_ = false;         // the root value is complete
};

}  // namespace htor
