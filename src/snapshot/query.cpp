#include "snapshot/query.hpp"

#include <algorithm>

namespace htor::snapshot {

QueryIndex::QueryIndex(const Snapshot& snap) {
  auto add_family = [&](const RelationshipMap& map, bool v4) {
    map.for_each([&](const LinkKey& key, Relationship rel) {
      auto [it, inserted] = links_.try_emplace(key);
      (v4 ? it->second.rel_v4 : it->second.rel_v6) = rel;
      if (inserted) {
        adjacency_[key.first].push_back(key.second);
        // A self-loop (a hand-built snapshot can hold one) is one neighbor
        // entry, not two.
        if (key.second != key.first) adjacency_[key.second].push_back(key.first);
      }
    });
  };
  add_family(snap.rels_v4, true);
  add_family(snap.rels_v6, false);

  for (const auto& h : snap.hybrids) {
    // Hybrid links come from the maps by construction, but a hand-built
    // snapshot may list extras; index them too rather than dropping them.
    auto [it, inserted] = links_.try_emplace(h.link);
    if (inserted) {
      it->second.rel_v4 = h.rel_v4;
      it->second.rel_v6 = h.rel_v6;
      adjacency_[h.link.first].push_back(h.link.second);
      if (h.link.second != h.link.first) adjacency_[h.link.second].push_back(h.link.first);
    }
    if (!it->second.hybrid) {
      it->second.hybrid = true;
      ++hybrid_count_;
    }
  }

  for (auto& [asn, neighbors] : adjacency_) {
    std::sort(neighbors.begin(), neighbors.end());
  }
}

std::optional<QueryIndex::LinkInfo> QueryIndex::lookup(Asn a, Asn b) const {
  const auto it = links_.find(LinkKey(a, b));
  if (it == links_.end()) return std::nullopt;
  LinkInfo info = it->second;
  if (a > b) {
    // Stored orientation is first -> second; flip for the caller's view.
    info.rel_v4 = reverse(info.rel_v4);
    info.rel_v6 = reverse(info.rel_v6);
  }
  return info;
}

std::vector<QueryIndex::Neighbor> QueryIndex::neighbors(Asn asn) const {
  std::vector<Neighbor> out;
  const auto it = adjacency_.find(asn);
  if (it == adjacency_.end()) return out;
  out.reserve(it->second.size());
  for (Asn other : it->second) {
    out.push_back({other, *lookup(asn, other)});
  }
  return out;
}

}  // namespace htor::snapshot
