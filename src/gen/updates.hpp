// Deterministic BGP4MP update-stream synthesis against a generated RIB.
//
// The live pipeline's tests and benches need churn with a known ground
// truth: every update must be *consistent* with the RIB it mutates (withdraw
// what is held, re-announce what was withdrawn, flap real routes), and the
// whole schedule must be a pure function of the seed so the incremental-vs-
// batch equivalence oracle can replay it anywhere.  Event mix:
//
//   withdraw      remove a currently held route
//   re-announce   bring back a previously withdrawn route verbatim
//   mutate        re-announce a held route with changed attributes
//                 (origin prepend, LocPrf shift, or communities dropped) —
//                 this is what makes community votes retract and links flip
//   flap          withdraw + immediate re-announce (two records)
//
// The generator tracks the RIB state it implies, so replaying the stream
// over the seed RIB can never withdraw a missing route or duplicate-announce
// — apply-path counters stay clean for tests that assert on them.
#pragma once

#include <cstdint>
#include <vector>

#include "mrt/record.hpp"
#include "mrt/rib_view.hpp"

namespace htor::gen {

struct UpdateScheduleParams {
  std::uint64_t seed = 7;
  /// Number of schedule events (a flap emits two records, so the record
  /// count may exceed this).
  std::size_t events = 1000;

  // Event-mix weights (normalized internally; the remainder after the
  // first three is the flap weight).
  double withdraw_weight = 0.30;
  double reannounce_weight = 0.25;
  double mutate_weight = 0.30;
  double flap_weight = 0.15;

  /// Timestamp of the first record; each event advances by `timestamp_step`
  /// (both records of a flap share the event's timestamp).
  std::uint32_t start_timestamp = 1281052800;  // the seed RIB's epoch
  std::uint32_t timestamp_step = 1;

  /// The collector's own AS, stamped as BGP4MP local_as.
  Asn collector_asn = 64500;
};

/// Synthesize a BGP4MP MESSAGE_AS4 stream over `base`.  Deterministic:
/// identical (base, params) always produce identical records.
std::vector<mrt::Record> synthesize_updates(const mrt::ObservedRib& base,
                                            const UpdateScheduleParams& params);

}  // namespace htor::gen
