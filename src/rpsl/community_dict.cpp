#include "rpsl/community_dict.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace htor::rpsl {

const char* to_string(CommunityTagKind kind) {
  switch (kind) {
    case CommunityTagKind::FromCustomer: return "from-customer";
    case CommunityTagKind::FromPeer: return "from-peer";
    case CommunityTagKind::FromProvider: return "from-provider";
    case CommunityTagKind::FromSibling: return "from-sibling";
    case CommunityTagKind::SetLocPref: return "set-locpref";
    case CommunityTagKind::Prepend: return "prepend";
    case CommunityTagKind::NoExportTo: return "no-export-to";
    case CommunityTagKind::Blackhole: return "blackhole";
    case CommunityTagKind::GeoTag: return "geo";
    case CommunityTagKind::Other: return "other";
  }
  return "?";
}

bool is_relationship_tag(CommunityTagKind kind) {
  return kind == CommunityTagKind::FromCustomer || kind == CommunityTagKind::FromPeer ||
         kind == CommunityTagKind::FromProvider || kind == CommunityTagKind::FromSibling;
}

bool is_te_tag(CommunityTagKind kind) {
  return kind == CommunityTagKind::SetLocPref || kind == CommunityTagKind::Prepend ||
         kind == CommunityTagKind::NoExportTo || kind == CommunityTagKind::Blackhole;
}

Relationship relationship_of(CommunityTagKind kind) {
  switch (kind) {
    case CommunityTagKind::FromCustomer: return Relationship::P2C;
    case CommunityTagKind::FromPeer: return Relationship::P2P;
    case CommunityTagKind::FromProvider: return Relationship::C2P;
    case CommunityTagKind::FromSibling: return Relationship::S2S;
    default: break;
  }
  throw InvalidArgument("relationship_of: not a relationship tag");
}

void CommunityDictionary::add(bgp::Community community, CommunityMeaning meaning) {
  auto it = entries_.find(community);
  if (it != entries_.end()) {
    if (!(it->second == meaning)) ++conflicts_;
    return;
  }
  entries_.emplace(community, meaning);
  if (is_relationship_tag(meaning.kind)) documented_asns_.insert(community.asn());
}

const CommunityMeaning* CommunityDictionary::lookup(bgp::Community community) const {
  auto it = entries_.find(community);
  return it == entries_.end() ? nullptr : &it->second;
}

std::unordered_map<CommunityTagKind, std::size_t> CommunityDictionary::kind_histogram() const {
  std::unordered_map<CommunityTagKind, std::size_t> out;
  for (const auto& [community, meaning] : entries_) {
    (void)community;
    ++out[meaning.kind];
  }
  return out;
}

namespace {

bool contains_any(const std::string& hay, std::initializer_list<const char*> needles) {
  for (const char* n : needles) {
    if (hay.find(n) != std::string::npos) return true;
  }
  return false;
}

/// First decimal number appearing in `hay` after position `from`.
std::uint32_t first_number(const std::string& hay, std::size_t from) {
  std::size_t i = from;
  while (i < hay.size() && (hay[i] < '0' || hay[i] > '9')) ++i;
  std::uint64_t v = 0;
  bool any = false;
  while (i < hay.size() && hay[i] >= '0' && hay[i] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(hay[i] - '0');
    any = true;
    ++i;
    if (v > 0xffffffffull) return 0;
  }
  return any ? static_cast<std::uint32_t>(v) : 0;
}

CommunityMeaning classify_description(const std::string& lower) {
  CommunityMeaning m;
  // Traffic-engineering phrasings take priority: "set local-pref for peer
  // routes" must not be read as a peer ingress tag.
  if (contains_any(lower, {"local-pref", "local pref", "localpref", "local preference"})) {
    m.kind = CommunityTagKind::SetLocPref;
    const auto pos = lower.find("pref");
    m.locpref = first_number(lower, pos == std::string::npos ? 0 : pos);
    return m;
  }
  if (contains_any(lower, {"prepend"})) {
    m.kind = CommunityTagKind::Prepend;
    return m;
  }
  if (contains_any(lower, {"blackhole", "black hole", "rtbh"})) {
    m.kind = CommunityTagKind::Blackhole;
    return m;
  }
  if (contains_any(lower, {"do not announce", "don't announce", "no export to",
                           "not announce to", "no-export towards"})) {
    m.kind = CommunityTagKind::NoExportTo;
    return m;
  }
  // Relationship ingress tags.
  if (contains_any(lower, {"from customer", "from a customer", "from customers",
                           "customer route", "customer routes", "learned from customer",
                           "received from customer"})) {
    m.kind = CommunityTagKind::FromCustomer;
    return m;
  }
  if (contains_any(lower, {"from peer", "from a peer", "from peers", "peer route",
                           "peer routes", "peering partner", "public peering",
                           "private peering"})) {
    m.kind = CommunityTagKind::FromPeer;
    return m;
  }
  if (contains_any(lower, {"from upstream", "from transit", "upstream route",
                           "transit route", "from provider", "provider route",
                           "upstream provider", "transit provider"})) {
    m.kind = CommunityTagKind::FromProvider;
    return m;
  }
  if (contains_any(lower, {"sibling", "same organisation", "same organization",
                           "backbone route", "internal route"})) {
    m.kind = CommunityTagKind::FromSibling;
    return m;
  }
  if (contains_any(lower, {"originated in", "received in", "located in", "pop ",
                           "ixp", "city", "region"})) {
    m.kind = CommunityTagKind::GeoTag;
    return m;
  }
  m.kind = CommunityTagKind::Other;
  return m;
}

}  // namespace

bool interpret_remark_line(std::string_view line, bgp::Community& community,
                           CommunityMeaning& meaning) {
  const auto fields = split_ws(line);
  if (fields.empty()) return false;
  if (!bgp::Community::try_parse(fields[0], community)) return false;
  // Re-join the remainder as the description.
  std::string desc;
  for (std::size_t i = 1; i < fields.size(); ++i) {
    if (i > 1) desc += ' ';
    desc += std::string(fields[i]);
  }
  meaning = classify_description(to_lower(desc));
  return true;
}

CommunityDictionary mine_dictionary(const std::vector<RpslObject>& objects) {
  CommunityDictionary dict;
  for (const auto& object : objects) {
    if (object.class_name() != "aut-num") continue;
    for (std::string_view remark : object.all("remarks")) {
      // A remark value may span continuation lines.
      for (std::string_view line : split(remark, '\n')) {
        bgp::Community community;
        CommunityMeaning meaning;
        if (interpret_remark_line(trim(line), community, meaning)) {
          dict.add(community, meaning);
        }
      }
    }
  }
  return dict;
}

}  // namespace htor::rpsl
