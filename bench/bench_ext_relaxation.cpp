// EXT (paper §4, future work): "revisit the valley-free rule".
//
// The paper closes by arguing that IPv6 reachability requires relaxing the
// valley-free rule.  This extension quantifies it on ground truth, comparing
// three routing regimes over the IPv6 plane:
//
//   strict    — valley-free paths only (the classic policy model),
//   observed  — what the BGP propagation actually selected (valley-free plus
//               the deployed relaxations),
//   physical  — plain graph connectivity (the upper bound).
//
// The gap between `strict` and `observed` is the reachability bought by
// relaxation; the gap to `physical` is what remains dark.  The same split is
// reported for the disputing tier-1s' exclusive cones, where the effect
// concentrates.
#include <deque>
#include <iostream>
#include <unordered_set>

#include "harness.hpp"
#include "propagation/engine.hpp"
#include "topology/reachability.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace htor;

/// Plain (policy-free) reachability count from src over one family.
std::size_t physical_reachable(const AsGraph& graph, Asn src, IpVersion af) {
  std::unordered_set<Asn> seen{src};
  std::deque<Asn> queue{src};
  while (!queue.empty()) {
    const Asn node = queue.front();
    queue.pop_front();
    for (Asn nbr : graph.neighbors(node, af)) {
      if (seen.insert(nbr).second) queue.push_back(nbr);
    }
  }
  return seen.size() - 1;
}

}  // namespace

int main() {
  bench::print_header("EXT / bench_ext_relaxation",
                      "future work of §4: how much IPv6 reachability the relaxation of "
                      "the valley-free rule buys");

  const auto ds = bench::make_dataset();
  const auto& net = ds.net;
  const auto& truth = net.truth(IpVersion::V6);

  ValleyFreeRouting strict(net.graph(), truth, IpVersion::V6);
  prop::Engine engine(net.graph(), truth, IpVersion::V6, net.policies(IpVersion::V6),
                      &net.te_overrides());

  // Destinations: every v6 origin.  Sources: the vantage set (for whom we
  // know the observed outcome exactly).
  std::vector<Asn> origins;
  for (Asn asn : net.graph().ases()) {
    if (net.v6_capable(asn) && !net.graph().neighbors(asn, IpVersion::V6).empty()) {
      origins.push_back(asn);
    }
  }
  std::vector<Asn> sources;
  for (Asn v : net.vantages()) {
    if (net.v6_capable(v)) sources.push_back(v);
  }

  std::uint64_t strict_ok = 0;
  std::uint64_t observed_ok = 0;
  std::uint64_t physical_ok = 0;
  std::uint64_t pairs = 0;
  std::uint64_t healed = 0;  // observed but not strictly reachable

  // Per-source strict distances are one BFS each; observed outcomes need one
  // propagation per origin, so iterate origins outermost.
  std::unordered_map<Asn, std::vector<std::int32_t>> strict_cache;
  for (Asn src : sources) strict_cache.emplace(src, strict.distances_from(src));

  for (Asn origin : origins) {
    engine.run(origin);
    for (Asn src : sources) {
      if (src == origin) continue;
      ++pairs;
      const bool s = strict_cache.at(src)[strict.index_of(origin)] != kUnreachable;
      const bool o = engine.has_route(src);
      strict_ok += s;
      observed_ok += o;
      healed += (o && !s);
    }
  }
  for (Asn src : sources) {
    physical_ok += physical_reachable(net.graph(), src, IpVersion::V6);
  }
  // physical counts all reachable ASes; align to the origin set size.
  const std::uint64_t physical_pairs =
      static_cast<std::uint64_t>(sources.size()) * (origins.size() - 1);

  Table t({"regime", "reachable (vantage, origin) pairs", "share"});
  t.row({"strict valley-free", std::to_string(strict_ok), fmt_pct(strict_ok, pairs)});
  t.row({"observed BGP (with relaxation)", std::to_string(observed_ok),
         fmt_pct(observed_ok, pairs)});
  t.row({"physical connectivity (bound)", std::to_string(physical_ok),
         fmt_pct(physical_ok, physical_pairs)});
  t.print(std::cout);
  std::cout << "\nreachability bought by relaxing the valley-free rule: " << healed
            << " pairs (" << fmt_pct(healed, pairs) << " of all pairs, "
            << fmt_pct(healed, pairs - strict_ok) << " of the strict-routing dark pairs)\n";

  // Where it concentrates: the disputants' exclusive cones.
  const auto [a, b] = net.dispute_pair();
  if (a != 0) {
    std::uint64_t cone_pairs = 0;
    std::uint64_t cone_healed = 0;
    for (Asn origin : origins) {
      const auto provs = truth.providers(origin);
      const bool exclusive_a = provs.size() == 1 && provs[0] == a;
      const bool exclusive_b = provs.size() == 1 && provs[0] == b;
      if (!exclusive_a && !exclusive_b) continue;
      engine.run(origin);
      for (Asn src : sources) {
        if (src == origin) continue;
        ++cone_pairs;
        const bool s = strict_cache.at(src)[strict.index_of(origin)] != kUnreachable;
        if (engine.has_route(src) && !s) ++cone_healed;
      }
    }
    std::cout << "of which toward the AS" << a << "/AS" << b
              << " exclusive cones: " << cone_healed << " / " << cone_pairs << " pairs ("
              << fmt_pct(cone_healed, cone_pairs) << ")\n";
  }
  std::cout << "\npaper §4: \"the relaxation of the valley-free rule is necessary in some\n"
               "cases to maintain IPv6 reachability\" — quantified above.\n";
  return 0;
}
