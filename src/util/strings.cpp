#include "util/strings.hpp"

#include <cctype>
#include <cstdint>
#include <sstream>
#include <iomanip>

namespace htor {

namespace {
bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

bool contains_ci(std::string_view s, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > s.size()) return false;
  const std::string hay = to_lower(s);
  const std::string pat = to_lower(needle);
  return hay.find(pat) != std::string::npos;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  out = v;
  return true;
}

bool parse_asn(std::string_view s, Asn& out) {
  std::uint64_t v = 0;
  if (!parse_u64(s, v) || v > 0xffffffffull) return false;
  out = static_cast<Asn>(v);
  return true;
}

std::string fmt_double(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

std::string fmt_pct(std::uint64_t num, std::uint64_t den, int digits) {
  if (den == 0) return "n/a";
  return fmt_double(100.0 * static_cast<double>(num) / static_cast<double>(den), digits) + "%";
}

}  // namespace htor
