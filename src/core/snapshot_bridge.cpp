#include "core/snapshot_bridge.hpp"

namespace htor::core {

namespace {

snapshot::CoverageCounters counters_of(const CoverageStats& stats) {
  return {stats.observed_links, stats.covered_links};
}

snapshot::ValleyCounters counters_of(const ValleyCensus& census) {
  return {census.paths, census.valley_free, census.valley, census.incomplete,
          census.classified_valleys, census.necessary_valleys};
}

}  // namespace

snapshot::Snapshot to_snapshot(const CensusReport& report, std::string source,
                               std::uint64_t timestamp) {
  snapshot::Snapshot snap;
  snap.header.timestamp = timestamp;
  snap.header.source = std::move(source);

  snap.dataset.v4_paths = report.v4_paths;
  snap.dataset.v6_paths = report.v6_paths;
  snap.dataset.v4_links = report.v4_links;
  snap.dataset.v6_links = report.v6_links;
  snap.dataset.dual_links = report.dual_links;

  snap.coverage_v4 = counters_of(report.v4_coverage);
  snap.coverage_v6 = counters_of(report.v6_coverage);
  snap.coverage_dual = counters_of(report.dual_coverage);
  snap.valleys_v4 = counters_of(report.v4_valleys);
  snap.valleys_v6 = counters_of(report.v6_valleys);

  snap.hybrid_counters.dual_links_observed = report.hybrids.dual_links_observed;
  snap.hybrid_counters.dual_links_both_known = report.hybrids.dual_links_both_known;
  snap.hybrid_counters.v6_paths_total = report.hybrids.v6_paths_total;
  snap.hybrid_counters.v6_paths_with_hybrid = report.hybrids.v6_paths_with_hybrid;

  snap.rels_v4 = report.inferred.v4;
  snap.rels_v6 = report.inferred.v6;

  snap.hybrids.reserve(report.hybrids.hybrids.size());
  for (const auto& finding : report.hybrids.hybrids) {
    snapshot::HybridLink h;
    h.link = finding.link;
    h.rel_v4 = finding.rel_v4;
    h.rel_v6 = finding.rel_v6;
    h.cls = static_cast<std::uint8_t>(finding.cls);
    h.v6_path_visibility = finding.v6_path_visibility;
    snap.hybrids.push_back(h);
  }
  return snap;
}

}  // namespace htor::core
