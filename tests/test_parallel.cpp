// Tests for the parallel census subsystem: the thread pool itself, the
// deterministic shard planner, and — the property the whole design hangs on —
// that every pool-sharded pipeline stage reproduces its sequential twin
// exactly, for any job count.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>

#include "core/census_report.hpp"
#include "core/parallel.hpp"
#include "core/pipeline.hpp"
#include "core/valley_census.hpp"
#include "gen/internet.hpp"
#include "mrt/reader.hpp"
#include "mrt/rib_view.hpp"
#include "mrt/writer.hpp"
#include "rpsl/object.hpp"
#include "util/thread_pool.hpp"

namespace htor {
namespace {

// ----------------------------------------------------------- thread pool

TEST(ThreadPool, InlineModeSpawnsNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.workers(), 0u);
  EXPECT_EQ(pool.concurrency(), 1u);
  auto future = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, RunsSubmittedTasksOnWorkers) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4u);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 100; ++i) {
    futures.push_back(pool.submit([&sum, i] { sum += i; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, ExceptionsSurfaceAtGet) {
  for (std::size_t jobs : {1u, 3u}) {
    ThreadPool pool(jobs);
    auto future = pool.submit([]() -> int { throw Error("boom"); });
    EXPECT_THROW(future.get(), Error);
  }
}

TEST(ThreadPool, ZeroMeansHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.concurrency(), 1u);
}

// The pool's observability accessors: executed() counts completed tasks in
// both worker and inline modes, and after a blocking shard_map_reduce the
// queue has drained back to zero (every submitted shard was consumed — the
// htor_threadpool_queue_depth gauge reads 0 between requests).
TEST(ThreadPool, QueueDrainsToZeroAfterShardMapReduce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.queued(), 0u);
  EXPECT_EQ(pool.executed(), 0u);

  std::vector<int> data(997);
  std::iota(data.begin(), data.end(), 1);
  const long total = core::shard_map_reduce(
      pool, data.size(),
      [&data](const core::ShardRange& r) {
        long sum = 0;
        for (std::size_t i = r.begin; i < r.end; ++i) sum += data[i];
        return sum;
      },
      0L, [](long& acc, long part) { acc += part; });

  EXPECT_EQ(total, 997L * 998 / 2);
  EXPECT_EQ(pool.queued(), 0u);
  // Every shard task ran on the pool (shard count = kCensusShards plan for
  // 997 items; at least one per worker, at most one per item).
  EXPECT_GE(pool.executed(), 4u);
  const auto after_reduce = pool.executed();

  auto f = pool.submit([] {});
  f.get();
  EXPECT_EQ(pool.executed(), after_reduce + 1);
  EXPECT_EQ(pool.queued(), 0u);
}

TEST(ThreadPool, InlineModeCountsExecutedTasks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.executed(), 0u);
  pool.submit([] {}).get();
  pool.submit([] {}).get();
  EXPECT_EQ(pool.executed(), 2u);
  EXPECT_EQ(pool.queued(), 0u);
}

// ----------------------------------------------------------- shard planner

TEST(ShardRanges, CoversRangeExactlyOnceInOrder) {
  for (std::size_t n : {0u, 1u, 5u, 31u, 32u, 33u, 1000u}) {
    const auto ranges = core::shard_ranges(n);
    std::size_t expect_begin = 0;
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      EXPECT_EQ(ranges[i].index, i);
      EXPECT_EQ(ranges[i].begin, expect_begin);
      EXPECT_LT(ranges[i].begin, ranges[i].end);
      expect_begin = ranges[i].end;
    }
    EXPECT_EQ(expect_begin, n);
    EXPECT_LE(ranges.size(), core::kCensusShards);
    if (n > 0) {
      EXPECT_EQ(ranges.size(), std::min(n, core::kCensusShards));
    }
  }
}

TEST(ShardRanges, PlanIsIndependentOfJobCount) {
  // The planner takes no thread count at all — document that by equality of
  // repeated plans.
  const auto a = core::shard_ranges(977);
  const auto b = core::shard_ranges(977);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].begin, b[i].begin);
    EXPECT_EQ(a[i].end, b[i].end);
  }
}

TEST(ShardMap, MergesInShardOrder) {
  ThreadPool pool(4);
  std::vector<int> data(250);
  std::iota(data.begin(), data.end(), 0);
  const auto shards = core::shard_map(pool, data.size(), [&data](const core::ShardRange& r) {
    return std::vector<int>(data.begin() + static_cast<long>(r.begin),
                            data.begin() + static_cast<long>(r.end));
  });
  std::vector<int> merged;
  for (const auto& shard : shards) merged.insert(merged.end(), shard.begin(), shard.end());
  EXPECT_EQ(merged, data);
}

TEST(ShardMap, PropagatesFirstError) {
  ThreadPool pool(2);
  EXPECT_THROW(core::shard_map(pool, 100,
                               [](const core::ShardRange& r) -> int {
                                 if (r.index == 3) throw Error("shard 3 failed");
                                 return 0;
                               }),
               Error);
}

// ------------------------------------------- sequential == parallel twins

struct ParallelFixture : public ::testing::Test {
  static const gen::SyntheticInternet& net() {
    static const gen::SyntheticInternet instance =
        gen::SyntheticInternet::generate(gen::small_params(11));
    return instance;
  }
  static const mrt::ObservedRib& rib() {
    static const mrt::ObservedRib instance = net().collect();
    return instance;
  }
  static const rpsl::CommunityDictionary& dict() {
    static const rpsl::CommunityDictionary instance =
        rpsl::mine_dictionary(rpsl::parse_objects(net().irr_dump()));
    return instance;
  }
};

void expect_same_rels(const RelationshipMap& a, const RelationshipMap& b) {
  EXPECT_EQ(a.size(), b.size());
  a.for_each([&b](const LinkKey& key, Relationship rel) {
    EXPECT_EQ(rel, b.get(key.first, key.second))
        << "link AS" << key.first << "-AS" << key.second;
  });
}

TEST_F(ParallelFixture, RibJoinMatchesSequential) {
  mrt::MrtWriter writer;
  for (const auto& rec : mrt::records_from_rib(rib(), 1, "par", 0)) writer.write(rec);
  const auto bytes = writer.take();
  const auto records = mrt::read_all(bytes);

  const auto sequential = mrt::rib_from_records(records);
  for (std::size_t jobs : {1u, 4u}) {
    ThreadPool pool(jobs);
    const auto sharded = mrt::rib_from_records(records, pool);
    ASSERT_EQ(sharded.size(), sequential.size());
    EXPECT_EQ(sharded.size_of(IpVersion::V6), sequential.size_of(IpVersion::V6));
    // Route order must match the sequential join exactly.
    EXPECT_EQ(sharded.routes(), sequential.routes());
  }
}

TEST_F(ParallelFixture, PathsOfMatchesSequential) {
  for (IpVersion af : {IpVersion::V4, IpVersion::V6}) {
    const auto sequential = core::paths_of(rib(), af);
    ThreadPool pool(4);
    const auto sharded = core::paths_of(rib(), af, pool);
    EXPECT_EQ(sharded.unique_paths(), sequential.unique_paths());
    EXPECT_EQ(sharded.total_occurrences(), sequential.total_occurrences());
    EXPECT_EQ(sharded.links(), sequential.links());  // links() is canonical
  }
}

TEST_F(ParallelFixture, DualStackLinksMatchesSequentialOrder) {
  const auto v4 = core::paths_of(rib(), IpVersion::V4);
  const auto v6 = core::paths_of(rib(), IpVersion::V6);
  const auto sequential = core::dual_stack_links(v4, v6);
  ThreadPool pool(4);
  EXPECT_EQ(core::dual_stack_links(v4, v6, pool), sequential);
}

TEST_F(ParallelFixture, CommunityInferenceMatchesSequential) {
  const auto routes = rib().routes_of(IpVersion::V6);
  const auto sequential = core::infer_from_communities(routes, dict());
  for (std::size_t jobs : {1u, 4u}) {
    ThreadPool pool(jobs);
    const auto sharded = core::infer_from_communities(routes, dict(), {}, pool);
    EXPECT_EQ(sharded.links_with_votes, sequential.links_with_votes);
    EXPECT_EQ(sharded.conflicted_links, sequential.conflicted_links);
    EXPECT_EQ(sharded.tagged_routes, sequential.tagged_routes);
    EXPECT_EQ(sharded.total_votes, sequential.total_votes);
    expect_same_rels(sharded.rels, sequential.rels);
  }
}

TEST_F(ParallelFixture, InferRelationshipsMatchesSequential) {
  core::InferenceConfig sequential_config;  // threads = 1
  const auto sequential = core::infer_relationships(rib(), dict(), sequential_config);

  core::InferenceConfig parallel_config;
  parallel_config.threads = 4;
  const auto sharded = core::infer_relationships(rib(), dict(), parallel_config);

  expect_same_rels(sharded.v4, sequential.v4);
  expect_same_rels(sharded.v6, sequential.v6);
  EXPECT_EQ(sharded.rosetta_v6.values_learned, sequential.rosetta_v6.values_learned);
  EXPECT_EQ(sharded.rosetta_v6.routes_resolved, sequential.rosetta_v6.routes_resolved);
}

TEST_F(ParallelFixture, ValleyCensusMatchesSequential) {
  const auto paths = core::paths_of(rib(), IpVersion::V6);
  const auto inferred = core::infer_relationships(rib(), dict());
  const auto sequential = core::census_valleys(paths, inferred.v6);
  ThreadPool pool(4);
  const auto sharded = core::census_valleys(paths, inferred.v6, pool);
  EXPECT_EQ(sharded.paths, sequential.paths);
  EXPECT_EQ(sharded.valley_free, sequential.valley_free);
  EXPECT_EQ(sharded.valley, sequential.valley);
  EXPECT_EQ(sharded.incomplete, sequential.incomplete);
  EXPECT_EQ(sharded.classified_valleys, sequential.classified_valleys);
  EXPECT_EQ(sharded.necessary_valleys, sequential.necessary_valleys);
}

TEST_F(ParallelFixture, FullCensusMatchesAcrossJobCounts) {
  core::InferenceConfig config;
  config.threads = 1;
  const auto base = core::run_census(rib(), dict(), config);
  for (std::size_t jobs : {4u, 8u}) {
    config.threads = jobs;
    const auto report = core::run_census(rib(), dict(), config);
    EXPECT_EQ(report.v6_paths, base.v6_paths);
    EXPECT_EQ(report.v4_paths, base.v4_paths);
    EXPECT_EQ(report.v6_links, base.v6_links);
    EXPECT_EQ(report.dual_links, base.dual_links);
    EXPECT_EQ(report.v6_coverage.covered_links, base.v6_coverage.covered_links);
    EXPECT_EQ(report.dual_coverage.covered_links, base.dual_coverage.covered_links);
    EXPECT_EQ(report.hybrids.hybrids.size(), base.hybrids.hybrids.size());
    EXPECT_EQ(report.hybrids.v6_paths_with_hybrid, base.hybrids.v6_paths_with_hybrid);
    EXPECT_EQ(report.v6_valleys.valley, base.v6_valleys.valley);
    EXPECT_EQ(report.v6_valleys.necessary_valleys, base.v6_valleys.necessary_valleys);
    ASSERT_EQ(report.hybrids.hybrids.size(), base.hybrids.hybrids.size());
    for (std::size_t i = 0; i < report.hybrids.hybrids.size(); ++i) {
      EXPECT_EQ(report.hybrids.hybrids[i].link, base.hybrids.hybrids[i].link);
      EXPECT_EQ(report.hybrids.hybrids[i].rel_v4, base.hybrids.hybrids[i].rel_v4);
      EXPECT_EQ(report.hybrids.hybrids[i].rel_v6, base.hybrids.hybrids[i].rel_v6);
    }
  }
}

}  // namespace
}  // namespace htor
