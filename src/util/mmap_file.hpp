// Read-only memory-mapped file with RAII lifetime: the mapping lives exactly
// as long as the MmapFile object, so a view handed out as a span must not
// outlive it (snapshot::MappedSnapshot wraps this in a shared_ptr for that
// reason).  The file descriptor is closed immediately after mapping — on
// POSIX the mapping keeps the underlying inode alive, so a mapped file that
// is later rename()d over or unlink()ed keeps serving its original bytes.
//
// Raw-pointer handling is confined to this wrapper (and the checked
// accessors in snapshot/layout): everything above it sees only a
// std::span<const std::uint8_t>.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace htor {

class MmapFile {
 public:
  /// An empty, unmapped instance (data() is an empty span).
  MmapFile() = default;

  /// Map `path` read-only.  Throws Error when the file cannot be opened,
  /// stat'ed, or mapped.  A zero-length file maps to an empty span without
  /// calling mmap (POSIX rejects zero-length mappings).
  explicit MmapFile(const std::string& path);

  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// The mapped bytes; valid while this object lives.
  std::span<const std::uint8_t> data() const {
    return {static_cast<const std::uint8_t*>(addr_), size_};
  }

  std::size_t size() const { return size_; }
  bool mapped() const { return addr_ != nullptr; }

 private:
  void unmap() noexcept;

  void* addr_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace htor
