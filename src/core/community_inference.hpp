// Relationship extraction from BGP Communities (the paper's §2 method).
//
// For an observed AS path  p0 p1 … pk  (p0 = vantage peer, pk = origin),
// a community  pi:v  whose mined meaning is a relationship ingress tag
// asserts how pi learned the route from p_{i+1}: "learned from customer"
// means p_{i+1} is pi's customer, i.e. rel(pi, p_{i+1}) = p2c.  Every
// observed route casts votes for the links its tags can localize; links are
// then typed by majority, and contradicting majorities are flagged instead
// of guessed.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "mrt/rib_view.hpp"
#include "rpsl/community_dict.hpp"
#include "topology/relationship.hpp"

namespace htor::core {

struct CommunityInferenceParams {
  /// Minimum votes before a link is typed.
  std::uint32_t min_votes = 1;
  /// Majority requirement: winning relationship must hold at least this
  /// fraction of the link's votes.
  double majority = 0.6;
};

struct CommunityInferenceResult {
  RelationshipMap rels;
  std::size_t links_with_votes = 0;
  std::size_t conflicted_links = 0;  ///< votes present but no clear majority
  std::uint64_t tagged_routes = 0;   ///< routes that contributed >= 1 vote
  std::uint64_t total_votes = 0;
};

/// Infer relationships for one address family's routes.
CommunityInferenceResult infer_from_communities(
    const std::vector<const mrt::ObservedRoute*>& routes,
    const rpsl::CommunityDictionary& dict, const CommunityInferenceParams& params = {});

}  // namespace htor::core
