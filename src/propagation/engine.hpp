// Policy-driven BGP route propagation over one address-family plane.
//
// For one origin AS at a time, the engine computes every AS's best route as a
// path-vector fixpoint:
//
//   decision:  higher LocPrf (relationship-based, with TE overrides)
//              -> shorter AS path (prepending included)
//              -> lower neighbor ASN (deterministic tiebreak);
//   export:    own and customer-learned routes go to everyone; peer- and
//              provider-learned routes go to customers (and siblings) only —
//              unless the exporter has `relaxed_export`, the IPv6-specific
//              behaviour that creates valley paths;
//   loop suppression: a route is never accepted from a neighbor whose path
//              already contains the deciding AS.
//
// This is the substrate that stands in for the real Internet's BGP: observed
// AS paths (including valleys, prepending and hybrid-relationship artifacts)
// are emergent, not scripted.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "propagation/policy.hpp"
#include "topology/as_graph.hpp"
#include "topology/relationship.hpp"

namespace htor::prop {

/// How the selected route was learned.
enum class RouteSource : std::uint8_t { None, Origin, Customer, Peer, Provider, Sibling };

class Engine {
 public:
  /// `rels` must classify every link of `graph` in family `af`; links with
  /// Unknown relationship are not used.  ASes missing from `policies` get a
  /// default NodePolicy.
  Engine(const AsGraph& graph, const RelationshipMap& rels, IpVersion af,
         const std::unordered_map<Asn, NodePolicy>& policies, const TeOverrides* te = nullptr);

  /// Run the fixpoint for the prefix originated by `origin`.
  /// Throws InvalidArgument when `origin` is not in the graph.
  void run(Asn origin);

  /// Origin of the last run (0 before any run).
  Asn origin() const { return origin_asn_; }

  bool has_route(Asn node) const;

  /// The AS_PATH `node` would advertise: starts with `node`, ends with the
  /// origin, includes prepending introduced along the way.  Empty when the
  /// node has no route.  For the origin itself, returns {origin}.
  std::vector<Asn> advertised_path(Asn node) const;

  /// LocPrf the node assigned to its best route (0 at the origin).
  std::uint32_t locpref(Asn node) const;

  /// How the node learned its best route.
  RouteSource source(Asn node) const;

  /// Neighbor the best route was learned from (nullopt at origin/no route).
  std::optional<Asn> best_neighbor(Asn node) const;

  /// Number of selection activations consumed by the last run (stat).
  std::size_t activations() const { return activations_; }

  /// False when the last run hit the activation cap (a dispute-wheel style
  /// oscillation); affected nodes had their routes invalidated, mirroring
  /// the blackholes a real persistent oscillation causes.
  bool converged() const { return converged_; }

 private:
  struct Edge {
    std::uint32_t to;
    Relationship rel;  // rel(this-node -> to): role `to` plays for this node
  };

  struct Best {
    std::uint32_t parent = 0;     // dense index; valid when source != None
    RouteSource source = RouteSource::None;
    /// Export class: siblings are transparent, so a route learned from a
    /// sibling keeps the class it had at the sibling (a provider-learned
    /// route does not become freely exportable by crossing a sibling link).
    RouteSource effective = RouteSource::None;
    std::uint32_t locpref = 0;
    std::uint32_t length = 0;     // decision length incl. prepends
  };

  /// How (whether) a route crosses an export filter.  LastResort marks
  /// routes that only exist because of full (healer-style) relaxation; the
  /// receiver deprefs them so they carry traffic only where nothing
  /// policy-compliant exists.
  enum class ExportClass : std::uint8_t { No, Normal, LastResort };

  std::uint32_t index_of(Asn asn) const;
  ExportClass exportable(const Best& route, Relationship rel_exporter_to_target,
                         const NodePolicy& exporter, Asn exporter_asn) const;
  bool path_contains(std::uint32_t start, std::uint32_t node) const;
  static RouteSource source_of(Relationship rel_node_to_parent);

  std::unordered_map<Asn, std::uint32_t> index_;
  std::vector<Asn> asns_;
  std::vector<std::vector<Edge>> adj_;
  std::vector<NodePolicy> policy_;
  const TeOverrides* te_;

  Asn origin_asn_ = 0;
  std::uint32_t origin_idx_ = 0;
  std::vector<Best> best_;
  std::size_t activations_ = 0;
  bool converged_ = true;

  void repair_broken_chains();
};

}  // namespace htor::prop
