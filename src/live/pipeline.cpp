#include "live/pipeline.hpp"

#include <chrono>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "mrt/reader.hpp"
#include "mrt/stream_reader.hpp"
#include "obs/sketch/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/spsc_ring.hpp"

namespace htor::live {

namespace {

/// One decoded update in flight between decoder and apply.
struct DecodedUpdate {
  std::uint32_t timestamp = 0;
  mrt::Bgp4mpMessage msg;
};

/// Stage backoff while a ring is full/empty: yield first (the common case on
/// the 1-CPU container is simply that the counterpart stage hasn't been
/// scheduled), then sleep so a long stall doesn't burn the core.
void backoff(int& spins) {
  if (spins < 256) {
    ++spins;
    std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

}  // namespace

Pipeline::Pipeline(IncrementalCensus& census, PipelineConfig config)
    : census_(census), config_(config) {
  auto& reg = obs::MetricsRegistry::global();
  records_total_ = reg.counter("htor_live_records_total");
  skipped_total_ = reg.counter("htor_live_skipped_records_total");
  updates_total_ = reg.counter("htor_live_updates_total");
  announces_total_ = reg.counter("htor_live_announces_total");
  withdraws_total_ = reg.counter("htor_live_withdraws_total");
  replaces_total_ = reg.counter("htor_live_replaces_total");
  epochs_total_ = reg.counter("htor_live_epochs_total");
  push_waits_decode_ = reg.counter("htor_live_push_waits_total", {{"stage", "decode"}});
  push_waits_apply_ = reg.counter("htor_live_push_waits_total", {{"stage", "apply"}});
  routes_ = reg.gauge("htor_live_routes");
  staleness_ = reg.gauge("htor_live_staleness_updates");
}

PipelineResult Pipeline::run(const std::vector<std::string>& update_paths,
                             ThreadPool& epoch_pool, const EpochCallback& on_epoch) {
  OBS_SPAN("live.run");
  PipelineResult result;
  routes_.set(static_cast<std::int64_t>(census_.rib().size()));

  SpscRing<mrt::RawFramedRecord> raw_ring(config_.ring_capacity);
  SpscRing<DecodedUpdate> decoded_ring(config_.ring_capacity);

  // Depth gauges are registered for the duration of the run and destroyed
  // (unregistered) before the rings they read — declared after them.
  auto& reg = obs::MetricsRegistry::global();
  std::vector<obs::CallbackMetric> depth_gauges;
  depth_gauges.push_back(reg.callback(
      "htor_live_ring_depth", {{"stage", "decode"}}, obs::MetricsRegistry::Kind::Gauge,
      [&raw_ring] { return static_cast<std::int64_t>(raw_ring.occupancy()); }));
  depth_gauges.push_back(reg.callback(
      "htor_live_ring_depth", {{"stage", "apply"}}, obs::MetricsRegistry::Kind::Gauge,
      [&decoded_ring] { return static_cast<std::int64_t>(decoded_ring.occupancy()); }));

  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto fail = [&](std::exception_ptr error) {
    {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (first_error == nullptr) first_error = std::move(error);
    }
    stop_.store(true, std::memory_order_release);
  };

  // Block until a slot frees up, the run is stopped, or a stage failed.
  // The wait counter records *blocked pushes*, not spin iterations.
  auto push_blocking = [this](auto& ring, auto& item, const obs::Counter& waits) {
    int spins = 0;
    bool waited = false;
    while (!ring.try_push(item)) {
      if (stop_.load(std::memory_order_acquire)) return false;
      if (!waited) {
        waits.inc();
        waited = true;
      }
      backoff(spins);
    }
    return true;
  };
  auto pop_blocking = [this](auto& ring, auto& out) {
    int spins = 0;
    while (!ring.try_pop(out)) {
      if (ring.done() || stop_.load(std::memory_order_acquire)) return false;
      backoff(spins);
    }
    return true;
  };

  // Written by their owning stage before its ring closes, read after join.
  std::uint64_t records_read = 0;
  std::uint64_t records_skipped = 0;

  // lint: allow(naked-thread) dedicated reader stage; joined below before
  // run() returns on every path, including exceptions
  std::thread reader([&] {
    try {
      for (const std::string& path : update_paths) {
        mrt::MrtStreamReader stream(path);
        while (auto raw = stream.next_update()) {
          ++records_read;
          records_total_.inc();
          if (!push_blocking(raw_ring, *raw, push_waits_decode_)) {
            raw_ring.close();
            return;
          }
        }
        skipped_total_.inc(stream.updates_skipped());
        records_skipped += stream.updates_skipped();
      }
    } catch (...) {
      fail(std::current_exception());
    }
    raw_ring.close();
  });

  // lint: allow(naked-thread) dedicated decoder stage; joined below before
  // run() returns on every path, including exceptions
  std::thread decoder([&] {
    try {
      mrt::RawFramedRecord raw;
      while (pop_blocking(raw_ring, raw)) {
        mrt::Record record =
            mrt::decode_record_body(raw.timestamp, raw.type, raw.subtype, raw.body);
        auto* msg = std::get_if<mrt::Bgp4mpMessage>(&record.body);
        if (msg == nullptr) continue;  // next_update() filtered; defensive
        DecodedUpdate item{record.timestamp, std::move(*msg)};
        if (!push_blocking(decoded_ring, item, push_waits_apply_)) break;
      }
    } catch (...) {
      fail(std::current_exception());
    }
    decoded_ring.close();
  });

  // Apply stage, on the calling thread.
  std::uint64_t last_epoch_applied = 0;
  auto emit_epoch = [&] {
    OBS_SPAN("live.epoch");
    const EpochReport epoch = census_.recompute(epoch_pool);
    // Publish the closing epoch's churn cardinality, then start the next
    // epoch's sketches from zero — the gauges always describe the last
    // *completed* epoch.
    obs::sketch::Telemetry::global().set_epoch_churn(epoch.churn_ases, epoch.churn_prefixes,
                                                     epoch.churn_links);
    census_.reset_epoch_churn();
    ++result.epochs;
    epochs_total_.inc();
    last_epoch_applied = result.applied;
    staleness_.set(0);
    if (on_epoch) on_epoch(epoch);
  };
  try {
    DecodedUpdate item;
    while (pop_blocking(decoded_ring, item)) {
      const ApplyStats before = census_.rib().stats();
      census_.apply(item.timestamp, item.msg);
      ++result.applied;
      updates_total_.inc();
      const ApplyStats& after = census_.rib().stats();
      announces_total_.inc(after.announced - before.announced);
      withdraws_total_.inc(after.withdrawn - before.withdrawn);
      replaces_total_.inc(after.replaced - before.replaced);
      routes_.set(static_cast<std::int64_t>(census_.rib().size()));
      staleness_.set(static_cast<std::int64_t>(result.applied - last_epoch_applied));
      if (config_.epoch_every > 0 && result.applied % config_.epoch_every == 0) emit_epoch();
    }
    const bool stopped = stop_.load(std::memory_order_acquire);
    if (!stopped && config_.final_epoch &&
        (result.applied > last_epoch_applied || result.epochs == 0)) {
      emit_epoch();
    }
  } catch (...) {
    fail(std::current_exception());  // also sets stop_, unblocking the producers
  }

  reader.join();
  decoder.join();

  {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (first_error != nullptr) std::rethrow_exception(first_error);
  }
  result.records = records_read;
  result.skipped = records_skipped;
  result.stopped = stop_.load(std::memory_order_acquire);
  return result;
}

}  // namespace htor::live
