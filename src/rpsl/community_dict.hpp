// Mining BGP community documentation out of IRR aut-num objects.
//
// Operators document their community schemes in free-text "remarks:" lines:
//
//   remarks:    64500:100   routes learned from customers
//   remarks:    64500:200   routes learned from peers
//   remarks:    64500:300   routes learned from upstream providers
//   remarks:    64500:9040  set local-pref to 40 (backup)
//   remarks:    64500:7001  prepend once towards all peers
//
// The miner turns those lines into a dictionary mapping a community value to
// a machine-readable meaning.  Two classes of meanings matter to the paper:
// relationship ingress tags ("this route was learned from a customer") and
// traffic-engineering tags (which both explain unusual LocPrf values and must
// be filtered before LocPrf can be trusted as a relationship signal).
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bgp/community.hpp"
#include "rpsl/object.hpp"
#include "topology/relationship.hpp"

namespace htor::rpsl {

enum class CommunityTagKind : std::uint8_t {
  FromCustomer,  ///< ingress tag: route learned from a customer
  FromPeer,      ///< ingress tag: route learned from a peer
  FromProvider,  ///< ingress tag: route learned from an upstream/transit
  FromSibling,   ///< ingress tag: route learned from a sibling AS
  SetLocPref,    ///< TE action: overrides local-pref (value in `locpref`)
  Prepend,       ///< TE action: path prepending request
  NoExportTo,    ///< TE action: selective no-export
  Blackhole,     ///< TE action: RTBH
  GeoTag,        ///< informational: ingress city/region/PoP
  Other,         ///< documented but uninterpretable
};

const char* to_string(CommunityTagKind kind);

/// True for the four relationship ingress tags.
bool is_relationship_tag(CommunityTagKind kind);

/// True for tags that manipulate route preference and therefore disqualify
/// a route's LocPrf from relationship calibration.
bool is_te_tag(CommunityTagKind kind);

/// The relationship asserted by an ingress tag: the tagging AS's view of the
/// neighbor the route came from.  FromCustomer -> P2C (neighbor is customer).
Relationship relationship_of(CommunityTagKind kind);

struct CommunityMeaning {
  CommunityTagKind kind = CommunityTagKind::Other;
  std::uint32_t locpref = 0;  ///< for SetLocPref

  friend bool operator==(const CommunityMeaning&, const CommunityMeaning&) = default;
};

struct CommunityHash {
  std::size_t operator()(bgp::Community c) const { return std::hash<std::uint32_t>()(c.raw()); }
};

class CommunityDictionary {
 public:
  /// Register a meaning.  The first registration wins; a later conflicting
  /// one is dropped and counted (operators occasionally re-use values).
  void add(bgp::Community community, CommunityMeaning meaning);

  const CommunityMeaning* lookup(bgp::Community community) const;

  std::size_t size() const { return entries_.size(); }
  std::size_t conflicts() const { return conflicts_; }

  /// ASNs that documented at least one relationship ingress tag.
  const std::unordered_set<std::uint16_t>& documented_asns() const { return documented_asns_; }

  /// Count of entries per tag kind.
  std::unordered_map<CommunityTagKind, std::size_t> kind_histogram() const;

 private:
  std::unordered_map<bgp::Community, CommunityMeaning, CommunityHash> entries_;
  std::unordered_set<std::uint16_t> documented_asns_;
  std::size_t conflicts_ = 0;
};

/// Interpret one documentation line ("64500:100  routes from customers").
/// Returns false when the line does not start with a community token.
bool interpret_remark_line(std::string_view line, bgp::Community& community,
                           CommunityMeaning& meaning);

/// Mine every aut-num object's remarks into a dictionary.
CommunityDictionary mine_dictionary(const std::vector<RpslObject>& objects);

}  // namespace htor::rpsl
