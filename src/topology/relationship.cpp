#include "topology/relationship.hpp"

#include <algorithm>

namespace htor {

Relationship reverse(Relationship rel) {
  switch (rel) {
    case Relationship::P2C: return Relationship::C2P;
    case Relationship::C2P: return Relationship::P2C;
    case Relationship::P2P: return Relationship::P2P;
    case Relationship::S2S: return Relationship::S2S;
    case Relationship::Unknown: return Relationship::Unknown;
  }
  return Relationship::Unknown;
}

const char* to_string(Relationship rel) {
  switch (rel) {
    case Relationship::P2C: return "p2c";
    case Relationship::C2P: return "c2p";
    case Relationship::P2P: return "p2p";
    case Relationship::S2S: return "s2s";
    case Relationship::Unknown: return "unknown";
  }
  return "?";
}

void RelationshipMap::set(Asn a, Asn b, Relationship rel) {
  const LinkKey key(a, b);
  const Relationship canonical = (key.first == a) ? rel : reverse(rel);
  auto [it, inserted] = entries_.insert_or_assign(key, canonical);
  (void)it;
  if (inserted) {
    index_add(a, b);
    index_add(b, a);
  }
}

void RelationshipMap::index_add(Asn a, Asn b) { adjacency_[a].push_back(b); }

Relationship RelationshipMap::get(Asn a, Asn b) const {
  const LinkKey key(a, b);
  auto it = entries_.find(key);
  if (it == entries_.end()) return Relationship::Unknown;
  return key.first == a ? it->second : reverse(it->second);
}

void RelationshipMap::for_each(
    const std::function<void(const LinkKey&, Relationship)>& fn) const {
  for (const auto& [key, rel] : entries_) fn(key, rel);
}

std::vector<Asn> RelationshipMap::customers(Asn asn) const {
  std::vector<Asn> out;
  auto it = adjacency_.find(asn);
  if (it == adjacency_.end()) return out;
  for (Asn nbr : it->second) {
    if (get(asn, nbr) == Relationship::P2C) out.push_back(nbr);
  }
  return out;
}

std::vector<Asn> RelationshipMap::providers(Asn asn) const {
  std::vector<Asn> out;
  auto it = adjacency_.find(asn);
  if (it == adjacency_.end()) return out;
  for (Asn nbr : it->second) {
    if (get(asn, nbr) == Relationship::C2P) out.push_back(nbr);
  }
  return out;
}

std::vector<Asn> RelationshipMap::peers(Asn asn) const {
  std::vector<Asn> out;
  auto it = adjacency_.find(asn);
  if (it == adjacency_.end()) return out;
  for (Asn nbr : it->second) {
    if (get(asn, nbr) == Relationship::P2P) out.push_back(nbr);
  }
  return out;
}

RelationshipMap::Counts RelationshipMap::counts() const {
  Counts c;
  for (const auto& [key, rel] : entries_) {
    (void)key;
    switch (rel) {
      case Relationship::P2C:
      case Relationship::C2P: ++c.transit; break;
      case Relationship::P2P: ++c.peering; break;
      case Relationship::S2S: ++c.sibling; break;
      case Relationship::Unknown: ++c.unknown; break;
    }
  }
  return c;
}

}  // namespace htor
