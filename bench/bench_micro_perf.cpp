// P1: google-benchmark microbenchmarks for the hot paths of the pipeline —
// MRT record parsing, BGP UPDATE decode, community dictionary application,
// valley checking, and the constrained (valley-free) BFS.
#include <benchmark/benchmark.h>

#include "bgp/message.hpp"
#include "core/community_inference.hpp"
#include "harness.hpp"
#include "core/census_report.hpp"
#include "core/pipeline.hpp"
#include "core/snapshot_bridge.hpp"
#include "obs/metrics.hpp"
#include "snapshot/diff.hpp"
#include "snapshot/query.hpp"
#include "snapshot/reader.hpp"
#include "snapshot/writer.hpp"
#include "util/bytes.hpp"
#include "gen/internet.hpp"
#include "gen/updates.hpp"
#include "live/incremental_census.hpp"
#include "live/pipeline.hpp"
#include "mrt/reader.hpp"
#include "mrt/rib_view.hpp"
#include "mrt/stream_reader.hpp"
#include "mrt/writer.hpp"
#include "rpsl/object.hpp"
#include "server/daemon.hpp"
#include "server/http.hpp"
#include "topology/reachability.hpp"
#include "topology/valley.hpp"
#include "util/thread_pool.hpp"

#if defined(__unix__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

namespace {

using namespace htor;

/// Small shared dataset, built once.
struct DatasetBits {
  gen::SyntheticInternet net = gen::SyntheticInternet::generate(gen::small_params(3));
  mrt::ObservedRib rib = net.collect();
  std::vector<std::uint8_t> mrt_bytes;
  rpsl::CommunityDictionary dict;
  RelationshipMap rels;
  std::vector<std::vector<Asn>> paths;

  DatasetBits() {
    mrt::MrtWriter writer;
    for (const auto& rec : mrt::records_from_rib(rib, 1, "micro", 1281052800u)) {
      writer.write(rec);
    }
    mrt_bytes = writer.take();
    dict = rpsl::mine_dictionary(rpsl::parse_objects(net.irr_dump()));
    rels = net.truth(IpVersion::V6);
    for (const auto& route : rib.routes()) {
      if (route.af == IpVersion::V6) paths.push_back(route.as_path);
    }
  }
};

const DatasetBits& bits() {
  static const DatasetBits instance;
  return instance;
}

void BM_MrtParseRib(benchmark::State& state) {
  const auto& data = bits().mrt_bytes;
  std::uint64_t records = 0;
  for (auto _ : state) {
    mrt::MrtReader reader(data);
    while (auto rec = reader.next()) {
      benchmark::DoNotOptimize(rec);
      ++records;
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * data.size()));
  state.counters["records"] = static_cast<double>(records) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_MrtParseRib);

void BM_BgpUpdateRoundTrip(benchmark::State& state) {
  bgp::PathAttributes attrs;
  attrs.origin = bgp::Origin::Igp;
  attrs.as_path = bgp::AsPath::sequence({64500, 3356, 1299, 20940});
  attrs.local_pref = 120;
  attrs.communities = {bgp::Community(3356, 100), bgp::Community(1299, 2000)};
  const auto update = bgp::make_ipv6_update(attrs, IpAddress::parse("2001:db8::1"),
                                            {Prefix::parse("2001:db8:1000::/48")});
  for (auto _ : state) {
    const auto bytes = bgp::encode_message(update);
    ByteReader reader(bytes);
    auto decoded = bgp::decode_message(reader);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_BgpUpdateRoundTrip);

void BM_CommunityInference(benchmark::State& state) {
  const auto routes = bits().rib.routes_of(IpVersion::V6);
  for (auto _ : state) {
    auto result = core::infer_from_communities(routes, bits().dict);
    benchmark::DoNotOptimize(result);
  }
  state.counters["routes"] = static_cast<double>(routes.size());
}
BENCHMARK(BM_CommunityInference);

// The inference stage of the census (both families, communities + Rosetta)
// with the route scans sharded over a pool — Arg is the job count, so the
// speedup over /1 is the parallelization win on this machine.
void BM_InferRelationships(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  ThreadPool pool(jobs);
  core::InferenceConfig config;
  config.threads = jobs;
  for (auto _ : state) {
    auto result = core::infer_relationships(bits().rib, bits().dict, config, pool);
    benchmark::DoNotOptimize(result);
  }
  state.counters["routes"] = static_cast<double>(bits().rib.size());
  state.counters["jobs"] = static_cast<double>(jobs);
}
BENCHMARK(BM_InferRelationships)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// Full census (path stores, inference, hybrids, valley census) across job
// counts; reports are byte-identical, only wall time changes.
void BM_RunCensus(benchmark::State& state) {
  core::InferenceConfig config;
  config.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto report = core::run_census(bits().rib, bits().dict, config);
    benchmark::DoNotOptimize(report);
  }
  state.counters["jobs"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RunCensus)->Arg(1)->Arg(4)->UseRealTime();

// --- ingest: streaming vs load-all ------------------------------------------
//
// Peak RSS is a per-process high-water mark, so measuring both ingest paths
// in one process would let whichever runs first poison the other's number.
// Each iteration forks a child that performs ONE ingest of the bench RIB and
// reports its own ru_maxrss back through a pipe.  A forked child still
// inherits the parent's resident COW pages, so an idle-child baseline is
// probed once and subtracted — peak_rss_mb is the ingest's own high-water
// delta.  Counters: peak_rss_mb, routes (joined count, correctness canary).
#if defined(__unix__)

/// On-disk bench RIB, written once per process (PID-suffixed so concurrent
/// bench runs never race on the file).  Larger than the unit-test dumps so
/// the whole-file and whole-Record-vector materializations of the load-all
/// path actually show up in RSS.
const std::string& bench_rib_path() {
  static const std::string path = [] {
    const auto net = gen::SyntheticInternet::generate(gen::small_params(11));
    mrt::MrtWriter writer;
    // Repeat the dump so the file has enough records for several stream
    // batches; repeated PEER_INDEX_TABLEs are legal (each governs the
    // records that follow it) and keep the RIB join meaningful.
    const auto records = mrt::records_from_rib(net.collect(), 1, "ingest", 1281052800u);
    for (int copy = 0; copy < 8; ++copy) {
      for (const auto& rec : records) writer.write(rec);
    }
    std::string p = "/tmp/hybridtor_bench_ingest." + std::to_string(getpid()) + ".mrt";
    writer.save(p);
    return p;
  }();
  // Registered after `path` completes initialization, so the handler runs
  // before the string's destructor at exit.
  static const bool cleanup = [] {
    std::atexit([] { std::remove(bench_rib_path().c_str()); });
    return true;
  }();
  (void)cleanup;
  return path;
}

struct IngestProbe {
  long peak_rss_kb = 0;
  std::uint64_t routes = 0;
};

/// Run `ingest` in a forked child; returns the child's peak RSS and the
/// route count it observed.
template <typename Ingest>
IngestProbe probe_ingest_in_child(Ingest ingest) {
  int fds[2];
  if (pipe(fds) != 0) throw std::runtime_error("pipe() failed");
  const pid_t pid = fork();
  if (pid < 0) throw std::runtime_error("fork() failed");
  if (pid == 0) {
    close(fds[0]);
    IngestProbe probe;
    probe.routes = ingest();
    struct rusage usage {};
    getrusage(RUSAGE_SELF, &usage);
    probe.peak_rss_kb = usage.ru_maxrss;
    ssize_t written = write(fds[1], &probe, sizeof(probe));
    _exit(written == sizeof(probe) ? 0 : 1);
  }
  close(fds[1]);
  IngestProbe probe;
  const ssize_t got = read(fds[0], &probe, sizeof(probe));
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (got != sizeof(probe) || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    throw std::runtime_error("ingest child failed");
  }
  return probe;
}

/// High-water of a child that ingests nothing: the resident pages inherited
/// from the parent at fork.  Probed lazily (after the parent's fixtures for
/// earlier benchmarks exist) and subtracted from every ingest measurement.
long idle_child_rss_kb() {
  return probe_ingest_in_child([] { return std::uint64_t{0}; }).peak_rss_kb;
}

double ingest_delta_mb(const IngestProbe& probe) {
  const long delta = probe.peak_rss_kb - idle_child_rss_kb();
  return static_cast<double>(delta > 0 ? delta : 0) / 1024.0;
}

void BM_IngestStreaming(benchmark::State& state) {
  const std::string path = bench_rib_path();
  const auto jobs = static_cast<std::size_t>(state.range(0));
  IngestProbe last;
  for (auto _ : state) {
    last = probe_ingest_in_child([&] {
      ThreadPool pool(jobs);
      return static_cast<std::uint64_t>(mrt::rib_from_stream(path, pool).size());
    });
    benchmark::DoNotOptimize(last);
  }
  state.counters["peak_rss_mb"] = ingest_delta_mb(last);
  state.counters["routes"] = static_cast<double>(last.routes);
  state.counters["jobs"] = static_cast<double>(jobs);
}
BENCHMARK(BM_IngestStreaming)->Arg(1)->Arg(4)->UseRealTime();

void BM_IngestLoadAll(benchmark::State& state) {
  const std::string path = bench_rib_path();
  const auto jobs = static_cast<std::size_t>(state.range(0));
  IngestProbe last;
  for (auto _ : state) {
    last = probe_ingest_in_child([&] {
      ThreadPool pool(jobs);
      const auto data = mrt::load_file(path);
      return static_cast<std::uint64_t>(
          mrt::rib_from_records(mrt::read_all(data), pool).size());
    });
    benchmark::DoNotOptimize(last);
  }
  state.counters["peak_rss_mb"] = ingest_delta_mb(last);
  state.counters["routes"] = static_cast<double>(last.routes);
  state.counters["jobs"] = static_cast<double>(jobs);
}
BENCHMARK(BM_IngestLoadAll)->Arg(1)->Arg(4)->UseRealTime();

#endif  // __unix__

void BM_ValleyCheck(benchmark::State& state) {
  const auto& rels = bits().rels;
  const auto& paths = bits().paths;
  std::size_t i = 0;
  for (auto _ : state) {
    auto result = check_valley_free(paths[i % paths.size()], rels);
    benchmark::DoNotOptimize(result);
    ++i;
  }
}
BENCHMARK(BM_ValleyCheck);

void BM_ConstrainedBfs(benchmark::State& state) {
  const auto& net = bits().net;
  ValleyFreeRouting vf(net.graph(), net.truth(IpVersion::V6), IpVersion::V6);
  const auto ases = net.v6_ases();
  std::size_t i = 0;
  for (auto _ : state) {
    auto dist = vf.distances_from(ases[i % ases.size()]);
    benchmark::DoNotOptimize(dist);
    ++i;
  }
  state.counters["nodes"] = static_cast<double>(vf.node_count());
}
BENCHMARK(BM_ConstrainedBfs);

void BM_DictionaryMining(benchmark::State& state) {
  const std::string irr = bits().net.irr_dump();
  for (auto _ : state) {
    auto dict = rpsl::mine_dictionary(rpsl::parse_objects(irr));
    benchmark::DoNotOptimize(dict);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * irr.size()));
}
BENCHMARK(BM_DictionaryMining);

// --- live pipeline -----------------------------------------------------------

/// Deterministic BGP4MP update stream over the shared dataset, built once:
/// decoded messages for the apply bench plus an on-disk MRT file for the
/// end-to-end pipeline bench (PID-suffixed, removed at exit).
struct LiveBits {
  std::vector<std::pair<std::uint32_t, mrt::Bgp4mpMessage>> messages;
  std::string updates_path;
};

const LiveBits& live_bits() {
  static const LiveBits instance = [] {
    LiveBits out;
    gen::UpdateScheduleParams params;
    params.events = 2000;
    mrt::MrtWriter writer;
    for (const auto& rec : gen::synthesize_updates(bits().rib, params)) {
      writer.write(rec);
      out.messages.emplace_back(rec.timestamp, std::get<mrt::Bgp4mpMessage>(rec.body));
    }
    out.updates_path = "/tmp/hybridtor_bench_updates." + std::to_string(::getpid()) + ".mrt";
    writer.save(out.updates_path);
    return out;
  }();
  static const bool cleanup = [] {
    std::atexit([] { std::remove(live_bits().updates_path.c_str()); });
    return true;
  }();
  (void)cleanup;
  return instance;
}

/// Per-message cost of the live tier: one BGP4MP update folded into the
/// evolving RIB, the path/link refcounts, and the community-vote tallies —
/// the O(path length) work `follow` pays per update, with no epoch
/// recompute.  Cycling the schedule keeps the census in steady churn (the
/// announce/replace/duplicate/withdraw mix of the stream) rather than
/// growing without bound.
void BM_LiveApply(benchmark::State& state) {
  core::InferenceConfig config;
  live::IncrementalCensus census(bits().rib, bits().dict, config, "bench", 1281052800u);
  const auto& messages = live_bits().messages;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [timestamp, msg] = messages[i % messages.size()];
    census.apply(timestamp, msg);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["routes"] = static_cast<double>(census.stats().routes);
}
BENCHMARK(BM_LiveApply);

/// End-to-end reader -> decoder -> apply stream over the updates file, no
/// epoch recomputes: updates applied per second through the full
/// three-stage pipeline.  Arg is the ring capacity — the /2-over-/1024
/// ratio prices running every inter-stage handoff at maximum backpressure
/// (output is identical either way; only the stall count changes).
void BM_PipelineThroughput(benchmark::State& state) {
  const auto& updates = live_bits();
  const std::size_t update_count = updates.messages.size();
  core::InferenceConfig config;
  ThreadPool pool(1);
  for (auto _ : state) {
    state.PauseTiming();
    live::IncrementalCensus census(bits().rib, bits().dict, config, "bench", 1281052800u);
    state.ResumeTiming();
    live::PipelineConfig pipeline_config;
    pipeline_config.ring_capacity = static_cast<std::size_t>(state.range(0));
    pipeline_config.final_epoch = false;
    live::Pipeline pipeline(census, pipeline_config);
    auto result = pipeline.run({updates.updates_path}, pool);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * update_count));
  state.counters["updates"] = static_cast<double>(update_count);
  state.counters["ring_capacity"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_PipelineThroughput)->Arg(2)->Arg(1024)->UseRealTime();

// --- snapshot store ----------------------------------------------------------

/// Census snapshot of the shared dataset, built once.
const snapshot::Snapshot& snapshot_fixture() {
  static const snapshot::Snapshot snap = [] {
    const auto report = core::run_census(bits().rib, bits().dict);
    return core::to_snapshot(report, "bench/rib.mrt", 1281052800u);
  }();
  return snap;
}

void BM_SnapshotWrite(benchmark::State& state) {
  const auto& snap = snapshot_fixture();
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto encoded = snapshot::Writer::encode(snap);
    bytes = encoded.size();
    benchmark::DoNotOptimize(encoded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * bytes));
  state.counters["links_v4"] = static_cast<double>(snap.rels_v4.size());
  state.counters["links_v6"] = static_cast<double>(snap.rels_v6.size());
}
BENCHMARK(BM_SnapshotWrite);

void BM_SnapshotRead(benchmark::State& state) {
  const auto bytes = snapshot::Writer::encode(snapshot_fixture());
  for (auto _ : state) {
    auto snap = snapshot::Reader::decode(bytes);
    benchmark::DoNotOptimize(snap);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * bytes.size()));
}
BENCHMARK(BM_SnapshotRead);

void BM_SnapshotDiff(benchmark::State& state) {
  const auto& a = snapshot_fixture();
  // Perturbed copy: flip, drop, and widow links so every churn bucket does
  // real work instead of degenerating to the all-unchanged fast path.
  static const snapshot::Snapshot b = [&] {
    snapshot::Snapshot copy = a;
    std::size_t i = 0;
    for (const auto& [link, rel] : snapshot::sorted_entries(a.rels_v6)) {
      if (i % 7 == 0) {
        copy.rels_v6.set(link.first, link.second,
                         rel == Relationship::P2P ? Relationship::P2C : Relationship::P2P);
      } else if (i % 11 == 0) {
        copy.rels_v6.erase(link.first, link.second);
      }
      ++i;
    }
    return copy;
  }();
  std::uint64_t churn = 0;
  for (auto _ : state) {
    auto diff = snapshot::diff_snapshots(a, b);
    churn = diff.total_churn();
    benchmark::DoNotOptimize(diff);
  }
  state.counters["churn"] = static_cast<double>(churn);
}
BENCHMARK(BM_SnapshotDiff);

/// Daemon hot-reload cost by on-disk format: QueryIndex::open() is exactly
/// what reload() runs — read + validate + wrap for a v2 file, decode +
/// re-encode for a v1 file.  Arg is the file's format version, so the
/// /1-over-/2 ratio is the win of the flat layout's zero-decode reload.
void BM_SnapshotMapReload(benchmark::State& state) {
  const auto version = static_cast<std::uint32_t>(state.range(0));
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("htor_bench_reload_" + std::to_string(::getpid()) + "_v" + std::to_string(version) +
        ".snap"))
          .string();
  const auto bytes = snapshot::Writer::encode_versioned(snapshot_fixture(), version);
  save_bytes(path, bytes);
  for (auto _ : state) {
    auto index = snapshot::QueryIndex::open(path);
    benchmark::DoNotOptimize(index);
  }
  std::filesystem::remove(path);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * bytes.size()));
  state.counters["format"] = static_cast<double>(version);
}
BENCHMARK(BM_SnapshotMapReload)->Arg(2)->Arg(1);

// --- observability -----------------------------------------------------------

/// The registry's core promise: a hot-path increment is a few nanoseconds
/// (one thread-local load, one relaxed fetch_add on a private cache line).
/// The <10ns budget here is what lets ingest count every record and the
/// daemon count every request without showing up in BM_ServeRouting.
void BM_MetricsIncrement(benchmark::State& state) {
  static obs::MetricsRegistry registry;
  obs::Counter counter = registry.counter("bench_increments");
  for (auto _ : state) {
    counter.inc();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsIncrement);

/// Histogram record: bucket math plus two relaxed adds.
void BM_MetricsHistogramRecord(benchmark::State& state) {
  static obs::MetricsRegistry registry;
  obs::Histogram hist = registry.histogram("bench_latency");
  std::uint64_t v = 0;
  for (auto _ : state) {
    hist.record(v++ & 0xFFFF);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsHistogramRecord);

/// Full Prometheus render of a registry about the size the daemon carries
/// (a few dozen series): shard merges plus text formatting.  Scrapes are
/// rare (seconds apart) so milliseconds would be fine; it measures µs.
void BM_MetricsScrape(benchmark::State& state) {
  static obs::MetricsRegistry* registry = [] {
    auto* reg = new obs::MetricsRegistry();
    for (int e = 0; e < 8; ++e) {
      reg->counter("bench_http_requests_total",
                   {{"endpoint", "ep" + std::to_string(e)}})
          .inc(100 + e);
    }
    for (int s = 0; s < 4; ++s) {
      reg->counter("bench_http_responses_total",
                   {{"class", std::to_string(s + 2) + "xx"}})
          .inc(10);
    }
    for (int h = 0; h < 8; ++h) {
      obs::Histogram hist =
          reg->histogram("bench_stage_duration_us",
                         {{"stage", "stage" + std::to_string(h)}});
      for (std::uint64_t v = 1; v < 1000; v *= 3) hist.record(v);
    }
    reg->gauge("bench_epoch").set(3);
    return reg;
  }();
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto text = registry->render_prometheus();
    bytes = text.size();
    benchmark::DoNotOptimize(text);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * bytes));
}
BENCHMARK(BM_MetricsScrape);

// --- query daemon ------------------------------------------------------------

#if defined(__unix__)

/// A started daemon over the census snapshot, shared by every measurement.
/// jobs = 4 so concurrent closed-loop clients actually overlap.
server::QueryDaemon& serve_fixture() {
  static server::QueryDaemon* daemon = [] {
    static const std::string path =
        (std::filesystem::temp_directory_path() /
         ("htor_bench_serve_" + std::to_string(::getpid()) + ".snap"))
            .string();
    snapshot::Writer::write_file(snapshot_fixture(), path);
    server::DaemonConfig config;
    config.port = 0;  // ephemeral
    config.jobs = 4;
    auto* d = new server::QueryDaemon(path, config);
    d->start();
    return d;
  }();
  return *daemon;
}

/// In-process routing cost: parse-free request -> response, no sockets.
/// The gap between this and BM_ServeThroughput is the transport.
void BM_ServeRouting(benchmark::State& state) {
  auto& daemon = serve_fixture();
  const auto entries = snapshot::sorted_entries(snapshot_fixture().rels_v4);
  server::HttpRequest request;
  request.method = "GET";
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& link = entries[i % entries.size()].first;
    request.target = "/v1/link/" + std::to_string(link.first) + "/" +
                     std::to_string(link.second);
    auto resp = daemon.handle(request);
    benchmark::DoNotOptimize(resp);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServeRouting);

/// Closed-loop load generator over loopback: each benchmark thread holds
/// one keep-alive connection and plays one request/response round trip per
/// iteration, so items_per_second is the daemon's requests/sec at that
/// concurrency.
void BM_ServeThroughput(benchmark::State& state) {
  auto& daemon = serve_fixture();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(daemon.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    state.SkipWithError("cannot connect to the bench daemon");
    return;
  }
  const auto entries = snapshot::sorted_entries(snapshot_fixture().rels_v4);
  const auto& link = entries[entries.size() / 2].first;
  const std::string request = "GET /v1/link/" + std::to_string(link.first) + "/" +
                              std::to_string(link.second) + " HTTP/1.1\r\n\r\n";
  std::string buffer;
  char chunk[8192];
  for (auto _ : state) {
    std::string_view out = request;
    while (!out.empty()) {
      const ssize_t n = ::send(fd, out.data(), out.size(), MSG_NOSIGNAL);
      if (n <= 0) {
        state.SkipWithError("send failed");
        ::close(fd);
        return;
      }
      out.remove_prefix(static_cast<std::size_t>(n));
    }
    // Consume exactly one response: header block, then Content-Length body.
    std::size_t header_end = std::string::npos;
    while ((header_end = buffer.find("\r\n\r\n")) == std::string::npos) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        state.SkipWithError("daemon closed the connection");
        ::close(fd);
        return;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    std::size_t content_length = 0;
    const auto cl = buffer.find("Content-Length: ");
    if (cl != std::string::npos && cl < header_end) {
      content_length = static_cast<std::size_t>(std::atol(buffer.c_str() + cl + 16));
    }
    const std::size_t total = header_end + 4 + content_length;
    while (buffer.size() < total) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        state.SkipWithError("daemon closed mid-body");
        ::close(fd);
        return;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    buffer.erase(0, total);
  }
  ::close(fd);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["connections"] = benchmark::Counter(static_cast<double>(state.threads()),
                                                     benchmark::Counter::kAvgThreads);
}
BENCHMARK(BM_ServeThroughput)->Threads(1)->Threads(4)->UseRealTime();

#endif  // __unix__

}  // namespace

BENCHMARK_MAIN();
