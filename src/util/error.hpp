// Common exception hierarchy for the hybridtor libraries.
//
// All library errors derive from htor::Error so callers can install a single
// catch site; the subtypes distinguish wire-decoding problems (malformed MRT /
// BGP bytes) from text-parsing problems (RPSL, addresses) and API misuse.
#pragma once

#include <stdexcept>
#include <string>

namespace htor {

/// Root of the library's exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed binary input (BGP messages, path attributes, MRT records).
class DecodeError : public Error {
 public:
  explicit DecodeError(const std::string& what) : Error("decode error: " + what) {}
};

/// Malformed textual input (IP addresses, prefixes, RPSL objects).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// A precondition on a public API was violated by the caller.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error("invalid argument: " + what) {}
};

}  // namespace htor
