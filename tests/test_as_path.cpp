// Unit tests for the AS_PATH model: segments, prepending, flattening, loop
// detection, and the decision-process length.
#include <gtest/gtest.h>

#include "bgp/as_path.hpp"

namespace htor::bgp {
namespace {

TEST(AsPath, EmptyPath) {
  const AsPath p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.first(), 0u);
  EXPECT_EQ(p.origin(), 0u);
  EXPECT_EQ(p.decision_length(), 0u);
  EXPECT_FALSE(p.has_loop());
  EXPECT_EQ(p.to_string(), "");
}

TEST(AsPath, SequenceBasics) {
  const auto p = AsPath::sequence({64500, 3356, 1299});
  EXPECT_EQ(p.first(), 64500u);
  EXPECT_EQ(p.origin(), 1299u);
  EXPECT_EQ(p.decision_length(), 3u);
  EXPECT_EQ(p.flatten(), (std::vector<Asn>{64500, 3356, 1299}));
  EXPECT_TRUE(p.contains(3356));
  EXPECT_FALSE(p.contains(1));
  EXPECT_EQ(p.to_string(), "64500 3356 1299");
}

TEST(AsPath, PrependAddsAdjacentCopies) {
  auto p = AsPath::sequence({3356, 1299});
  p.prepend(64500, 3);
  EXPECT_EQ(p.flatten(), (std::vector<Asn>{64500, 64500, 64500, 3356, 1299}));
  EXPECT_EQ(p.decision_length(), 5u);
  EXPECT_FALSE(p.has_loop());  // adjacent repeats are prepending, not loops
  EXPECT_EQ(p.flatten_deduped(), (std::vector<Asn>{64500, 3356, 1299}));
}

TEST(AsPath, PrependOnEmptyPath) {
  AsPath p;
  p.prepend(65001);
  EXPECT_EQ(p.flatten(), (std::vector<Asn>{65001}));
  p.prepend(65001, 0);  // no-op
  EXPECT_EQ(p.decision_length(), 1u);
}

TEST(AsPath, LoopDetection) {
  EXPECT_TRUE(AsPath::sequence({1, 2, 1}).has_loop());
  EXPECT_FALSE(AsPath::sequence({1, 1, 2}).has_loop());
  EXPECT_TRUE(AsPath::sequence({1, 2, 2, 3, 1}).has_loop());
}

TEST(AsPath, SetSegmentCountsOnce) {
  AsPath p;
  p.add_segment({AsSegmentType::Sequence, {64500, 3356}});
  p.add_segment({AsSegmentType::Set, {100, 200, 300}});
  EXPECT_EQ(p.decision_length(), 3u);  // 2 + 1 for the whole set
  EXPECT_EQ(p.flatten().size(), 5u);
  EXPECT_EQ(p.origin(), 300u);
  EXPECT_EQ(p.to_string(), "64500 3356 {100,200,300}");
}

TEST(AsPath, PrependBeforeSetCreatesSequence) {
  AsPath p;
  p.add_segment({AsSegmentType::Set, {7, 8}});
  p.prepend(5);
  ASSERT_EQ(p.segments().size(), 2u);
  EXPECT_EQ(p.segments()[0].type, AsSegmentType::Sequence);
  EXPECT_EQ(p.first(), 5u);
}

TEST(AsPath, EqualityIsStructural) {
  const auto a = AsPath::sequence({1, 2});
  auto b = AsPath::sequence({2});
  b.prepend(1);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace htor::bgp
