#include "core/community_inference.hpp"

#include <unordered_map>

#include "core/parallel.hpp"

namespace htor::core {

namespace {

std::vector<Asn> collapse(const std::vector<Asn>& path) {
  std::vector<Asn> out;
  out.reserve(path.size());
  for (Asn a : path) {
    if (out.empty() || out.back() != a) out.push_back(a);
  }
  return out;
}

std::size_t rel_index(Relationship rel) {
  switch (rel) {
    case Relationship::P2C: return 0;
    case Relationship::C2P: return 1;
    case Relationship::P2P: return 2;
    case Relationship::S2S: return 3;
    case Relationship::Unknown: break;
  }
  return 4;
}

Relationship rel_from_index(std::size_t i) {
  switch (i) {
    case 0: return Relationship::P2C;
    case 1: return Relationship::C2P;
    case 2: return Relationship::P2P;
    case 3: return Relationship::S2S;
    default: return Relationship::Unknown;
  }
}

/// Sentinel for an ASN that occurs more than once on a collapsed path.
constexpr std::size_t kAmbiguousPosition = static_cast<std::size_t>(-1);

}  // namespace

void CommunityVotes::merge(const CommunityVotes& other) {
  for (const auto& [key, vote] : other.votes) {
    auto& mine = votes[key];
    for (std::size_t i = 0; i < mine.size(); ++i) mine[i] += vote[i];
  }
  tagged_routes += other.tagged_routes;
  total_votes += other.total_votes;
}

CommunityVotes scan_community_votes(const std::vector<const mrt::ObservedRoute*>& routes,
                                    std::size_t begin, std::size_t end,
                                    const rpsl::CommunityDictionary& dict) {
  CommunityVotes out;
  std::unordered_map<Asn, std::size_t> position;  // reused per route
  for (std::size_t r = begin; r < end && r < routes.size(); ++r) {
    const mrt::ObservedRoute* route = routes[r];
    const std::vector<Asn> chain = collapse(route->as_path);
    if (chain.size() < 2) continue;

    position.clear();
    for (std::size_t i = 0; i < chain.size(); ++i) {
      // An ASN appearing twice post-collapse means a looped/poisoned path:
      // a tag from that AS cannot be localized to one link, so mark it
      // ambiguous instead of silently keeping the first occurrence.
      auto [it, inserted] = position.emplace(chain[i], i);
      if (!inserted) it->second = kAmbiguousPosition;
    }

    bool contributed = false;
    for (bgp::Community community : route->communities) {
      const rpsl::CommunityMeaning* meaning = dict.lookup(community);
      if (meaning == nullptr || !rpsl::is_relationship_tag(meaning->kind)) continue;

      // Localize: the tagging AS must sit on this path exactly once, with a
      // next hop toward the origin.
      auto it = position.find(community.asn());
      if (it == position.end() || it->second == kAmbiguousPosition ||
          it->second + 1 >= chain.size()) {
        continue;
      }
      const Asn tagger = chain[it->second];
      const Asn from = chain[it->second + 1];

      const Relationship rel = rpsl::relationship_of(meaning->kind);  // rel(tagger, from)
      const LinkKey key(tagger, from);
      const Relationship canonical = key.first == tagger ? rel : reverse(rel);
      const std::size_t idx = rel_index(canonical);
      if (idx >= 4) continue;
      ++out.votes[key][idx];
      ++out.total_votes;
      contributed = true;
    }
    if (contributed) ++out.tagged_routes;
  }
  return out;
}

CommunityInferenceResult tally_community_votes(const CommunityVotes& votes,
                                               const CommunityInferenceParams& params) {
  CommunityInferenceResult result;
  result.tagged_routes = votes.tagged_routes;
  result.total_votes = votes.total_votes;
  result.links_with_votes = votes.votes.size();
  for (const auto& [key, vote] : votes.votes) {
    std::uint64_t total = 0;
    std::size_t best = 0;
    std::size_t with_max = 0;  // how many relationships share the top count
    for (std::size_t i = 0; i < 4; ++i) {
      total += vote[i];
      if (vote[i] > vote[best]) best = i;
    }
    for (std::size_t i = 0; i < 4; ++i) {
      if (vote[i] == vote[best]) ++with_max;
    }
    // A tie for the top count (e.g. 1×P2C vs 1×P2P) is a contradiction, not
    // a winner — resolving it by enum order would silently prefer P2C.
    if (with_max > 1 || vote[best] < params.min_votes ||
        static_cast<double>(vote[best]) < params.majority * static_cast<double>(total)) {
      ++result.conflicted_links;
      continue;
    }
    result.rels.set(key.first, key.second, rel_from_index(best));
  }
  return result;
}

CommunityInferenceResult infer_from_communities(
    const std::vector<const mrt::ObservedRoute*>& routes,
    const rpsl::CommunityDictionary& dict, const CommunityInferenceParams& params) {
  return tally_community_votes(scan_community_votes(routes, 0, routes.size(), dict), params);
}

CommunityInferenceResult infer_from_communities(
    const std::vector<const mrt::ObservedRoute*>& routes,
    const rpsl::CommunityDictionary& dict, const CommunityInferenceParams& params,
    ThreadPool& pool) {
  CommunityVotes merged = shard_map_reduce(
      pool, routes.size(),
      [&routes, &dict](const ShardRange& range) {
        return scan_community_votes(routes, range.begin, range.end, dict);
      },
      CommunityVotes{},
      [](CommunityVotes& acc, CommunityVotes&& shard) { acc.merge(shard); });
  return tally_community_votes(merged, params);
}

}  // namespace htor::core
