// Minimal deterministic JSON writer shared by the CLI's --json output and
// the query daemon's HTTP responses, plus a strict parser for reading such
// documents back (config-sized inputs: trace files, test assertions on
// daemon responses — not a streaming decoder for bulk data).
//
// The writer emits compact JSON (no whitespace) in exactly the order the
// caller makes calls, so the same sequence of values always produces the
// same bytes — which is what lets the server e2e test assert that a daemon
// response body is byte-identical to `hybridtor query --json` output.
// Strings are escaped per RFC 8259: the two mandatory escapes (`"` and `\`)
// plus control characters as \b \t \n \f \r or \u00XX.  Only the JSON
// subset the project needs is implemented: objects, arrays, strings,
// unsigned integers, and booleans.  Nesting misuse (a value where a key is
// required, unbalanced end calls) throws InvalidArgument rather than
// producing malformed output.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace htor {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Member key inside an object; must be followed by exactly one value.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::uint32_t v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(bool v);

  /// The finished document.  Throws InvalidArgument when containers are
  /// still open or nothing was written.
  std::string str() const;

  /// Escape `s` as a JSON string literal, quotes included.
  static std::string quote(std::string_view s);

 private:
  enum class Frame : std::uint8_t { Object, Array };

  void begin_value(const char* what);

  std::string out_;
  std::vector<Frame> stack_;
  bool need_comma_ = false;   // a value/key at this position needs a ',' first
  bool after_key_ = false;    // the previous token was key(); a value must follow
  bool done_ = false;         // the root value is complete
};

/// Parsed JSON value tree.  Covers the subset JsonWriter emits — null, bool,
/// non-negative integers, strings, arrays, objects — which is exactly what
/// the project's own documents contain.  Object member order is not
/// preserved (storage is a std::map); the writer is the order-deterministic
/// half of the pair.
class JsonValue {
 public:
  enum class Type : std::uint8_t { Null, Bool, Uint, String, Array, Object };

  JsonValue() = default;

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::Null; }

  /// Typed accessors throw InvalidArgument on a type mismatch, so test code
  /// fails with a message instead of reading a moved-from member.
  bool as_bool() const;
  std::uint64_t as_uint() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::map<std::string, JsonValue>& as_object() const;

  /// Object member lookup; throws InvalidArgument when not an object or the
  /// key is absent.  `contains` is the non-throwing probe.
  const JsonValue& at(std::string_view key) const;
  bool contains(std::string_view key) const;

  /// Parse a complete JSON document.  Strict: the whole input must be one
  /// value (plus surrounding whitespace), nesting is capped at 64 levels,
  /// and anything outside the supported subset — negative or fractional
  /// numbers, \uXXXX escapes above 0xff — throws ParseError.
  static JsonValue parse(std::string_view text);

 private:
  friend class JsonParser;

  Type type_ = Type::Null;
  bool bool_ = false;
  std::uint64_t uint_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

}  // namespace htor
