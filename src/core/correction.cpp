#include "core/correction.hpp"

namespace htor::core {

std::vector<CorrectionStep> correction_experiment(const RelationshipMap& baseline_v6,
                                                  const std::vector<HybridFinding>& hybrids,
                                                  std::size_t max_corrections) {
  std::vector<CorrectionStep> steps;
  RelationshipMap current = baseline_v6;

  const std::size_t count = std::min(max_corrections, hybrids.size());
  steps.reserve(count + 1);
  steps.push_back({0, CustomerTreeAnalysis(current).union_metrics()});

  for (std::size_t k = 0; k < count; ++k) {
    const HybridFinding& h = hybrids[k];
    current.set(h.link.first, h.link.second, h.rel_v6);
    steps.push_back({k + 1, CustomerTreeAnalysis(current).union_metrics()});
  }
  return steps;
}

}  // namespace htor::core
