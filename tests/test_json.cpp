// Unit tests for util/json: the deterministic writer whose bytes both the
// CLI's --json output and the query daemon's HTTP bodies are built from.
#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/json.hpp"

namespace htor {
namespace {

TEST(JsonWriter, FlatObject) {
  JsonWriter json;
  json.begin_object();
  json.key("a").value(std::uint64_t{1});
  json.key("b").value("two");
  json.key("c").value(true);
  json.key("d").value(false);
  json.end_object();
  EXPECT_EQ(json.str(), R"({"a":1,"b":"two","c":true,"d":false})");
}

TEST(JsonWriter, NestedContainers) {
  JsonWriter json;
  json.begin_object();
  json.key("list").begin_array();
  json.value(std::uint64_t{1});
  json.begin_object().key("x").value(std::uint64_t{2}).end_object();
  json.begin_array().end_array();
  json.end_array();
  json.key("obj").begin_object().end_object();
  json.end_object();
  EXPECT_EQ(json.str(), R"({"list":[1,{"x":2},[]],"obj":{}})");
}

TEST(JsonWriter, RootArrayAndScalars) {
  JsonWriter json;
  json.begin_array();
  json.value("a");
  json.value(std::uint64_t{18446744073709551615ull});
  json.end_array();
  EXPECT_EQ(json.str(), R"(["a",18446744073709551615])");

  JsonWriter scalar;
  scalar.value("just a string");
  EXPECT_EQ(scalar.str(), R"("just a string")");
}

TEST(JsonWriter, EscapesStrings) {
  EXPECT_EQ(JsonWriter::quote("plain"), R"("plain")");
  EXPECT_EQ(JsonWriter::quote("a\"b"), R"("a\"b")");
  EXPECT_EQ(JsonWriter::quote("a\\b"), R"("a\\b")");
  EXPECT_EQ(JsonWriter::quote("tab\there"), R"("tab\there")");
  EXPECT_EQ(JsonWriter::quote("line\nbreak"), R"("line\nbreak")");
  EXPECT_EQ(JsonWriter::quote(std::string_view("\x01\x1f", 2)), "\"\\u0001\\u001f\"");
  // High bytes (UTF-8 continuation) pass through untouched.
  EXPECT_EQ(JsonWriter::quote("caf\xc3\xa9"), "\"caf\xc3\xa9\"");
}

TEST(JsonWriter, KeysAreEscapedToo) {
  JsonWriter json;
  json.begin_object().key("we\"ird").value(std::uint64_t{1}).end_object();
  EXPECT_EQ(json.str(), R"({"we\"ird":1})");
}

TEST(JsonWriter, MisuseThrows) {
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.value(std::uint64_t{1}), InvalidArgument);  // value without key
  }
  {
    JsonWriter json;
    json.begin_array();
    EXPECT_THROW(json.key("k"), InvalidArgument);  // key inside array
  }
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.end_array(), InvalidArgument);  // mismatched close
  }
  {
    JsonWriter json;
    json.begin_object().key("k");
    EXPECT_THROW(json.end_object(), InvalidArgument);  // dangling key
  }
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.str(), InvalidArgument);  // incomplete document
  }
  {
    JsonWriter json;
    EXPECT_THROW(json.str(), InvalidArgument);  // empty document
  }
  {
    JsonWriter json;
    json.value(std::uint64_t{1});
    EXPECT_THROW(json.value(std::uint64_t{2}), InvalidArgument);  // second root
  }
}

}  // namespace
}  // namespace htor
