// Tests for the synthetic-Internet generator: determinism, structural
// sanity, the planted ground truth, prefixes, IRR output, and collection.
#include <gtest/gtest.h>

#include <unordered_set>

#include "gen/internet.hpp"
#include "rpsl/community_dict.hpp"
#include "rpsl/object.hpp"
#include "topology/reachability.hpp"

namespace htor::gen {
namespace {

const SyntheticInternet& small_net() {
  static const SyntheticInternet net = SyntheticInternet::generate(small_params(7));
  return net;
}

TEST(Generator, DeterministicForSameSeed) {
  const auto a = SyntheticInternet::generate(small_params(11));
  const auto b = SyntheticInternet::generate(small_params(11));
  EXPECT_EQ(a.graph().as_count(), b.graph().as_count());
  EXPECT_EQ(a.graph().link_count(IpVersion::V4), b.graph().link_count(IpVersion::V4));
  EXPECT_EQ(a.graph().link_count(IpVersion::V6), b.graph().link_count(IpVersion::V6));
  EXPECT_EQ(a.hybrid_links(), b.hybrid_links());
  EXPECT_EQ(a.vantages(), b.vantages());
  EXPECT_EQ(a.relaxed_ases(), b.relaxed_ases());
  EXPECT_EQ(a.irr_dump(), b.irr_dump());
}

TEST(Generator, DifferentSeedsDiffer) {
  const auto a = SyntheticInternet::generate(small_params(1));
  const auto b = SyntheticInternet::generate(small_params(2));
  EXPECT_NE(a.graph().link_count(IpVersion::V4), b.graph().link_count(IpVersion::V4));
}

TEST(Generator, PopulationMatchesParams) {
  const auto& net = small_net();
  const auto params = small_params(7);
  EXPECT_EQ(net.graph().as_count(), params.total_ases());
  std::size_t tier1 = 0;
  for (Asn asn : net.graph().ases()) {
    if (net.tier_of(asn) == Tier::Tier1) ++tier1;
  }
  EXPECT_EQ(tier1, params.tier1_count);
}

TEST(Generator, DisputePairHasNoV6Link) {
  const auto& net = small_net();
  const auto [a, b] = net.dispute_pair();
  ASSERT_NE(a, 0u);
  EXPECT_TRUE(net.graph().has_link(a, b, IpVersion::V4));
  EXPECT_FALSE(net.graph().has_link(a, b, IpVersion::V6));
}

TEST(Generator, DisputePartitionsStrictV6Routing) {
  const auto& net = small_net();
  const auto [a, b] = net.dispute_pair();
  ValleyFreeRouting vf(net.graph(), net.truth(IpVersion::V6), IpVersion::V6);
  EXPECT_FALSE(vf.reachable(a, b));
}

TEST(Generator, EveryV6LinkJoinsV6CapableAses) {
  const auto& net = small_net();
  net.graph().for_each_link(IpVersion::V6, [&](const LinkKey& key) {
    EXPECT_TRUE(net.v6_capable(key.first)) << "AS" << key.first;
    EXPECT_TRUE(net.v6_capable(key.second)) << "AS" << key.second;
  });
}

TEST(Generator, EveryLinkHasARelationship) {
  const auto& net = small_net();
  net.graph().for_each_link(IpVersion::V6, [&](const LinkKey& key) {
    EXPECT_NE(net.truth(IpVersion::V6).get(key.first, key.second), Relationship::Unknown);
  });
  net.graph().for_each_link(IpVersion::V4, [&](const LinkKey& key) {
    EXPECT_NE(net.truth(IpVersion::V4).get(key.first, key.second), Relationship::Unknown);
  });
}

TEST(Generator, HybridGroundTruthIsConsistent) {
  const auto& net = small_net();
  EXPECT_FALSE(net.hybrid_links().empty());
  for (const auto& h : net.hybrid_links()) {
    // Hybrid links must be dual-stack and actually differ between planes.
    EXPECT_TRUE(net.graph().has_link(h.link.first, h.link.second, IpVersion::V4));
    EXPECT_TRUE(net.graph().has_link(h.link.first, h.link.second, IpVersion::V6));
    EXPECT_NE(h.rel_v4, h.rel_v6);
    // And the recorded truth matches the relationship maps.
    EXPECT_EQ(net.truth(IpVersion::V4).get(h.link.first, h.link.second), h.rel_v4);
    EXPECT_EQ(net.truth(IpVersion::V6).get(h.link.first, h.link.second), h.rel_v6);
  }
}

TEST(Generator, NonHybridDualLinksAgreeAcrossPlanes) {
  const auto& net = small_net();
  std::unordered_set<LinkKey, LinkKeyHash> hybrid;
  for (const auto& h : net.hybrid_links()) hybrid.insert(h.link);
  for (const auto& key : net.graph().dual_stack_links()) {
    if (hybrid.count(key)) continue;
    EXPECT_EQ(net.truth(IpVersion::V4).get(key.first, key.second),
              net.truth(IpVersion::V6).get(key.first, key.second));
  }
}

TEST(Generator, EvangelistGivesFreeV6Transit) {
  const auto& net = small_net();
  const Asn ev = net.evangelist();
  ASSERT_NE(ev, 0u);
  // The evangelist's links can also be hit by the random hybrid planting;
  // the free-transit population is the p2p(v4) subset, and there its side
  // of the IPv6 relationship must always be provider.
  std::size_t free_transit = 0;
  for (const auto& h : net.hybrid_links()) {
    if (h.link.first != ev && h.link.second != ev) continue;
    if (h.rel_v4 != Relationship::P2P) continue;
    const Relationship from_ev = h.link.first == ev ? h.rel_v6 : reverse(h.rel_v6);
    EXPECT_EQ(from_ev, Relationship::P2C);  // the evangelist is the provider
    ++free_transit;
  }
  EXPECT_GT(free_transit, 0u);
}

TEST(Generator, PrefixRoundTrip) {
  const auto& net = small_net();
  for (Asn asn : net.graph().ases()) {
    for (IpVersion af : {IpVersion::V4, IpVersion::V6}) {
      const Prefix p = net.prefix_of(asn, af);
      EXPECT_EQ(p.version(), af);
      EXPECT_EQ(net.origin_of(p), asn) << p.to_string();
    }
  }
  EXPECT_EQ(net.origin_of(Prefix::parse("203.0.113.0/24")), 0u);
  EXPECT_EQ(net.origin_of(Prefix::parse("2001:db9::/48")), 0u);
}

TEST(Generator, IrrDumpIsMineable) {
  const auto& net = small_net();
  const auto objects = rpsl::parse_objects(net.irr_dump());
  EXPECT_FALSE(objects.empty());
  const auto dict = rpsl::mine_dictionary(objects);
  EXPECT_GT(dict.size(), 0u);
  EXPECT_GT(dict.documented_asns().size(), 0u);

  // Every publishing, non-cryptic AS's relationship communities must be in
  // the dictionary with the right meaning.
  for (Asn asn : net.graph().ases()) {
    const auto& prof = net.profile(asn);
    if (!prof.publishes_irr || prof.cryptic_remarks) continue;
    const auto* cust =
        dict.lookup(bgp::Community(static_cast<std::uint16_t>(asn), prof.c_customer));
    ASSERT_NE(cust, nullptr) << "AS" << asn;
    EXPECT_EQ(cust->kind, rpsl::CommunityTagKind::FromCustomer);
    const auto* te =
        dict.lookup(bgp::Community(static_cast<std::uint16_t>(asn), prof.c_te_locpref));
    ASSERT_NE(te, nullptr);
    EXPECT_EQ(te->kind, rpsl::CommunityTagKind::SetLocPref);
    EXPECT_EQ(te->locpref, prof.te_locpref_value);
  }
}

TEST(Generator, VantagesAreValidAses) {
  const auto& net = small_net();
  EXPECT_GT(net.vantages().size(), 4u);
  for (Asn v : net.vantages()) {
    EXPECT_TRUE(net.graph().has_as(v));
  }
}

TEST(Generator, PoliciesRespectPlane) {
  const auto& net = small_net();
  const auto v4 = net.policies(IpVersion::V4);
  const auto v6 = net.policies(IpVersion::V6);
  bool any_relaxed_v6 = false;
  for (const auto& [asn, policy] : v4) {
    EXPECT_FALSE(policy.relaxed_export) << "AS" << asn << " relaxed in v4";
    EXPECT_FALSE(policy.relaxed_export_up);
  }
  for (const auto& [asn, policy] : v6) {
    (void)asn;
    if (policy.relaxed_export || policy.relaxed_export_up) any_relaxed_v6 = true;
    EXPECT_GT(policy.lp_customer, policy.lp_peer);
    EXPECT_GT(policy.lp_peer, policy.lp_provider);
  }
  EXPECT_TRUE(any_relaxed_v6);
}

TEST(Generator, CollectProducesBothPlanes) {
  const auto rib = small_net().collect();
  EXPECT_GT(rib.size_of(IpVersion::V4), 0u);
  EXPECT_GT(rib.size_of(IpVersion::V6), 0u);
  for (const auto& route : rib.routes()) {
    ASSERT_FALSE(route.as_path.empty());
    EXPECT_EQ(route.as_path.front(), route.peer_asn);
    EXPECT_EQ(small_net().origin_of(route.prefix), route.origin_asn());
    EXPECT_TRUE(route.local_pref.has_value());
  }
}

TEST(Generator, CollectIsDeterministic) {
  const auto a = SyntheticInternet::generate(small_params(13)).collect();
  const auto b = SyntheticInternet::generate(small_params(13)).collect();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.routes(), b.routes());
}

TEST(Generator, GeoTagDeterminism) {
  const auto& net = small_net();
  const Asn asn = net.graph().ases().front();
  EXPECT_EQ(net.geo_tag_applies(asn, 42), net.geo_tag_applies(asn, 42));
}

TEST(Generator, UnknownAsThrows) {
  EXPECT_THROW(small_net().profile(999999), InvalidArgument);
}

// Sweep the planted hybrid fraction: the ground truth should track the knob.
class HybridFractionSweep : public ::testing::TestWithParam<double> {};

TEST_P(HybridFractionSweep, PlantedShareTracksKnob) {
  auto params = small_params(21);
  params.hybrid_fraction = GetParam();
  params.v6_evangelist = false;  // isolate the random planting
  const auto net = SyntheticInternet::generate(params);
  const double dual = static_cast<double>(net.graph().dual_stack_link_count());
  const double planted = static_cast<double>(net.hybrid_links().size());
  // Eligibility filters (non-stub, multi-provider) cap the achievable share;
  // it must grow with the knob and never exceed it by much.
  EXPECT_LE(planted / dual, GetParam() + 0.02);
  if (GetParam() >= 0.1) {
    EXPECT_GT(planted, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Fractions, HybridFractionSweep, ::testing::Values(0.0, 0.1, 0.2, 0.3));

}  // namespace
}  // namespace htor::gen
