// Hand-rolled HTTP/1.1 request parser and response serializer for the query
// daemon.
//
// The parser has the MRT/snapshot readers' fail-clean discipline, applied to
// a byte stream an untrusted client controls: every size is bounded up front
// (request line, header line, header count, body), every violation produces
// a typed ParseResult::Bad with the 4xx status that should be sent back and
// a reasoned message — never a partially-parsed request, never unbounded
// buffering.  Parsing is incremental: feed() consumes bytes as they arrive
// off the socket and reports NeedMore until a full request (including any
// Content-Length body) is buffered.
//
// Only the subset the daemon serves is implemented: GET/POST/HEAD, origin-
// form targets, Content-Length bodies (no chunked transfer encoding — a
// request that asks for it is rejected with 400, keeping the "every
// rejected request is a 4xx" contract), and keep-alive accounting
// per RFC 9112 defaults (1.1 persists unless `Connection: close`; 1.0
// closes unless `Connection: keep-alive`).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace htor::server {

/// Hard limits on what the parser will buffer.  A client that exceeds any
/// of them gets a reasoned 4xx and the connection is closed.
struct HttpLimits {
  std::size_t max_request_line = 1024;  ///< method + target + version + CRLF
  std::size_t max_header_line = 1024;   ///< one field line including CRLF
  std::size_t max_headers = 64;         ///< field count
  std::size_t max_body = 64 * 1024;     ///< Content-Length ceiling
};

struct HttpRequest {
  std::string method;   ///< uppercase by the wire ("GET", "POST", ...)
  std::string target;   ///< origin-form, e.g. "/v1/link/3356/1299"
  int version_major = 1;
  int version_minor = 1;
  std::vector<std::pair<std::string, std::string>> headers;  ///< names lowercased
  std::string body;

  /// First value of header `name` (lowercase), if present.
  std::optional<std::string_view> header(std::string_view name) const;

  /// Whether the connection should persist after this exchange.
  bool keep_alive() const;
};

/// Incremental request parser; one instance per in-flight request.
class RequestParser {
 public:
  explicit RequestParser(HttpLimits limits = {}) : limits_(limits) {}

  enum class Status {
    NeedMore,  ///< consumed everything so far; request incomplete
    Done,      ///< request() is valid; unconsumed bytes stay with the caller
    Bad,       ///< malformed or over-limit; error_status()/error() are set
  };

  /// Consume bytes from the stream.  Returns how the parse stands; on Done,
  /// `consumed` (out) is how many of `data`'s bytes belong to this request —
  /// the remainder is the start of the next pipelined request.
  Status feed(std::string_view data, std::size_t& consumed);

  const HttpRequest& request() const { return request_; }
  /// The 4xx to send when Status::Bad.
  int error_status() const { return error_status_; }
  const std::string& error() const { return error_; }

 private:
  enum class State { RequestLine, Headers, Body, Done, Bad };

  Status fail(int status, const std::string& why);
  bool parse_request_line(std::string_view line);
  bool parse_header_line(std::string_view line);
  bool finish_headers();  ///< validate Content-Length / Transfer-Encoding

  HttpLimits limits_;
  State state_ = State::RequestLine;
  int leading_blanks_ = 0;       // stray CRLFs tolerated before the request line
  std::string buffer_;           // the current (incomplete) line or body
  std::size_t body_expected_ = 0;
  HttpRequest request_;
  int error_status_ = 400;
  std::string error_;
};

/// A response ready to serialize.  `body` is always sent with an exact
/// Content-Length; HEAD callers serialize with `include_body = false`.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  bool keep_alive = true;

  std::string serialize(bool include_body = true) const;
};

/// Canonical reason phrase for the handful of statuses the daemon emits.
std::string_view status_reason(int status);

}  // namespace htor::server
