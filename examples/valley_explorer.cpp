// Valley explorer: digs into individual IPv6 valley paths — prints the
// relationship-annotated path, where the valley occurs, which AS leaked,
// and whether a strict valley-free alternative exists (the paper's
// "relaxation for reachability" distinction).
//
// Usage:  valley_explorer [count]      (default: show 10 valley paths)
#include <cstdlib>
#include <iostream>
#include <unordered_set>

#include "core/pipeline.hpp"
#include "core/valley_census.hpp"
#include "gen/internet.hpp"
#include "topology/valley.hpp"

int main(int argc, char** argv) {
  using namespace htor;
  const std::size_t show = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10;

  gen::GenParams params;
  const auto net = gen::SyntheticInternet::generate(params);
  const auto rib = net.collect();

  // Explore against ground truth: every annotation is exact.
  const auto& truth = net.truth(IpVersion::V6);
  const auto v6_paths = core::paths_of(rib, IpVersion::V6);
  std::unordered_set<Asn> relaxed(net.relaxed_ases().begin(), net.relaxed_ases().end());

  std::cout << "IPv6 plane: " << v6_paths.unique_paths() << " distinct AS paths\n";
  std::cout << "relaxed-export ASes:";
  for (Asn asn : net.relaxed_ases()) std::cout << " AS" << asn;
  std::cout << "\n\n";

  std::size_t shown = 0;
  std::size_t necessary_shown = 0;
  v6_paths.for_each([&](const std::vector<Asn>& path, std::uint64_t) {
    if (shown >= show) return;
    const auto check = check_valley_free(path, truth);
    if (check.cls != PathPolicyClass::Valley) return;

    const bool necessary = core::valley_is_necessary(path.front(), path.back(), truth);
    // Alternate between the two flavours so both show up early.
    if (necessary && necessary_shown > shown / 2) return;
    ++shown;
    if (necessary) ++necessary_shown;

    std::cout << (necessary ? "[REACHABILITY-REQUIRED] " : "[gratuitous leak]       ");
    for (std::size_t i = 0; i < path.size(); ++i) {
      std::cout << "AS" << path[i];
      if (relaxed.count(path[i])) std::cout << "*";
      if (i + 1 < path.size()) {
        std::cout << " -" << to_string(truth.get(path[i], path[i + 1])) << "- ";
      }
    }
    std::cout << "\n    valley at hop " << *check.first_violation;
    if (check.first_violation) {
      const Asn leaker = path[*check.first_violation];
      std::cout << " (AS" << leaker << (relaxed.count(leaker) ? ", a relaxed exporter)" : ")");
    }
    std::cout << "\n";
  });

  // Aggregate, for context.
  const auto census = core::census_valleys(v6_paths, truth);
  std::cout << "\naggregate: " << census.valley << " valley paths of " << census.paths << " ("
            << 100.0 * census.valley_fraction() << "%), " << census.necessary_valleys << " of "
            << census.classified_valleys << " classified valleys are reachability-required\n";
  std::cout << "(* marks ASes with relaxed IPv6 export)\n";
  return 0;
}
