#include "snapshot/writer.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "snapshot/layout.hpp"
#include "util/bytes.hpp"

namespace htor::snapshot {

namespace {

constexpr std::size_t kMaxSourceLen = 0xffff;

void encode_coverage(ByteWriter& w, const CoverageCounters& c) {
  w.u64(c.observed);
  w.u64(c.covered);
}

void encode_valleys(ByteWriter& w, const ValleyCounters& v) {
  w.u64(v.paths);
  w.u64(v.valley_free);
  w.u64(v.valley);
  w.u64(v.incomplete);
  w.u64(v.classified_valleys);
  w.u64(v.necessary_valleys);
}

std::uint8_t rel_byte(Relationship rel) {
  const auto raw = static_cast<std::uint8_t>(rel);
  if (raw > static_cast<std::uint8_t>(Relationship::Unknown)) {
    throw InvalidArgument("snapshot: relationship value " + std::to_string(raw) +
                          " outside the format's range");
  }
  return raw;
}

void check_canonical(const LinkKey& link) {
  if (link.first >= link.second) {
    throw InvalidArgument("snapshot: link AS" + std::to_string(link.first) + "-AS" +
                          std::to_string(link.second) + " is not a canonical AS pair");
  }
}

void check_class(std::uint8_t cls) {
  if (cls > 3) {
    throw InvalidArgument("snapshot: hybrid class value " + std::to_string(cls) +
                          " outside the format's range");
  }
}

void check_source(const Snapshot& snap) {
  if (snap.header.source.size() > kMaxSourceLen) {
    throw InvalidArgument("snapshot: source path longer than 65535 bytes");
  }
}

void encode_link(ByteWriter& w, const LinkKey& link) {
  check_canonical(link);
  w.u32(link.first);
  w.u32(link.second);
}

void encode_map(ByteWriter& w, const RelationshipMap& map) {
  const auto entries = sorted_entries(map);
  w.u64(entries.size());
  for (const auto& [link, rel] : entries) {
    encode_link(w, link);
    w.u8(rel_byte(rel));
  }
}

void encode_counters(ByteWriter& w, const Snapshot& snap) {
  w.u64(snap.dataset.v4_paths);
  w.u64(snap.dataset.v6_paths);
  w.u64(snap.dataset.v4_links);
  w.u64(snap.dataset.v6_links);
  w.u64(snap.dataset.dual_links);

  encode_coverage(w, snap.coverage_v4);
  encode_coverage(w, snap.coverage_v6);
  encode_coverage(w, snap.coverage_dual);
  encode_valleys(w, snap.valleys_v4);
  encode_valleys(w, snap.valleys_v6);

  w.u64(snap.hybrid_counters.dual_links_observed);
  w.u64(snap.hybrid_counters.dual_links_both_known);
  w.u64(snap.hybrid_counters.v6_paths_total);
  w.u64(snap.hybrid_counters.v6_paths_with_hybrid);
}

void pad_to(ByteWriter& w, std::uint64_t target) {
  while (w.size() < target) w.u8(0);
}

std::uint64_t align8(std::uint64_t n) { return (n + 7) & ~std::uint64_t{7}; }

/// One link-table row in the making: both family relationships (Unknown for
/// an absent family, which is what makes the maps reconstruct exactly) plus
/// the provenance flags.
struct RowValue {
  std::uint8_t rel_v4 = static_cast<std::uint8_t>(Relationship::Unknown);
  std::uint8_t rel_v6 = static_cast<std::uint8_t>(Relationship::Unknown);
  std::uint8_t flags = 0;
};

}  // namespace

std::vector<std::uint8_t> Writer::encode_v1(const Snapshot& snap) {
  check_source(snap);
  ByteWriter w;
  w.u32(kMagic);
  w.u32(1);
  w.u64(snap.header.timestamp);
  w.u16(static_cast<std::uint16_t>(snap.header.source.size()));
  w.text(snap.header.source);

  encode_counters(w, snap);

  encode_map(w, snap.rels_v4);
  encode_map(w, snap.rels_v6);

  w.u64(snap.hybrids.size());
  for (const auto& h : snap.hybrids) {
    encode_link(w, h.link);
    w.u8(rel_byte(h.rel_v4));
    w.u8(rel_byte(h.rel_v6));
    check_class(h.cls);
    w.u8(h.cls);
    w.u64(h.v6_path_visibility);
  }

  w.u32(kTrailer);
  return w.take();
}

std::vector<std::uint8_t> Writer::encode(const Snapshot& snap) {
  check_source(snap);

  // Collect one row per link across both family maps and the hybrid list
  // (a hand-built snapshot may list hybrids outside the maps; they become
  // rows with both relationships Unknown).  Gather into a flat vector, sort
  // by canonical key, then merge equal-key runs — the output is independent
  // of hash-map iteration order and thread count, without the per-insert
  // allocations a node-based map would pay on the write path.
  std::vector<std::pair<LinkKey, RowValue>> rows;
  rows.reserve(snap.rels_v4.size() + snap.rels_v6.size() + snap.hybrids.size());
  snap.rels_v4.for_each([&](const LinkKey& key, Relationship rel) {
    check_canonical(key);
    rows.emplace_back(key, RowValue{rel_byte(rel),
                                    static_cast<std::uint8_t>(Relationship::Unknown),
                                    kV2FlagInV4});
  });
  snap.rels_v6.for_each([&](const LinkKey& key, Relationship rel) {
    check_canonical(key);
    rows.emplace_back(key, RowValue{static_cast<std::uint8_t>(Relationship::Unknown),
                                    rel_byte(rel), kV2FlagInV6});
  });
  for (const auto& h : snap.hybrids) {
    check_canonical(h.link);
    rel_byte(h.rel_v4);
    rel_byte(h.rel_v6);
    check_class(h.cls);
    rows.emplace_back(h.link, RowValue{static_cast<std::uint8_t>(Relationship::Unknown),
                                       static_cast<std::uint8_t>(Relationship::Unknown),
                                       kV2FlagHybrid});
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  {
    // Merge runs of the same link: each source contributes only its own
    // field, so a flag-guarded copy combines them losslessly.
    std::size_t out = 0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (out > 0 && rows[out - 1].first == rows[i].first) {
        RowValue& row = rows[out - 1].second;
        const RowValue& add = rows[i].second;
        if (add.flags & kV2FlagInV4) row.rel_v4 = add.rel_v4;
        if (add.flags & kV2FlagInV6) row.rel_v6 = add.rel_v6;
        row.flags |= add.flags;
      } else {
        rows[out++] = rows[i];
      }
    }
    rows.resize(out);
  }

  // Intern the endpoint ASNs; the dense id is the sorted position.
  std::vector<Asn> asns;
  asns.reserve(rows.size() * 2);
  for (const auto& [key, row] : rows) {
    asns.push_back(key.first);
    asns.push_back(key.second);
  }
  std::sort(asns.begin(), asns.end());
  asns.erase(std::unique(asns.begin(), asns.end()), asns.end());
  // Dense ids and adjacency link indexes are u32 in the file.
  if (rows.size() > 0xffffffffull || asns.size() > 0xffffffffull) {
    throw InvalidArgument("snapshot: too many links for the v2 format");
  }
  const auto dense_id = [&](Asn asn) {
    return static_cast<std::uint32_t>(
        std::lower_bound(asns.begin(), asns.end(), asn) - asns.begin());
  };

  // CSR adjacency: each link contributes one entry per endpoint, lists
  // sorted by neighbor id (unique per list — links are unique pairs).
  // Built counting-sort style into one flat buffer: degree pass, prefix
  // sums, placement, then a per-slice sort.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> endpoint_ids(rows.size());
  std::vector<std::uint64_t> adj_offsets(asns.size() + 1, 0);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    endpoint_ids[i] = {dense_id(rows[i].first.first), dense_id(rows[i].first.second)};
    ++adj_offsets[endpoint_ids[i].first + 1];
    ++adj_offsets[endpoint_ids[i].second + 1];
  }
  for (std::size_t a = 1; a < adj_offsets.size(); ++a) adj_offsets[a] += adj_offsets[a - 1];
  std::vector<std::pair<std::uint32_t, std::uint32_t>> adj_entries(2 * rows.size());
  {
    std::vector<std::uint64_t> cursor(adj_offsets.begin(), adj_offsets.end() - 1);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto [ia, ib] = endpoint_ids[i];
      const auto link_index = static_cast<std::uint32_t>(i);
      adj_entries[cursor[ia]++] = {ib, link_index};
      adj_entries[cursor[ib]++] = {ia, link_index};
    }
  }
  for (std::size_t a = 0; a < asns.size(); ++a) {
    std::sort(adj_entries.begin() + static_cast<std::ptrdiff_t>(adj_offsets[a]),
              adj_entries.begin() + static_cast<std::ptrdiff_t>(adj_offsets[a + 1]));
  }

  const std::uint64_t asn_count = asns.size();
  const std::uint64_t link_count = rows.size();
  const std::uint64_t hybrid_count = snap.hybrids.size();
  const std::uint64_t off_asn = kV2HeaderBytes;
  const std::uint64_t off_adj_index = align8(off_asn + 4 * asn_count);
  const std::uint64_t off_adj = off_adj_index + 8 * (asn_count + 1);
  const std::uint64_t off_links = off_adj + 2 * kV2AdjEntryBytes * link_count;
  const std::uint64_t off_hybrids = align8(off_links + kV2LinkRowBytes * link_count);
  const std::uint64_t off_source = align8(off_hybrids + kV2HybridRowBytes * hybrid_count);
  const std::uint64_t file_size = off_source + snap.header.source.size() + 4;

  ByteWriter w;
  w.u32(kMagic);
  w.u32(2);
  w.u64(snap.header.timestamp);
  w.u64(file_size);
  w.u32(static_cast<std::uint32_t>(asn_count));
  w.u32(static_cast<std::uint32_t>(snap.header.source.size()));
  w.u64(link_count);
  w.u64(hybrid_count);
  w.u64(off_asn);
  w.u64(off_adj_index);
  w.u64(off_adj);
  w.u64(off_links);
  w.u64(off_hybrids);
  w.u64(off_source);
  encode_counters(w, snap);

  for (const Asn asn : asns) w.u32(asn);
  pad_to(w, off_adj_index);

  for (const std::uint64_t offset : adj_offsets) w.u64(offset);
  for (const auto& [neighbor, link_index] : adj_entries) {
    w.u32(neighbor);
    w.u32(link_index);
  }

  for (const auto& [key, row] : rows) {
    w.u32(key.first);
    w.u32(key.second);
    w.u8(row.rel_v4);
    w.u8(row.rel_v6);
    w.u8(row.flags);
    w.u8(0);
  }
  pad_to(w, off_hybrids);

  for (const auto& h : snap.hybrids) {
    w.u32(h.link.first);
    w.u32(h.link.second);
    w.u8(rel_byte(h.rel_v4));
    w.u8(rel_byte(h.rel_v6));
    w.u8(h.cls);
    w.u8(0);
    w.u64(h.v6_path_visibility);
  }
  pad_to(w, off_source);

  w.text(snap.header.source);
  w.u32(kTrailer);
  return w.take();
}

std::vector<std::uint8_t> Writer::encode_versioned(const Snapshot& snap,
                                                   std::uint32_t version) {
  if (version == 1) return encode_v1(snap);
  if (version == 2) return encode(snap);
  throw InvalidArgument("snapshot: cannot encode format version " + std::to_string(version));
}

void Writer::write_file(const Snapshot& snap, const std::string& path) {
  OBS_SPAN("snapshot.write");
  const std::vector<std::uint8_t> bytes = encode(snap);
  obs::MetricsRegistry::global().counter("htor_snapshot_writes_total").inc();
  obs::MetricsRegistry::global().counter("htor_snapshot_write_bytes_total").inc(bytes.size());
  // Write to a sibling temp file, then rename over the target: a reader (or
  // a daemon holding an mmap of the old file) never observes a half-written
  // snapshot, and the old inode keeps serving existing views.
  // lint: allow(adhoc-atomic-counter) temp-name uniquifier for the
  // rename-into-place protocol, not telemetry — it must stay collision-free
  // even if the registry is reset
  static std::atomic<unsigned> counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  save_bytes(tmp, bytes);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw Error("cannot rename snapshot into place at '" + path + "'");
  }
}

}  // namespace htor::snapshot
