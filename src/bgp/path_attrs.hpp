// BGP path attributes: typed model plus wire codec.
//
// Decode is tolerant of unknown attribute types (kept as raw bytes and
// re-encoded verbatim) but strict about structural errors — bad lengths and
// truncations throw DecodeError, as a routing daemon would treat them.
//
// AS_PATH and AGGREGATOR always use the 4-byte ASN encoding (RFC 6793), which
// is what MRT TABLE_DUMP_V2 and BGP4MP MESSAGE_AS4 carry.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bgp/as_path.hpp"
#include "bgp/community.hpp"
#include "bgp/nlri.hpp"
#include "bgp/types.hpp"
#include "netbase/ip.hpp"
#include "util/bytes.hpp"

namespace htor::bgp {

struct Aggregator {
  Asn asn = 0;
  IpAddress router_id;  // IPv4

  friend bool operator==(const Aggregator&, const Aggregator&) = default;
};

/// MP_REACH_NLRI (RFC 4760): the IPv6 routes of an UPDATE live here.
struct MpReachNlri {
  Afi afi = Afi::Ipv6;
  Safi safi = Safi::Unicast;
  std::vector<IpAddress> next_hops;  // 1 global (+ optional link-local)
  std::vector<Prefix> nlri;

  friend bool operator==(const MpReachNlri&, const MpReachNlri&) = default;
};

struct MpUnreachNlri {
  Afi afi = Afi::Ipv6;
  Safi safi = Safi::Unicast;
  std::vector<Prefix> withdrawn;

  friend bool operator==(const MpUnreachNlri&, const MpUnreachNlri&) = default;
};

/// An attribute type this codec does not model; preserved for re-encoding.
struct RawAttribute {
  std::uint8_t flags = 0;
  std::uint8_t type = 0;
  std::vector<std::uint8_t> payload;

  friend bool operator==(const RawAttribute&, const RawAttribute&) = default;
};

struct PathAttributes {
  std::optional<Origin> origin;
  AsPath as_path;  // empty == absent
  std::optional<IpAddress> next_hop;  // IPv4 NEXT_HOP attribute
  std::optional<std::uint32_t> med;
  std::optional<std::uint32_t> local_pref;
  bool atomic_aggregate = false;
  std::optional<Aggregator> aggregator;
  std::vector<Community> communities;
  std::vector<LargeCommunity> large_communities;
  std::optional<MpReachNlri> mp_reach;
  std::optional<MpUnreachNlri> mp_unreach;
  std::vector<RawAttribute> unknown;

  bool has_community(Community c) const;

  friend bool operator==(const PathAttributes&, const PathAttributes&) = default;
};

/// How MP_REACH_NLRI is laid out.  In MRT TABLE_DUMP_V2 RIB entries the
/// attribute is abbreviated to <next-hop length><next hop(s)> because
/// AFI/SAFI/NLRI live in the RIB entry header (RFC 6396 §4.3.4).
enum class MpReachForm : std::uint8_t { Full, MrtRib };

/// Serialize to the on-wire attribute list (without any enclosing length
/// field); deterministic attribute order by type code.
std::vector<std::uint8_t> encode_path_attributes(const PathAttributes& attrs,
                                                 MpReachForm form = MpReachForm::Full);

/// Parse an attribute list occupying exactly the reader's remaining bytes.
PathAttributes decode_path_attributes(ByteReader& r, MpReachForm form = MpReachForm::Full);

}  // namespace htor::bgp
