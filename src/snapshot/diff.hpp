// Relationship churn between two census snapshots: per address family, which
// links appeared, which vanished, which flipped relationship (e.g. p2p in
// one RIB, p2c in the next), and which dual-stack links became or stopped
// being hybrid.  This is the temporal measurement the paper motivates —
// hybrid relationships are interesting precisely because they form and
// resolve across successive collector RIBs.
#pragma once

#include <cstdint>
#include <vector>

#include "snapshot/snapshot.hpp"

namespace htor::snapshot {

/// A link present in both snapshots whose relationship changed.
/// Relationships are oriented link.first -> link.second.
struct RelChange {
  LinkKey link;
  Relationship before = Relationship::Unknown;
  Relationship after = Relationship::Unknown;

  friend bool operator==(const RelChange&, const RelChange&) = default;
};

/// Churn within one address family.  All vectors are in canonical LinkKey
/// order, so the diff of two given snapshots is deterministic.
struct FamilyDiff {
  std::vector<LinkKey> appeared;  ///< in `b` but not `a`
  std::vector<LinkKey> vanished;  ///< in `a` but not `b`
  std::vector<RelChange> flips;   ///< in both, relationship differs
  std::uint64_t unchanged = 0;    ///< in both, relationship identical

  std::uint64_t churn() const {
    return appeared.size() + vanished.size() + flips.size();
  }

  friend bool operator==(const FamilyDiff&, const FamilyDiff&) = default;
};

struct Diff {
  FamilyDiff v4;
  FamilyDiff v6;
  std::vector<LinkKey> hybrids_formed;    ///< hybrid in `b` but not `a`
  std::vector<LinkKey> hybrids_resolved;  ///< hybrid in `a` but not `b`
  std::uint64_t hybrids_stable = 0;       ///< hybrid in both

  std::uint64_t total_churn() const {
    return v4.churn() + v6.churn() + hybrids_formed.size() + hybrids_resolved.size();
  }

  friend bool operator==(const Diff&, const Diff&) = default;
};

/// Churn from map `a` to map `b` (one address family).
FamilyDiff diff_relationships(const RelationshipMap& a, const RelationshipMap& b);

/// Full churn report from snapshot `a` to snapshot `b`.
Diff diff_snapshots(const Snapshot& a, const Snapshot& b);

}  // namespace htor::snapshot
