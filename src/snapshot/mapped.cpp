#include "snapshot/mapped.hpp"

#include <utility>

namespace htor::snapshot {

std::shared_ptr<const MappedSnapshot> MappedSnapshot::from_bytes(
    std::vector<std::uint8_t> bytes) {
  // Validate before constructing: a malformed image never becomes an object.
  // The span is taken after the move so it points at the final storage.
  auto snap = std::shared_ptr<MappedSnapshot>(new MappedSnapshot());
  snap->owned_ = std::move(bytes);
  snap->view_ = validate_v2(snap->owned_);
  return snap;
}

std::shared_ptr<const MappedSnapshot> MappedSnapshot::map_file(const std::string& path) {
  return from_map(MmapFile(path));
}

std::shared_ptr<const MappedSnapshot> MappedSnapshot::from_map(MmapFile map) {
  auto snap = std::shared_ptr<MappedSnapshot>(new MappedSnapshot());
  snap->map_ = std::move(map);
  snap->view_ = validate_v2(snap->map_.data());
  return snap;
}

}  // namespace htor::snapshot
