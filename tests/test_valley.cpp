// Unit tests for the valley-free checker, with a parameterized pattern table
// covering the classic valid and invalid relationship sequences.
#include <gtest/gtest.h>

#include "topology/valley.hpp"

namespace htor {
namespace {

// Build a relationship map for a linear path 1-2-3-...-n from the sequence
// of link relationships (rel(i, i+1)).
RelationshipMap chain(const std::vector<Relationship>& rels) {
  RelationshipMap map;
  for (std::size_t i = 0; i < rels.size(); ++i) {
    if (rels[i] != Relationship::Unknown) {
      map.set(static_cast<Asn>(i + 1), static_cast<Asn>(i + 2), rels[i]);
    }
  }
  return map;
}

std::vector<Asn> path_of_length(std::size_t links) {
  std::vector<Asn> path;
  for (std::size_t i = 0; i <= links; ++i) path.push_back(static_cast<Asn>(i + 1));
  return path;
}

struct PatternCase {
  std::vector<Relationship> rels;
  PathPolicyClass expected;
};

class ValleyPatterns : public ::testing::TestWithParam<PatternCase> {};

TEST_P(ValleyPatterns, Classified) {
  const auto& c = GetParam();
  const auto map = chain(c.rels);
  const auto result = check_valley_free(path_of_length(c.rels.size()), map);
  EXPECT_EQ(result.cls, c.expected);
}

constexpr auto P2C = Relationship::P2C;
constexpr auto C2P = Relationship::C2P;
constexpr auto P2P = Relationship::P2P;
constexpr auto S2S = Relationship::S2S;
constexpr auto UNK = Relationship::Unknown;

INSTANTIATE_TEST_SUITE_P(
    Patterns, ValleyPatterns,
    ::testing::Values(
        // Valid: pure climb, pure descend, climb-peak-descend.
        PatternCase{{C2P, C2P}, PathPolicyClass::ValleyFree},
        PatternCase{{P2C, P2C}, PathPolicyClass::ValleyFree},
        PatternCase{{C2P, P2P, P2C}, PathPolicyClass::ValleyFree},
        PatternCase{{C2P, P2C}, PathPolicyClass::ValleyFree},
        PatternCase{{P2P}, PathPolicyClass::ValleyFree},
        PatternCase{{P2P, P2C, P2C}, PathPolicyClass::ValleyFree},
        PatternCase{{C2P, C2P, P2P}, PathPolicyClass::ValleyFree},
        // Siblings are transparent anywhere.
        PatternCase{{C2P, S2S, P2P, S2S, P2C}, PathPolicyClass::ValleyFree},
        PatternCase{{S2S, S2S}, PathPolicyClass::ValleyFree},
        // Valleys: descend then climb, two peering links, peer then climb.
        PatternCase{{P2C, C2P}, PathPolicyClass::Valley},
        PatternCase{{P2P, P2P}, PathPolicyClass::Valley},
        PatternCase{{P2P, C2P}, PathPolicyClass::Valley},
        PatternCase{{C2P, P2P, C2P}, PathPolicyClass::Valley},
        PatternCase{{C2P, P2C, P2P}, PathPolicyClass::Valley},
        PatternCase{{P2C, P2P}, PathPolicyClass::Valley},
        PatternCase{{P2C, S2S, C2P}, PathPolicyClass::Valley},  // sibling hides no valley
        // Unknown links.
        PatternCase{{C2P, UNK, P2C}, PathPolicyClass::Incomplete},
        PatternCase{{UNK}, PathPolicyClass::Incomplete},
        // A definite violation outweighs the unknown.
        PatternCase{{P2C, C2P, UNK}, PathPolicyClass::Valley}));

TEST(ValleyCheck, TrivialPaths) {
  const RelationshipMap empty;
  EXPECT_EQ(check_valley_free({}, empty).cls, PathPolicyClass::ValleyFree);
  EXPECT_EQ(check_valley_free({42}, empty).cls, PathPolicyClass::ValleyFree);
}

TEST(ValleyCheck, PrependingIsCollapsed) {
  RelationshipMap map;
  map.set(1, 2, Relationship::C2P);
  map.set(2, 3, Relationship::P2C);
  // 2 prepended twice: the 2-2 "link" must not be treated as unknown.
  const auto result = check_valley_free({1, 2, 2, 2, 3}, map);
  EXPECT_EQ(result.cls, PathPolicyClass::ValleyFree);
  EXPECT_EQ(result.unknown_links, 0u);
}

TEST(ValleyCheck, ReportsFirstViolation) {
  const auto map = chain({C2P, P2C, C2P, P2C});
  const auto result = check_valley_free(path_of_length(4), map);
  ASSERT_EQ(result.cls, PathPolicyClass::Valley);
  ASSERT_TRUE(result.first_violation.has_value());
  EXPECT_EQ(*result.first_violation, 2u);  // the second climb
}

TEST(ValleyCheck, CountsPeerLinks) {
  const auto map = chain({P2P, P2C, C2P, P2P});
  const auto result = check_valley_free(path_of_length(4), map);
  EXPECT_EQ(result.peer_links, 2u);
  EXPECT_EQ(result.cls, PathPolicyClass::Valley);
}

TEST(ValleyCheck, SymmetricUnderReversal) {
  // A valley-free path read backwards is still valley-free, and a valley
  // stays a valley.
  for (const auto& rels :
       {std::vector<Relationship>{C2P, P2P, P2C}, std::vector<Relationship>{P2C, C2P},
        std::vector<Relationship>{C2P, C2P, P2C, P2C}}) {
    const auto map = chain(rels);
    auto path = path_of_length(rels.size());
    const auto fwd = check_valley_free(path, map);
    std::reverse(path.begin(), path.end());
    const auto rev = check_valley_free(path, map);
    EXPECT_EQ(fwd.cls, rev.cls);
  }
}

TEST(ValleyCheck, IsValleyFreeHelper) {
  const auto vf = chain({C2P, P2C});
  EXPECT_TRUE(is_valley_free(path_of_length(2), vf));
  const auto incomplete = chain({C2P, UNK});
  EXPECT_TRUE(is_valley_free(path_of_length(2), incomplete, /*strict=*/false));
  EXPECT_FALSE(is_valley_free(path_of_length(2), incomplete, /*strict=*/true));
}

}  // namespace
}  // namespace htor
