// Continuously maintained census state over a live::ObservedRib.
//
// Two tiers of answers, with an explicit accuracy contract between them:
//
//   * LIVE TIER — updated in O(route length) per applied message: distinct
//     AS-path counts, per-family link refcounts, dual-stack link count,
//     per-link community-vote tallies (exactly core's scan, applied with
//     sign), the community-inferred relationship of every voted link, and
//     the hybrid-link count derived from those relationships.  Vote state
//     keeps the full per-link histogram, so a withdrawn route's votes are
//     *retracted* — the tallies equal what a from-scratch scan of the
//     current routes would produce, which test_live pins.  What the live
//     tier does NOT include: Rosetta calibration (needs a global LocPrf
//     scan) and the valley necessity test (needs whole-graph BFS); live
//     valley counters classify each announced route against the live
//     relationship map at apply time and are monotonic telemetry, not the
//     paper's census.
//
//   * EPOCH TIER — recompute() materializes the RIB (canonical key order)
//     and runs core::run_census on it, full config.  This is byte-identical
//     to the batch pipeline on the same route set BY CONSTRUCTION — the
//     equivalence oracle the whole live subsystem hangs from — and is what
//     serve --follow publishes as a snapshot.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/census_report.hpp"
#include "core/pipeline.hpp"
#include "live/observed_rib.hpp"
#include "obs/sketch/hll.hpp"
#include "rpsl/community_dict.hpp"
#include "snapshot/snapshot.hpp"
#include "topology/relationship.hpp"
#include "util/thread_pool.hpp"

namespace htor::live {

/// Live-tier counters, cheap to read at any point in the stream.
struct LiveStats {
  std::uint64_t routes = 0;
  std::uint64_t v4_paths = 0;  ///< distinct v4 AS paths (length >= 2)
  std::uint64_t v6_paths = 0;
  std::uint64_t v4_links = 0;  ///< links on >= 1 distinct v4 path
  std::uint64_t v6_links = 0;
  std::uint64_t dual_links = 0;
  std::uint64_t links_with_votes_v4 = 0;
  std::uint64_t links_with_votes_v6 = 0;
  std::uint64_t typed_links_v4 = 0;  ///< voted links with a clear majority
  std::uint64_t typed_links_v6 = 0;
  std::uint64_t conflicted_links_v4 = 0;
  std::uint64_t conflicted_links_v6 = 0;
  std::uint64_t hybrid_links = 0;  ///< dual, both typed, types differ
  std::uint64_t total_votes = 0;

  // Monotonic valley telemetry: each *announced* route classified once
  // against the live relationship map of its family at apply time.
  std::uint64_t valley_free_seen = 0;
  std::uint64_t valleys_seen = 0;
  std::uint64_t incomplete_seen = 0;
};

/// One published epoch: the authoritative batch-equivalent census.
struct EpochReport {
  core::CensusReport report;
  snapshot::Snapshot snap;
  std::uint64_t applied = 0;          ///< messages applied when cut
  std::uint32_t last_timestamp = 0;   ///< MRT timestamp of last applied record
  // Churn cardinality of the epoch just closed: HLL estimates of the
  // distinct ASes / prefixes / links touched by applied updates since the
  // previous cut (announce or withdraw alike).
  std::int64_t churn_ases = 0;
  std::int64_t churn_prefixes = 0;
  std::int64_t churn_links = 0;
};

class IncrementalCensus {
 public:
  /// Copies the dictionary and config; seeds the live state from `rib`
  /// exactly as if every route had been announced.  `source` labels the
  /// snapshots recompute() emits (typically the RIB file path).
  IncrementalCensus(const mrt::ObservedRib& rib, rpsl::CommunityDictionary dict,
                    core::InferenceConfig config, std::string source,
                    std::uint32_t seed_timestamp = 0);

  /// Apply one BGP4MP message (timestamp from its MRT header) and fold the
  /// route delta into every live structure.  Throws DecodeError on a
  /// malformed update with both the RIB and the live tier unchanged.
  void apply(std::uint32_t timestamp, const mrt::Bgp4mpMessage& msg);

  std::uint64_t applied() const { return applied_; }
  std::uint32_t last_timestamp() const { return last_timestamp_; }
  const LiveStats& stats() const { return stats_; }
  const ObservedRib& rib() const { return rib_; }

  /// Community-inferred relationship maps maintained by the live tier
  /// (no Rosetta).  For tests and staleness probes.
  const RelationshipMap& live_rels(IpVersion af) const {
    return af == IpVersion::V4 ? rels_v4_ : rels_v6_;
  }

  /// The authoritative epoch: run the full batch census over the
  /// materialized RIB on `pool`.  Byte-identical to core::run_census on
  /// mrt-level state; the snapshot is stamped with the last applied MRT
  /// timestamp (or the seed timestamp before any applies) so identical
  /// streams produce identical bytes.  Carries the current epoch-scoped
  /// churn estimates; the caller decides when to reset_epoch_churn().
  EpochReport recompute(ThreadPool& pool) const;

  /// Epoch-scoped churn cardinality: HLLs over the entities touched by
  /// apply() since construction or the last reset_epoch_churn().  Feeding
  /// is order-independent (HLL max), so estimates are deterministic for a
  /// given update stream prefix regardless of ring capacity or timing.
  struct ChurnEstimates {
    std::int64_t ases = 0;
    std::int64_t prefixes = 0;
    std::int64_t links = 0;
  };
  ChurnEstimates epoch_churn() const;
  void reset_epoch_churn();

 private:
  struct LinkState {
    std::array<std::uint32_t, 4> votes_v4{};
    std::array<std::uint32_t, 4> votes_v6{};
    std::uint64_t paths_v4 = 0;  ///< distinct v4 paths crossing this link
    std::uint64_t paths_v6 = 0;
    Relationship rel_v4 = Relationship::Unknown;
    Relationship rel_v6 = Relationship::Unknown;
    bool conflicted_v4 = false;  ///< votes present but no clear majority
    bool conflicted_v6 = false;
    bool hybrid = false;

    bool has_votes() const;
    bool dead() const;
  };

  void add_route(const mrt::ObservedRoute& route);
  void remove_route(const mrt::ObservedRoute& route);
  void apply_votes(const mrt::ObservedRoute& route, int sign);
  void retally(const LinkKey& key, LinkState& state);
  void update_derived(const LinkKey& key, LinkState& state);
  void classify_route(const mrt::ObservedRoute& route);

  ObservedRib rib_;
  rpsl::CommunityDictionary dict_;
  core::InferenceConfig config_;
  std::string source_;

  std::unordered_map<std::vector<Asn>, std::uint64_t, AsnVectorHash> paths_v4_;
  std::unordered_map<std::vector<Asn>, std::uint64_t, AsnVectorHash> paths_v6_;
  std::unordered_map<LinkKey, LinkState, LinkKeyHash> links_;
  RelationshipMap rels_v4_;
  RelationshipMap rels_v6_;

  LiveStats stats_;
  std::uint64_t applied_ = 0;
  std::uint32_t seed_timestamp_ = 0;
  std::uint32_t last_timestamp_ = 0;

  // Epoch-scoped churn sketches, fed by apply() only (the seed RIB is not
  // churn).  A smaller precision than the ingest sketches: churn per epoch
  // is orders of magnitude below whole-RIB cardinality.
  obs::sketch::Hll churn_ases_{12, obs::sketch::kTelemetrySeed};
  obs::sketch::Hll churn_prefixes_{12, obs::sketch::kTelemetrySeed};
  obs::sketch::Hll churn_links_{12, obs::sketch::kTelemetrySeed};
};

}  // namespace htor::live
