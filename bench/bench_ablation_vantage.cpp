// A2 (ablation): vantage-point completeness, in the spirit of Oliveira et
// al. [4].  Sweeping the number of collector peers shows how observed links,
// coverage, and hybrid recall grow with vantage diversity.
#include <iostream>
#include <unordered_set>

#include "harness.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace htor;
  bench::print_header("A2 / bench_ablation_vantage",
                      "observed topology and hybrid recall vs number of vantage points");

  Table t({"vantages", "v6 paths", "v6 links", "dual links", "v6 coverage", "hybrids found",
           "hybrid recall"});

  for (const auto [t1, t2, t3, st] :
       {std::array<std::size_t, 4>{0, 2, 2, 1}, std::array<std::size_t, 4>{1, 4, 4, 2},
        std::array<std::size_t, 4>{1, 8, 8, 5}, std::array<std::size_t, 4>{2, 12, 12, 8},
        std::array<std::size_t, 4>{4, 24, 24, 16}}) {
    gen::GenParams params;  // same seed, same Internet; only the vantages move
    params.vantage_tier1 = t1;
    params.vantage_tier2 = t2;
    params.vantage_tier3 = t3;
    params.vantage_stub = st;
    const auto ds = bench::make_dataset(params);
    const auto census = core::run_census(ds.rib, ds.dict);

    std::unordered_set<LinkKey, LinkKeyHash> planted;
    for (const auto& g : ds.net.hybrid_links()) planted.insert(g.link);
    std::size_t recalled = 0;
    for (const auto& f : census.hybrids.hybrids) {
      if (planted.count(f.link)) ++recalled;
    }

    t.row({std::to_string(ds.net.vantages().size()), std::to_string(census.v6_paths),
           std::to_string(census.v6_links), std::to_string(census.dual_links),
           fmt_pct(census.v6_coverage.covered_links, census.v6_coverage.observed_links),
           std::to_string(census.hybrids.hybrids.size()),
           fmt_pct(recalled, planted.size())});
  }
  t.print(std::cout);
  std::cout << "\nnote: even many vantages cannot see every planted hybrid link — links that\n"
               "never appear on a collected best path are invisible, the (in)completeness\n"
               "phenomenon of Oliveira et al. [4].\n";
  return 0;
}
