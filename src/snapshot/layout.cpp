#include "snapshot/layout.hpp"

#include <vector>

#include "util/error.hpp"

namespace htor::snapshot {

namespace {

constexpr std::uint8_t kRelMax = static_cast<std::uint8_t>(Relationship::Unknown);
constexpr std::uint8_t kV2FlagsMask = kV2FlagHybrid | kV2FlagInV4 | kV2FlagInV6;
// The writer refuses source paths over 64 KiB, so a file declaring more can
// never re-encode; reject it up front to keep the format injective.
constexpr std::uint64_t kMaxSourceLen = 0xffff;

std::uint64_t align8(std::uint64_t n) { return (n + 7) & ~std::uint64_t{7}; }

[[noreturn]] void fail(const std::string& reason) { throw DecodeError(reason); }

}  // namespace

std::uint8_t V2View::u8_at(std::uint64_t off) const {
  if (off >= bytes.size()) fail("snapshot v2 view access out of range");
  return bytes[off];
}

std::uint32_t V2View::u32_at(std::uint64_t off) const {
  if (bytes.size() < 4 || off > bytes.size() - 4) fail("snapshot v2 view access out of range");
  return std::uint32_t{bytes[off]} << 24 | std::uint32_t{bytes[off + 1]} << 16 |
         std::uint32_t{bytes[off + 2]} << 8 | std::uint32_t{bytes[off + 3]};
}

std::uint64_t V2View::u64_at(std::uint64_t off) const {
  if (bytes.size() < 8 || off > bytes.size() - 8) fail("snapshot v2 view access out of range");
  return std::uint64_t{u32_at(off)} << 32 | std::uint64_t{u32_at(off + 4)};
}

Asn V2View::asn_at(std::uint32_t id) const { return u32_at(off_asn + 4 * std::uint64_t{id}); }

V2View::LinkRow V2View::link_at(std::uint64_t index) const {
  const std::uint64_t off = off_links + kV2LinkRowBytes * index;
  LinkRow row;
  row.first = u32_at(off);
  row.second = u32_at(off + 4);
  row.rel_v4 = static_cast<Relationship>(u8_at(off + 8));
  row.rel_v6 = static_cast<Relationship>(u8_at(off + 9));
  const std::uint8_t flags = u8_at(off + 10);
  row.hybrid = (flags & kV2FlagHybrid) != 0;
  row.in_v4 = (flags & kV2FlagInV4) != 0;
  row.in_v6 = (flags & kV2FlagInV6) != 0;
  return row;
}

HybridLink V2View::hybrid_at(std::uint64_t index) const {
  const std::uint64_t off = off_hybrids + kV2HybridRowBytes * index;
  HybridLink h;
  h.link = LinkKey(u32_at(off), u32_at(off + 4));
  h.rel_v4 = static_cast<Relationship>(u8_at(off + 8));
  h.rel_v6 = static_cast<Relationship>(u8_at(off + 9));
  h.cls = u8_at(off + 10);
  h.v6_path_visibility = u64_at(off + 12);
  return h;
}

V2View::AdjEntry V2View::adj_at(std::uint64_t index) const {
  const std::uint64_t off = off_adj + kV2AdjEntryBytes * index;
  return {u32_at(off), u32_at(off + 4)};
}

std::pair<std::uint64_t, std::uint64_t> V2View::adj_range(std::uint32_t id) const {
  return {u64_at(off_adj_index + 8 * std::uint64_t{id}),
          u64_at(off_adj_index + 8 * (std::uint64_t{id} + 1))};
}

std::optional<std::uint32_t> V2View::find_asn(Asn asn) const {
  std::uint32_t lo = 0;
  std::uint32_t n = asn_count;
  while (n > 1) {
    const std::uint32_t half = n / 2;
    if (asn_at(lo + half) <= asn) lo += half;
    n -= half;
  }
  if (n == 1 && asn_at(lo) == asn) return lo;
  return std::nullopt;
}

std::optional<std::uint64_t> V2View::find_link(Asn a, Asn b) const {
  const LinkKey key(a, b);
  const std::uint64_t want = std::uint64_t{key.first} << 32 | std::uint64_t{key.second};
  // Branchless binary search: rows sort by (first, second), and the row's
  // first 8 bytes read as a big-endian u64 compare in exactly that order.
  std::uint64_t lo = 0;
  std::uint64_t n = link_count;
  while (n > 1) {
    const std::uint64_t half = n / 2;
    lo += (u64_at(off_links + kV2LinkRowBytes * (lo + half)) <= want) ? half : 0;
    n -= half;
  }
  if (n == 1 && u64_at(off_links + kV2LinkRowBytes * lo) == want) return lo;
  return std::nullopt;
}

std::string V2View::source() const {
  std::string out;
  out.reserve(source_len);
  for (std::uint32_t i = 0; i < source_len; ++i) {
    out.push_back(static_cast<char>(u8_at(off_source + i)));
  }
  return out;
}

DatasetStats V2View::dataset() const {
  DatasetStats d;
  d.v4_paths = u64_at(kV2OffCounters);
  d.v6_paths = u64_at(kV2OffCounters + 8);
  d.v4_links = u64_at(kV2OffCounters + 16);
  d.v6_links = u64_at(kV2OffCounters + 24);
  d.dual_links = u64_at(kV2OffCounters + 32);
  return d;
}

CoverageCounters V2View::coverage(int which) const {
  const std::uint64_t base = kV2OffCounters + 40 + 16 * static_cast<std::uint64_t>(which);
  return {u64_at(base), u64_at(base + 8)};
}

ValleyCounters V2View::valleys(int which) const {
  const std::uint64_t base = kV2OffCounters + 88 + 48 * static_cast<std::uint64_t>(which);
  ValleyCounters v;
  v.paths = u64_at(base);
  v.valley_free = u64_at(base + 8);
  v.valley = u64_at(base + 16);
  v.incomplete = u64_at(base + 24);
  v.classified_valleys = u64_at(base + 32);
  v.necessary_valleys = u64_at(base + 40);
  return v;
}

HybridCounters V2View::hybrid_counters() const {
  const std::uint64_t base = kV2OffCounters + 184;
  HybridCounters h;
  h.dual_links_observed = u64_at(base);
  h.dual_links_both_known = u64_at(base + 8);
  h.v6_paths_total = u64_at(base + 16);
  h.v6_paths_with_hybrid = u64_at(base + 24);
  return h;
}

V2View validate_v2(std::span<const std::uint8_t> data) {
  V2View v;
  v.bytes = data;
  if (data.size() < kV2HeaderBytes) {
    fail("snapshot v2 header truncated (need " + std::to_string(kV2HeaderBytes) +
         " bytes, have " + std::to_string(data.size()) + ")");
  }
  if (v.u32_at(kV2OffMagic) != kMagic) fail("not a hybridtor snapshot (bad magic)");
  const std::uint32_t version = v.u32_at(kV2OffVersion);
  if (version != 2) {
    fail("snapshot format version " + std::to_string(version) +
         " is not the mmap-able v2 layout");
  }

  const std::uint64_t size = data.size();
  const std::uint64_t declared = v.u64_at(kV2OffFileSize);
  if (declared != size) {
    fail("snapshot v2 size field " + std::to_string(declared) + " does not match the file's " +
         std::to_string(size) + " bytes");
  }

  v.timestamp = v.u64_at(kV2OffTimestamp);
  v.asn_count = v.u32_at(kV2OffAsnCount);
  v.source_len = v.u32_at(kV2OffSourceLen);
  v.link_count = v.u64_at(kV2OffLinkCount);
  v.hybrid_count = v.u64_at(kV2OffHybridCount);

  // Bound every count against the bytes actually present before any offset
  // arithmetic or allocation — a garbage count fails cleanly, never
  // over-allocates, and the partial sums below can never overflow.
  if (v.source_len > kMaxSourceLen) {
    fail("snapshot v2 source length " + std::to_string(v.source_len) + " exceeds " +
         std::to_string(kMaxSourceLen));
  }
  if (v.asn_count > size / 4) {
    fail("snapshot v2 AS count " + std::to_string(v.asn_count) + " overruns the file");
  }
  if (v.link_count > size / (2 * kV2AdjEntryBytes)) {
    fail("snapshot v2 link count " + std::to_string(v.link_count) + " overruns the file");
  }
  if (v.hybrid_count > size / kV2HybridRowBytes) {
    fail("snapshot v2 hybrid count " + std::to_string(v.hybrid_count) + " overruns the file");
  }

  // The packed layout is a function of the counts alone; the stored section
  // offsets must match it exactly (no gaps, no overlaps, no reordering).
  const std::uint64_t asn_count = v.asn_count;
  const std::uint64_t expect_asn = kV2HeaderBytes;
  const std::uint64_t expect_adj_index = align8(expect_asn + 4 * asn_count);
  const std::uint64_t expect_adj = expect_adj_index + 8 * (asn_count + 1);
  const std::uint64_t expect_links = expect_adj + 2 * kV2AdjEntryBytes * v.link_count;
  const std::uint64_t expect_hybrids = align8(expect_links + kV2LinkRowBytes * v.link_count);
  const std::uint64_t expect_source = align8(expect_hybrids + kV2HybridRowBytes * v.hybrid_count);
  const std::uint64_t expect_size = expect_source + v.source_len + 4;

  v.off_asn = v.u64_at(kV2OffSectionOffsets);
  v.off_adj_index = v.u64_at(kV2OffSectionOffsets + 8);
  v.off_adj = v.u64_at(kV2OffSectionOffsets + 16);
  v.off_links = v.u64_at(kV2OffSectionOffsets + 24);
  v.off_hybrids = v.u64_at(kV2OffSectionOffsets + 32);
  v.off_source = v.u64_at(kV2OffSectionOffsets + 40);

  const struct {
    const char* name;
    std::uint64_t stored;
    std::uint64_t expected;
  } sections[] = {
      {"AS table", v.off_asn, expect_asn},
      {"adjacency index", v.off_adj_index, expect_adj_index},
      {"adjacency entries", v.off_adj, expect_adj},
      {"link table", v.off_links, expect_links},
      {"hybrid table", v.off_hybrids, expect_hybrids},
      {"source", v.off_source, expect_source},
  };
  for (const auto& s : sections) {
    if (s.stored != s.expected) {
      fail(std::string("snapshot v2 section offset corrupt (") + s.name + " at " +
           std::to_string(s.stored) + ", layout says " + std::to_string(s.expected) + ")");
    }
  }
  if (expect_size != size) {
    fail("snapshot v2 sections do not fill the file (" + std::to_string(expect_size) +
         " bytes laid out, " + std::to_string(size) + " present)");
  }
  if (v.u32_at(size - 4) != kTrailer) {
    fail("snapshot trailer missing (file truncated or corrupt)");
  }

  // Alignment padding must be zero — nonzero pad bytes would make two
  // distinct files decode to the same snapshot.
  const std::pair<std::uint64_t, std::uint64_t> pads[] = {
      {expect_asn + 4 * asn_count, expect_adj_index},
      {expect_links + kV2LinkRowBytes * v.link_count, expect_hybrids},
      {expect_hybrids + kV2HybridRowBytes * v.hybrid_count, expect_source},
  };
  // Every section now provably sits inside the file (counts bounded, stored
  // offsets equal to the recomputed layout, total equal to the byte count),
  // so the scan loops below read through the unchecked raw accessors — the
  // bounds work is done once, above, not per field.
  for (const auto& [from, to] : pads) {
    for (std::uint64_t i = from; i < to; ++i) {
      if (v.u8_raw(i) != 0) fail("snapshot v2 padding bytes not zero");
    }
  }

  if (v.asn_count > 0) {
    std::uint32_t prev = v.u32_raw(v.off_asn);
    for (std::uint32_t i = 1; i < v.asn_count; ++i) {
      const std::uint32_t cur = v.u32_raw(v.off_asn + 4 * std::uint64_t{i});
      if (prev >= cur) fail("snapshot v2 AS table out of canonical order");
      prev = cur;
    }
  }

  if (v.u64_raw(v.off_adj_index) != 0) fail("snapshot v2 adjacency index does not start at zero");
  std::uint64_t prev_row_end = 0;
  for (std::uint32_t i = 0; i < v.asn_count; ++i) {
    const std::uint64_t end = v.u64_raw(v.off_adj_index + 8 * (std::uint64_t{i} + 1));
    // Strictly increasing: an interned AS with no links would be dead weight
    // the canonical writer never emits.
    if (prev_row_end >= end) {
      fail("snapshot v2 adjacency index out of order (every interned AS has degree >= 1)");
    }
    prev_row_end = end;
  }
  if (prev_row_end != 2 * v.link_count) {
    fail("snapshot v2 adjacency index does not cover both endpoints of every link");
  }

  std::uint64_t prev_key = 0;
  for (std::uint64_t i = 0; i < v.link_count; ++i) {
    const std::uint64_t off = v.off_links + kV2LinkRowBytes * i;
    const std::uint32_t first = v.u32_raw(off);
    const std::uint32_t second = v.u32_raw(off + 4);
    if (first >= second) {
      fail("snapshot link AS" + std::to_string(first) + "-AS" + std::to_string(second) +
           " is not a canonical AS pair");
    }
    const std::uint64_t key = std::uint64_t{first} << 32 | std::uint64_t{second};
    if (i > 0 && key <= prev_key) fail("snapshot v2 link table out of canonical order");
    prev_key = key;
    const std::uint8_t rel_v4 = v.u8_raw(off + 8);
    const std::uint8_t rel_v6 = v.u8_raw(off + 9);
    if (rel_v4 > kRelMax || rel_v6 > kRelMax) {
      fail("snapshot relationship value " + std::to_string(rel_v4 > kRelMax ? rel_v4 : rel_v6) +
           " out of range");
    }
    const std::uint8_t flags = v.u8_raw(off + 10);
    if ((flags & ~kV2FlagsMask) != 0) {
      fail("snapshot v2 link flags " + std::to_string(flags) + " have reserved bits set");
    }
    if (flags == 0) fail("snapshot v2 link row belongs to no family and no hybrid");
    if ((flags & kV2FlagInV4) == 0 && rel_v4 != kRelMax) {
      fail("snapshot v2 link row carries a relationship for an absent family");
    }
    if ((flags & kV2FlagInV6) == 0 && rel_v6 != kRelMax) {
      fail("snapshot v2 link row carries a relationship for an absent family");
    }
    if (v.u8_raw(off + 11) != 0) fail("snapshot v2 link row padding not zero");
    if ((flags & kV2FlagHybrid) != 0) ++v.hybrid_link_count;
  }

  // Hybrid entries are stored verbatim (census order, duplicates allowed),
  // but every one must point at a link row flagged hybrid — and every row
  // flagged hybrid must be pointed at, or the flag would not survive a
  // decode→re-encode round trip.
  std::vector<std::uint8_t> seen((v.link_count + 7) / 8, 0);
  for (std::uint64_t i = 0; i < v.hybrid_count; ++i) {
    const std::uint64_t off = v.off_hybrids + kV2HybridRowBytes * i;
    const std::uint32_t first = v.u32_raw(off);
    const std::uint32_t second = v.u32_raw(off + 4);
    if (first >= second) {
      fail("snapshot link AS" + std::to_string(first) + "-AS" + std::to_string(second) +
           " is not a canonical AS pair");
    }
    const std::uint8_t rel_v4 = v.u8_raw(off + 8);
    const std::uint8_t rel_v6 = v.u8_raw(off + 9);
    if (rel_v4 > kRelMax || rel_v6 > kRelMax) {
      fail("snapshot relationship value " + std::to_string(rel_v4 > kRelMax ? rel_v4 : rel_v6) +
           " out of range");
    }
    const std::uint8_t cls = v.u8_raw(off + 10);
    if (cls > 3) fail("snapshot hybrid class value " + std::to_string(cls) + " out of range");
    if (v.u8_raw(off + 11) != 0) fail("snapshot v2 hybrid row padding not zero");
    const auto row = v.find_link(first, second);
    if (!row ||
        (v.u8_raw(v.off_links + kV2LinkRowBytes * *row + 10) & kV2FlagHybrid) == 0) {
      fail("snapshot v2 hybrid entry AS" + std::to_string(first) + "-AS" +
           std::to_string(second) + " missing from the link table");
    }
    seen[*row / 8] |= static_cast<std::uint8_t>(1u << (*row % 8));
  }
  std::uint64_t marked = 0;
  for (std::uint64_t i = 0; i < v.link_count; ++i) {
    marked += (seen[i / 8] >> (i % 8)) & 1u;
  }
  if (marked != v.hybrid_link_count) {
    fail("snapshot v2 link flagged hybrid but absent from the hybrid table");
  }

  // CSR consistency: every adjacency entry must name an interned neighbor,
  // reference the one link joining owner and neighbor, and keep each list
  // strictly ascending.  Together with the 2L total this pins the adjacency
  // sections to exactly one byte form per link table.
  for (std::uint32_t owner = 0; owner < v.asn_count; ++owner) {
    const std::uint64_t begin = v.u64_raw(v.off_adj_index + 8 * std::uint64_t{owner});
    const std::uint64_t end = v.u64_raw(v.off_adj_index + 8 * (std::uint64_t{owner} + 1));
    const Asn owner_asn = v.u32_raw(v.off_asn + 4 * std::uint64_t{owner});
    std::uint32_t prev_neighbor = 0;
    for (std::uint64_t i = begin; i < end; ++i) {
      const std::uint64_t entry_off = v.off_adj + kV2AdjEntryBytes * i;
      const std::uint32_t neighbor_id = v.u32_raw(entry_off);
      const std::uint32_t link_index = v.u32_raw(entry_off + 4);
      if (neighbor_id >= v.asn_count) {
        fail("snapshot v2 adjacency neighbor id out of range");
      }
      if (link_index >= v.link_count) {
        fail("snapshot v2 adjacency link index out of range");
      }
      if (i > begin && neighbor_id <= prev_neighbor) {
        fail("snapshot v2 adjacency list out of canonical order");
      }
      prev_neighbor = neighbor_id;
      const LinkKey key(owner_asn, v.u32_raw(v.off_asn + 4 * std::uint64_t{neighbor_id}));
      const std::uint64_t row_off = v.off_links + kV2LinkRowBytes * link_index;
      if (v.u32_raw(row_off) != key.first || v.u32_raw(row_off + 4) != key.second) {
        fail("snapshot v2 adjacency entry does not match its link");
      }
    }
  }

  for (int which = 0; which < 3; ++which) {
    const CoverageCounters c = v.coverage(which);
    if (c.covered > c.observed) {
      fail("snapshot coverage counters corrupt (covered > observed)");
    }
  }

  return v;
}

}  // namespace htor::snapshot
