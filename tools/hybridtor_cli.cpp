// hybridtor — command-line front end for the library.
//
// Subcommands:
//   generate <outdir> [seed]   generate the synthetic Internet and write
//                              rib.mrt (TABLE_DUMP_V2), irr.txt (RPSL) and
//                              truth.csv (planted ground truth) into outdir
//   census  <rib.mrt> <irr.txt>
//                              run the paper's full census on on-disk data
//                              (works on real RouteViews TABLE_DUMP_V2 files
//                              plus any IRR text dump)
//   inspect <rib.mrt>          per-record summary of an MRT file
//   diff    <a.snap> <b.snap>  relationship churn between two snapshots
//   query   [--json] <snap> <asn> [asn2]
//                              AS-pair relationship / AS neighbor-list lookup
//                              against a snapshot; --json emits the same
//                              bytes the query daemon serves over HTTP.
//                              v2 snapshots are mmap'd and searched in-file
//                              (zero-copy); v1 snapshots decode eagerly
//   snapshot-upgrade <in.snap> <out.snap>
//                              re-encode any readable snapshot in the
//                              current (v2, mmap-able) format
//   serve   <snap> [--port N] [--jobs N]
//                              long-running query daemon over one snapshot:
//                              loads it once into a QueryIndex and serves
//                              /v1/link, /v1/neighbors, /v1/summary,
//                              /v1/healthz, /v1/metrics over HTTP/1.1 on
//                              127.0.0.1; SIGHUP or POST /v1/reload hot-swaps
//                              a freshly loaded snapshot without downtime
//   follow  <rib.mrt> <irr.txt> <updates.mrt...>
//                              continuous census: seed the RIB, stream the
//                              BGP4MP update files through the live pipeline
//                              (reader -> decoder -> apply over SPSC rings),
//                              and cut a full census epoch every
//                              --epoch-every applied updates (plus a final
//                              one).  Each epoch is byte-identical to
//                              running `census` on the RIB state at that
//                              point in the stream.
//   serve --follow <rib.mrt> <irr.txt> <updates.mrt...>
//                              the follow pipeline fused with the query
//                              daemon: every cut epoch is encoded to an
//                              in-memory QueryIndex and swapped into the
//                              daemon without dropping a connection; the
//                              daemon's answers lag the stream by at most
//                              --epoch-every updates
//
// The census subcommand is the adoption path for real data: it consumes
// nothing but the two files.  `census --snapshot-out <file>` additionally
// persists the report's durable core (relationship maps, hybrid links,
// coverage/valley counters) as a versioned binary snapshot; `diff` and
// `query` consume those snapshots, which is how multi-RIB temporal studies
// avoid re-running the census per question.
//
// `--jobs N` (anywhere on the command line) sizes the thread pool: for
// census, 1 (the default) runs fully sequential and 0 uses one worker per
// hardware thread — every value produces byte-identical reports and
// byte-identical snapshot files.  For serve it sizes the connection worker
// pool and defaults to 0 (a daemon should not serialize its clients).
//
// `census` ingests the MRT file by streaming it: headers are scanned
// sequentially, record bodies decode in parallel batches, and routes join
// straight into the RIB, so peak memory stays one batch deep instead of
// ~3× the decoded RIB.  `--no-stream` selects the legacy load-all path;
// both paths produce byte-identical reports.
//
// `census --stats` appends an end-of-run stage-timing table (ingest,
// decode, apply, census sub-stages, snapshot write) from the obs span
// histograms; `--trace-out <file>` additionally captures every stage span
// and writes a Chrome-trace-format JSON file that chrome://tracing and
// ui.perfetto.dev open directly.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/census_report.hpp"
#include "core/pipeline.hpp"
#include "core/snapshot_bridge.hpp"
#include "gen/internet.hpp"
#include "gen/updates.hpp"
#include "live/follow.hpp"
#include "live/incremental_census.hpp"
#include "live/pipeline.hpp"
#include "mrt/reader.hpp"
#include "mrt/stream_reader.hpp"
#include "mrt/writer.hpp"
#include "obs/metrics.hpp"
#include "obs/sketch/telemetry.hpp"
#include "obs/trace.hpp"
#include "rpsl/object.hpp"
#include "server/daemon.hpp"
#include "server/render.hpp"
#include "snapshot/diff.hpp"
#include "snapshot/query.hpp"
#include "snapshot/reader.hpp"
#include "snapshot/writer.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace htor;

/// Strict numeric parse for --jobs ("0" = auto is legal; "abc"/"4x"/"-1" is
/// not, and neither is a value no machine has threads for).
constexpr std::size_t kMaxJobs = 4096;

std::optional<std::size_t> parse_jobs(const std::string& value) {
  std::uint64_t parsed = 0;
  if (!parse_u64(value, parsed) || parsed > kMaxJobs) {
    std::cerr << "error: --jobs expects an integer in [0, " << kMaxJobs << "], got '" << value
              << "'\n";
    return std::nullopt;
  }
  return static_cast<std::size_t>(parsed);
}

/// Strict seed parse for `generate` — same discipline as --jobs: digits
/// only, no silent truncation of garbage like "12x" or "abc".
std::optional<std::uint64_t> parse_seed(const std::string& value) {
  std::uint64_t parsed = 0;
  if (!parse_u64(value, parsed)) {
    std::cerr << "error: generate expects a non-negative integer seed, got '" << value << "'\n";
    return std::nullopt;
  }
  return parsed;
}

/// Strict ASN parse for `query` — the shared util parse_asn plus the CLI's
/// diagnostic.
std::optional<Asn> parse_asn_arg(const std::string& value) {
  Asn parsed = 0;
  if (!parse_asn(value, parsed)) {
    std::cerr << "error: '" << value << "' is not a valid ASN (expected 0..4294967295)\n";
    return std::nullopt;
  }
  return parsed;
}

/// Strict TCP port parse for `serve --port` (0 binds an ephemeral port).
std::optional<std::uint16_t> parse_port(const std::string& value) {
  std::uint64_t parsed = 0;
  if (!parse_u64(value, parsed) || parsed > 65535) {
    std::cerr << "error: --port expects an integer in [0, 65535], got '" << value << "'\n";
    return std::nullopt;
  }
  return static_cast<std::uint16_t>(parsed);
}

int usage() {
  std::cerr << "usage:\n"
               "  hybridtor generate [--update-events N] [--scale N] <outdir> [seed]\n"
               "  hybridtor census [--jobs N] [--no-stream] [--snapshot-out <file>]\n"
               "                   [--stats] [--trace-out <file>] <rib.mrt> <irr.txt>\n"
               "  hybridtor inspect <rib.mrt>\n"
               "  hybridtor diff <a.snap> <b.snap>\n"
               "  hybridtor query [--json] <snap> <asn> [asn2]\n"
               "  hybridtor snapshot-upgrade <in.snap> <out.snap>\n"
               "  hybridtor serve <snap> [--port N] [--jobs N]\n"
               "  hybridtor follow [--jobs N] [--epoch-every N] [--ring-capacity N]\n"
               "                   <rib.mrt> <irr.txt> <updates.mrt...>\n"
               "  hybridtor serve --follow [--port N] [--jobs N] [--epoch-every N]\n"
               "                   [--ring-capacity N] <rib.mrt> <irr.txt> <updates.mrt...>\n";
  return 2;
}

/// Strict parse for --epoch-every (0 = only the final epoch).
std::optional<std::uint64_t> parse_epoch_every(const std::string& value) {
  std::uint64_t parsed = 0;
  if (!parse_u64(value, parsed)) {
    std::cerr << "error: --epoch-every expects a non-negative integer, got '" << value << "'\n";
    return std::nullopt;
  }
  return parsed;
}

/// Strict parse for --ring-capacity (rounded up to a power of two; 0 is
/// rejected here rather than throwing out of the pipeline constructor).
std::optional<std::size_t> parse_ring_capacity(const std::string& value) {
  std::uint64_t parsed = 0;
  if (!parse_u64(value, parsed) || parsed == 0 || parsed > (1u << 20)) {
    std::cerr << "error: --ring-capacity expects an integer in [1, 1048576], got '" << value
              << "'\n";
    return std::nullopt;
  }
  return static_cast<std::size_t>(parsed);
}

/// Strict parse for generate --update-events.
std::optional<std::size_t> parse_update_events(const std::string& value) {
  std::uint64_t parsed = 0;
  if (!parse_u64(value, parsed) || parsed > 10'000'000) {
    std::cerr << "error: --update-events expects an integer in [0, 10000000], got '" << value
              << "'\n";
    return std::nullopt;
  }
  return static_cast<std::size_t>(parsed);
}

/// Strict parse for generate --scale (total AS count for the scale preset;
/// the upper bound is what the ASN paging in gen/internet.cpp can host).
std::optional<std::size_t> parse_scale(const std::string& value) {
  std::uint64_t parsed = 0;
  if (!parse_u64(value, parsed) || parsed < 1000 || parsed > 1'000'000) {
    std::cerr << "error: --scale expects an integer in [1000, 1000000], got '" << value
              << "'\n";
    return std::nullopt;
  }
  return static_cast<std::size_t>(parsed);
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

int cmd_generate(const std::string& outdir, std::uint64_t seed, std::size_t update_events,
                 std::size_t scale) {
  std::error_code ec;
  std::filesystem::create_directories(outdir, ec);
  if (ec) {
    throw Error("cannot create output directory '" + outdir + "': " + ec.message());
  }

  // --scale switches to the internet-scale preset and the O(N) synthetic
  // collector; the default keeps the paper-calibrated net and the full
  // propagation collector.
  gen::GenParams params = scale > 0 ? gen::scale_params(scale, seed) : gen::GenParams{};
  params.seed = seed;
  std::cout << "generating (seed " << seed << ", " << params.total_ases() << " ASes)...\n";
  const auto net = gen::SyntheticInternet::generate(params);
  const auto rib = scale > 0 ? net.collect_scaled() : net.collect();

  mrt::MrtWriter writer;
  for (const auto& record : mrt::records_from_rib(rib, 0x0a0a0a0au, "hybridtor", 1281052800u)) {
    writer.write(record);
  }
  writer.save(outdir + "/rib.mrt");
  std::cout << "wrote " << outdir << "/rib.mrt (" << writer.data().size() << " bytes)\n";

  if (update_events > 0) {
    gen::UpdateScheduleParams schedule;
    schedule.seed = seed;
    schedule.events = update_events;
    const auto updates = gen::synthesize_updates(rib, schedule);
    mrt::MrtWriter update_writer;
    for (const auto& record : updates) update_writer.write(record);
    update_writer.save(outdir + "/updates.mrt");
    std::cout << "wrote " << outdir << "/updates.mrt (" << updates.size() << " BGP4MP records, "
              << update_writer.data().size() << " bytes)\n";
  }

  std::ofstream irr(outdir + "/irr.txt");
  if (!irr) throw Error("cannot write " + outdir + "/irr.txt");
  irr << net.irr_dump();
  irr.flush();
  if (!irr) throw Error("write to " + outdir + "/irr.txt failed");
  std::cout << "wrote " << outdir << "/irr.txt\n";

  std::ofstream truth(outdir + "/truth.csv");
  if (!truth) throw Error("cannot write " + outdir + "/truth.csv");
  truth << "as_a,as_b,rel_v4,rel_v6,hybrid\n";
  net.graph().for_each_link(IpVersion::V4, [&](const LinkKey& key) {
    const auto r4 = net.truth(IpVersion::V4).get(key.first, key.second);
    const auto r6 = net.truth(IpVersion::V6).get(key.first, key.second);
    truth << key.first << ',' << key.second << ',' << to_string(r4) << ',' << to_string(r6)
          << ',' << (r6 != Relationship::Unknown && r4 != r6 ? 1 : 0) << '\n';
  });
  truth.flush();
  if (!truth) throw Error("write to " + outdir + "/truth.csv failed");
  std::cout << "wrote " << outdir << "/truth.csv\n";
  return 0;
}

/// The RIB's epoch: the MRT timestamp of the dump's first record.  This (not
/// wall clock) stamps snapshots, so re-running the census on the same input
/// reproduces the snapshot byte for byte.
std::uint64_t rib_epoch(const std::string& mrt_path) {
  mrt::MrtStreamReader stream(mrt_path);
  if (const auto frame = stream.next()) return frame->timestamp;
  return 0;
}

/// End-of-run stage timing table from the span histograms: one row per
/// pipeline stage that ran, in stage-name order (dotted names group
/// sub-stages under their parent lexically).
void print_stage_stats(std::ostream& out) {
  const auto rows =
      obs::MetricsRegistry::global().histogram_family(obs::kStageDurationMetric);
  out << "\nstage timings:\n";
  Table t({"stage", "calls", "total us", "mean us"});
  for (const auto& row : rows) {
    // Labels render as {stage="<name>"}; recover the name.
    constexpr std::string_view kPrefix = "{stage=\"";
    std::string stage = row.labels;
    if (stage.rfind(kPrefix, 0) == 0 && stage.size() >= kPrefix.size() + 2) {
      stage = stage.substr(kPrefix.size(), stage.size() - kPrefix.size() - 2);
    }
    const std::uint64_t calls = row.values.total();
    if (calls == 0) continue;
    t.row({stage, std::to_string(calls), std::to_string(row.values.sum),
           std::to_string(row.values.sum / calls)});
  }
  t.print(out);
}

int cmd_census(const std::string& mrt_path, const std::string& irr_path, std::size_t jobs,
               bool streaming, const std::optional<std::string>& snapshot_out, bool stats,
               const std::optional<std::string>& trace_out) {
  if (trace_out) obs::TraceCollector::global().enable();
  // Fail fast on unreadable or truncated input: no partial census is ever
  // printed — the single diagnostic below names the file and the reason.
  ThreadPool pool(jobs);
  core::IngestOptions ingest;
  ingest.streaming = streaming;
  mrt::ObservedRib rib;
  try {
    rib = core::load_rib(mrt_path, pool, ingest);
  } catch (const Error& e) {
    throw Error("census aborted: " + mrt_path + ": " + e.what());
  }
  const auto dict = rpsl::mine_dictionary(rpsl::parse_objects(read_text_file(irr_path)));
  std::cout << mrt_path << ": " << rib.size() << " routes ("
            << rib.size_of(IpVersion::V6) << " IPv6); dictionary: " << dict.size()
            << " communities from " << dict.documented_asns().size() << " ASes\n\n";

  core::InferenceConfig config;
  config.threads = jobs;
  const auto census = core::run_census(rib, dict, config, pool);

  Table t({"metric", "value"});
  t.row({"IPv6 AS paths", std::to_string(census.v6_paths)});
  t.row({"IPv6 AS links", std::to_string(census.v6_links)});
  t.row({"IPv6 links with relationship",
         fmt_pct(census.v6_coverage.covered_links, census.v6_coverage.observed_links)});
  t.row({"dual-stack links", std::to_string(census.dual_links)});
  t.row({"dual-stack typed in both planes", std::to_string(census.dual_coverage.covered_links)});
  t.row({"hybrid links", std::to_string(census.hybrids.hybrids.size()) + " (" +
                             fmt_pct(census.hybrids.hybrids.size(),
                                     census.hybrids.dual_links_both_known) +
                             " of typed duals)"});
  t.row({"  p2p(v4)/transit(v6)", std::to_string(census.hybrids.peer_v4_transit_v6)});
  t.row({"  transit(v4)/p2p(v6)", std::to_string(census.hybrids.transit_v4_peer_v6)});
  t.row({"  reversals", std::to_string(census.hybrids.reversals)});
  t.row({"IPv6 paths crossing a hybrid",
         fmt_pct(census.hybrids.v6_paths_with_hybrid, census.hybrids.v6_paths_total)});
  t.row({"IPv6 valley paths",
         fmt_pct(census.v6_valleys.valley, census.v6_valleys.paths)});
  t.row({"  reachability-required",
         fmt_pct(census.v6_valleys.necessary_valleys, census.v6_valleys.classified_valleys)});
  t.print(std::cout);

  if (!census.hybrids.hybrids.empty()) {
    std::cout << "\ntop hybrid links by IPv6 path visibility:\n";
    Table top({"link", "v4", "v6", "paths"});
    for (std::size_t i = 0; i < census.hybrids.hybrids.size() && i < 10; ++i) {
      const auto& f = census.hybrids.hybrids[i];
      top.row({"AS" + std::to_string(f.link.first) + "-AS" + std::to_string(f.link.second),
               to_string(f.rel_v4), to_string(f.rel_v6),
               std::to_string(f.v6_path_visibility)});
    }
    top.print(std::cout);
  }

  // Sketch telemetry fed during ingest + inference.  Only path-independent
  // values appear here: HLL estimates, the Bloom hit/miss split (fed in
  // record order on the sequential apply leg), and the post-merge link-vote
  // heavy hitters — so this section honours the same byte-identity contract
  // across --jobs and --no-stream that the rest of the report does.
  const auto sketch = obs::sketch::Telemetry::global().snapshot();
  std::cout << "\nsketch telemetry (~" << sketch.memory_bytes / 1024 << " KiB resident):\n";
  Table sk({"estimate", "value"});
  sk.row({"unique ASes (HLL)", "~" + std::to_string(sketch.unique_ases)});
  sk.row({"unique prefixes (HLL)", "~" + std::to_string(sketch.unique_prefixes)});
  sk.row({"unique AS links (HLL)", "~" + std::to_string(sketch.unique_links)});
  sk.row({"link bloom pre-filter", std::to_string(sketch.bloom_hits) + " hits / " +
                                       std::to_string(sketch.bloom_misses) + " misses"});
  sk.print(std::cout);
  if (!sketch.top_link_votes.empty()) {
    std::cout << "\nmost-voted links (CMS estimates):\n";
    Table votes({"link", "~votes"});
    for (std::size_t i = 0; i < sketch.top_link_votes.size() && i < 10; ++i) {
      const auto& hh = sketch.top_link_votes[i];
      const auto a = static_cast<std::uint32_t>(hh.item >> 32);
      const auto b = static_cast<std::uint32_t>(hh.item);
      votes.row({"AS" + std::to_string(a) + "-AS" + std::to_string(b),
                 std::to_string(hh.estimate)});
    }
    votes.print(std::cout);
  }

  if (snapshot_out) {
    const auto snap = core::to_snapshot(census, mrt_path, rib_epoch(mrt_path));
    snapshot::Writer::write_file(snap, *snapshot_out);
    std::cout << "\nwrote snapshot " << *snapshot_out << " (v4 links "
              << snap.rels_v4.size() << ", v6 links " << snap.rels_v6.size() << ", hybrids "
              << snap.hybrids.size() << ")\n";
  }
  if (stats) print_stage_stats(std::cout);
  if (trace_out) {
    auto& collector = obs::TraceCollector::global();
    collector.write_file(*trace_out);
    std::cout << "\nwrote trace " << *trace_out << " (" << collector.event_count()
              << " events; load in chrome://tracing or ui.perfetto.dev)\n";
  }
  return 0;
}

int cmd_inspect(const std::string& mrt_path) {
  // Streamed record-at-a-time decode: constant memory however large the dump.
  // The sketch bundle keeps that property — fixed-size estimates instead of
  // exact per-entity sets, which is the whole point of the telemetry layer.
  mrt::MrtStreamReader stream(mrt_path);
  obs::sketch::IngestBundle sketches;
  std::size_t pit = 0;
  std::size_t rib4 = 0;
  std::size_t rib6 = 0;
  std::size_t bgp4mp = 0;
  std::size_t raw = 0;
  std::size_t entries = 0;
  while (auto framed = stream.next()) {
    const auto record =
        mrt::decode_record_body(framed->timestamp, framed->type, framed->subtype, framed->body);
    if (std::holds_alternative<mrt::PeerIndexTable>(record.body)) {
      ++pit;
    } else if (const auto* r = std::get_if<mrt::RibPrefixRecord>(&record.body)) {
      (r->prefix.version() == IpVersion::V4 ? rib4 : rib6) += 1;
      entries += r->entries.size();
      for (const auto& entry : r->entries) {
        sketches.add_route(r->prefix, entry.attrs.as_path.flatten());
      }
    } else if (std::holds_alternative<mrt::Bgp4mpMessage>(record.body)) {
      ++bgp4mp;
    } else {
      ++raw;
    }
  }
  std::cout << mrt_path << ": " << stream.bytes_read() << " bytes, " << stream.records_read()
            << " records\n"
            << "  PEER_INDEX_TABLE: " << pit << "\n"
            << "  RIB_IPV4_UNICAST: " << rib4 << "\n"
            << "  RIB_IPV6_UNICAST: " << rib6 << "\n"
            << "  BGP4MP:           " << bgp4mp << "\n"
            << "  other/raw:        " << raw << "\n"
            << "  RIB entries:      " << entries << "\n"
            << "  unique ASes:      ~" << sketches.ases.estimate_count() << "\n"
            << "  unique prefixes:  ~" << sketches.prefixes.estimate_count() << "\n"
            << "  unique AS links:  ~" << sketches.links.estimate_count() << "\n";
  const auto top = sketches.origins.top();
  if (!top.empty()) {
    std::cout << "\ntop origin ASes by RIB routes (CMS estimates over "
              << sketches.origins.total_weight() << " routes):\n";
    Table t({"origin", "~routes"});
    for (std::size_t i = 0; i < top.size() && i < 10; ++i) {
      t.row({"AS" + std::to_string(top[i].item), std::to_string(top[i].estimate)});
    }
    t.print(std::cout);
  }
  return 0;
}

snapshot::Snapshot load_snapshot(const std::string& path) {
  try {
    return snapshot::Reader::read_file(path);
  } catch (const Error& e) {
    throw Error(path + ": " + e.what());
  }
}

std::string link_name(const LinkKey& link) {
  return "AS" + std::to_string(link.first) + "-AS" + std::to_string(link.second);
}

std::string describe(const snapshot::Snapshot& snap) {
  return snap.header.source + " @ " + std::to_string(snap.header.timestamp) + " (v4 links " +
         std::to_string(snap.rels_v4.size()) + ", v6 links " +
         std::to_string(snap.rels_v6.size()) + ", hybrids " +
         std::to_string(snap.hybrids.size()) + ")";
}

int cmd_diff(const std::string& path_a, const std::string& path_b) {
  const auto a = load_snapshot(path_a);
  const auto b = load_snapshot(path_b);
  const auto diff = snapshot::diff_snapshots(a, b);

  std::cout << "a: " << path_a << ": " << describe(a) << "\n"
            << "b: " << path_b << ": " << describe(b) << "\n\n";

  Table t({"family", "appeared", "vanished", "flips", "unchanged"});
  const auto row = [&](const char* name, const snapshot::FamilyDiff& fam) {
    t.row({name, std::to_string(fam.appeared.size()), std::to_string(fam.vanished.size()),
           std::to_string(fam.flips.size()), std::to_string(fam.unchanged)});
  };
  row("v4", diff.v4);
  row("v6", diff.v6);
  t.print(std::cout);

  std::cout << "hybrids: formed " << diff.hybrids_formed.size() << ", resolved "
            << diff.hybrids_resolved.size() << ", stable " << diff.hybrids_stable << "\n";

  const auto show_flips = [](const char* name, const snapshot::FamilyDiff& fam) {
    if (fam.flips.empty()) return;
    std::cout << "\n" << name << " relationship flips (first "
              << std::min<std::size_t>(fam.flips.size(), 10) << " of " << fam.flips.size()
              << "):\n";
    for (std::size_t i = 0; i < fam.flips.size() && i < 10; ++i) {
      const auto& flip = fam.flips[i];
      std::cout << "  " << link_name(flip.link) << ": " << to_string(flip.before) << " -> "
                << to_string(flip.after) << "\n";
    }
  };
  show_flips("v4", diff.v4);
  show_flips("v6", diff.v6);

  std::cout << "\ntotal churn: " << diff.total_churn() << "\n";
  return 0;
}

int cmd_snapshot_upgrade(const std::string& in_path, const std::string& out_path) {
  const auto snap = load_snapshot(in_path);  // any readable version
  snapshot::Writer::write_file(snap, out_path);
  const snapshot::QueryIndex upgraded = snapshot::QueryIndex::open_mapped(out_path);
  std::cout << "wrote " << out_path << " (format v" << snapshot::kFormatVersion << ", "
            << upgraded.snapshot_bytes() << " bytes, from " << in_path << " format v"
            << snap.header.version << "; links " << upgraded.link_count() << ", ases "
            << upgraded.as_count() << ", hybrids " << upgraded.hybrid_count() << ")\n";
  return 0;
}

int cmd_query(const std::string& snap_path, Asn asn, std::optional<Asn> other, bool json) {
  // mmap-backed for v2 files: the kernel pages in only the header plus the
  // few link rows the binary search touches.  v1 files decode eagerly.
  const snapshot::QueryIndex index = [&] {
    try {
      return snapshot::QueryIndex::open_mapped(snap_path);
    } catch (const Error& e) {
      throw Error(snap_path + ": " + e.what());
    }
  }();
  if (!json) {
    std::cout << snap_path << ": format v" << index.format_version() << ", "
              << index.snapshot_bytes() << " bytes" << (index.is_mapped() ? ", mapped" : "")
              << "\n";
  }

  // --json renders through server/render, the same functions the query
  // daemon uses for its HTTP bodies — CLI stdout and a daemon response for
  // the same snapshot are byte-identical, including the not-found shape.
  if (other) {
    const auto info = index.lookup(asn, *other);
    if (!info) {
      const std::string why = "AS" + std::to_string(asn) + "-AS" + std::to_string(*other) +
                              ": no relationship recorded in " + snap_path;
      if (json) {
        std::cout << server::error_json(why);
      } else {
        std::cerr << why << "\n";
      }
      return 1;
    }
    if (json) {
      std::cout << server::link_json(asn, *other, *info);
      return 0;
    }
    std::cout << "AS" << asn << " -> AS" << *other << ": v4 " << to_string(info->rel_v4)
              << ", v6 " << to_string(info->rel_v6) << (info->hybrid ? ", hybrid" : "") << "\n";
    return 0;
  }

  if (!index.contains(asn)) {
    const std::string why = "AS" + std::to_string(asn) + ": not present in " + snap_path;
    if (json) {
      std::cout << server::error_json(why);
    } else {
      std::cerr << why << "\n";
    }
    return 1;
  }
  if (json) {
    std::cout << server::neighbors_json(asn, index.neighbors(asn));
    return 0;
  }
  const auto neighbors = index.neighbors(asn);
  std::cout << "AS" << asn << ": " << neighbors.size() << " neighbors in " << snap_path << "\n";
  Table t({"neighbor", "v4", "v6", "hybrid"});
  for (const auto& n : neighbors) {
    t.row({"AS" + std::to_string(n.asn), to_string(n.info.rel_v4), to_string(n.info.rel_v6),
           n.info.hybrid ? "yes" : ""});
  }
  t.print(std::cout);
  return 0;
}

// ------------------------------------------------------------------- serve

/// Signal plumbing for `serve`: INT/TERM request shutdown, HUP requests a
/// zero-downtime snapshot reload.  Handlers only set lock-free flags — no
/// object is ever touched from signal context (a handler racing the
/// daemon's destructor on another thread could otherwise use a dead
/// pointer); the serve loop forwards the reload flag on its next tick.
///
/// Why std::atomic<bool> and not volatile std::sig_atomic_t: [intro.races]
/// makes a lock-free atomic the only type that is BOTH async-signal-safe
/// (like sig_atomic_t) and race-free against *other threads* — and these
/// flags are read by the serve loop thread while the kernel may deliver
/// the signal on any thread.  sig_atomic_t only covers the
/// same-thread-interrupted-by-handler case; here it would be a data race.
/// The guarantee this rests on is lock-freedom, so assert it: a platform
/// where atomic<bool> takes a lock would deadlock inside a handler.
static_assert(std::atomic<bool>::is_always_lock_free,
              "signal handlers require lock-free atomic<bool>");
std::atomic<bool> g_serve_stop{false};
std::atomic<bool> g_serve_reload{false};

void serve_signal(int sig) {
  if (sig == SIGHUP) {
    g_serve_reload.store(true);
    return;
  }
  g_serve_stop.store(true);
}

int cmd_serve(const std::string& snap_path, std::uint16_t port, std::size_t jobs) {
  // Touch the sketch telemetry singleton so the htor_sketch_* gauges exist
  // (as zeros) on a snapshot-serving daemon too — a scrape config sees the
  // same series whether or not this process ever ingested a RIB.
  (void)obs::sketch::Telemetry::global();
  server::DaemonConfig config;
  config.port = port;
  config.jobs = jobs;
  server::QueryDaemon daemon(snap_path, config);

  struct sigaction sa = {};
  sa.sa_handler = serve_signal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGHUP, &sa, nullptr);

  daemon.start();
  std::cout << "serving " << snap_path << " on http://127.0.0.1:" << daemon.port()
            << " (epoch " << daemon.epoch() << ", " << jobs << " jobs)\n"
            << "endpoints: /v1/link/<a>/<b> /v1/neighbors/<asn> /v1/summary"
               " /v1/healthz /v1/metrics; POST /v1/reload or SIGHUP to hot-reload\n"
            << std::flush;

  while (!g_serve_stop.load()) {
    if (g_serve_reload.exchange(false)) daemon.request_reload();
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::cout << "shutting down...\n";
  daemon.stop();
  return 0;
}

// ------------------------------------------------------------------ follow

/// Batch mode of the continuous census: stream the update files through the
/// live pipeline and print one line per cut epoch.  No daemon — this is the
/// offline replay / validation path (`serve --follow` is the serving path).
int cmd_follow(const std::string& rib_path, const std::string& irr_path,
               std::vector<std::string> update_paths, std::size_t jobs,
               std::uint64_t epoch_every, std::size_t ring_capacity) {
  ThreadPool pool(jobs);
  mrt::ObservedRib rib;
  try {
    rib = core::load_rib(rib_path, pool);
  } catch (const Error& e) {
    throw Error("follow aborted: " + rib_path + ": " + e.what());
  }
  const auto dict = rpsl::mine_dictionary(rpsl::parse_objects(read_text_file(irr_path)));
  std::cout << rib_path << ": seeded " << rib.size() << " routes ("
            << rib.size_of(IpVersion::V6) << " IPv6); dictionary: " << dict.size()
            << " communities\n";

  core::InferenceConfig config;
  config.threads = jobs;
  live::IncrementalCensus census(rib, dict, config, rib_path,
                                 static_cast<std::uint32_t>(rib_epoch(rib_path)));

  live::PipelineConfig pipeline_config;
  pipeline_config.ring_capacity = ring_capacity;
  pipeline_config.epoch_every = epoch_every;
  live::Pipeline pipeline(census, pipeline_config);

  std::uint64_t epoch_no = 0;
  const auto result = pipeline.run(update_paths, pool, [&](const live::EpochReport& epoch) {
    ++epoch_no;
    const auto& r = epoch.report;
    std::cout << "epoch " << epoch_no << " @" << epoch.last_timestamp << ": applied "
              << epoch.applied << ", routes " << census.rib().size() << ", v6 links "
              << r.v6_links << ", typed v6 "
              << r.v6_coverage.covered_links << ", dual " << r.dual_links << ", hybrids "
              << r.hybrids.hybrids.size() << ", churn ~" << epoch.churn_ases << " AS/~"
              << epoch.churn_prefixes << " pfx/~" << epoch.churn_links << " link\n";
  });

  const auto& apply = census.rib().stats();
  const auto& stats = census.stats();
  std::cout << "\nstream done: " << result.records << " BGP4MP records ("
            << result.skipped << " non-update frames skipped), " << result.applied
            << " applied, " << result.epochs << " epochs\n"
            << "apply mix: " << apply.announced << " new, " << apply.replaced << " replaced, "
            << apply.duplicates << " duplicate announces; " << apply.withdrawn
            << " withdrawn (" << apply.withdrawn_missing << " for unknown routes); "
            << apply.non_updates << " non-UPDATE messages\n"
            << "valley telemetry over announced paths: " << stats.valley_free_seen
            << " valley-free, " << stats.valleys_seen << " valleys, " << stats.incomplete_seen
            << " incomplete\n";
  return 0;
}

/// The serving mode: FollowService runs the pipeline on a background thread
/// and swaps each epoch's QueryIndex into the daemon; this loop only owns
/// signal plumbing.  --jobs sizes the census/epoch pool (the daemon keeps
/// its own default connection workers).
int cmd_serve_follow(const std::string& rib_path, const std::string& irr_path,
                     std::vector<std::string> update_paths, std::uint16_t port,
                     std::size_t jobs, std::uint64_t epoch_every, std::size_t ring_capacity) {
  live::FollowConfig config;
  config.daemon.port = port;
  config.jobs = jobs;
  config.pipeline.epoch_every = epoch_every;
  config.pipeline.ring_capacity = ring_capacity;
  config.inference.threads = jobs;
  live::FollowService service(rib_path, irr_path, std::move(update_paths), config);

  struct sigaction sa = {};
  sa.sa_handler = serve_signal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGHUP, &sa, nullptr);

  service.start();
  std::cout << "serving continuous census on http://127.0.0.1:" << service.port()
            << " (seed " << rib_path << ", epoch every " << epoch_every
            << " updates)\n"
            << "endpoints: /v1/link/<a>/<b> /v1/neighbors/<asn> /v1/summary"
               " /v1/healthz /v1/metrics /metrics\n"
            << std::flush;

  while (!g_serve_stop.load()) {
    // SIGHUP has no file to reload here; request_reload() reports that
    // gracefully through /v1/metrics rather than being silently dropped.
    if (g_serve_reload.exchange(false)) service.daemon().request_reload();
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::cout << "shutting down...\n";
  service.stop();
  const auto result = service.result();
  std::cout << "applied " << result.applied << " updates, published "
            << service.epochs_published() << " epochs\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Split the command line into positionals and options, which are accepted
  // anywhere (before or after the subcommand's file arguments).  Anything
  // that *looks* like an option but is not one the CLI knows is rejected
  // with a reasoned error — silently treating "--frobnicate" as an input
  // file would turn a typo into a confusing "cannot open" failure later.
  std::vector<std::string> args;
  std::optional<std::size_t> jobs;
  bool streaming = true;
  bool json = false;
  bool stats = false;
  bool follow = false;
  std::optional<std::string> snapshot_out;
  std::optional<std::string> trace_out;
  std::optional<std::uint16_t> port;
  std::optional<std::uint64_t> epoch_every;
  std::optional<std::size_t> ring_capacity;
  std::optional<std::size_t> update_events;
  std::optional<std::size_t> scale;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--no-stream") {
      streaming = false;
      continue;
    }
    if (arg == "--follow") {
      follow = true;
      continue;
    }
    if (arg == "--epoch-every" || arg.rfind("--epoch-every=", 0) == 0) {
      std::string value;
      if (arg.size() > 13 && arg[13] == '=') {
        value = arg.substr(14);
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::cerr << "error: --epoch-every requires a value\n";
        return 2;
      }
      const auto parsed = parse_epoch_every(value);
      if (!parsed) return 2;
      epoch_every = *parsed;
      continue;
    }
    if (arg == "--ring-capacity" || arg.rfind("--ring-capacity=", 0) == 0) {
      std::string value;
      if (arg.size() > 15 && arg[15] == '=') {
        value = arg.substr(16);
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::cerr << "error: --ring-capacity requires a value\n";
        return 2;
      }
      const auto parsed = parse_ring_capacity(value);
      if (!parsed) return 2;
      ring_capacity = *parsed;
      continue;
    }
    if (arg == "--update-events" || arg.rfind("--update-events=", 0) == 0) {
      std::string value;
      if (arg.size() > 15 && arg[15] == '=') {
        value = arg.substr(16);
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::cerr << "error: --update-events requires a value\n";
        return 2;
      }
      const auto parsed = parse_update_events(value);
      if (!parsed) return 2;
      update_events = *parsed;
      continue;
    }
    if (arg == "--scale" || arg.rfind("--scale=", 0) == 0) {
      std::string value;
      if (arg.size() > 7 && arg[7] == '=') {
        value = arg.substr(8);
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::cerr << "error: --scale requires a value\n";
        return 2;
      }
      const auto parsed = parse_scale(value);
      if (!parsed) return 2;
      scale = *parsed;
      continue;
    }
    if (arg == "--stats") {
      stats = true;
      continue;
    }
    if (arg == "--trace-out" || arg.rfind("--trace-out=", 0) == 0) {
      if (arg.size() > 11 && arg[11] == '=') {
        trace_out = arg.substr(12);
      } else if (i + 1 < argc) {
        trace_out = argv[++i];
      }
      if (!trace_out || trace_out->empty()) {
        std::cerr << "error: --trace-out requires a non-empty path\n";
        return 2;
      }
      continue;
    }
    if (arg == "--json") {
      json = true;
      continue;
    }
    if (arg == "--jobs" || arg == "-j") {
      if (i + 1 >= argc) {
        std::cerr << "error: --jobs requires a value\n";
        return 2;
      }
      const auto parsed = parse_jobs(argv[++i]);
      if (!parsed) return 2;
      jobs = *parsed;
      continue;
    }
    if (arg.rfind("--jobs=", 0) == 0) {
      const auto parsed = parse_jobs(arg.substr(7));
      if (!parsed) return 2;
      jobs = *parsed;
      continue;
    }
    if (arg == "--port" || arg.rfind("--port=", 0) == 0) {
      std::string value;
      if (arg.size() > 6 && arg[6] == '=') {
        value = arg.substr(7);
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::cerr << "error: --port requires a value\n";
        return 2;
      }
      const auto parsed = parse_port(value);
      if (!parsed) return 2;
      port = *parsed;
      continue;
    }
    if (arg == "--snapshot-out" || arg.rfind("--snapshot-out=", 0) == 0) {
      if (arg.size() > 14 && arg[14] == '=') {
        snapshot_out = arg.substr(15);
      } else if (i + 1 < argc) {
        snapshot_out = argv[++i];
      }
      // Reject an empty/missing path now, not after the whole census has run.
      if (!snapshot_out || snapshot_out->empty()) {
        std::cerr << "error: --snapshot-out requires a non-empty path\n";
        return 2;
      }
      continue;
    }
    if (arg.size() > 1 && arg[0] == '-') {
      std::cerr << "error: unknown option '" << arg << "'\n";
      return usage();
    }
    args.push_back(arg);
  }
  if (args.empty()) return usage();
  const std::string& cmd = args[0];
  if (snapshot_out && cmd != "census") {
    std::cerr << "error: --snapshot-out is only valid with the census subcommand\n";
    return 2;
  }
  if (stats && cmd != "census") {
    std::cerr << "error: --stats is only valid with the census subcommand\n";
    return 2;
  }
  if (trace_out && cmd != "census") {
    std::cerr << "error: --trace-out is only valid with the census subcommand\n";
    return 2;
  }
  if (json && cmd != "query") {
    std::cerr << "error: --json is only valid with the query subcommand\n";
    return 2;
  }
  if (port && cmd != "serve") {
    std::cerr << "error: --port is only valid with the serve subcommand\n";
    return 2;
  }
  if (follow && cmd != "serve") {
    std::cerr << "error: --follow is only valid with the serve subcommand\n";
    return 2;
  }
  if ((epoch_every || ring_capacity) && cmd != "follow" && !(cmd == "serve" && follow)) {
    std::cerr << "error: --epoch-every/--ring-capacity are only valid with follow or"
                 " serve --follow\n";
    return 2;
  }
  if (update_events && cmd != "generate") {
    std::cerr << "error: --update-events is only valid with the generate subcommand\n";
    return 2;
  }
  if (scale && cmd != "generate") {
    std::cerr << "error: --scale is only valid with the generate subcommand\n";
    return 2;
  }
  try {
    if (cmd == "generate" && (args.size() == 2 || args.size() == 3)) {
      std::uint64_t seed = 42;
      if (args.size() == 3) {
        const auto parsed = parse_seed(args[2]);
        if (!parsed) return 2;
        seed = *parsed;
      }
      return cmd_generate(args[1], seed, update_events.value_or(0), scale.value_or(0));
    }
    if (cmd == "census" && args.size() == 3) {
      return cmd_census(args[1], args[2], jobs.value_or(1), streaming, snapshot_out, stats,
                        trace_out);
    }
    if (cmd == "inspect" && args.size() == 2) return cmd_inspect(args[1]);
    if (cmd == "diff" && args.size() == 3) return cmd_diff(args[1], args[2]);
    if (cmd == "snapshot-upgrade" && args.size() == 3) {
      return cmd_snapshot_upgrade(args[1], args[2]);
    }
    if (cmd == "query" && (args.size() == 3 || args.size() == 4)) {
      const auto asn = parse_asn_arg(args[2]);
      if (!asn) return 2;
      std::optional<Asn> other;
      if (args.size() == 4) {
        const auto parsed = parse_asn_arg(args[3]);
        if (!parsed) return 2;
        other = *parsed;
      }
      return cmd_query(args[1], *asn, other, json);
    }
    if (cmd == "serve" && !follow && args.size() == 2) {
      // serve defaults --jobs to 0 (one connection worker per hardware
      // thread): unlike the batch census, a daemon's default should not be
      // a single inline worker that serializes every client.
      return cmd_serve(args[1], port.value_or(8080), jobs.value_or(0));
    }
    if (cmd == "follow" && args.size() >= 4) {
      return cmd_follow(args[1], args[2], {args.begin() + 3, args.end()}, jobs.value_or(1),
                        epoch_every.value_or(0), ring_capacity.value_or(1024));
    }
    if (cmd == "serve" && follow && args.size() >= 4) {
      return cmd_serve_follow(args[1], args[2], {args.begin() + 3, args.end()},
                              port.value_or(8080), jobs.value_or(1), epoch_every.value_or(0),
                              ring_capacity.value_or(1024));
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
