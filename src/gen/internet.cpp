#include "gen/internet.hpp"

#include <algorithm>
#include <array>

#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace htor::gen {

namespace {

constexpr std::uint64_t kSaltTe = 0x7e0ull;
constexpr std::uint64_t kSaltGeo = 0x9e0ull;

/// One link while the topology is under construction.
struct LinkSpec {
  Asn a = 0;
  Asn b = 0;
  Relationship rel = Relationship::Unknown;     // rel(a -> b), IPv4 ground truth
  Relationship rel_v6 = Relationship::Unknown;  // rel(a -> b), IPv6 ground truth
  bool v4 = true;
  bool v6 = false;
};

struct LocPrefScheme {
  std::uint32_t customer, peer, provider;
};

constexpr std::array<LocPrefScheme, 6> kLocPrefSchemes{{
    {100, 90, 80},
    {200, 150, 100},
    {120, 110, 100},
    {300, 280, 250},
    {150, 120, 90},
    {130, 100, 70},
}};

struct CommunityStyle {
  std::uint16_t customer, peer, provider, sibling, te_locpref, prepend, geo_base;
};

constexpr std::array<CommunityStyle, 3> kCommunityStyles{{
    {100, 200, 300, 400, 70, 7001, 5001},
    {1000, 2000, 3000, 4000, 900, 8801, 6001},
    {65101, 65102, 65103, 65104, 65050, 65201, 65301},
}};

}  // namespace

GenParams small_params(std::uint64_t seed) {
  GenParams p;
  p.seed = seed;
  p.tier1_count = 6;
  p.tier2_count = 30;
  p.tier3_count = 60;
  p.stub_count = 200;
  p.sibling_pairs = 3;
  p.exclusive_cone_t2 = 3;
  p.v6_only_peer_links = 80;
  p.relaxed_count = 6;
  p.healer_pairs = 2;
  p.vantage_tier1 = 1;
  p.vantage_tier2 = 4;
  p.vantage_tier3 = 4;
  p.vantage_stub = 3;
  return p;
}

GenParams scale_params(std::size_t total_ases, std::uint64_t seed) {
  GenParams p;
  p.seed = seed;
  p.tier1_count = 16;
  p.tier2_count = 900;
  p.tier3_count = 9000;
  const std::size_t core = p.tier1_count + p.tier2_count + p.tier3_count;
  p.stub_count = total_ases > core ? total_ases - core : 1;
  p.sibling_pairs = 40;
  // 900 tier-2s at the default 0.05 would mesh into ~20k peerings; thin it
  // so the core link count stays proportionate to the default net's.
  p.t2_peer_prob = 0.01;
  p.v6_only_peer_links = 2000;
  p.relaxed_count = 80;
  // TE overrides draw per (AS, origin) pair — O(N²) at this scale, and the
  // scaled collector synthesizes community-free routes anyway.
  p.te_enabled_prob = 0.0;
  // ~90k stub aut-nums would dominate both the IRR dump and the miner;
  // the community-bearing transit core still publishes.
  p.publish_stub = 0.0;
  p.publish_tier3 = 0.10;
  return p;
}

/// Builder with access to SyntheticInternet internals.
class Generator {
 public:
  explicit Generator(const GenParams& params) : rng_(params.seed) { net_.params_ = params; }

  SyntheticInternet build() {
    make_ases();
    make_links();
    assign_v6();
    plant_evangelist_transit();
    ensure_v6_transit();
    add_v6_only_peerings();
    plant_hybrids();
    populate();
    make_policies();
    pick_vantages();
    make_te();
    return std::move(net_);
  }

 private:
  const GenParams& p() const { return net_.params_; }

  AsProfile& prof(Asn asn) { return net_.profiles_.at(asn); }

  void add_as(Asn asn, Tier tier, bool v6_capable) {
    AsProfile profile;
    profile.asn = asn;
    profile.tier = tier;
    profile.v6_capable = v6_capable;
    net_.profiles_.emplace(asn, profile);
  }

  void make_ases() {
    for (std::size_t i = 0; i < p().tier1_count; ++i) {
      tier1_.push_back(static_cast<Asn>(10 + i));
      // 2010-style IPv6 tier-1 layer: the disputants (0, 1) and the
      // evangelist (2) run v6; the rest mostly lag.
      const bool v6 = i < 3 || rng_.chance(p().v6_tier1_extra);
      add_as(tier1_.back(), Tier::Tier1, v6);
    }
    if (p().v6_evangelist && tier1_.size() >= 3) {
      net_.evangelist_ = tier1_[2];
    }
    for (std::size_t i = 0; i < p().tier2_count; ++i) {
      tier2_.push_back(static_cast<Asn>(100 + i));
      add_as(tier2_.back(), Tier::Tier2, rng_.chance(p().v6_tier2));
    }
    for (std::size_t i = 0; i < p().tier3_count; ++i) {
      tier3_.push_back(static_cast<Asn>(1000 + i));
      add_as(tier3_.back(), Tier::Tier3, rng_.chance(p().v6_tier3));
    }
    for (std::size_t i = 0; i < p().stub_count; ++i) {
      stubs_.push_back(static_cast<Asn>(10000 + i));
      add_as(stubs_.back(), Tier::Stub, rng_.chance(p().v6_stub));
    }
    if (p().v6_tier1_dispute && tier1_.size() >= 2) {
      net_.dispute_ = {tier1_[0], tier1_[1]};
    }
  }

  void add_link(Asn a, Asn b, Relationship rel_a_to_b) {
    const LinkKey key(a, b);
    if (!link_index_.emplace(key, links_.size()).second) return;  // already linked
    LinkSpec spec;
    spec.a = a;
    spec.b = b;
    spec.rel = rel_a_to_b;
    spec.rel_v6 = rel_a_to_b;
    by_as_[a].push_back(links_.size());
    by_as_[b].push_back(links_.size());
    links_.push_back(spec);
    if (rel_a_to_b == Relationship::C2P) {
      provider_links_[a].push_back(links_.size() - 1);
      ++customer_count_[b];
    } else if (rel_a_to_b == Relationship::P2C) {
      provider_links_[b].push_back(links_.size() - 1);
      ++customer_count_[a];
    }
  }

  bool linked(Asn a, Asn b) const { return link_index_.count(LinkKey(a, b)) != 0; }

  /// Pools small enough for the exact weighted draw.  Every pool of the
  /// default and small presets is under this, so their RNG streams (and
  /// therefore the nets themselves) are unchanged by the sampled fast path.
  static constexpr std::size_t kExactProviderPool = 2048;
  /// Candidates drawn per sampled pick; the weighting is applied among them.
  static constexpr std::size_t kProviderSample = 64;

  /// Preferential attachment: providers with more customers attract more.
  /// Huge pools (scale_params' 9000 tier-3s × ~90k stub customers) would
  /// make the exact draw O(|pool|) per customer, so they sample a small
  /// uniform subset and weight within it — the rich-get-richer bias
  /// survives, just estimated from 64 candidates instead of all of them.
  Asn pick_provider(const std::vector<Asn>& candidates, Asn customer) {
    if (candidates.size() > kExactProviderPool) {
      std::array<Asn, kProviderSample> sample{};
      std::array<double, kProviderSample> weights{};
      double total = 0;
      for (std::size_t k = 0; k < kProviderSample; ++k) {
        const Asn c = candidates[rng_.index(candidates.size())];
        sample[k] = c;
        weights[k] = c == customer || linked(c, customer)
                         ? 0.0
                         : 1.0 + static_cast<double>(customer_count_[c]);
        total += weights[k];
      }
      if (total <= 0.0) return 0;
      return sample[rng_.weighted(weights)];
    }
    std::vector<double> weights;
    weights.reserve(candidates.size());
    for (Asn c : candidates) {
      weights.push_back(c == customer || linked(c, customer)
                            ? 0.0
                            : 1.0 + static_cast<double>(customer_count_[c]));
    }
    double total = 0;
    for (double w : weights) total += w;
    if (total <= 0.0) return 0;
    return candidates[rng_.weighted(weights)];
  }

  void make_links() {
    // Tier-1 clique (p2p).
    for (std::size_t i = 0; i < tier1_.size(); ++i) {
      for (std::size_t j = i + 1; j < tier1_.size(); ++j) {
        add_link(tier1_[i], tier1_[j], Relationship::P2P);
      }
    }

    // Exclusive cones: the first tier-2s single-home behind each disputing
    // tier-1, giving strict valley-free IPv6 routing something to partition.
    std::size_t t2_index = 0;
    const auto [dispute_a, dispute_b] = net_.dispute_;
    if (dispute_a != 0) {
      for (std::size_t i = 0; i < p().exclusive_cone_t2 && t2_index < tier2_.size(); ++i) {
        const Asn t2 = tier2_[t2_index++];
        add_link(t2, dispute_a, Relationship::C2P);
        prof(t2).v6_capable = true;
        cone_a_.push_back(t2);
      }
      for (std::size_t i = 0; i < p().exclusive_cone_t2 && t2_index < tier2_.size(); ++i) {
        const Asn t2 = tier2_[t2_index++];
        add_link(t2, dispute_b, Relationship::C2P);
        prof(t2).v6_capable = true;
        cone_b_.push_back(t2);
      }
    }

    // Remaining tier-2s multi-home across tier-1s.
    for (; t2_index < tier2_.size(); ++t2_index) {
      const Asn t2 = tier2_[t2_index];
      const std::uint32_t providers = 2 + (rng_.chance(0.4) ? 1 : 0) + (rng_.chance(0.15) ? 1 : 0);
      for (std::uint32_t k = 0; k < providers; ++k) {
        const Asn provider = pick_provider(tier1_, t2);
        if (provider != 0) add_link(t2, provider, Relationship::C2P);
      }
    }

    // Tier-2 peering mesh.
    for (std::size_t i = 0; i < tier2_.size(); ++i) {
      for (std::size_t j = i + 1; j < tier2_.size(); ++j) {
        if (rng_.chance(p().t2_peer_prob) && !linked(tier2_[i], tier2_[j])) {
          add_link(tier2_[i], tier2_[j], Relationship::P2P);
        }
      }
    }

    // Evangelist open peering: IPv4 peerings with many tier-2s/tier-3s.
    if (net_.evangelist_ != 0) {
      std::vector<Asn> t2_pool = tier2_;
      rng_.shuffle(t2_pool);
      std::size_t added = 0;
      for (Asn t2 : t2_pool) {
        if (added >= p().evangelist_peer_t2) break;
        // The disputants' exclusive cones stay exclusive: free transit from
        // the evangelist would quietly heal the partition the paper
        // observes.
        if (in(cone_a_, t2) || in(cone_b_, t2)) continue;
        if (!linked(net_.evangelist_, t2)) {
          add_link(net_.evangelist_, t2, Relationship::P2P);
          ++added;
        }
      }
      std::vector<Asn> t3_pool = tier3_;
      rng_.shuffle(t3_pool);
      added = 0;
      for (Asn t3 : t3_pool) {
        if (added >= p().evangelist_peer_t3) break;
        if (!linked(net_.evangelist_, t3)) {
          add_link(net_.evangelist_, t3, Relationship::P2P);
          ++added;
        }
      }
    }

    // Tier-3: transit from tier-2 (sometimes tier-1), some peering.
    for (Asn t3 : tier3_) {
      const std::uint32_t providers = 1 + (rng_.chance(0.45) ? 1 : 0) + (rng_.chance(0.1) ? 1 : 0);
      for (std::uint32_t k = 0; k < providers; ++k) {
        const auto& pool = rng_.chance(p().t3_tier1_provider_prob) ? tier1_ : tier2_;
        const Asn provider = pick_provider(pool, t3);
        if (provider != 0) add_link(t3, provider, Relationship::C2P);
      }
    }
    for (Asn t3 : tier3_) {
      if (!rng_.chance(p().t3_peer_prob)) continue;
      const std::uint32_t count = rng_.chance(0.3) ? 2 : 1;
      for (std::uint32_t k = 0; k < count; ++k) {
        const Asn other = tier3_[rng_.index(tier3_.size())];
        if (other != t3 && !linked(t3, other)) add_link(t3, other, Relationship::P2P);
      }
    }

    // Stubs: 1-2 providers from tier-2/tier-3; occasional mutual peering.
    for (Asn stub : stubs_) {
      const auto& first_pool =
          rng_.chance(p().stub_tier2_provider_prob) ? tier2_ : tier3_;
      const Asn first = pick_provider(first_pool, stub);
      if (first != 0) add_link(stub, first, Relationship::C2P);
      // Single-home behind exclusive-cone providers to deepen the cones.
      const bool exclusive = first != 0 && (in(cone_a_, first) || in(cone_b_, first));
      if (!exclusive && rng_.chance(0.35)) {
        const auto& pool = rng_.chance(p().stub_tier2_provider_prob) ? tier2_ : tier3_;
        const Asn second = pick_provider(pool, stub);
        if (second != 0) add_link(stub, second, Relationship::C2P);
      }
      if (rng_.chance(p().stub_peer_prob)) {
        const Asn other = stubs_[rng_.index(stubs_.size())];
        if (other != stub && !linked(stub, other)) add_link(stub, other, Relationship::P2P);
      }
    }

    // Siblings: pairs of tier-3 ASes under the same organization.
    for (std::size_t i = 0; i + 1 < tier3_.size() && i / 2 < p().sibling_pairs; i += 2) {
      if (!linked(tier3_[i], tier3_[i + 1])) {
        add_link(tier3_[i], tier3_[i + 1], Relationship::S2S);
      }
    }
  }

  static bool in(const std::vector<Asn>& v, Asn asn) {
    return std::find(v.begin(), v.end(), asn) != v.end();
  }

  /// Append a fully-formed spec (v6-only links) keeping the indexes fresh.
  void append_spec(const LinkSpec& spec) {
    link_index_.emplace(LinkKey(spec.a, spec.b), links_.size());
    by_as_[spec.a].push_back(links_.size());
    by_as_[spec.b].push_back(links_.size());
    links_.push_back(spec);
  }

  /// rel_v6(spec) as seen from `from`.
  static Relationship rel_v6_of(const LinkSpec& spec, Asn from) {
    return spec.a == from ? spec.rel_v6 : reverse(spec.rel_v6);
  }

  /// True when `asn` has at least one IPv6 link it can buy transit over
  /// (IPv6 ground-truth relationship, so evangelist free transit counts).
  bool has_v6_transit(Asn asn) const {
    auto it = by_as_.find(asn);
    if (it == by_as_.end()) return false;
    for (std::size_t idx : it->second) {
      const LinkSpec& spec = links_[idx];
      if (spec.v6 && rel_v6_of(spec, asn) == Relationship::C2P) return true;
    }
    return false;
  }

  void assign_v6() {
    const auto [dispute_a, dispute_b] = net_.dispute_;
    for (auto& spec : links_) {
      const bool both_capable = prof(spec.a).v6_capable && prof(spec.b).v6_capable;
      if (!both_capable) continue;
      const bool tier1_link =
          prof(spec.a).tier == Tier::Tier1 && prof(spec.b).tier == Tier::Tier1;
      if (tier1_link) {
        const LinkKey key(spec.a, spec.b);
        const bool disputed = dispute_a != 0 && key == LinkKey(dispute_a, dispute_b);
        spec.v6 = !disputed;  // the dispute pair refuses to peer in IPv6
        continue;
      }
      if (spec.a == net_.evangelist_ || spec.b == net_.evangelist_) {
        spec.v6 = true;  // the evangelist's peers all want its v6
        continue;
      }
      spec.v6 = rng_.chance(p().dual_link_prob);
    }
  }

  /// The evangelist converts its dual-stack peerings into free IPv6
  /// transit: the archetypal p2p(v4)/p2c(v6) hybrid links.
  void plant_evangelist_transit() {
    const Asn ev = net_.evangelist_;
    if (ev == 0) return;
    auto it = by_as_.find(ev);
    if (it == by_as_.end()) return;
    const auto [dispute_a, dispute_b] = net_.dispute_;
    for (std::size_t idx : it->second) {
      LinkSpec& spec = links_[idx];
      if (!(spec.v4 && spec.v6) || spec.rel != Relationship::P2P) continue;
      // The disputants accept free transit from no one — that refusal is
      // what keeps strict valley-free IPv6 routing partitioned.
      if (spec.a == dispute_a || spec.a == dispute_b || spec.b == dispute_a ||
          spec.b == dispute_b) {
        continue;
      }
      if (!rng_.chance(p().evangelist_free_transit)) continue;
      spec.rel_v6 = spec.a == ev ? Relationship::P2C : Relationship::C2P;
      record_hybrid(spec);
    }
  }

  /// Every v6-capable AS must keep at least one IPv6 transit path, or it
  /// cannot participate in the v6 plane at all.  With a thin v6 tier-1
  /// layer, stranded tier-2s buy v6-only transit from a tier-2 that already
  /// has one (the deep v6-only hierarchy of 2010); lower tiers either get a
  /// forced-v6 transit link or are demoted.  Processed top-down so demotions
  /// cascade correctly.
  void ensure_v6_transit() {
    // Tier-2s first: collect the ones already settled (direct v6 transit,
    // which includes evangelist free transit).
    std::vector<Asn> settled_t2;
    std::vector<Asn> stranded_t2;
    for (Asn asn : tier2_) {
      AsProfile& profile = prof(asn);
      if (!profile.v6_capable) continue;
      const bool exclusive = in(cone_a_, asn) || in(cone_b_, asn);
      // Free transit from the evangelist is usually the *only* v6 transit a
      // network bothers with (2010: why pay for v6 when HE is free?).
      bool ev_transit = false;
      std::size_t have = 0;
      for (std::size_t idx : by_as_[asn]) {
        const LinkSpec& spec = links_[idx];
        if (spec.v6 && rel_v6_of(spec, asn) == Relationship::C2P) {
          ++have;
          const Asn provider = spec.a == asn ? spec.b : spec.a;
          if (provider == net_.evangelist_) ev_transit = true;
        }
      }
      // Multi-homed tier-2s otherwise keep at least two v6 transit links so
      // the v6-exclusive cones stay confined to the planted single-homed
      // population.
      const std::size_t want = ev_transit ? have : (exclusive ? 1 : 2);
      for (std::size_t idx : provider_links_[asn]) {
        if (have >= want) break;
        LinkSpec& spec = links_[idx];
        if (spec.v6) continue;
        const Asn provider = spec.a == asn ? spec.b : spec.a;
        if (!prof(provider).v6_capable) continue;
        spec.v6 = true;
        ++have;
      }
      if (have > 0 || has_v6_transit(asn)) {
        settled_t2.push_back(asn);
      } else {
        stranded_t2.push_back(asn);
      }
    }
    for (Asn asn : stranded_t2) {
      if (settled_t2.empty()) {
        demote(asn);
        continue;
      }
      // Buy v6-only transit from an already-settled tier-2.
      Asn provider = settled_t2[rng_.index(settled_t2.size())];
      if (provider == asn || linked(asn, provider)) {
        demote(asn);
        continue;
      }
      LinkSpec spec;
      spec.a = asn;
      spec.b = provider;
      spec.rel = Relationship::C2P;
      spec.rel_v6 = Relationship::C2P;
      spec.v4 = false;
      spec.v6 = true;
      append_spec(spec);
      settled_t2.push_back(asn);
    }

    auto fix_tier = [this](const std::vector<Asn>& tier) {
      for (Asn asn : tier) {
        AsProfile& profile = prof(asn);
        if (!profile.v6_capable) continue;
        if (has_v6_transit(asn)) continue;
        std::size_t fallback = links_.size();
        for (std::size_t idx : provider_links_[asn]) {
          const LinkSpec& spec = links_[idx];
          const Asn provider = spec.a == asn ? spec.b : spec.a;
          // The provider must itself be able to reach the v6 plane.
          if (prof(provider).v6_capable && has_v6_transit(provider)) fallback = idx;
          if (prof(provider).tier == Tier::Tier1 && prof(provider).v6_capable) fallback = idx;
        }
        if (fallback < links_.size()) {
          links_[fallback].v6 = true;
        } else {
          demote(asn);
        }
      }
    };
    fix_tier(tier3_);
    fix_tier(stubs_);
  }

  void demote(Asn asn) {
    prof(asn).v6_capable = false;
    auto it = by_as_.find(asn);
    if (it == by_as_.end()) return;
    for (std::size_t idx : it->second) links_[idx].v6 = false;
  }

  void add_v6_only_peerings() {
    // Healer pairs first: bridge the exclusive cones with v6-only peerings
    // whose endpoints will run relaxed IPv6 export.
    for (std::size_t i = 0; i < p().healer_pairs; ++i) {
      if (i >= cone_a_.size() || i >= cone_b_.size()) break;
      const Asn a = cone_a_[i];
      const Asn b = cone_b_[i];
      if (linked(a, b)) continue;
      LinkSpec spec;
      spec.a = a;
      spec.b = b;
      spec.rel = Relationship::P2P;
      spec.rel_v6 = Relationship::P2P;
      spec.v4 = false;
      spec.v6 = true;
      append_spec(spec);
      healers_.push_back(a);
      healers_.push_back(b);
    }

    // General v6-only peerings: new peerings that never existed in IPv4.
    // Tier-2s enter the pool twice: the bulk of early v6 peering happened
    // between sizable networks, and their links are what collectors see.
    std::vector<Asn> pool;
    for (Asn asn : tier2_) {
      // Exclusive-cone members stay out: a random v6 peering into a cone
      // would give strict valley-free routing a way around the partition.
      if (in(cone_a_, asn) || in(cone_b_, asn)) continue;
      if (prof(asn).v6_capable) {
        pool.push_back(asn);
        pool.push_back(asn);
      }
    }
    for (Asn asn : tier3_) {
      if (prof(asn).v6_capable) pool.push_back(asn);
    }
    for (Asn asn : stubs_) {
      if (prof(asn).v6_capable && rng_.chance(0.3)) pool.push_back(asn);
    }
    if (pool.size() < 2) return;
    std::size_t added = 0;
    std::size_t attempts = 0;
    while (added < p().v6_only_peer_links && attempts < 20 * p().v6_only_peer_links) {
      ++attempts;
      const Asn a = pool[rng_.index(pool.size())];
      const Asn b = pool[rng_.index(pool.size())];
      if (a == b || linked(a, b)) continue;
      LinkSpec spec;
      spec.a = a;
      spec.b = b;
      spec.rel = Relationship::P2P;
      spec.rel_v6 = Relationship::P2P;
      spec.v4 = false;
      spec.v6 = true;
      append_spec(spec);
      ++added;
    }
  }

  std::size_t count_v6_providers(Asn asn) const {
    std::size_t n = 0;
    auto it = by_as_.find(asn);
    if (it == by_as_.end()) return 0;
    for (std::size_t idx : it->second) {
      const LinkSpec& spec = links_[idx];
      if (spec.v6 && rel_v6_of(spec, asn) == Relationship::C2P) ++n;
    }
    return n;
  }

  /// rel(spec, from): relationship as seen from `from`.
  static Relationship rel_of(const LinkSpec& spec, Asn from) {
    return spec.a == from ? spec.rel : reverse(spec.rel);
  }

  void plant_hybrids() {
    // Candidate sets over dual-stack links.
    std::vector<std::size_t> dual_p2p;
    std::vector<std::size_t> dual_p2c;
    std::size_t dual_count = 0;
    std::unordered_map<Asn, std::size_t> degree;
    for (const auto& spec : links_) {
      ++degree[spec.a];
      ++degree[spec.b];
    }
    for (std::size_t i = 0; i < links_.size(); ++i) {
      const LinkSpec& spec = links_[i];
      if (!(spec.v4 && spec.v6)) continue;
      ++dual_count;
      // Hybrids live among transit-capable ASes (paper: "among tier-1 or
      // tier-2 ASes with large numbers of connections"); stub links are not
      // candidates.
      if (prof(spec.a).tier == Tier::Stub || prof(spec.b).tier == Tier::Stub) continue;
      if (spec.rel_v6 != spec.rel) continue;  // already a planted hybrid
      // A hybrid flip must never hand a disputing tier-1 a provider, or the
      // partition quietly heals.
      {
        const auto [da, db] = net_.dispute_;
        if (spec.a == da || spec.a == db || spec.b == da || spec.b == db) continue;
      }
      if (spec.rel == Relationship::P2P) {
        dual_p2p.push_back(i);
      } else if (spec.rel == Relationship::P2C || spec.rel == Relationship::C2P) {
        dual_p2c.push_back(i);
      }
    }

    const std::size_t want_total =
        static_cast<std::size_t>(p().hybrid_fraction * static_cast<double>(dual_count) + 0.5);
    const std::size_t want_reversal = p().plant_reversal && want_total > 0 ? 1 : 0;
    std::size_t want_p2p4 = static_cast<std::size_t>(
        p().hybrid_p2p4_transit6_share * static_cast<double>(want_total) + 0.5);
    if (want_p2p4 + want_reversal > want_total) want_p2p4 = want_total - want_reversal;
    const std::size_t want_p2c4 = want_total - want_p2p4 - want_reversal;
    // The evangelist's free-transit links already consumed part of the
    // p2p(v4)/transit(v6) budget.
    const std::size_t already = net_.hybrids_.size();
    want_p2p4 = want_p2p4 > already ? want_p2p4 - already : 0;

    // Weighted draw without replacement, biased toward well-connected links
    // (the paper: hybrids sit among tier-1/tier-2 ASes).
    auto weighted_draw = [&](std::vector<std::size_t>& candidates) -> std::size_t {
      if (candidates.empty()) return links_.size();
      std::vector<double> weights;
      weights.reserve(candidates.size());
      for (std::size_t idx : candidates) {
        weights.push_back(static_cast<double>(
            std::min(degree[links_[idx].a], degree[links_[idx].b])));
      }
      const std::size_t pick = rng_.weighted(weights);
      const std::size_t link_idx = candidates[pick];
      candidates[pick] = candidates.back();
      candidates.pop_back();
      return link_idx;
    };

    // Type 1: p2p in IPv4, transit in IPv6 (free/paid v6 transit over what
    // is a v4 peering).  The better-connected side becomes the v6 provider.
    for (std::size_t k = 0; k < want_p2p4 && !dual_p2p.empty(); ++k) {
      const std::size_t idx = weighted_draw(dual_p2p);
      if (idx >= links_.size()) break;
      LinkSpec& spec = links_[idx];
      const bool a_bigger = degree[spec.a] >= degree[spec.b];
      spec.rel_v6 = a_bigger ? Relationship::P2C : Relationship::C2P;
      record_hybrid(spec);
    }

    // Type 2: p2c in IPv4, p2p in IPv6 (relaxed v6 peering).  Only when the
    // v4 customer keeps another v6 provider, so it stays v6-reachable.
    std::size_t planted_p2c4 = 0;
    while (planted_p2c4 < want_p2c4 && !dual_p2c.empty()) {
      const std::size_t idx = weighted_draw(dual_p2c);
      if (idx >= links_.size()) break;
      LinkSpec& spec = links_[idx];
      const Asn customer = spec.rel == Relationship::P2C ? spec.b : spec.a;
      if (count_v6_providers(customer) < 2) continue;
      spec.rel_v6 = Relationship::P2P;
      record_hybrid(spec);
      ++planted_p2c4;
    }

    // Type 3: the single p2c(v4)/c2p(v6) reversal.  Pick the most-connected
    // eligible link so the one planted case is actually observable, and pin
    // its endpoints as IRR publishers/taggers (the paper could only report
    // the case because it was documented).
    if (want_reversal) {
      std::size_t best = links_.size();
      std::size_t best_weight = 0;
      for (std::size_t idx : dual_p2c) {
        const LinkSpec& spec = links_[idx];
        const Asn customer = spec.rel == Relationship::P2C ? spec.b : spec.a;
        const Asn provider = spec.rel == Relationship::P2C ? spec.a : spec.b;
        // The v4 provider must keep a v6 provider of its own once it becomes
        // the v6 customer; the v4 customer must be transit-capable.
        if (prof(provider).tier == Tier::Tier1) continue;
        if (count_v6_providers(provider) < 1) continue;
        if (prof(customer).tier == Tier::Stub) continue;
        const std::size_t w = std::min(degree[spec.a], degree[spec.b]);
        if (best == links_.size() || w > best_weight) {
          best = idx;
          best_weight = w;
        }
      }
      if (best < links_.size()) {
        LinkSpec& spec = links_[best];
        spec.rel_v6 = reverse(spec.rel);
        record_hybrid(spec);
        reversal_endpoints_ = {spec.a, spec.b};
        // The role swap happens because the v4 provider takes its *whole*
        // v6 feed from its v6-savvy customer; its other links stay v4-only.
        // That also makes the reversed link carry traffic, i.e. observable.
        const Asn old_provider = spec.rel == Relationship::P2C ? spec.a : spec.b;
        const Asn new_provider = spec.rel == Relationship::P2C ? spec.b : spec.a;
        for (std::size_t idx : by_as_[old_provider]) {
          LinkSpec& other = links_[idx];
          if (&other == &spec) continue;
          const Asn nbr = other.a == old_provider ? other.b : other.a;
          if (nbr != new_provider && other.v6 &&
              rel_v6_of(other, old_provider) == Relationship::C2P) {
            other.v6 = false;
          }
        }
      }
    }
  }

  void record_hybrid(const LinkSpec& spec) {
    HybridLink h;
    h.link = LinkKey(spec.a, spec.b);
    h.rel_v4 = h.link.first == spec.a ? spec.rel : reverse(spec.rel);
    h.rel_v6 = h.link.first == spec.a ? spec.rel_v6 : reverse(spec.rel_v6);
    net_.hybrids_.push_back(h);
  }

  void populate() {
    for (const auto& spec : links_) {
      if (spec.v4) {
        net_.graph_.add_link(spec.a, spec.b, IpVersion::V4);
        net_.rels_v4_.set(spec.a, spec.b, spec.rel);
      }
      if (spec.v6) {
        net_.graph_.add_link(spec.a, spec.b, IpVersion::V6);
        net_.rels_v6_.set(spec.a, spec.b, spec.rel_v6);
      }
    }
    // Isolated v4-only stubs can exist if all their links were v6-demoted —
    // every AS is still registered so prefix_of stays total.
    for (const auto& [asn, profile] : net_.profiles_) {
      (void)profile;
      net_.graph_.add_as(asn);
    }
  }

  double publish_prob(Tier tier) const {
    switch (tier) {
      case Tier::Tier1: return p().publish_tier1;
      case Tier::Tier2: return p().publish_tier2;
      case Tier::Tier3: return p().publish_tier3;
      case Tier::Stub: return p().publish_stub;
    }
    return 0.0;
  }

  double tag_prob(Tier tier) const {
    switch (tier) {
      case Tier::Tier1: return p().tag_tier1;
      case Tier::Tier2: return p().tag_tier2;
      case Tier::Tier3: return p().tag_tier3;
      case Tier::Stub: return p().tag_stub;
    }
    return 0.0;
  }

  void make_policies() {
    std::vector<Asn> all;
    for (const auto& [asn, profile] : net_.profiles_) {
      (void)profile;
      all.push_back(asn);
    }
    std::sort(all.begin(), all.end());  // iteration order independence

    for (Asn asn : all) {
      AsProfile& profile = net_.profiles_.at(asn);
      const LocPrefScheme& scheme = kLocPrefSchemes[rng_.index(kLocPrefSchemes.size())];
      profile.policy.lp_customer = scheme.customer;
      profile.policy.lp_peer = scheme.peer;
      profile.policy.lp_provider = scheme.provider;
      profile.policy.lp_sibling = scheme.customer > 5 ? scheme.customer - 5 : scheme.customer;
      if (profile.tier == Tier::Stub && rng_.chance(p().prepend_stub_prob)) {
        profile.policy.prepend_to_provider = static_cast<std::uint8_t>(rng_.uniform(1, 2));
      }

      const int style = static_cast<int>(rng_.index(kCommunityStyles.size()));
      const CommunityStyle& cs = kCommunityStyles[static_cast<std::size_t>(style)];
      profile.phrasing_style = style;
      profile.c_customer = cs.customer;
      profile.c_peer = cs.peer;
      profile.c_provider = cs.provider;
      profile.c_sibling = cs.sibling;
      profile.c_te_locpref = cs.te_locpref;
      profile.c_prepend = cs.prepend;
      profile.c_geo_base = cs.geo_base;
      // Half the TE schemes depref to *peer level* — the value collides with
      // the genuine peer LocPrf, which is exactly why the paper must filter
      // TE-tagged routes before trusting LocPrf (bench_ablation_inference).
      profile.te_locpref_value = rng_.chance(0.5) ? profile.policy.lp_peer : 50;

      profile.publishes_irr = rng_.chance(publish_prob(profile.tier));
      profile.tags_relationships = rng_.chance(tag_prob(profile.tier));
      profile.strips_communities = rng_.chance(p().strip_prob);
      profile.geo_tags = rng_.chance(p().geo_prob);
      profile.te_enabled = rng_.chance(p().te_enabled_prob);
      profile.cryptic_remarks = profile.publishes_irr && rng_.chance(p().cryptic_prob);
      // A classic community is two 16-bit halves, so an AS whose number
      // doesn't fit cannot run an <asn>:<value> scheme at all: everything
      // that writes or documents communities is forced off.  Gated *after*
      // the draws so the RNG stream — and every existing small net — is
      // byte-identical to what it was before 32-bit ASNs existed here.
      if (asn > 0xffff) {
        profile.publishes_irr = false;
        profile.tags_relationships = false;
        profile.geo_tags = false;
        profile.te_enabled = false;
        profile.cryptic_remarks = false;
      }
    }

    // The single reversal's endpoints must stay interpretable, and the
    // evangelist documents its scheme meticulously (as its real-world
    // counterpart does).
    for (Asn asn : reversal_endpoints_) {
      if (asn == 0) continue;
      AsProfile& profile = net_.profiles_.at(asn);
      profile.publishes_irr = true;
      profile.tags_relationships = true;
      profile.cryptic_remarks = false;
    }
    if (net_.evangelist_ != 0) {
      AsProfile& profile = net_.profiles_.at(net_.evangelist_);
      profile.publishes_irr = true;
      profile.tags_relationships = true;
      profile.strips_communities = false;
      profile.cryptic_remarks = false;
    }

    // Relaxed IPv6 exporters.  Healers leak upward (toward providers) to
    // stitch the partitioned cones back together; the rest leak only to
    // peers — enough to create ordinary (non-necessary) valley paths.
    std::unordered_set<Asn> relaxed(healers_.begin(), healers_.end());
    for (Asn asn : healers_) {
      net_.profiles_.at(asn).policy.relaxed_export_up = true;
    }
    // Ordinary relaxation is confined to tier-3: a relaxed tier-2 with a
    // large peering mesh floods the whole plane with valley paths, which is
    // not what the (selective, partial-transit style) relaxation the paper
    // describes looks like.
    std::vector<Asn> candidates;
    for (Asn asn : tier3_) {
      if (net_.profiles_.at(asn).v6_capable) candidates.push_back(asn);
    }
    rng_.shuffle(candidates);
    for (Asn asn : candidates) {
      if (relaxed.size() >= p().relaxed_count + healers_.size()) break;
      if (relaxed.insert(asn).second) {
        net_.profiles_.at(asn).policy.relaxed_export = true;
        net_.profiles_.at(asn).policy.relax_origin_fraction = p().relax_origin_fraction;
      }
    }
    for (Asn asn : relaxed) net_.relaxed_.push_back(asn);
    std::sort(net_.relaxed_.begin(), net_.relaxed_.end());
  }

  void pick_vantages() {
    // The collectors peer with the evangelist directly (as RouteViews does
    // with Hurricane Electric): its RIB is what makes its open peering mesh
    // observable in both planes.
    if (net_.evangelist_ != 0) net_.vantages_.push_back(net_.evangelist_);
    auto sample = [this](const std::vector<Asn>& tier, std::size_t count) {
      // Prefer v6-capable vantages but keep a few v4-only ones, matching the
      // real collectors' mixed peer sets.
      std::vector<Asn> pool = tier;
      rng_.shuffle(pool);
      std::stable_sort(pool.begin(), pool.end(), [this](Asn a, Asn b) {
        return net_.profiles_.at(a).v6_capable > net_.profiles_.at(b).v6_capable;
      });
      const std::size_t keep_v4_only = count / 5;
      std::size_t taken = 0;
      for (std::size_t i = 0; i < pool.size() && taken < count - keep_v4_only; ++i) {
        if (!in(net_.vantages_, pool[i])) {
          net_.vantages_.push_back(pool[i]);
          ++taken;
        }
      }
      for (auto it = pool.rbegin(); it != pool.rend() && taken < count; ++it) {
        if (!in(net_.vantages_, *it)) {
          net_.vantages_.push_back(*it);
          ++taken;
        }
      }
    };

    // Guarantee vantage points inside both exclusive cones so the partition
    // (and the necessity of its healing valleys) is observable.
    // (Skipping the healer endpoints themselves: their bridge link would
    // give the vantage a valley-free path across the partition.)
    for (std::size_t i = p().healer_pairs; i < p().healer_pairs + 2 && i < cone_a_.size(); ++i) {
      net_.vantages_.push_back(cone_a_[i]);
    }
    for (std::size_t i = p().healer_pairs; i < p().healer_pairs + 2 && i < cone_b_.size(); ++i) {
      net_.vantages_.push_back(cone_b_[i]);
    }
    sample(tier1_, p().vantage_tier1);
    sample(tier2_, p().vantage_tier2);
    sample(tier3_, p().vantage_tier3);
    sample(stubs_, p().vantage_stub);
    std::sort(net_.vantages_.begin(), net_.vantages_.end());
    net_.vantages_.erase(std::unique(net_.vantages_.begin(), net_.vantages_.end()),
                         net_.vantages_.end());
  }

  void make_te() {
    for (const auto& [asn, profile] : net_.profiles_) {
      if (!profile.te_enabled) continue;
      for (const auto& [origin, other] : net_.profiles_) {
        (void)other;
        if (origin == asn) continue;
        const double u = hash_unit(hash_mix(static_cast<std::uint64_t>(asn) << 32 | origin,
                                            kSaltTe ^ net_.params_.seed));
        if (u < p().te_origin_prob) {
          net_.te_.set(asn, origin, profile.te_locpref_value);
        }
      }
    }
  }

  Rng rng_;
  SyntheticInternet net_;
  std::vector<Asn> tier1_, tier2_, tier3_, stubs_;
  std::vector<Asn> cone_a_, cone_b_, healers_;
  std::array<Asn, 2> reversal_endpoints_{0, 0};
  std::vector<LinkSpec> links_;
  std::unordered_map<LinkKey, std::size_t, LinkKeyHash> link_index_;
  std::unordered_map<Asn, std::vector<std::size_t>> by_as_;
  std::unordered_map<Asn, std::vector<std::size_t>> provider_links_;
  std::unordered_map<Asn, std::size_t> customer_count_;
};

SyntheticInternet SyntheticInternet::generate(const GenParams& params) {
  return Generator(params).build();
}

const AsProfile& SyntheticInternet::profile(Asn asn) const {
  auto it = profiles_.find(asn);
  if (it == profiles_.end()) {
    throw InvalidArgument("SyntheticInternet: unknown AS" + std::to_string(asn));
  }
  return it->second;
}

// ASNs above 0xffff (scale_params' stub population) spill into the /8 (v4)
// or the fourth prefix byte (v6): for small ASNs both encodings are bit-for
// -bit what they always were, so existing nets and their MRT dumps are
// unchanged.  16 "pages" of 65536 ASNs bound the spill — a million ASes,
// far beyond what the generator will ever host.
constexpr std::uint32_t kAsnPages = 16;

Prefix SyntheticInternet::prefix_of(Asn asn, IpVersion af) const {
  const std::uint32_t page = asn >> 16;
  if (af == IpVersion::V4) {
    const std::uint32_t addr = (10u + page) << 24 | (asn & 0xffffu) << 8;
    return Prefix(IpAddress::v4(addr), 24);
  }
  std::array<std::uint8_t, 16> raw{};
  raw[0] = 0x20;
  raw[1] = 0x01;
  raw[2] = 0x0d;
  raw[3] = static_cast<std::uint8_t>(0xb8 + page);
  raw[4] = static_cast<std::uint8_t>(asn >> 8);
  raw[5] = static_cast<std::uint8_t>(asn);
  return Prefix(IpAddress::v6(raw), 48);
}

Asn SyntheticInternet::origin_of(const Prefix& prefix) const {
  Asn asn = 0;
  if (prefix.version() == IpVersion::V4) {
    if (prefix.length() != 24) return 0;
    const std::uint32_t addr = prefix.address().v4_value();
    const std::uint32_t octet = addr >> 24;
    if (octet < 10 || octet >= 10 + kAsnPages) return 0;
    asn = (octet - 10) << 16 | ((addr >> 8) & 0xffffu);
  } else {
    if (prefix.length() != 48) return 0;
    const auto raw = prefix.address().bytes();
    if (raw[0] != 0x20 || raw[1] != 0x01 || raw[2] != 0x0d) return 0;
    if (raw[3] < 0xb8 || raw[3] >= 0xb8 + kAsnPages) return 0;
    asn = static_cast<Asn>(raw[3] - 0xb8) << 16 | static_cast<Asn>(raw[4]) << 8 | raw[5];
  }
  return profiles_.count(asn) ? asn : 0;
}

std::vector<Asn> SyntheticInternet::v6_ases() const {
  std::vector<Asn> out;
  for (const auto& [asn, profile] : profiles_) {
    if (profile.v6_capable) out.push_back(asn);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool SyntheticInternet::geo_tag_applies(Asn asn, Asn origin) const {
  const double u = hash_unit(
      hash_mix(static_cast<std::uint64_t>(asn) << 32 | origin, kSaltGeo ^ params_.seed));
  return u < params_.geo_origin_prob;
}

std::unordered_map<Asn, prop::NodePolicy> SyntheticInternet::policies(IpVersion af) const {
  std::unordered_map<Asn, prop::NodePolicy> out;
  out.reserve(profiles_.size());
  for (const auto& [asn, profile] : profiles_) {
    prop::NodePolicy policy = profile.policy;
    if (af == IpVersion::V4) {
      policy.relaxed_export = false;  // relaxation is v6-specific
      policy.relaxed_export_up = false;
    }
    out.emplace(asn, policy);
  }
  return out;
}

}  // namespace htor::gen
