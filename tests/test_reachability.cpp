// Unit tests for valley-free reachability / shortest paths, customer trees
// (including the paper's Figure 1 example), and tier classification.
#include <gtest/gtest.h>

#include "topology/customer_tree.hpp"
#include "topology/reachability.hpp"
#include "topology/tier.hpp"

namespace htor {
namespace {

// Small hierarchy:
//       1 --p2p-- 2
//      /|          \            (1,2 tier-1s; 3,4 their customers;
//     3 4           5            5 customer of 2; 6 customer of 4)
//         \            (the 4 -> 6 edge)
//          6
struct SmallWorld {
  AsGraph graph;
  RelationshipMap rels;

  SmallWorld() {
    auto link = [this](Asn a, Asn b, Relationship rel) {
      graph.add_link(a, b, IpVersion::V4);
      rels.set(a, b, rel);
    };
    link(1, 2, Relationship::P2P);
    link(1, 3, Relationship::P2C);
    link(1, 4, Relationship::P2C);
    link(2, 5, Relationship::P2C);
    link(4, 6, Relationship::P2C);
  }
};

TEST(ValleyFreeRouting, UpPeerDownPaths) {
  SmallWorld w;
  ValleyFreeRouting vf(w.graph, w.rels, IpVersion::V4);
  // 3 -> 6: up to 1, down via 4: 3 hops.
  EXPECT_EQ(vf.distance(3, 6), 3);
  // 3 -> 5: up to 1, peer to 2, down to 5.
  EXPECT_EQ(vf.distance(3, 5), 3);
  // 6 -> 5: up 4, up 1, peer 2, down 5.
  EXPECT_EQ(vf.distance(6, 5), 4);
  EXPECT_EQ(vf.distance(1, 6), 2);
  EXPECT_EQ(vf.distance(3, 3), 0);
  EXPECT_TRUE(vf.reachable(5, 6));
}

TEST(ValleyFreeRouting, PeerPeerForbidden) {
  AsGraph g;
  RelationshipMap rels;
  g.add_link(1, 2, IpVersion::V4);
  rels.set(1, 2, Relationship::P2P);
  g.add_link(2, 3, IpVersion::V4);
  rels.set(2, 3, Relationship::P2P);
  ValleyFreeRouting vf(g, rels, IpVersion::V4);
  EXPECT_EQ(vf.distance(1, 2), 1);
  EXPECT_EQ(vf.distance(1, 3), kUnreachable);  // two peering links
}

TEST(ValleyFreeRouting, DownThenUpForbidden) {
  AsGraph g;
  RelationshipMap rels;
  g.add_link(1, 2, IpVersion::V4);
  rels.set(1, 2, Relationship::P2C);  // 2 is 1's customer
  g.add_link(2, 3, IpVersion::V4);
  rels.set(2, 3, Relationship::C2P);  // 3 is 2's provider
  ValleyFreeRouting vf(g, rels, IpVersion::V4);
  EXPECT_EQ(vf.distance(1, 2), 1);
  EXPECT_EQ(vf.distance(1, 3), kUnreachable);  // would be a valley
  EXPECT_EQ(vf.distance(3, 1), kUnreachable);  // symmetric
  EXPECT_EQ(vf.distance(2, 3), 1);             // climbing first is fine
}

TEST(ValleyFreeRouting, SiblingsKeepPhase) {
  AsGraph g;
  RelationshipMap rels;
  auto link = [&](Asn a, Asn b, Relationship rel) {
    g.add_link(a, b, IpVersion::V6);
    rels.set(a, b, rel);
  };
  // 1 -p2c-> 2 -s2s- 3 -p2c-> 4: descending through a sibling pair.
  link(1, 2, Relationship::P2C);
  link(2, 3, Relationship::S2S);
  link(3, 4, Relationship::P2C);
  ValleyFreeRouting vf(g, rels, IpVersion::V6);
  EXPECT_EQ(vf.distance(1, 4), 3);
  // But descending then climbing through the sibling is still a valley.
  EXPECT_EQ(vf.distance(4, 1), 3);  // 4 up 3 sib 2 up 1: climb-sib-climb, fine
}

TEST(ValleyFreeRouting, UnknownLinksExcluded) {
  AsGraph g;
  RelationshipMap rels;
  g.add_link(1, 2, IpVersion::V4);  // relationship never set
  ValleyFreeRouting vf(g, rels, IpVersion::V4);
  EXPECT_EQ(vf.distance(1, 2), kUnreachable);
}

TEST(ValleyFreeRouting, MissingAsHandled) {
  SmallWorld w;
  ValleyFreeRouting vf(w.graph, w.rels, IpVersion::V4);
  EXPECT_EQ(vf.distance(3, 99), kUnreachable);
  EXPECT_TRUE(vf.distances_from(99).empty());
  EXPECT_THROW(vf.index_of(99), InvalidArgument);
}

TEST(ConstrainedBfs, RawInterface) {
  AdjacencyList adj(3);
  adj[0].push_back({1, EdgeKind::Up});
  adj[1].push_back({0, EdgeKind::Down});
  adj[1].push_back({2, EdgeKind::Down});
  adj[2].push_back({1, EdgeKind::Up});
  const auto dist = valley_free_distances(adj, 0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], 2);
  EXPECT_THROW(valley_free_distances(adj, 7), InvalidArgument);
}

// --- customer trees (paper Figure 1) --------------------------------------

RelationshipMap figure1(Relationship rel_1_2) {
  RelationshipMap rels;
  rels.set(1, 2, rel_1_2);
  rels.set(1, 3, Relationship::P2C);
  rels.set(2, 4, Relationship::P2C);
  rels.set(2, 5, Relationship::P2C);
  rels.set(4, 6, Relationship::P2C);
  return rels;
}

TEST(CustomerTree, Figure1aP2cReachesEverything) {
  const CustomerTreeAnalysis trees(figure1(Relationship::P2C));
  auto tree = trees.tree_of(1);
  std::sort(tree.begin(), tree.end());
  EXPECT_EQ(tree, (std::vector<Asn>{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(trees.cone_size(1), 5u);
}

TEST(CustomerTree, Figure1bP2pReachesOnlyAs3) {
  const CustomerTreeAnalysis trees(figure1(Relationship::P2P));
  auto tree = trees.tree_of(1);
  std::sort(tree.begin(), tree.end());
  EXPECT_EQ(tree, (std::vector<Asn>{1, 3}));
  EXPECT_EQ(trees.cone_size(1), 1u);
  // AS2's own tree is unaffected by the flip.
  EXPECT_EQ(trees.cone_size(2), 3u);
}

TEST(CustomerTree, UnknownRootIsItsOwnTree) {
  const CustomerTreeAnalysis trees(figure1(Relationship::P2C));
  EXPECT_EQ(trees.tree_of(42), (std::vector<Asn>{42}));
  EXPECT_EQ(trees.cone_size(42), 0u);
}

TEST(CustomerTree, UnionMetricsOnFigure1) {
  const CustomerTreeAnalysis trees(figure1(Relationship::P2C));
  const auto m = trees.union_metrics();
  EXPECT_EQ(m.edges, 5u);
  EXPECT_EQ(m.nodes, 6u);
  // Longest valley-free path in the p2c union: 3 -> 1 -> 2 -> 4 -> 6.
  EXPECT_EQ(m.diameter, 4);
  EXPECT_GT(m.reachable_pairs, 0u);
  EXPECT_GT(m.avg_path_length, 1.0);
  EXPECT_LT(m.avg_path_length, 4.0);
}

TEST(CustomerTree, FlippingP2pShrinksUnion) {
  const auto with = CustomerTreeAnalysis(figure1(Relationship::P2C)).union_metrics();
  const auto without = CustomerTreeAnalysis(figure1(Relationship::P2P)).union_metrics();
  EXPECT_EQ(with.edges, without.edges + 1);
  EXPECT_LT(without.reachable_pairs, with.reachable_pairs);
  EXPECT_LT(without.diameter, with.diameter);
}

TEST(CustomerTree, PeerOnlyMapIsEmptyUnion) {
  RelationshipMap rels;
  rels.set(1, 2, Relationship::P2P);
  const CustomerTreeAnalysis trees(rels);
  const auto m = trees.union_metrics();
  EXPECT_EQ(m.edges, 0u);
  EXPECT_EQ(m.nodes, 0u);
  EXPECT_EQ(m.reachable_pairs, 0u);
  EXPECT_EQ(m.avg_path_length, 0.0);
}

// --- tiers -----------------------------------------------------------------

TEST(Tiers, Classification) {
  RelationshipMap rels;
  // 1 is a provider-free AS with a sizable cone; 2 mid; leaves are stubs.
  for (Asn c = 10; c < 20; ++c) rels.set(1, c, Relationship::P2C);
  rels.set(1, 2, Relationship::P2C);
  for (Asn c = 30; c < 36; ++c) rels.set(2, c, Relationship::P2C);
  rels.set(2, 3, Relationship::P2C);
  rels.set(3, 40, Relationship::P2C);

  TierParams params;
  params.tier1_min_cone = 10;
  params.tier2_min_cone = 5;
  const auto tiers = classify_tiers(rels, params);
  EXPECT_EQ(tiers.at(1), Tier::Tier1);
  EXPECT_EQ(tiers.at(2), Tier::Tier2);
  EXPECT_EQ(tiers.at(3), Tier::Tier3);
  EXPECT_EQ(tiers.at(10), Tier::Stub);
  EXPECT_EQ(tiers.at(40), Tier::Stub);
  EXPECT_STREQ(to_string(Tier::Tier1), "tier-1");
}

TEST(Tiers, SmallProviderFreeAsIsNotTier1) {
  RelationshipMap rels;
  rels.set(1, 2, Relationship::P2C);  // tiny "hierarchy"
  const auto tiers = classify_tiers(rels);
  EXPECT_NE(tiers.at(1), Tier::Tier1);  // cone of 1 is below the threshold
  EXPECT_EQ(tiers.at(2), Tier::Stub);
}

}  // namespace
}  // namespace htor
