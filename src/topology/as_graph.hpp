// AS-level graph with per-address-family link presence.
//
// The same AS pair can be connected in IPv4 only, IPv6 only, or both — the
// distinction the whole paper is about — so links carry an address-family
// bitmask rather than the graph being duplicated.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netbase/asn.hpp"
#include "netbase/ip.hpp"
#include "topology/relationship.hpp"

namespace htor {

class AsGraph {
 public:
  /// Idempotently add an AS.
  void add_as(Asn asn);

  /// Add (or extend) a link for one family.  Returns true when the link was
  /// not previously present in that family.  Both ASes are added as needed.
  bool add_link(Asn a, Asn b, IpVersion af);

  bool has_as(Asn asn) const { return nodes_.count(asn) != 0; }
  bool has_link(Asn a, Asn b, IpVersion af) const;
  /// Present in either family.
  bool has_link(Asn a, Asn b) const;

  std::size_t as_count() const { return nodes_.size(); }
  std::size_t link_count(IpVersion af) const;
  /// Links present in both families.
  std::size_t dual_stack_link_count() const;

  /// Neighbors of `asn` in family `af` (insertion order, no duplicates).
  const std::vector<Asn>& neighbors(Asn asn, IpVersion af) const;

  std::size_t degree(Asn asn, IpVersion af) const { return neighbors(asn, af).size(); }

  /// All ASes (insertion order).
  const std::vector<Asn>& ases() const { return as_list_; }

  /// Visit each link of family `af` once.
  void for_each_link(IpVersion af, const std::function<void(const LinkKey&)>& fn) const;

  /// All links of a family, as canonical keys.
  std::vector<LinkKey> links(IpVersion af) const;

  /// All links present in both families.
  std::vector<LinkKey> dual_stack_links() const;

 private:
  struct Node {
    std::vector<Asn> nbr_v4;
    std::vector<Asn> nbr_v6;
  };

  static std::uint8_t af_bit(IpVersion af) { return af == IpVersion::V4 ? 1 : 2; }

  std::unordered_map<Asn, Node> nodes_;
  std::vector<Asn> as_list_;
  std::unordered_map<LinkKey, std::uint8_t, LinkKeyHash> links_;  // af bitmask
  std::size_t v4_links_ = 0;
  std::size_t v6_links_ = 0;
  std::size_t dual_links_ = 0;
};

}  // namespace htor
