// Deterministic shard map-reduce for the census pipeline.
//
// Work over an index range [0, n) is cut into a FIXED number of contiguous
// shards — fixed meaning independent of the pool's thread count — mapped on
// the pool, and merged strictly in shard order.  Because the shard
// boundaries and the merge sequence never depend on how many workers ran,
// `--jobs 1` and `--jobs 8` produce byte-identical results; the thread count
// only changes how many shards are in flight at once.
#pragma once

#include <cstddef>
#include <future>
#include <utility>
#include <vector>

#include "util/thread_pool.hpp"

namespace htor::core {

/// Default shard count for the census hot paths.  Comfortably above any
/// realistic --jobs value so every worker stays busy, small enough that
/// per-shard state (vote maps, path stores) stays cheap to merge.
inline constexpr std::size_t kCensusShards = 32;

struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;    ///< half-open
  std::size_t index = 0;  ///< shard number, 0-based

  std::size_t size() const { return end - begin; }
};

/// Cut [0, n) into at most `shards` contiguous near-equal ranges (fewer when
/// n < shards; none when n == 0).
inline std::vector<ShardRange> shard_ranges(std::size_t n, std::size_t shards = kCensusShards) {
  std::vector<ShardRange> out;
  if (n == 0 || shards == 0) return out;
  if (shards > n) shards = n;
  out.reserve(shards);
  const std::size_t base = n / shards;
  const std::size_t extra = n % shards;  // first `extra` shards get one more
  std::size_t begin = 0;
  for (std::size_t i = 0; i < shards; ++i) {
    const std::size_t len = base + (i < extra ? 1 : 0);
    out.push_back(ShardRange{begin, begin + len, i});
    begin += len;
  }
  return out;
}

/// Map every shard of [0, n) on the pool; results come back in shard order.
/// The first exception thrown by any shard is rethrown here after all shards
/// finished (futures own their tasks, so nothing is left running).
template <typename Map>
auto shard_map(ThreadPool& pool, std::size_t n, Map map, std::size_t shards = kCensusShards)
    -> std::vector<std::invoke_result_t<Map, ShardRange>> {
  using R = std::invoke_result_t<Map, ShardRange>;
  const auto ranges = shard_ranges(n, shards);
  std::vector<std::future<R>> futures;
  futures.reserve(ranges.size());
  for (const ShardRange& range : ranges) {
    futures.push_back(pool.submit([map, range] { return map(range); }));
  }
  std::vector<R> results;
  results.reserve(futures.size());
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      results.push_back(future.get());
    } catch (...) {
      // Keep draining: later shards reference caller-owned data, so every
      // one must finish before this frame may unwind.
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

/// shard_map followed by an in-order fold into `init`.
template <typename Map, typename Acc, typename Reduce>
Acc shard_map_reduce(ThreadPool& pool, std::size_t n, Map map, Acc init, Reduce reduce,
                     std::size_t shards = kCensusShards) {
  auto results = shard_map(pool, n, std::move(map), shards);
  for (auto& result : results) reduce(init, std::move(result));
  return init;
}

}  // namespace htor::core
