// Analysis-level view of a collector RIB: one ObservedRoute per
// (vantage peer, prefix), with the attributes the paper's method consumes —
// the AS path, the communities, and the peer's LocPrf when it exports one.
//
// rib_from_records() performs the PEER_INDEX_TABLE join that turns raw MRT
// TABLE_DUMP_V2 records into observed routes; records_from_rib() is the
// inverse and is what the synthetic collector uses to emit dumps.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mrt/record.hpp"
#include "util/thread_pool.hpp"

namespace htor::mrt {

struct ObservedRoute {
  IpVersion af = IpVersion::V4;
  Prefix prefix;
  Asn peer_asn = 0;  ///< the collector's vantage peer
  std::vector<Asn> as_path;  ///< [peer … origin], prepends preserved
  std::optional<std::uint32_t> local_pref;
  std::vector<bgp::Community> communities;

  Asn origin_asn() const { return as_path.empty() ? 0 : as_path.back(); }

  friend bool operator==(const ObservedRoute&, const ObservedRoute&) = default;
};

class ObservedRib {
 public:
  void add(ObservedRoute route);

  const std::vector<ObservedRoute>& routes() const { return routes_; }

  /// Routes of one family, by reference into routes().
  std::vector<const ObservedRoute*> routes_of(IpVersion af) const;

  std::size_t size() const { return routes_.size(); }
  std::size_t size_of(IpVersion af) const;

 private:
  std::vector<ObservedRoute> routes_;
  std::size_t v4_count_ = 0;
  std::size_t v6_count_ = 0;
};

/// Join one RIB record's entries against its governing peer table, appending
/// one ObservedRoute per entry (in entry order).  Throws DecodeError when an
/// entry's peer index is out of range.  This is the per-record core shared
/// by rib_from_records() and the streaming rib_from_stream() path.
void join_rib_record(const RibPrefixRecord& rib_rec, const PeerIndexTable& peers,
                     std::vector<ObservedRoute>& out);

/// Join RIB records against their PEER_INDEX_TABLE.  Records before the
/// first peer-index table are rejected (DecodeError), as are entries whose
/// peer index is out of range.  AS_SETs are flattened into the path.
ObservedRib rib_from_records(const std::vector<Record>& records);

/// Sharded variant of the join: a sequential pre-scan maps every record to
/// its governing peer-index table (and fails fast on records before the
/// first one), then the per-record entry joins run on `pool` and merge in
/// shard order — the resulting RIB is identical to the sequential overload.
ObservedRib rib_from_records(const std::vector<Record>& records, ThreadPool& pool);

/// Serialize an observed RIB back to MRT TABLE_DUMP_V2 records (one
/// PEER_INDEX_TABLE followed by one RIB record per prefix, entries grouped).
/// Routes are grouped per family; `timestamp` stamps every record.  Throws
/// InvalidArgument when the RIB has more distinct peers than the format's
/// 16-bit peer index can address (65535).
std::vector<Record> records_from_rib(const ObservedRib& rib, std::uint32_t collector_bgp_id,
                                     const std::string& view_name, std::uint32_t timestamp);

}  // namespace htor::mrt
