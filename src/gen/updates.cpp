#include "gen/updates.hpp"

#include <array>
#include <utility>

#include "bgp/as_path.hpp"
#include "bgp/message.hpp"
#include "util/rng.hpp"

namespace htor::gen {

namespace {

/// Deterministic per-peer addressing: 10.x.y.z / 2001:db8::asn derived from
/// the peer's ASN, collector side fixed.  The writer requires both sides of
/// a BGP4MP header to share a family, so each route family gets its own pair.
IpAddress peer_address(Asn asn, IpVersion af) {
  if (af == IpVersion::V4) {
    return IpAddress::v4(0x0a000000u | (static_cast<std::uint32_t>(asn) & 0x00ffffffu));
  }
  std::array<std::uint8_t, 16> bytes{0x20, 0x01, 0x0d, 0xb8};
  bytes[12] = static_cast<std::uint8_t>(asn >> 24);
  bytes[13] = static_cast<std::uint8_t>(asn >> 16);
  bytes[14] = static_cast<std::uint8_t>(asn >> 8);
  bytes[15] = static_cast<std::uint8_t>(asn);
  return IpAddress::v6(bytes);
}

mrt::Record wrap(std::uint32_t timestamp, const mrt::ObservedRoute& route, Asn collector,
                 bgp::UpdateMessage update) {
  mrt::Bgp4mpMessage msg;
  msg.peer_as = route.peer_asn;
  msg.local_as = collector;
  msg.peer_ip = peer_address(route.peer_asn, route.af);
  msg.local_ip = peer_address(collector, route.af);
  msg.message = std::move(update);
  msg.as4 = true;
  return mrt::Record{timestamp, std::move(msg)};
}

mrt::Record announce_record(std::uint32_t timestamp, const mrt::ObservedRoute& route,
                            Asn collector) {
  bgp::PathAttributes attrs;
  attrs.origin = bgp::Origin::Igp;
  attrs.as_path = bgp::AsPath::sequence(route.as_path);
  attrs.local_pref = route.local_pref;
  attrs.communities = route.communities;
  bgp::UpdateMessage update;
  if (route.af == IpVersion::V4) {
    attrs.next_hop = peer_address(route.peer_asn, IpVersion::V4);
    update.attrs = std::move(attrs);
    update.nlri.push_back(route.prefix);
  } else {
    update = bgp::make_ipv6_update(attrs, peer_address(route.peer_asn, IpVersion::V6),
                                   {route.prefix});
  }
  return wrap(timestamp, route, collector, std::move(update));
}

mrt::Record withdraw_record(std::uint32_t timestamp, const mrt::ObservedRoute& route,
                            Asn collector) {
  bgp::UpdateMessage update;
  if (route.af == IpVersion::V4) {
    update.withdrawn.push_back(route.prefix);
  } else {
    bgp::MpUnreachNlri unreach;
    unreach.withdrawn.push_back(route.prefix);
    update.attrs.mp_unreach = std::move(unreach);
  }
  return wrap(timestamp, route, collector, std::move(update));
}

enum Event : std::size_t { kWithdraw = 0, kReannounce, kMutate, kFlap };

}  // namespace

std::vector<mrt::Record> synthesize_updates(const mrt::ObservedRib& base,
                                            const UpdateScheduleParams& params) {
  Rng rng(params.seed);
  // The schedule tracks the RIB state it implies, so it only ever withdraws
  // held routes and re-announces withdrawn ones — replay is always clean.
  std::vector<mrt::ObservedRoute> live = base.routes();
  std::vector<mrt::ObservedRoute> gone;
  std::vector<mrt::Record> out;
  out.reserve(params.events + params.events / 4);

  const std::array<double, 4> weights{params.withdraw_weight, params.reannounce_weight,
                                      params.mutate_weight, params.flap_weight};

  for (std::size_t i = 0; i < params.events; ++i) {
    const std::uint32_t ts =
        params.start_timestamp + static_cast<std::uint32_t>(i) * params.timestamp_step;
    std::size_t event = rng.weighted(weights);
    if (live.empty()) event = kReannounce;
    if (event == kReannounce && gone.empty()) event = live.empty() ? kWithdraw : kMutate;
    if (live.empty() && gone.empty()) break;  // degenerate input

    switch (static_cast<Event>(event)) {
      case kWithdraw: {
        const std::size_t idx = rng.index(live.size());
        out.push_back(withdraw_record(ts, live[idx], params.collector_asn));
        gone.push_back(std::move(live[idx]));
        live[idx] = std::move(live.back());
        live.pop_back();
        break;
      }
      case kReannounce: {
        const std::size_t idx = rng.index(gone.size());
        out.push_back(announce_record(ts, gone[idx], params.collector_asn));
        live.push_back(std::move(gone[idx]));
        gone[idx] = std::move(gone.back());
        gone.pop_back();
        break;
      }
      case kMutate: {
        mrt::ObservedRoute& route = live[rng.index(live.size())];
        switch (rng.index(route.communities.empty() ? 2 : 3)) {
          case 0:  // origin prepend: changes the stored path, not its links
            if (route.as_path.empty()) {
              route.local_pref = rng.uniform(50, 150);
              break;
            }
            route.as_path.push_back(route.as_path.back());
            break;
          case 1:
            route.local_pref = rng.uniform(50, 150);
            break;
          default:  // strip communities: retracts this route's votes
            route.communities.clear();
            break;
        }
        out.push_back(announce_record(ts, route, params.collector_asn));
        break;
      }
      case kFlap: {
        const mrt::ObservedRoute& route = live[rng.index(live.size())];
        out.push_back(withdraw_record(ts, route, params.collector_asn));
        out.push_back(announce_record(ts, route, params.collector_asn));
        break;
      }
    }
  }
  return out;
}

}  // namespace htor::gen
