// Deterministic fuzz driver shared by the decoder fuzz targets.
//
// This is not coverage-guided libFuzzer: it is a fixed-seed structured
// mutator over a committed seed corpus, bounded to an explicit iteration
// budget so the same binary produces the same byte streams on every machine
// and every CI run.  Each target feeds the mutated bytes to one decoder and
// asserts the fail-clean contract the readers are built on: every input
// either parses completely or is rejected with a reasoned error — never a
// crash, never a partial result.  A contract violation aborts the run with
// the iteration number and mutation seed, which is enough to replay it.
//
// Mutation strategies (picked per iteration from util::Rng):
//   - truncate:     cut the input at a random byte (every decoder must
//                   survive truncation at *any* offset);
//   - bit_flip:     flip 1..8 random bits;
//   - byte_splat:   overwrite a random run with 0x00 / 0xff / random bytes;
//   - length_field: overwrite 2/4/8 bytes at a random offset with a huge,
//                   zero, or off-by-one big-endian integer — the classic
//                   count-field corruption every bounded reader must catch;
//   - splice:       head of one corpus item + tail of another;
//   - extend:       append random bytes (trailing garbage must be rejected,
//                   not silently ignored);
//   - identity:     the unmutated seed (the corpus itself must parse).
#pragma once

#include <cstdint>
#include <filesystem>
#include <iostream>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace htor::fuzz {

/// What one decoder invocation did with the input.  Anything else — another
/// exception type escaping, a crash, a partial result — is a contract
/// violation and the harness exits non-zero.
enum class Outcome {
  Parsed,    ///< full clean parse
  Rejected,  ///< reasoned DecodeError/ParseError (or 4xx for HTTP)
};

class Mutator {
 public:
  explicit Mutator(std::uint64_t seed) : rng_(seed) {}

  std::vector<std::uint8_t> mutate(const std::vector<std::vector<std::uint8_t>>& corpus) {
    const auto& base = corpus[rng_.index(corpus.size())];
    std::vector<std::uint8_t> out = base;
    switch (rng_.index(7)) {
      case 0:  // truncate
        if (!out.empty()) out.resize(rng_.index(out.size()));
        break;
      case 1: {  // bit_flip
        if (out.empty()) break;
        const std::size_t flips = 1 + rng_.index(8);
        for (std::size_t i = 0; i < flips; ++i) {
          out[rng_.index(out.size())] ^= static_cast<std::uint8_t>(1u << rng_.index(8));
        }
        break;
      }
      case 2: {  // byte_splat
        if (out.empty()) break;
        const std::size_t begin = rng_.index(out.size());
        const std::size_t len = 1 + rng_.index(std::min<std::size_t>(out.size() - begin, 16));
        const std::uint8_t fill[] = {0x00, 0xff, static_cast<std::uint8_t>(rng_.uniform(0, 255))};
        const std::uint8_t value = fill[rng_.index(3)];
        for (std::size_t i = 0; i < len; ++i) out[begin + i] = value;
        break;
      }
      case 3: {  // length_field corruption
        static constexpr std::size_t kWidths[] = {2, 4, 8};
        const std::size_t width = kWidths[rng_.index(3)];
        if (out.size() < width) break;
        const std::size_t at = rng_.index(out.size() - width + 1);
        std::uint64_t value = 0;
        switch (rng_.index(4)) {
          case 0: value = ~std::uint64_t{0}; break;                    // absurd
          case 1: value = 0; break;                                    // zero
          case 2: value = rng_.uniform(0, 0xffff); break;              // plausible
          case 3: value = std::uint64_t{1} << rng_.index(63); break;   // power of two
        }
        for (std::size_t i = 0; i < width; ++i) {
          out[at + i] = static_cast<std::uint8_t>(value >> (8 * (width - 1 - i)));
        }
        break;
      }
      case 4: {  // splice
        const auto& other = corpus[rng_.index(corpus.size())];
        if (out.empty() || other.empty()) break;
        out.resize(rng_.index(out.size()) + 1);
        const std::size_t from = rng_.index(other.size());
        out.insert(out.end(), other.begin() + static_cast<long>(from), other.end());
        break;
      }
      case 5: {  // extend with trailing garbage
        const std::size_t extra = 1 + rng_.index(32);
        for (std::size_t i = 0; i < extra; ++i) {
          out.push_back(static_cast<std::uint8_t>(rng_.uniform(0, 255)));
        }
        break;
      }
      case 6:  // identity
      default:
        break;
    }
    return out;
  }

 private:
  Rng rng_;
};

/// Load every regular file of `dir` as a corpus item, sorted by filename so
/// the corpus order (and with it the whole run) is deterministic.
inline std::vector<std::vector<std::uint8_t>> load_corpus(const std::string& dir) {
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  std::vector<std::vector<std::uint8_t>> corpus;
  corpus.reserve(paths.size());
  for (const auto& path : paths) corpus.push_back(load_bytes(path.string()));
  if (corpus.empty()) throw Error("fuzz corpus directory '" + dir + "' has no seed files");
  return corpus;
}

/// No-op default for run_target's extra mutation pass.
inline void no_extra_mutation(std::vector<std::uint8_t>&, Rng&) {}

/// Standard fuzz-target main loop.  `target` maps mutated bytes to an
/// Outcome and is expected to let only the contract exceptions escape as
/// Rejected; the harness catches everything else and fails the run.
/// `classify` failures by reason prefix so triage can bucket them.
///
/// `extra` is a format-aware second mutation pass applied after the generic
/// mutator — targets use it to aim at structure the blind strategies almost
/// never hit (e.g. the v2 snapshot header's offset block).  It gets its own
/// deterministic Rng derived from the run seed, so adding or changing a
/// hook never perturbs the generic mutation stream.
template <typename Target, typename Extra>
int run_target(const char* name, int argc, char** argv, Target target, Extra extra) {
  if (argc < 2) {
    std::cerr << "usage: " << name << " <corpus_dir> [iterations] [seed]\n";
    return 2;
  }
  std::size_t iterations = 2000;
  std::uint64_t seed = 1;
  if (argc > 2) iterations = static_cast<std::size_t>(std::strtoull(argv[2], nullptr, 10));
  if (argc > 3) seed = std::strtoull(argv[3], nullptr, 10);

  std::vector<std::vector<std::uint8_t>> corpus;
  try {
    corpus = load_corpus(argv[1]);
  } catch (const std::exception& e) {
    std::cerr << name << ": " << e.what() << "\n";
    return 2;
  }

  Mutator mutator(seed);
  Rng extra_rng(seed * 0x9e3779b97f4a7c15ull + 1);
  std::size_t parsed = 0;
  std::size_t rejected = 0;
  std::map<std::string, std::size_t> reasons;  // first words of each error

  // The unmutated corpus must hold the contract too (and the seeds are
  // expected to actually parse — a corpus of already-broken files would
  // fuzz nothing but the error paths).
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    try {
      if (target(corpus[i]) != Outcome::Parsed) {
        std::cerr << name << ": seed corpus item " << i << " does not parse cleanly\n";
        return 1;
      }
    } catch (const std::exception& e) {
      std::cerr << name << ": seed corpus item " << i << " violated the contract: " << e.what()
                << "\n";
      return 1;
    }
  }

  for (std::size_t i = 0; i < iterations; ++i) {
    auto input = mutator.mutate(corpus);
    extra(input, extra_rng);
    try {
      switch (target(input)) {
        case Outcome::Parsed: ++parsed; break;
        case Outcome::Rejected: ++rejected; break;
      }
    } catch (const DecodeError& e) {
      ++rejected;
      const std::string what = e.what();
      ++reasons[what.substr(0, what.find_first_of("0123456789'"))];
    } catch (const ParseError& e) {
      ++rejected;
      const std::string what = e.what();
      ++reasons[what.substr(0, what.find_first_of("0123456789'"))];
    } catch (const std::exception& e) {
      // Any other exception type is a bug: the decoders promise reasoned
      // DecodeError/ParseError rejection, nothing else.
      std::cerr << name << ": iteration " << i << " (seed " << seed
                << "): contract violation, unexpected " << typeid(e).name() << ": " << e.what()
                << "\n";
      return 1;
    }
  }

  std::cout << name << ": " << iterations << " iterations over " << corpus.size()
            << " seeds (seed " << seed << "): " << parsed << " parsed, " << rejected
            << " rejected, 0 crashes\n";
  for (const auto& [reason, count] : reasons) {
    std::cout << "  " << count << "x " << reason << "\n";
  }
  return 0;
}

template <typename Target>
int run_target(const char* name, int argc, char** argv, Target target) {
  return run_target(name, argc, argv, target, no_extra_mutation);
}

}  // namespace htor::fuzz
