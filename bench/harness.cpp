#include "harness.hpp"

#include <iostream>

#include "mrt/reader.hpp"
#include "mrt/writer.hpp"
#include "rpsl/object.hpp"

namespace htor::bench {

Dataset make_dataset(const gen::GenParams& params) {
  Dataset ds{gen::SyntheticInternet::generate(params), {}, {}, 0, 0};

  // Full wire round trip: the analysis below only ever sees bytes a real
  // collector could have produced.
  const mrt::ObservedRib direct = ds.net.collect();
  mrt::MrtWriter writer;
  for (const auto& record :
       mrt::records_from_rib(direct, /*collector_bgp_id=*/0x0a0a0a0au, "synthetic-rib",
                             /*timestamp=*/1281052800u /* 2010-08-06, the paper's month */)) {
    writer.write(record);
  }
  ds.mrt_bytes = writer.data().size();
  const auto records = mrt::read_all(writer.data());
  ds.mrt_records = records.size();
  ds.rib = mrt::rib_from_records(records);

  ds.dict = rpsl::mine_dictionary(rpsl::parse_objects(ds.net.irr_dump()));
  return ds;
}

Dataset make_dataset(std::uint64_t seed) {
  gen::GenParams params;
  params.seed = seed;
  return make_dataset(params);
}

void print_header(const std::string& experiment_id, const std::string& claim) {
  std::cout << "==============================================================\n"
            << experiment_id << "\n"
            << "paper: " << claim << "\n"
            << "==============================================================\n";
}

}  // namespace htor::bench
