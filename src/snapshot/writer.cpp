#include "snapshot/writer.hpp"

#include "util/bytes.hpp"

namespace htor::snapshot {

namespace {

constexpr std::size_t kMaxSourceLen = 0xffff;

void encode_coverage(ByteWriter& w, const CoverageCounters& c) {
  w.u64(c.observed);
  w.u64(c.covered);
}

void encode_valleys(ByteWriter& w, const ValleyCounters& v) {
  w.u64(v.paths);
  w.u64(v.valley_free);
  w.u64(v.valley);
  w.u64(v.incomplete);
  w.u64(v.classified_valleys);
  w.u64(v.necessary_valleys);
}

std::uint8_t rel_byte(Relationship rel) {
  const auto raw = static_cast<std::uint8_t>(rel);
  if (raw > static_cast<std::uint8_t>(Relationship::Unknown)) {
    throw InvalidArgument("snapshot: relationship value " + std::to_string(raw) +
                          " outside the format's range");
  }
  return raw;
}

void encode_link(ByteWriter& w, const LinkKey& link) {
  if (link.first >= link.second) {
    throw InvalidArgument("snapshot: link AS" + std::to_string(link.first) + "-AS" +
                          std::to_string(link.second) + " is not a canonical AS pair");
  }
  w.u32(link.first);
  w.u32(link.second);
}

void encode_map(ByteWriter& w, const RelationshipMap& map) {
  const auto entries = sorted_entries(map);
  w.u64(entries.size());
  for (const auto& [link, rel] : entries) {
    encode_link(w, link);
    w.u8(rel_byte(rel));
  }
}

}  // namespace

std::vector<std::uint8_t> Writer::encode(const Snapshot& snap) {
  if (snap.header.source.size() > kMaxSourceLen) {
    throw InvalidArgument("snapshot: source path longer than 65535 bytes");
  }
  ByteWriter w;
  w.u32(kMagic);
  w.u32(kFormatVersion);
  w.u64(snap.header.timestamp);
  w.u16(static_cast<std::uint16_t>(snap.header.source.size()));
  w.text(snap.header.source);

  w.u64(snap.dataset.v4_paths);
  w.u64(snap.dataset.v6_paths);
  w.u64(snap.dataset.v4_links);
  w.u64(snap.dataset.v6_links);
  w.u64(snap.dataset.dual_links);

  encode_coverage(w, snap.coverage_v4);
  encode_coverage(w, snap.coverage_v6);
  encode_coverage(w, snap.coverage_dual);
  encode_valleys(w, snap.valleys_v4);
  encode_valleys(w, snap.valleys_v6);

  w.u64(snap.hybrid_counters.dual_links_observed);
  w.u64(snap.hybrid_counters.dual_links_both_known);
  w.u64(snap.hybrid_counters.v6_paths_total);
  w.u64(snap.hybrid_counters.v6_paths_with_hybrid);

  encode_map(w, snap.rels_v4);
  encode_map(w, snap.rels_v6);

  w.u64(snap.hybrids.size());
  for (const auto& h : snap.hybrids) {
    encode_link(w, h.link);
    w.u8(rel_byte(h.rel_v4));
    w.u8(rel_byte(h.rel_v6));
    if (h.cls > 3) {
      throw InvalidArgument("snapshot: hybrid class value " + std::to_string(h.cls) +
                            " outside the format's range");
    }
    w.u8(h.cls);
    w.u64(h.v6_path_visibility);
  }

  w.u32(kTrailer);
  return w.take();
}

void Writer::write_file(const Snapshot& snap, const std::string& path) {
  save_bytes(path, encode(snap));
}

}  // namespace htor::snapshot
