// Tuning knobs of the synthetic Internet (DESIGN.md §2).
//
// Defaults are calibrated so the August-2010 observables the paper reports
// emerge at a laptop-friendly scale: ~2600 ASes instead of ~35k, with the
// same *fractions* (coverage, hybrid share and mix, valley share).
#pragma once

#include <cstddef>
#include <cstdint>

namespace htor::gen {

struct GenParams {
  std::uint64_t seed = 42;

  // --- population -------------------------------------------------------
  std::size_t tier1_count = 12;
  std::size_t tier2_count = 170;
  std::size_t tier3_count = 420;
  std::size_t stub_count = 2000;
  std::size_t sibling_pairs = 15;

  // --- connectivity -----------------------------------------------------
  /// Probability of a peering link between two tier-2 ASes.
  double t2_peer_prob = 0.05;
  /// Probability that a tier-3 AS opens 1-2 peering links.
  double t3_peer_prob = 0.25;
  /// Probability that a stub peers with another stub (IXP-style).
  double stub_peer_prob = 0.03;
  /// Probability a tier-3 AS buys transit from a tier-1 instead of tier-2.
  double t3_tier1_provider_prob = 0.15;
  /// Probability a stub's provider is a tier-2 (else tier-3).
  double stub_tier2_provider_prob = 0.45;
  /// Tier-2 ASes single-homed behind each disputing tier-1 (exclusive cone).
  std::size_t exclusive_cone_t2 = 3;

  // --- IPv6 adoption ----------------------------------------------------
  double v6_tier2 = 0.85;
  double v6_tier3 = 0.65;
  double v6_stub = 0.45;
  /// Probability that a link between two v6-capable ASes carries IPv6.
  double dual_link_prob = 0.85;
  /// IPv6-only peering links (new v6 peerings with no v4 counterpart).
  std::size_t v6_only_peer_links = 1000;
  /// Two tier-1s refuse to peer in IPv6 (the AS6939/AS174-style dispute that
  /// partitions strict valley-free IPv6 routing).
  bool v6_tier1_dispute = true;

  /// 2010 reality: most classic tier-1s lagged on IPv6.  Beyond the two
  /// disputants and the evangelist, each tier-1 is v6-capable only with
  /// this probability.  Tier-2s stranded without a v6-capable transit chain
  /// buy v6-only transit from another tier-2 — the deep, sparse IPv6
  /// hierarchy of the era.
  double v6_tier1_extra = 0.35;

  /// A Hurricane-Electric-style "IPv6 evangelist" tier-1: peers openly in
  /// IPv4 and turns those peerings into free IPv6 transit — the archetypal
  /// p2p(v4)/p2c(v6) hybrid and the hub whose misinference drives Figure 2.
  bool v6_evangelist = true;
  std::size_t evangelist_peer_t2 = 60;
  std::size_t evangelist_peer_t3 = 60;
  /// Probability that one of its dual-stack peerings is free v6 transit.
  double evangelist_free_transit = 0.9;

  // --- hybrid relationships ----------------------------------------------
  /// Fraction of dual-stack links planted with a hybrid relationship.
  double hybrid_fraction = 0.12;
  /// Of those: share that are p2p in IPv4 but transit in IPv6.
  double hybrid_p2p4_transit6_share = 0.67;
  /// Plant exactly one p2c(v4)/c2p(v6) reversal, as the paper found.
  bool plant_reversal = true;

  // --- policies -----------------------------------------------------------
  /// ASes with relaxed IPv6 export (paired healers across the dispute
  /// partition are added on top of this count).
  std::size_t relaxed_count = 40;
  /// Fraction of origins an ordinarily-relaxed AS actually leaks to peers
  /// (partial-transit selectivity).
  double relax_origin_fraction = 0.55;
  /// Healer pairs: exclusive-cone tier-2s bridged by a v6-only peering and
  /// marked relaxed on both sides.
  std::size_t healer_pairs = 1;
  /// Fraction of stubs that prepend toward providers.
  double prepend_stub_prob = 0.15;
  /// Probability an AS applies TE LocPrf overrides at all.
  double te_enabled_prob = 0.40;
  /// Per-(AS, origin) probability of an override when enabled.
  double te_origin_prob = 0.03;

  // --- communities / IRR ---------------------------------------------------
  double publish_tier1 = 0.95;
  double publish_tier2 = 0.93;
  double publish_tier3 = 0.80;
  double publish_stub = 0.50;
  /// Probability an AS tags relationship ingress communities (by tier).
  double tag_tier1 = 0.95;
  double tag_tier2 = 0.93;
  double tag_tier3 = 0.90;
  double tag_stub = 0.65;
  /// Probability an AS strips inbound communities.
  double strip_prob = 0.05;
  /// Probability a tagging AS also adds geo communities.
  double geo_prob = 0.30;
  /// Per-(AS, origin) probability of a geo tag when the AS geo-tags.
  double geo_origin_prob = 0.5;
  /// Publishing ASes whose remarks use phrasing no miner can interpret.
  double cryptic_prob = 0.05;

  // --- collection -----------------------------------------------------------
  std::size_t vantage_tier1 = 2;
  std::size_t vantage_tier2 = 12;
  std::size_t vantage_tier3 = 12;
  std::size_t vantage_stub = 8;

  std::size_t total_ases() const {
    return tier1_count + tier2_count + tier3_count + stub_count;
  }
};

/// A smaller preset for unit tests (seconds, not minutes).
GenParams small_params(std::uint64_t seed = 7);

/// An internet-scale preset (default ≥100k ASes): a thin transit core under
/// a huge stub population, with every super-linear feature turned off —
/// TE overrides (O(N²) draws) and stub IRR publication (the dump and the
/// miner would otherwise dwarf the run).  Pair with
/// SyntheticInternet::collect_scaled(); the full propagation collector is
/// O(N·E) and not meant for nets this size.
GenParams scale_params(std::size_t total_ases = 100'000, std::uint64_t seed = 42);

}  // namespace htor::gen
