# End-to-end exercise of the hybridtor CLI, run as a CTest:
#   1. `generate` into a fresh (nested, not pre-created) temp dir — exit 0,
#      all three artifacts present.
#   2. `census` on the artifacts — exit 0, key report lines present.
#   3. `census --jobs 4` — byte-identical output to --jobs 1.
#   3b. `census --no-stream` (load-all ingest) at --jobs 1 and 4 —
#       byte-identical to the default streaming ingest.
#   4. `census` on a missing rib.mrt — non-zero exit, diagnostic names the file.
#   5. `census` on a truncated rib.mrt — non-zero exit, no partial report
#      (skipped on hosts without /bin/sh, which is what clips the file).
#
# Invoked as:
#   cmake -DHYBRIDTOR=<path> -DWORK_DIR=<dir> -P cli_e2e.cmake
cmake_minimum_required(VERSION 3.20)

if(NOT DEFINED HYBRIDTOR OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DHYBRIDTOR=<cli> -DWORK_DIR=<dir> -P cli_e2e.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
# Deliberately do NOT create the nested data dir: generate must create it.
set(DATA_DIR "${WORK_DIR}/data/nested")

# -------------------------------------------------------------- 1. generate
execute_process(COMMAND "${HYBRIDTOR}" generate "${DATA_DIR}" 7
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed (rc=${rc}): ${out}${err}")
endif()
foreach(artifact rib.mrt irr.txt truth.csv)
  if(NOT EXISTS "${DATA_DIR}/${artifact}")
    message(FATAL_ERROR "generate did not write ${artifact}")
  endif()
endforeach()

# -------------------------------------------------------------- 2. census
execute_process(COMMAND "${HYBRIDTOR}" census "${DATA_DIR}/rib.mrt" "${DATA_DIR}/irr.txt"
                RESULT_VARIABLE rc OUTPUT_VARIABLE census_j1 ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "census failed (rc=${rc}): ${err}")
endif()
foreach(needle
        "IPv6 AS paths"
        "IPv6 links with relationship"
        "dual-stack links"
        "hybrid links"
        "IPv6 valley paths")
  string(FIND "${census_j1}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "census report is missing line '${needle}':\n${census_j1}")
  endif()
endforeach()

# -------------------------------------------------- 3. --jobs determinism
execute_process(COMMAND "${HYBRIDTOR}" census --jobs 4
                        "${DATA_DIR}/rib.mrt" "${DATA_DIR}/irr.txt"
                RESULT_VARIABLE rc OUTPUT_VARIABLE census_j4 ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "census --jobs 4 failed (rc=${rc}): ${err}")
endif()
if(NOT census_j1 STREQUAL census_j4)
  message(FATAL_ERROR "census --jobs 4 output differs from --jobs 1")
endif()

# ------------------------------------- 3b. streaming / load-all equivalence
# The default census path streams the MRT file; --no-stream selects the
# legacy load-all path.  Both must be byte-identical at --jobs 1 and 4.
foreach(njobs 1 4)
  execute_process(COMMAND "${HYBRIDTOR}" census --no-stream --jobs ${njobs}
                          "${DATA_DIR}/rib.mrt" "${DATA_DIR}/irr.txt"
                  RESULT_VARIABLE rc OUTPUT_VARIABLE census_nostream ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "census --no-stream --jobs ${njobs} failed (rc=${rc}): ${err}")
  endif()
  if(NOT census_nostream STREQUAL census_j1)
    message(FATAL_ERROR "census --no-stream --jobs ${njobs} output differs from streaming")
  endif()
endforeach()

# ----------------------------------------------------- 4. missing rib.mrt
execute_process(COMMAND "${HYBRIDTOR}" census "${DATA_DIR}/no_such.mrt" "${DATA_DIR}/irr.txt"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "census on a missing rib.mrt must fail")
endif()
string(FIND "${err}" "no_such.mrt" at)
if(at EQUAL -1)
  message(FATAL_ERROR "missing-file diagnostic does not name the file: ${err}")
endif()

# --------------------------------------------------- 5. truncated rib.mrt
# CMake script mode has no binary truncation primitive, so a shell clips the
# file; the check is skipped where /bin/sh does not exist.
find_program(SH_PROGRAM sh)
if(SH_PROGRAM)
  set(TRUNC "${DATA_DIR}/rib_truncated.mrt")
  file(SIZE "${DATA_DIR}/rib.mrt" rib_size)
  math(EXPR cut "${rib_size} - 7")
  execute_process(COMMAND "${SH_PROGRAM}" -c
                          "head -c ${cut} '${DATA_DIR}/rib.mrt' > '${TRUNC}'"
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "could not produce truncated rib.mrt")
  endif()
  execute_process(COMMAND "${HYBRIDTOR}" census "${TRUNC}" "${DATA_DIR}/irr.txt"
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "census on a truncated rib.mrt must fail")
  endif()
  if(NOT out STREQUAL "")
    message(FATAL_ERROR "census on a truncated rib.mrt printed a partial report:\n${out}")
  endif()
  string(FIND "${err}" "rib_truncated.mrt" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "truncation diagnostic does not name the file: ${err}")
  endif()
else()
  message(STATUS "cli_e2e: no sh found, skipping truncated-file check")
endif()

message(STATUS "cli_e2e: all checks passed")
file(REMOVE_RECURSE "${WORK_DIR}")
