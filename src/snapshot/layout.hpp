// Snapshot format v2: the mmap-able flat layout and its checked view.
//
// v2 lays the durable census out as fixed-width, offset-indexed sections so
// a file can be queried *in place* — no per-entry decode, no hash maps:
//
//   header block (312 bytes)
//     magic 'HTSN' · version 2 · timestamp · file size · AS count A ·
//     source length S · link count L · hybrid count H · six section
//     offsets · the 27 dataset/coverage/valley/hybrid counters
//   AS intern table     A x u32   endpoint ASNs, strictly ascending; the
//                                 dense AS id is the table index
//   adjacency index     (A+1) x u64  CSR row starts into the entry table;
//                                 index[0] = 0, index[A] = 2L
//   adjacency entries   2L x {u32 neighbor id, u32 link index}  per-AS
//                                 lists strictly ascending by neighbor id
//   link table          L x {u32 first, u32 second, u8 rel_v4, u8 rel_v6,
//                                 u8 flags, u8 pad}  sorted by (first,
//                                 second); binary-searchable in the file
//   hybrid table        H x {u32 first, u32 second, u8 rel_v4, u8 rel_v6,
//                                 u8 class, u8 pad, u64 v6 visibility}
//                                 census order, stored verbatim
//   source path         S bytes
//   trailer 'ENDS'
//
// Everything is big-endian (BE unsigned integers compare lexicographically,
// so the in-file binary search needs no byte swapping) and every section
// starts 8-byte aligned with zero padding.  The layout is canonical: strict
// orders, exact packed offsets, presence-flag rules, and zero padding make
// the encoding injective — one byte form per snapshot — which keeps the
// fuzz decode→re-encode identity oracle sound for v2.
//
// validate_v2() proves the whole file well-formed (reasoned DecodeError
// otherwise) before any view is handed out; the accessors below then read
// through bounds-checked big-endian loads, so raw-pointer arithmetic never
// leaks above this module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>

#include "snapshot/snapshot.hpp"

namespace htor::snapshot {

/// Fixed header-block field offsets (all fields big-endian).
inline constexpr std::size_t kV2OffMagic = 0;
inline constexpr std::size_t kV2OffVersion = 4;
inline constexpr std::size_t kV2OffTimestamp = 8;
inline constexpr std::size_t kV2OffFileSize = 16;
inline constexpr std::size_t kV2OffAsnCount = 24;
inline constexpr std::size_t kV2OffSourceLen = 28;
inline constexpr std::size_t kV2OffLinkCount = 32;
inline constexpr std::size_t kV2OffHybridCount = 40;
inline constexpr std::size_t kV2OffSectionOffsets = 48;  ///< six u64s
inline constexpr std::size_t kV2OffCounters = 96;        ///< 27 u64s
inline constexpr std::size_t kV2HeaderBytes = 312;

inline constexpr std::size_t kV2LinkRowBytes = 12;
inline constexpr std::size_t kV2AdjEntryBytes = 8;
inline constexpr std::size_t kV2HybridRowBytes = 20;

/// Link-row flag bits.  A row exists because the link is in the v4 map, the
/// v6 map, the hybrid table, or any combination; a presence-clear family's
/// relationship byte must be Unknown, so the maps reconstruct exactly.
inline constexpr std::uint8_t kV2FlagHybrid = 0x01;
inline constexpr std::uint8_t kV2FlagInV4 = 0x02;
inline constexpr std::uint8_t kV2FlagInV6 = 0x04;

/// A validated window onto one v2 snapshot image.  Plain value type: copies
/// share the underlying bytes, whose lifetime the caller owns (see
/// MappedSnapshot for the shared-ownership wrapper).
struct V2View {
  std::span<const std::uint8_t> bytes;

  std::uint64_t timestamp = 0;
  std::uint32_t asn_count = 0;
  std::uint32_t source_len = 0;
  std::uint64_t link_count = 0;
  std::uint64_t hybrid_count = 0;      ///< hybrid-table entries (census order)
  std::uint64_t hybrid_link_count = 0; ///< distinct link rows flagged hybrid
  std::uint64_t off_asn = 0;
  std::uint64_t off_adj_index = 0;
  std::uint64_t off_adj = 0;
  std::uint64_t off_links = 0;
  std::uint64_t off_hybrids = 0;
  std::uint64_t off_source = 0;

  /// One link row, decoded on access.
  struct LinkRow {
    Asn first = 0;
    Asn second = 0;
    Relationship rel_v4 = Relationship::Unknown;
    Relationship rel_v6 = Relationship::Unknown;
    bool hybrid = false;
    bool in_v4 = false;
    bool in_v6 = false;
  };

  struct AdjEntry {
    std::uint32_t neighbor_id = 0;
    std::uint32_t link_index = 0;
  };

  Asn asn_at(std::uint32_t id) const;
  LinkRow link_at(std::uint64_t index) const;
  HybridLink hybrid_at(std::uint64_t index) const;
  AdjEntry adj_at(std::uint64_t index) const;
  /// [begin, end) range of adjacency entries for dense AS `id`.
  std::pair<std::uint64_t, std::uint64_t> adj_range(std::uint32_t id) const;

  /// Dense id of `asn`, or nullopt when it is not interned.
  std::optional<std::uint32_t> find_asn(Asn asn) const;
  /// Link-table index of the (unordered) pair {a, b}, or nullopt.  Branchless
  /// binary search over the big-endian packed keys, directly in the file.
  std::optional<std::uint64_t> find_link(Asn a, Asn b) const;

  std::string source() const;
  DatasetStats dataset() const;
  CoverageCounters coverage(int which) const;  ///< 0 = v4, 1 = v6, 2 = dual
  ValleyCounters valleys(int which) const;     ///< 0 = v4, 1 = v6
  HybridCounters hybrid_counters() const;

  /// Bounds-checked big-endian loads over the image.  Post-validation these
  /// can only throw on a programming error, but they keep the decoder
  /// discipline: no access without a bounds check.
  std::uint8_t u8_at(std::uint64_t off) const;
  std::uint32_t u32_at(std::uint64_t off) const;
  std::uint64_t u64_at(std::uint64_t off) const;

  /// Unchecked big-endian loads, legal ONLY at offsets already proven
  /// in-bounds: validate_v2 pins every section inside the file (counts
  /// bounded, offsets equal to the recomputed packed layout, total equal to
  /// the byte count) before its scan loops switch to these.  Nothing
  /// outside this module should need them.
  std::uint8_t u8_raw(std::uint64_t off) const { return bytes[off]; }
  std::uint32_t u32_raw(std::uint64_t off) const {
    return std::uint32_t{bytes[off]} << 24 | std::uint32_t{bytes[off + 1]} << 16 |
           std::uint32_t{bytes[off + 2]} << 8 | std::uint32_t{bytes[off + 3]};
  }
  std::uint64_t u64_raw(std::uint64_t off) const {
    return std::uint64_t{u32_raw(off)} << 32 | std::uint64_t{u32_raw(off + 4)};
  }
};

/// Validate `data` as one complete v2 snapshot and return its view.  Checks
/// everything the format promises — magic/version, the declared file size
/// against the actual byte count, count fields against remaining bytes,
/// section offsets against the recomputed packed layout, 8-byte alignment
/// and zero padding, strict canonical orders, flag/relationship/class
/// ranges, CSR consistency with the link table, hybrid-flag consistency
/// with the hybrid table, coverage sanity, and the trailer — and throws a
/// reasoned DecodeError before any view escapes.
V2View validate_v2(std::span<const std::uint8_t> data);

}  // namespace htor::snapshot
