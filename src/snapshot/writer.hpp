// Snapshot serializer.  The format is big-endian throughout (ByteWriter) and
// fully canonical: relationship maps are written in sorted LinkKey order, so
// the same Snapshot always produces byte-identical output — file-level
// equality is snapshot equality.
//
// encode() emits format v2, the mmap-able flat layout (layout.hpp);
// encode_v1() keeps the original sequential encoding for compatibility
// tests and mixed-version corpora.  Both are canonical for their version.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "snapshot/snapshot.hpp"

namespace htor::snapshot {

class Writer {
 public:
  /// Serialize `snap` to its canonical v2 byte form.  Throws InvalidArgument
  /// when the snapshot is not encodable (source path over 64 KiB, a map
  /// entry with first == second, or a relationship/class value outside the
  /// format's range).
  static std::vector<std::uint8_t> encode(const Snapshot& snap);

  /// Serialize `snap` to the legacy v1 sequential encoding.  Same
  /// encodability rules as encode().
  static std::vector<std::uint8_t> encode_v1(const Snapshot& snap);

  /// encode() or encode_v1() by `version`; throws InvalidArgument for any
  /// other version.  The re-encode half of the fuzz byte-identity oracle.
  static std::vector<std::uint8_t> encode_versioned(const Snapshot& snap,
                                                    std::uint32_t version);

  /// encode() to a temporary file in the target directory, then rename it
  /// over `path` — readers (and a serving daemon mmap) never observe a
  /// half-written snapshot.  Throws Error when the file cannot be created
  /// or fully written.
  static void write_file(const Snapshot& snap, const std::string& path);
};

}  // namespace htor::snapshot
