#include "topology/valley.hpp"

namespace htor {

ValleyCheckResult check_valley_free(const std::vector<Asn>& path, const RelationshipFn& rel) {
  ValleyCheckResult result;

  // Collapse prepending: adjacent duplicates are the same AS.
  std::vector<Asn> p;
  p.reserve(path.size());
  for (Asn a : path) {
    if (p.empty() || p.back() != a) p.push_back(a);
  }
  if (p.size() < 2) return result;

  // States: 0 = climbing (c2p accepted), 1 = descending (p2c only).
  // A p2p or p2c link moves 0 -> 1; any c2p or second p2p in state 1 is a
  // valley.  Siblings never change state.
  int state = 0;
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    const Relationship r = rel(p[i], p[i + 1]);
    switch (r) {
      case Relationship::S2S:
        break;
      case Relationship::Unknown:
        ++result.unknown_links;
        break;
      case Relationship::C2P:
        if (state == 1 && result.cls == PathPolicyClass::ValleyFree) {
          result.cls = PathPolicyClass::Valley;
          result.first_violation = i;
        }
        break;
      case Relationship::P2P:
        ++result.peer_links;
        if (state == 1 && result.cls == PathPolicyClass::ValleyFree) {
          result.cls = PathPolicyClass::Valley;
          result.first_violation = i;
        }
        state = 1;
        break;
      case Relationship::P2C:
        state = 1;
        break;
    }
  }
  if (result.cls == PathPolicyClass::ValleyFree && result.unknown_links > 0) {
    result.cls = PathPolicyClass::Incomplete;
  }
  return result;
}

ValleyCheckResult check_valley_free(const std::vector<Asn>& path, const RelationshipMap& rels) {
  return check_valley_free(path, [&rels](Asn a, Asn b) { return rels.get(a, b); });
}

bool is_valley_free(const std::vector<Asn>& path, const RelationshipMap& rels, bool strict) {
  const auto result = check_valley_free(path, rels);
  if (result.cls == PathPolicyClass::ValleyFree) return true;
  if (result.cls == PathPolicyClass::Incomplete) return !strict;
  return false;
}

}  // namespace htor
