// Splittable 64-bit hashing — the single home for hash primitives.
//
// Every mixing constant in the repo lives here (tools/lint.py's `raw-hash`
// rule enforces it) so sketches, the generator, and any future consumer
// derive their bits from one audited construction.  All functions are
// deterministic pure functions of their inputs: the same (seed, item)
// always yields the same hash on every platform, which is what makes the
// sketches in this directory byte-identical across shard counts and
// `--jobs` values.
//
// `seeded(seed, lane)` splits one user seed into independent lanes (CMS
// rows, Bloom probe pairs) without correlated streams: each lane is a
// full splitmix64 walk away from its neighbours.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace htor::obs::sketch {

/// Fixed seed for every process-wide sketch.  One seed, one hash family:
/// estimates are reproducible across runs, machines, and job counts.
inline constexpr std::uint64_t kTelemetrySeed = 0x51ab;

/// Fast, well-distributed 64-bit mix (Steele et al.'s SplitMix64 finalizer).
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Combine two words so that neither can cancel the other.
inline std::uint64_t hash_mix(std::uint64_t a, std::uint64_t b) {
  return splitmix64(a ^ splitmix64(b));
}

/// Deterministic uniform double in [0, 1) from a hash value.
inline double hash_unit(std::uint64_t h) {
  return static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;
}

/// Hash of `item` under `seed`.  Distinct seeds give independent hash
/// functions of the same item — the basis for every sketch below.
inline std::uint64_t hash64(std::uint64_t seed, std::uint64_t item) {
  return hash_mix(splitmix64(seed), item);
}

/// Derive the seed for lane `lane` of a multi-row sketch from one user
/// seed.  Each lane is an independent hash function family member.
inline std::uint64_t seeded(std::uint64_t seed, std::uint64_t lane) {
  return splitmix64(seed + splitmix64(lane + 1));
}

/// FNV-1a over raw bytes, finalized through splitmix64 so short keys
/// still fill all 64 bits.  For hashing string-ish identities (prefixes
/// rendered as text, file names) into the uint64 item space.
inline std::uint64_t hash_bytes(std::string_view bytes, std::uint64_t seed = 0) {
  std::uint64_t h = 0xcbf29ce484222325ull ^ splitmix64(seed);
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return splitmix64(h);
}

}  // namespace htor::obs::sketch
