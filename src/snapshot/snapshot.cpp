#include "snapshot/snapshot.hpp"

#include <algorithm>

namespace htor::snapshot {

std::vector<std::pair<LinkKey, Relationship>> sorted_entries(const RelationshipMap& map) {
  std::vector<std::pair<LinkKey, Relationship>> out;
  out.reserve(map.size());
  map.for_each([&](const LinkKey& key, Relationship rel) { out.emplace_back(key, rel); });
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

bool same_entries(const RelationshipMap& a, const RelationshipMap& b) {
  if (a.size() != b.size()) return false;
  bool same = true;
  a.for_each([&](const LinkKey& key, Relationship rel) {
    if (!b.contains(key) || b.get(key.first, key.second) != rel) same = false;
  });
  return same;
}

bool equal(const Snapshot& a, const Snapshot& b) {
  return a.header == b.header && a.dataset == b.dataset && a.coverage_v4 == b.coverage_v4 &&
         a.coverage_v6 == b.coverage_v6 && a.coverage_dual == b.coverage_dual &&
         a.valleys_v4 == b.valleys_v4 && a.valleys_v6 == b.valleys_v6 &&
         a.hybrid_counters == b.hybrid_counters && a.hybrids == b.hybrids &&
         same_entries(a.rels_v4, b.rels_v4) && same_entries(a.rels_v6, b.rels_v6);
}

}  // namespace htor::snapshot
