// RPSL (RFC 2622) object parser, whois-dump flavour.
//
// The IRR databases serve objects as "attribute: value" lines; values may
// continue on following lines that start with whitespace or '+'; '%' and '#'
// start comments; a blank line ends an object.  Only the generic structure is
// parsed here — interpretation of aut-num community documentation lives in
// community_dict.hpp.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "netbase/asn.hpp"

namespace htor::rpsl {

struct Attribute {
  std::string key;    // lowercased
  std::string value;  // continuation lines joined with '\n'
};

class RpslObject {
 public:
  explicit RpslObject(std::vector<Attribute> attrs) : attrs_(std::move(attrs)) {}

  /// Class of the object = key of the first attribute ("aut-num", "route6"…).
  const std::string& class_name() const;

  /// First value for `key` (lowercased key), nullopt when absent.
  std::optional<std::string_view> get(std::string_view key) const;

  /// All values for `key`, in order.
  std::vector<std::string_view> all(std::string_view key) const;

  const std::vector<Attribute>& attributes() const { return attrs_; }

  /// For aut-num objects: the ASN from the class attribute ("AS64500").
  /// nullopt when this is not a parsable aut-num.
  std::optional<Asn> autnum() const;

 private:
  std::vector<Attribute> attrs_;
};

/// Parse a whole whois/IRR dump into objects.  Malformed lines (no colon at
/// top level) are skipped; an empty input yields no objects.
std::vector<RpslObject> parse_objects(std::string_view text);

}  // namespace htor::rpsl
