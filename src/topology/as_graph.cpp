#include "topology/as_graph.hpp"

#include "util/error.hpp"

namespace htor {

void AsGraph::add_as(Asn asn) {
  auto [it, inserted] = nodes_.try_emplace(asn);
  (void)it;
  if (inserted) as_list_.push_back(asn);
}

bool AsGraph::add_link(Asn a, Asn b, IpVersion af) {
  if (a == b) throw InvalidArgument("AsGraph::add_link: self link at AS" + std::to_string(a));
  add_as(a);
  add_as(b);
  const LinkKey key(a, b);
  auto& mask = links_[key];
  const std::uint8_t bit = af_bit(af);
  if (mask & bit) return false;
  const std::uint8_t before = mask;
  mask |= bit;
  if (af == IpVersion::V4) {
    ++v4_links_;
    nodes_[a].nbr_v4.push_back(b);
    nodes_[b].nbr_v4.push_back(a);
  } else {
    ++v6_links_;
    nodes_[a].nbr_v6.push_back(b);
    nodes_[b].nbr_v6.push_back(a);
  }
  if (before != 0 && mask == 3) ++dual_links_;
  return true;
}

bool AsGraph::has_link(Asn a, Asn b, IpVersion af) const {
  auto it = links_.find(LinkKey(a, b));
  return it != links_.end() && (it->second & af_bit(af)) != 0;
}

bool AsGraph::has_link(Asn a, Asn b) const { return links_.count(LinkKey(a, b)) != 0; }

std::size_t AsGraph::link_count(IpVersion af) const {
  return af == IpVersion::V4 ? v4_links_ : v6_links_;
}

std::size_t AsGraph::dual_stack_link_count() const { return dual_links_; }

const std::vector<Asn>& AsGraph::neighbors(Asn asn, IpVersion af) const {
  static const std::vector<Asn> kEmpty;
  auto it = nodes_.find(asn);
  if (it == nodes_.end()) return kEmpty;
  return af == IpVersion::V4 ? it->second.nbr_v4 : it->second.nbr_v6;
}

void AsGraph::for_each_link(IpVersion af,
                            const std::function<void(const LinkKey&)>& fn) const {
  const std::uint8_t bit = af_bit(af);
  for (const auto& [key, mask] : links_) {
    if (mask & bit) fn(key);
  }
}

std::vector<LinkKey> AsGraph::links(IpVersion af) const {
  std::vector<LinkKey> out;
  out.reserve(link_count(af));
  for_each_link(af, [&out](const LinkKey& key) { out.push_back(key); });
  return out;
}

std::vector<LinkKey> AsGraph::dual_stack_links() const {
  std::vector<LinkKey> out;
  out.reserve(dual_links_);
  for (const auto& [key, mask] : links_) {
    if (mask == 3) out.push_back(key);
  }
  return out;
}

}  // namespace htor
