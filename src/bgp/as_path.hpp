// AS_PATH attribute model (RFC 4271 §5.1.2, 4-byte encoding per RFC 6793).
//
// A path is a list of segments, each an AS_SEQUENCE or AS_SET.  Analysis code
// mostly works on the flattened ASN list; the segment structure is preserved
// for faithful re-encoding.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netbase/asn.hpp"

namespace htor::bgp {

enum class AsSegmentType : std::uint8_t { Set = 1, Sequence = 2 };

struct AsPathSegment {
  AsSegmentType type = AsSegmentType::Sequence;
  std::vector<Asn> asns;

  friend bool operator==(const AsPathSegment&, const AsPathSegment&) = default;
};

class AsPath {
 public:
  AsPath() = default;

  /// A single AS_SEQUENCE segment — the overwhelmingly common case.
  static AsPath sequence(std::vector<Asn> asns);

  const std::vector<AsPathSegment>& segments() const { return segments_; }
  bool empty() const { return segments_.empty(); }

  void add_segment(AsPathSegment seg) { segments_.push_back(std::move(seg)); }

  /// Prepend `asn` `count` times to the front (what an exporting AS does).
  void prepend(Asn asn, std::size_t count = 1);

  /// All ASNs in order, sets flattened in place.
  std::vector<Asn> flatten() const;

  /// Path length for the BGP decision process: each sequence ASN counts 1,
  /// each AS_SET counts 1 in total (RFC 4271 §9.1.2.2).
  std::size_t decision_length() const;

  /// First ASN (the neighbor that sent the route); 0 when empty.
  Asn first() const;
  /// Last ASN (the origin); 0 when empty.
  Asn origin() const;

  /// True when any ASN appears twice in non-adjacent positions (adjacent
  /// repeats are prepending, not loops).
  bool has_loop() const;

  /// True when `asn` appears anywhere in the path.
  bool contains(Asn asn) const;

  /// De-prepended copy of flatten(): adjacent duplicates collapsed.
  std::vector<Asn> flatten_deduped() const;

  /// "701 3356 3356 1299" / "{64500,64501}" rendering.
  std::string to_string() const;

  friend bool operator==(const AsPath&, const AsPath&) = default;

 private:
  std::vector<AsPathSegment> segments_;
};

}  // namespace htor::bgp
