// Fuzz target: the snapshot reader (snapshot::Reader::decode), both format
// versions.
//
// Contract asserted per input: decode yields a full Snapshot or throws a
// reasoned DecodeError.  Accepted inputs face a second, stronger oracle —
// the format's canonical-encoding guarantee: re-encoding the decoded
// snapshot *in the version it arrived in* must reproduce the input byte for
// byte.  A mutation the reader accepts but cannot round-trip means the
// format stopped being injective (some byte was silently ignored), which is
// exactly the class of bug that breaks snapshot diffing and --jobs
// determinism.  The corpus mixes v1 and v2 seeds so both decode paths stay
// under the same budget.
//
// On top of the generic mutator, a v2-specific pass perturbs the fields the
// flat layout's validator exists for: the declared file size, the section
// counts, and the six section offsets — nudged off by a few bytes
// (misalignment), zeroed, swapped, or blown up.  The generic strategies
// rarely land inside the 48..95 offset block, so without this pass the
// offset/alignment checks would go nearly unexercised.
#include "fuzz/driver.hpp"

#include "snapshot/layout.hpp"
#include "snapshot/reader.hpp"
#include "snapshot/writer.hpp"
#include "util/bytes.hpp"

using namespace htor;

namespace {

bool looks_like_v2(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < snapshot::kV2HeaderBytes) return false;
  const std::uint32_t magic = (std::uint32_t{bytes[0]} << 24) | (std::uint32_t{bytes[1]} << 16) |
                              (std::uint32_t{bytes[2]} << 8) | bytes[3];
  return magic == snapshot::kMagic && bytes[7] == 2;
}

void store_u64(std::vector<std::uint8_t>& bytes, std::size_t at, std::uint64_t value) {
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[at + i] = static_cast<std::uint8_t>(value >> (8 * (7 - i)));
  }
}

std::uint64_t load_u64(const std::vector<std::uint8_t>& bytes, std::size_t at) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < 8; ++i) value = (value << 8) | bytes[at + i];
  return value;
}

/// The v2 pass: half the time, corrupt one of the header's u64 structure
/// fields (size @16, link count @32, hybrid count @40, section offsets
/// @48..95) in an alignment-hostile way.
void mutate_v2_structure(std::vector<std::uint8_t>& bytes, Rng& rng) {
  if (!looks_like_v2(bytes) || rng.index(2) == 0) return;
  static constexpr std::size_t kFields[] = {16, 32, 40, 48, 56, 64, 72, 80, 88};
  const std::size_t at = kFields[rng.index(std::size(kFields))];
  const std::uint64_t value = load_u64(bytes, at);
  switch (rng.index(4)) {
    case 0:  // off-by-a-few: breaks alignment or section layout equations
      store_u64(bytes, at, value + 1 + rng.index(8) - 4);
      break;
    case 1:
      store_u64(bytes, at, 0);
      break;
    case 2: {  // swap two section offsets
      const std::size_t other = kFields[3 + rng.index(6)];
      const std::uint64_t tmp = load_u64(bytes, other);
      store_u64(bytes, other, value);
      store_u64(bytes, at, tmp);
      break;
    }
    case 3:
      store_u64(bytes, at, value | (std::uint64_t{1} << (32 + rng.index(31))));
      break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  return fuzz::run_target("fuzz_snapshot", argc, argv,
                          [](const std::vector<std::uint8_t>& input) {
    const auto snap = snapshot::Reader::decode(input);
    const auto reencoded = snapshot::Writer::encode_versioned(snap, snap.header.version);
    if (reencoded != input) {
      throw std::runtime_error("accepted input does not re-encode canonically (" +
                               std::to_string(input.size()) + " bytes in, " +
                               std::to_string(reencoded.size()) + " bytes out)");
    }
    return fuzz::Outcome::Parsed;
  }, mutate_v2_structure);
}
