// Small string helpers shared by the text parsers (RPSL, addresses) and the
// report printers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "netbase/asn.hpp"

namespace htor {

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Lowercase an ASCII string.
std::string to_lower(std::string_view s);

/// Split on a single character; empty fields are preserved.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Split on runs of ASCII whitespace; no empty fields.
std::vector<std::string_view> split_ws(std::string_view s);

/// True if `s` contains `needle` case-insensitively.
bool contains_ci(std::string_view s, std::string_view needle);

/// Parse a non-negative decimal integer; returns false on any non-digit or
/// overflow past 2^64-1.
bool parse_u64(std::string_view s, std::uint64_t& out);

/// Parse a 32-bit ASN in asplain form (RFC 6793: 0..4294967295); false on
/// garbage or overflow.  The single strict ASN parse shared by the CLI, the
/// query daemon's URL routing, and the RPSL aut-num parser.
bool parse_asn(std::string_view s, Asn& out);

/// Format a double with `digits` fraction digits.
std::string fmt_double(double v, int digits);

/// Percentage helper: fmt_double(100*num/den, digits) with a "%" suffix,
/// "n/a" when den == 0.
std::string fmt_pct(std::uint64_t num, std::uint64_t den, int digits = 1);

}  // namespace htor
