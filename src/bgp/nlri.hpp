// NLRI wire form: <length-in-bits:1 byte> <prefix bytes: ceil(len/8)>.
// Shared by UPDATE bodies, MP_REACH/MP_UNREACH attributes, and MRT RIB
// entries.
#pragma once

#include <vector>

#include "netbase/prefix.hpp"
#include "util/bytes.hpp"

namespace htor::bgp {

/// Append one prefix in NLRI form.
void encode_nlri_prefix(ByteWriter& w, const Prefix& prefix);

/// Read one prefix of family `version`.  Throws DecodeError on truncation or
/// an over-long length field.
Prefix decode_nlri_prefix(ByteReader& r, IpVersion version);

/// Read prefixes until the reader is exhausted.
std::vector<Prefix> decode_nlri_list(ByteReader& r, IpVersion version);

}  // namespace htor::bgp
