#include "bgp/path_attrs.hpp"

#include <algorithm>

namespace htor::bgp {

namespace {

// Append one attribute with the right flag bits and (extended) length field.
void put_attr(ByteWriter& w, std::uint8_t flags, PathAttrType type,
              const std::vector<std::uint8_t>& payload) {
  if (payload.size() > 0xff) flags |= kAttrFlagExtendedLength;
  w.u8(flags);
  w.u8(static_cast<std::uint8_t>(type));
  if (flags & kAttrFlagExtendedLength) {
    w.u16(static_cast<std::uint16_t>(payload.size()));
  } else {
    w.u8(static_cast<std::uint8_t>(payload.size()));
  }
  w.bytes(payload);
}

std::vector<std::uint8_t> encode_as_path(const AsPath& path) {
  ByteWriter w;
  for (const auto& seg : path.segments()) {
    w.u8(static_cast<std::uint8_t>(seg.type));
    w.u8(static_cast<std::uint8_t>(seg.asns.size()));
    for (Asn a : seg.asns) w.u32(a);
  }
  return w.take();
}

AsPath decode_as_path(ByteReader r) {
  AsPath path;
  while (!r.exhausted()) {
    AsPathSegment seg;
    const std::uint8_t type = r.u8();
    if (type != 1 && type != 2) {
      throw DecodeError("AS_PATH segment type " + std::to_string(type));
    }
    seg.type = static_cast<AsSegmentType>(type);
    const std::uint8_t count = r.u8();
    seg.asns.reserve(count);
    for (std::uint8_t i = 0; i < count; ++i) seg.asns.push_back(r.u32());
    path.add_segment(std::move(seg));
  }
  return path;
}

IpAddress read_address(ByteReader& r, IpVersion version) {
  auto raw = r.bytes(address_bytes(version));
  return IpAddress(version, raw);
}

IpVersion version_of(Afi afi) { return afi == Afi::Ipv4 ? IpVersion::V4 : IpVersion::V6; }

std::vector<std::uint8_t> encode_mp_reach(const MpReachNlri& mp) {
  ByteWriter w;
  w.u16(static_cast<std::uint16_t>(mp.afi));
  w.u8(static_cast<std::uint8_t>(mp.safi));
  std::size_t nh_len = 0;
  for (const auto& nh : mp.next_hops) nh_len += nh.bytes().size();
  w.u8(static_cast<std::uint8_t>(nh_len));
  for (const auto& nh : mp.next_hops) w.bytes(nh.bytes());
  w.u8(0);  // reserved (SNPA count in RFC 2858; must be 0 per RFC 4760)
  for (const auto& p : mp.nlri) encode_nlri_prefix(w, p);
  return w.take();
}

MpReachNlri decode_mp_reach(ByteReader r) {
  MpReachNlri mp;
  const std::uint16_t afi = r.u16();
  if (afi != 1 && afi != 2) throw DecodeError("MP_REACH AFI " + std::to_string(afi));
  mp.afi = static_cast<Afi>(afi);
  const std::uint8_t safi = r.u8();
  if (safi != 1 && safi != 2) throw DecodeError("MP_REACH SAFI " + std::to_string(safi));
  mp.safi = static_cast<Safi>(safi);
  const IpVersion ver = version_of(mp.afi);
  std::size_t nh_len = r.u8();
  const std::size_t unit = address_bytes(ver);
  if (nh_len % unit != 0) throw DecodeError("MP_REACH next-hop length " + std::to_string(nh_len));
  while (nh_len > 0) {
    mp.next_hops.push_back(read_address(r, ver));
    nh_len -= unit;
  }
  r.skip(1);  // reserved
  mp.nlri = decode_nlri_list(r, ver);
  return mp;
}

// Abbreviated MRT-RIB form: just <nh len><next hops>; family is inferred
// from the next-hop size (16/32 bytes -> IPv6).
std::vector<std::uint8_t> encode_mp_reach_mrt(const MpReachNlri& mp) {
  ByteWriter w;
  std::size_t nh_len = 0;
  for (const auto& nh : mp.next_hops) nh_len += nh.bytes().size();
  w.u8(static_cast<std::uint8_t>(nh_len));
  for (const auto& nh : mp.next_hops) w.bytes(nh.bytes());
  return w.take();
}

MpReachNlri decode_mp_reach_mrt(ByteReader r) {
  MpReachNlri mp;
  std::size_t nh_len = r.u8();
  const IpVersion ver = (nh_len % 16 == 0 && nh_len > 0) ? IpVersion::V6 : IpVersion::V4;
  mp.afi = ver == IpVersion::V6 ? Afi::Ipv6 : Afi::Ipv4;
  mp.safi = Safi::Unicast;
  const std::size_t unit = address_bytes(ver);
  if (nh_len % unit != 0) {
    throw DecodeError("MRT MP_REACH next-hop length " + std::to_string(nh_len));
  }
  while (nh_len > 0) {
    mp.next_hops.push_back(read_address(r, ver));
    nh_len -= unit;
  }
  return mp;
}

std::vector<std::uint8_t> encode_mp_unreach(const MpUnreachNlri& mp) {
  ByteWriter w;
  w.u16(static_cast<std::uint16_t>(mp.afi));
  w.u8(static_cast<std::uint8_t>(mp.safi));
  for (const auto& p : mp.withdrawn) encode_nlri_prefix(w, p);
  return w.take();
}

MpUnreachNlri decode_mp_unreach(ByteReader r) {
  MpUnreachNlri mp;
  const std::uint16_t afi = r.u16();
  if (afi != 1 && afi != 2) throw DecodeError("MP_UNREACH AFI " + std::to_string(afi));
  mp.afi = static_cast<Afi>(afi);
  const std::uint8_t safi = r.u8();
  if (safi != 1 && safi != 2) throw DecodeError("MP_UNREACH SAFI " + std::to_string(safi));
  mp.safi = static_cast<Safi>(safi);
  mp.withdrawn = decode_nlri_list(r, version_of(mp.afi));
  return mp;
}

}  // namespace

bool PathAttributes::has_community(Community c) const {
  return std::find(communities.begin(), communities.end(), c) != communities.end();
}

std::vector<std::uint8_t> encode_path_attributes(const PathAttributes& attrs, MpReachForm form) {
  ByteWriter w;
  constexpr std::uint8_t kWellKnown = kAttrFlagTransitive;
  constexpr std::uint8_t kOptTrans = kAttrFlagOptional | kAttrFlagTransitive;
  constexpr std::uint8_t kOptNonTrans = kAttrFlagOptional;

  if (attrs.origin) {
    put_attr(w, kWellKnown, PathAttrType::Origin,
             {static_cast<std::uint8_t>(*attrs.origin)});
  }
  if (!attrs.as_path.empty()) {
    put_attr(w, kWellKnown, PathAttrType::AsPath, encode_as_path(attrs.as_path));
  }
  if (attrs.next_hop) {
    if (!attrs.next_hop->is_v4()) throw InvalidArgument("NEXT_HOP attribute must be IPv4");
    auto b = attrs.next_hop->bytes();
    put_attr(w, kWellKnown, PathAttrType::NextHop, {b.begin(), b.end()});
  }
  if (attrs.med) {
    ByteWriter p;
    p.u32(*attrs.med);
    put_attr(w, kOptNonTrans, PathAttrType::Med, p.data());
  }
  if (attrs.local_pref) {
    ByteWriter p;
    p.u32(*attrs.local_pref);
    put_attr(w, kWellKnown, PathAttrType::LocalPref, p.data());
  }
  if (attrs.atomic_aggregate) {
    put_attr(w, kWellKnown, PathAttrType::AtomicAggregate, {});
  }
  if (attrs.aggregator) {
    ByteWriter p;
    p.u32(attrs.aggregator->asn);
    if (!attrs.aggregator->router_id.is_v4()) {
      throw InvalidArgument("AGGREGATOR router id must be IPv4");
    }
    p.bytes(attrs.aggregator->router_id.bytes());
    put_attr(w, kOptTrans, PathAttrType::Aggregator, p.data());
  }
  if (!attrs.communities.empty()) {
    ByteWriter p;
    for (Community c : attrs.communities) p.u32(c.raw());
    put_attr(w, kOptTrans, PathAttrType::Communities, p.data());
  }
  if (attrs.mp_reach) {
    put_attr(w, kOptNonTrans, PathAttrType::MpReachNlri,
             form == MpReachForm::Full ? encode_mp_reach(*attrs.mp_reach)
                                       : encode_mp_reach_mrt(*attrs.mp_reach));
  }
  if (attrs.mp_unreach) {
    put_attr(w, kOptNonTrans, PathAttrType::MpUnreachNlri, encode_mp_unreach(*attrs.mp_unreach));
  }
  if (!attrs.large_communities.empty()) {
    ByteWriter p;
    for (const auto& lc : attrs.large_communities) {
      p.u32(lc.global);
      p.u32(lc.local1);
      p.u32(lc.local2);
    }
    put_attr(w, kOptTrans, PathAttrType::LargeCommunities, p.data());
  }
  for (const auto& raw : attrs.unknown) {
    put_attr(w, raw.flags, static_cast<PathAttrType>(raw.type), raw.payload);
  }
  return w.take();
}

PathAttributes decode_path_attributes(ByteReader& r, MpReachForm form) {
  PathAttributes attrs;
  while (!r.exhausted()) {
    const std::uint8_t flags = r.u8();
    const std::uint8_t type = r.u8();
    const std::size_t len = (flags & kAttrFlagExtendedLength) ? r.u16() : r.u8();
    ByteReader body = r.sub(len);
    switch (static_cast<PathAttrType>(type)) {
      case PathAttrType::Origin: {
        const std::uint8_t o = body.u8();
        if (o > 2) throw DecodeError("ORIGIN value " + std::to_string(o));
        attrs.origin = static_cast<Origin>(o);
        break;
      }
      case PathAttrType::AsPath:
        attrs.as_path = decode_as_path(body);
        break;
      case PathAttrType::NextHop:
        attrs.next_hop = read_address(body, IpVersion::V4);
        break;
      case PathAttrType::Med:
        attrs.med = body.u32();
        break;
      case PathAttrType::LocalPref:
        attrs.local_pref = body.u32();
        break;
      case PathAttrType::AtomicAggregate:
        attrs.atomic_aggregate = true;
        break;
      case PathAttrType::Aggregator: {
        Aggregator agg;
        agg.asn = body.u32();
        agg.router_id = read_address(body, IpVersion::V4);
        attrs.aggregator = agg;
        break;
      }
      case PathAttrType::Communities: {
        if (len % 4 != 0) throw DecodeError("COMMUNITIES length not a multiple of 4");
        while (!body.exhausted()) attrs.communities.push_back(Community(body.u32()));
        break;
      }
      case PathAttrType::LargeCommunities: {
        if (len % 12 != 0) throw DecodeError("LARGE_COMMUNITIES length not a multiple of 12");
        while (!body.exhausted()) {
          LargeCommunity lc;
          lc.global = body.u32();
          lc.local1 = body.u32();
          lc.local2 = body.u32();
          attrs.large_communities.push_back(lc);
        }
        break;
      }
      case PathAttrType::MpReachNlri:
        attrs.mp_reach = form == MpReachForm::Full ? decode_mp_reach(body)
                                                   : decode_mp_reach_mrt(body);
        break;
      case PathAttrType::MpUnreachNlri:
        attrs.mp_unreach = decode_mp_unreach(body);
        break;
      default: {
        RawAttribute raw;
        raw.flags = flags;
        raw.type = type;
        raw.payload = body.bytes_copy(body.remaining());
        attrs.unknown.push_back(std::move(raw));
        break;
      }
    }
  }
  return attrs;
}

}  // namespace htor::bgp
