// Unit tests for util/json: the deterministic writer whose bytes both the
// CLI's --json output and the query daemon's HTTP bodies are built from.
#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/json.hpp"

namespace htor {
namespace {

TEST(JsonWriter, FlatObject) {
  JsonWriter json;
  json.begin_object();
  json.key("a").value(std::uint64_t{1});
  json.key("b").value("two");
  json.key("c").value(true);
  json.key("d").value(false);
  json.end_object();
  EXPECT_EQ(json.str(), R"({"a":1,"b":"two","c":true,"d":false})");
}

TEST(JsonWriter, NestedContainers) {
  JsonWriter json;
  json.begin_object();
  json.key("list").begin_array();
  json.value(std::uint64_t{1});
  json.begin_object().key("x").value(std::uint64_t{2}).end_object();
  json.begin_array().end_array();
  json.end_array();
  json.key("obj").begin_object().end_object();
  json.end_object();
  EXPECT_EQ(json.str(), R"({"list":[1,{"x":2},[]],"obj":{}})");
}

TEST(JsonWriter, RootArrayAndScalars) {
  JsonWriter json;
  json.begin_array();
  json.value("a");
  json.value(std::uint64_t{18446744073709551615ull});
  json.end_array();
  EXPECT_EQ(json.str(), R"(["a",18446744073709551615])");

  JsonWriter scalar;
  scalar.value("just a string");
  EXPECT_EQ(scalar.str(), R"("just a string")");
}

TEST(JsonWriter, EscapesStrings) {
  EXPECT_EQ(JsonWriter::quote("plain"), R"("plain")");
  EXPECT_EQ(JsonWriter::quote("a\"b"), R"("a\"b")");
  EXPECT_EQ(JsonWriter::quote("a\\b"), R"("a\\b")");
  EXPECT_EQ(JsonWriter::quote("tab\there"), R"("tab\there")");
  EXPECT_EQ(JsonWriter::quote("line\nbreak"), R"("line\nbreak")");
  EXPECT_EQ(JsonWriter::quote(std::string_view("\x01\x1f", 2)), "\"\\u0001\\u001f\"");
  // High bytes (UTF-8 continuation) pass through untouched.
  EXPECT_EQ(JsonWriter::quote("caf\xc3\xa9"), "\"caf\xc3\xa9\"");
}

TEST(JsonWriter, KeysAreEscapedToo) {
  JsonWriter json;
  json.begin_object().key("we\"ird").value(std::uint64_t{1}).end_object();
  EXPECT_EQ(json.str(), R"({"we\"ird":1})");
}

TEST(JsonWriter, MisuseThrows) {
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.value(std::uint64_t{1}), InvalidArgument);  // value without key
  }
  {
    JsonWriter json;
    json.begin_array();
    EXPECT_THROW(json.key("k"), InvalidArgument);  // key inside array
  }
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.end_array(), InvalidArgument);  // mismatched close
  }
  {
    JsonWriter json;
    json.begin_object().key("k");
    EXPECT_THROW(json.end_object(), InvalidArgument);  // dangling key
  }
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.str(), InvalidArgument);  // incomplete document
  }
  {
    JsonWriter json;
    EXPECT_THROW(json.str(), InvalidArgument);  // empty document
  }
  {
    JsonWriter json;
    json.value(std::uint64_t{1});
    EXPECT_THROW(json.value(std::uint64_t{2}), InvalidArgument);  // second root
  }
}

// ------------------------------------------------------------ parser
//
// JsonValue::parse reads back exactly the subset JsonWriter emits; it
// exists so tests can assert on structure (Chrome traces, daemon bodies)
// instead of substring-matching.  Strictness is the point: everything the
// writer cannot produce is rejected with a ParseError naming the offset.

TEST(JsonParser, RoundTripsWriterOutput) {
  JsonWriter json;
  json.begin_object();
  json.key("n").value(std::uint64_t{18446744073709551615u});
  json.key("s").value("a\"b\\c\nd");
  json.key("t").value(true);
  json.key("list").begin_array();
  json.value(std::uint64_t{1});
  json.value(std::uint64_t{2});
  json.end_array();
  json.end_object();

  const JsonValue v = JsonValue::parse(json.str());
  EXPECT_EQ(v.at("n").as_uint(), 18446744073709551615u);
  EXPECT_EQ(v.at("s").as_string(), "a\"b\\c\nd");
  EXPECT_TRUE(v.at("t").as_bool());
  ASSERT_EQ(v.at("list").as_array().size(), 2u);
  EXPECT_EQ(v.at("list").as_array()[1].as_uint(), 2u);
  EXPECT_TRUE(v.contains("n"));
  EXPECT_FALSE(v.contains("absent"));
}

TEST(JsonParser, WhitespaceAndNesting) {
  const JsonValue v = JsonValue::parse("  { \"a\" : [ 1 , { \"b\" : [ ] } ] }\n");
  EXPECT_EQ(v.at("a").as_array()[0].as_uint(), 1u);
  EXPECT_TRUE(v.at("a").as_array()[1].at("b").as_array().empty());
}

TEST(JsonParser, ScalarRoots) {
  EXPECT_EQ(JsonValue::parse("42").as_uint(), 42u);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
  EXPECT_FALSE(JsonValue::parse("false").as_bool());
  EXPECT_TRUE(JsonValue::parse("null").is_null());
}

TEST(JsonParser, RejectsOutsideTheSubset) {
  // Not emitted by JsonWriter, so not accepted: negative, fractional,
  // exponent, leading zeros, bare words, high \u escapes.
  EXPECT_THROW(JsonValue::parse("-1"), ParseError);
  EXPECT_THROW(JsonValue::parse("1.5"), ParseError);
  EXPECT_THROW(JsonValue::parse("1e3"), ParseError);
  EXPECT_THROW(JsonValue::parse("01"), ParseError);
  EXPECT_THROW(JsonValue::parse("nul"), ParseError);
  EXPECT_THROW(JsonValue::parse("\"\\u0100\""), ParseError);
  // 2^64 overflows uint64.
  EXPECT_THROW(JsonValue::parse("18446744073709551616"), ParseError);
}

TEST(JsonParser, RejectsMalformedDocuments) {
  EXPECT_THROW(JsonValue::parse(""), ParseError);
  EXPECT_THROW(JsonValue::parse("{"), ParseError);
  EXPECT_THROW(JsonValue::parse("{\"a\":1,}"), ParseError);
  EXPECT_THROW(JsonValue::parse("[1 2]"), ParseError);
  EXPECT_THROW(JsonValue::parse("{\"a\" 1}"), ParseError);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), ParseError);
  EXPECT_THROW(JsonValue::parse("{\"a\":1} trailing"), ParseError);
  // Duplicate keys are ambiguous; the writer never emits them.
  EXPECT_THROW(JsonValue::parse("{\"a\":1,\"a\":2}"), ParseError);
  // Raw control characters must be escaped.
  EXPECT_THROW(JsonValue::parse("\"a\nb\""), ParseError);
}

TEST(JsonParser, DepthIsCapped) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_THROW(JsonValue::parse(deep), ParseError);
  // 60 levels is within the 64-level cap.
  std::string ok;
  for (int i = 0; i < 60; ++i) ok += '[';
  for (int i = 0; i < 60; ++i) ok += ']';
  EXPECT_NO_THROW(JsonValue::parse(ok));
}

TEST(JsonParser, TypeMismatchAccessorsThrow) {
  const JsonValue v = JsonValue::parse("{\"a\":1}");
  EXPECT_THROW(v.as_array(), InvalidArgument);
  EXPECT_THROW(v.at("a").as_string(), InvalidArgument);
  EXPECT_THROW(v.at("missing"), InvalidArgument);
  EXPECT_THROW(v.at("a").at("x"), InvalidArgument);
}

}  // namespace
}  // namespace htor
