// A3 (ablation): community stripping vs. inference coverage.
// Transit ASes that strip inbound communities destroy the tags of everyone
// behind them; this sweep quantifies how fast coverage degrades and how much
// the LocPrf Rosetta (whose first-hop signal survives stripping) buys back.
#include <iostream>

#include "harness.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace htor;
  bench::print_header("A3 / bench_ablation_strip",
                      "community stripping degrades coverage; the Rosetta compensates "
                      "on first-hop links");

  Table t({"strip prob", "v6 coverage (comm only)", "v6 coverage (+Rosetta)",
           "rosetta links added", "dual both-known"});

  for (double strip : {0.0, 0.05, 0.15, 0.30, 0.50}) {
    gen::GenParams params;
    params.strip_prob = strip;
    const auto ds = bench::make_dataset(params);

    core::InferenceConfig comm_only;
    comm_only.use_rosetta = false;
    const auto census_comm = core::run_census(ds.rib, ds.dict, comm_only);
    const auto census_full = core::run_census(ds.rib, ds.dict);

    t.row({fmt_double(strip, 2),
           fmt_pct(census_comm.v6_coverage.covered_links,
                   census_comm.v6_coverage.observed_links),
           fmt_pct(census_full.v6_coverage.covered_links,
                   census_full.v6_coverage.observed_links),
           std::to_string(census_full.inferred.rosetta_v6.first_hop_rels.size()),
           std::to_string(census_full.dual_coverage.covered_links)});
  }
  t.print(std::cout);
  std::cout << "\nnote: stripping is applied per transit AS, so each stripper blanks the\n"
               "tags of its whole upstream path suffix — coverage falls faster than the\n"
               "stripping probability itself.\n";
  return 0;
}
