// Tests for the probabilistic sketch layer (src/obs/sketch/): HyperLogLog,
// count-min, and Bloom determinism and merge discipline.
//
// The claims under test are the ones the telemetry design rests on
// (telemetry.hpp header comment):
//   * merge() is associative, commutative, and (for HLL/Bloom) idempotent,
//     so per-shard sketches merged in shard order are byte-identical to a
//     sequential feed — at every shard count and every --jobs value;
//   * estimates stay within the repo's 2%-of-exact acceptance bound at
//     10k / 100k / 1M items on pinned seeds;
//   * the full ingest path (rib_from_records over a thread pool) yields
//     identical Telemetry snapshots for --jobs 1 and --jobs 4, including on
//     a ≥100k-AS synthetic internet (the acceptance-criteria scale).
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "gen/internet.hpp"
#include "mrt/rib_view.hpp"
#include "obs/sketch/bloom.hpp"
#include "obs/sketch/cms.hpp"
#include "obs/sketch/hll.hpp"
#include "obs/sketch/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace htor::obs::sketch {
namespace {

// Pinned, structure-free item streams: distinct by construction (an offset
// range), scrambled only by the sketch's own hash.
std::vector<std::uint64_t> item_stream(std::uint64_t base, std::size_t n) {
  std::vector<std::uint64_t> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) items.push_back(base + i);
  return items;
}

// ------------------------------------------------------------------- HLL

TEST(Hll, SmallRangeUsesLinearCountingExactly) {
  Hll hll(Hll::kDefaultPrecision, kTelemetrySeed);
  EXPECT_TRUE(hll.empty());
  EXPECT_EQ(hll.estimate_count(), 0);

  for (std::uint64_t item : item_stream(100, 1000)) hll.add(item);
  EXPECT_FALSE(hll.empty());
  // 1000 items in 16384 registers sit deep in the linear-counting regime:
  // the estimate is within a fraction of a percent of exact.
  EXPECT_NEAR(static_cast<double>(hll.estimate_count()), 1000.0, 20.0);

  // Re-adding the same stream is a no-op: the registers saturate.
  const auto before = hll.registers();
  for (std::uint64_t item : item_stream(100, 1000)) hll.add(item);
  EXPECT_EQ(hll.registers(), before);
}

TEST(Hll, ErrorWithinTwoPercentAt10k100k1M) {
  // Two pinned bases per size: different streams, same bound.  p=14 has a
  // standard error of ~0.81%, so 2% is ~2.5 sigma — comfortably stable for
  // fixed seeds.
  const std::uint64_t bases[] = {0x12345678ull, 0xdeadbeef0000ull};
  for (const std::size_t n : {std::size_t{10'000}, std::size_t{100'000}, std::size_t{1'000'000}}) {
    for (const std::uint64_t base : bases) {
      Hll hll(Hll::kDefaultPrecision, kTelemetrySeed);
      for (std::uint64_t item : item_stream(base, n)) hll.add(item);
      const double estimate = hll.estimate();
      const double error = std::abs(estimate - static_cast<double>(n)) / static_cast<double>(n);
      EXPECT_LE(error, 0.02) << "n=" << n << " base=" << base << " estimate=" << estimate;
    }
  }
}

TEST(Hll, MergeIsCommutativeAssociativeIdempotent) {
  Hll a(Hll::kDefaultPrecision, kTelemetrySeed);
  Hll b(Hll::kDefaultPrecision, kTelemetrySeed);
  Hll c(Hll::kDefaultPrecision, kTelemetrySeed);
  for (std::uint64_t item : item_stream(0, 5000)) a.add(item);
  for (std::uint64_t item : item_stream(3000, 5000)) b.add(item);  // overlaps a
  for (std::uint64_t item : item_stream(90000, 2000)) c.add(item);

  // Commutative: a∪b == b∪a, register for register.
  Hll ab = a;
  ab.merge(b);
  Hll ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.registers(), ba.registers());

  // Associative: (a∪b)∪c == a∪(b∪c).
  Hll abc_left = ab;
  abc_left.merge(c);
  Hll bc = b;
  bc.merge(c);
  Hll abc_right = a;
  abc_right.merge(bc);
  EXPECT_EQ(abc_left.registers(), abc_right.registers());

  // Idempotent: merging a sketch into itself changes nothing.
  Hll aa = a;
  aa.merge(a);
  EXPECT_EQ(aa.registers(), a.registers());
}

TEST(Hll, ShardedFeedsMergeByteIdenticalAtEveryShardCount) {
  const auto items = item_stream(0xc0ffee, 50'000);

  Hll sequential(Hll::kDefaultPrecision, kTelemetrySeed);
  for (std::uint64_t item : items) sequential.add(item);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}, std::size_t{32}}) {
    std::vector<Hll> parts(shards, Hll(Hll::kDefaultPrecision, kTelemetrySeed));
    // Round-robin partition: each shard sees an interleaved slice, i.e. a
    // feed order very different from sequential.
    for (std::size_t i = 0; i < items.size(); ++i) parts[i % shards].add(items[i]);
    Hll merged(Hll::kDefaultPrecision, kTelemetrySeed);
    for (const Hll& part : parts) merged.merge(part);
    EXPECT_EQ(merged.registers(), sequential.registers()) << "shards=" << shards;
  }
}

TEST(Hll, MergeRejectsShapeMismatch) {
  Hll a(14, kTelemetrySeed);
  Hll precision(12, kTelemetrySeed);
  Hll seed(14, kTelemetrySeed + 1);
  EXPECT_THROW(a.merge(precision), std::invalid_argument);
  EXPECT_THROW(a.merge(seed), std::invalid_argument);
  EXPECT_THROW(Hll(3), std::invalid_argument);
  EXPECT_THROW(Hll(19), std::invalid_argument);
}

// ------------------------------------------------------------------- CMS

TEST(Cms, NeverUndercountsAndRecoversPlantedHeavyHitters) {
  Cms cms(Cms::kDefaultWidthLog2, Cms::kDefaultDepth, Cms::kDefaultTopK, kTelemetrySeed);
  const struct {
    std::uint64_t item;
    std::uint64_t weight;
  } planted[] = {{1, 5000}, {2, 3000}, {3, 2000}};
  for (const auto& p : planted) cms.update(p.item, p.weight);
  // Uniform noise: 10k singleton items.
  std::uint64_t noise_total = 0;
  for (std::uint64_t item : item_stream(1000, 10'000)) {
    cms.update(item);
    ++noise_total;
  }
  EXPECT_EQ(cms.total_weight(), 5000u + 3000u + 2000u + noise_total);

  // Point queries only overcount, and by at most 2N/width with high
  // probability (N = 20000, width 4096 -> bound ~10; allow 4x slack).
  for (const auto& p : planted) {
    EXPECT_GE(cms.query(p.item), p.weight);
    EXPECT_LE(cms.query(p.item), p.weight + 40);
  }

  // The heavy hitters dominate the top list, in weight order.
  const auto top = cms.top();
  ASSERT_GE(top.size(), 3u);
  EXPECT_EQ(top[0].item, 1u);
  EXPECT_EQ(top[1].item, 2u);
  EXPECT_EQ(top[2].item, 3u);
}

TEST(Cms, ShardedSortedFeedsMergeToIdenticalCounters) {
  // The counter plane is pure addition, so any partition of the stream
  // merges to byte-identical counters and total weight.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> feed;
  for (std::uint64_t i = 0; i < 20'000; ++i) feed.emplace_back(i * 7 + 1, (i % 13) + 1);

  Cms sequential(Cms::kDefaultWidthLog2, Cms::kDefaultDepth, Cms::kDefaultTopK, kTelemetrySeed);
  for (const auto& [item, weight] : feed) sequential.update(item, weight);

  for (const std::size_t shards : {std::size_t{4}, std::size_t{32}}) {
    std::vector<Cms> parts(
        shards, Cms(Cms::kDefaultWidthLog2, Cms::kDefaultDepth, Cms::kDefaultTopK, kTelemetrySeed));
    // Contiguous ranges, like core::shard_ranges cuts record batches.
    const std::size_t chunk = feed.size() / shards;
    for (std::size_t i = 0; i < feed.size(); ++i) {
      parts[std::min(i / chunk, shards - 1)].update(feed[i].first, feed[i].second);
    }
    Cms merged(Cms::kDefaultWidthLog2, Cms::kDefaultDepth, Cms::kDefaultTopK, kTelemetrySeed);
    for (const Cms& part : parts) merged.merge(part);
    EXPECT_EQ(merged.counters(), sequential.counters()) << "shards=" << shards;
    EXPECT_EQ(merged.total_weight(), sequential.total_weight());
  }
}

TEST(Cms, IdenticalFeedsGiveIdenticalTopLists) {
  auto run = [] {
    Cms cms(Cms::kDefaultWidthLog2, Cms::kDefaultDepth, Cms::kDefaultTopK, kTelemetrySeed);
    for (std::uint64_t i = 0; i < 5000; ++i) cms.update(i % 600, 1 + i % 3);
    return cms.top();
  };
  const auto first = run();
  const auto second = run();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].item, second[i].item);
    EXPECT_EQ(first[i].estimate, second[i].estimate);
  }
}

TEST(Cms, MergeRejectsShapeMismatch) {
  Cms a(12, 4, 16, kTelemetrySeed);
  EXPECT_THROW(a.merge(Cms(11, 4, 16, kTelemetrySeed)), std::invalid_argument);
  EXPECT_THROW(a.merge(Cms(12, 3, 16, kTelemetrySeed)), std::invalid_argument);
  EXPECT_THROW(a.merge(Cms(12, 4, 8, kTelemetrySeed)), std::invalid_argument);
  EXPECT_THROW(a.merge(Cms(12, 4, 16, kTelemetrySeed + 1)), std::invalid_argument);
}

// ----------------------------------------------------------------- Bloom

TEST(Bloom, NoFalseNegativesAndBoundedFalsePositives) {
  Bloom bloom(100'000, 0.01, kTelemetrySeed);
  const auto members = item_stream(0, 50'000);
  for (std::uint64_t item : members) {
    EXPECT_FALSE(bloom.contains(item));  // fresh filter: genuinely new
    bloom.insert(item);
  }
  // Never a false negative.
  for (std::uint64_t item : members) EXPECT_TRUE(bloom.contains(item));
  // insert() reports prior membership the second time around.
  EXPECT_TRUE(bloom.insert(members.front()));

  // False-positive rate at half load stays near the configured 1%; 3x
  // headroom keeps the pinned-seed assertion far from the noise floor.
  std::size_t false_positives = 0;
  const auto non_members = item_stream(1u << 30, 50'000);
  for (std::uint64_t item : non_members) {
    if (bloom.contains(item)) ++false_positives;
  }
  EXPECT_LE(false_positives, 50'000 * 3 / 100);
}

TEST(Bloom, ShardedInsertsMergeToIdenticalBits) {
  const auto items = item_stream(0xabcdef, 30'000);
  Bloom sequential(1 << 16, 0.01, kTelemetrySeed);
  for (std::uint64_t item : items) sequential.insert(item);

  for (const std::size_t shards : {std::size_t{4}, std::size_t{32}}) {
    std::vector<Bloom> parts(shards, Bloom(1 << 16, 0.01, kTelemetrySeed));
    for (std::size_t i = 0; i < items.size(); ++i) parts[i % shards].insert(items[i]);
    Bloom merged(1 << 16, 0.01, kTelemetrySeed);
    for (const Bloom& part : parts) merged.merge(part);
    EXPECT_EQ(merged.words(), sequential.words()) << "shards=" << shards;
  }
}

TEST(Bloom, MergeRejectsShapeMismatch) {
  Bloom a(1 << 16, 0.01, kTelemetrySeed);
  EXPECT_THROW(a.merge(Bloom(1 << 12, 0.01, kTelemetrySeed)), std::invalid_argument);
  EXPECT_THROW(a.merge(Bloom(1 << 16, 0.01, kTelemetrySeed + 1)), std::invalid_argument);
  EXPECT_THROW(Bloom(0, 0.01), std::invalid_argument);
  EXPECT_THROW(Bloom(100, 0.0), std::invalid_argument);
  EXPECT_THROW(Bloom(100, 1.0), std::invalid_argument);
}

// ----------------------------------------------------------- IngestBundle

TEST(IngestBundle, CollapsesPrependingAndCountsTheOrigin) {
  IngestBundle bundle;
  const Prefix prefix = Prefix::parse("10.0.0.0/24");
  // 20 prepended twice: the AS set is {10,20,30}, links {10-20, 20-30},
  // origin 30.
  bundle.add_route(prefix, {10, 20, 20, 30});
  EXPECT_EQ(bundle.ases.estimate_count(), 3);
  EXPECT_EQ(bundle.links.estimate_count(), 2);
  EXPECT_EQ(bundle.prefixes.estimate_count(), 1);
  const auto top = bundle.origins.top();
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].item, as_item(30));
  EXPECT_EQ(top[0].estimate, 1u);

  // The same prefix again adds no new cardinality, one more origin route.
  bundle.add_route(prefix, {10, 20, 30});
  EXPECT_EQ(bundle.prefixes.estimate_count(), 1);
  EXPECT_EQ(bundle.origins.top()[0].estimate, 2u);
}

TEST(IngestBundle, LinkIdentityIsDirectionless) {
  IngestBundle forward;
  IngestBundle backward;
  const Prefix prefix = Prefix::parse("10.1.0.0/24");
  forward.add_route(prefix, {10, 20, 30});
  backward.add_route(prefix, {30, 20, 10});
  EXPECT_EQ(forward.links.registers(), backward.links.registers());
  EXPECT_EQ(link_item(10, 20), link_item(20, 10));
}

TEST(IngestBundle, ShardPartitionsMergeByteIdentical) {
  // Real generator routes, partitioned like the ingest shard map cuts
  // record batches: contiguous ranges, merged in shard order.  The HLL
  // registers and CMS counter plane must match a single sequential bundle
  // bit for bit at every shard count.
  const auto net = gen::SyntheticInternet::generate(gen::small_params(7));
  const auto rib = net.collect();
  const auto& routes = rib.routes();
  ASSERT_GT(routes.size(), 5'000u);

  IngestBundle sequential;
  for (const auto& route : routes) sequential.add_route(route.prefix, route.as_path);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}, std::size_t{32}}) {
    std::vector<IngestBundle> parts(shards);
    const std::size_t chunk = routes.size() / shards;
    for (std::size_t i = 0; i < routes.size(); ++i) {
      const auto& route = routes[i];
      parts[std::min(i / chunk, shards - 1)].add_route(route.prefix, route.as_path);
    }
    IngestBundle merged;
    for (const IngestBundle& part : parts) merged.merge(part);

    EXPECT_EQ(merged.ases.registers(), sequential.ases.registers()) << "shards=" << shards;
    EXPECT_EQ(merged.prefixes.registers(), sequential.prefixes.registers());
    EXPECT_EQ(merged.links.registers(), sequential.links.registers());
    EXPECT_EQ(merged.origins.counters(), sequential.origins.counters());
    EXPECT_EQ(merged.origins.total_weight(), sequential.origins.total_weight());
  }
}

// -------------------------------------------------------------- Telemetry

/// Exact entity counts of a RIB, derived exactly as the bundles derive
/// their items, so the comparison isolates sketch error.
struct ExactCounts {
  std::unordered_set<std::uint64_t> ases;
  std::unordered_set<std::uint64_t> prefixes;
  std::unordered_set<std::uint64_t> links;

  explicit ExactCounts(const mrt::ObservedRib& rib) {
    for (const auto& route : rib.routes()) {
      prefixes.insert(prefix_item(route.prefix));
      std::uint32_t prev = 0;
      bool have_prev = false;
      for (const std::uint32_t asn : route.as_path) {
        if (have_prev && asn == prev) continue;
        ases.insert(as_item(asn));
        if (have_prev) links.insert(link_item(prev, asn));
        prev = asn;
        have_prev = true;
      }
    }
  }
};

void expect_within_two_percent(std::int64_t estimate, std::size_t exact, const char* what) {
  const double error = std::abs(static_cast<double>(estimate) - static_cast<double>(exact)) /
                       static_cast<double>(exact);
  EXPECT_LE(error, 0.02) << what << ": estimate " << estimate << " vs exact " << exact;
}

void expect_snapshots_equal(const Telemetry::Snapshot& a, const Telemetry::Snapshot& b) {
  EXPECT_EQ(a.unique_ases, b.unique_ases);
  EXPECT_EQ(a.unique_prefixes, b.unique_prefixes);
  EXPECT_EQ(a.unique_links, b.unique_links);
  EXPECT_EQ(a.bloom_hits, b.bloom_hits);
  EXPECT_EQ(a.bloom_misses, b.bloom_misses);
  EXPECT_EQ(a.origin_routes_total, b.origin_routes_total);
  ASSERT_EQ(a.top_origins.size(), b.top_origins.size());
  for (std::size_t i = 0; i < a.top_origins.size(); ++i) {
    EXPECT_EQ(a.top_origins[i].item, b.top_origins[i].item);
    EXPECT_EQ(a.top_origins[i].estimate, b.top_origins[i].estimate);
  }
}

TEST(Telemetry, RibIngestSnapshotsIdenticalAcrossJobsAndAccurate) {
  const auto net = gen::SyntheticInternet::generate(gen::small_params(7));
  const auto rib = net.collect();
  const auto records = mrt::records_from_rib(rib, 1, "sketch-test", 1281052800u);
  const ExactCounts exact(rib);

  auto& telemetry = Telemetry::global();
  std::vector<Telemetry::Snapshot> snapshots;
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    telemetry.reset();
    ThreadPool pool(jobs);
    const auto loaded = mrt::rib_from_records(records, pool);
    EXPECT_EQ(loaded.routes().size(), rib.routes().size());
    snapshots.push_back(telemetry.snapshot());
  }
  // --jobs 1 and --jobs 4 agree on everything, heavy-hitter lists included:
  // the shard boundaries are fixed (core::kCensusShards), only the worker
  // count differs.
  expect_snapshots_equal(snapshots[0], snapshots[1]);

  expect_within_two_percent(snapshots[0].unique_ases, exact.ases.size(), "unique ASes");
  expect_within_two_percent(snapshots[0].unique_prefixes, exact.prefixes.size(),
                            "unique prefixes");
  expect_within_two_percent(snapshots[0].unique_links, exact.links.size(), "unique links");

  // Every route contributed its origin to the CMS stream.
  EXPECT_EQ(snapshots[0].origin_routes_total, rib.routes().size());
  // Bloom: one miss per distinct link, the rest hits (false positives can
  // only move a miss to a hit, never invent extra misses).
  EXPECT_LE(snapshots[0].bloom_misses, exact.links.size());
  EXPECT_GE(snapshots[0].bloom_misses, exact.links.size() * 98 / 100);

  telemetry.reset();
}

TEST(Telemetry, NoteLinkSeenCountsHitsAndMisses) {
  auto& telemetry = Telemetry::global();
  telemetry.reset();
  EXPECT_FALSE(telemetry.note_link_seen(link_item(10, 20)));  // new
  EXPECT_TRUE(telemetry.note_link_seen(link_item(20, 10)));   // same link
  EXPECT_FALSE(telemetry.note_link_seen(link_item(10, 30)));  // new
  const auto snap = telemetry.snapshot();
  EXPECT_EQ(snap.bloom_hits, 1u);
  EXPECT_EQ(snap.bloom_misses, 2u);
  telemetry.reset();
}

TEST(Telemetry, SketchGaugesReachThePrometheusExposition) {
  auto& telemetry = Telemetry::global();
  telemetry.reset();
  IngestBundle bundle;
  bundle.add_route(Prefix::parse("10.2.0.0/24"), {10, 20, 30});
  telemetry.absorb(bundle);
  telemetry.set_epoch_churn(7, 8, 9);

  const std::string text = MetricsRegistry::global().render_prometheus();
  EXPECT_NE(text.find("htor_sketch_unique_as_estimate 3"), std::string::npos);
  EXPECT_NE(text.find("htor_sketch_unique_prefixes_estimate 1"), std::string::npos);
  EXPECT_NE(text.find("htor_sketch_unique_links_estimate 2"), std::string::npos);
  EXPECT_NE(text.find("htor_sketch_epoch_churn_estimate{kind=\"as\"} 7"), std::string::npos);
  EXPECT_NE(text.find("htor_sketch_epoch_churn_estimate{kind=\"prefix\"} 8"), std::string::npos);
  EXPECT_NE(text.find("htor_sketch_epoch_churn_estimate{kind=\"link\"} 9"), std::string::npos);
  EXPECT_NE(text.find("htor_sketch_memory_bytes"), std::string::npos);

  telemetry.reset();
  // reset() zeroes the sketches themselves; the registrations persist and
  // the next scrape polls fresh zeros.
  const std::string after = MetricsRegistry::global().render_prometheus();
  EXPECT_NE(after.find("htor_sketch_unique_as_estimate 0"), std::string::npos);
  EXPECT_NE(after.find("htor_sketch_epoch_churn_estimate{kind=\"as\"} 0"), std::string::npos);
}

// The acceptance-criteria scale: a ≥100k-AS synthetic internet, ingested at
// --jobs 1 and 4, must give byte-identical snapshots and HLL estimates
// within 2% of exact.  collect_scaled keeps this test in seconds — the
// route synthesis is O(N·vantages), and two vantages already yield ~200k
// routes over >100k ASes.
TEST(Telemetry, HundredThousandAsInternetWithinTwoPercentAtEveryJobs) {
  const auto net = gen::SyntheticInternet::generate(gen::scale_params(100'100, 42));
  ASSERT_GE(net.graph().as_count(), 100'000u);
  const auto rib = net.collect_scaled(2);
  const auto records = mrt::records_from_rib(rib, 1, "sketch-scale", 1281052800u);
  const ExactCounts exact(rib);
  ASSERT_GE(exact.ases.size(), 100'000u);

  auto& telemetry = Telemetry::global();
  std::vector<Telemetry::Snapshot> snapshots;
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    telemetry.reset();
    ThreadPool pool(jobs);
    const auto loaded = mrt::rib_from_records(records, pool);
    EXPECT_EQ(loaded.routes().size(), rib.routes().size());
    snapshots.push_back(telemetry.snapshot());
  }
  expect_snapshots_equal(snapshots[0], snapshots[1]);
  expect_within_two_percent(snapshots[0].unique_ases, exact.ases.size(), "unique ASes");
  expect_within_two_percent(snapshots[0].unique_prefixes, exact.prefixes.size(),
                            "unique prefixes");
  expect_within_two_percent(snapshots[0].unique_links, exact.links.size(), "unique links");
  telemetry.reset();
}

}  // namespace
}  // namespace htor::obs::sketch
