// Streaming MRT ingestion: scan record headers sequentially from buffered
// file I/O, hand raw record bodies to a thread pool for parallel decode, and
// join routes directly into an ObservedRib — without ever materializing the
// whole file or a full Record vector.
//
// Peak memory is one batch of raw bodies plus their decoded routes plus the
// growing RIB, versus the load-all path's whole-file buffer plus whole-file
// Record vector plus RIB.  Batches have a FIXED record count and shard with
// the same fixed shard_ranges() as the in-memory join, merging strictly in
// record order, so rib_from_stream() is byte-identical to
// rib_from_records(read_all(load_file(path))) at any pool size.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "mrt/rib_view.hpp"
#include "util/thread_pool.hpp"

namespace htor::mrt {

/// One record as framed on the wire: common-header fields plus the raw,
/// not-yet-decoded body bytes.
struct RawFramedRecord {
  std::uint32_t timestamp = 0;
  std::uint16_t type = 0;
  std::uint16_t subtype = 0;
  std::vector<std::uint8_t> body;
};

/// Sequential header scanner over an on-disk MRT file.  Only the 12-byte
/// common header is interpreted here; bodies are returned raw for the caller
/// to decode (possibly in parallel).  Framing is validated against the file
/// size, so a garbage or truncated length field fails with DecodeError at
/// the offending record instead of over-allocating or returning a short body.
class MrtStreamReader {
 public:
  /// Opens `path` for buffered binary reading.  Throws Error when the file
  /// cannot be opened or sized.
  explicit MrtStreamReader(const std::string& path,
                           std::size_t io_buffer_bytes = kDefaultIoBuffer);

  /// Next framed record, or nullopt at clean end-of-file.  Throws
  /// DecodeError on a truncated header, a truncated body, or a length field
  /// that overruns the file; throws Error on I/O failure.
  std::optional<RawFramedRecord> next();

  /// Next BGP4MP MESSAGE / MESSAGE_AS4 frame, or nullopt at end-of-file.
  /// Frames of any other type or subtype (RIB snapshots, state changes,
  /// unknown types) are skipped by header alone — never decoded — and
  /// counted in updates_skipped().  This is the iteration mode the live
  /// update pipeline reads with, so a mixed dump+updates file works without
  /// a second ad-hoc scanner.  Framing errors throw exactly as next() does.
  std::optional<RawFramedRecord> next_update();

  std::uint64_t records_read() const { return records_; }
  std::uint64_t bytes_read() const { return bytes_; }
  std::uint64_t file_size() const { return file_size_; }
  /// Frames next_update() passed over because they were not BGP4MP messages.
  std::uint64_t updates_skipped() const { return skipped_; }

  static constexpr std::size_t kDefaultIoBuffer = 256 * 1024;

 private:
  std::string path_;
  std::vector<char> io_buffer_;
  std::ifstream in_;
  std::uint64_t file_size_ = 0;
  std::uint64_t bytes_ = 0;  ///< consumed so far (headers + bodies)
  std::uint64_t records_ = 0;
  std::uint64_t skipped_ = 0;
};

/// Records per decode batch.  Fixed (never derived from the pool size) so
/// batch boundaries — and therefore output — are identical for any --jobs.
inline constexpr std::size_t kStreamBatchRecords = 4096;

/// Stream `path` into an ObservedRib: headers are scanned sequentially,
/// bodies of each fixed-size batch decode in parallel on `pool`, and joined
/// routes merge in record order.  All records are fully decoded (non-RIB
/// bodies too), so malformed input fails with the same DecodeError
/// discipline as the in-memory path, and the resulting RIB is identical to
/// rib_from_records(read_all(load_file(path))).
ObservedRib rib_from_stream(const std::string& path, ThreadPool& pool,
                            std::size_t batch_records = kStreamBatchRecords);

/// Sequential convenience overload (inline pool).
ObservedRib rib_from_stream(const std::string& path);

}  // namespace htor::mrt
