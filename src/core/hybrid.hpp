// Hybrid IPv4/IPv6 relationship detection and assessment (paper §3, ¶2-3).
//
// A dual-stack link is *hybrid* when its inferred IPv4 and IPv6
// relationships differ.  The report carries the paper's assessment angles:
// the class mix (peering-v4/transit-v6 dominates), path visibility (how many
// IPv6 AS paths cross at least one hybrid link), and the tier placement of
// hybrid endpoints.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "topology/path_store.hpp"
#include "topology/relationship.hpp"
#include "topology/tier.hpp"

namespace htor::core {

enum class HybridClass : std::uint8_t {
  PeerV4TransitV6,  ///< p2p in IPv4, p2c/c2p in IPv6 (67% in the paper)
  TransitV4PeerV6,  ///< p2c/c2p in IPv4, p2p in IPv6
  Reversal,         ///< provider and customer swap roles across families
  OtherMix,         ///< any difference involving siblings
};

const char* to_string(HybridClass cls);

struct HybridFinding {
  LinkKey link;
  Relationship rel_v4 = Relationship::Unknown;  ///< rel(link.first->link.second), IPv4
  Relationship rel_v6 = Relationship::Unknown;
  HybridClass cls = HybridClass::OtherMix;
  std::uint64_t v6_path_visibility = 0;  ///< distinct IPv6 paths crossing the link
};

struct HybridReport {
  std::vector<HybridFinding> hybrids;  ///< sorted by v6 path visibility, descending

  std::size_t dual_links_observed = 0;
  std::size_t dual_links_both_known = 0;  ///< relationship known in both families

  std::size_t peer_v4_transit_v6 = 0;
  std::size_t transit_v4_peer_v6 = 0;
  std::size_t reversals = 0;
  std::size_t other_mix = 0;

  std::uint64_t v6_paths_total = 0;
  std::uint64_t v6_paths_with_hybrid = 0;

  /// Histogram of hybrid endpoints per tier (each link counts twice).
  std::unordered_map<Tier, std::size_t> endpoint_tiers;

  double hybrid_fraction() const {
    return dual_links_both_known == 0
               ? 0.0
               : static_cast<double>(hybrids.size()) /
                     static_cast<double>(dual_links_both_known);
  }
};

/// Detect hybrids over the observed dual-stack links.
/// `tiers` (optional) attributes hybrid endpoints to tiers.
HybridReport detect_hybrids(const std::vector<LinkKey>& dual_links, const RelationshipMap& v4,
                            const RelationshipMap& v6, const PathStore& v6_paths,
                            const std::unordered_map<Asn, Tier>* tiers = nullptr);

}  // namespace htor::core
