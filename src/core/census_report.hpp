// One-call orchestration of the paper's whole measurement (§3): dataset
// statistics, inference coverage, hybrid detection, and the valley census.
// Consumes only what a real study would have — a collector RIB and an IRR
// dump's mined dictionary.
#pragma once

#include "core/hybrid.hpp"
#include "core/pipeline.hpp"
#include "core/valley_census.hpp"
#include "mrt/rib_view.hpp"
#include "rpsl/community_dict.hpp"

namespace htor::core {

struct CensusReport {
  // Dataset (paper §3 ¶1).
  std::uint64_t v6_paths = 0;        ///< distinct IPv6 AS paths
  std::uint64_t v4_paths = 0;
  std::size_t v6_links = 0;          ///< distinct IPv6 AS links observed
  std::size_t v4_links = 0;
  std::size_t dual_links = 0;        ///< links visible in both families

  // Inference & coverage (¶1).
  InferredRelationships inferred;
  CoverageStats v6_coverage;         ///< of all observed IPv6 links
  CoverageStats v4_coverage;
  CoverageStats dual_coverage;       ///< of dual-stack links (both maps known)

  // Hybrids (¶2-3).
  HybridReport hybrids;

  // Valley paths (¶4).
  ValleyCensus v6_valleys;
  ValleyCensus v4_valleys;

  // Path stores, kept for downstream experiments (Figure 2 ranking).
  PathStore v4_path_store;
  PathStore v6_path_store;
};

CensusReport run_census(const mrt::ObservedRib& rib, const rpsl::CommunityDictionary& dict,
                        const InferenceConfig& config = {});

/// Same census on the caller's pool (config.threads is ignored; the pool's
/// size decides the parallelism).
CensusReport run_census(const mrt::ObservedRib& rib, const rpsl::CommunityDictionary& dict,
                        const InferenceConfig& config, ThreadPool& pool);

}  // namespace htor::core
