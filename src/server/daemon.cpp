#include "server/daemon.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "server/render.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace htor::server {

namespace {

using Clock = std::chrono::steady_clock;

/// Poll tick: how promptly stop()/request_reload() are honoured.
constexpr int kTickMs = 200;

const char* endpoint_name(std::size_t endpoint) {
  switch (endpoint) {
    case 0: return "link";
    case 1: return "neighbors";
    case 2: return "summary";
    case 3: return "healthz";
    case 4: return "metrics";
    case 5: return "reload";
    default: return "other";
  }
}

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

HttpResponse json_response(int status, std::string body) {
  HttpResponse resp;
  resp.status = status;
  resp.body = std::move(body);
  return resp;
}

HttpResponse method_not_allowed(const char* allowed) {
  return json_response(405, error_json(std::string("method not allowed; use ") + allowed));
}

/// Connection pool sizing.  ThreadPool treats jobs <= 1 as "run inline on
/// the caller", which for a daemon would execute whole keep-alive
/// connections on the acceptor thread — one slow client would starve
/// accepts and reload requests.  Floor at 2 real workers (this also covers
/// jobs = 0 on a single-core host, where hardware_threads() is 1).
std::size_t connection_workers(std::size_t jobs) {
  const std::size_t n = jobs == 0 ? ThreadPool::hardware_threads() : jobs;
  return std::max<std::size_t>(n, 2);
}

}  // namespace

QueryDaemon::QueryDaemon(std::string snapshot_path, DaemonConfig config)
    : snapshot_path_(std::move(snapshot_path)),
      config_(config),
      pool_(connection_workers(config.jobs)) {
  // Eager initial load: a daemon never starts without a servable index.
  state_ = std::make_shared<const ServingState>(snapshot::QueryIndex::open(snapshot_path_), 1);
  register_metrics();
}

QueryDaemon::QueryDaemon(snapshot::QueryIndex index, DaemonConfig config)
    : config_(config), pool_(connection_workers(config.jobs)) {
  // No backing file: the index was built in memory (serve --follow) and
  // future states arrive through swap_index().
  state_ = std::make_shared<const ServingState>(std::move(index), 1);
  register_metrics();
}

void QueryDaemon::register_metrics() {
  auto& registry = obs::MetricsRegistry::global();
  for (std::size_t i = 0; i < kEndpointCount; ++i) {
    endpoint_requests_[i] =
        registry.counter("htor_http_requests_total", {{"endpoint", endpoint_name(i)}});
  }
  static constexpr const char* kClasses[] = {"2xx", "3xx", "4xx", "5xx"};
  for (std::size_t i = 0; i < 4; ++i) {
    status_class_[i] = registry.counter("htor_http_responses_total", {{"class", kClasses[i]}});
  }
  request_latency_ = registry.histogram("htor_http_request_duration_us");
  parse_failures_ = registry.counter("htor_http_parse_failures_total");
  reloads_ok_ = registry.counter("htor_reloads_total", {{"result", "ok"}});
  reloads_failed_ = registry.counter("htor_reloads_total", {{"result", "failed"}});
  last_reload_us_ = registry.gauge("htor_reload_last_us");

  using Kind = obs::MetricsRegistry::Kind;
  polled_.push_back(registry.callback("htor_daemon_epoch", {}, Kind::Gauge,
                                      [this] { return static_cast<std::int64_t>(epoch()); }));
  polled_.push_back(registry.callback(
      "htor_http_active_connections", {}, Kind::Gauge, [this] {
        return static_cast<std::int64_t>(active_connections_.load(std::memory_order_relaxed));
      }));
  polled_.push_back(registry.callback(
      "htor_threadpool_queue_depth", {{"pool", "serve"}}, Kind::Gauge,
      [this] { return static_cast<std::int64_t>(pool_.queued()); }));
  polled_.push_back(registry.callback(
      "htor_threadpool_tasks_executed_total", {{"pool", "serve"}}, Kind::Counter,
      [this] { return static_cast<std::int64_t>(pool_.executed()); }));
}

QueryDaemon::~QueryDaemon() { stop(); }

std::shared_ptr<const QueryDaemon::ServingState> QueryDaemon::current() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return state_;
}

std::uint64_t QueryDaemon::epoch() const { return current()->epoch; }

std::string QueryDaemon::last_reload_error() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return last_reload_error_;
}

void QueryDaemon::start() {
  if (running_.load()) return;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw Error("serve: socket() failed: " + std::string(std::strerror(errno)));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  // Non-blocking listener: a connection that is reset between poll()
  // reporting it and accept() taking it must yield EAGAIN, not block the
  // acceptor (and with it stop() and pending reloads) indefinitely.
  ::fcntl(listen_fd_, F_SETFL, ::fcntl(listen_fd_, F_GETFL, 0) | O_NONBLOCK);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  // lint: allow(raw-cast) sockaddr_in -> sockaddr is the BSD sockets ABI
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("serve: cannot bind 127.0.0.1:" + std::to_string(config_.port) + ": " + why);
  }
  if (::listen(listen_fd_, 128) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("serve: listen() failed: " + why);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  // lint: allow(raw-cast) sockaddr_in -> sockaddr is the BSD sockets ABI
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }
  stop_.store(false);
  running_.store(true);
  // lint: allow(naked-thread) the acceptor must outlive pool tasks and poll
  // its own fd; it is joined by stop() before the pool is torn down
  acceptor_ = std::thread([this] { accept_loop(); });
}

void QueryDaemon::stop() {
  if (!running_.exchange(false)) return;
  stop_.store(true);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Connection tasks observe stop_ within one poll tick; wait for the last
  // of them so stop() really means quiesced (in-flight responses included).
  while (active_connections_.load(std::memory_order_acquire) != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

void QueryDaemon::swap_index(snapshot::QueryIndex index) {
  // Same discipline as reload()'s swap: the expensive part (building the
  // index) happened on the caller's thread; under the lock there is only a
  // pointer assignment.  In-flight requests keep the state they pinned.
  std::lock_guard<std::mutex> reload_lock(reload_mutex_);
  std::lock_guard<std::mutex> lock(state_mutex_);
  state_ = std::make_shared<const ServingState>(std::move(index), state_->epoch + 1);
}

bool QueryDaemon::reload() {
  std::lock_guard<std::mutex> reload_lock(reload_mutex_);
  if (snapshot_path_.empty()) {
    std::lock_guard<std::mutex> lock(state_mutex_);
    last_reload_error_ = "daemon serves a live in-memory index; no snapshot file to reload";
    reloads_failed_.inc();
    return false;
  }
  const auto t0 = Clock::now();
  std::shared_ptr<const ServingState> fresh;
  try {
    // Read-validate-wrap happens here, outside state_mutex_: readers keep
    // answering from the old state until the single pointer swap below.
    // For a v2 file this is O(1) decoded work — no per-entry decode.
    fresh = std::make_shared<const ServingState>(snapshot::QueryIndex::open(snapshot_path_),
                                                 epoch() + 1);
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(state_mutex_);
    last_reload_error_ = e.what();
    reloads_failed_.inc();
    return false;  // the old state keeps serving, untouched
  }
  const auto micros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0).count());
  std::lock_guard<std::mutex> lock(state_mutex_);
  state_ = std::move(fresh);
  last_reload_error_.clear();
  reloads_ok_.inc();
  last_reload_us_.set(static_cast<std::int64_t>(micros));
  return true;
}

void QueryDaemon::accept_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    if (reload_requested_.exchange(false, std::memory_order_relaxed)) reload();
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kTickMs);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    active_connections_.fetch_add(1, std::memory_order_acq_rel);
    auto conn = std::make_shared<Connection>(fd, config_);
    pool_.submit([this, conn = std::move(conn)] { pump_connection(conn); });
  }
}

struct QueryDaemon::Connection {
  Connection(int fd_in, const DaemonConfig& config)
      : fd(fd_in),
        parser(config.limits),
        idle_deadline(Clock::now() + std::chrono::milliseconds(config.idle_timeout_ms)) {}

  int fd;
  RequestParser parser;
  std::string pending;  // bytes received but not yet consumed by the parser
  Clock::time_point idle_deadline;
};

void QueryDaemon::pump_connection(std::shared_ptr<Connection> conn) {
  PumpResult result = PumpResult::Finished;
  try {
    result = pump(*conn);
  } catch (...) {
    // A connection must never take the daemon down.
  }
  if (result == PumpResult::Yield) {
    // Nothing readable this tick: give the worker back so other
    // connections (and fresh accepts queued behind us) make progress.
    pool_.submit([this, conn = std::move(conn)] { pump_connection(conn); });
    return;
  }
  ::close(conn->fd);
  active_connections_.fetch_sub(1, std::memory_order_acq_rel);
}

QueryDaemon::PumpResult QueryDaemon::pump(Connection& conn) {
  char buf[4096];
  for (;;) {
    // Drain buffered bytes through the parser first: keep-alive reuse and
    // pipelined requests both land here with `pending` non-empty.
    while (!conn.pending.empty()) {
      std::size_t consumed = 0;
      const auto status = conn.parser.feed(conn.pending, consumed);
      conn.pending.erase(0, consumed);
      if (status == RequestParser::Status::Bad) {
        parse_failures_.inc();
        const std::size_t cls =
            static_cast<std::size_t>(std::clamp(conn.parser.error_status() / 100 - 2, 0, 3));
        status_class_[cls].inc();
        HttpResponse resp = json_response(conn.parser.error_status(),
                                          error_json(conn.parser.error()));
        resp.keep_alive = false;  // the stream is unsynchronized; drop it
        send_all(conn.fd, resp.serialize());
        return PumpResult::Finished;
      }
      if (status == RequestParser::Status::NeedMore) break;
      const HttpRequest& request = conn.parser.request();
      const auto t0 = Clock::now();
      HttpResponse resp = handle(request);
      resp.keep_alive = request.keep_alive() && !stop_.load(std::memory_order_relaxed);
      const std::string wire = resp.serialize(request.method != "HEAD");
      // The one latency recording point: route + render + serialize done,
      // socket write not yet started (rationale in daemon.hpp).
      request_latency_.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0).count()));
      if (!send_all(conn.fd, wire)) {
        return PumpResult::Finished;
      }
      if (!resp.keep_alive) return PumpResult::Finished;
      conn.parser = RequestParser(config_.limits);
      conn.idle_deadline = Clock::now() + std::chrono::milliseconds(config_.idle_timeout_ms);
    }

    // One short poll tick, then either read or hand the worker back.
    if (stop_.load(std::memory_order_relaxed)) return PumpResult::Finished;
    if (Clock::now() >= conn.idle_deadline) return PumpResult::Finished;
    pollfd pfd{conn.fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kTickMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return PumpResult::Finished;
    }
    if (ready == 0) return PumpResult::Yield;  // quiet: don't pin the worker
    if ((pfd.revents & (POLLERR | POLLNVAL)) != 0) return PumpResult::Finished;
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n <= 0) return PumpResult::Finished;  // peer closed (truncated requests
                                              // get no reply) or error
    conn.pending.append(buf, static_cast<std::size_t>(n));
  }
}

HttpResponse QueryDaemon::handle(const HttpRequest& request) {
  std::size_t endpoint = kOther;
  HttpResponse resp;
  try {
    resp = route(request, endpoint);
  } catch (const std::exception& e) {
    resp = json_response(500, error_json(std::string("internal error: ") + e.what()));
  }
  record(endpoint, resp.status);
  return resp;
}

HttpResponse QueryDaemon::route(const HttpRequest& request, std::size_t& endpoint) {
  endpoint = kOther;
  std::string_view path = request.target;
  path = path.substr(0, path.find('?'));
  const bool is_get = request.method == "GET" || request.method == "HEAD";

  if (path == "/v1/healthz") {
    endpoint = kHealthz;
    if (!is_get) return method_not_allowed("GET");
    JsonWriter json;
    json.begin_object();
    json.key("status").value("ok");
    json.key("epoch").value(epoch());
    json.end_object();
    return json_response(200, json.str() + "\n");
  }

  if (path == "/v1/summary") {
    endpoint = kSummary;
    if (!is_get) return method_not_allowed("GET");
    const auto state = current();
    return json_response(200, summary_json(state->index));
  }

  if (path == "/v1/metrics") {
    endpoint = kMetrics;
    if (!is_get) return method_not_allowed("GET");
    return json_response(200, metrics_json());
  }

  if (path == "/metrics") {
    // Prometheus text exposition of the whole process registry — the same
    // counters /v1/metrics renders as JSON, plus everything other
    // subsystems (ingest, snapshot, spans) recorded in this process.
    endpoint = kMetrics;
    if (!is_get) return method_not_allowed("GET");
    HttpResponse resp;
    resp.status = 200;
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = obs::MetricsRegistry::global().render_prometheus();
    return resp;
  }

  if (path == "/v1/reload") {
    endpoint = kReload;
    if (request.method != "POST") return method_not_allowed("POST");
    if (!reload()) {
      return json_response(503, error_json("reload failed, old snapshot still serving: " +
                                           last_reload_error()));
    }
    JsonWriter json;
    json.begin_object();
    json.key("status").value("reloaded");
    json.key("epoch").value(epoch());
    json.end_object();
    return json_response(200, json.str() + "\n");
  }

  constexpr std::string_view kLinkPrefix = "/v1/link/";
  if (path.rfind(kLinkPrefix, 0) == 0) {
    endpoint = kLink;
    if (!is_get) return method_not_allowed("GET");
    const auto rest = path.substr(kLinkPrefix.size());
    const auto parts = split(rest, '/');
    Asn a = 0;
    Asn b = 0;
    if (parts.size() != 2 || !parse_asn(parts[0], a) || !parse_asn(parts[1], b)) {
      return json_response(
          400, error_json("expected /v1/link/<asn>/<asn> with ASNs in 0..4294967295, got '" +
                          std::string(rest) + "'"));
    }
    const auto state = current();
    const auto info = state->index.lookup(a, b);
    if (!info) {
      return json_response(404, error_json("AS" + std::to_string(a) + "-AS" + std::to_string(b) +
                                           ": no relationship recorded in " + snapshot_path_));
    }
    return json_response(200, link_json(a, b, *info));
  }

  constexpr std::string_view kNeighborsPrefix = "/v1/neighbors/";
  if (path.rfind(kNeighborsPrefix, 0) == 0) {
    endpoint = kNeighbors;
    if (!is_get) return method_not_allowed("GET");
    const auto rest = path.substr(kNeighborsPrefix.size());
    Asn asn = 0;
    if (rest.find('/') != std::string_view::npos || !parse_asn(rest, asn)) {
      return json_response(
          400, error_json("expected /v1/neighbors/<asn> with an ASN in 0..4294967295, got '" +
                          std::string(rest) + "'"));
    }
    const auto state = current();
    if (!state->index.contains(asn)) {
      return json_response(404, error_json("AS" + std::to_string(asn) + ": not present in " +
                                           snapshot_path_));
    }
    return json_response(200, neighbors_json(asn, state->index.neighbors(asn)));
  }

  return json_response(404, error_json("no such endpoint: " + std::string(path)));
}

void QueryDaemon::record(std::size_t endpoint, int status) {
  endpoint_requests_[endpoint].inc();
  const std::size_t cls =
      static_cast<std::size_t>(std::clamp(status / 100 - 2, 0, 3));
  status_class_[cls].inc();
}

std::string QueryDaemon::metrics_json() const {
  const auto state = current();

  // Snapshot the registry values once; the keys and nesting below are the
  // pre-registry JSON shape, byte for byte.  requests_total is derived:
  // every routed request lands in exactly one endpoint counter and every
  // rejected parse in parse_failures, which is precisely what the old
  // requests_total atomic counted.
  std::array<std::uint64_t, kEndpointCount> per_endpoint{};
  std::uint64_t routed = 0;
  for (std::size_t i = 0; i < kEndpointCount; ++i) {
    per_endpoint[i] = endpoint_requests_[i].value();
    routed += per_endpoint[i];
  }
  const std::uint64_t parse_failures = parse_failures_.value();
  const auto latency = request_latency_.snapshot();

  JsonWriter json;
  json.begin_object();
  json.key("epoch").value(state->epoch);
  json.key("snapshot_source").value(state->index.source());
  json.key("snapshot_timestamp").value(state->index.timestamp());
  json.key("snapshot_format_version").value(state->index.format_version());
  json.key("snapshot_bytes").value(state->index.snapshot_bytes());
  json.key("mapped_bytes").value(state->index.mapped_bytes());
  json.key("requests_total").value(routed + parse_failures);
  json.key("parse_failures").value(parse_failures);

  json.key("by_endpoint").begin_object();
  for (std::size_t i = 0; i < kEndpointCount; ++i) {
    json.key(endpoint_name(i)).value(per_endpoint[i]);
  }
  json.end_object();

  json.key("by_status").begin_object();
  static constexpr const char* kClasses[] = {"2xx", "3xx", "4xx", "5xx"};
  for (std::size_t i = 0; i < 4; ++i) {
    json.key(kClasses[i]).value(status_class_[i].value());
  }
  json.end_object();

  // Bucket i counts requests whose serving took <= 2^i microseconds
  // (exclusive log2 buckets, not Prometheus-cumulative; the sum of counts
  // is the number of requests served over a socket — see the recording
  // point in daemon.hpp).
  json.key("latency_us").begin_object();
  json.key("bounds").begin_array();
  for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
    json.value(std::uint64_t{1} << i);
  }
  json.end_array();
  json.key("counts").begin_array();
  for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
    json.value(latency.counts[i]);
  }
  json.end_array();
  json.key("overflow").value(latency.overflow);
  json.end_object();

  json.key("reloads").begin_object();
  json.key("ok").value(reloads_ok_.value());
  json.key("failed").value(reloads_failed_.value());
  json.key("last_us").value(static_cast<std::uint64_t>(last_reload_us_.value()));
  json.end_object();

  // Sketch estimates: polled straight off the registry's callback metrics,
  // so the daemon needs no knowledge of which sketches exist — the keys
  // here render exactly like the Prometheus identities ("name" or
  // "name{label=\"v\"}"), which the endpoint-agreement e2e pins.
  json.key("sketches").begin_object();
  for (const auto& sample :
       obs::MetricsRegistry::global().polled_samples("htor_sketch_")) {
    json.key(sample.name + sample.labels)
        .value(static_cast<std::uint64_t>(std::max<std::int64_t>(0, sample.value)));
  }
  json.end_object();

  json.end_object();
  return json.str() + "\n";
}

}  // namespace htor::server
