// Unit tests for the util module: byte readers/writers, string helpers,
// deterministic RNG, stateless hashing, and the report table printer.
#include <gtest/gtest.h>

#include <sstream>

#include "util/bytes.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace htor {
namespace {

TEST(ByteWriter, BigEndianLayout) {
  ByteWriter w;
  w.u8(0x01);
  w.u16(0x0203);
  w.u32(0x04050607u);
  w.u64(0x08090a0b0c0d0e0full);
  const auto& d = w.data();
  ASSERT_EQ(d.size(), 15u);
  EXPECT_EQ(d[0], 0x01);
  EXPECT_EQ(d[1], 0x02);
  EXPECT_EQ(d[2], 0x03);
  EXPECT_EQ(d[3], 0x04);
  EXPECT_EQ(d[6], 0x07);
  EXPECT_EQ(d[7], 0x08);
  EXPECT_EQ(d[14], 0x0f);
}

TEST(ByteReader, RoundTripsWriter) {
  ByteWriter w;
  w.u8(7);
  w.u16(65535);
  w.u32(0xdeadbeefu);
  w.u64(0x1122334455667788ull);
  w.text("abc");
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 65535);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x1122334455667788ull);
  EXPECT_EQ(r.text(3), "abc");
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteReader, UnderrunThrows) {
  const std::uint8_t data[2] = {1, 2};
  ByteReader r(data);
  EXPECT_THROW(r.u32(), DecodeError);
  EXPECT_EQ(r.u16(), 0x0102);  // position unchanged by the failed read
  EXPECT_THROW(r.u8(), DecodeError);
}

TEST(ByteReader, SubReaderConsumesParent) {
  ByteWriter w;
  w.u32(0xaabbccddu);
  w.u16(0x0102);
  ByteReader r(w.data());
  ByteReader sub = r.sub(4);
  EXPECT_EQ(sub.u32(), 0xaabbccddu);
  EXPECT_TRUE(sub.exhausted());
  EXPECT_EQ(r.u16(), 0x0102);
}

TEST(ByteWriter, PatchFieldsInPlace) {
  ByteWriter w;
  w.u16(0);
  w.u32(0);
  w.u8(9);
  w.patch_u16(0, 0x1234);
  w.patch_u32(2, 0x55667788u);
  ByteReader r(w.data());
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0x55667788u);
  EXPECT_THROW(w.patch_u16(6, 1), InvalidArgument);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim("\t\n x \r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, SplitPreservesEmptyFields) {
  auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWsSkipsRuns) {
  auto parts = split_ws("  one\t two  three ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "one");
  EXPECT_EQ(parts[2], "three");
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, ParseU64) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_u64("0", v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(parse_u64("18446744073709551615", v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_FALSE(parse_u64("18446744073709551616", v));  // overflow
  EXPECT_FALSE(parse_u64("", v));
  EXPECT_FALSE(parse_u64("12a", v));
  EXPECT_FALSE(parse_u64("-1", v));
}

// The single strict ASN parse shared by the CLI arguments, the query
// daemon's URL routing, and the RPSL aut-num parser.
TEST(Strings, ParseAsn) {
  Asn asn = 7;
  EXPECT_TRUE(parse_asn("0", asn));
  EXPECT_EQ(asn, 0u);
  EXPECT_TRUE(parse_asn("3356", asn));
  EXPECT_EQ(asn, 3356u);
  EXPECT_TRUE(parse_asn("4294967295", asn));  // RFC 6793 ceiling
  EXPECT_EQ(asn, 4294967295u);

  asn = 7;
  EXPECT_FALSE(parse_asn("4294967296", asn));  // one past the ceiling
  EXPECT_FALSE(parse_asn("", asn));
  EXPECT_FALSE(parse_asn("12x", asn));
  EXPECT_FALSE(parse_asn("-1", asn));
  EXPECT_FALSE(parse_asn("AS3356", asn));  // the textual prefix is the caller's job
  EXPECT_FALSE(parse_asn("1.0", asn));     // asdot is not accepted
  EXPECT_EQ(asn, 7u);  // failures never clobber the out-parameter
}

TEST(Strings, ContainsCi) {
  EXPECT_TRUE(contains_ci("Routes Learned From CUSTOMERS", "from customer"));
  EXPECT_FALSE(contains_ci("peer routes", "customer"));
  EXPECT_TRUE(contains_ci("anything", ""));
}

TEST(Strings, Percentages) {
  EXPECT_EQ(fmt_pct(1, 8, 1), "12.5%");
  EXPECT_EQ(fmt_pct(0, 0), "n/a");
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(0, 1000), b.uniform(0, 1000));
  }
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
  EXPECT_THROW(rng.uniform(5, 4), InvalidArgument);
  EXPECT_THROW(rng.index(0), InvalidArgument);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, WeightedRespectsZeroWeights) {
  Rng rng(2);
  const double weights[3] = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.weighted(weights), 1u);
  }
  const double none[2] = {0.0, 0.0};
  EXPECT_THROW(rng.weighted(none), InvalidArgument);
}

TEST(Rng, WeightedIsRoughlyProportional) {
  Rng rng(3);
  const double weights[2] = {1.0, 3.0};
  int hits[2] = {0, 0};
  for (int i = 0; i < 10000; ++i) ++hits[rng.weighted(weights)];
  EXPECT_GT(hits[1], 2 * hits[0]);
}

TEST(Hash, DeterministicAndSpread) {
  EXPECT_EQ(splitmix64(42), splitmix64(42));
  EXPECT_NE(splitmix64(42), splitmix64(43));
  const double u = hash_unit(hash_mix(7, 9));
  EXPECT_GE(u, 0.0);
  EXPECT_LT(u, 1.0);
  EXPECT_EQ(hash_unit(hash_mix(7, 9)), u);
}

TEST(Hash, UnitIsApproximatelyUniform) {
  double sum = 0;
  for (std::uint64_t i = 0; i < 10000; ++i) sum += hash_unit(i);
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Table, AlignedOutputAndCsv) {
  Table t({"name", "value"});
  t.row({"a", "1"});
  t.row({"long-name", "22"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("long-name"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_NE(csv.str().find("a,1"), std::string::npos);
  EXPECT_THROW(t.row({"only-one"}), InvalidArgument);
  EXPECT_THROW(Table({}), InvalidArgument);
}

}  // namespace
}  // namespace htor
