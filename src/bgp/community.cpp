#include "bgp/community.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace htor::bgp {

std::string Community::to_string() const {
  return std::to_string(asn()) + ":" + std::to_string(value());
}

bool Community::try_parse(std::string_view text, Community& out) {
  const auto colon = text.find(':');
  if (colon == std::string_view::npos) return false;
  std::uint64_t a = 0;
  std::uint64_t v = 0;
  if (!parse_u64(text.substr(0, colon), a) || !parse_u64(text.substr(colon + 1), v)) return false;
  if (a > 0xffff || v > 0xffff) return false;
  out = Community(static_cast<std::uint16_t>(a), static_cast<std::uint16_t>(v));
  return true;
}

Community Community::parse(std::string_view text) {
  Community out;
  if (!try_parse(text, out)) throw ParseError("bad community '" + std::string(text) + "'");
  return out;
}

std::string LargeCommunity::to_string() const {
  return std::to_string(global) + ":" + std::to_string(local1) + ":" + std::to_string(local2);
}

bool LargeCommunity::try_parse(std::string_view text, LargeCommunity& out) {
  auto parts = split(text, ':');
  if (parts.size() != 3) return false;
  std::uint64_t g = 0;
  std::uint64_t l1 = 0;
  std::uint64_t l2 = 0;
  if (!parse_u64(parts[0], g) || !parse_u64(parts[1], l1) || !parse_u64(parts[2], l2)) return false;
  if (g > 0xffffffffull || l1 > 0xffffffffull || l2 > 0xffffffffull) return false;
  out = LargeCommunity{static_cast<std::uint32_t>(g), static_cast<std::uint32_t>(l1),
                       static_cast<std::uint32_t>(l2)};
  return true;
}

LargeCommunity LargeCommunity::parse(std::string_view text) {
  LargeCommunity out;
  if (!try_parse(text, out)) throw ParseError("bad large community '" + std::string(text) + "'");
  return out;
}

std::vector<Community> normalized(std::vector<Community> communities) {
  std::sort(communities.begin(), communities.end());
  communities.erase(std::unique(communities.begin(), communities.end()), communities.end());
  return communities;
}

}  // namespace htor::bgp
