#include "bgp/message.hpp"

#include <algorithm>

namespace htor::bgp {

namespace {

constexpr std::uint8_t kMarkerByte = 0xff;

void check_marker(ByteReader& r) {
  auto marker = r.bytes(16);
  if (!std::all_of(marker.begin(), marker.end(),
                   [](std::uint8_t b) { return b == kMarkerByte; })) {
    throw DecodeError("BGP marker is not all-ones");
  }
}

std::vector<std::uint8_t> encode_body(const Message& msg) {
  ByteWriter w;
  if (const auto* open = std::get_if<OpenMessage>(&msg)) {
    w.u8(open->version);
    const Asn wire_as = is_4byte(open->my_as) ? kAsTrans : open->my_as;
    w.u16(static_cast<std::uint16_t>(wire_as));
    w.u16(open->hold_time);
    w.u32(open->bgp_id);
    if (open->optional_params.size() > 0xff) {
      throw InvalidArgument("OPEN optional parameters too long");
    }
    w.u8(static_cast<std::uint8_t>(open->optional_params.size()));
    w.bytes(open->optional_params);
  } else if (const auto* update = std::get_if<UpdateMessage>(&msg)) {
    ByteWriter withdrawn;
    for (const auto& p : update->withdrawn) {
      if (!p.address().is_v4()) {
        throw InvalidArgument("top-level withdrawn routes must be IPv4 (use MP_UNREACH for IPv6)");
      }
      encode_nlri_prefix(withdrawn, p);
    }
    const auto attrs = encode_path_attributes(update->attrs);
    w.u16(static_cast<std::uint16_t>(withdrawn.size()));
    w.bytes(withdrawn.data());
    w.u16(static_cast<std::uint16_t>(attrs.size()));
    w.bytes(attrs);
    for (const auto& p : update->nlri) {
      if (!p.address().is_v4()) {
        throw InvalidArgument("top-level NLRI must be IPv4 (use MP_REACH for IPv6)");
      }
      encode_nlri_prefix(w, p);
    }
  } else if (const auto* notif = std::get_if<NotificationMessage>(&msg)) {
    w.u8(notif->code);
    w.u8(notif->subcode);
    w.bytes(notif->data);
  }
  // KEEPALIVE: empty body.
  return w.take();
}

}  // namespace

MessageType type_of(const Message& msg) {
  if (std::holds_alternative<OpenMessage>(msg)) return MessageType::Open;
  if (std::holds_alternative<UpdateMessage>(msg)) return MessageType::Update;
  if (std::holds_alternative<NotificationMessage>(msg)) return MessageType::Notification;
  return MessageType::Keepalive;
}

std::vector<std::uint8_t> encode_message(const Message& msg) {
  const auto body = encode_body(msg);
  const std::size_t total = kMessageHeaderSize + body.size();
  if (total > kMaxMessageSize) {
    throw InvalidArgument("BGP message length " + std::to_string(total) + " exceeds 4096");
  }
  ByteWriter w;
  for (int i = 0; i < 16; ++i) w.u8(kMarkerByte);
  w.u16(static_cast<std::uint16_t>(total));
  w.u8(static_cast<std::uint8_t>(type_of(msg)));
  w.bytes(body);
  return w.take();
}

Message decode_message(ByteReader& r) {
  check_marker(r);
  const std::uint16_t length = r.u16();
  if (length < kMessageHeaderSize || length > kMaxMessageSize) {
    throw DecodeError("BGP message length " + std::to_string(length));
  }
  const std::uint8_t type = r.u8();
  ByteReader body = r.sub(length - kMessageHeaderSize);
  switch (static_cast<MessageType>(type)) {
    case MessageType::Open: {
      OpenMessage open;
      open.version = body.u8();
      open.my_as = body.u16();
      open.hold_time = body.u16();
      open.bgp_id = body.u32();
      const std::uint8_t opt_len = body.u8();
      open.optional_params = body.bytes_copy(opt_len);
      return open;
    }
    case MessageType::Update: {
      UpdateMessage update;
      const std::uint16_t wlen = body.u16();
      ByteReader wsub = body.sub(wlen);
      update.withdrawn = decode_nlri_list(wsub, IpVersion::V4);
      const std::uint16_t alen = body.u16();
      ByteReader asub = body.sub(alen);
      update.attrs = decode_path_attributes(asub);
      update.nlri = decode_nlri_list(body, IpVersion::V4);
      return update;
    }
    case MessageType::Notification: {
      NotificationMessage notif;
      notif.code = body.u8();
      notif.subcode = body.u8();
      notif.data = body.bytes_copy(body.remaining());
      return notif;
    }
    case MessageType::Keepalive:
      if (!body.exhausted()) throw DecodeError("KEEPALIVE with body");
      return KeepaliveMessage{};
    default:
      throw DecodeError("BGP message type " + std::to_string(type));
  }
}

UpdateMessage make_ipv6_update(const PathAttributes& base, const IpAddress& next_hop,
                               std::vector<Prefix> prefixes) {
  if (!next_hop.is_v6()) throw InvalidArgument("make_ipv6_update: next hop must be IPv6");
  for (const auto& p : prefixes) {
    if (p.version() != IpVersion::V6) {
      throw InvalidArgument("make_ipv6_update: IPv4 prefix in IPv6 NLRI");
    }
  }
  UpdateMessage update;
  update.attrs = base;
  MpReachNlri mp;
  mp.afi = Afi::Ipv6;
  mp.safi = Safi::Unicast;
  mp.next_hops = {next_hop};
  mp.nlri = std::move(prefixes);
  update.attrs.mp_reach = std::move(mp);
  update.attrs.next_hop.reset();  // IPv6 updates carry no top-level NEXT_HOP
  return update;
}

}  // namespace htor::bgp
