// A1 (ablation): inference accuracy against planted ground truth.
//  - communities only vs + Rosetta vs Rosetta without the TE filter;
//  - the AF-agnostic baselines (Gao, degree-rank) per family.
// Quantifies the two design choices DESIGN.md calls out: the Rosetta stage
// widens coverage, and its TE filter is what keeps the extra links accurate.
#include <iostream>

#include "baselines/degree_rank.hpp"
#include "baselines/gao.hpp"
#include "harness.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

struct Accuracy {
  std::size_t covered = 0;
  std::size_t correct = 0;
};

Accuracy score(const std::vector<htor::LinkKey>& links, const htor::RelationshipMap& inferred,
               const htor::RelationshipMap& truth) {
  Accuracy acc;
  for (const auto& key : links) {
    const htor::Relationship got = inferred.get(key.first, key.second);
    if (got == htor::Relationship::Unknown) continue;
    ++acc.covered;
    if (got == truth.get(key.first, key.second)) ++acc.correct;
  }
  return acc;
}

}  // namespace

int main() {
  using namespace htor;
  bench::print_header("A1 / bench_ablation_inference",
                      "accuracy of communities+Rosetta vs baselines, and the TE filter's effect");

  const auto ds = bench::make_dataset();
  const auto v6_paths = core::paths_of(ds.rib, IpVersion::V6);
  const auto v4_paths = core::paths_of(ds.rib, IpVersion::V4);
  const auto v6_links = v6_paths.links();
  const auto v4_links = v4_paths.links();

  PathStore mixed;
  for (const auto& route : ds.rib.routes()) mixed.add(route.as_path);

  // Variants of the paper's method.
  core::InferenceConfig comm_only;
  comm_only.use_rosetta = false;
  core::InferenceConfig full;
  core::InferenceConfig no_te_filter;
  no_te_filter.rosetta.filter_te = false;

  const auto inf_comm = core::infer_relationships(ds.rib, ds.dict, comm_only);
  const auto inf_full = core::infer_relationships(ds.rib, ds.dict, full);
  const auto inf_note = core::infer_relationships(ds.rib, ds.dict, no_te_filter);

  // Baselines (AF-agnostic over mixed paths, applied to both planes).
  const auto gao = baselines::infer_gao(mixed);
  const auto rank = baselines::infer_degree_rank(mixed);

  const auto& truth6 = ds.net.truth(IpVersion::V6);
  const auto& truth4 = ds.net.truth(IpVersion::V4);

  auto row = [&](Table& t, const std::string& name, const RelationshipMap& rels,
                 const std::vector<LinkKey>& links, const RelationshipMap& truth) {
    const Accuracy acc = score(links, rels, truth);
    t.row({name, fmt_pct(acc.covered, links.size()), fmt_pct(acc.correct, acc.covered)});
  };

  std::cout << "\nIPv6 plane (" << v6_links.size() << " observed links):\n";
  Table t6({"method", "coverage", "accuracy (of covered)"});
  row(t6, "communities only", inf_comm.v6, v6_links, truth6);
  row(t6, "communities + Rosetta", inf_full.v6, v6_links, truth6);
  row(t6, "communities + Rosetta, NO TE filter", inf_note.v6, v6_links, truth6);
  row(t6, "Gao (mixed paths)", gao.rels, v6_links, truth6);
  row(t6, "degree-rank (mixed paths)", rank.rels, v6_links, truth6);
  t6.print(std::cout);

  std::cout << "\nIPv4 plane (" << v4_links.size() << " observed links):\n";
  Table t4({"method", "coverage", "accuracy (of covered)"});
  row(t4, "communities only", inf_comm.v4, v4_links, truth4);
  row(t4, "communities + Rosetta", inf_full.v4, v4_links, truth4);
  row(t4, "communities + Rosetta, NO TE filter", inf_note.v4, v4_links, truth4);
  row(t4, "Gao (mixed paths)", gao.rels, v4_links, truth4);
  row(t4, "degree-rank (mixed paths)", rank.rels, v4_links, truth4);
  t4.print(std::cout);

  // Rosetta-added links specifically: the population the TE filter protects.
  auto rosetta_delta = [&](const core::InferredRelationships& inf,
                           const RelationshipMap& truth) {
    Accuracy acc;
    inf.rosetta_v6.first_hop_rels.for_each([&](const LinkKey& key, Relationship rel) {
      ++acc.covered;
      if (rel == truth.get(key.first, key.second)) ++acc.correct;
    });
    return acc;
  };
  const Accuracy with_filter = rosetta_delta(inf_full, truth6);
  const Accuracy without_filter = rosetta_delta(inf_note, truth6);
  std::cout << "\nRosetta-added IPv6 first-hop links:\n";
  Table r({"variant", "links added", "accuracy"});
  r.row({"TE filter on", std::to_string(with_filter.covered),
         fmt_pct(with_filter.correct, with_filter.covered)});
  r.row({"TE filter off", std::to_string(without_filter.covered),
         fmt_pct(without_filter.correct, without_filter.covered)});
  r.print(std::cout);
  return 0;
}
