// End-to-end relationship inference: community dictionary application plus
// LocPrf Rosetta, per address family.
#pragma once

#include "core/community_inference.hpp"
#include "core/rosetta.hpp"
#include "mrt/rib_view.hpp"
#include "topology/path_store.hpp"
#include "util/thread_pool.hpp"

namespace htor::core {

struct InferenceConfig {
  CommunityInferenceParams community;
  RosettaParams rosetta;
  bool use_rosetta = true;
  /// Worker jobs for the census hot paths (ThreadPool semantics: 0 = one
  /// per hardware thread, 1 = inline/sequential).  Any value produces
  /// byte-identical results; see core/parallel.hpp.
  std::size_t threads = 1;
};

/// How the census acquires its RIB from an on-disk MRT file.
struct IngestOptions {
  /// Streaming (the default): scan record headers sequentially, decode raw
  /// bodies in fixed parallel batches, and join routes straight into the
  /// ObservedRib — peak memory stays one batch deep.  When false, the
  /// load-all path materializes the whole file and a full Record vector
  /// before joining (~3× the decoded RIB at peak).
  bool streaming = true;
  /// Records per streaming decode batch; 0 uses mrt::kStreamBatchRecords.
  std::size_t batch_records = 0;
};

/// Load a collector RIB from `path` by either ingest path.  Both paths
/// produce byte-identical ObservedRibs at any pool size and fail with the
/// same DecodeError discipline on malformed input.
mrt::ObservedRib load_rib(const std::string& path, ThreadPool& pool,
                          const IngestOptions& options = {});

struct CoverageStats {
  std::size_t observed_links = 0;
  std::size_t covered_links = 0;
  double fraction() const {
    return observed_links == 0
               ? 0.0
               : static_cast<double>(covered_links) / static_cast<double>(observed_links);
  }
};

struct InferredRelationships {
  /// Final relationship maps (communities + Rosetta), one per family.
  RelationshipMap v4;
  RelationshipMap v6;

  CommunityInferenceResult community_v4;
  CommunityInferenceResult community_v6;
  RosettaResult rosetta_v4;
  RosettaResult rosetta_v6;
};

/// Run the full inference over a collector RIB.  Creates its own pool from
/// `config.threads`.
InferredRelationships infer_relationships(const mrt::ObservedRib& rib,
                                          const rpsl::CommunityDictionary& dict,
                                          const InferenceConfig& config = {});

/// Same, sharing the caller's pool (the per-route community scans of both
/// address families are in flight together, then the two Rosetta passes run
/// as one pool task per family).
InferredRelationships infer_relationships(const mrt::ObservedRib& rib,
                                          const rpsl::CommunityDictionary& dict,
                                          const InferenceConfig& config, ThreadPool& pool);

/// Distinct AS paths of one family, as a PathStore.
PathStore paths_of(const mrt::ObservedRib& rib, IpVersion af);

/// Sharded variant: per-route extraction runs on `pool`, shards merge in
/// shard order (deterministic for any pool size).
PathStore paths_of(const mrt::ObservedRib& rib, IpVersion af, ThreadPool& pool);

/// How many of `links` the map can type.
CoverageStats coverage(const std::vector<LinkKey>& links, const RelationshipMap& rels);

/// Links observed in both families (intersection of the two path link sets).
std::vector<LinkKey> dual_stack_links(const PathStore& v4_paths, const PathStore& v6_paths);

/// Sharded variant of the intersection scan; output order matches the
/// sequential overload exactly.
std::vector<LinkKey> dual_stack_links(const PathStore& v4_paths, const PathStore& v6_paths,
                                      ThreadPool& pool);

/// Same intersection over already-extracted link vectors (callers that hold
/// PathStore::links() results avoid re-extracting and re-sorting them).
std::vector<LinkKey> dual_stack_links(const std::vector<LinkKey>& v4_links,
                                      const std::vector<LinkKey>& v6_links, ThreadPool& pool);

}  // namespace htor::core
