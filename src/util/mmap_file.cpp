#include "util/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <utility>

#include "util/error.hpp"

namespace htor {

MmapFile::MmapFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw Error("cannot open '" + path + "'");
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw Error("cannot determine size of '" + path + "'");
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    // POSIX rejects zero-length mappings; an empty file is an empty span.
    ::close(fd);
    size_ = 0;
    return;
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference to the inode
  if (addr == MAP_FAILED) throw Error("cannot map '" + path + "'");
  addr_ = addr;
  size_ = size;
}

MmapFile::~MmapFile() { unmap(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : addr_(std::exchange(other.addr_, nullptr)), size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    unmap();
    addr_ = std::exchange(other.addr_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

void MmapFile::unmap() noexcept {
  if (addr_ != nullptr) {
    ::munmap(addr_, size_);
    addr_ = nullptr;
  }
  size_ = 0;
}

}  // namespace htor
