#include "bgp/nlri.hpp"

#include <array>

namespace htor::bgp {

void encode_nlri_prefix(ByteWriter& w, const Prefix& prefix) {
  w.u8(prefix.length());
  const std::size_t nbytes = (prefix.length() + 7) / 8;
  w.bytes(prefix.address().bytes().subspan(0, nbytes));
}

Prefix decode_nlri_prefix(ByteReader& r, IpVersion version) {
  const std::uint8_t len = r.u8();
  if (len > address_bits(version)) {
    throw DecodeError("NLRI prefix length " + std::to_string(len) + " too long for " +
                      std::string(to_string(version)));
  }
  const std::size_t nbytes = (len + 7) / 8;
  std::array<std::uint8_t, 16> raw{};
  auto view = r.bytes(nbytes);
  std::copy(view.begin(), view.end(), raw.begin());
  IpAddress addr = version == IpVersion::V4
                       ? IpAddress(IpVersion::V4, std::span<const std::uint8_t>(raw.data(), 4))
                       : IpAddress(IpVersion::V6, std::span<const std::uint8_t>(raw.data(), 16));
  return Prefix(addr, len);
}

std::vector<Prefix> decode_nlri_list(ByteReader& r, IpVersion version) {
  std::vector<Prefix> out;
  while (!r.exhausted()) out.push_back(decode_nlri_prefix(r, version));
  return out;
}

}  // namespace htor::bgp
