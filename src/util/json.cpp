#include "util/json.hpp"

namespace htor {

std::string JsonWriter::quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\f': out += "\\f"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out.push_back(hex[(c >> 4) & 0xf]);
          out.push_back(hex[c & 0xf]);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::begin_value(const char* what) {
  if (done_) throw InvalidArgument(std::string("JsonWriter: ") + what + " after the root value");
  if (!stack_.empty() && stack_.back() == Frame::Object && !after_key_) {
    throw InvalidArgument(std::string("JsonWriter: ") + what + " in an object without a key");
  }
  if (need_comma_ && !after_key_) out_.push_back(',');
  after_key_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  begin_value("begin_object");
  out_.push_back('{');
  stack_.push_back(Frame::Object);
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Frame::Object || after_key_) {
    throw InvalidArgument("JsonWriter: end_object without a matching open object");
  }
  out_.push_back('}');
  stack_.pop_back();
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  begin_value("begin_array");
  out_.push_back('[');
  stack_.push_back(Frame::Array);
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Frame::Array) {
    throw InvalidArgument("JsonWriter: end_array without a matching open array");
  }
  out_.push_back(']');
  stack_.pop_back();
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (done_ || stack_.empty() || stack_.back() != Frame::Object || after_key_) {
    throw InvalidArgument("JsonWriter: key() is only valid directly inside an object");
  }
  if (need_comma_) out_.push_back(',');
  out_ += quote(k);
  out_.push_back(':');
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  begin_value("value");
  out_ += quote(v);
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  begin_value("value");
  out_ += std::to_string(v);
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  begin_value("value");
  out_ += v ? "true" : "false";
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  if (!done_ || !stack_.empty()) {
    throw InvalidArgument("JsonWriter: str() before the document is complete");
  }
  return out_;
}

bool JsonValue::as_bool() const {
  if (type_ != Type::Bool) throw InvalidArgument("JsonValue: not a bool");
  return bool_;
}

std::uint64_t JsonValue::as_uint() const {
  if (type_ != Type::Uint) throw InvalidArgument("JsonValue: not an integer");
  return uint_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::String) throw InvalidArgument("JsonValue: not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (type_ != Type::Array) throw InvalidArgument("JsonValue: not an array");
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  if (type_ != Type::Object) throw InvalidArgument("JsonValue: not an object");
  return object_;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const auto& members = as_object();
  const auto it = members.find(std::string(key));
  if (it == members.end()) {
    throw InvalidArgument("JsonValue: no member '" + std::string(key) + "'");
  }
  return it->second;
}

bool JsonValue::contains(std::string_view key) const {
  return type_ == Type::Object && object_.count(std::string(key)) != 0;
}

/// Recursive-descent parser over the string subset documented on
/// JsonValue::parse.  One instance per parse call; position state lives in
/// the members, errors carry the byte offset.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue root = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing bytes after the root value");
    return root;
  }

 private:
  static constexpr std::size_t kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  void expect_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      fail("invalid literal");
    }
    pos_ += literal.size();
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_whitespace();
    switch (peek()) {
      case 'n': expect_literal("null"); return JsonValue{};
      case 't': {
        expect_literal("true");
        JsonValue v;
        v.type_ = JsonValue::Type::Bool;
        v.bool_ = true;
        return v;
      }
      case 'f': {
        expect_literal("false");
        JsonValue v;
        v.type_ = JsonValue::Type::Bool;
        v.bool_ = false;
        return v;
      }
      case '"': {
        JsonValue v;
        v.type_ = JsonValue::Type::String;
        v.string_ = parse_string();
        return v;
      }
      case '[': return parse_array(depth);
      case '{': return parse_object(depth);
      default: return parse_number();
    }
  }

  JsonValue parse_number() {
    const char first = peek();
    if (first < '0' || first > '9') fail("unexpected character");
    std::uint64_t value = 0;
    std::size_t digits = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      const std::uint64_t digit = static_cast<std::uint64_t>(text_[pos_] - '0');
      if (value > (UINT64_MAX - digit) / 10) fail("integer overflow");
      value = value * 10 + digit;
      ++pos_;
      ++digits;
    }
    if (digits > 1 && first == '0') fail("leading zero");
    if (pos_ < text_.size()) {
      const char next = text_[pos_];
      if (next == '.' || next == 'e' || next == 'E') {
        fail("fractional numbers are not supported");
      }
    }
    JsonValue v;
    v.type_ = JsonValue::Type::Uint;
    v.uint_ = value;
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 't': out.push_back('\t'); break;
        case 'n': out.push_back('\n'); break;
        case 'f': out.push_back('\f'); break;
        case 'r': out.push_back('\r'); break;
        case 'u': {
          // Only the \u00XX range JsonWriter::quote emits; anything above
          // would need UTF-8 re-encoding this subset deliberately omits.
          std::uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size()) fail("unterminated \\u escape");
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<std::uint32_t>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<std::uint32_t>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<std::uint32_t>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          if (code > 0xff) fail("\\u escapes above 0xff are not supported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  JsonValue parse_array(std::size_t depth) {
    expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::Array;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(parse_value(depth + 1));
      skip_whitespace();
      const char c = peek();
      if (c == ']') {
        ++pos_;
        return v;
      }
      expect(',');
    }
  }

  JsonValue parse_object(std::size_t depth) {
    expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::Object;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      if (!v.object_.emplace(std::move(key), parse_value(depth + 1)).second) {
        fail("duplicate object key");
      }
      skip_whitespace();
      const char c = peek();
      if (c == '}') {
        ++pos_;
        return v;
      }
      expect(',');
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) { return JsonParser(text).run(); }

}  // namespace htor
