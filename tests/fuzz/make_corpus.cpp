// Regenerates the committed fuzz seed corpora under tests/fuzz/corpus/.
//
//   fuzz_make_corpus <corpus_root>
//
// The seeds are deterministic (fixed generator seeds, fixed timestamps) so
// re-running this tool produces byte-identical files; CI never runs it —
// the corpora are committed, and this tool exists so they can be extended
// or regenerated when a format grows new features.  Keep seeds small:
// mutation coverage per iteration scales with how much of the structure a
// few flipped bytes can reach, and a 5 KB seed fuzzes far better than a
// 5 MB one on the same budget.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/census_report.hpp"
#include "core/hybrid.hpp"
#include "core/snapshot_bridge.hpp"
#include "gen/internet.hpp"
#include "gen/updates.hpp"
#include "mrt/reader.hpp"
#include "mrt/rib_view.hpp"
#include "mrt/writer.hpp"
#include "rpsl/object.hpp"
#include "snapshot/snapshot.hpp"
#include "snapshot/writer.hpp"
#include "util/bytes.hpp"

using namespace htor;

namespace {

void write_file(const std::filesystem::path& path, std::span<const std::uint8_t> data) {
  save_bytes(path.string(), data);
  std::cout << "wrote " << path.string() << " (" << data.size() << " bytes)\n";
}

void write_text(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
  out.flush();
  if (!out) throw Error("cannot write " + path.string());
  std::cout << "wrote " << path.string() << " (" << text.size() << " bytes)\n";
}

// --------------------------------------------------------------------- mrt

void make_mrt_seeds(const std::filesystem::path& dir) {
  const auto net = gen::SyntheticInternet::generate(gen::small_params(7));
  const auto records = mrt::records_from_rib(net.collect(), 0x0a0a0a0au, "fuzz", 1281052800u);

  // Seed 1: PEER_INDEX_TABLE + a few dozen RIB records — enough structure
  // (v4 and v6 prefixes, multiple entries per prefix, real path attributes)
  // for length-field mutations to land somewhere interesting.
  {
    mrt::MrtWriter writer;
    for (std::size_t i = 0; i < records.size() && i < 40; ++i) writer.write(records[i]);
    write_file(dir / "rib_small.mrt", writer.data());
  }

  // Seed 2: the PIT plus exactly one v4 and one v6 record — the minimal
  // joinable RIB, so truncation mutations probe every framing offset.
  {
    mrt::MrtWriter writer;
    writer.write(records[0]);
    for (std::size_t i = 1, taken = 0; i < records.size() && taken < 2; ++i) {
      writer.write(records[i]);
      ++taken;
    }
    write_file(dir / "rib_minimal.mrt", writer.data());
  }
}

// ---------------------------------------------------------------- snapshot

snapshot::Snapshot tiny_snapshot() {
  snapshot::Snapshot snap;
  snap.header.timestamp = 1700000000u;
  snap.header.source = "fuzz-tiny.mrt";
  snap.dataset = {10, 8, 5, 4, 3};
  snap.coverage_v4 = {5, 4};
  snap.coverage_v6 = {4, 3};
  snap.coverage_dual = {3, 2};
  snap.valleys_v4 = {8, 6, 1, 1, 1, 1};
  snap.valleys_v6 = {6, 4, 2, 0, 2, 1};
  snap.hybrid_counters = {3, 2, 8, 4};
  snap.rels_v4.set(1, 2, Relationship::P2C);
  snap.rels_v4.set(2, 3, Relationship::P2P);
  snap.rels_v6.set(1, 2, Relationship::P2P);
  snap.rels_v6.set(2, 3, Relationship::P2P);
  snap.hybrids.push_back({LinkKey(1, 2), Relationship::P2C, Relationship::P2P,
                          static_cast<std::uint8_t>(core::HybridClass::TransitV4PeerV6), 5});
  return snap;
}

void make_snapshot_seeds(const std::filesystem::path& dir) {
  // Each seed ships in both formats: the legacy v1 bytes (the reader
  // accepts v1 forever, so its decode path must stay under the fuzz budget)
  // and the v2 flat layout.  The unsuffixed names keep the original v1
  // bytes so regeneration never churns the committed corpus.
  const auto tiny = tiny_snapshot();
  write_file(dir / "tiny.snap", snapshot::Writer::encode_v1(tiny));
  write_file(dir / "tiny_v2.snap", snapshot::Writer::encode(tiny));

  // An empty-maps snapshot: the zero-count paths are their own edge case.
  snapshot::Snapshot empty;
  empty.header.timestamp = 1700000001u;
  empty.header.source = "fuzz-empty.mrt";
  write_file(dir / "empty.snap", snapshot::Writer::encode_v1(empty));
  write_file(dir / "empty_v2.snap", snapshot::Writer::encode(empty));

  // A census-sized snapshot from the synthetic generator: realistic counts,
  // hundreds of map entries, a non-trivial hybrid list.
  const auto net = gen::SyntheticInternet::generate(gen::small_params(21));
  const auto dict = rpsl::mine_dictionary(rpsl::parse_objects(net.irr_dump()));
  const auto report = core::run_census(net.collect(), dict);
  const auto snap = core::to_snapshot(report, "fuzz-census.mrt", 1281052800u);
  write_file(dir / "census.snap", snapshot::Writer::encode_v1(snap));
  write_file(dir / "census_v2.snap", snapshot::Writer::encode(snap));
}

// ----------------------------------------------------------------- updates

void make_update_seeds(const std::filesystem::path& dir) {
  const auto net = gen::SyntheticInternet::generate(gen::small_params(7));
  const auto rib = net.collect();

  // Seed 1: a mixed announce/withdraw/mutate/flap schedule over the small
  // synthetic RIB — both families, MP_REACH/MP_UNREACH v6 encodings, real
  // communities for the vote-retraction paths.
  {
    gen::UpdateScheduleParams params;
    params.seed = 7;
    params.events = 40;
    mrt::MrtWriter writer;
    for (const auto& record : gen::synthesize_updates(rib, params)) writer.write(record);
    write_file(dir / "updates_mixed.mrt", writer.data());
  }

  // Seed 2: a minimal handful of events so truncation mutations probe every
  // framing and attribute offset of a single update.
  {
    gen::UpdateScheduleParams params;
    params.seed = 3;
    params.events = 6;
    mrt::MrtWriter writer;
    for (const auto& record : gen::synthesize_updates(rib, params)) writer.write(record);
    write_file(dir / "updates_minimal.mrt", writer.data());
  }
}

// -------------------------------------------------------------------- http

void make_http_seeds(const std::filesystem::path& dir) {
  write_text(dir / "get_link.http",
             "GET /v1/link/3356/1299 HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n");
  write_text(dir / "pipelined.http",
             "GET /v1/healthz HTTP/1.1\r\nHost: a\r\n\r\n"
             "GET /v1/neighbors/15169 HTTP/1.1\r\nHost: a\r\nConnection: close\r\n\r\n");
  write_text(dir / "post_reload.http",
             "POST /v1/reload HTTP/1.1\r\nHost: localhost\r\nContent-Length: 2\r\n\r\n{}");
  write_text(dir / "head.http",
             "HEAD /v1/summary HTTP/1.0\r\nConnection: keep-alive\r\nUser-Agent: fuzz\r\n\r\n");
  write_text(dir / "many_headers.http",
             "GET /v1/metrics HTTP/1.1\r\nHost: h\r\nAccept: application/json\r\n"
             "Accept-Encoding: identity\r\nX-Request-Id: 0123456789abcdef\r\n"
             "Cache-Control: no-cache\r\nConnection: close\r\n\r\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: fuzz_make_corpus <corpus_root>\n";
    return 2;
  }
  const std::filesystem::path root = argv[1];
  try {
    for (const char* sub : {"mrt", "snapshot", "http", "updates"}) {
      std::filesystem::create_directories(root / sub);
    }
    make_mrt_seeds(root / "mrt");
    make_snapshot_seeds(root / "snapshot");
    make_http_seeds(root / "http");
    make_update_seeds(root / "updates");
  } catch (const std::exception& e) {
    std::cerr << "fuzz_make_corpus: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
