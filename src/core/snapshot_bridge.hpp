// Bridge from the in-memory CensusReport to its persistent snapshot form.
// The snapshot keeps the report's durable core — relationship maps, hybrid
// links, coverage/valley/dataset counters — and drops what is recomputable
// or transient (path stores, per-stage inference intermediates).
#pragma once

#include <cstdint>
#include <string>

#include "core/census_report.hpp"
#include "snapshot/snapshot.hpp"

namespace htor::core {

/// Project `report` into a Snapshot.  `source` names the MRT file the census
/// consumed; `timestamp` is the RIB epoch (MRT record timestamp), NOT wall
/// clock — the same report with the same arguments always produces the same
/// snapshot, byte for byte.
snapshot::Snapshot to_snapshot(const CensusReport& report, std::string source,
                               std::uint64_t timestamp);

}  // namespace htor::core
