// Snapshot deserializer with the same fail-clean discipline as the MRT
// readers: every malformed input — truncation at any byte, wrong magic, a
// version from the future, out-of-range relationship/class values,
// non-canonical entry order, trailing garbage — throws DecodeError and never
// yields a partial Snapshot.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "snapshot/snapshot.hpp"

namespace htor::snapshot {

class Reader {
 public:
  /// Decode one snapshot from `data`, dispatching on the format version:
  /// v1 is the legacy sequential encoding, v2 the flat layout (validated as
  /// a whole, then materialized).  The buffer must contain exactly one
  /// snapshot; trailing bytes are an error.  The decoded header keeps the
  /// file's version, so callers can re-encode like-for-like.
  static Snapshot decode(std::span<const std::uint8_t> data);

  /// Load and decode `path`.  Throws Error when the file cannot be read and
  /// DecodeError when its contents are not a valid snapshot.
  static Snapshot read_file(const std::string& path);

  /// Cheap header-only probe (magic, version, timestamp, source) without
  /// decoding the maps.  Same error discipline as decode() for the header
  /// region.
  static Header probe(std::span<const std::uint8_t> data);
};

}  // namespace htor::snapshot
