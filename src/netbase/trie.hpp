// Binary (bit-per-level) prefix trie with longest-prefix match.
//
// One trie holds one address family; the routing-table style operations are
// insert/assign, exact lookup, and longest-prefix match.  Nodes are stored in
// a vector and addressed by index, so the structure is cache-friendly and
// trivially copyable.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netbase/prefix.hpp"

namespace htor {

template <typename T>
class PrefixTrie {
 public:
  explicit PrefixTrie(IpVersion version) : version_(version) {
    nodes_.push_back(Node{});  // root = /0
  }

  IpVersion version() const { return version_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Insert or overwrite the value at `prefix`.  Returns true when a new
  /// entry was created, false when an existing one was replaced.
  bool assign(const Prefix& prefix, T value) {
    check_family(prefix);
    const std::uint32_t node = descend_create(prefix);
    const bool created = !nodes_[node].value.has_value();
    nodes_[node].value = std::move(value);
    if (created) ++size_;
    return created;
  }

  /// Exact-match lookup.
  const T* find(const Prefix& prefix) const {
    check_family(prefix);
    std::uint32_t node = 0;
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      const std::uint32_t next = child(node, prefix.address().bit(depth));
      if (next == kNone) return nullptr;
      node = next;
    }
    return nodes_[node].value ? &*nodes_[node].value : nullptr;
  }

  /// Longest-prefix match for an address; nullopt when nothing covers it.
  std::optional<Prefix> longest_match(const IpAddress& addr) const {
    if (addr.version() != version_) {
      throw InvalidArgument("PrefixTrie::longest_match: family mismatch");
    }
    std::optional<Prefix> best;
    std::uint32_t node = 0;
    std::uint8_t depth = 0;
    for (;;) {
      if (nodes_[node].value) best = Prefix(addr, depth);
      if (depth == address_bits(version_)) break;
      const std::uint32_t next = child(node, addr.bit(depth));
      if (next == kNone) break;
      node = next;
      ++depth;
    }
    return best;
  }

  /// Value stored at the longest match; nullptr when nothing covers `addr`.
  const T* longest_match_value(const IpAddress& addr) const {
    auto p = longest_match(addr);
    return p ? find(*p) : nullptr;
  }

  /// Visit every (prefix, value) pair in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::vector<std::pair<std::uint32_t, Prefix>> stack;
    stack.emplace_back(0, Prefix(zero_address(), 0));
    while (!stack.empty()) {
      auto [node, prefix] = stack.back();
      stack.pop_back();
      if (nodes_[node].value) fn(prefix, *nodes_[node].value);
      for (int b = 0; b < 2; ++b) {
        const std::uint32_t next = nodes_[node].children[b];
        if (next == kNone) continue;
        stack.emplace_back(next, extend(prefix, b == 1));
      }
    }
  }

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  struct Node {
    std::uint32_t children[2] = {kNone, kNone};
    std::optional<T> value;
  };

  void check_family(const Prefix& p) const {
    if (p.version() != version_) throw InvalidArgument("PrefixTrie: family mismatch");
  }

  std::uint32_t child(std::uint32_t node, bool bit) const {
    return nodes_[node].children[bit ? 1 : 0];
  }

  std::uint32_t descend_create(const Prefix& prefix) {
    std::uint32_t node = 0;
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      const int b = prefix.address().bit(depth) ? 1 : 0;
      std::uint32_t next = nodes_[node].children[b];
      if (next == kNone) {
        next = static_cast<std::uint32_t>(nodes_.size());
        nodes_[node].children[b] = next;
        nodes_.push_back(Node{});
      }
      node = next;
    }
    return node;
  }

  IpAddress zero_address() const {
    if (version_ == IpVersion::V4) return IpAddress::v4(0);
    return IpAddress::v6({});
  }

  static Prefix extend(const Prefix& p, bool bit) {
    // Rebuild the child prefix by setting bit `p.length()` when needed.
    std::array<std::uint8_t, 16> raw{};
    auto src = p.address().bytes();
    std::copy(src.begin(), src.end(), raw.begin());
    if (bit) raw[p.length() / 8] |= static_cast<std::uint8_t>(0x80 >> (p.length() % 8));
    IpAddress addr = p.version() == IpVersion::V4
                         ? IpAddress(IpVersion::V4, std::span<const std::uint8_t>(raw.data(), 4))
                         : IpAddress(IpVersion::V6, raw);
    return Prefix(addr, static_cast<std::uint8_t>(p.length() + 1));
  }

  IpVersion version_;
  std::vector<Node> nodes_;
  std::size_t size_ = 0;
};

}  // namespace htor
