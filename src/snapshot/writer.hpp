// Snapshot serializer.  The format is big-endian throughout (ByteWriter) and
// fully canonical: relationship maps are written in sorted LinkKey order, so
// the same Snapshot always produces byte-identical output — file-level
// equality is snapshot equality.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "snapshot/snapshot.hpp"

namespace htor::snapshot {

class Writer {
 public:
  /// Serialize `snap` to its canonical byte form.  Throws InvalidArgument
  /// when the snapshot is not encodable (source path over 64 KiB, a map
  /// entry with first == second, or a relationship/class value outside the
  /// format's range).
  static std::vector<std::uint8_t> encode(const Snapshot& snap);

  /// encode() straight to a file.  Throws Error when the file cannot be
  /// created or fully written.
  static void write_file(const Snapshot& snap, const std::string& path);
};

}  // namespace htor::snapshot
