// Tests for the paper's inference core: community-based relationship
// extraction (direction, localization, voting) and the LocPrf Rosetta
// (learning, ambiguity, TE filtering, application).
#include <gtest/gtest.h>

#include "core/pipeline.hpp"

namespace htor::core {
namespace {

using mrt::ObservedRoute;

rpsl::CommunityDictionary sample_dict() {
  rpsl::CommunityDictionary dict;
  // AS 100's scheme.
  dict.add(bgp::Community(100, 1), {rpsl::CommunityTagKind::FromCustomer, 0});
  dict.add(bgp::Community(100, 2), {rpsl::CommunityTagKind::FromPeer, 0});
  dict.add(bgp::Community(100, 3), {rpsl::CommunityTagKind::FromProvider, 0});
  dict.add(bgp::Community(100, 4), {rpsl::CommunityTagKind::FromSibling, 0});
  dict.add(bgp::Community(100, 70), {rpsl::CommunityTagKind::SetLocPref, 70});
  // AS 200's scheme.
  dict.add(bgp::Community(200, 10), {rpsl::CommunityTagKind::FromCustomer, 0});
  dict.add(bgp::Community(200, 20), {rpsl::CommunityTagKind::FromPeer, 0});
  return dict;
}

ObservedRoute route(IpVersion af, std::vector<Asn> path,
                    std::vector<bgp::Community> communities,
                    std::optional<std::uint32_t> locpref = std::nullopt) {
  ObservedRoute r;
  r.af = af;
  r.peer_asn = path.front();
  r.as_path = std::move(path);
  r.communities = std::move(communities);
  r.local_pref = locpref;
  return r;
}

TEST(CommunityInference, DirectionOfIngressTags) {
  // Path 100 <- 200 <- 300 (origin 300):
  //   100:1 ("from customer") localizes to link (100, 200): 200 is 100's
  //   customer; 200:20 ("from peer") types (200, 300) as p2p.
  const auto r = route(IpVersion::V4, {100, 200, 300},
                       {bgp::Community(100, 1), bgp::Community(200, 20)});
  const auto dict = sample_dict();
  const auto result = infer_from_communities({&r}, dict);
  EXPECT_EQ(result.rels.get(100, 200), Relationship::P2C);
  EXPECT_EQ(result.rels.get(200, 100), Relationship::C2P);
  EXPECT_EQ(result.rels.get(200, 300), Relationship::P2P);
  EXPECT_EQ(result.tagged_routes, 1u);
  EXPECT_EQ(result.total_votes, 2u);
}

TEST(CommunityInference, AllFourTagKinds) {
  const auto dict = sample_dict();
  for (auto [value, rel] :
       {std::pair{std::uint16_t{1}, Relationship::P2C}, std::pair{std::uint16_t{2}, Relationship::P2P},
        std::pair{std::uint16_t{3}, Relationship::C2P}, std::pair{std::uint16_t{4}, Relationship::S2S}}) {
    const auto r = route(IpVersion::V6, {100, 555}, {bgp::Community(100, value)});
    const auto result = infer_from_communities({&r}, dict);
    EXPECT_EQ(result.rels.get(100, 555), rel) << value;
  }
}

TEST(CommunityInference, TagFromAsNotOnPathIgnored) {
  // A community from AS 100 on a path that does not contain AS 100 cannot be
  // localized and must not vote.
  const auto r = route(IpVersion::V4, {200, 300}, {bgp::Community(100, 1)});
  const auto result = infer_from_communities({&r}, sample_dict());
  EXPECT_EQ(result.rels.size(), 0u);
  EXPECT_EQ(result.tagged_routes, 0u);
}

TEST(CommunityInference, OriginTagHasNoNextHop) {
  // The origin's own ingress tag points past the end of the path: ignored.
  const auto r = route(IpVersion::V4, {200, 100}, {bgp::Community(100, 1)});
  const auto result = infer_from_communities({&r}, sample_dict());
  EXPECT_EQ(result.rels.size(), 0u);
}

TEST(CommunityInference, TeAndGeoTagsDoNotVote) {
  const auto r = route(IpVersion::V4, {100, 300}, {bgp::Community(100, 70)});
  const auto result = infer_from_communities({&r}, sample_dict());
  EXPECT_EQ(result.rels.size(), 0u);
}

TEST(CommunityInference, PrependingDoesNotConfuseLocalization) {
  const auto r = route(IpVersion::V4, {100, 200, 200, 200, 300},
                       {bgp::Community(200, 10)});
  const auto result = infer_from_communities({&r}, sample_dict());
  EXPECT_EQ(result.rels.get(200, 300), Relationship::P2C);
}

TEST(CommunityInference, ConflictingVotesYieldUnknown) {
  const auto a = route(IpVersion::V4, {100, 200}, {bgp::Community(100, 1)});
  const auto b = route(IpVersion::V4, {100, 200}, {bgp::Community(100, 2)});
  const auto dict = sample_dict();
  const auto result = infer_from_communities({&a, &b}, dict);
  EXPECT_EQ(result.rels.get(100, 200), Relationship::Unknown);
  EXPECT_EQ(result.conflicted_links, 1u);

  // A clear majority resolves the conflict.
  const auto c = route(IpVersion::V4, {100, 200}, {bgp::Community(100, 1)});
  const auto d = route(IpVersion::V4, {100, 200}, {bgp::Community(100, 1)});
  const auto result2 = infer_from_communities({&a, &b, &c, &d}, dict);
  EXPECT_EQ(result2.rels.get(100, 200), Relationship::P2C);
}

TEST(CommunityInference, TieIsConflictedNotEnumOrder) {
  // Regression: 1×"from customer" vs 1×"from peer" on the same link is a
  // dead tie.  With a majority requirement of 0.5 the old tally let the tie
  // pass and resolved it to P2C purely because P2C has the lowest rel index.
  const auto a = route(IpVersion::V4, {100, 200}, {bgp::Community(100, 1)});
  const auto b = route(IpVersion::V4, {100, 200}, {bgp::Community(100, 2)});
  CommunityInferenceParams params;
  params.majority = 0.5;
  const auto result = infer_from_communities({&a, &b}, sample_dict(), params);
  EXPECT_EQ(result.rels.get(100, 200), Relationship::Unknown);
  EXPECT_EQ(result.rels.size(), 0u);
  EXPECT_EQ(result.conflicted_links, 1u);

  // A 2-vs-1 split at the same threshold is a genuine majority and resolves.
  const auto c = route(IpVersion::V4, {100, 200}, {bgp::Community(100, 1)});
  const auto result2 = infer_from_communities({&a, &b, &c}, sample_dict(), params);
  EXPECT_EQ(result2.rels.get(100, 200), Relationship::P2C);
  EXPECT_EQ(result2.conflicted_links, 0u);
}

TEST(CommunityInference, LoopedPathTaggerVotesAreSkipped) {
  // Regression: on a looped/poisoned path the tagging AS appears twice
  // non-adjacently, so its ingress tag cannot be localized to one link.
  // The old scan kept only the first occurrence and voted on (100, 200);
  // the vote must be skipped entirely.
  const auto r = route(IpVersion::V4, {100, 200, 100, 300}, {bgp::Community(100, 1)});
  const auto result = infer_from_communities({&r}, sample_dict());
  EXPECT_EQ(result.rels.size(), 0u);
  EXPECT_EQ(result.total_votes, 0u);
  EXPECT_EQ(result.tagged_routes, 0u);

  // Tags from single-occurrence ASes on the same path still vote: AS 200
  // appears once, so its tag localizes to (200, 100) unambiguously.
  const auto s = route(IpVersion::V4, {100, 200, 100, 300},
                       {bgp::Community(100, 1), bgp::Community(200, 10)});
  const auto result2 = infer_from_communities({&s}, sample_dict());
  EXPECT_EQ(result2.total_votes, 1u);
  EXPECT_EQ(result2.rels.get(200, 100), Relationship::P2C);

  // Adjacent repeats are prepending, which collapse() already handles; the
  // collapsed single occurrence still votes.
  const auto t = route(IpVersion::V4, {100, 100, 200}, {bgp::Community(100, 1)});
  const auto result3 = infer_from_communities({&t}, sample_dict());
  EXPECT_EQ(result3.rels.get(100, 200), Relationship::P2C);
}

TEST(CommunityInference, MinVotesThreshold) {
  const auto r = route(IpVersion::V4, {100, 200}, {bgp::Community(100, 1)});
  CommunityInferenceParams params;
  params.min_votes = 2;
  const auto result = infer_from_communities({&r}, sample_dict(), params);
  EXPECT_EQ(result.rels.get(100, 200), Relationship::Unknown);
  EXPECT_EQ(result.conflicted_links, 1u);  // had votes, below threshold
}

// --- Rosetta ---------------------------------------------------------------

TEST(Rosetta, LearnsAndAppliesTranslation) {
  const auto dict = sample_dict();
  // Vantage 100: three tagged routes teach "locpref 120 == customer";
  // a fourth, untagged route with locpref 120 gets its first hop typed.
  std::vector<ObservedRoute> routes;
  for (Asn origin : {201u, 202u, 203u}) {
    routes.push_back(route(IpVersion::V4, {100, origin}, {bgp::Community(100, 1)}, 120));
  }
  routes.push_back(route(IpVersion::V4, {100, 299}, {}, 120));

  std::vector<const ObservedRoute*> ptrs;
  for (const auto& r : routes) ptrs.push_back(&r);
  const auto known = infer_from_communities(ptrs, dict);
  ASSERT_EQ(known.rels.get(100, 201), Relationship::P2C);
  ASSERT_EQ(known.rels.get(100, 299), Relationship::Unknown);

  const auto rosetta = run_rosetta(ptrs, dict, known.rels);
  EXPECT_EQ(rosetta.values_learned, 1u);
  EXPECT_EQ(rosetta.first_hop_rels.get(100, 299), Relationship::P2C);
  EXPECT_EQ(rosetta.routes_resolved, 1u);
}

TEST(Rosetta, AmbiguousValuesAreDiscarded) {
  const auto dict = sample_dict();
  std::vector<ObservedRoute> routes;
  // locpref 100 maps to customer on one route, peer on another.
  for (int i = 0; i < 3; ++i) {
    routes.push_back(route(IpVersion::V4, {100, 201}, {bgp::Community(100, 1)}, 100));
    routes.push_back(route(IpVersion::V4, {100, 202}, {bgp::Community(100, 2)}, 100));
  }
  routes.push_back(route(IpVersion::V4, {100, 299}, {}, 100));
  std::vector<const ObservedRoute*> ptrs;
  for (const auto& r : routes) ptrs.push_back(&r);
  const auto known = infer_from_communities(ptrs, dict);
  const auto rosetta = run_rosetta(ptrs, dict, known.rels);
  EXPECT_EQ(rosetta.values_learned, 0u);
  EXPECT_EQ(rosetta.values_ambiguous, 1u);
  EXPECT_EQ(rosetta.first_hop_rels.get(100, 299), Relationship::Unknown);
}

TEST(Rosetta, MinSamplesGate) {
  const auto dict = sample_dict();
  std::vector<ObservedRoute> routes;
  routes.push_back(route(IpVersion::V4, {100, 201}, {bgp::Community(100, 1)}, 150));
  std::vector<const ObservedRoute*> ptrs{&routes[0]};
  const auto known = infer_from_communities(ptrs, dict);
  RosettaParams params;
  params.min_samples = 3;
  const auto rosetta = run_rosetta(ptrs, dict, known.rels, params);
  EXPECT_EQ(rosetta.values_learned, 0u);
}

TEST(Rosetta, TeFilterExcludesOverriddenRoutes) {
  const auto dict = sample_dict();
  std::vector<ObservedRoute> routes;
  // Normal learning: locpref 120 == customer (x3).
  for (Asn o : {201u, 202u, 203u}) {
    routes.push_back(route(IpVersion::V4, {100, o}, {bgp::Community(100, 1)}, 120));
  }
  // A TE-overridden PEER route also shows locpref 120 — poison unless
  // filtered (x3, carrying the vantage's set-locpref community).
  for (Asn o : {211u, 212u, 213u}) {
    routes.push_back(route(IpVersion::V4, {100, o},
                           {bgp::Community(100, 2), bgp::Community(100, 70)}, 120));
  }
  routes.push_back(route(IpVersion::V4, {100, 299}, {}, 120));
  std::vector<const ObservedRoute*> ptrs;
  for (const auto& r : routes) ptrs.push_back(&r);
  const auto known = infer_from_communities(ptrs, dict);

  RosettaParams with_filter;
  const auto filtered = run_rosetta(ptrs, dict, known.rels, with_filter);
  EXPECT_EQ(filtered.first_hop_rels.get(100, 299), Relationship::P2C);
  EXPECT_GT(filtered.routes_te_filtered, 0u);

  RosettaParams no_filter;
  no_filter.filter_te = false;
  const auto unfiltered = run_rosetta(ptrs, dict, known.rels, no_filter);
  // Without the filter the value becomes ambiguous: nothing is learned.
  EXPECT_EQ(unfiltered.first_hop_rels.get(100, 299), Relationship::Unknown);
  EXPECT_EQ(unfiltered.values_ambiguous, 1u);
}

TEST(Rosetta, WellKnownCommunitiesDisqualify) {
  const auto dict = sample_dict();
  std::vector<ObservedRoute> routes;
  for (Asn o : {201u, 202u, 203u}) {
    routes.push_back(route(IpVersion::V4, {100, o}, {bgp::Community(100, 1)}, 120));
  }
  auto poisoned = route(IpVersion::V4, {100, 299}, {}, 120);
  poisoned.communities.push_back(bgp::kNoExport);
  routes.push_back(poisoned);
  std::vector<const ObservedRoute*> ptrs;
  for (const auto& r : routes) ptrs.push_back(&r);
  const auto known = infer_from_communities(ptrs, dict);
  const auto rosetta = run_rosetta(ptrs, dict, known.rels);
  // The NO_EXPORT route is not used for application either.
  EXPECT_EQ(rosetta.first_hop_rels.get(100, 299), Relationship::Unknown);
}

TEST(Pipeline, RosettaOnlyFillsGaps) {
  const auto dict = sample_dict();
  mrt::ObservedRib rib;
  for (Asn o : {201u, 202u, 203u}) {
    rib.add(route(IpVersion::V4, {100, o}, {bgp::Community(100, 1)}, 120));
  }
  rib.add(route(IpVersion::V4, {100, 299}, {}, 120));
  const auto inferred = infer_relationships(rib, dict);
  EXPECT_EQ(inferred.v4.get(100, 299), Relationship::P2C);   // via Rosetta
  EXPECT_EQ(inferred.v4.get(100, 201), Relationship::P2C);   // via communities
  EXPECT_EQ(inferred.community_v4.rels.get(100, 299), Relationship::Unknown);

  InferenceConfig no_rosetta;
  no_rosetta.use_rosetta = false;
  const auto bare = infer_relationships(rib, dict, no_rosetta);
  EXPECT_EQ(bare.v4.get(100, 299), Relationship::Unknown);
}

TEST(Pipeline, HelperFunctions) {
  mrt::ObservedRib rib;
  rib.add(route(IpVersion::V4, {1, 2, 3}, {}));
  rib.add(route(IpVersion::V6, {1, 2, 4}, {}));
  rib.add(route(IpVersion::V6, {5, 2, 1}, {}));
  const auto v4 = paths_of(rib, IpVersion::V4);
  const auto v6 = paths_of(rib, IpVersion::V6);
  EXPECT_EQ(v4.unique_paths(), 1u);
  EXPECT_EQ(v6.unique_paths(), 2u);

  const auto duals = dual_stack_links(v4, v6);
  ASSERT_EQ(duals.size(), 1u);
  EXPECT_EQ(duals[0], LinkKey(1, 2));

  RelationshipMap rels;
  rels.set(1, 2, Relationship::P2C);
  const auto cov = coverage(v4.links(), rels);
  EXPECT_EQ(cov.observed_links, 2u);
  EXPECT_EQ(cov.covered_links, 1u);
  EXPECT_DOUBLE_EQ(cov.fraction(), 0.5);
}

}  // namespace
}  // namespace htor::core
