// Concurrency stress suite — written to be run under ThreadSanitizer.
//
// Functionally these tests assert ordinary invariants (statuses sane, epochs
// monotonic, every submitted task ran); their real job is to generate the
// interleavings TSan needs to prove the absence of data races in the
// daemon's hot-reload state swap, the connection pump's worker hand-off,
// overlapping shard_map calls on one ThreadPool, pool shutdown ordering,
// and — since the live subsystem landed — the SPSC ring's release/acquire
// protocol, the live pipeline's cooperative shutdown, and serve --follow's
// epoch swap_index() racing direct handle() storms.  Removing the
// state_mutex_ lock around QueryDaemon's shared_ptr swap makes
// DirectHandleStormRacesReload fail under TSan within milliseconds
// (verified once by hand; see CHANGES.md for PR 6).
//
// Budgets are deliberately modest: the suite must stay fast enough for the
// plain unit loop while still giving a sanitizer thousands of cross-thread
// handoffs to inspect.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/hybrid.hpp"
#include "core/parallel.hpp"
#include "gen/internet.hpp"
#include "gen/updates.hpp"
#include "live/follow.hpp"
#include "live/pipeline.hpp"
#include "mrt/writer.hpp"
#include "rpsl/object.hpp"
#include "server/daemon.hpp"
#include "snapshot/query.hpp"
#include "snapshot/snapshot.hpp"
#include "snapshot/writer.hpp"
#include "util/spsc_ring.hpp"
#include "util/thread_pool.hpp"

namespace htor {
namespace {

using server::DaemonConfig;
using server::HttpRequest;
using server::QueryDaemon;

// ------------------------------------------------------------ fixtures

/// Two observably different snapshots: flavor A makes link 1-2 hybrid,
/// flavor B resolves it, so a reload is visible in responses.
snapshot::Snapshot make_snapshot(bool flavor_a) {
  snapshot::Snapshot snap;
  snap.header.timestamp = flavor_a ? 1700000000u : 1700086400u;
  snap.header.source = flavor_a ? "stress-a.mrt" : "stress-b.mrt";
  snap.dataset = {10, 8, 5, 4, 3};
  snap.rels_v4.set(1, 2, Relationship::P2C);
  snap.rels_v4.set(2, 3, Relationship::P2P);
  snap.rels_v6.set(1, 2, flavor_a ? Relationship::P2P : Relationship::P2C);
  snap.rels_v6.set(3, 4, Relationship::C2P);
  if (flavor_a) {
    snap.hybrids.push_back({LinkKey(1, 2), Relationship::P2C, Relationship::P2P,
                            static_cast<std::uint8_t>(core::HybridClass::TransitV4PeerV6), 5});
  }
  return snap;
}

/// Atomically replace `path` with `snap` (write-to-temp + rename) so a
/// concurrent reload() never reads a torn file — torn-file handling has its
/// own test below.
void swap_snapshot_file(const std::string& path, const snapshot::Snapshot& snap) {
  const std::string tmp = path + ".tmp";
  snapshot::Writer::write_file(snap, tmp);
  std::filesystem::rename(tmp, path);
}

HttpRequest get(const std::string& target) {
  HttpRequest request;
  request.method = "GET";
  request.target = target;
  return request;
}

class ConcurrencyStress : public ::testing::Test {
 protected:
  void SetUp() override {
    snap_path_ = (std::filesystem::temp_directory_path() /
                  ("htor_stress_" + std::to_string(::getpid()) + ".snap"))
                     .string();
    swap_snapshot_file(snap_path_, make_snapshot(true));
  }
  void TearDown() override {
    std::filesystem::remove(snap_path_);
    std::filesystem::remove(snap_path_ + ".tmp");
  }

  std::string snap_path_;
};

// ------------------------------------------------- daemon state-swap races

// The prime suspect from the issue: QueryDaemon::reload() swapping the
// state_ shared_ptr while reader threads copy it in current().  handle() is
// driven directly (no sockets) so the threads spend all their time on the
// swap path, which is exactly what gives TSan its interleavings.  Removing
// the state_mutex_ guard makes this test fail under TSan.
TEST_F(ConcurrencyStress, DirectHandleStormRacesReload) {
  DaemonConfig config;
  config.jobs = 2;
  QueryDaemon daemon(snap_path_, config);  // not start()ed: no sockets needed

  constexpr int kReaderThreads = 4;
  constexpr int kRequestsPerThread = 400;
  std::atomic<bool> go{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaderThreads);
  for (int t = 0; t < kReaderThreads; ++t) {
    readers.emplace_back([&daemon, &go, &failures, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::uint64_t last_epoch = 0;
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const auto& target = (i + t) % 3 == 0   ? "/v1/link/1/2"
                             : (i + t) % 3 == 1 ? "/v1/summary"
                                                : "/v1/metrics";
        const auto resp = daemon.handle(get(target));
        if (resp.status != 200) failures.fetch_add(1, std::memory_order_relaxed);
        // Epochs a single thread observes never go backwards: a reload
        // that published state N must not be followed by a read of N-1.
        const auto epoch = daemon.epoch();
        if (epoch < last_epoch) failures.fetch_add(1, std::memory_order_relaxed);
        last_epoch = epoch;
      }
    });
  }

  std::thread reloader([this, &daemon, &go] {
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    for (int i = 0; i < 60; ++i) {
      swap_snapshot_file(snap_path_, make_snapshot(i % 2 == 1));
      EXPECT_TRUE(daemon.reload());
    }
  });

  go.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  reloader.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(daemon.epoch(), 61u);  // initial load + 60 reloads
}

// reload() called concurrently from many threads (the POST /v1/reload path:
// several clients can hit it at once) interleaved with request_reload()
// (the SIGHUP path).  reload_mutex_ must serialize the decodes and the
// epoch must advance exactly once per successful reload.
TEST_F(ConcurrencyStress, ConcurrentReloadersSerializeCleanly) {
  DaemonConfig config;
  config.jobs = 2;
  QueryDaemon daemon(snap_path_, config);

  constexpr int kThreads = 4;
  constexpr int kReloadsPerThread = 25;
  std::atomic<bool> go{false};
  std::atomic<int> ok{0};
  std::vector<std::thread> reloaders;
  for (int t = 0; t < kThreads; ++t) {
    reloaders.emplace_back([&daemon, &go, &ok] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kReloadsPerThread; ++i) {
        daemon.request_reload();  // flag-only path must stay benign
        if (daemon.reload()) ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& thread : reloaders) thread.join();

  EXPECT_EQ(ok.load(), kThreads * kReloadsPerThread);
  EXPECT_EQ(daemon.epoch(), 1u + kThreads * kReloadsPerThread);
}

// ------------------------------------------------- mapped-view lifetimes

// Views over a mapped v2 image must outlive both the serving-pointer swap
// (the daemon's reload pattern) and the rename-replacement of the file they
// were mapped from: the mmap pins the old inode until the last view drops,
// and the unmap then happens on whichever reader thread dropped last.  The
// readers stagger their drops so TSan gets to inspect unmap-after-last-
// reader racing fresh maps of the replaced file.
TEST_F(ConcurrencyStress, MappedViewsOutliveServingSwapAndFileReplacement) {
  auto initial = std::make_shared<const snapshot::QueryIndex>(
      snapshot::QueryIndex::open_mapped(snap_path_));
  ASSERT_TRUE(initial->is_mapped());

  std::mutex serving_mutex;
  std::shared_ptr<const snapshot::QueryIndex> serving = initial;
  auto current = [&serving_mutex, &serving] {
    std::lock_guard<std::mutex> lock(serving_mutex);
    return serving;
  };

  constexpr int kReaderThreads = 4;
  constexpr int kIterations = 300;
  std::atomic<bool> go{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaderThreads);
  for (int t = 0; t < kReaderThreads; ++t) {
    // `old_view` is copied here, before the spawn, so the main thread's
    // later initial.reset() touches a different shared_ptr object.
    readers.emplace_back([&, t, old_view = initial]() mutable {
      const int drop_at = kIterations / 2 + t * 29;
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kIterations; ++i) {
        if (old_view) {
          // The old view keeps answering from the snapshot it was opened
          // on, no matter what happened to the path since.
          const auto link = old_view->lookup(1, 2);
          if (old_view->timestamp() != 1700000000u || !link || !link->hybrid) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (i == drop_at) old_view.reset();  // staggered unmap candidates
        const auto now = current();
        const auto link = now->lookup(1, 2);
        if (!link || now->link_count() == 0) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::thread swapper([&] {
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    for (int i = 0; i < 40; ++i) {
      swap_snapshot_file(snap_path_, make_snapshot(i % 2 == 1));
      auto next = std::make_shared<const snapshot::QueryIndex>(
          snapshot::QueryIndex::open_mapped(snap_path_));
      std::lock_guard<std::mutex> lock(serving_mutex);
      serving = std::move(next);
    }
  });

  initial.reset();  // only reader threads keep the original image alive now
  go.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  swapper.join();

  EXPECT_EQ(failures.load(), 0);
}

// A reload that races a writer mid-rewrite of the snapshot file must either
// succeed on a complete file or fail cleanly and keep the old state — never
// crash, never serve a half-decoded snapshot.  The writer tears v2 bytes
// (Writer::encode emits v2), so this is the torn-flat-layout case: the
// daemon's owned-bytes reload must validate the whole image before the swap
// and never expose a partial view.
TEST_F(ConcurrencyStress, TornSnapshotFileNeverServesPartially) {
  DaemonConfig config;
  config.jobs = 2;
  QueryDaemon daemon(snap_path_, config);

  std::atomic<bool> stop_writer{false};
  std::thread writer([this, &stop_writer] {
    const auto bytes = snapshot::Writer::encode(make_snapshot(false));
    while (!stop_writer.load(std::memory_order_acquire)) {
      // Deliberately non-atomic rewrite: truncate, then two partial writes.
      std::ofstream out(snap_path_, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size() / 2));
      out.flush();
      out.write(reinterpret_cast<const char*>(bytes.data() + bytes.size() / 2),
                static_cast<std::streamsize>(bytes.size() - bytes.size() / 2));
    }
  });

  int ok = 0;
  int failed = 0;
  for (int i = 0; i < 50; ++i) {
    if (daemon.reload()) {
      ++ok;
    } else {
      ++failed;
      EXPECT_FALSE(daemon.last_reload_error().empty());
    }
    // Whatever the reload outcome, the daemon keeps answering coherently.
    EXPECT_EQ(daemon.handle(get("/v1/summary")).status, 200);
  }
  stop_writer.store(true, std::memory_order_release);
  writer.join();
  EXPECT_EQ(ok + failed, 50);
}

// ------------------------------------------------- socket-level free-for-all

// Real sockets, keep-alive clients, reloads and stop() all at once: the
// closest the unit loop gets to production traffic.  Exercises the pump's
// yield/re-enqueue hand-off (worker ownership of a Connection migrates
// between pool threads) under load.
TEST_F(ConcurrencyStress, SocketClientsRaceHotReloadAndShutdown) {
  DaemonConfig config;
  config.port = 0;
  config.jobs = 3;
  auto daemon = std::make_unique<QueryDaemon>(snap_path_, config);
  daemon->start();
  const std::uint16_t port = daemon->port();
  ASSERT_NE(port, 0);

  constexpr int kClients = 3;
  constexpr int kRequestsPerClient = 40;
  std::atomic<int> transport_errors{0};
  std::atomic<int> bad_statuses{0};

  auto client_loop = [&](int id) {
    for (int i = 0; i < kRequestsPerClient; ++i) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(port);
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        transport_errors.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const std::string target = (i + id) % 2 == 0 ? "/v1/link/1/2" : "/v1/healthz";
      const std::string request = "GET " + target + " HTTP/1.1\r\nConnection: close\r\n\r\n";
      if (::send(fd, request.data(), request.size(), MSG_NOSIGNAL) !=
          static_cast<ssize_t>(request.size())) {
        ::close(fd);
        transport_errors.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      std::string reply;
      char buf[2048];
      ssize_t n = 0;
      while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) reply.append(buf, std::size_t(n));
      ::close(fd);
      if (reply.rfind("HTTP/1.1 200", 0) != 0) {
        bad_statuses.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) clients.emplace_back(client_loop, c);

  for (int i = 0; i < 10; ++i) {
    swap_snapshot_file(snap_path_, make_snapshot(i % 2 == 1));
    EXPECT_TRUE(daemon->reload());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  for (auto& client : clients) client.join();
  EXPECT_EQ(transport_errors.load(), 0);
  EXPECT_EQ(bad_statuses.load(), 0);

  // Shutdown ordering: destroy the daemon (stop + quiesce + pool teardown)
  // immediately after traffic with no settling sleep.
  daemon.reset();
}

// stop() while clients hold half-written requests: the pump must observe
// stop_ on its next tick and the destructor must quiesce without waiting on
// the idle timeout or deadlocking against self-re-enqueued pump tasks.
TEST_F(ConcurrencyStress, StopWithIdleAndHalfOpenConnectionsQuiesces) {
  DaemonConfig config;
  config.port = 0;
  config.jobs = 2;
  config.idle_timeout_ms = 60000;  // stop() must NOT need the idle reaper
  QueryDaemon daemon(snap_path_, config);
  daemon.start();

  std::vector<int> fds;
  for (int i = 0; i < 4; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(daemon.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
    if (i % 2 == 0) {
      // Half a request: the parser is mid-request-line when stop arrives.
      const std::string partial = "GET /v1/lin";
      ASSERT_EQ(::send(fd, partial.data(), partial.size(), MSG_NOSIGNAL),
                static_cast<ssize_t>(partial.size()));
    }
    fds.push_back(fd);
  }
  // Give the acceptor a tick to hand the connections to the pool.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const auto t0 = std::chrono::steady_clock::now();
  daemon.stop();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(), 10);
  for (int fd : fds) ::close(fd);
}

// --------------------------------------------------- live pipeline races

// The tiny-ring contention case: capacity 2 forces producer and consumer to
// collide on the same two slots for every element, so every push/pop pair
// exercises the release/acquire handshake through a wraparound.  A third
// thread scrapes occupancy() continuously — the /metrics ring-depth gauge
// path — which must stay a benign approximate read: it may lag but can
// never report more than capacity (tail is loaded before head, and head
// only grows).
TEST(SpscRingStress, CapacityTwoWraparoundUnderContention) {
  constexpr std::uint64_t kCount = 30000;
  SpscRing<std::uint64_t> ring(2);
  std::atomic<bool> scrape_stop{false};
  std::atomic<int> overshoots{0};

  std::thread scraper([&ring, &scrape_stop, &overshoots] {
    while (!scrape_stop.load(std::memory_order_acquire)) {
      if (ring.occupancy() > ring.capacity()) {
        overshoots.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::yield();
    }
  });

  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kCount;) {
      std::uint64_t value = i;
      if (ring.try_push(value)) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
    ring.close();
  });

  std::uint64_t next = 0;
  int misordered = 0;
  while (!ring.done()) {
    std::uint64_t out = 0;
    if (ring.try_pop(out)) {
      if (out != next) ++misordered;
      ++next;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  scrape_stop.store(true, std::memory_order_release);
  scraper.join();

  EXPECT_EQ(next, kCount);
  EXPECT_EQ(misordered, 0);
  EXPECT_EQ(overshoots.load(), 0);
}

/// On-disk inputs for the live-pipeline stress tests: seed RIB, IRR dump,
/// and a deterministic update stream, built once per process.
struct LiveStressWorld {
  std::string dir;
  std::string rib_path;
  std::string irr_path;
  std::string updates_path;
  mrt::ObservedRib rib;
  rpsl::CommunityDictionary dict;
  std::size_t update_count = 0;
};

const LiveStressWorld& live_world() {
  static const LiveStressWorld w = [] {
    LiveStressWorld out;
    out.dir = (std::filesystem::temp_directory_path() /
               ("htor_stress_live_" + std::to_string(::getpid())))
                  .string();
    std::filesystem::create_directories(out.dir);
    const auto net = gen::SyntheticInternet::generate(gen::small_params(7));
    out.rib = net.collect();
    out.dict = rpsl::mine_dictionary(rpsl::parse_objects(net.irr_dump()));

    mrt::MrtWriter rib_writer;
    for (const auto& rec : mrt::records_from_rib(out.rib, 1, "stress-live", 1281052800u)) {
      rib_writer.write(rec);
    }
    out.rib_path = out.dir + "/rib.mrt";
    rib_writer.save(out.rib_path);

    out.irr_path = out.dir + "/irr.txt";
    std::ofstream irr(out.irr_path);
    irr << net.irr_dump();
    irr.flush();

    gen::UpdateScheduleParams params;
    params.events = 1000;
    const auto updates = gen::synthesize_updates(out.rib, params);
    mrt::MrtWriter update_writer;
    for (const auto& rec : updates) update_writer.write(rec);
    out.updates_path = out.dir + "/updates.mrt";
    update_writer.save(out.updates_path);
    out.update_count = updates.size();
    return out;
  }();
  return w;
}

// request_stop() arriving while all three stages are in flight: the flag is
// polled by the reader's stalled push, the decoder's stalled push, and the
// apply loop's pop, and run()'s join path must drain both rings without
// deadlocking whatever the stages were doing when the flag flipped.
// Capacity-2 rings keep the stages blocked on backpressure most of the time
// (the hard case for shutdown: a stalled producer must still observe stop),
// and the quadratically staggered delay walks the flag across stage states
// from before-first-record to after-stream-end.
TEST(LivePipelineStress, RequestStopRacesAllThreeStages) {
  const auto& w = live_world();
  core::InferenceConfig config;
  config.threads = 1;
  ThreadPool pool(2);

  for (int round = 0; round < 8; ++round) {
    live::IncrementalCensus census(w.rib, w.dict, config, "stress-live", 1281052800u);
    live::PipelineConfig pipeline_config;
    pipeline_config.ring_capacity = 2;
    pipeline_config.epoch_every = 200;
    live::Pipeline pipeline(census, pipeline_config);

    std::atomic<bool> go{false};
    std::thread stopper([&pipeline, &go, round] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::this_thread::sleep_for(std::chrono::microseconds(150 * round * round));
      pipeline.request_stop();
    });

    std::uint64_t epochs_seen = 0;
    go.store(true, std::memory_order_release);
    const auto result = pipeline.run(
        {w.updates_path}, pool, [&epochs_seen](const live::EpochReport&) { ++epochs_seen; });
    stopper.join();

    // Whether the run was cut short or completed, its books must balance:
    // every applied message reached the census, every cut epoch reached the
    // callback, and a run that was NOT stopped applied the whole stream.
    EXPECT_EQ(result.epochs, epochs_seen) << "round " << round;
    EXPECT_EQ(result.applied, census.applied()) << "round " << round;
    EXPECT_LE(result.applied, w.update_count) << "round " << round;
    if (!result.stopped) {
      EXPECT_EQ(result.applied, w.update_count) << "round " << round;
    }
  }
}

// The serve --follow swap path: the pipeline thread publishes a fresh
// QueryIndex through swap_index() on every cut epoch while reader threads
// copy the serving state through handle().  Driven directly (no sockets) so
// the readers spend all their time on the swap — the same shape as
// DirectHandleStormRacesReload, but with the daemon's state replaced from
// the pipeline thread instead of reload()'s file path.
TEST(LivePipelineStress, FollowEpochSwapsRaceDirectHandleStorm) {
  const auto& w = live_world();
  live::FollowConfig config;
  config.daemon.port = 0;
  config.daemon.jobs = 2;
  config.pipeline.epoch_every = 80;
  config.pipeline.ring_capacity = 64;
  config.jobs = 1;
  live::FollowService service(w.rib_path, w.irr_path, {w.updates_path}, config);
  service.start();

  constexpr int kReaderThreads = 3;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaderThreads);
  for (int t = 0; t < kReaderThreads; ++t) {
    readers.emplace_back([&service, &stop, &failures, t] {
      std::uint64_t last_epoch = 0;
      for (int i = 0; !stop.load(std::memory_order_acquire); ++i) {
        const auto& target = (i + t) % 3 == 0   ? "/v1/summary"
                             : (i + t) % 3 == 1 ? "/v1/healthz"
                                                : "/v1/metrics";
        const auto resp = service.daemon().handle(get(target));
        if (resp.status != 200) failures.fetch_add(1, std::memory_order_relaxed);
        // Epoch swaps must look monotonic from any single reader.
        const auto epoch = service.daemon().epoch();
        if (epoch < last_epoch) failures.fetch_add(1, std::memory_order_relaxed);
        last_epoch = epoch;
      }
    });
  }

  service.wait();  // stream exhausted; readers saw every swap go by
  stop.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(failures.load(), 0);
  const auto result = service.result();
  EXPECT_FALSE(result.stopped);
  EXPECT_EQ(result.applied, w.update_count);
  EXPECT_GE(service.epochs_published(), 2u);
  EXPECT_EQ(service.daemon().epoch(), 1 + service.epochs_published());
  service.stop();
}

// --------------------------------------------------- thread pool / parallel

// Overlapping shard_map calls on one shared pool, from multiple threads at
// once — the census pipeline does exactly this when both address families
// are inferred in flight.  Results must be correct and the merge order
// deterministic regardless of interleaving.
TEST(ThreadPoolStress, OverlappingShardMapsComputeCorrectSums) {
  ThreadPool pool(3);
  constexpr int kCallers = 4;
  constexpr int kRounds = 25;
  constexpr std::size_t kN = 1000;
  const std::uint64_t expected = kN * (kN - 1) / 2;

  std::atomic<int> wrong{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&pool, &wrong] {
      for (int round = 0; round < kRounds; ++round) {
        const auto total = core::shard_map_reduce(
            pool, kN,
            [](core::ShardRange range) {
              std::uint64_t sum = 0;
              for (std::size_t i = range.begin; i < range.end; ++i) sum += i;
              return sum;
            },
            std::uint64_t{0}, [](std::uint64_t& acc, std::uint64_t part) { acc += part; });
        if (total != expected) wrong.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& caller : callers) caller.join();
  EXPECT_EQ(wrong.load(), 0);
}

// Shutdown ordering: a pool destroyed right after a burst of submits must
// run every queued task before joining (the destructor drains the queue);
// no task may be dropped and no future left dangling.
TEST(ThreadPoolStress, DestructorDrainsQueuedTasks) {
  for (int round = 0; round < 30; ++round) {
    std::atomic<int> ran{0};
    {
      ThreadPool pool(2 + round % 3);
      for (int i = 0; i < 50; ++i) {
        // Futures intentionally discarded: the pool, not the caller, owns
        // completion here.
        pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
    }  // ~ThreadPool: stop flag + drain + join
    EXPECT_EQ(ran.load(), 50) << "round " << round;
  }
}

// Exceptions crossing the pool boundary while other shards are still
// running: shard_map must drain every future before rethrowing, so no
// worker can touch caller-owned state after the call returns.
TEST(ThreadPoolStress, ShardExceptionsDrainBeforeRethrow) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::vector<int> owned(512, 1);  // caller-owned: must outlive all shards
    bool threw = false;
    try {
      core::shard_map(pool, owned.size(), [&owned, round](core::ShardRange range) {
        int sum = 0;
        for (std::size_t i = range.begin; i < range.end; ++i) sum += owned[i];
        if (range.index == static_cast<std::size_t>(round % 8)) {
          throw std::runtime_error("shard failure injection");
        }
        return sum;
      });
    } catch (const std::runtime_error&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }
}

}  // namespace
}  // namespace htor
